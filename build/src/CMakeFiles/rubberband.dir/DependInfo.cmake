
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/billing.cc" "src/CMakeFiles/rubberband.dir/cloud/billing.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/cloud/billing.cc.o.d"
  "/root/repo/src/cloud/instance.cc" "src/CMakeFiles/rubberband.dir/cloud/instance.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/cloud/instance.cc.o.d"
  "/root/repo/src/cloud/pricing.cc" "src/CMakeFiles/rubberband.dir/cloud/pricing.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/cloud/pricing.cc.o.d"
  "/root/repo/src/cloud/provisioning.cc" "src/CMakeFiles/rubberband.dir/cloud/provisioning.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/cloud/provisioning.cc.o.d"
  "/root/repo/src/cloud/simulated_cloud.cc" "src/CMakeFiles/rubberband.dir/cloud/simulated_cloud.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/cloud/simulated_cloud.cc.o.d"
  "/root/repo/src/common/distribution.cc" "src/CMakeFiles/rubberband.dir/common/distribution.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/common/distribution.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/rubberband.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/common/flags.cc.o.d"
  "/root/repo/src/common/money.cc" "src/CMakeFiles/rubberband.dir/common/money.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/common/money.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/rubberband.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/rubberband.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/common/stats.cc.o.d"
  "/root/repo/src/common/time.cc" "src/CMakeFiles/rubberband.dir/common/time.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/common/time.cc.o.d"
  "/root/repo/src/dag/builder.cc" "src/CMakeFiles/rubberband.dir/dag/builder.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/dag/builder.cc.o.d"
  "/root/repo/src/dag/node.cc" "src/CMakeFiles/rubberband.dir/dag/node.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/dag/node.cc.o.d"
  "/root/repo/src/dag/simulate.cc" "src/CMakeFiles/rubberband.dir/dag/simulate.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/dag/simulate.cc.o.d"
  "/root/repo/src/executor/asha.cc" "src/CMakeFiles/rubberband.dir/executor/asha.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/executor/asha.cc.o.d"
  "/root/repo/src/executor/checkpoint_store.cc" "src/CMakeFiles/rubberband.dir/executor/checkpoint_store.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/executor/checkpoint_store.cc.o.d"
  "/root/repo/src/executor/cluster_manager.cc" "src/CMakeFiles/rubberband.dir/executor/cluster_manager.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/executor/cluster_manager.cc.o.d"
  "/root/repo/src/executor/executor.cc" "src/CMakeFiles/rubberband.dir/executor/executor.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/executor/executor.cc.o.d"
  "/root/repo/src/executor/scheduler.cc" "src/CMakeFiles/rubberband.dir/executor/scheduler.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/executor/scheduler.cc.o.d"
  "/root/repo/src/executor/trace.cc" "src/CMakeFiles/rubberband.dir/executor/trace.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/executor/trace.cc.o.d"
  "/root/repo/src/executor/trial.cc" "src/CMakeFiles/rubberband.dir/executor/trial.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/executor/trial.cc.o.d"
  "/root/repo/src/model/profile.cc" "src/CMakeFiles/rubberband.dir/model/profile.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/model/profile.cc.o.d"
  "/root/repo/src/model/profiler.cc" "src/CMakeFiles/rubberband.dir/model/profiler.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/model/profiler.cc.o.d"
  "/root/repo/src/model/scaling.cc" "src/CMakeFiles/rubberband.dir/model/scaling.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/model/scaling.cc.o.d"
  "/root/repo/src/placement/cluster_state.cc" "src/CMakeFiles/rubberband.dir/placement/cluster_state.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/placement/cluster_state.cc.o.d"
  "/root/repo/src/placement/controller.cc" "src/CMakeFiles/rubberband.dir/placement/controller.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/placement/controller.cc.o.d"
  "/root/repo/src/planner/budget_planner.cc" "src/CMakeFiles/rubberband.dir/planner/budget_planner.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/planner/budget_planner.cc.o.d"
  "/root/repo/src/planner/estimate.cc" "src/CMakeFiles/rubberband.dir/planner/estimate.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/planner/estimate.cc.o.d"
  "/root/repo/src/planner/greedy_planner.cc" "src/CMakeFiles/rubberband.dir/planner/greedy_planner.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/planner/greedy_planner.cc.o.d"
  "/root/repo/src/planner/instance_selection.cc" "src/CMakeFiles/rubberband.dir/planner/instance_selection.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/planner/instance_selection.cc.o.d"
  "/root/repo/src/planner/multi_job.cc" "src/CMakeFiles/rubberband.dir/planner/multi_job.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/planner/multi_job.cc.o.d"
  "/root/repo/src/planner/naive_elastic_planner.cc" "src/CMakeFiles/rubberband.dir/planner/naive_elastic_planner.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/planner/naive_elastic_planner.cc.o.d"
  "/root/repo/src/planner/plan.cc" "src/CMakeFiles/rubberband.dir/planner/plan.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/planner/plan.cc.o.d"
  "/root/repo/src/planner/render.cc" "src/CMakeFiles/rubberband.dir/planner/render.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/planner/render.cc.o.d"
  "/root/repo/src/planner/static_planner.cc" "src/CMakeFiles/rubberband.dir/planner/static_planner.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/planner/static_planner.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/rubberband.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/rubberband.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/sim/simulation.cc.o.d"
  "/root/repo/src/spec/experiment_spec.cc" "src/CMakeFiles/rubberband.dir/spec/experiment_spec.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/spec/experiment_spec.cc.o.d"
  "/root/repo/src/spec/hyperband.cc" "src/CMakeFiles/rubberband.dir/spec/hyperband.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/spec/hyperband.cc.o.d"
  "/root/repo/src/spec/sha.cc" "src/CMakeFiles/rubberband.dir/spec/sha.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/spec/sha.cc.o.d"
  "/root/repo/src/trainer/dataset.cc" "src/CMakeFiles/rubberband.dir/trainer/dataset.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/trainer/dataset.cc.o.d"
  "/root/repo/src/trainer/learning_curve.cc" "src/CMakeFiles/rubberband.dir/trainer/learning_curve.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/trainer/learning_curve.cc.o.d"
  "/root/repo/src/trainer/model_zoo.cc" "src/CMakeFiles/rubberband.dir/trainer/model_zoo.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/trainer/model_zoo.cc.o.d"
  "/root/repo/src/trainer/search_space.cc" "src/CMakeFiles/rubberband.dir/trainer/search_space.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/trainer/search_space.cc.o.d"
  "/root/repo/src/trainer/synthetic_trainer.cc" "src/CMakeFiles/rubberband.dir/trainer/synthetic_trainer.cc.o" "gcc" "src/CMakeFiles/rubberband.dir/trainer/synthetic_trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
