file(REMOVE_RECURSE
  "librubberband.a"
)
