# Empty compiler generated dependencies file for rubberband.
# This may be replaced when dependencies are built.
