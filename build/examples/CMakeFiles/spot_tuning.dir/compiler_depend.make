# Empty compiler generated dependencies file for spot_tuning.
# This may be replaced when dependencies are built.
