file(REMOVE_RECURSE
  "CMakeFiles/spot_tuning.dir/spot_tuning.cpp.o"
  "CMakeFiles/spot_tuning.dir/spot_tuning.cpp.o.d"
  "spot_tuning"
  "spot_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
