# Empty compiler generated dependencies file for serverless_whatif.
# This may be replaced when dependencies are built.
