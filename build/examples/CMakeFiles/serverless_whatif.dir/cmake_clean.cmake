file(REMOVE_RECURSE
  "CMakeFiles/serverless_whatif.dir/serverless_whatif.cpp.o"
  "CMakeFiles/serverless_whatif.dir/serverless_whatif.cpp.o.d"
  "serverless_whatif"
  "serverless_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
