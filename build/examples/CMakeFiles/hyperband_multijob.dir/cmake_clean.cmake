file(REMOVE_RECURSE
  "CMakeFiles/hyperband_multijob.dir/hyperband_multijob.cpp.o"
  "CMakeFiles/hyperband_multijob.dir/hyperband_multijob.cpp.o.d"
  "hyperband_multijob"
  "hyperband_multijob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperband_multijob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
