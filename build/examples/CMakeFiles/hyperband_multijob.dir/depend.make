# Empty dependencies file for hyperband_multijob.
# This may be replaced when dependencies are built.
