# Empty dependencies file for bert_finetune.
# This may be replaced when dependencies are built.
