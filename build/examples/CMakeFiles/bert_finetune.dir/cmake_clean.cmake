file(REMOVE_RECURSE
  "CMakeFiles/bert_finetune.dir/bert_finetune.cpp.o"
  "CMakeFiles/bert_finetune.dir/bert_finetune.cpp.o.d"
  "bert_finetune"
  "bert_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
