# Empty compiler generated dependencies file for rubberband_tests.
# This may be replaced when dependencies are built.
