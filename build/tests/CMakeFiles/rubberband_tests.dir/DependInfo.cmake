
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/asha_test.cc" "tests/CMakeFiles/rubberband_tests.dir/asha_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/asha_test.cc.o.d"
  "/root/repo/tests/budget_planner_test.cc" "tests/CMakeFiles/rubberband_tests.dir/budget_planner_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/budget_planner_test.cc.o.d"
  "/root/repo/tests/checkpoint_store_test.cc" "tests/CMakeFiles/rubberband_tests.dir/checkpoint_store_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/checkpoint_store_test.cc.o.d"
  "/root/repo/tests/cloud_test.cc" "tests/CMakeFiles/rubberband_tests.dir/cloud_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/cloud_test.cc.o.d"
  "/root/repo/tests/dag_test.cc" "tests/CMakeFiles/rubberband_tests.dir/dag_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/dag_test.cc.o.d"
  "/root/repo/tests/distribution_test.cc" "tests/CMakeFiles/rubberband_tests.dir/distribution_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/distribution_test.cc.o.d"
  "/root/repo/tests/event_queue_test.cc" "tests/CMakeFiles/rubberband_tests.dir/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/event_queue_test.cc.o.d"
  "/root/repo/tests/executor_test.cc" "tests/CMakeFiles/rubberband_tests.dir/executor_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/executor_test.cc.o.d"
  "/root/repo/tests/flags_test.cc" "tests/CMakeFiles/rubberband_tests.dir/flags_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/flags_test.cc.o.d"
  "/root/repo/tests/instance_selection_test.cc" "tests/CMakeFiles/rubberband_tests.dir/instance_selection_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/instance_selection_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/rubberband_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/money_test.cc" "tests/CMakeFiles/rubberband_tests.dir/money_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/money_test.cc.o.d"
  "/root/repo/tests/multi_job_test.cc" "tests/CMakeFiles/rubberband_tests.dir/multi_job_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/multi_job_test.cc.o.d"
  "/root/repo/tests/placement_test.cc" "tests/CMakeFiles/rubberband_tests.dir/placement_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/placement_test.cc.o.d"
  "/root/repo/tests/planner_test.cc" "tests/CMakeFiles/rubberband_tests.dir/planner_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/planner_test.cc.o.d"
  "/root/repo/tests/profiler_test.cc" "tests/CMakeFiles/rubberband_tests.dir/profiler_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/profiler_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/rubberband_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/reallocate_test.cc" "tests/CMakeFiles/rubberband_tests.dir/reallocate_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/reallocate_test.cc.o.d"
  "/root/repo/tests/render_test.cc" "tests/CMakeFiles/rubberband_tests.dir/render_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/render_test.cc.o.d"
  "/root/repo/tests/scaling_test.cc" "tests/CMakeFiles/rubberband_tests.dir/scaling_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/scaling_test.cc.o.d"
  "/root/repo/tests/smoke_test.cc" "tests/CMakeFiles/rubberband_tests.dir/smoke_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/smoke_test.cc.o.d"
  "/root/repo/tests/spec_test.cc" "tests/CMakeFiles/rubberband_tests.dir/spec_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/spec_test.cc.o.d"
  "/root/repo/tests/spot_test.cc" "tests/CMakeFiles/rubberband_tests.dir/spot_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/spot_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/rubberband_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/rubberband_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/trainer_test.cc" "tests/CMakeFiles/rubberband_tests.dir/trainer_test.cc.o" "gcc" "tests/CMakeFiles/rubberband_tests.dir/trainer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rubberband.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
