file(REMOVE_RECURSE
  "CMakeFiles/rubberband_cli.dir/rubberband_cli.cc.o"
  "CMakeFiles/rubberband_cli.dir/rubberband_cli.cc.o.d"
  "rubberband"
  "rubberband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubberband_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
