# Empty compiler generated dependencies file for rubberband_cli.
# This may be replaced when dependencies are built.
