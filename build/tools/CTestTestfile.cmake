# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_plan "/root/repo/build/tools/rubberband" "plan" "--trials=8" "--max-iters=14" "--eta=2" "--deadline-min=30")
set_tests_properties(cli_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_execute "/root/repo/build/tools/rubberband" "execute" "--trials=8" "--max-iters=14" "--eta=2" "--deadline-min=30" "--trace-csv")
set_tests_properties(cli_execute PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build/tools/rubberband" "sweep" "--trials=8" "--max-iters=14" "--eta=2" "--from-min=20" "--to-min=40" "--step-min=10")
set_tests_properties(cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_asha "/root/repo/build/tools/rubberband" "asha" "--deadline-min=10" "--workers=4")
set_tests_properties(cli_asha PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_spot "/root/repo/build/tools/rubberband" "execute" "--trials=8" "--max-iters=14" "--eta=2" "--deadline-min=30" "--spot" "--spot-mttp-s=600")
set_tests_properties(cli_spot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_command "/root/repo/build/tools/rubberband" "bogus")
set_tests_properties(cli_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
