# Empty dependencies file for table4_models.
# This may be replaced when dependencies are built.
