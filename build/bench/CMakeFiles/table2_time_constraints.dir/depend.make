# Empty dependencies file for table2_time_constraints.
# This may be replaced when dependencies are built.
