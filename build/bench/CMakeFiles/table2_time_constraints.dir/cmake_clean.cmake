file(REMOVE_RECURSE
  "CMakeFiles/table2_time_constraints.dir/table2_time_constraints.cc.o"
  "CMakeFiles/table2_time_constraints.dir/table2_time_constraints.cc.o.d"
  "table2_time_constraints"
  "table2_time_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_time_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
