# Empty dependencies file for micro_placement.
# This may be replaced when dependencies are built.
