file(REMOVE_RECURSE
  "CMakeFiles/micro_placement.dir/micro_placement.cc.o"
  "CMakeFiles/micro_placement.dir/micro_placement.cc.o.d"
  "micro_placement"
  "micro_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
