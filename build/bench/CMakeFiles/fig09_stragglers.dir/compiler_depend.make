# Empty compiler generated dependencies file for fig09_stragglers.
# This may be replaced when dependencies are built.
