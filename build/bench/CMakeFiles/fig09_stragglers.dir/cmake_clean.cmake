file(REMOVE_RECURSE
  "CMakeFiles/fig09_stragglers.dir/fig09_stragglers.cc.o"
  "CMakeFiles/fig09_stragglers.dir/fig09_stragglers.cc.o.d"
  "fig09_stragglers"
  "fig09_stragglers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
