file(REMOVE_RECURSE
  "CMakeFiles/fig10_data_pricing.dir/fig10_data_pricing.cc.o"
  "CMakeFiles/fig10_data_pricing.dir/fig10_data_pricing.cc.o.d"
  "fig10_data_pricing"
  "fig10_data_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_data_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
