file(REMOVE_RECURSE
  "CMakeFiles/fig01_elastic_vs_static.dir/fig01_elastic_vs_static.cc.o"
  "CMakeFiles/fig01_elastic_vs_static.dir/fig01_elastic_vs_static.cc.o.d"
  "fig01_elastic_vs_static"
  "fig01_elastic_vs_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_elastic_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
