# Empty dependencies file for fig01_elastic_vs_static.
# This may be replaced when dependencies are built.
