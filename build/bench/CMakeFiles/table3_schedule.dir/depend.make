# Empty dependencies file for table3_schedule.
# This may be replaced when dependencies are built.
