file(REMOVE_RECURSE
  "CMakeFiles/table3_schedule.dir/table3_schedule.cc.o"
  "CMakeFiles/table3_schedule.dir/table3_schedule.cc.o.d"
  "table3_schedule"
  "table3_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
