file(REMOVE_RECURSE
  "CMakeFiles/table1_placement.dir/table1_placement.cc.o"
  "CMakeFiles/table1_placement.dir/table1_placement.cc.o.d"
  "table1_placement"
  "table1_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
