# Empty dependencies file for table1_placement.
# This may be replaced when dependencies are built.
