# Empty dependencies file for fig11_job_size.
# This may be replaced when dependencies are built.
