#include <gtest/gtest.h>

#include "src/cloud/billing.h"
#include "src/cloud/instance.h"
#include "src/cloud/pricing.h"
#include "src/cloud/simulated_cloud.h"
#include "src/sim/simulation.h"

namespace rubberband {
namespace {

TEST(InstanceType, CatalogPricesAndGpus) {
  EXPECT_EQ(P3_2xlarge().gpus, 1);
  EXPECT_EQ(P3_8xlarge().gpus, 4);
  EXPECT_EQ(P3_16xlarge().gpus, 8);
  EXPECT_EQ(R5_4xlarge().gpus, 0);
  EXPECT_EQ(P3_8xlarge().price_per_hour, Money::FromCents(1224));
  // Per-GPU pricing is roughly uniform across the p3 family.
  EXPECT_NEAR(P3_16xlarge().price_per_hour.dollars() / 8,
              P3_2xlarge().price_per_hour.dollars(), 0.01);
}

TEST(InstanceType, DerivedRates) {
  const InstanceType p3 = P3_8xlarge();
  EXPECT_NEAR(p3.PricePerSecond().dollars() * 3600.0, 12.24, 1e-6);
  EXPECT_NEAR(p3.GpuSecondPrice().dollars() * 3600.0 * 4, 12.24, 1e-6);
  EXPECT_EQ(R5_4xlarge().GpuSecondPrice(), Money());
}

TEST(InstanceType, FindAndOverridePrice) {
  ASSERT_TRUE(FindInstanceType("p3.16xlarge").has_value());
  EXPECT_EQ(FindInstanceType("p3.16xlarge")->gpus, 8);
  EXPECT_FALSE(FindInstanceType("nonexistent").has_value());
  // Table 1 uses the paper's quoted $7.50/hr price.
  const InstanceType discounted = P3_16xlarge().WithPrice(Money::FromCents(750));
  EXPECT_EQ(discounted.price_per_hour, Money::FromCents(750));
  EXPECT_EQ(discounted.gpus, 8);
}

TEST(BillingMeter, PerInstancePricesLifetimes) {
  BillingMeter meter;
  meter.RecordInstanceUsage(0.0, 3600.0);
  meter.RecordInstanceUsage(100.0, 1900.0);
  PricingPolicy policy;
  const CostBreakdown cost = meter.Price(P3_8xlarge(), policy);
  EXPECT_NEAR(cost.compute.dollars(), 12.24 * (3600.0 + 1800.0) / 3600.0, 1e-6);
  EXPECT_EQ(cost.data, Money());
}

TEST(BillingMeter, MinimumChargePerAcquisition) {
  BillingMeter meter;
  meter.RecordInstanceUsage(0.0, 5.0);  // 5s of use bills as 60s
  PricingPolicy policy;
  const CostBreakdown cost = meter.Price(P3_8xlarge(), policy);
  EXPECT_NEAR(cost.compute.dollars(), 12.24 * 60.0 / 3600.0, 1e-6);
}

TEST(BillingMeter, PerFunctionIgnoresInstanceLifetimes) {
  BillingMeter meter;
  meter.RecordInstanceUsage(0.0, 10'000.0);   // idle instance time
  meter.RecordFunctionUsage(4, 3600.0);        // the actual work
  PricingPolicy policy;
  policy.billing = BillingModel::kPerFunction;
  const CostBreakdown cost = meter.Price(P3_8xlarge(), policy);
  // 4 GPU-hours at $12.24 / 4 GPUs per hour.
  EXPECT_NEAR(cost.compute.dollars(), 12.24, 1e-6);
}

TEST(BillingMeter, DataIngressPricedUnderBothModels) {
  BillingMeter meter;
  meter.RecordDataIngress(150.0);
  PricingPolicy policy;
  policy.data_price_per_gb = Money::FromCents(1);
  EXPECT_NEAR(meter.Price(P3_8xlarge(), policy).data.dollars(), 1.50, 1e-9);
  policy.billing = BillingModel::kPerFunction;
  EXPECT_NEAR(meter.Price(P3_8xlarge(), policy).data.dollars(), 1.50, 1e-9);
}

TEST(BillingMeter, RejectsMalformedRecords) {
  BillingMeter meter;
  EXPECT_THROW(meter.RecordInstanceUsage(10.0, 5.0), std::invalid_argument);
  EXPECT_THROW(meter.RecordFunctionUsage(-1, 5.0), std::invalid_argument);
  EXPECT_THROW(meter.RecordDataIngress(-1.0), std::invalid_argument);
}

TEST(BillingMeter, UsageTotals) {
  BillingMeter meter;
  meter.RecordInstanceUsage(0.0, 100.0);
  meter.RecordInstanceUsage(50.0, 150.0);
  meter.RecordFunctionUsage(2, 30.0);
  EXPECT_DOUBLE_EQ(meter.TotalInstanceSeconds(), 200.0);
  EXPECT_DOUBLE_EQ(meter.TotalGpuSecondsUsed(), 60.0);
  EXPECT_EQ(meter.num_acquisitions(), 2);
}

CloudProfile TestProfile() {
  CloudProfile profile;
  profile.instance = P3_8xlarge();
  profile.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  return profile;
}

TEST(SimulatedCloud, ProvisioningAppliesQueuingAndInitDelays) {
  Simulation sim(0);
  SimulatedCloud cloud(sim, TestProfile());
  std::vector<Seconds> ready_times;
  cloud.RequestInstances(3, 0.0, [&](InstanceId) { ready_times.push_back(sim.now()); });
  EXPECT_EQ(cloud.num_pending(), 3);
  sim.Run();
  ASSERT_EQ(ready_times.size(), 3u);
  for (Seconds t : ready_times) {
    EXPECT_DOUBLE_EQ(t, 15.0);  // 5s queuing + 10s init
  }
  EXPECT_EQ(cloud.num_ready(), 3);
  EXPECT_EQ(cloud.num_pending(), 0);
}

TEST(SimulatedCloud, BillingStartsAtLaunchNotReady) {
  Simulation sim(0);
  SimulatedCloud cloud(sim, TestProfile());
  InstanceId instance = -1;
  cloud.RequestInstances(1, 0.0, [&](InstanceId id) { instance = id; });
  sim.Run();                            // ready at t=15 (launched at t=5)
  sim.ScheduleAt(105.0, [&] { cloud.TerminateInstance(instance); });
  sim.Run();
  // Billed from launch (5) to terminate (105): 100 seconds, over the 60s
  // minimum.
  EXPECT_DOUBLE_EQ(cloud.meter().TotalInstanceSeconds(), 100.0);
}

TEST(SimulatedCloud, DatasetIngressChargedPerInstance) {
  Simulation sim(0);
  CloudProfile profile = TestProfile();
  profile.pricing.data_price_per_gb = Money::FromCents(16);
  SimulatedCloud cloud(sim, profile);
  cloud.RequestInstances(4, 150.0, [](InstanceId) {});
  sim.Run();
  EXPECT_DOUBLE_EQ(cloud.meter().total_ingress_gb(), 600.0);
  EXPECT_NEAR(cloud.Cost().data.dollars(), 0.16 * 600.0, 1e-9);
}

TEST(SimulatedCloud, TerminateUnknownInstanceThrows) {
  Simulation sim(0);
  SimulatedCloud cloud(sim, TestProfile());
  EXPECT_THROW(cloud.TerminateInstance(42), std::logic_error);
}

TEST(SimulatedCloud, TerminateAllClosesEveryInterval) {
  Simulation sim(0);
  SimulatedCloud cloud(sim, TestProfile());
  cloud.RequestInstances(5, 0.0, [](InstanceId) {});
  sim.Run();
  sim.ScheduleAt(100.0, [&] { cloud.TerminateAll(); });
  sim.Run();
  EXPECT_EQ(cloud.num_ready(), 0);
  EXPECT_EQ(cloud.meter().num_acquisitions(), 5);
}

TEST(PricingPolicy, ToStringForBillingModels) {
  EXPECT_EQ(ToString(BillingModel::kPerInstance), "per-instance");
  EXPECT_EQ(ToString(BillingModel::kPerFunction), "per-function");
}

}  // namespace
}  // namespace rubberband
