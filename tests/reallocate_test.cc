// HyperSched-style reallocate-all-freed-resources executor policy.

#include <gtest/gtest.h>

#include "src/rubberband.h"

namespace rubberband {
namespace {

CloudProfile TestCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  return cloud;
}

TEST(Reallocate, CompletesWithResizesMidStage) {
  const ExperimentSpec spec = MakeSha(32, 1, 50, 3);
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), 24);
  ExecutorOptions options;
  options.seed = 2;
  options.reallocate_freed_resources = true;
  const ExecutionReport report =
      ExecutePlan(spec, plan, ResNet101Cifar10(), TestCloud(), options);
  EXPECT_GT(report.best_accuracy, 0.7);
  // Mid-stage resizes show up as extra TRIAL_START events beyond one per
  // trial-stage (32 + 10 + 3 + 1 = 46 baseline).
  EXPECT_GT(report.trace.OfType(TraceEventType::kTrialStart).size(), 46u);
}

TEST(Reallocate, RaisesBusyUtilizationButNotCostEfficiency) {
  // The paper's section 3.2 argument, measured: handing freed GPUs to the
  // running trials keeps instances busier, yet with saturated scaling and
  // per-resize gang restarts it does not beat simply letting them idle —
  // and both lose to deprovisioning (the elastic policy).
  const ExperimentSpec spec = MakeSha(32, 1, 50, 3);
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), 24);
  const WorkloadSpec workload = ResNet101Cifar10();

  ExecutorOptions idle;
  idle.seed = 3;
  ExecutorOptions reallocate = idle;
  reallocate.reallocate_freed_resources = true;

  const ExecutionReport a = ExecutePlan(spec, plan, workload, TestCloud(), idle);
  const ExecutionReport b = ExecutePlan(spec, plan, workload, TestCloud(), reallocate);
  EXPECT_GT(b.realized_utilization, a.realized_utilization);
  EXPECT_GE(b.cost.Total().dollars(), a.cost.Total().dollars() * 0.95);
}

TEST(Reallocate, QueuedTrialsDrainBeforeAnyResize) {
  // While trials queue, freed GPUs go to the queue; only once the queue is
  // empty can the tail trials be resized (at most one doubling here: the
  // last runner going from 1 to 2 GPUs).
  const ExperimentSpec spec = MakeSha(8, 1, 1, 8);
  const AllocationPlan plan({2});
  ExecutorOptions options;
  options.reallocate_freed_resources = true;
  const ExecutionReport report =
      ExecutePlan(spec, plan, ResNet101Cifar10(), TestCloud(), options);
  const size_t starts = report.trace.OfType(TraceEventType::kTrialStart).size();
  EXPECT_GE(starts, 8u);
  EXPECT_LE(starts, 10u);
  EXPECT_EQ(report.trace.OfType(TraceEventType::kTrialComplete).size(), 8u);
}

}  // namespace
}  // namespace rubberband
