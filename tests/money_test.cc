#include "src/common/money.h"

#include <gtest/gtest.h>

#include <sstream>

namespace rubberband {
namespace {

TEST(Money, DefaultIsZero) {
  Money m;
  EXPECT_EQ(m.micros(), 0);
  EXPECT_EQ(m.dollars(), 0.0);
}

TEST(Money, Constructors) {
  EXPECT_EQ(Money::FromMicros(1'230'000).dollars(), 1.23);
  EXPECT_EQ(Money::FromCents(123).micros(), 1'230'000);
  EXPECT_EQ(Money::FromDollars(1.23).micros(), 1'230'000);
  EXPECT_EQ(Money::FromDollars(-0.5).micros(), -500'000);
}

TEST(Money, Arithmetic) {
  const Money a = Money::FromCents(150);
  const Money b = Money::FromCents(50);
  EXPECT_EQ((a + b).micros(), Money::FromCents(200).micros());
  EXPECT_EQ((a - b).micros(), Money::FromCents(100).micros());
  EXPECT_EQ((-b).micros(), -500'000);

  Money c = a;
  c += b;
  EXPECT_EQ(c, Money::FromCents(200));
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(Money, ScalingRoundsToNearestMicro) {
  const Money rate = Money::FromDollars(12.24);  // $/hour
  const Money per_second = rate * (1.0 / 3600.0);
  EXPECT_EQ(per_second.micros(), 3400);  // 12.24e6 / 3600 = 3400 exactly
  EXPECT_EQ((Money::FromMicros(10) * 0.25).micros(), 3);  // 2.5 rounds to 3
}

TEST(Money, RatioOfAmounts) {
  EXPECT_DOUBLE_EQ(Money::FromDollars(30.0) / Money::FromDollars(15.0), 2.0);
}

TEST(Money, Comparisons) {
  EXPECT_LT(Money::FromCents(99), Money::FromCents(100));
  EXPECT_GE(Money::FromCents(100), Money::FromCents(100));
  EXPECT_EQ(Money::FromDollars(1.0), Money::FromCents(100));
}

TEST(Money, ToStringRoundsToCents) {
  EXPECT_EQ(Money::FromDollars(12.344999).ToString(), "$12.34");
  EXPECT_EQ(Money::FromDollars(12.345001).ToString(), "$12.35");
  EXPECT_EQ(Money::FromDollars(-3.5).ToString(), "-$3.50");
  EXPECT_EQ(Money().ToString(), "$0.00");
  EXPECT_EQ(Money::FromDollars(1234.5).ToString(), "$1234.50");
}

TEST(Money, StreamOperator) {
  std::ostringstream os;
  os << Money::FromCents(1568);
  EXPECT_EQ(os.str(), "$15.68");
}

TEST(Money, NoDriftOverManySmallCharges) {
  // One month of per-second billing at $3.06/hr must price exactly.
  const Money per_second = Money::FromDollars(3.06) * (1.0 / 3600.0);
  Money total;
  for (int i = 0; i < 3600; ++i) {
    total += per_second;
  }
  EXPECT_EQ(total, Money::FromDollars(3.06));
}

}  // namespace
}  // namespace rubberband
