// Spot-market extension: discounted pricing, provider-initiated
// preemptions, and checkpoint-based trial recovery in the executor — plus
// the market layer (price traces, storms, capacity limits, reclamation
// warnings) and the risk-aware planning / billing / warm-pool plumbing
// around it.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "src/cloud/spot_price.h"
#include "src/cloud/warm_pool.h"
#include "src/planner/evaluator.h"
#include "src/rubberband.h"

namespace rubberband {
namespace {

CloudProfile SpotCloud(double mean_time_to_preemption) {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  cloud.spot.enabled = true;
  cloud.spot.discount = 0.3;
  cloud.spot.mean_time_to_preemption = mean_time_to_preemption;
  return cloud;
}

TEST(Spot, BilledInstanceAppliesDiscount) {
  const CloudProfile cloud = SpotCloud(3600.0);
  EXPECT_EQ(cloud.BilledInstance().price_per_hour, Money::FromCents(1224) * 0.3);
  CloudProfile on_demand = cloud;
  on_demand.spot.enabled = false;
  EXPECT_EQ(on_demand.BilledInstance().price_per_hour, Money::FromCents(1224));
}

TEST(Spot, ProviderReclaimsInstancesOverTime) {
  Simulation sim(7);
  SimulatedCloud cloud(sim, SpotCloud(/*mean_time_to_preemption=*/100.0));
  int preempted = 0;
  cloud.SetPreemptionHandler([&](InstanceId) { ++preempted; });
  cloud.RequestInstances(10, 0.0, [](InstanceId) {});
  sim.RunUntil(10'000.0);  // 100 mean lifetimes: everything reclaimed
  EXPECT_EQ(preempted, 10);
  EXPECT_EQ(cloud.num_ready(), 0);
  EXPECT_EQ(cloud.num_preemptions(), 10);
  // Reclaimed lifetimes are still billed.
  EXPECT_GT(cloud.meter().TotalInstanceSeconds(), 0.0);
}

TEST(Spot, TerminatedInstancesAreNotPreempted) {
  Simulation sim(7);
  SimulatedCloud cloud(sim, SpotCloud(100.0));
  std::vector<InstanceId> ids;
  cloud.SetPreemptionHandler([&](InstanceId) { FAIL() << "preempted a terminated instance"; });
  cloud.RequestInstances(5, 0.0, [&](InstanceId id) { ids.push_back(id); });
  sim.RunUntil(16.0);  // all ready at t=15
  for (InstanceId id : ids) {
    cloud.TerminateInstance(id);
  }
  sim.Run();  // drain the now-stale preemption events
  EXPECT_EQ(cloud.num_preemptions(), 0);
}

TEST(Spot, ExecutorSurvivesPreemptionsAndCompletes) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  const AllocationPlan plan({8, 8, 8});
  // Aggressive reclamation: mean lifetime ~4 minutes against a ~15-minute
  // job guarantees several preemptions.
  const CloudProfile cloud = SpotCloud(240.0);

  ExecutorOptions options;
  options.seed = 5;
  const ExecutionReport report = ExecutePlan(spec, plan, workload, cloud, options);
  EXPECT_GT(report.preemptions, 0);
  EXPECT_GT(report.trial_restarts, 0);
  EXPECT_GT(report.best_accuracy, 0.5);
  EXPECT_EQ(report.stage_log.size(), 3u);
}

TEST(Spot, PreemptionsExtendJctButDiscountCanStillWin) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  const AllocationPlan plan({8, 8, 8});

  CloudProfile on_demand = SpotCloud(600.0);
  on_demand.spot.enabled = false;

  ExecutorOptions options;
  options.seed = 2;
  const ExecutionReport spot = ExecutePlan(spec, plan, workload, SpotCloud(600.0), options);
  const ExecutionReport fixed = ExecutePlan(spec, plan, workload, on_demand, options);

  EXPECT_GE(spot.jct, fixed.jct);  // restarts cost wall-clock time
  // At a 70% discount, the rework would need to more than triple instance
  // time to lose; with ~10-minute mean lifetimes it does not.
  EXPECT_LT(spot.cost.Total().dollars(), fixed.cost.Total().dollars());
}

TEST(Spot, RareReclamationMatchesOnDemandBehaviour) {
  const ExperimentSpec spec = MakeSha(4, 2, 6, 2);
  const AllocationPlan plan({4, 4});
  const CloudProfile cloud = SpotCloud(/*mean_time_to_preemption=*/1e9);
  const ExecutionReport report = ExecutePlan(spec, plan, ResNet101Cifar10(), cloud);
  EXPECT_EQ(report.preemptions, 0);
  EXPECT_EQ(report.trial_restarts, 0);
}

TEST(Spot, DeterministicForFixedSeed) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const AllocationPlan plan({8, 8, 8});
  ExecutorOptions options;
  options.seed = 9;
  const ExecutionReport a =
      ExecutePlan(spec, plan, ResNet101Cifar10(), SpotCloud(240.0), options);
  const ExecutionReport b =
      ExecutePlan(spec, plan, ResNet101Cifar10(), SpotCloud(240.0), options);
  EXPECT_DOUBLE_EQ(a.jct, b.jct);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.cost.Total(), b.cost.Total());
}

// ---------------------------------------------------------------------------
// SpotPriceTrace: the deterministic piecewise-constant price multiplier.

SpotMarket VolatileMarket() {
  SpotMarket market;
  market.enabled = true;
  market.volatility = 0.4;
  market.price_interval_s = 100.0;
  return market;
}

TEST(SpotPrice, DeterministicForFixedSeed) {
  SpotPriceTrace a(VolatileMarket(), Rng(42));
  SpotPriceTrace b(VolatileMarket(), Rng(42));
  for (int i = 1; i <= 50; ++i) {
    EXPECT_EQ(a.Step(100.0 * i), b.Step(100.0 * i));
  }
  EXPECT_EQ(a.num_steps(), 50);
  EXPECT_EQ(a.current(), b.current());
}

TEST(SpotPrice, ClampsToFloorAndCap) {
  SpotMarket market = VolatileMarket();
  market.volatility = 2.0;  // wild steps guarantee both clamps are hit
  SpotPriceTrace trace(market, Rng(7));
  double lo = 10.0, hi = 0.0;
  for (int i = 1; i <= 200; ++i) {
    const double multiplier = trace.Step(100.0 * i);
    EXPECT_GE(multiplier, market.price_floor);
    EXPECT_LE(multiplier, market.price_cap);
    lo = std::min(lo, multiplier);
    hi = std::max(hi, multiplier);
  }
  EXPECT_EQ(lo, market.price_floor);
  EXPECT_EQ(hi, market.price_cap);
}

TEST(SpotPrice, AverageOverIntegratesTheBreakpoints) {
  SpotPriceTrace trace(VolatileMarket(), Rng(3));
  trace.Step(100.0);
  trace.Step(200.0);
  // Before the first step the multiplier is 1.0 by construction.
  EXPECT_EQ(trace.MultiplierAt(50.0), 1.0);
  // [50, 150] straddles the first breakpoint: half at 1.0, half at m1.
  const double m1 = trace.MultiplierAt(150.0);
  EXPECT_DOUBLE_EQ(trace.AverageOver(50.0, 150.0), 0.5 * (1.0 + m1));
  // A window inside one segment is flat.
  EXPECT_DOUBLE_EQ(trace.AverageOver(110.0, 190.0), m1);
  // A zero-width window samples the point value.
  EXPECT_DOUBLE_EQ(trace.AverageOver(150.0, 150.0), m1);
}

// ---------------------------------------------------------------------------
// Billing: provider-reclaimed intervals never owe the per-acquisition
// minimum charge (the customer did not choose to stop early).

TEST(SpotBilling, ReclaimedIntervalSkipsMinimumCharge) {
  const PricingPolicy policy;  // 60s minimum
  BillingMeter reclaimed;
  reclaimed.RecordInstanceUsage(0.0, 10.0, 1.0, /*provider_reclaimed=*/true);
  BillingMeter terminated;
  terminated.RecordInstanceUsage(0.0, 10.0, 1.0, /*provider_reclaimed=*/false);
  // 10 reclaimed seconds bill exactly 10 seconds; the same lifetime ended
  // by the customer rounds up to the minimum.
  EXPECT_NEAR(terminated.Price(P3_8xlarge(), policy).compute.dollars(),
              6.0 * reclaimed.Price(P3_8xlarge(), policy).compute.dollars(), 1e-9);
}

TEST(SpotBilling, PriceAtFullRateUndoesTheMultiplier) {
  const PricingPolicy policy;
  BillingMeter meter;
  meter.RecordInstanceUsage(0.0, 3600.0, 0.3, false);
  const double discounted = meter.Price(P3_8xlarge(), policy).compute.dollars();
  const double full = meter.PriceAtFullRate(P3_8xlarge(), policy).compute.dollars();
  EXPECT_NEAR(discounted, 0.3 * full, 1e-6);
  EXPECT_GT(full, discounted);
}

// ---------------------------------------------------------------------------
// SimulatedCloud market mechanics.

TEST(Spot, WarningPrecedesReclamationByTheConfiguredWindow) {
  Simulation sim(11);
  CloudProfile profile = SpotCloud(/*mean_time_to_preemption=*/600.0);
  profile.spot.reclamation_warning_s = 120.0;
  SimulatedCloud cloud(sim, profile);
  std::map<InstanceId, Seconds> warned, reclaimed;
  cloud.SetPreemptionWarningHandler([&](InstanceId id) {
    warned[id] = sim.now();
    EXPECT_TRUE(cloud.IsReady(id));  // still running (and billing)
  });
  cloud.SetPreemptionHandler([&](InstanceId id) { reclaimed[id] = sim.now(); });
  cloud.RequestInstances(8, 0.0, [](InstanceId) {});
  sim.RunUntil(50'000.0);
  EXPECT_EQ(static_cast<int>(reclaimed.size()), 8);
  EXPECT_EQ(cloud.num_preemption_warnings(), static_cast<int>(warned.size()));
  EXPECT_EQ(warned.size(), 8u);
  int full_windows = 0;
  for (const auto& [id, warn_time] : warned) {
    ASSERT_TRUE(reclaimed.count(id));
    // The provider gives min(warning, lifetime) of notice: a full window
    // normally, less only when the drawn lifetime is shorter than it.
    const Seconds notice = reclaimed[id] - warn_time;
    EXPECT_GE(notice, 0.0);
    EXPECT_LE(notice, 120.0 + 1e-9);
    full_windows += std::abs(notice - 120.0) < 1e-9 ? 1 : 0;
  }
  EXPECT_GT(full_windows, 0);
}

TEST(Spot, CapacityLimitRejectsOverLimitSpotRequests) {
  Simulation sim(11);
  CloudProfile profile = SpotCloud(/*mean_time_to_preemption=*/0.0);
  profile.spot.capacity_limit = 4;
  SimulatedCloud cloud(sim, profile);
  int ready = 0, failed = 0;
  cloud.RequestInstances(8, 0.0, Market::kSpot, [&](InstanceId) { ++ready; },
                         [&] { ++failed; });
  sim.Run();
  EXPECT_EQ(ready, 4);
  EXPECT_EQ(failed, 4);
  EXPECT_EQ(cloud.num_capacity_rejections(), 4);
  EXPECT_TRUE(cloud.SpotCapacityExhausted());
  // On-demand capacity is not subject to the spot family's limit.
  cloud.RequestInstances(4, 0.0, Market::kOnDemand, [&](InstanceId) { ++ready; },
                         [&] { ++failed; });
  sim.Run();
  EXPECT_EQ(ready, 8);
  EXPECT_EQ(failed, 4);
}

TEST(Spot, StormSweepsAFractionOfTheFleetAtOnce) {
  Simulation sim(11);
  CloudProfile profile = SpotCloud(/*mean_time_to_preemption=*/0.0);  // no solo hazard
  profile.spot.storm_mean_interval_s = 500.0;
  profile.spot.storm_fraction = 0.5;
  profile.spot.reclamation_warning_s = 0.0;
  SimulatedCloud cloud(sim, profile);
  std::map<double, int> reclaim_times;  // time -> instances taken then
  cloud.SetPreemptionHandler([&](InstanceId) { ++reclaim_times[sim.now()]; });
  cloud.RequestInstances(8, 0.0, [](InstanceId) {});
  sim.RunUntil(2'000.0);
  ASSERT_GE(cloud.num_storms(), 1);
  // The first storm takes ceil(0.5 * 8) = 4 instances in one event.
  EXPECT_EQ(reclaim_times.begin()->second, 4);
}

TEST(Spot, ZeroHazardNeverReclaimsButStillDiscounts) {
  const ExperimentSpec spec = MakeSha(4, 2, 6, 2);
  const AllocationPlan plan({4, 4});
  CloudProfile cloud = SpotCloud(/*mean_time_to_preemption=*/0.0);
  const ExecutionReport report = ExecutePlan(spec, plan, ResNet101Cifar10(), cloud);
  EXPECT_EQ(report.preemptions, 0);
  EXPECT_GT(report.spot_savings.dollars(), 0.0);
}

// ---------------------------------------------------------------------------
// The zero-volatility self-check (satellite): a spot market with no price
// movement, no hazard, no storms, no caps, and no discount replays the
// on-demand baseline bit-identically. This is the regression anchor that
// proves the market plumbing costs nothing when it is inert.

TEST(Spot, ZeroVolatilityMarketIsBitIdenticalToOnDemand) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const AllocationPlan plan({8, 8, 8});
  ExecutorOptions options;
  options.seed = 4;

  CloudProfile inert = SpotCloud(/*mean_time_to_preemption=*/0.0);
  inert.spot.discount = 1.0;
  inert.spot.volatility = 0.0;
  inert.spot.storm_mean_interval_s = 0.0;
  inert.spot.capacity_limit = 0;
  CloudProfile on_demand = inert;
  on_demand.spot.enabled = false;

  const ExecutionReport spot =
      ExecutePlan(spec, plan, ResNet101Cifar10(), inert, options);
  const ExecutionReport baseline =
      ExecutePlan(spec, plan, ResNet101Cifar10(), on_demand, options);

  EXPECT_EQ(spot.jct, baseline.jct);
  EXPECT_EQ(spot.cost.Total(), baseline.cost.Total());
  EXPECT_EQ(spot.preemptions, 0);
  EXPECT_EQ(spot.preemption_warnings, 0);
  EXPECT_EQ(spot.market_fallbacks, 0);
  EXPECT_EQ(spot.spot_savings, Money());
  EXPECT_EQ(spot.best_accuracy, baseline.best_accuracy);
}

// ---------------------------------------------------------------------------
// Executor survival: warning -> eager checkpoint -> reclaim -> restore.

TEST(Spot, WarningWindowCutsReworkVersusUnannouncedReclaims) {
  // One long stage: without a warning a mid-stage reclaim rolls the trial
  // all the way back to the stage-start checkpoint, so the eager-checkpoint
  // path's saving is large and robust across seeds.
  ExperimentSpec spec;
  spec.AddStage(4, 40);
  const AllocationPlan plan({8});
  ExecutorOptions options;
  options.seed = 5;

  CloudProfile warned_cloud = SpotCloud(/*mean_time_to_preemption=*/1200.0);
  warned_cloud.spot.reclamation_warning_s = 120.0;
  CloudProfile silent_cloud = warned_cloud;
  silent_cloud.spot.reclamation_warning_s = 0.0;

  const ExecutionReport warned =
      ExecutePlan(spec, plan, ResNet101Cifar10(), warned_cloud, options);
  const ExecutionReport silent =
      ExecutePlan(spec, plan, ResNet101Cifar10(), silent_cloud, options);

  EXPECT_GT(warned.preemptions, 0);
  EXPECT_GT(warned.preemption_warnings, 0);
  EXPECT_GT(warned.eager_checkpoints, 0);
  EXPECT_EQ(silent.preemption_warnings, 0);
  EXPECT_EQ(silent.eager_checkpoints, 0);
  // Eager checkpoints bound each loss to at most the warning window, so the
  // warned run re-does strictly less work and finishes sooner.
  EXPECT_LT(warned.spot_rework_seconds, silent.spot_rework_seconds);
  EXPECT_LT(warned.jct, silent.jct);
  // Both survive to a finished experiment.
  EXPECT_GT(warned.best_accuracy, 0.0);
  EXPECT_GT(silent.best_accuracy, 0.0);
}

TEST(Spot, WarningRacingStageCompletionStaysDeterministic) {
  // A warning window longer than the mean reclamation spacing guarantees
  // warnings land across stage boundaries and trial completions; the run
  // must neither crash nor diverge between replays.
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const AllocationPlan plan({8, 8, 8});
  CloudProfile cloud = SpotCloud(/*mean_time_to_preemption=*/300.0);
  cloud.spot.reclamation_warning_s = 240.0;
  ExecutorOptions options;
  options.seed = 13;
  const ExecutionReport a = ExecutePlan(spec, plan, ResNet101Cifar10(), cloud, options);
  const ExecutionReport b = ExecutePlan(spec, plan, ResNet101Cifar10(), cloud, options);
  EXPECT_DOUBLE_EQ(a.jct, b.jct);
  EXPECT_EQ(a.cost.Total(), b.cost.Total());
  EXPECT_EQ(a.preemption_warnings, b.preemption_warnings);
  EXPECT_EQ(a.eager_checkpoints, b.eager_checkpoints);
  EXPECT_DOUBLE_EQ(a.spot_rework_seconds, b.spot_rework_seconds);
  EXPECT_GT(a.best_accuracy, 0.5);
}

TEST(Spot, CapacityCrunchFallsBackToOnDemandAndCompletes) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const AllocationPlan plan({8, 8, 8});
  CloudProfile cloud = SpotCloud(/*mean_time_to_preemption=*/0.0);
  cloud.spot.capacity_limit = 1;  // the planned cluster cannot fit on spot
  ExecutorOptions options;
  options.seed = 6;
  const ExecutionReport report = ExecutePlan(spec, plan, ResNet101Cifar10(), cloud, options);
  EXPECT_GE(report.market_fallbacks, 1);
  EXPECT_GT(report.best_accuracy, 0.5);
  bool traced_fallback = false;
  for (const TraceEvent& event : report.trace.events()) {
    traced_fallback |= event.type == TraceEventType::kMarketFallback;
  }
  EXPECT_TRUE(traced_fallback);
}

TEST(Spot, StormMidStageTriggersFallbackAndTheGangRecovers) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const AllocationPlan plan({8, 8, 8});
  CloudProfile cloud = SpotCloud(/*mean_time_to_preemption=*/0.0);  // storms only
  cloud.spot.storm_mean_interval_s = 400.0;
  cloud.spot.storm_fraction = 1.0;  // each storm drains the whole family
  ExecutorOptions options;
  options.seed = 8;
  const ExecutionReport report = ExecutePlan(spec, plan, ResNet101Cifar10(), cloud, options);
  EXPECT_GT(report.preemptions, 0);
  EXPECT_GT(report.trial_restarts, 0);
  EXPECT_GE(report.market_fallbacks, 1);
  EXPECT_GT(report.best_accuracy, 0.5);
  EXPECT_EQ(report.stage_log.size(), 3u);
}

TEST(Spot, PriceChangesAndWarningsAppearInTheTrace) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const AllocationPlan plan({8, 8, 8});
  CloudProfile cloud = SpotCloud(/*mean_time_to_preemption=*/600.0);
  cloud.spot.volatility = 0.5;
  cloud.spot.price_interval_s = 60.0;
  ExecutorOptions options;
  options.seed = 3;
  const ExecutionReport report = ExecutePlan(spec, plan, ResNet101Cifar10(), cloud, options);
  int price_changes = 0, warnings = 0;
  for (const TraceEvent& event : report.trace.events()) {
    if (event.type == TraceEventType::kSpotPriceChange) {
      ++price_changes;
      // The instance column carries the multiplier in basis points.
      EXPECT_GE(event.instance, 5'000);   // >= price floor 0.5
      EXPECT_LE(event.instance, 25'000);  // <= price cap 2.5
      EXPECT_EQ(event.trial, -1);
    }
    if (event.type == TraceEventType::kPreemptionWarning) {
      ++warnings;
      EXPECT_EQ(event.trial, -1);  // instance-scoped, like preemptions
      EXPECT_GE(event.instance, 0);
    }
  }
  EXPECT_GT(price_changes, 0);
  EXPECT_EQ(warnings, report.preemption_warnings);
}

// ---------------------------------------------------------------------------
// Warm pool: a parked instance under a reclamation warning is evicted and
// terminated, never handed to the next tenant as a doomed "warm hit".

TEST(SpotWarmPool, WarnedParkedInstanceIsEvictedWithoutAWarmHit) {
  Simulation sim(11);
  CloudProfile profile = SpotCloud(/*mean_time_to_preemption=*/0.0);
  SimulatedCloud cloud(sim, profile);
  WarmPoolConfig config;
  config.max_parked = 4;
  config.max_idle_seconds = 10'000.0;
  WarmPool pool(sim, cloud, config);

  InstanceId parked_id = -1;
  pool.RequestInstances(1, 0.0, [&](InstanceId id) { parked_id = id; }, [] {});
  sim.Run();
  ASSERT_GE(parked_id, 0);
  pool.ReleaseInstance(parked_id);
  EXPECT_EQ(pool.num_parked(), 1);

  // An id nobody parked is not the pool's problem.
  EXPECT_FALSE(pool.OnWarned(parked_id + 1000));
  // The warned instance leaves the pool and the provider terminates it.
  EXPECT_TRUE(pool.OnWarned(parked_id));
  EXPECT_EQ(pool.num_parked(), 0);
  sim.Run();
  EXPECT_FALSE(cloud.IsReady(parked_id));
  EXPECT_EQ(pool.stats().warned_parked, 1);

  // The next request cold-misses: no doomed machine changes hands.
  InstanceId next_id = -1;
  pool.RequestInstances(1, 0.0, [&](InstanceId id) { next_id = id; }, [] {});
  sim.Run();
  EXPECT_GE(next_id, 0);
  EXPECT_NE(next_id, parked_id);
  EXPECT_EQ(pool.stats().warm_hits, 0);
}

// ---------------------------------------------------------------------------
// Risk-aware planning: the evaluator prices expected preemption rework into
// every candidate when the market's hazard is live, and leaves on-demand
// (and hazard-free spot) estimates untouched.

PlannerInputs RiskInputs() {
  PlannerInputs inputs;
  inputs.spec = MakeSha(8, 2, 14, 2);
  inputs.model.iter_latency_1gpu = Distribution::TruncatedNormal(30.0, 3.0, 0.0);
  inputs.model.scaling = ScalingFunction::FromPoints({{1, 1.0}, {2, 1.8}, {4, 3.0}, {8, 4.0}});
  inputs.model.trial_startup_seconds = 2.0;
  inputs.model.sync_seconds = 1.0;
  inputs.cloud.instance = P3_8xlarge();
  inputs.cloud.provisioning = ProvisioningModel::Fixed(2.0, 5.0);
  inputs.deadline = Minutes(30);
  return inputs;
}

TEST(SpotPlanner, HazardInflatesEstimatesAndInertMarketsDoNot) {
  const AllocationPlan plan = AllocationPlan::Uniform(3, 8);
  const PlannerOptions options;

  PlannerInputs on_demand = RiskInputs();
  PlannerInputs hazardous = RiskInputs();
  hazardous.cloud.spot.enabled = true;
  hazardous.cloud.spot.mean_time_to_preemption = 1800.0;
  PlannerInputs inert = RiskInputs();
  inert.cloud.spot.enabled = true;
  inert.cloud.spot.mean_time_to_preemption = 0.0;  // hazard off

  PlanEvaluator baseline(on_demand, options);
  PlanEvaluator risky(hazardous, options);
  PlanEvaluator hazard_free(inert, options);

  const PlanEstimate base = baseline.Evaluate(plan);
  const PlanEstimate risk = risky.Evaluate(plan);
  const PlanEstimate inert_estimate = hazard_free.Evaluate(plan);

  EXPECT_GT(risk.jct_mean, base.jct_mean);
  EXPECT_GT(risk.cost_mean.dollars(), base.cost_mean.dollars());
  EXPECT_EQ(inert_estimate.jct_mean, base.jct_mean);
  EXPECT_EQ(inert_estimate.cost_mean, base.cost_mean);
}

TEST(SpotPlanner, RiskAdjustmentIsIdenticalAcrossFreshAndIncremental) {
  PlannerInputs inputs = RiskInputs();
  inputs.cloud.spot.enabled = true;
  inputs.cloud.spot.mean_time_to_preemption = 1800.0;

  PlannerOptions incremental_options;
  PlannerOptions fresh_options;
  fresh_options.evaluation = PlanEvaluation::kFresh;
  PlanEvaluator incremental(inputs, incremental_options);
  PlanEvaluator fresh(inputs, fresh_options);

  for (const AllocationPlan& plan :
       {AllocationPlan::Uniform(3, 8), AllocationPlan({16, 8, 4}), AllocationPlan({2, 4, 8})}) {
    SCOPED_TRACE(plan.ToString());
    const PlanEstimate a = incremental.Evaluate(plan);
    const PlanEstimate b = fresh.Evaluate(plan);
    EXPECT_EQ(a.jct_mean, b.jct_mean);
    EXPECT_EQ(a.cost_mean, b.cost_mean);
    EXPECT_EQ(a.compute_cost_mean, b.compute_cost_mean);
    // Re-evaluating through the memo must return the adjusted estimate,
    // not re-adjust it.
    const PlanEstimate memoized = incremental.Evaluate(plan);
    EXPECT_EQ(memoized.jct_mean, a.jct_mean);
    EXPECT_EQ(memoized.cost_mean, a.cost_mean);
  }
}

// ---------------------------------------------------------------------------
// Service-level attribution: spot totals surface in the ServiceReport and
// the fleet-wide metrics registry.

TEST(SpotService, FleetReportCarriesSpotTotalsAndMetrics) {
  ServiceConfig config;
  config.cloud = SpotCloud(/*mean_time_to_preemption=*/1200.0);
  config.cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  config.capacity_gpus = 64;
  config.seed = 11;

  std::vector<JobRequest> trace;
  for (int i = 0; i < 2; ++i) {
    JobRequest job;
    job.name = "job-" + std::to_string(i);
    job.spec = MakeSha(8, 2, 14, 2);
    job.workload = ResNet101Cifar10();
    job.submit_at = 30.0 * i;
    job.deadline = 3600.0;
    trace.push_back(job);
  }
  TuningService service(config);
  for (const JobRequest& job : trace) {
    service.Submit(job);
  }
  const ServiceReport report = service.Run();

  ASSERT_EQ(report.completed, 2);
  // The spot fleet is cheaper than its on-demand counterfactual.
  EXPECT_GT(report.total_spot_savings.dollars(), 0.0);
  Money job_savings;
  for (const JobOutcome& job : report.jobs) {
    job_savings += job.spot_savings;
  }
  EXPECT_NEAR(job_savings.dollars(), report.total_spot_savings.dollars(), 1e-6);
  // The fleet registry snapshot (per-job executor spot.* families, merged)
  // exports the same totals.
  const auto savings = report.metrics.gauges.find("spot.savings_dollars");
  ASSERT_NE(savings, report.metrics.gauges.end());
  EXPECT_NEAR(savings->second, report.total_spot_savings.dollars(), 1e-6);
  const auto rework = report.metrics.gauges.find("spot.rework_seconds");
  ASSERT_NE(rework, report.metrics.gauges.end());
  EXPECT_NEAR(rework->second, report.total_spot_rework_seconds, 1e-6);
  const auto preemptions = report.metrics.counters.find("spot.preemptions");
  ASSERT_NE(preemptions, report.metrics.counters.end());
  EXPECT_EQ(static_cast<int>(preemptions->second), report.total_preemptions);
}

}  // namespace
}  // namespace rubberband
