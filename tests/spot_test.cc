// Spot-market extension: discounted pricing, provider-initiated
// preemptions, and checkpoint-based trial recovery in the executor.

#include <gtest/gtest.h>

#include "src/rubberband.h"

namespace rubberband {
namespace {

CloudProfile SpotCloud(double mean_time_to_preemption) {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  cloud.spot.enabled = true;
  cloud.spot.discount = 0.3;
  cloud.spot.mean_time_to_preemption = mean_time_to_preemption;
  return cloud;
}

TEST(Spot, BilledInstanceAppliesDiscount) {
  const CloudProfile cloud = SpotCloud(3600.0);
  EXPECT_EQ(cloud.BilledInstance().price_per_hour, Money::FromCents(1224) * 0.3);
  CloudProfile on_demand = cloud;
  on_demand.spot.enabled = false;
  EXPECT_EQ(on_demand.BilledInstance().price_per_hour, Money::FromCents(1224));
}

TEST(Spot, ProviderReclaimsInstancesOverTime) {
  Simulation sim(7);
  SimulatedCloud cloud(sim, SpotCloud(/*mean_time_to_preemption=*/100.0));
  int preempted = 0;
  cloud.SetPreemptionHandler([&](InstanceId) { ++preempted; });
  cloud.RequestInstances(10, 0.0, [](InstanceId) {});
  sim.RunUntil(10'000.0);  // 100 mean lifetimes: everything reclaimed
  EXPECT_EQ(preempted, 10);
  EXPECT_EQ(cloud.num_ready(), 0);
  EXPECT_EQ(cloud.num_preemptions(), 10);
  // Reclaimed lifetimes are still billed.
  EXPECT_GT(cloud.meter().TotalInstanceSeconds(), 0.0);
}

TEST(Spot, TerminatedInstancesAreNotPreempted) {
  Simulation sim(7);
  SimulatedCloud cloud(sim, SpotCloud(100.0));
  std::vector<InstanceId> ids;
  cloud.SetPreemptionHandler([&](InstanceId) { FAIL() << "preempted a terminated instance"; });
  cloud.RequestInstances(5, 0.0, [&](InstanceId id) { ids.push_back(id); });
  sim.RunUntil(16.0);  // all ready at t=15
  for (InstanceId id : ids) {
    cloud.TerminateInstance(id);
  }
  sim.Run();  // drain the now-stale preemption events
  EXPECT_EQ(cloud.num_preemptions(), 0);
}

TEST(Spot, ExecutorSurvivesPreemptionsAndCompletes) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  const AllocationPlan plan({8, 8, 8});
  // Aggressive reclamation: mean lifetime ~4 minutes against a ~15-minute
  // job guarantees several preemptions.
  const CloudProfile cloud = SpotCloud(240.0);

  ExecutorOptions options;
  options.seed = 5;
  const ExecutionReport report = ExecutePlan(spec, plan, workload, cloud, options);
  EXPECT_GT(report.preemptions, 0);
  EXPECT_GT(report.trial_restarts, 0);
  EXPECT_GT(report.best_accuracy, 0.5);
  EXPECT_EQ(report.stage_log.size(), 3u);
}

TEST(Spot, PreemptionsExtendJctButDiscountCanStillWin) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  const AllocationPlan plan({8, 8, 8});

  CloudProfile on_demand = SpotCloud(600.0);
  on_demand.spot.enabled = false;

  ExecutorOptions options;
  options.seed = 2;
  const ExecutionReport spot = ExecutePlan(spec, plan, workload, SpotCloud(600.0), options);
  const ExecutionReport fixed = ExecutePlan(spec, plan, workload, on_demand, options);

  EXPECT_GE(spot.jct, fixed.jct);  // restarts cost wall-clock time
  // At a 70% discount, the rework would need to more than triple instance
  // time to lose; with ~10-minute mean lifetimes it does not.
  EXPECT_LT(spot.cost.Total().dollars(), fixed.cost.Total().dollars());
}

TEST(Spot, RareReclamationMatchesOnDemandBehaviour) {
  const ExperimentSpec spec = MakeSha(4, 2, 6, 2);
  const AllocationPlan plan({4, 4});
  const CloudProfile cloud = SpotCloud(/*mean_time_to_preemption=*/1e9);
  const ExecutionReport report = ExecutePlan(spec, plan, ResNet101Cifar10(), cloud);
  EXPECT_EQ(report.preemptions, 0);
  EXPECT_EQ(report.trial_restarts, 0);
}

TEST(Spot, DeterministicForFixedSeed) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const AllocationPlan plan({8, 8, 8});
  ExecutorOptions options;
  options.seed = 9;
  const ExecutionReport a =
      ExecutePlan(spec, plan, ResNet101Cifar10(), SpotCloud(240.0), options);
  const ExecutionReport b =
      ExecutePlan(spec, plan, ResNet101Cifar10(), SpotCloud(240.0), options);
  EXPECT_DOUBLE_EQ(a.jct, b.jct);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.cost.Total(), b.cost.Total());
}

}  // namespace
}  // namespace rubberband
