// Metrics registry: typed handles, scopes, snapshot merging, JSON export,
// and the concurrency guarantees the parallel plan evaluator leans on.

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json.h"

namespace rubberband {
namespace {

TEST(Metrics, CounterAddsAndSupportsNegativeDeltas) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Add();
  counter.Add(5);
  EXPECT_EQ(counter.value(), 6);
  counter.Add(-2);  // warm pool revokes a hit
  EXPECT_EQ(counter.value(), 4);
}

TEST(Metrics, GaugeSetsAndAccumulates) {
  Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Add(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.Set(1.0);  // Set overwrites
  EXPECT_DOUBLE_EQ(gauge.value(), 1.0);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds) {
  Histogram histogram({10, 100, 1000});
  histogram.RecordNanos(10);    // on the bound -> first bucket
  histogram.RecordNanos(11);    // just past -> second bucket
  histogram.RecordNanos(1000);  // last finite bucket
  histogram.RecordNanos(5000);  // overflow
  const HistogramSnapshot snap = histogram.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.counts[3], 1);
  EXPECT_EQ(snap.count, 4);
  EXPECT_EQ(snap.sum_ns, 10 + 11 + 1000 + 5000);
}

TEST(Metrics, HistogramRecordSecondsRoundsToNanos) {
  Histogram histogram(DefaultLatencyBucketsNs());
  histogram.RecordSeconds(1.5);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.sum_ns, 1'500'000'000);
  EXPECT_DOUBLE_EQ(snap.MeanSeconds(), 1.5);
}

TEST(Metrics, DefaultBucketsCoverCheckpointToProvisioningScales) {
  const std::vector<int64_t>& bounds = DefaultLatencyBucketsNs();
  ASSERT_FALSE(bounds.empty());
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_LE(bounds.front(), 1'000'000);           // <= 1ms floor
  EXPECT_GE(bounds.back(), 3'600'000'000'000LL);  // >= 1h ceiling
}

TEST(Metrics, HistogramMergeIsExactBucketAddition) {
  Histogram a({10, 100});
  Histogram b({10, 100});
  a.RecordNanos(5);
  a.RecordNanos(50);
  b.RecordNanos(50);
  b.RecordNanos(500);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 4);
  EXPECT_EQ(merged.sum_ns, 5 + 50 + 50 + 500);
  EXPECT_EQ(merged.counts[0], 1);
  EXPECT_EQ(merged.counts[1], 2);
  EXPECT_EQ(merged.counts[2], 1);
}

TEST(Metrics, HistogramMergeRejectsMismatchedBounds) {
  Histogram a({10, 100});
  Histogram b({10, 1000});
  HistogramSnapshot snap = a.Snapshot();
  EXPECT_THROW(snap.Merge(b.Snapshot()), std::invalid_argument);
}

TEST(Metrics, HistogramMergeIsOrderIndependent) {
  // Property test: integer-nanosecond recording makes merging exact, so any
  // merge order over any partition of the same observations produces the
  // same snapshot. 20 seeded rounds with random observations and partitions.
  std::mt19937_64 rng(0xB0B0'CAFE);
  for (int round = 0; round < 20; ++round) {
    std::uniform_int_distribution<int> num_obs(1, 200);
    std::uniform_int_distribution<int64_t> nanos(0, 8'000'000'000'000LL);
    std::uniform_int_distribution<int> num_parts(2, 5);
    const int observations = num_obs(rng);
    const int partitions = num_parts(rng);

    std::deque<Histogram> shards;  // deque: Histogram holds atomics, no moves
    for (int p = 0; p < partitions; ++p) {
      shards.emplace_back(DefaultLatencyBucketsNs());
    }
    Histogram reference(DefaultLatencyBucketsNs());
    std::uniform_int_distribution<int> pick(0, partitions - 1);
    for (int i = 0; i < observations; ++i) {
      const int64_t value = nanos(rng);
      reference.RecordNanos(value);
      shards[static_cast<size_t>(pick(rng))].RecordNanos(value);
    }

    // Merge the shards in a random order; result must equal the reference
    // histogram that saw every observation directly.
    std::vector<size_t> order(static_cast<size_t>(partitions));
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::shuffle(order.begin(), order.end(), rng);
    HistogramSnapshot merged = shards[order[0]].Snapshot();
    for (size_t i = 1; i < order.size(); ++i) {
      merged.Merge(shards[order[i]].Snapshot());
    }
    EXPECT_EQ(merged, reference.Snapshot()) << "round " << round;
  }
}

TEST(Metrics, RegistryFindOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("executor.replans");
  EXPECT_EQ(registry.GetCounter("executor.replans"), counter);
  counter->Add(3);
  EXPECT_EQ(registry.Snapshot().counters.at("executor.replans"), 3);

  Gauge* gauge = registry.GetGauge("service.makespan_seconds");
  EXPECT_EQ(registry.GetGauge("service.makespan_seconds"), gauge);
  Histogram* histogram = registry.GetHistogram("cloud.latency", DefaultLatencyBucketsNs());
  EXPECT_EQ(registry.GetHistogram("cloud.latency", DefaultLatencyBucketsNs()), histogram);
}

TEST(Metrics, RegistryRejectsRedefiningHistogramBounds) {
  MetricsRegistry registry;
  registry.GetHistogram("h", {10, 100});
  EXPECT_THROW(registry.GetHistogram("h", {10, 1000}), std::invalid_argument);
}

TEST(Metrics, DisabledRegistryHandsOutNullAndHelpersNoOp) {
  MetricsRegistry registry(/*enabled=*/false);
  MetricsScope scope = registry.scope("executor");
  EXPECT_FALSE(scope.live());
  EXPECT_EQ(scope.GetCounter("replans"), nullptr);
  EXPECT_EQ(scope.GetGauge("jct_seconds"), nullptr);
  EXPECT_EQ(scope.GetHistogram("sync_wait_seconds"), nullptr);
  // The obs:: helpers are the no-op path instrumented code actually runs.
  obs::Inc(scope.GetCounter("replans"));
  obs::Set(scope.GetGauge("jct_seconds"), 1.0);
  obs::Add(scope.GetGauge("jct_seconds"), 1.0);
  obs::ObserveSeconds(scope.GetHistogram("sync_wait_seconds"), 1.0);
  obs::ObserveNanos(scope.GetHistogram("sync_wait_seconds"), 1);
  EXPECT_TRUE(registry.Snapshot().empty());

  MetricsScope default_scope;  // no registry at all
  EXPECT_FALSE(default_scope.live());
  EXPECT_EQ(default_scope.GetCounter("x"), nullptr);
  EXPECT_EQ(default_scope.Sub("warm").GetCounter("x"), nullptr);
}

TEST(Metrics, ScopesPrefixNamesAndNest) {
  MetricsRegistry registry;
  MetricsScope cloud = registry.scope("cloud");
  EXPECT_TRUE(cloud.live());
  obs::Inc(cloud.GetCounter("instances_launched"));
  obs::Inc(cloud.Sub("warm").GetCounter("warm_hits"), 2);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("cloud.instances_launched"), 1);
  EXPECT_EQ(snap.counters.at("cloud.warm.warm_hits"), 2);
}

TEST(Metrics, SnapshotMergeAddsCountersGaugesAndHistograms) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("executor.crashes")->Add(2);
  b.GetCounter("executor.crashes")->Add(3);
  b.GetCounter("executor.replans")->Add(1);  // only in b
  a.GetGauge("executor.recovery_seconds")->Add(10.0);
  b.GetGauge("executor.recovery_seconds")->Add(5.0);
  a.GetHistogram("executor.stage_seconds", {1000})->RecordNanos(500);
  b.GetHistogram("executor.stage_seconds", {1000})->RecordNanos(2000);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.counters.at("executor.crashes"), 5);
  EXPECT_EQ(merged.counters.at("executor.replans"), 1);
  EXPECT_DOUBLE_EQ(merged.gauges.at("executor.recovery_seconds"), 15.0);
  EXPECT_EQ(merged.histograms.at("executor.stage_seconds").count, 2);
  EXPECT_EQ(merged.histograms.at("executor.stage_seconds").sum_ns, 2500);
}

TEST(Metrics, SnapshotMergeIsOrderIndependentForCountersAndHistograms) {
  // The service merges per-job executor snapshots in completion order,
  // which faults can permute — fleet totals must not depend on it.
  std::mt19937_64 rng(0x5EED'0001);
  std::uniform_int_distribution<int64_t> delta(0, 1000);
  std::vector<MetricsSnapshot> parts;
  for (int j = 0; j < 6; ++j) {
    MetricsRegistry registry;
    registry.GetCounter("executor.crashes")->Add(delta(rng));
    Histogram* h = registry.GetHistogram("executor.stage_seconds", DefaultLatencyBucketsNs());
    for (int i = 0; i < 50; ++i) {
      h->RecordNanos(delta(rng) * 1'000'000);
    }
    parts.push_back(registry.Snapshot());
  }
  MetricsSnapshot forward;
  for (const MetricsSnapshot& part : parts) {
    forward.Merge(part);
  }
  MetricsSnapshot backward;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    backward.Merge(*it);
  }
  EXPECT_EQ(forward.counters, backward.counters);
  EXPECT_EQ(forward.histograms, backward.histograms);
}

TEST(Metrics, ToJsonIsDeterministicAndParses) {
  MetricsRegistry registry;
  registry.GetCounter("b.second")->Add(2);
  registry.GetCounter("a.first")->Add(1);
  registry.GetGauge("z.gauge")->Set(0.125);
  registry.GetHistogram("m.hist", {10, 100})->RecordNanos(42);
  const std::string json = registry.ToJson();
  EXPECT_EQ(json, registry.Snapshot().ToJson());  // byte-stable

  const JsonValue doc = JsonValue::Parse(json);
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("a.first").number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("b.second").number(), 2.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("z.gauge").number(), 0.125);
  const JsonValue& hist = doc.at("histograms").at("m.hist");
  EXPECT_EQ(hist.at("bounds_ns").size(), 2u);
  EXPECT_EQ(hist.at("counts").size(), 3u);
  EXPECT_DOUBLE_EQ(hist.at("count").number(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("sum_ns").number(), 42.0);
}

TEST(MetricsRegistryConcurrency, ParallelRecordersLoseNoIncrements) {
  // The parallel plan evaluator bumps shared counters from worker threads;
  // handles must be safe without external locking.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("planner.stage_evaluations");
  Gauge* gauge = registry.GetGauge("planner.seconds");
  Histogram* histogram = registry.GetHistogram("planner.latency", DefaultLatencyBucketsNs());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add();
        gauge->Add(1.0);
        histogram->RecordNanos(1'000'000);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(gauge->value(), kThreads * kPerThread);
  const HistogramSnapshot snap = histogram->Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.sum_ns, static_cast<int64_t>(kThreads) * kPerThread * 1'000'000);
}

TEST(MetricsRegistryConcurrency, FindOrCreateRacesResolveToOneHandle) {
  // Threads race to resolve the same names; everyone must get the same
  // stable pointer and no increment may be lost to a duplicate metric.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> resolved(kThreads, nullptr);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &resolved, t] {
      for (int i = 0; i < 200; ++i) {
        Counter* counter = registry.GetCounter("raced.counter." + std::to_string(i % 10));
        counter->Add();
      }
      resolved[static_cast<size_t>(t)] = registry.GetCounter("raced.counter.0");
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(resolved[static_cast<size_t>(t)], resolved[0]);
  }
  const MetricsSnapshot snap = registry.Snapshot();
  int64_t total = 0;
  for (const auto& [name, value] : snap.counters) {
    (void)name;
    total += value;
  }
  EXPECT_EQ(total, kThreads * 200);
}

TEST(Json, ParsesScalarsArraysAndNestedObjects) {
  EXPECT_TRUE(JsonValue::Parse("null").is_null());
  EXPECT_TRUE(JsonValue::Parse("true").bool_value());
  EXPECT_FALSE(JsonValue::Parse("false").bool_value());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-12.5e2").number(), -1250.0);
  EXPECT_EQ(JsonValue::Parse("\"a\\\"b\\n\"").string(), "a\"b\n");
  const JsonValue doc = JsonValue::Parse(R"({"a": [1, 2, {"b": "c"}], "d": {}})");
  EXPECT_EQ(doc.at("a").size(), 3u);
  EXPECT_EQ(doc.at("a").at(2).at("b").string(), "c");
  EXPECT_TRUE(doc.at("d").is_object());
  EXPECT_EQ(doc.at("d").size(), 0u);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::Parse(""), std::invalid_argument);
  EXPECT_THROW(JsonValue::Parse("{"), std::invalid_argument);
  EXPECT_THROW(JsonValue::Parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(JsonValue::Parse("{\"a\": 1} trailing"), std::invalid_argument);
  EXPECT_THROW(JsonValue::Parse("'single'"), std::invalid_argument);
}

TEST(Json, EqualityIgnoresMemberOrderButNotValues) {
  const JsonValue a = JsonValue::Parse(R"({"x": 1, "y": [true, "s"]})");
  const JsonValue b = JsonValue::Parse(R"({"y": [true, "s"], "x": 1})");
  const JsonValue c = JsonValue::Parse(R"({"x": 2, "y": [true, "s"]})");
  const JsonValue d = JsonValue::Parse(R"({"y": ["s", true], "x": 1})");  // array order matters
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(Json, EscapeHandlesQuotesBackslashesAndControlBytes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  const std::string escaped = JsonEscape(std::string(1, '\x01'));
  EXPECT_EQ(escaped, "\\u0001");
}

}  // namespace
}  // namespace rubberband
