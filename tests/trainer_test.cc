#include <gtest/gtest.h>

#include <cmath>

#include "src/common/stats.h"
#include "src/trainer/dataset.h"
#include "src/trainer/learning_curve.h"
#include "src/trainer/model_zoo.h"
#include "src/trainer/search_space.h"
#include "src/trainer/synthetic_trainer.h"

namespace rubberband {
namespace {

TEST(Dataset, CatalogSizes) {
  EXPECT_NEAR(Cifar10().size_gb, 0.15, 1e-9);
  EXPECT_NEAR(ImageNet().size_gb, 150.0, 1e-9);
  EXPECT_GT(ImageNet().num_train_samples, 1'000'000);
  ASSERT_TRUE(FindDataset("cifar100").has_value());
  EXPECT_FALSE(FindDataset("mnist").has_value());
}

TEST(SearchSpace, SamplesWithinBounds) {
  SearchSpace space;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const HyperparameterConfig config = space.Sample(rng);
    EXPECT_EQ(config.id, i);  // sequential ids
    EXPECT_GE(config.learning_rate, 1e-4);
    EXPECT_LE(config.learning_rate, 1.0);
    EXPECT_GE(config.weight_decay, 1e-6);
    EXPECT_LE(config.weight_decay, 1e-2);
    EXPECT_GE(config.momentum, 0.80);
    EXPECT_LE(config.momentum, 0.99);
    EXPECT_GE(config.quality, 0.0);
    EXPECT_LE(config.quality, 1.0);
  }
}

TEST(SearchSpace, QualityPeaksAtHiddenOptimum) {
  SearchSpace space;
  HyperparameterConfig optimal;
  optimal.learning_rate = 0.1;    // 10^-1
  optimal.weight_decay = 1e-4;    // 10^-4
  optimal.momentum = 0.9;
  EXPECT_NEAR(space.Quality(optimal), 1.0, 1e-9);

  HyperparameterConfig off = optimal;
  off.learning_rate = 1e-4;
  EXPECT_LT(space.Quality(off), space.Quality(optimal));
}

TEST(SearchSpace, QualityIsDeterministicInHyperparameters) {
  SearchSpace space;
  Rng rng(3);
  const HyperparameterConfig config = space.Sample(rng);
  EXPECT_DOUBLE_EQ(space.Quality(config), config.quality);
}

TEST(LearningCurve, MonotoneWithDiminishingReturns) {
  const LearningCurveModel curve{0.1, 0.7, 0.2, 10.0, 0.0};
  double prev = curve.ExpectedAccuracy(0.5, 0.0);
  double prev_gain = 1e9;
  for (int t = 1; t <= 64; ++t) {
    const double acc = curve.ExpectedAccuracy(0.5, t);
    EXPECT_GT(acc, prev);
    const double gain = acc - prev;  // per-iteration improvement
    EXPECT_LE(gain, prev_gain + 1e-12);  // diminishing returns
    prev = acc;
    prev_gain = gain;
  }
}

TEST(LearningCurve, QualityOrdersAsymptotes) {
  const LearningCurveModel curve{0.1, 0.7, 0.2, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(curve.ExpectedAccuracy(0.0, 1e9), 0.7);
  EXPECT_NEAR(curve.ExpectedAccuracy(1.0, 1e9), 0.9, 1e-9);
  EXPECT_GT(curve.ExpectedAccuracy(0.9, 50.0), curve.ExpectedAccuracy(0.1, 50.0));
}

TEST(LearningCurve, NoiseShrinksWithProgress) {
  const LearningCurveModel curve{0.1, 0.7, 0.2, 10.0, 0.05};
  Rng rng(5);
  RunningStats early;
  RunningStats late;
  for (int i = 0; i < 2000; ++i) {
    early.Add(curve.NoisyAccuracy(0.5, 1.0, rng));
    late.Add(curve.NoisyAccuracy(0.5, 100.0, rng));
  }
  EXPECT_GT(early.stddev(), 4.0 * late.stddev());
}

TEST(LearningCurve, NoisyAccuracyStaysInUnitInterval) {
  const LearningCurveModel curve{0.0, 0.9, 0.1, 1.0, 0.5};
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double acc = curve.NoisyAccuracy(1.0, 0.5, rng);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
  }
}

TEST(ModelZoo, GradientAccumulationKeepsBatchConstant) {
  const WorkloadSpec bert = BertRte(32);
  // 8 per GPU: 1 GPU -> 4 micro-steps, 4 GPUs -> 1.
  EXPECT_EQ(bert.MicroSteps(1), 4);
  EXPECT_EQ(bert.MicroSteps(2), 2);
  EXPECT_EQ(bert.MicroSteps(4), 1);
  EXPECT_EQ(bert.MicroSteps(8), 1);

  const WorkloadSpec resnet = ResNet50(Cifar10(), 512);
  EXPECT_EQ(resnet.MicroSteps(1), 2);
  EXPECT_EQ(resnet.MicroSteps(2), 1);
}

TEST(ModelZoo, ScalingIsSubLinearForAllModels) {
  for (const WorkloadSpec& spec : {ResNet50(Cifar10(), 512), ResNet101Cifar10(),
                                   ResNet152Cifar100(), BertRte()}) {
    for (int gpus : {2, 4, 8, 16}) {
      EXPECT_LT(spec.true_scaling.Speedup(gpus), static_cast<double>(gpus)) << spec.name;
      EXPECT_GT(spec.true_scaling.Speedup(gpus), 1.0) << spec.name;
    }
  }
}

TEST(ModelZoo, BertScalesWorstAsInFigure4) {
  const double bert16 = BertRte().true_scaling.Speedup(16);
  for (const WorkloadSpec& spec :
       {ResNet50(Cifar10(), 512), ResNet101Cifar10(), ResNet152Cifar100()}) {
    EXPECT_LT(bert16, spec.true_scaling.Speedup(16)) << spec.name;
  }
}

TEST(ModelZoo, FindWorkloadByName) {
  ASSERT_TRUE(FindWorkload("resnet101-cifar10").has_value());
  EXPECT_EQ(FindWorkload("resnet101-cifar10")->dataset.name, "cifar10");
  EXPECT_FALSE(FindWorkload("vgg16").has_value());
}

SyntheticTrainer MakeTrainer(uint64_t seed = 1) {
  SearchSpace space;
  Rng rng(seed);
  return SyntheticTrainer(ResNet101Cifar10(), space.Sample(rng), seed);
}

TEST(SyntheticTrainer, LatencyFollowsScalingFunction) {
  SyntheticTrainer trainer = MakeTrainer();
  trainer.Configure(1, true);
  const double base = trainer.MeanIterLatency();
  trainer.Configure(8, true);
  EXPECT_NEAR(trainer.MeanIterLatency(), base / 5.4, 1e-9);
}

TEST(SyntheticTrainer, CrossNodePenaltyWhenScattered) {
  SyntheticTrainer trainer = MakeTrainer();
  trainer.Configure(4, true);
  const double packed = trainer.MeanIterLatency();
  trainer.Configure(4, false);
  EXPECT_NEAR(trainer.MeanIterLatency(), packed * 2.3, 1e-9);
}

TEST(SyntheticTrainer, SampleLatencyIsNoisyButPositive) {
  SyntheticTrainer trainer = MakeTrainer();
  trainer.Configure(1, true);
  RunningStats stats;
  for (int i = 0; i < 2000; ++i) {
    const double latency = trainer.SampleIterLatency();
    EXPECT_GT(latency, 0.0);
    stats.Add(latency);
  }
  EXPECT_NEAR(stats.mean(), trainer.MeanIterLatency(), 1.0);
  EXPECT_GT(stats.stddev(), 1.0);
}

TEST(SyntheticTrainer, AccuracyImprovesWithTraining) {
  SyntheticTrainer trainer = MakeTrainer();
  const double before = trainer.ExpectedAccuracy();
  trainer.Advance(20);
  EXPECT_GT(trainer.ExpectedAccuracy(), before);
  EXPECT_EQ(trainer.cum_iters(), 20);
}

TEST(SyntheticTrainer, CheckpointRestoreRoundTrips) {
  SyntheticTrainer trainer = MakeTrainer();
  trainer.Advance(7);
  const TrainerCheckpoint checkpoint = trainer.Checkpoint();
  trainer.Advance(5);
  EXPECT_EQ(trainer.cum_iters(), 12);
  trainer.Restore(checkpoint);
  EXPECT_EQ(trainer.cum_iters(), 7);
}

TEST(SyntheticTrainer, RestoreRejectsForeignCheckpoint) {
  SearchSpace space;
  Rng rng(1);
  SyntheticTrainer a(ResNet101Cifar10(), space.Sample(rng), 1);  // config id 0
  SyntheticTrainer b(ResNet101Cifar10(), space.Sample(rng), 2);  // config id 1
  a.Advance(3);
  EXPECT_THROW(b.Restore(a.Checkpoint()), std::logic_error);
}

TEST(SyntheticTrainer, SamplesPerSecondReflectsAllocation) {
  SyntheticTrainer trainer = MakeTrainer();
  trainer.Configure(1, true);
  const double one = trainer.SamplesPerSecond();
  trainer.Configure(8, true);
  EXPECT_NEAR(trainer.SamplesPerSecond(), one * 5.4, 1e-6);
}

TEST(SyntheticTrainer, InvalidUseThrows) {
  SyntheticTrainer trainer = MakeTrainer();
  EXPECT_THROW(trainer.Configure(0, true), std::invalid_argument);
  EXPECT_THROW(trainer.Advance(-1), std::invalid_argument);
}

}  // namespace
}  // namespace rubberband
