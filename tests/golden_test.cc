// Golden-artifact tests: a fixed-seed run's Chrome trace JSON and metrics
// JSON are checked in under tests/golden/ and compared schema-aware — the
// JsonValue comparator ignores member order but not values, so formatting
// churn cannot break the test while a changed duration or counter will.
//
// To regenerate after an intentional behavior change:
//   RB_UPDATE_GOLDEN=1 ./rubberband_conformance_tests --gtest_filter='Golden.*'

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/json.h"
#include "src/rubberband.h"

#ifndef RB_TEST_GOLDEN_DIR
#error "RB_TEST_GOLDEN_DIR must point at tests/golden"
#endif

namespace rubberband {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(RB_TEST_GOLDEN_DIR) + "/" + name;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool UpdateGoldens() { return std::getenv("RB_UPDATE_GOLDEN") != nullptr; }

// The one fixed-seed scenario both goldens are generated from. Everything
// here is deterministic: seeded planner, seeded executor, simulated clock.
ExecutionReport GoldenRun() {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  ExecutorOptions options;
  options.seed = 3;
  options.observe = true;
  return ExecutePlan(spec, AllocationPlan({8, 8, 8}), workload, cloud, options);
}

void CompareAgainstGolden(const std::string& actual, const std::string& golden_name) {
  const std::string path = GoldenPath(golden_name);
  if (UpdateGoldens()) {
    std::ofstream out(path, std::ios::binary);
    out << actual;
    ASSERT_TRUE(out.good()) << "failed to update " << path;
    GTEST_SKIP() << "updated " << path;
  }
  const std::string golden = ReadFileOrEmpty(path);
  ASSERT_FALSE(golden.empty()) << path
                               << " is missing; regenerate with RB_UPDATE_GOLDEN=1";
  // Schema-aware comparison: parse both sides and compare values. A
  // mismatch falls back to the raw strings so the diff is visible.
  const JsonValue actual_doc = JsonValue::Parse(actual);
  const JsonValue golden_doc = JsonValue::Parse(golden);
  if (actual_doc != golden_doc) {
    EXPECT_EQ(actual, golden) << golden_name
                              << " drifted from its golden; if intentional, regenerate with "
                                 "RB_UPDATE_GOLDEN=1";
  }
}

TEST(Golden, ChromeTraceMatchesCheckedInArtifact) {
  CompareAgainstGolden(ChromeTraceFromReport(GoldenRun()), "chrome_trace_seed3.json");
}

TEST(Golden, MetricsSnapshotMatchesCheckedInArtifact) {
  CompareAgainstGolden(GoldenRun().metrics.ToJson(), "metrics_seed3.json");
}

TEST(Golden, ArtifactsAreCrossConsistent) {
  // The two checked-in artifacts describe the same run, so they must agree
  // with each other: the Chrome trace's stage-total spans sum to the JCT
  // gauge in the metrics snapshot (microseconds vs seconds).
  const std::string chrome = ReadFileOrEmpty(GoldenPath("chrome_trace_seed3.json"));
  const std::string metrics = ReadFileOrEmpty(GoldenPath("metrics_seed3.json"));
  if (chrome.empty() || metrics.empty()) {
    GTEST_SKIP() << "goldens not generated yet";
  }
  const JsonValue trace_doc = JsonValue::Parse(chrome);
  const JsonValue metrics_doc = JsonValue::Parse(metrics);

  double stage_total_us = 0.0;
  for (const JsonValue& event : trace_doc.at("traceEvents").array()) {
    if (event.at("name").string() == "stage-total") {
      stage_total_us += event.at("dur").number();
    }
  }
  const double jct_seconds = metrics_doc.at("gauges").at("executor.jct_seconds").number();
  EXPECT_NEAR(stage_total_us / 1e6, jct_seconds, 1e-3);
  EXPECT_GT(jct_seconds, 0.0);
}

}  // namespace
}  // namespace rubberband
