// Equivalence and instrumentation tests for the fast planning path: the
// stage-incremental PlanEvaluator must be bit-identical to the fresh-DAG
// simulation, serial or parallel, and its caches must be observable.

#include "src/planner/evaluator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "src/common/thread_pool.h"
#include "src/spec/sha.h"
#include "src/trainer/model_zoo.h"

namespace rubberband {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](int i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  int sum = 0;
  pool.ParallelFor(10, [&](int i) { sum += i; });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.ParallelFor(batch, [&](int) { ++total; });
  }
  EXPECT_EQ(total.load(), 49 * 50 / 2);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(64,
                                [](int i) {
                                  if (i == 7) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool must survive a throwing batch.
  std::atomic<int> count{0};
  pool.ParallelFor(16, [&](int) { ++count; });
  EXPECT_EQ(count.load(), 16);
}

PlannerInputs TestInputs(Seconds deadline, BillingModel billing = BillingModel::kPerInstance) {
  PlannerInputs inputs;
  inputs.spec = MakeSha(8, 2, 14, 2);
  inputs.model.iter_latency_1gpu = Distribution::TruncatedNormal(30.0, 3.0, 0.0);
  inputs.model.scaling = ScalingFunction::FromPoints({{1, 1.0}, {2, 1.8}, {4, 3.0}, {8, 4.0}});
  inputs.model.trial_startup_seconds = 2.0;
  inputs.model.sync_seconds = 1.0;
  inputs.cloud.instance = P3_8xlarge();
  inputs.cloud.provisioning = ProvisioningModel::Fixed(2.0, 5.0);
  inputs.cloud.pricing.billing = billing;
  inputs.deadline = deadline;
  return inputs;
}

void ExpectSameEstimate(const PlanEstimate& a, const PlanEstimate& b) {
  EXPECT_EQ(a.jct_mean, b.jct_mean);
  EXPECT_EQ(a.jct_stddev, b.jct_stddev);
  EXPECT_EQ(a.cost_mean, b.cost_mean);
  EXPECT_EQ(a.compute_cost_mean, b.compute_cost_mean);
  EXPECT_EQ(a.data_cost_mean, b.data_cost_mean);
  EXPECT_EQ(a.cost_stddev_dollars, b.cost_stddev_dollars);
}

TEST(PlanEvaluator, IncrementalMatchesFreshBitForBit) {
  for (BillingModel billing : {BillingModel::kPerInstance, BillingModel::kPerFunction}) {
    const PlannerInputs inputs = TestInputs(Minutes(30), billing);
    PlannerOptions incremental_options;
    PlannerOptions fresh_options;
    fresh_options.evaluation = PlanEvaluation::kFresh;
    PlanEvaluator incremental(inputs, incremental_options);
    PlanEvaluator fresh(inputs, fresh_options);

    const int n = inputs.spec.num_stages();
    std::vector<AllocationPlan> plans = {
        AllocationPlan::Uniform(n, 1),  AllocationPlan::Uniform(n, 8),
        AllocationPlan::Uniform(n, 16), AllocationPlan({16, 8, 4}),
        AllocationPlan({8, 8, 2}),      AllocationPlan({2, 4, 8}),
    };
    for (const AllocationPlan& plan : plans) {
      ASSERT_EQ(plan.num_stages(), n);
      SCOPED_TRACE(plan.ToString());
      ExpectSameEstimate(incremental.Evaluate(plan), fresh.Evaluate(plan));
    }
  }
}

TEST(PlanEvaluator, MatchesEstimatePlanExceptOptInPercentile) {
  const PlannerInputs inputs = TestInputs(Minutes(30));
  const PlannerOptions options;
  const AllocationPlan plan = AllocationPlan::Uniform(inputs.spec.num_stages(), 8);

  const PlanEstimate reference = EstimatePlan(inputs, plan, options);
  PlanEvaluator evaluator(inputs, options);
  const PlanEstimate estimate = evaluator.Evaluate(plan);

  ExpectSameEstimate(estimate, reference);
  // EstimatePlan keeps percentile collection on (one-off public API); the
  // evaluator's hot loop opts out.
  EXPECT_GT(reference.jct_p95, 0.0);
  EXPECT_EQ(estimate.jct_p95, 0.0);
}

using PlannerFn = PlannedJob (*)(PlanEvaluator&);

void ExpectSamePlannedJob(const PlannedJob& a, const PlannedJob& b) {
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.planner, b.planner);
  ExpectSameEstimate(a.estimate, b.estimate);
}

TEST(PlanEvaluator, PlannersIdenticalAcrossFreshIncrementalAndParallel) {
  const PlannerFn planners[] = {&PlanStatic, &PlanNaiveElastic, &PlanGreedy};
  for (BillingModel billing : {BillingModel::kPerInstance, BillingModel::kPerFunction}) {
    for (double minutes : {12.0, 30.0}) {
      const PlannerInputs inputs = TestInputs(Minutes(minutes), billing);
      for (PlannerFn planner : planners) {
        PlannerOptions fresh_options;
        fresh_options.evaluation = PlanEvaluation::kFresh;
        PlannerOptions serial_options;
        PlannerOptions parallel_options;
        parallel_options.eval_threads = 4;

        PlanEvaluator fresh(inputs, fresh_options);
        PlanEvaluator serial(inputs, serial_options);
        PlanEvaluator parallel(inputs, parallel_options);

        const PlannedJob from_fresh = planner(fresh);
        const PlannedJob from_serial = planner(serial);
        const PlannedJob from_parallel = planner(parallel);
        SCOPED_TRACE(from_serial.planner + " @ " + std::to_string(minutes) + " min");
        ExpectSamePlannedJob(from_serial, from_fresh);
        ExpectSamePlannedJob(from_serial, from_parallel);
      }
    }
  }
}

TEST(PlanEvaluator, MinTimePlannerIdenticalAcrossModes) {
  const PlannerInputs inputs = TestInputs(0.0);
  const Money budget = Money::FromDollars(100.0);
  PlannerOptions fresh_options;
  fresh_options.evaluation = PlanEvaluation::kFresh;
  PlannerOptions parallel_options;
  parallel_options.eval_threads = 4;

  PlanEvaluator fresh(inputs, fresh_options);
  PlanEvaluator serial(inputs, PlannerOptions{});
  PlanEvaluator parallel(inputs, parallel_options);
  const PlannedJob from_serial = PlanGreedyMinTime(serial, budget);
  ExpectSamePlannedJob(from_serial, PlanGreedyMinTime(fresh, budget));
  ExpectSamePlannedJob(from_serial, PlanGreedyMinTime(parallel, budget));
}

TEST(PlanEvaluator, PlanMemoAndStageCacheAreObservable) {
  const PlannerInputs inputs = TestInputs(Minutes(30));
  PlanEvaluator evaluator(inputs, PlannerOptions{});
  const int n = inputs.spec.num_stages();

  const AllocationPlan plan = AllocationPlan::Uniform(n, 8);
  evaluator.Evaluate(plan);
  EXPECT_EQ(evaluator.stats().plan_evaluations, 1);
  EXPECT_EQ(evaluator.stats().stage_evaluations, n);

  // Identical plan: pure memo hit, no stage work.
  evaluator.Evaluate(plan);
  EXPECT_EQ(evaluator.stats().plan_memo_hits, 1);
  EXPECT_EQ(evaluator.stats().stage_evaluations, n);

  // Changing only the last stage re-simulates exactly one stage; the
  // prefix (same gpus, same instance chain) is served from the cache.
  AllocationPlan tweaked = plan;
  tweaked.gpus(n - 1) = 4;
  evaluator.Evaluate(tweaked);
  const PlannerCacheStats stats = evaluator.stats();
  EXPECT_EQ(stats.plan_evaluations, 2);
  EXPECT_EQ(stats.stage_evaluations, n + 1);
  EXPECT_EQ(stats.stage_cache_hits, n - 1);
  EXPECT_DOUBLE_EQ(stats.PlanHitRate(), 1.0 / 3.0);
}

TEST(PlanEvaluator, SetDeadlinePreservesCaches) {
  const PlannerInputs inputs = TestInputs(Minutes(30));
  PlanEvaluator evaluator(inputs, PlannerOptions{});
  const AllocationPlan plan = AllocationPlan::Uniform(inputs.spec.num_stages(), 8);

  const PlanEstimate before = evaluator.Evaluate(plan);
  evaluator.set_deadline(Minutes(10));
  EXPECT_EQ(evaluator.inputs().deadline, Minutes(10));
  const PlanEstimate after = evaluator.Evaluate(plan);

  ExpectSameEstimate(before, after);
  EXPECT_EQ(evaluator.stats().plan_evaluations, 1);
  EXPECT_EQ(evaluator.stats().plan_memo_hits, 1);
}

TEST(PlanEvaluator, DuplicateWarmStartsAreSkipped) {
  // Multipliers {2, 2, 2} round to one distinct warm start; the dedup makes
  // the search do exactly the work of {2} — observable through the cache
  // counters — while returning the same plan.
  const PlannerInputs inputs = TestInputs(Minutes(20));
  PlannerOptions duplicated;
  duplicated.warm_start_multipliers = {2.0, 2.0, 2.0};
  PlannerOptions single;
  single.warm_start_multipliers = {2.0};

  PlanEvaluator dup_eval(inputs, duplicated);
  PlanEvaluator single_eval(inputs, single);
  const PlannedJob dup_job = PlanGreedy(dup_eval);
  const PlannedJob single_job = PlanGreedy(single_eval);

  ExpectSamePlannedJob(dup_job, single_job);
  EXPECT_EQ(dup_eval.stats().plan_evaluations, single_eval.stats().plan_evaluations);
  EXPECT_EQ(dup_eval.stats().plan_memo_hits, single_eval.stats().plan_memo_hits);
}

TEST(PlanEvaluator, StatsAggregate) {
  PlannerCacheStats a;
  a.plan_evaluations = 3;
  a.plan_memo_hits = 1;
  PlannerCacheStats b;
  b.plan_evaluations = 1;
  b.plan_memo_hits = 3;
  b.stage_evaluations = 2;
  a += b;
  EXPECT_EQ(a.plan_evaluations, 4);
  EXPECT_EQ(a.plan_memo_hits, 4);
  EXPECT_EQ(a.stage_evaluations, 2);
  EXPECT_DOUBLE_EQ(a.PlanHitRate(), 0.5);
  EXPECT_DOUBLE_EQ(PlannerCacheStats{}.PlanHitRate(), 0.0);
}

}  // namespace
}  // namespace rubberband
