// Sim-vs-execution conformance suite (its own ctest label: conformance).
//
// Over a grid of (planner x billing model x fault profile) cases, each with
// a fixed seed, the suite checks three contracts:
//   1. Planning brackets execution: the planner's simulated estimate
//      (EstimatePlan through the chosen planner) brackets the executed JCT
//      and cost within tolerance.
//   2. Metrics reconcile with the trace exactly: registry counters equal
//      the event counts in the execution trace, the stage-total phase spans
//      tile [0, JCT] (they sum to the executed makespan), and the cloud's
//      billed-seconds gauge equals the billing meter to the last bit.
//   3. Observability is inert: the same run with observe on and off
//      produces bit-identical results.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/rubberband.h"

namespace rubberband {
namespace {

enum class FaultCase { kNone, kSpot, kFaulty };

struct ConformanceCase {
  const char* planner = "greedy";
  BillingModel billing = BillingModel::kPerInstance;
  FaultCase faults = FaultCase::kNone;

  std::string Name() const {
    std::string name = planner;
    name += billing == BillingModel::kPerInstance ? "_PerInstance" : "_PerFunction";
    switch (faults) {
      case FaultCase::kNone:
        name += "_FaultFree";
        break;
      case FaultCase::kSpot:
        name += "_Spot";
        break;
      case FaultCase::kFaulty:
        name += "_Faulty";
        break;
    }
    return name;
  }
};

std::vector<ConformanceCase> AllCases() {
  std::vector<ConformanceCase> cases;
  for (const char* planner : {"static", "naive", "greedy"}) {
    for (const BillingModel billing : {BillingModel::kPerInstance, BillingModel::kPerFunction}) {
      for (const FaultCase faults : {FaultCase::kNone, FaultCase::kSpot, FaultCase::kFaulty}) {
        cases.push_back(ConformanceCase{planner, billing, faults});
      }
    }
  }
  return cases;
}

CloudProfile CaseCloud(const ConformanceCase& test_case) {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  cloud.pricing.billing = test_case.billing;
  switch (test_case.faults) {
    case FaultCase::kNone:
      break;
    case FaultCase::kSpot:
      cloud.spot.enabled = true;
      cloud.spot.discount = 0.3;
      cloud.spot.mean_time_to_preemption = 3'600.0;
      break;
    case FaultCase::kFaulty:
      cloud.fault.provision_failure_rate = 0.1;
      cloud.fault.mtbf = 3'600.0;
      cloud.fault.checkpoint_failure_rate = 0.02;
      break;
  }
  return cloud;
}

PlannedJob PlanCase(const ConformanceCase& test_case, const PlannerInputs& inputs) {
  if (std::string(test_case.planner) == "static") {
    return PlanStatic(inputs);
  }
  if (std::string(test_case.planner) == "naive") {
    return PlanNaiveElastic(inputs);
  }
  return PlanGreedy(inputs);
}

// Runs the planned job on its own simulation + cloud (shared-cluster mode,
// so the test can inspect the provider's meter and registry afterwards).
struct ConformanceRun {
  ExecutionReport report;
  double billed_meter_seconds = 0.0;
  double billed_gauge_seconds = 0.0;
  MetricsSnapshot cloud_metrics;
};

ConformanceRun RunCase(const ConformanceCase& test_case, const PlannedJob& job,
                       const ExperimentSpec& spec, const WorkloadSpec& workload,
                       bool observe) {
  Simulation sim(0);
  SimulatedCloud cloud(sim, CaseCloud(test_case));
  SharedClusterContext context;
  context.sim = &sim;
  context.cloud = &cloud;
  context.source = &cloud;
  ExecutorOptions options;
  options.seed = 7;
  options.observe = observe;
  Executor executor(spec, job.plan, workload, context, options);
  cloud.SetPreemptionHandler([&](InstanceId id) {
    if (executor.OwnsInstance(id)) {
      executor.OnPreemption(id);
    }
  });
  cloud.SetCrashHandler([&](InstanceId id) {
    if (executor.OwnsInstance(id)) {
      executor.OnCrash(id);
    }
  });

  ConformanceRun run;
  bool done = false;
  executor.Start([&](const ExecutionReport& r) {
    run.report = r;
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
  run.billed_meter_seconds = cloud.meter().TotalInstanceSeconds();
  run.cloud_metrics = cloud.metrics().Snapshot();
  auto it = run.cloud_metrics.gauges.find("cloud.billed_instance_seconds");
  run.billed_gauge_seconds = it != run.cloud_metrics.gauges.end() ? it->second : -1.0;
  return run;
}

class Conformance : public ::testing::TestWithParam<ConformanceCase> {};

TEST_P(Conformance, SimulationBracketsExecutionAndMetricsReconcile) {
  const ConformanceCase& test_case = GetParam();
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  const ModelProfile profile = ProfileWorkload(workload).profile;
  const PlannerInputs inputs{spec, profile, CaseCloud(test_case), Minutes(45)};
  const PlannedJob job = PlanCase(test_case, inputs);
  ASSERT_GT(job.plan.num_stages(), 0);

  const ConformanceRun run = RunCase(test_case, job, spec, workload, /*observe=*/true);
  const ExecutionReport& report = run.report;
  ASSERT_GT(report.jct, 0.0);

  // --- 1. The simulated estimate brackets the executed outcome. ---
  // Fault-free execution tracks the estimate closely; fault profiles pay
  // recovery time the estimate does not model, so their bracket is looser.
  const double jct_slack = test_case.faults == FaultCase::kNone ? 0.5 : 1.5;
  // The estimate prices on-demand; a spot execution pays the discounted
  // rate (30% here), so its cost floor sits below the discount factor.
  const double cost_floor = test_case.faults == FaultCase::kSpot ? 0.2 : 0.3;
  EXPECT_GE(report.jct, job.estimate.jct_mean * 0.5) << job.plan.ToString();
  EXPECT_LE(report.jct, job.estimate.jct_mean * (1.0 + jct_slack)) << job.plan.ToString();
  EXPECT_GE(report.cost.Total().dollars(), job.estimate.cost_mean.dollars() * cost_floor);
  EXPECT_LE(report.cost.Total().dollars(), job.estimate.cost_mean.dollars() * (1.0 + jct_slack));

  // --- 2a. Stage-total spans tile [0, JCT]: they sum to the makespan. ---
  const std::vector<TimelineSpan> stage_totals = report.timeline.OfName("stage-total");
  ASSERT_EQ(static_cast<int>(stage_totals.size()), job.plan.num_stages());
  double tiled = 0.0;
  Seconds previous_end = 0.0;
  for (const TimelineSpan& span : stage_totals) {
    EXPECT_DOUBLE_EQ(span.start, previous_end) << "stage spans must tile without gaps";
    tiled += span.duration();
    previous_end = span.end;
  }
  EXPECT_NEAR(tiled, report.jct, 1e-6 * std::max(1.0, report.jct));
  EXPECT_DOUBLE_EQ(previous_end, report.jct);

  // --- 2b. Registry counters equal trace event counts exactly. ---
  const ExecutionTrace& trace = report.trace;
  const auto counter = [&](const char* name) {
    auto it = report.metrics.counters.find(name);
    return it != report.metrics.counters.end() ? it->second : 0;
  };
  EXPECT_EQ(counter("executor.preemptions"),
            static_cast<int64_t>(trace.OfType(TraceEventType::kPreemption).size()));
  EXPECT_EQ(counter("executor.crashes"),
            static_cast<int64_t>(trace.OfType(TraceEventType::kInstanceCrash).size()));
  EXPECT_EQ(counter("executor.trial_restarts"),
            static_cast<int64_t>(trace.OfType(TraceEventType::kTrialRestart).size()));
  EXPECT_EQ(counter("executor.replans"),
            static_cast<int64_t>(trace.OfType(TraceEventType::kReplan).size()));
  EXPECT_EQ(counter("executor.checkpoint_retries"),
            static_cast<int64_t>(trace.OfType(TraceEventType::kCheckpointRetry).size()));
  EXPECT_EQ(counter("executor.degraded_stages"),
            static_cast<int64_t>(trace.OfType(TraceEventType::kStageDegraded).size()));

  // The report's scalar fields are views of the same counters.
  EXPECT_EQ(counter("executor.preemptions"), report.preemptions);
  EXPECT_EQ(counter("executor.crashes"), report.crashes);
  EXPECT_EQ(counter("executor.trial_restarts"), report.trial_restarts);
  EXPECT_EQ(counter("executor.checkpoint_saves"), report.checkpoint_saves);
  EXPECT_EQ(counter("executor.checkpoint_fetches"), report.checkpoint_fetches);

  // --- 2c. The cloud's billed-seconds gauge equals the meter bit-exactly. ---
  EXPECT_DOUBLE_EQ(run.billed_gauge_seconds, run.billed_meter_seconds);
  // And the instance ledger balances: every launch was terminated or
  // reclaimed by the end of the run.
  const auto cloud_counter = [&](const char* name) {
    auto it = run.cloud_metrics.counters.find(name);
    return it != run.cloud_metrics.counters.end() ? it->second : 0;
  };
  EXPECT_EQ(cloud_counter("cloud.instances_launched"),
            cloud_counter("cloud.instances_terminated") +
                cloud_counter("cloud.instances_preempted") +
                cloud_counter("cloud.instances_crashed"));

  // --- 3. Observability is inert: observe off reproduces the run. ---
  const ConformanceRun baseline = RunCase(test_case, job, spec, workload, /*observe=*/false);
  EXPECT_DOUBLE_EQ(baseline.report.jct, report.jct);
  EXPECT_EQ(baseline.report.cost.Total().micros(), report.cost.Total().micros());
  EXPECT_DOUBLE_EQ(baseline.report.best_accuracy, report.best_accuracy);
  EXPECT_EQ(baseline.report.trace.ToCsv(), trace.ToCsv());
  EXPECT_TRUE(baseline.report.timeline.empty());  // spans are observe-only depth
  EXPECT_DOUBLE_EQ(baseline.billed_meter_seconds, run.billed_meter_seconds);

  // The exported artifacts are well-formed JSON documents.
  EXPECT_NO_THROW(JsonValue::Parse(report.metrics.ToJson()));
  EXPECT_NO_THROW(JsonValue::Parse(ChromeTraceFromReport(report)));
}

INSTANTIATE_TEST_SUITE_P(Grid, Conformance, ::testing::ValuesIn(AllCases()),
                         [](const ::testing::TestParamInfo<ConformanceCase>& param_info) {
                           return param_info.param.Name();
                         });

TEST(ConformanceService, ServiceMetricsReconcileWithJobReports) {
  // Fleet-level conformance: the service's merged snapshot equals the sum
  // of its per-job executor counters, and the billed-seconds gauge equals
  // the shared provider's meter.
  ServiceConfig config;
  config.cloud.instance = P3_8xlarge();
  config.cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  config.cloud.fault.provision_failure_rate = 0.05;
  config.cloud.fault.mtbf = 7'200.0;
  config.capacity_gpus = 32;
  config.observe = true;
  config.seed = 2;
  config.replan_on_faults = true;
  TuningService service(config);
  for (int i = 0; i < 3; ++i) {
    JobRequest job;
    job.name = "job-" + std::to_string(i);
    job.spec = MakeSha(8, 2, 14, 2);
    job.workload = ResNet101Cifar10();
    job.submit_at = 900.0 * i;
    job.deadline = Minutes(60);
    service.Submit(job);
  }
  const ServiceReport report = service.Run();
  ASSERT_EQ(report.completed, 3);

  const auto counter = [&](const char* name) {
    auto it = report.metrics.counters.find(name);
    return it != report.metrics.counters.end() ? it->second : 0;
  };
  EXPECT_EQ(counter("service.jobs_arrived"), 3);
  EXPECT_EQ(counter("service.jobs_completed"), 3);
  EXPECT_EQ(counter("executor.crashes"), report.total_crashes);
  EXPECT_EQ(counter("executor.provision_failures"), report.total_provision_failures);
  EXPECT_EQ(counter("executor.replans"), report.total_replans);

  // Per-job traces reconcile with the fleet counters.
  int64_t crashes_in_traces = 0;
  for (const JobOutcome& job : report.jobs) {
    crashes_in_traces +=
        static_cast<int64_t>(job.trace.OfType(TraceEventType::kInstanceCrash).size());
    // Each job's stage-total spans sum to its JCT.
    double tiled = 0.0;
    for (const TimelineSpan& span : job.timeline.OfName("stage-total")) {
      tiled += span.duration();
    }
    EXPECT_NEAR(tiled, job.jct, 1e-6 * std::max(1.0, job.jct)) << job.name;
  }
  EXPECT_EQ(counter("executor.crashes"), crashes_in_traces);

  // Fleet gauges mirror the report's headline numbers.
  EXPECT_DOUBLE_EQ(report.metrics.gauges.at("service.makespan_seconds"), report.makespan);
  EXPECT_DOUBLE_EQ(report.metrics.gauges.at("service.total_cost_dollars"),
                   report.total_cost.Total().dollars());
  EXPECT_NO_THROW(JsonValue::Parse(report.metrics.ToJson()));
  EXPECT_NO_THROW(JsonValue::Parse(ChromeTraceFromService(report)));
}

TEST(ConformanceService, ObserveOffServiceRunIsBitIdentical) {
  const auto run_service = [](bool observe) {
    ServiceConfig config;
    config.cloud.instance = P3_8xlarge();
    config.cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
    config.capacity_gpus = 32;
    config.observe = observe;
    config.seed = 5;
    TuningService service(config);
    for (int i = 0; i < 2; ++i) {
      JobRequest job;
      job.name = "job-" + std::to_string(i);
      job.spec = MakeSha(8, 2, 14, 2);
      job.workload = ResNet101Cifar10();
      job.submit_at = 600.0 * i;
      job.deadline = Minutes(60);
      service.Submit(job);
    }
    return service.Run();
  };
  const ServiceReport on = run_service(true);
  const ServiceReport off = run_service(false);
  EXPECT_DOUBLE_EQ(on.makespan, off.makespan);
  EXPECT_EQ(on.total_cost.Total().micros(), off.total_cost.Total().micros());
  ASSERT_EQ(on.jobs.size(), off.jobs.size());
  for (size_t i = 0; i < on.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(on.jobs[i].jct, off.jobs[i].jct);
    EXPECT_EQ(on.jobs[i].trace.ToCsv(), off.jobs[i].trace.ToCsv());
  }
  EXPECT_TRUE(off.timeline.empty());
  EXPECT_FALSE(on.timeline.empty());
}

}  // namespace
}  // namespace rubberband
