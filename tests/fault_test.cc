// Fault-injection framework and the self-healing control plane:
// provisioning failures with retry/backoff, init-time deaths, hardware
// crashes, checkpoint-transfer recovery, the scale-up waiter deadlock fix,
// and deadline-aware re-planning.

#include <gtest/gtest.h>

#include <vector>

#include "src/rubberband.h"

namespace rubberband {
namespace {

CloudProfile TestCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  return cloud;
}

TEST(FaultInjector, DisabledClassesNeverFireAndNeverDraw) {
  FaultProfile profile;  // everything off
  EXPECT_FALSE(profile.Any());
  FaultInjector faults(profile, Rng(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(faults.ProvisionFails());
    EXPECT_FALSE(faults.InitFails());
    EXPECT_FALSE(faults.CheckpointFetchFails());
  }
  EXPECT_FALSE(faults.crashes_enabled());
  EXPECT_EQ(faults.num_provision_failures(), 0);
  EXPECT_EQ(faults.num_init_failures(), 0);
  EXPECT_EQ(faults.num_checkpoint_failures(), 0);
}

TEST(FaultInjector, CertainFailureAlwaysFires) {
  FaultProfile profile;
  profile.provision_failure_rate = 1.0;
  FaultInjector faults(profile, Rng(1));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(faults.ProvisionFails());
  }
  EXPECT_EQ(faults.num_provision_failures(), 10);
}

TEST(FaultInjector, SampledFailuresAreDeterministicPerSeed) {
  FaultProfile profile;
  profile.provision_failure_rate = 0.4;
  profile.mtbf = 500.0;
  FaultInjector a(profile, Rng(9));
  FaultInjector b(profile, Rng(9));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.ProvisionFails(), b.ProvisionFails());
    EXPECT_EQ(a.SampleTimeToCrash(), b.SampleTimeToCrash());
    EXPECT_GT(a.SampleTimeToCrash(), 0.0);
    (void)b.SampleTimeToCrash();
  }
  EXPECT_GT(a.num_provision_failures(), 0);
  EXPECT_LT(a.num_provision_failures(), 200);
}

TEST(SimulatedCloudFaults, RejectedRequestsFailAfterQueuingAndBillNothing) {
  Simulation sim(3);
  CloudProfile profile = TestCloud();
  profile.fault.provision_failure_rate = 1.0;
  SimulatedCloud cloud(sim, profile);
  int ready = 0;
  int failed = 0;
  cloud.RequestInstances(
      4, 0.0, [&](InstanceId) { ++ready; }, [&] { ++failed; });
  EXPECT_EQ(cloud.num_pending(), 4);
  sim.Run();
  EXPECT_EQ(ready, 0);
  EXPECT_EQ(failed, 4);
  EXPECT_EQ(cloud.num_pending(), 0);
  EXPECT_EQ(cloud.num_provision_failures(), 4);
  // A rejection bills nothing — the instance never launched.
  EXPECT_EQ(cloud.meter().TotalInstanceSeconds(), 0.0);
  EXPECT_EQ(cloud.meter().num_acquisitions(), 0);
  // The rejection arrives after the queuing delay, not instantly.
  EXPECT_GE(sim.now(), 5.0);
}

TEST(SimulatedCloudFaults, InitDeathsBillTheLaunchToDeathInterval) {
  Simulation sim(3);
  CloudProfile profile = TestCloud();
  profile.fault.init_failure_rate = 1.0;
  SimulatedCloud cloud(sim, profile);
  int ready = 0;
  int failed = 0;
  cloud.RequestInstances(
      3, 0.0, [&](InstanceId) { ++ready; }, [&] { ++failed; });
  sim.Run();
  EXPECT_EQ(ready, 0);
  EXPECT_EQ(failed, 3);
  EXPECT_EQ(cloud.num_init_failures(), 3);
  // The provider charges while init scripts run: launch -> death = init_s.
  EXPECT_NEAR(cloud.meter().TotalInstanceSeconds(), 3 * 10.0, 1e-9);
  EXPECT_EQ(cloud.meter().num_acquisitions(), 3);
}

TEST(SimulatedCloudFaults, ReadyInstancesCrashAtTheConfiguredMtbf) {
  Simulation sim(5);
  CloudProfile profile = TestCloud();
  profile.fault.mtbf = 100.0;
  SimulatedCloud cloud(sim, profile);
  std::vector<InstanceId> crashed;
  cloud.SetCrashHandler([&](InstanceId id) { crashed.push_back(id); });
  cloud.RequestInstances(10, 0.0, [](InstanceId) {});
  sim.RunUntil(10'000.0);  // 100 mean lifetimes: everything crashed
  EXPECT_EQ(crashed.size(), 10u);
  EXPECT_EQ(cloud.num_crashes(), 10);
  EXPECT_EQ(cloud.num_ready(), 0);
  // Crashed lifetimes are still billed (like spot reclamations).
  EXPECT_GT(cloud.meter().TotalInstanceSeconds(), 0.0);
}

TEST(SimulatedCloudFaults, TerminatedInstancesDoNotCrash) {
  Simulation sim(5);
  CloudProfile profile = TestCloud();
  profile.fault.mtbf = 100.0;
  SimulatedCloud cloud(sim, profile);
  std::vector<InstanceId> ids;
  cloud.SetCrashHandler([&](InstanceId) { FAIL() << "crashed a terminated instance"; });
  cloud.RequestInstances(5, 0.0, [&](InstanceId id) { ids.push_back(id); });
  sim.RunUntil(16.0);  // all ready at t=15
  for (InstanceId id : ids) {
    cloud.TerminateInstance(id);
  }
  sim.Run();  // drain the now-stale crash events
  EXPECT_EQ(cloud.num_crashes(), 0);
}

TEST(SimulatedCloudFaults, TerminateAllCancelsInFlightRequests) {
  Simulation sim(0);
  SimulatedCloud cloud(sim, TestCloud());  // queue 5s, init 10s
  int ready = 0;
  int failed = 0;
  cloud.RequestInstances(
      4, 0.0, [&](InstanceId) { ++ready; }, [&] { ++failed; });
  // t=7: all four slots launched (t=5) but still initializing (ready t=15).
  sim.ScheduleAt(7.0, [&] { cloud.TerminateAll(); });
  sim.Run();
  EXPECT_EQ(ready, 0);
  EXPECT_EQ(failed, 0);  // cancelled slots fire neither callback
  EXPECT_EQ(cloud.num_pending(), 0);
  EXPECT_EQ(cloud.num_ready(), 0);
  // Each launched-but-initializing instance billed launch (5s) -> cancel (7s).
  EXPECT_NEAR(cloud.meter().TotalInstanceSeconds(), 4 * 2.0, 1e-9);
}

TEST(SimulatedCloudFaults, TerminateAllBeforeLaunchBillsNothing) {
  Simulation sim(0);
  SimulatedCloud cloud(sim, TestCloud());
  int ready = 0;
  cloud.RequestInstances(2, 0.0, [&](InstanceId) { ++ready; });
  sim.ScheduleAt(2.0, [&] { cloud.TerminateAll(); });  // still queued (launch t=5)
  sim.Run();
  EXPECT_EQ(ready, 0);
  EXPECT_EQ(cloud.num_pending(), 0);
  EXPECT_EQ(cloud.meter().TotalInstanceSeconds(), 0.0);
  EXPECT_EQ(cloud.meter().num_acquisitions(), 0);
}

// Scriptable source: fails the first `failures` slots, then delivers.
class FlakySource : public InstanceSource {
 public:
  FlakySource(Simulation& sim, int failures) : sim_(sim), failures_left_(failures) {}

  using InstanceSource::RequestInstances;
  void RequestInstances(int count, double dataset_gb, std::function<void(InstanceId)> on_ready,
                        std::function<void()> on_failure) override {
    (void)dataset_gb;
    for (int i = 0; i < count; ++i) {
      ++requests_;
      if (failures_left_ > 0) {
        --failures_left_;
        sim_.ScheduleIn(1.0, [on_failure] {
          if (on_failure) {
            on_failure();
          }
        });
      } else {
        const InstanceId id = next_id_++;
        sim_.ScheduleIn(1.0, [on_ready, id] { on_ready(id); });
      }
    }
  }

  void ReleaseInstance(InstanceId) override {}

  int requests() const { return requests_; }

 private:
  Simulation& sim_;
  int failures_left_;
  int requests_ = 0;
  InstanceId next_id_ = 0;
};

RetryPolicy FastRetry(int max_attempts) {
  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.base_backoff_s = 2.0;
  retry.max_backoff_s = 8.0;
  retry.jitter = 0.0;  // deterministic timing for the assertions below
  return retry;
}

TEST(ClusterManagerRetry, BacksOffAndRecoversFromTransientFailures) {
  Simulation sim(0);
  FlakySource source(sim, /*failures=*/3);
  ClusterManager manager(sim, source, 0.0, FastRetry(/*max_attempts=*/6));
  int failures_seen = 0;
  manager.SetFaultObserver([&](bool will_retry) {
    ++failures_seen;
    EXPECT_TRUE(will_retry);
  });
  bool scaled = false;
  manager.EnsureInstances(2, [&] { scaled = true; });
  sim.Run();
  EXPECT_TRUE(scaled);
  EXPECT_EQ(manager.num_ready(), 2);
  EXPECT_EQ(failures_seen, 3);
  EXPECT_EQ(manager.num_provision_failures(), 3);
  EXPECT_EQ(manager.num_retries(), 3);
  EXPECT_EQ(manager.num_abandoned(), 0);
  // Each retry waits out an exponential backoff: 1s request latency per
  // attempt plus 2s, 4s, 2s of backoff (failures land on attempts 0, 1 and
  // a fresh slot's attempt 0) put completion well past the no-fault 1s.
  EXPECT_GT(sim.now(), 4.0);
}

TEST(ClusterManagerRetry, ExhaustedRetriesAreAbandonedAndReported) {
  Simulation sim(0);
  FlakySource source(sim, /*failures=*/1000);
  ClusterManager manager(sim, source, 0.0, FastRetry(/*max_attempts=*/3));
  int abandoned_signals = 0;
  int retry_signals = 0;
  manager.SetFaultObserver([&](bool will_retry) {
    if (will_retry) {
      ++retry_signals;
    } else {
      ++abandoned_signals;
    }
  });
  bool scaled = false;
  manager.EnsureInstances(1, [&] { scaled = true; });
  sim.Run();
  EXPECT_FALSE(scaled);  // the capacity never arrived
  EXPECT_EQ(manager.num_ready(), 0);
  EXPECT_EQ(retry_signals, 2);      // attempts 0 and 1 retried
  EXPECT_EQ(abandoned_signals, 1);  // attempt 2 gave up
  EXPECT_EQ(manager.num_abandoned(), 1);
  EXPECT_EQ(source.requests(), 3);
}

TEST(ClusterManagerRetry, ReduceWaitTargetFiresAStalledWaiter) {
  Simulation sim(0);
  FlakySource source(sim, /*failures=*/0);
  ClusterManager manager(sim, source, 0.0);
  int have = 0;
  manager.RequestExtra(2, [&](InstanceId) { ++have; });
  sim.Run();
  ASSERT_EQ(have, 2);
  bool scaled = false;
  manager.EnsureInstances(4, [&] { scaled = true; });
  EXPECT_TRUE(manager.awaiting_scale());
  // Degrade: settle for the 2 instances already held.
  manager.ReduceWaitTarget(2);
  EXPECT_TRUE(scaled);
  EXPECT_FALSE(manager.awaiting_scale());
  sim.Run();
}

TEST(ClusterManagerRetry, InstanceLossDuringScaleUpIsReRequested) {
  // The waiter deadlock: EnsureInstances computes `missing` once; capacity
  // lost while the request is outstanding must be re-requested or the
  // waiter hangs forever.
  Simulation sim(0);
  FlakySource source(sim, /*failures=*/0);
  ClusterManager manager(sim, source, 0.0);
  int have = 0;
  manager.RequestExtra(2, [&](InstanceId) { ++have; });
  sim.Run();
  ASSERT_EQ(manager.num_ready(), 2);

  bool scaled = false;
  manager.EnsureInstances(4, [&] { scaled = true; });  // 2 more in flight
  EXPECT_EQ(manager.num_inflight(), 2);
  // A held instance is reclaimed while the scale-up is outstanding.
  manager.OnInstanceLost(manager.ready_instances().front());
  EXPECT_EQ(manager.num_ready(), 1);
  sim.Run();
  EXPECT_TRUE(scaled) << "waiter hung: lost capacity was never re-requested";
  EXPECT_EQ(manager.num_ready(), 4);
}

TEST(ClusterManagerRetry, LossReportedForUnknownInstanceThrows) {
  Simulation sim(0);
  FlakySource source(sim, 0);
  ClusterManager manager(sim, source, 0.0);
  EXPECT_THROW(manager.OnInstanceLost(99), std::logic_error);
}

TEST(ExecutorFaults, SurvivesProvisioningFailuresAndCompletes) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  CloudProfile cloud = TestCloud();
  cloud.fault.provision_failure_rate = 0.7;
  ExecutorOptions options;
  options.seed = 11;
  const ExecutionReport report =
      ExecutePlan(spec, AllocationPlan({8, 8, 8}), ResNet101Cifar10(), cloud, options);
  EXPECT_GT(report.provision_failures, 0);
  EXPECT_GT(report.provision_retries, 0);
  EXPECT_GT(report.best_accuracy, 0.0);
  ASSERT_EQ(report.stage_log.size(), 3u);
  EXPECT_EQ(report.stage_log[2].num_trials, 2);
  EXPECT_EQ(report.trace.OfType(TraceEventType::kProvisionFailure).size(),
            static_cast<size_t>(report.provision_failures));
}

TEST(ExecutorFaults, RecoversCheckpointFetchFailures) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  CloudProfile cloud = TestCloud();
  cloud.fault.checkpoint_failure_rate = 0.5;
  ExecutorOptions options;
  options.seed = 5;
  const ExecutionReport faulty =
      ExecutePlan(spec, AllocationPlan({8, 8, 8}), ResNet101Cifar10(), cloud, options);
  const ExecutionReport clean =
      ExecutePlan(spec, AllocationPlan({8, 8, 8}), ResNet101Cifar10(), TestCloud(), options);
  EXPECT_GT(faulty.checkpoint_retries, 0);
  // Every retry re-pays transfer latency, so the faulty run fetches more
  // bytes and finishes no earlier.
  EXPECT_GT(faulty.checkpoint_fetches, clean.checkpoint_fetches);
  EXPECT_GE(faulty.jct, clean.jct);
  EXPECT_EQ(faulty.best_config.id, clean.best_config.id);  // recovery, not corruption
}

// The acceptance sweep: provisioning failures and hardware crashes at once.
TEST(ExecutorFaults, CompletesFullScheduleUnderCombinedFaults) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  const AllocationPlan plan({8, 8, 8});
  CloudProfile cloud = TestCloud();
  cloud.fault.provision_failure_rate = 0.3;
  cloud.fault.mtbf = 600.0;
  ExecutorOptions options;
  options.seed = 11;

  const ExecutionReport report = ExecutePlan(spec, plan, workload, cloud, options);
  // The full SHA schedule ran: every stage with its correct surviving count.
  ASSERT_EQ(report.stage_log.size(), 3u);
  EXPECT_EQ(report.stage_log[0].num_trials, 8);
  EXPECT_EQ(report.stage_log[1].num_trials, 4);
  EXPECT_EQ(report.stage_log[2].num_trials, 2);
  EXPECT_GT(report.crashes + report.provision_failures, 0);
  EXPECT_GT(report.best_accuracy, 0.0);
  if (report.crashes > 0) {
    EXPECT_EQ(report.trace.OfType(TraceEventType::kInstanceCrash).size(),
              static_cast<size_t>(report.crashes));
    EXPECT_GT(report.trial_restarts + report.preemptions, 0);
  }

  // Bit-identical replay from the same seed.
  const ExecutionReport replay = ExecutePlan(spec, plan, workload, cloud, options);
  EXPECT_EQ(report.jct, replay.jct);
  EXPECT_EQ(report.cost.Total(), replay.cost.Total());
  EXPECT_EQ(report.crashes, replay.crashes);
  EXPECT_EQ(report.provision_failures, replay.provision_failures);
  EXPECT_EQ(report.trial_restarts, replay.trial_restarts);
  EXPECT_EQ(report.trace.events().size(), replay.trace.events().size());
}

// A source that forwards to the real cloud until sabotaged, then fails
// every slot — deterministic mid-stage capacity exhaustion.
class SaboteurSource : public InstanceSource {
 public:
  SaboteurSource(Simulation& sim, SimulatedCloud& cloud) : sim_(sim), cloud_(cloud) {}

  using InstanceSource::RequestInstances;
  void RequestInstances(int count, double dataset_gb, std::function<void(InstanceId)> on_ready,
                        std::function<void()> on_failure) override {
    if (sabotaged_) {
      for (int i = 0; i < count; ++i) {
        sim_.ScheduleIn(1.0, [on_failure] {
          if (on_failure) {
            on_failure();
          }
        });
      }
      return;
    }
    cloud_.RequestInstances(
        count, dataset_gb,
        [this, on_ready](InstanceId id) {
          delivered_.push_back(id);
          on_ready(id);
        },
        on_failure);
  }
  void ReleaseInstance(InstanceId id) override { cloud_.TerminateInstance(id); }

  void Sabotage() { sabotaged_ = true; }
  const std::vector<InstanceId>& delivered() const { return delivered_; }

 private:
  Simulation& sim_;
  SimulatedCloud& cloud_;
  bool sabotaged_ = false;
  std::vector<InstanceId> delivered_;
};

TEST(ExecutorFaults, MidStageAbandonDegradesTheRunningStageVisibly) {
  // Regression: a mid-stage replacement whose retries are exhausted shrinks
  // the running stage below its planned GPUs. That degradation must be
  // reported (degraded_stages + a STAGE_DEGRADED trace event on the stage
  // it hit), not silently absorbed — and at most once per stage.
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  const AllocationPlan plan({8, 8, 8});

  Simulation sim(0);
  SimulatedCloud cloud(sim, TestCloud());
  SaboteurSource source(sim, cloud);
  SharedClusterContext context;
  context.sim = &sim;
  context.cloud = &cloud;
  context.source = &source;
  ExecutorOptions options;
  options.seed = 11;
  options.retry.max_attempts = 1;  // the first failed slot is abandoned
  Executor executor(spec, plan, workload, context, options);

  ExecutionReport report;
  bool done = false;
  executor.Start([&](const ExecutionReport& r) {
    report = r;
    done = true;
  });
  // Mid-stage-0: kill provisioning, then crash one held instance. The
  // replacement request fails, is abandoned, and the stage must degrade.
  sim.ScheduleAt(60.0, [&] {
    source.Sabotage();
    for (InstanceId id : source.delivered()) {
      if (executor.OwnsInstance(id)) {
        executor.OnCrash(id);
        return;
      }
    }
    FAIL() << "no owned instance to crash";
  });
  sim.Run();
  ASSERT_TRUE(done);

  EXPECT_EQ(report.crashes, 1);
  EXPECT_GT(report.capacity_shortfalls, 0);
  EXPECT_GT(report.degraded_stages, 0);
  const std::vector<TraceEvent> degraded = report.trace.OfType(TraceEventType::kStageDegraded);
  ASSERT_EQ(degraded.size(), static_cast<size_t>(report.degraded_stages));
  // The first degradation is the mid-stage abandon on stage 0, stamped
  // after the crash — not a stage-boundary shortfall.
  EXPECT_EQ(degraded.front().stage, 0);
  EXPECT_GT(degraded.front().time, 60.0);
  // The job still completes its full schedule, just slower.
  ASSERT_EQ(report.stage_log.size(), 3u);
  EXPECT_EQ(report.stage_log[2].num_trials, 2);
  EXPECT_GT(report.best_accuracy, 0.0);
}

TEST(ExecutorFaults, ZeroFaultProfileIsBitIdenticalToBaseline) {
  // The whole fault layer must be free when disabled: an all-zero fault
  // profile (even with re-planning armed) reproduces the fault-free run
  // exactly, because no fault class ever draws from the Rng and the
  // re-plan check is gated on an observed fault.
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  const AllocationPlan plan({8, 8, 8});
  ExecutorOptions baseline_options;
  baseline_options.seed = 17;
  const ExecutionReport baseline =
      ExecutePlan(spec, plan, workload, TestCloud(), baseline_options);

  ExecutorOptions armed = baseline_options;
  armed.replan.enabled = true;
  armed.replan.deadline = 1.0;  // absurdly tight, but gated on fault_events_
  const ExecutionReport armed_report = ExecutePlan(spec, plan, workload, TestCloud(), armed);

  EXPECT_EQ(baseline.jct, armed_report.jct);
  EXPECT_EQ(baseline.cost.Total(), armed_report.cost.Total());
  EXPECT_EQ(baseline.best_accuracy, armed_report.best_accuracy);
  EXPECT_EQ(baseline.trace.events().size(), armed_report.trace.events().size());
  EXPECT_EQ(armed_report.replans, 0);
  EXPECT_EQ(armed_report.provision_failures, 0);
  EXPECT_EQ(armed_report.crashes, 0);
  EXPECT_EQ(armed_report.checkpoint_retries, 0);
}

TEST(ExecutorFaults, ReplanFiresWhenFaultDelayBurnsTheSlack) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  const AllocationPlan plan({8, 8, 8});
  ExecutorOptions clean_options;
  clean_options.seed = 11;
  const ExecutionReport clean = ExecutePlan(spec, plan, workload, TestCloud(), clean_options);

  ProfilerOptions profiler_options;
  profiler_options.seed = 11;
  CloudProfile faulty = TestCloud();
  faulty.fault.provision_failure_rate = 0.5;
  faulty.fault.mtbf = 400.0;
  ExecutorOptions options = clean_options;
  options.replan.enabled = true;
  // A deadline with barely any slack over the fault-free JCT: the fault
  // delay exhausts it, so the remaining stages must be re-planned.
  options.replan.deadline = clean.jct * 1.02;
  options.replan.model = ProfileWorkload(workload, profiler_options).profile;

  const ExecutionReport report = ExecutePlan(spec, plan, workload, faulty, options);
  EXPECT_GT(report.replans, 0);
  EXPECT_EQ(report.trace.OfType(TraceEventType::kReplan).size(),
            static_cast<size_t>(report.replans));
  // Re-planning never breaks the schedule itself.
  ASSERT_EQ(report.stage_log.size(), 3u);
  EXPECT_EQ(report.stage_log[2].num_trials, 2);

  // Determinism holds with re-planning in the loop.
  const ExecutionReport replay = ExecutePlan(spec, plan, workload, faulty, options);
  EXPECT_EQ(report.jct, replay.jct);
  EXPECT_EQ(report.replans, replay.replans);
}

TEST(ServiceFaults, AttributesFaultsPerJobAndCompletesTheTrace) {
  ServiceConfig config;
  config.cloud = TestCloud();
  config.cloud.fault.provision_failure_rate = 0.2;
  config.cloud.fault.mtbf = 1200.0;
  config.capacity_gpus = 8;
  config.seed = 3;
  config.replan_on_faults = true;

  TuningService service(config);
  for (int i = 0; i < 2; ++i) {
    JobRequest job;
    job.name = "job-" + std::to_string(i);
    job.spec = MakeSha(8, 2, 14, 2);
    job.workload = ResNet101Cifar10();
    job.submit_at = 60.0 * i;
    job.deadline = 7200.0;
    service.Submit(job);
  }
  const ServiceReport report = service.Run();
  EXPECT_EQ(report.completed + report.rejected, 2);
  int attributed = 0;
  for (const JobOutcome& job : report.jobs) {
    attributed += job.crashes + job.provision_failures;
  }
  EXPECT_EQ(report.total_crashes + report.total_provision_failures, attributed);
}

}  // namespace
}  // namespace rubberband
