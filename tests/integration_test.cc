// Cross-module integration: planner predictions vs executor reality, and the
// paper's headline invariants (RubberBand never costs more than static, both
// meet the deadline, accuracy is policy-independent).

#include <gtest/gtest.h>

#include "src/rubberband.h"

namespace rubberband {
namespace {

struct EndToEndCase {
  const char* name;
  int trials;
  int64_t min_iters;
  int64_t max_iters;
  int eta;
  double deadline_minutes;
  uint64_t seed;
};

class EndToEnd : public ::testing::TestWithParam<EndToEndCase> {
 protected:
  static CloudProfile Cloud() {
    CloudProfile cloud;
    cloud.instance = P3_8xlarge();
    cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
    return cloud;
  }
};

TEST_P(EndToEnd, SimulationPredictsExecution) {
  const EndToEndCase& c = GetParam();
  const ExperimentSpec spec = MakeSha(c.trials, c.min_iters, c.max_iters, c.eta);
  const WorkloadSpec workload = ResNet101Cifar10();
  ProfilerOptions profiler_options;
  profiler_options.seed = c.seed;
  const ModelProfile profile = ProfileWorkload(workload, profiler_options).profile;

  const PlannedJob job = CompilePlan(spec, profile, Cloud(), Minutes(c.deadline_minutes));
  if (!job.feasible) {
    GTEST_SKIP() << "deadline infeasible for this case";
  }

  ExecutorOptions exec_options;
  exec_options.seed = c.seed;
  const ExecutionReport report = Execute(spec, job.plan, workload, Cloud(), exec_options);

  // The paper's fidelity claim: low error between simulated and realized
  // JCT and cost (Table 2 shows a few percent; we allow 20%).
  EXPECT_NEAR(report.jct, job.estimate.jct_mean, 0.20 * job.estimate.jct_mean) << c.name;
  EXPECT_NEAR(report.cost.Total().dollars(), job.estimate.cost_mean.dollars(),
              0.20 * job.estimate.cost_mean.dollars())
      << c.name;
}

TEST_P(EndToEnd, RubberBandNeverCostsMoreThanStatic) {
  const EndToEndCase& c = GetParam();
  const ExperimentSpec spec = MakeSha(c.trials, c.min_iters, c.max_iters, c.eta);
  const WorkloadSpec workload = ResNet101Cifar10();
  const ModelProfile profile = ProfileWorkload(workload).profile;
  const PlannerInputs inputs{spec, profile, Cloud(), Minutes(c.deadline_minutes)};

  const PlannedJob fixed = PlanStatic(inputs);
  const PlannedJob elastic = PlanGreedy(inputs);
  if (!fixed.feasible) {
    GTEST_SKIP() << "static infeasible";
  }
  ASSERT_TRUE(elastic.feasible);
  EXPECT_LE(elastic.estimate.cost_mean.dollars(), fixed.estimate.cost_mean.dollars() + 1e-6)
      << c.name;
  EXPECT_LE(elastic.estimate.jct_mean, inputs.deadline) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, EndToEnd,
    ::testing::Values(EndToEndCase{"table2_20min", 32, 1, 50, 3, 20.0, 1},
                      EndToEndCase{"table2_30min", 32, 1, 50, 3, 30.0, 2},
                      EndToEndCase{"table2_40min", 32, 1, 50, 3, 40.0, 3},
                      EndToEndCase{"eta2_small", 16, 2, 30, 2, 45.0, 4},
                      EndToEndCase{"deep_eta2", 64, 1, 62, 2, 90.0, 5}),
    [](const ::testing::TestParamInfo<EndToEndCase>& param_info) { return param_info.param.name; });

TEST(Integration, AccuracyComparableAcrossPolicies) {
  // Resource allocation must not change *what* is learned, only where it
  // runs: same spec, same seed -> same winning configuration regardless of
  // the plan.
  const ExperimentSpec spec = MakeSha(16, 2, 30, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  ExecutorOptions options;
  options.seed = 17;
  const ExecutionReport wide =
      ExecutePlan(spec, AllocationPlan({32, 16, 16, 8}), workload, cloud, options);
  const ExecutionReport narrow =
      ExecutePlan(spec, AllocationPlan({4, 4, 4, 4}), workload, cloud, options);
  EXPECT_EQ(wide.best_config.id, narrow.best_config.id);
  EXPECT_NEAR(wide.best_accuracy, narrow.best_accuracy, 0.03);
}

TEST(Integration, HyperbandMultiJobPlansEveryBracket) {
  const std::vector<ExperimentSpec> brackets = MakeHyperband({16, 4});
  const WorkloadSpec workload = ResNet50(Cifar10(), 512);
  const ModelProfile profile = ProfileWorkload(workload).profile;
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();

  Money total;
  for (const ExperimentSpec& bracket : brackets) {
    const PlannedJob job = CompilePlan(bracket, profile, cloud, Hours(2));
    ASSERT_TRUE(job.feasible);
    total += job.estimate.cost_mean;
    const ExecutionReport report = Execute(bracket, job.plan, workload, cloud);
    EXPECT_GT(report.best_accuracy, 0.2);
  }
  EXPECT_GT(total.dollars(), 0.0);
}

TEST(Integration, PerFunctionPlansAreNoMoreExpensiveThanPerInstance) {
  // Per-function billing never charges for idle straggler-wait, so the
  // same plan can only get cheaper.
  const ExperimentSpec spec = MakeSha(16, 2, 30, 2);
  const ModelProfile profile = ProfileWorkload(ResNet101Cifar10()).profile;
  CloudProfile per_instance;
  per_instance.instance = P3_8xlarge();
  CloudProfile per_function = per_instance;
  per_function.pricing.billing = BillingModel::kPerFunction;

  const AllocationPlan plan({16, 16, 16, 16});
  PlannerOptions options;
  const PlanEstimate inst =
      EstimatePlan({spec, profile, per_instance, Hours(1)}, plan, options);
  const PlanEstimate func =
      EstimatePlan({spec, profile, per_function, Hours(1)}, plan, options);
  EXPECT_LE(func.cost_mean.dollars(), inst.cost_mean.dollars() + 1e-9);
}

TEST(Integration, DataHeavyJobShrinksElasticAdvantage) {
  // Figure 10's mechanism: when ingress dominates, elastic and static
  // costs converge (but elastic never loses).
  const ExperimentSpec spec = MakeSha(16, 2, 30, 2);
  WorkloadSpec workload = ResNet50(ImageNet(), 512);
  const ModelProfile profile = ProfileWorkload(workload).profile;

  CloudProfile free_data;
  free_data.instance = P3_8xlarge();
  CloudProfile pricey_data = free_data;
  pricey_data.pricing.data_price_per_gb = Money::FromCents(16);

  const Seconds deadline = Hours(1);
  const PlannedJob static_free = PlanStatic({spec, profile, free_data, deadline});
  const PlannedJob elastic_free = PlanGreedy({spec, profile, free_data, deadline});
  const PlannedJob static_pricey = PlanStatic({spec, profile, pricey_data, deadline});
  const PlannedJob elastic_pricey = PlanGreedy({spec, profile, pricey_data, deadline});
  ASSERT_TRUE(static_free.feasible && elastic_free.feasible && static_pricey.feasible &&
              elastic_pricey.feasible);

  const double gain_free =
      static_free.estimate.cost_mean.dollars() / elastic_free.estimate.cost_mean.dollars();
  const double gain_pricey =
      static_pricey.estimate.cost_mean.dollars() / elastic_pricey.estimate.cost_mean.dollars();
  EXPECT_GE(gain_pricey, 0.999);       // never worse
  EXPECT_LE(gain_pricey, gain_free + 0.05);  // advantage shrinks (or holds)
}

}  // namespace
}  // namespace rubberband
