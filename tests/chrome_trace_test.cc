// Chrome trace-event exporter: the TraceEventType -> rule table, span
// derivation from raw traces, the pid/tid lane scheme, and the JSON shape.

#include "src/obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/rubberband.h"

namespace rubberband {
namespace {

TEST(ChromeTrace, EveryTraceEventTypeHasAnExportRule) {
  // Table-driven guard over the enum itself: every event kind in
  // [0, kNumTraceEventTypes) must map to a named rule, and any value past
  // the end must hit the empty sentinel. Adding an event kind without
  // extending ChromeRuleFor fails here (and -Wswitch flags the hole at
  // compile time first).
  std::set<std::string> names;
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    const auto type = static_cast<TraceEventType>(i);
    const ChromeEventRule rule = ChromeRuleFor(type);
    EXPECT_STRNE(rule.name, "") << ToString(type) << " has no Chrome export rule";
    names.insert(rule.name);
    // Open/close events must key into one of the span tables; a kNone
    // open/close would derive spans nobody can pair.
    if (rule.kind != ChromeEventRule::kInstant) {
      EXPECT_NE(rule.key, ChromeSpanKey::kNone) << ToString(type);
    }
  }
  EXPECT_STREQ(ChromeRuleFor(static_cast<TraceEventType>(kNumTraceEventTypes)).name, "");

  // Every span table has at least one opener and one closer.
  for (const ChromeSpanKey key :
       {ChromeSpanKey::kStage, ChromeSpanKey::kTrial, ChromeSpanKey::kInstance}) {
    bool has_open = false;
    bool has_close = false;
    for (int i = 0; i < kNumTraceEventTypes; ++i) {
      const ChromeEventRule rule = ChromeRuleFor(static_cast<TraceEventType>(i));
      if (rule.key != key) {
        continue;
      }
      has_open = has_open || rule.kind == ChromeEventRule::kOpen;
      has_close = has_close || rule.kind == ChromeEventRule::kClose;
    }
    EXPECT_TRUE(has_open);
    EXPECT_TRUE(has_close);
  }
}

TEST(ChromeTrace, SpansFromTracePairsOpensWithCloses) {
  ExecutionTrace trace;
  trace.Record(0.0, TraceEventType::kStageStart, 0);
  trace.Record(1.0, TraceEventType::kInstanceReady, 0, -1, 7);
  trace.Record(2.0, TraceEventType::kTrialStart, 0, 3);
  trace.Record(10.0, TraceEventType::kTrialComplete, 0, 3);
  trace.Record(11.0, TraceEventType::kInstanceReleased, 0, -1, 7);
  trace.Record(12.0, TraceEventType::kSync, 0);
  const Timeline spans = SpansFromTrace(trace);
  ASSERT_EQ(spans.size(), 3u);

  const std::vector<TimelineSpan> stage = spans.OfName("stage");
  ASSERT_EQ(stage.size(), 1u);
  EXPECT_DOUBLE_EQ(stage[0].start, 0.0);
  EXPECT_DOUBLE_EQ(stage[0].end, 12.0);
  EXPECT_EQ(stage[0].stage, 0);

  const std::vector<TimelineSpan> trial = spans.OfName("trial");
  ASSERT_EQ(trial.size(), 1u);
  EXPECT_DOUBLE_EQ(trial[0].start, 2.0);
  EXPECT_DOUBLE_EQ(trial[0].end, 10.0);
  EXPECT_EQ(trial[0].trial, 3);

  const std::vector<TimelineSpan> instance = spans.OfName("instance");
  ASSERT_EQ(instance.size(), 1u);
  EXPECT_DOUBLE_EQ(instance[0].start, 1.0);
  EXPECT_DOUBLE_EQ(instance[0].end, 11.0);
  EXPECT_EQ(instance[0].instance, 7);
}

TEST(ChromeTrace, SpansFromTraceClosesDanglingSpansAtTraceEnd) {
  ExecutionTrace trace;
  trace.Record(0.0, TraceEventType::kStageStart, 0);
  trace.Record(1.0, TraceEventType::kInstanceReady, 0, -1, 2);
  trace.Record(5.0, TraceEventType::kTrialStart, 0, 1);  // never completes
  const Timeline spans = SpansFromTrace(trace);
  ASSERT_EQ(spans.size(), 3u);
  for (const TimelineSpan& span : spans.spans()) {
    EXPECT_DOUBLE_EQ(span.end, 5.0) << span.name << " should close at the last event";
  }
}

TEST(ChromeTrace, SpansFromTraceHandlesAllCloseKindsAndOrphanCloses) {
  ExecutionTrace trace;
  trace.Record(0.0, TraceEventType::kInstanceReady, 0, -1, 1);
  trace.Record(2.0, TraceEventType::kPreemption, 0, -1, 1);  // close via preemption
  trace.Record(3.0, TraceEventType::kInstanceReady, 0, -1, 2);
  trace.Record(4.0, TraceEventType::kInstanceCrash, 0, -1, 2);  // close via crash
  trace.Record(5.0, TraceEventType::kPreemption, 0, -1, 99);    // orphan close: no span
  trace.Record(6.0, TraceEventType::kTrialStart, 0, 4);
  trace.Record(7.0, TraceEventType::kTrialRestart, 0, 4);  // close via restart
  const Timeline spans = SpansFromTrace(trace);
  EXPECT_EQ(spans.OfName("instance").size(), 2u);
  EXPECT_EQ(spans.OfName("trial").size(), 1u);
  EXPECT_EQ(spans.size(), 3u);  // the orphan preemption derived no span
}

TEST(ChromeTrace, BuilderLaneSchemePutsSpansOnTheRightTids) {
  Timeline timeline;
  timeline.Record(TimelineSpan{"stage-total", "executor", 0.0, 10.0, 1, 0});
  timeline.Record(TimelineSpan{"restore", "executor", 1.0, 2.0, 1, 0, 3});
  timeline.Record(TimelineSpan{"quarantine", "executor", 4.0, 5.0, 1, 0, -1, 6});
  ChromeTraceBuilder builder;
  builder.SetProcessName(1, "job");
  builder.AddTimeline(timeline);
  const JsonValue doc = JsonValue::Parse(builder.ToJson());
  ASSERT_TRUE(doc.is_object());

  double stage_tid = -1.0;
  double trial_tid = -1.0;
  double instance_tid = -1.0;
  for (const JsonValue& event : doc.at("traceEvents").array()) {
    if (event.at("name").string() == "stage-total") {
      stage_tid = event.at("tid").number();
    } else if (event.at("name").string() == "restore") {
      trial_tid = event.at("tid").number();
    } else if (event.at("name").string() == "quarantine") {
      instance_tid = event.at("tid").number();
    }
  }
  EXPECT_DOUBLE_EQ(stage_tid, 0.0);          // control lane
  EXPECT_DOUBLE_EQ(trial_tid, 100003.0);     // 100000 + trial 3
  EXPECT_DOUBLE_EQ(instance_tid, 16.0);      // 10 + instance 6
}

TEST(ChromeTrace, JsonDocumentIsWellFormedTraceEventFormat) {
  ExecutionTrace trace;
  trace.Record(0.0, TraceEventType::kStageStart, 0);
  trace.Record(1.5, TraceEventType::kReplan, 1);
  trace.Record(2.0, TraceEventType::kSync, 0);
  ChromeTraceBuilder builder;
  builder.SetProcessName(1, "job");
  builder.AddExecutionTrace(trace, 1);
  const JsonValue doc = JsonValue::Parse(builder.ToJson());

  ASSERT_TRUE(doc.Has("traceEvents"));
  EXPECT_EQ(doc.at("displayTimeUnit").string(), "ms");
  bool saw_metadata = false;
  bool saw_complete = false;
  bool saw_instant = false;
  for (const JsonValue& event : doc.at("traceEvents").array()) {
    ASSERT_TRUE(event.Has("name"));
    ASSERT_TRUE(event.Has("ph"));
    ASSERT_TRUE(event.Has("pid"));
    ASSERT_TRUE(event.Has("tid"));
    const std::string& phase = event.at("ph").string();
    if (phase == "M") {
      saw_metadata = true;
      EXPECT_TRUE(event.at("args").Has("name"));
      continue;
    }
    EXPECT_TRUE(event.Has("ts"));
    EXPECT_TRUE(event.Has("cat"));
    if (phase == "X") {
      saw_complete = true;
      EXPECT_TRUE(event.Has("dur"));
      EXPECT_GE(event.at("dur").number(), 0.0);
    } else {
      ASSERT_EQ(phase, "i");
      saw_instant = true;
      EXPECT_EQ(event.at("s").string(), "t");  // instant scope
    }
  }
  EXPECT_TRUE(saw_metadata);
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_instant);

  // Timestamps are microseconds: the replan at 1.5s lands at 1.5e6 us.
  bool found_replan = false;
  for (const JsonValue& event : doc.at("traceEvents").array()) {
    if (event.at("name").string() == "replan") {
      found_replan = true;
      EXPECT_DOUBLE_EQ(event.at("ts").number(), 1'500'000.0);
    }
  }
  EXPECT_TRUE(found_replan);
}

TEST(ChromeTrace, EmptyBuilderStillEmitsAValidDocument) {
  ChromeTraceBuilder builder;
  const JsonValue doc = JsonValue::Parse(builder.ToJson());
  EXPECT_TRUE(doc.at("traceEvents").is_array());
  EXPECT_EQ(doc.at("traceEvents").size(), 0u);
}

TEST(ChromeTrace, ReportExportCoversPhasesAndTraceUnderOnePid) {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  ExecutorOptions options;
  options.observe = true;
  const ExecutionReport report = ExecutePlan(MakeSha(8, 2, 14, 2), AllocationPlan({8, 8, 8}),
                                             ResNet101Cifar10(), cloud, options);
  ASSERT_FALSE(report.timeline.empty());
  const JsonValue doc = JsonValue::Parse(ChromeTraceFromReport(report));

  std::set<std::string> categories;
  std::set<std::string> names;
  for (const JsonValue& event : doc.at("traceEvents").array()) {
    if (event.at("ph").string() == "M") {
      continue;
    }
    EXPECT_DOUBLE_EQ(event.at("pid").number(), 1.0);
    categories.insert(event.at("cat").string());
    names.insert(event.at("name").string());
  }
  EXPECT_TRUE(categories.count("executor"));  // phase spans
  EXPECT_TRUE(categories.count("trace"));     // raw event markers + derived spans
  EXPECT_TRUE(names.count("stage-total"));
  EXPECT_TRUE(names.count("stage-run"));
  EXPECT_TRUE(names.count("provision"));
  EXPECT_TRUE(names.count("sync"));
}

TEST(ChromeTrace, ServiceExportGivesEachJobItsOwnProcess) {
  ServiceConfig config;
  config.cloud.instance = P3_8xlarge();
  config.cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  config.capacity_gpus = 32;
  config.observe = true;
  config.seed = 2;
  TuningService service(config);
  for (int i = 0; i < 2; ++i) {
    JobRequest job;
    job.name = "job-" + std::to_string(i);
    job.spec = MakeSha(8, 2, 14, 2);
    job.workload = ResNet101Cifar10();
    job.submit_at = 900.0 * i;
    job.deadline = Minutes(60);
    service.Submit(job);
  }
  const ServiceReport report = service.Run();
  ASSERT_EQ(report.completed, 2);
  const JsonValue doc = JsonValue::Parse(ChromeTraceFromService(report));

  std::set<int> pids;
  std::set<std::string> process_names;
  for (const JsonValue& event : doc.at("traceEvents").array()) {
    if (event.at("name").string() == "process_name") {
      process_names.insert(event.at("args").at("name").string());
    }
    if (event.at("ph").string() != "M") {
      pids.insert(static_cast<int>(event.at("pid").number()));
    }
  }
  EXPECT_TRUE(process_names.count("service"));
  EXPECT_TRUE(process_names.count("job-0"));
  EXPECT_TRUE(process_names.count("job-1"));
  // Service spans on pid 1..2 (per-job lanes), job payloads on pids 1 and 2.
  EXPECT_TRUE(pids.count(1));
  EXPECT_TRUE(pids.count(2));
}

}  // namespace
}  // namespace rubberband
