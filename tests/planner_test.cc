#include "src/planner/planner.h"

#include <gtest/gtest.h>

#include "src/spec/sha.h"
#include "src/trainer/model_zoo.h"

namespace rubberband {
namespace {

TEST(AllocationPlan, BasicsAndValidation) {
  AllocationPlan plan({8, 4, 2});
  EXPECT_EQ(plan.num_stages(), 3);
  EXPECT_EQ(plan.gpus(1), 4);
  EXPECT_EQ(plan.MaxGpus(), 8);
  EXPECT_FALSE(plan.IsStatic());
  EXPECT_TRUE(AllocationPlan::Uniform(3, 4).IsStatic());
  EXPECT_EQ(plan.ToString(), "[8, 4, 2]");
  EXPECT_THROW(plan.Validate(2), std::invalid_argument);
  EXPECT_THROW(AllocationPlan({0}).Validate(1), std::invalid_argument);
  plan.Validate(3);
}

TEST(FairAllocation, NextLowerSteps) {
  // Multiples of the trial count step down by whole trial-counts.
  EXPECT_EQ(NextLowerFairAllocation(32, 8), 24);
  EXPECT_EQ(NextLowerFairAllocation(16, 8), 8);
  // At the trial count, fall to the largest proper divisor.
  EXPECT_EQ(NextLowerFairAllocation(8, 8), 4);
  EXPECT_EQ(NextLowerFairAllocation(10, 10), 5);
  // Below the trial count: next lower divisor.
  EXPECT_EQ(NextLowerFairAllocation(5, 10), 2);
  EXPECT_EQ(NextLowerFairAllocation(2, 10), 1);
  // 1 GPU is the floor.
  EXPECT_EQ(NextLowerFairAllocation(1, 10), 0);
  // Unaligned values snap to the next lower multiple.
  EXPECT_EQ(NextLowerFairAllocation(30, 8), 24);
}

TEST(FairAllocation, RoundUpAndFloor) {
  EXPECT_EQ(RoundUpToFairAllocation(5, 10), 5);
  EXPECT_EQ(RoundUpToFairAllocation(6, 10), 10);
  EXPECT_EQ(RoundUpToFairAllocation(11, 10), 20);
  EXPECT_EQ(RoundUpToFairAllocation(0, 10), 1);
  EXPECT_EQ(FairFloorAllocation(6, 10), 5);
  EXPECT_EQ(FairFloorAllocation(19, 10), 10);
  EXPECT_EQ(FairFloorAllocation(25, 10), 20);
  EXPECT_EQ(FairFloorAllocation(0, 10), 0);
}

TEST(FairAllocation, SingleTrialStage) {
  // With one trial every positive GPU count is a multiple of the trial
  // count, so the fair lattice is just the integers.
  EXPECT_EQ(NextLowerFairAllocation(5, 1), 4);
  EXPECT_EQ(NextLowerFairAllocation(2, 1), 1);
  EXPECT_EQ(NextLowerFairAllocation(1, 1), 0);
  EXPECT_EQ(RoundUpToFairAllocation(3, 1), 3);
  EXPECT_EQ(RoundUpToFairAllocation(0, 1), 1);
  EXPECT_EQ(FairFloorAllocation(3, 1), 3);
  EXPECT_EQ(FairFloorAllocation(0, 1), 0);
  EXPECT_EQ(NextHigherFairAllocation(3, 1), 4);
}

TEST(FairAllocation, PrimeTrialCountHasOnlyTrivialDivisors) {
  // 13 trials: below the trial count only 1 is fair; above it, multiples.
  EXPECT_EQ(NextLowerFairAllocation(13, 13), 1);
  EXPECT_EQ(NextLowerFairAllocation(26, 13), 13);
  EXPECT_EQ(RoundUpToFairAllocation(2, 13), 13);
  EXPECT_EQ(RoundUpToFairAllocation(5, 13), 13);
  EXPECT_EQ(RoundUpToFairAllocation(14, 13), 26);
  EXPECT_EQ(FairFloorAllocation(12, 13), 1);
  EXPECT_EQ(FairFloorAllocation(13, 13), 13);
  EXPECT_EQ(NextHigherFairAllocation(1, 13), 13);
  EXPECT_EQ(NextHigherFairAllocation(13, 13), 26);
}

// Every fair value divides or is divided by the trial count.
class FairStepProperty : public ::testing::TestWithParam<int> {};

TEST_P(FairStepProperty, ChainReachesOneAndStaysFair) {
  const int trials = GetParam();
  int current = trials * 7;
  int steps = 0;
  while (current > 1) {
    const int next = NextLowerFairAllocation(current, trials);
    ASSERT_GT(next, 0);
    ASSERT_LT(next, current);
    EXPECT_TRUE(next % trials == 0 || trials % next == 0)
        << "next=" << next << " trials=" << trials;
    current = next;
    ASSERT_LT(++steps, 1000);
  }
}

INSTANTIATE_TEST_SUITE_P(TrialCounts, FairStepProperty,
                         ::testing::Values(1, 2, 3, 7, 10, 12, 32, 100, 512));

PlannerInputs TestInputs(Seconds deadline) {
  PlannerInputs inputs;
  inputs.spec = MakeSha(8, 2, 14, 2);
  inputs.model.iter_latency_1gpu = Distribution::Constant(30.0);
  inputs.model.scaling = ScalingFunction::FromPoints({{1, 1.0}, {2, 1.8}, {4, 3.0}, {8, 4.0}});
  inputs.model.trial_startup_seconds = 2.0;
  inputs.model.sync_seconds = 1.0;
  inputs.cloud.instance = P3_8xlarge();
  inputs.cloud.provisioning = ProvisioningModel::Fixed(2.0, 5.0);
  inputs.deadline = deadline;
  return inputs;
}

TEST(StaticPlanner, FindsCheapestFeasibleCluster) {
  const PlannerInputs inputs = TestInputs(Minutes(30));
  const PlannedJob job = PlanStatic(inputs);
  ASSERT_TRUE(job.feasible);
  EXPECT_TRUE(job.plan.IsStatic());
  EXPECT_LE(job.estimate.jct_mean, inputs.deadline);

  // Brute-force verification over the same candidate space: no static size
  // from 1..32 beats the chosen one.
  PlannerOptions options;
  for (int gpus = 1; gpus <= 32; ++gpus) {
    const PlanEstimate other =
        EstimatePlan(inputs, AllocationPlan::Uniform(inputs.spec.num_stages(), gpus), options);
    if (other.MeetsDeadline(inputs.deadline)) {
      EXPECT_GE(other.cost_mean, job.estimate.cost_mean) << "gpus=" << gpus;
    }
  }
}

TEST(StaticPlanner, InfeasibleDeadlineReturnsFastest) {
  const PlannedJob job = PlanStatic(TestInputs(1.0));
  EXPECT_FALSE(job.feasible);
  EXPECT_GT(job.estimate.jct_mean, 1.0);
}

TEST(GreedyPlanner, NeverWorseThanStatic) {
  for (double minutes : {10.0, 15.0, 20.0, 30.0, 60.0}) {
    const PlannerInputs inputs = TestInputs(Minutes(minutes));
    const PlannedJob fixed = PlanStatic(inputs);
    const PlannedJob elastic = PlanGreedy(inputs);
    if (!fixed.feasible) {
      continue;
    }
    ASSERT_TRUE(elastic.feasible) << minutes;
    EXPECT_LE(elastic.estimate.cost_mean.dollars(), fixed.estimate.cost_mean.dollars() + 1e-6)
        << "deadline " << minutes << " min";
    EXPECT_LE(elastic.estimate.jct_mean, inputs.deadline);
  }
}

TEST(GreedyPlanner, LooseDeadlineStillNeverWorseThanStatic) {
  // Regression: warm starts are rounded *up* to per-stage fair allocations
  // (e.g. 4 GPUs -> 5 for a 10-trial stage), so with a loose deadline the
  // greedy descent could terminate above the raw static optimum unless the
  // static plan stays in the candidate set.
  PlannerInputs inputs;
  inputs.spec = MakeSha(32, 1, 50, 3);  // stages of 32, 10, 3, 1 trials
  inputs.model.iter_latency_1gpu = Distribution::TruncatedNormal(88.0, 8.0, 0.0);
  inputs.model.scaling =
      ScalingFunction::FromPoints({{1, 1.0}, {2, 1.8}, {4, 3.2}, {8, 5.4}, {16, 5.6}});
  inputs.model.trial_startup_seconds = 15.0;
  inputs.model.sync_seconds = 5.0;
  inputs.cloud.instance = P3_8xlarge();
  inputs.cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  inputs.deadline = Minutes(60);

  const PlannedJob fixed = PlanStatic(inputs);
  const PlannedJob elastic = PlanGreedy(inputs);
  ASSERT_TRUE(fixed.feasible);
  ASSERT_TRUE(elastic.feasible);
  EXPECT_LE(elastic.estimate.cost_mean.dollars(), fixed.estimate.cost_mean.dollars() + 1e-9);
}

TEST(GreedyPlanner, FrontLoadsUnderSublinearScaling) {
  const PlannerInputs inputs = TestInputs(Minutes(25));
  const PlannedJob job = PlanGreedy(inputs);
  ASSERT_TRUE(job.feasible);
  // Early stages (many trials, efficient) should get at least as many GPUs
  // as the final stage (one trial, inefficient at scale).
  EXPECT_GE(job.plan.gpus(0), job.plan.gpus(job.plan.num_stages() - 1));
}

TEST(GreedyPlanner, InfeasibleDeadlinePropagates) {
  const PlannedJob job = PlanGreedy(TestInputs(1.0));
  EXPECT_FALSE(job.feasible);
}

TEST(GreedyPlanner, TighterDeadlineNeverCheaper) {
  const PlannedJob tight = PlanGreedy(TestInputs(Minutes(12)));
  const PlannedJob loose = PlanGreedy(TestInputs(Minutes(40)));
  ASSERT_TRUE(tight.feasible);
  ASSERT_TRUE(loose.feasible);
  EXPECT_GE(tight.estimate.cost_mean.dollars(), loose.estimate.cost_mean.dollars() - 1e-6);
}

TEST(NaiveElastic, ConstantGpusPerTrialShape) {
  const PlannerInputs inputs = TestInputs(Minutes(30));
  const PlannedJob job = PlanNaiveElastic(inputs);
  ASSERT_TRUE(job.feasible);
  const auto& spec = inputs.spec;
  const int t = job.plan.gpus(0) / spec.stage(0).num_trials;
  EXPECT_GE(t, 1);
  for (int i = 0; i < spec.num_stages(); ++i) {
    EXPECT_EQ(job.plan.gpus(i), t * spec.stage(i).num_trials) << "stage " << i;
  }
}

TEST(NaiveElastic, NeverBeatsRubberBand) {
  for (double minutes : {15.0, 20.0, 30.0}) {
    const PlannerInputs inputs = TestInputs(Minutes(minutes));
    const PlannedJob naive = PlanNaiveElastic(inputs);
    const PlannedJob elastic = PlanGreedy(inputs);
    if (naive.feasible && elastic.feasible) {
      EXPECT_GE(naive.estimate.cost_mean.dollars(),
                elastic.estimate.cost_mean.dollars() - 1e-6)
          << minutes;
    }
  }
}

TEST(Planner, MultiWarmStartCanBeatSingleWarmStart) {
  // With only the 1x warm start the plan can never allocate more than the
  // static optimum to any stage; multi-warm-starting explores wider early
  // stages (the Table 3 plan exceeds the static size in stage 0).
  PlannerInputs inputs = TestInputs(Minutes(15));
  PlannerOptions single;
  single.warm_start_multipliers = {1.0};
  PlannerOptions multi;  // default {1, 2, 3}
  const PlannedJob narrow = PlanGreedy(inputs, single);
  const PlannedJob wide = PlanGreedy(inputs, multi);
  if (narrow.feasible && wide.feasible) {
    EXPECT_LE(wide.estimate.cost_mean.dollars(), narrow.estimate.cost_mean.dollars() + 1e-6);
  }
}

TEST(Planner, EstimateIsDeterministicForFixedSeed) {
  const PlannerInputs inputs = TestInputs(Minutes(30));
  PlannerOptions options;
  const AllocationPlan plan = AllocationPlan::Uniform(inputs.spec.num_stages(), 8);
  const PlanEstimate a = EstimatePlan(inputs, plan, options);
  const PlanEstimate b = EstimatePlan(inputs, plan, options);
  EXPECT_DOUBLE_EQ(a.jct_mean, b.jct_mean);
  EXPECT_EQ(a.cost_mean, b.cost_mean);
}

}  // namespace
}  // namespace rubberband
