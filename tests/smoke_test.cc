// End-to-end smoke test: the Figure 6 workflow — spec, profile, plan,
// execute — runs green and the pieces agree with each other.

#include <gtest/gtest.h>

#include "src/rubberband.h"

namespace rubberband {
namespace {

TEST(Smoke, SpecProfilePlanExecute) {
  const ExperimentSpec spec = MakeSha(/*num_trials=*/16, /*min_iters=*/2, /*max_iters=*/30,
                                      /*reduction_factor=*/2);
  const WorkloadSpec workload = ResNet101Cifar10();
  const ModelProfile profile = ProfileWorkload(workload).profile;

  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);

  const Seconds deadline = Minutes(60);
  const PlannedJob job = CompilePlan(spec, profile, cloud, deadline);
  ASSERT_TRUE(job.feasible);
  EXPECT_LE(job.estimate.jct_mean, deadline);

  const ExecutionReport report = Execute(spec, job.plan, workload, cloud);
  EXPECT_GT(report.jct, 0.0);
  EXPECT_GT(report.cost.Total().dollars(), 0.0);
  EXPECT_GT(report.best_accuracy, 0.5);
  EXPECT_EQ(report.stage_log.size(), static_cast<size_t>(spec.num_stages()));

  // Realized execution should land in the neighbourhood of the simulated
  // prediction (the paper's fidelity claim; generous 40% tolerance here).
  EXPECT_NEAR(report.jct, job.estimate.jct_mean, 0.4 * job.estimate.jct_mean);
  EXPECT_NEAR(report.cost.Total().dollars(), job.estimate.cost_mean.dollars(),
              0.4 * job.estimate.cost_mean.dollars());
}

}  // namespace
}  // namespace rubberband
