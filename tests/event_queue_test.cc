#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <queue>
#include <random>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "src/sim/simulation.h"

namespace rubberband {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(3.0, [&] { order.push_back(3); });
  queue.ScheduleAt(1.0, [&] { order.push_back(1); });
  queue.ScheduleAt(2.0, [&] { order.push_back(2); });
  queue.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, TiesRunInSchedulingOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  queue.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue queue;
  queue.ScheduleAt(10.0, [] {});
  queue.RunAll();
  EXPECT_THROW(queue.ScheduleAt(5.0, [] {}), std::logic_error);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue queue;
  int fired = 0;
  queue.ScheduleAt(1.0, [&] {
    ++fired;
    queue.ScheduleAt(2.0, [&] { ++fired; });
  });
  queue.RunAll();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue queue;
  int fired = 0;
  queue.ScheduleAt(1.0, [&] { ++fired; });
  queue.ScheduleAt(5.0, [&] { ++fired; });
  queue.RunUntil(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
  EXPECT_EQ(queue.size(), 1u);
  queue.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunNextOnEmptyReturnsFalse) {
  EventQueue queue;
  EXPECT_FALSE(queue.RunNext());
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, PastTimeErrorNamesBothTimestamps) {
  EventQueue queue;
  queue.ScheduleAt(10.0, [] {});
  queue.RunAll();
  try {
    queue.ScheduleAt(5.0, [] {});
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("5"), std::string::npos) << message;
    EXPECT_NE(message.find("10"), std::string::npos) << message;
  }
}

// --- cancellation handles --------------------------------------------------

TEST(EventQueue, CancelPendingEventNeverRuns) {
  EventQueue queue;
  int fired = 0;
  const EventHandle handle = queue.ScheduleAt(1.0, [&] { ++fired; });
  queue.ScheduleAt(2.0, [&] { ++fired; });
  EXPECT_TRUE(queue.IsPending(handle));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_TRUE(queue.Cancel(handle));
  EXPECT_FALSE(queue.IsPending(handle));
  EXPECT_EQ(queue.size(), 1u);
  queue.RunAll();
  EXPECT_EQ(fired, 1);
  // A cancelled head never counts as run and never advances the clock to
  // its timestamp; the clock lands on the event that actually ran.
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
  EXPECT_EQ(queue.stats().run, 1u);
  EXPECT_EQ(queue.stats().cancelled, 1u);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue queue;
  const EventHandle handle = queue.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(queue.Cancel(handle));
  EXPECT_FALSE(queue.Cancel(handle));
}

TEST(EventQueue, CancelAfterFiredReturnsFalse) {
  EventQueue queue;
  const EventHandle handle = queue.ScheduleAt(1.0, [] {});
  queue.RunAll();
  EXPECT_FALSE(queue.IsPending(handle));
  EXPECT_FALSE(queue.Cancel(handle));
}

TEST(EventQueue, StaleHandleAfterSlotReuseReturnsFalse) {
  EventQueue queue;
  const EventHandle stale = queue.ScheduleAt(1.0, [] {});
  queue.RunAll();  // frees the slot
  int fired = 0;
  const EventHandle fresh = queue.ScheduleAt(2.0, [&] { ++fired; });
  // The recycled slot carries a new seq, so the stale ticket stops matching.
  EXPECT_EQ(stale.slot, fresh.slot);
  EXPECT_FALSE(queue.Cancel(stale));
  queue.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelledHeadSkippedByNextTime) {
  EventQueue queue;
  const EventHandle head = queue.ScheduleAt(1.0, [] {});
  queue.ScheduleAt(5.0, [] {});
  queue.Cancel(head);
  EXPECT_DOUBLE_EQ(queue.next_time(), 5.0);
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
}

TEST(EventQueue, CancelInvalidHandleReturnsFalse) {
  EventQueue queue;
  EXPECT_FALSE(queue.Cancel(EventHandle{}));
  EXPECT_FALSE(queue.IsPending(EventHandle{}));
}

TEST(EventQueue, CancelReleasesCapturesImmediately) {
  EventQueue queue;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  const EventHandle handle = queue.ScheduleAt(1.0, [token = std::move(token)] {});
  EXPECT_FALSE(watch.expired());
  queue.Cancel(handle);
  // The callback (and its captured shared_ptr) is destroyed on Cancel, not
  // deferred to lazy heap pruning.
  EXPECT_TRUE(watch.expired());
}

// --- randomized model test vs the reference implementation -----------------

// Drives the pairing-heap queue and a reference std::priority_queue (the
// previous implementation) through the same randomized schedule/run/cancel
// trace and asserts identical pop order and clock — the determinism contract
// that keeps golden baselines bit-identical across the kernel swap.
TEST(EventQueue, RandomizedModelMatchesReferenceQueue) {
  using Entry = std::tuple<Seconds, uint64_t>;  // (at, seq), min-first
  struct EntryAfter {
    bool operator()(const Entry& a, const Entry& b) const { return a > b; }
  };

  std::mt19937_64 rng(20260808);
  for (int round = 0; round < 20; ++round) {
    EventQueue queue;
    std::priority_queue<Entry, std::vector<Entry>, EntryAfter> model;
    std::vector<char> model_cancelled;  // by scheduling order
    std::vector<uint64_t> queue_order;
    std::vector<uint64_t> model_order;
    std::vector<EventHandle> handles;
    Seconds model_now = 0.0;
    uint64_t next_id = 0;

    std::uniform_int_distribution<int> op(0, 9);
    std::uniform_real_distribution<double> delay(0.0, 8.0);
    for (int step = 0; step < 400; ++step) {
      const int choice = op(rng);
      if (choice < 6 || model.empty()) {
        // Schedule. Coarse timestamps force equal-time collisions.
        const Seconds at = model_now + std::floor(delay(rng));
        const uint64_t id = next_id++;
        handles.push_back(queue.ScheduleAt(at, [&queue_order, id] { queue_order.push_back(id); }));
        model.emplace(at, id);
        model_cancelled.push_back(0);
      } else if (choice < 8) {
        // Cancel a random not-yet-fired, not-yet-cancelled event (if any).
        std::uniform_int_distribution<size_t> pick(0, handles.size() - 1);
        const size_t index = pick(rng);
        const bool expect = queue.IsPending(handles[index]);
        EXPECT_EQ(queue.Cancel(handles[index]), expect);
        if (expect) {
          model_cancelled[index] = 1;
        }
      } else {
        // Run next live event in both.
        while (!model.empty() && model_cancelled[std::get<1>(model.top())]) {
          model.pop();
        }
        if (model.empty()) {
          EXPECT_FALSE(queue.RunNext());
          continue;
        }
        const auto [at, id] = model.top();
        model.pop();
        model_now = at;
        model_order.push_back(id);
        EXPECT_TRUE(queue.RunNext());
        EXPECT_DOUBLE_EQ(queue.now(), model_now);
      }
      size_t model_live = 0;
      {
        auto copy = model;
        while (!copy.empty()) {
          if (!model_cancelled[std::get<1>(copy.top())]) ++model_live;
          copy.pop();
        }
      }
      ASSERT_EQ(queue.size(), model_live);
    }
    queue.RunAll();
    while (!model.empty()) {
      const auto [at, id] = model.top();
      model.pop();
      if (!model_cancelled[id]) {
        model_order.push_back(id);
      }
    }
    ASSERT_EQ(queue_order, model_order) << "round " << round;
  }
}

TEST(EventQueue, SameScheduleTwiceGivesIdenticalOrder) {
  auto run_trace = [] {
    std::mt19937_64 rng(99);
    std::uniform_real_distribution<double> delay(0.0, 4.0);
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 200; ++i) {
      queue.ScheduleAt(std::floor(delay(rng)), [&order, i] { order.push_back(i); });
    }
    queue.RunAll();
    return order;
  };
  EXPECT_EQ(run_trace(), run_trace());
}

TEST(EventQueue, EqualTimestampFifoUnderRandomInterleaving) {
  std::mt19937_64 rng(4242);
  EventQueue queue;
  std::vector<std::pair<int, int>> order;  // (timestamp bucket, schedule index)
  std::uniform_int_distribution<int> bucket(0, 4);
  std::vector<int> per_bucket_index(5, 0);
  for (int i = 0; i < 300; ++i) {
    const int b = bucket(rng);
    const int index = per_bucket_index[static_cast<size_t>(b)]++;
    queue.ScheduleAt(static_cast<Seconds>(b),
                     [&order, b, index] { order.emplace_back(b, index); });
  }
  queue.RunAll();
  std::vector<int> last_seen(5, -1);
  int last_bucket = -1;
  for (const auto& [b, index] : order) {
    EXPECT_GE(b, last_bucket);  // time never goes backwards
    last_bucket = b;
    // Within a timestamp, events fire in scheduling order.
    EXPECT_EQ(index, last_seen[static_cast<size_t>(b)] + 1);
    last_seen[static_cast<size_t>(b)] = index;
  }
}

// RunUntilCapped may overrun the cap but must never split an equal-timestamp
// group: after an early stop, nothing pending is at (or before) the clock.
TEST(EventQueue, RunUntilCappedNeverSplitsTimestampGroup) {
  std::mt19937_64 rng(777);
  std::uniform_int_distribution<int> bucket(0, 9);
  std::uniform_int_distribution<size_t> cap(1, 12);
  for (int round = 0; round < 10; ++round) {
    EventQueue queue;
    int fired = 0;
    for (int i = 0; i < 200; ++i) {
      queue.ScheduleAt(static_cast<Seconds>(bucket(rng)), [&fired] { ++fired; });
    }
    while (!queue.empty()) {
      const size_t max_events = cap(rng);
      const size_t ran = queue.RunUntilCapped(100.0, max_events);
      if (ran == 0) break;
      if (!queue.empty()) {
        EXPECT_GT(queue.next_time(), queue.now());
      }
    }
    EXPECT_EQ(fired, 200);
  }
}

// --- allocation + slab behaviour -------------------------------------------

TEST(EventQueue, InlineCallbacksNeverHeapAllocate) {
  EventQueue queue;
  int64_t sink = 0;
  const int64_t before = EventCallback::HeapConstructions();
  for (int i = 0; i < 1000; ++i) {
    queue.ScheduleAt(static_cast<Seconds>(i), [&sink, i] { sink += i; });
  }
  queue.RunAll();
  EXPECT_EQ(EventCallback::HeapConstructions(), before);
  EXPECT_EQ(sink, 999 * 1000 / 2);
}

TEST(EventQueue, OversizedCallbackFallsBackToHeapAndStillRuns) {
  EventQueue queue;
  char big[2 * EventCallback::kInlineBytes];
  std::memset(big, 'x', sizeof(big));
  big[sizeof(big) - 1] = '\0';
  const int64_t before = EventCallback::HeapConstructions();
  std::string seen;
  queue.ScheduleAt(1.0, [big, &seen] { seen = big; });
  EXPECT_EQ(EventCallback::HeapConstructions(), before + 1);
  queue.RunAll();
  EXPECT_EQ(seen.size(), sizeof(big) - 1);
}

TEST(EventQueue, SlabStaysBoundedUnderChurn) {
  EventQueue queue;
  int remaining = 100000;
  struct Tick {
    EventQueue* queue;
    int* remaining;
    void operator()() const {
      if (--*(remaining) > 0) {
        queue->ScheduleAt(queue->now() + 1.0, Tick{queue, remaining});
      }
    }
  };
  queue.ScheduleAt(0.0, Tick{&queue, &remaining});
  queue.RunAll();
  EXPECT_EQ(remaining, 0);
  // Steady-state depth is 1; recycled slots keep the slab tiny no matter
  // how many events flow through.
  EXPECT_LE(queue.slab_capacity(), 16u);
}

TEST(EventQueue, StatsCountersTrackSchedulingRunsAndCancels) {
  EventQueue queue;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(queue.ScheduleAt(static_cast<Seconds>(i), [] {}));
  }
  queue.Cancel(handles[2]);
  queue.Cancel(handles[5]);
  queue.RunAll();
  EXPECT_EQ(queue.stats().scheduled, 8u);
  EXPECT_EQ(queue.stats().run, 6u);
  EXPECT_EQ(queue.stats().cancelled, 2u);
  EXPECT_EQ(queue.stats().depth_high_water, 8u);
}

TEST(Simulation, ScheduleInUsesCurrentTime) {
  Simulation sim(0);
  std::vector<double> times;
  sim.ScheduleIn(2.0, [&] {
    times.push_back(sim.now());
    sim.ScheduleIn(3.0, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 2.0);
  EXPECT_DOUBLE_EQ(times[1], 5.0);
}

TEST(Simulation, SeededRngIsDeterministic) {
  Simulation a(123);
  Simulation b(123);
  EXPECT_DOUBLE_EQ(a.rng().Uniform(0, 1), b.rng().Uniform(0, 1));
}

TEST(Simulation, CancelPreventsScheduledEvent) {
  Simulation sim(0);
  int fired = 0;
  const EventHandle doomed = sim.ScheduleIn(1.0, [&] { ++fired; });
  sim.ScheduleIn(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.Cancel(doomed));
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.Cancel(doomed));
}

}  // namespace
}  // namespace rubberband
