#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulation.h"

namespace rubberband {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(3.0, [&] { order.push_back(3); });
  queue.ScheduleAt(1.0, [&] { order.push_back(1); });
  queue.ScheduleAt(2.0, [&] { order.push_back(2); });
  queue.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, TiesRunInSchedulingOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  queue.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue queue;
  queue.ScheduleAt(10.0, [] {});
  queue.RunAll();
  EXPECT_THROW(queue.ScheduleAt(5.0, [] {}), std::logic_error);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue queue;
  int fired = 0;
  queue.ScheduleAt(1.0, [&] {
    ++fired;
    queue.ScheduleAt(2.0, [&] { ++fired; });
  });
  queue.RunAll();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue queue;
  int fired = 0;
  queue.ScheduleAt(1.0, [&] { ++fired; });
  queue.ScheduleAt(5.0, [&] { ++fired; });
  queue.RunUntil(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
  EXPECT_EQ(queue.size(), 1u);
  queue.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunNextOnEmptyReturnsFalse) {
  EventQueue queue;
  EXPECT_FALSE(queue.RunNext());
  EXPECT_TRUE(queue.empty());
}

TEST(Simulation, ScheduleInUsesCurrentTime) {
  Simulation sim(0);
  std::vector<double> times;
  sim.ScheduleIn(2.0, [&] {
    times.push_back(sim.now());
    sim.ScheduleIn(3.0, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 2.0);
  EXPECT_DOUBLE_EQ(times[1], 5.0);
}

TEST(Simulation, SeededRngIsDeterministic) {
  Simulation a(123);
  Simulation b(123);
  EXPECT_DOUBLE_EQ(a.rng().Uniform(0, 1), b.rng().Uniform(0, 1));
}

}  // namespace
}  // namespace rubberband
