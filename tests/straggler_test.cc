// Gray-failure robustness: persistent-straggler injection, the
// observation-only runtime detector, and checkpoint-based quarantine.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "src/rubberband.h"

namespace rubberband {
namespace {

CloudProfile TestCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  return cloud;
}

// ---------------------------------------------------------------------------
// Injection: FaultInjector straggler class.
// ---------------------------------------------------------------------------

TEST(StragglerInjection, DisabledClassNeverStragglesAndNeverDraws) {
  FaultProfile profile;
  profile.checkpoint_failure_rate = 0.5;  // keep another class drawing
  EXPECT_TRUE(profile.Any());
  FaultInjector sampled(profile, Rng(9));
  FaultInjector control(profile, Rng(9));
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(sampled.SampleStragglerFactor(), 1.0);
  }
  EXPECT_FALSE(sampled.stragglers_enabled());
  EXPECT_EQ(sampled.num_stragglers(), 0);
  // The disabled class consumed nothing from the stream: both injectors
  // produce the same checkpoint-failure sequence from here on.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampled.CheckpointFetchFails(), control.CheckpointFetchFails());
  }
}

TEST(StragglerInjection, CertainRateAlwaysStragglesAtThePinnedFactor) {
  FaultProfile profile;
  profile.straggler_rate = 1.0;
  profile.straggler_factor_min = 3.5;
  profile.straggler_factor_max = 3.5;
  EXPECT_TRUE(profile.Any());
  FaultInjector faults(profile, Rng(1));
  EXPECT_TRUE(faults.stragglers_enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(faults.SampleStragglerFactor(), 3.5);
  }
  EXPECT_EQ(faults.num_stragglers(), 10);
}

TEST(StragglerInjection, SampledFactorsAreDeterministicPerSeedAndInBounds) {
  FaultProfile profile;
  profile.straggler_rate = 0.5;
  profile.straggler_factor_min = 2.0;
  profile.straggler_factor_max = 4.0;
  FaultInjector a(profile, Rng(9));
  FaultInjector b(profile, Rng(9));
  int healthy = 0;
  for (int i = 0; i < 200; ++i) {
    const double factor = a.SampleStragglerFactor();
    EXPECT_DOUBLE_EQ(factor, b.SampleStragglerFactor());
    if (factor == 1.0) {
      ++healthy;
    } else {
      EXPECT_GE(factor, 2.0);
      EXPECT_LE(factor, 4.0);
    }
  }
  EXPECT_GT(healthy, 0);
  EXPECT_LT(healthy, 200);
  EXPECT_EQ(a.num_stragglers(), 200 - healthy);
}

// ---------------------------------------------------------------------------
// Injection: SimulatedCloud tags stragglers at launch.
// ---------------------------------------------------------------------------

TEST(StragglerCloud, TagsEveryLaunchAtCertainRateAndClearsOnTerminate) {
  Simulation sim(3);
  CloudProfile profile = TestCloud();
  profile.fault.straggler_rate = 1.0;
  profile.fault.straggler_factor_min = 2.5;
  profile.fault.straggler_factor_max = 2.5;
  SimulatedCloud cloud(sim, profile);
  std::vector<InstanceId> ids;
  cloud.RequestInstances(4, 0.0, [&](InstanceId id) { ids.push_back(id); });
  sim.Run();
  ASSERT_EQ(ids.size(), 4u);
  for (InstanceId id : ids) {
    EXPECT_DOUBLE_EQ(cloud.StragglerFactor(id), 2.5);
  }
  EXPECT_EQ(cloud.num_straggler_instances(), 4);
  cloud.TerminateInstance(ids[0]);
  // The tag dies with the instance; the injection counter is cumulative.
  EXPECT_DOUBLE_EQ(cloud.StragglerFactor(ids[0]), 1.0);
  EXPECT_EQ(cloud.num_straggler_instances(), 4);
}

TEST(StragglerCloud, ZeroRateLeavesEveryInstanceClean) {
  Simulation sim(3);
  SimulatedCloud cloud(sim, TestCloud());
  std::vector<InstanceId> ids;
  cloud.RequestInstances(4, 0.0, [&](InstanceId id) { ids.push_back(id); });
  sim.Run();
  ASSERT_EQ(ids.size(), 4u);
  for (InstanceId id : ids) {
    EXPECT_DOUBLE_EQ(cloud.StragglerFactor(id), 1.0);
  }
  EXPECT_EQ(cloud.num_straggler_instances(), 0);
}

// ---------------------------------------------------------------------------
// Detection: the observation-only StragglerDetector.
// ---------------------------------------------------------------------------

TEST(StragglerDetector, FlagsAPersistentOutlierExactlyOnce) {
  StragglerDetector detector(StragglerDetectorConfig{});  // defaults: k=3, warmup=4
  int flagged_at = 0;
  for (int sync = 1; sync <= 8; ++sync) {
    for (InstanceId healthy = 1; healthy <= 3; ++healthy) {
      EXPECT_FALSE(detector.Observe(healthy, 1.0));
    }
    if (detector.Observe(/*id=*/42, /*normalized_latency=*/3.0)) {
      EXPECT_EQ(flagged_at, 0) << "Observe returned true twice";
      flagged_at = sync;
    }
  }
  // Consecutive-over reaches k=3 on sync 3 but warmup holds the flag until
  // min_observations=4.
  EXPECT_EQ(flagged_at, 4);
  EXPECT_TRUE(detector.IsFlagged(42));
  EXPECT_EQ(detector.ObservationsAtFlag(42), 4);
  EXPECT_EQ(detector.num_flagged(), 1);
  EXPECT_FALSE(detector.IsFlagged(1));
  EXPECT_DOUBLE_EQ(detector.Ewma(42), 3.0);  // EWMA of a constant signal
}

TEST(StragglerDetector, TransientSpikeRevertsWithoutFlagging) {
  StragglerDetector detector(StragglerDetectorConfig{});
  for (int sync = 0; sync < 30; ++sync) {
    for (InstanceId id = 1; id <= 3; ++id) {
      // Instance 3 spikes to 3x once at sync 10 and immediately recovers:
      // its EWMA pokes above threshold for one sync, then decays back under
      // before the k-consecutive hysteresis can condemn it.
      const double latency = (id == 3 && sync == 10) ? 3.0 : 1.0;
      EXPECT_FALSE(detector.Observe(id, latency)) << "flagged at sync " << sync;
    }
  }
  EXPECT_EQ(detector.num_flagged(), 0);
  EXPECT_FALSE(detector.IsFlagged(3));
}

TEST(StragglerDetector, NeedsABaselineOfAtLeastTwoInstances) {
  StragglerDetector detector(StragglerDetectorConfig{});
  for (int sync = 0; sync < 50; ++sync) {
    // However slow, a lone instance has no peers to be slower than.
    EXPECT_FALSE(detector.Observe(7, 10.0));
  }
  EXPECT_EQ(detector.num_flagged(), 0);
  EXPECT_EQ(detector.num_tracked(), 1);
}

TEST(StragglerDetector, BaselineIsTheLowerMedianOfTrackedEwmas) {
  StragglerDetector detector(StragglerDetectorConfig{});
  detector.Observe(1, 1.0);
  detector.Observe(2, 2.0);
  detector.Observe(3, 9.0);
  EXPECT_DOUBLE_EQ(detector.Baseline(), 2.0);
  // Even count: the lower median biases detection toward flagging.
  detector.Observe(4, 5.0);
  EXPECT_DOUBLE_EQ(detector.Baseline(), 2.0);
}

TEST(StragglerDetector, ForgetDropsTrackingState) {
  StragglerDetector detector(StragglerDetectorConfig{});
  for (int sync = 0; sync < 6; ++sync) {
    detector.Observe(1, 1.0);
    detector.Observe(2, 1.0);
    detector.Observe(42, 4.0);
  }
  ASSERT_TRUE(detector.IsFlagged(42));
  EXPECT_EQ(detector.num_tracked(), 3);
  detector.Forget(42);
  EXPECT_FALSE(detector.IsFlagged(42));
  EXPECT_EQ(detector.num_tracked(), 2);
  EXPECT_DOUBLE_EQ(detector.Ewma(42), 0.0);
  EXPECT_EQ(detector.ObservationsAtFlag(42), 0);
}

// ---------------------------------------------------------------------------
// Mitigation plumbing: ClusterManager quarantine and the warm-pool discard.
// ---------------------------------------------------------------------------

TEST(StragglerQuarantine, RemovesBlacklistsAndTerminatesTheInstance) {
  Simulation sim(1);
  SimulatedCloud cloud(sim, TestCloud());
  ClusterManager manager(sim, cloud, 0.0);
  bool scaled = false;
  manager.EnsureInstances(3, [&] { scaled = true; });
  sim.Run();
  ASSERT_TRUE(scaled);
  ASSERT_EQ(manager.num_ready(), 3);
  const InstanceId victim = manager.ready_instances().front();

  manager.Quarantine(victim);
  EXPECT_EQ(manager.num_ready(), 2);
  EXPECT_EQ(manager.num_quarantined(), 1);
  EXPECT_TRUE(manager.IsQuarantined(victim));
  EXPECT_FALSE(manager.IsQuarantined(manager.ready_instances().front()));
  EXPECT_EQ(cloud.num_ready(), 2);  // discarded = terminated for real

  // Quarantining hardware the manager does not hold is a logic error.
  EXPECT_THROW(manager.Quarantine(victim), std::logic_error);
}

// A source that hands out scripted instance ids synchronously — models a
// provider that recycles ids, which the manager's blacklist must defend
// against (the simulated cloud never reuses ids, so this needs a fake).
class ScriptedSource : public InstanceSource {
 public:
  explicit ScriptedSource(std::vector<InstanceId> script) : script_(std::move(script)) {}

  void RequestInstances(int count, double, std::function<void(InstanceId)> on_ready,
                        std::function<void()>) override {
    for (int i = 0; i < count; ++i) {
      ASSERT_LT(next_, script_.size()) << "scripted source ran out of instances";
      on_ready(script_[next_++]);
    }
  }
  void ReleaseInstance(InstanceId id) override { released_.push_back(id); }
  void DiscardInstance(InstanceId id) override { discarded_.push_back(id); }

  const std::vector<InstanceId>& released() const { return released_; }
  const std::vector<InstanceId>& discarded() const { return discarded_; }

 private:
  std::vector<InstanceId> script_;
  size_t next_ = 0;
  std::vector<InstanceId> released_;
  std::vector<InstanceId> discarded_;
};

TEST(StragglerQuarantine, BlacklistDefeatsASourceThatRecyclesIds) {
  Simulation sim(1);
  ScriptedSource source({7, 7, 8, 9});
  ClusterManager manager(sim, source, 0.0);
  manager.EnsureInstances(1, [] {});
  ASSERT_EQ(manager.num_ready(), 1);
  manager.Quarantine(7);
  EXPECT_EQ(source.discarded(), std::vector<InstanceId>({7}));

  // The source recycles id 7 on the next scale-up: the manager must throw
  // it away, keep the slot open, and still reach the waiter's target.
  bool scaled = false;
  manager.EnsureInstances(2, [&] { scaled = true; });
  EXPECT_TRUE(scaled);
  EXPECT_EQ(manager.num_ready(), 2);
  EXPECT_EQ(manager.ready_instances(), std::vector<InstanceId>({8, 9}));
  EXPECT_EQ(source.discarded(), std::vector<InstanceId>({7, 7}));
  EXPECT_TRUE(source.released().empty());
}

TEST(StragglerWarmPool, DiscardTerminatesInsteadOfParking) {
  Simulation sim(1);
  SimulatedCloud cloud(sim, TestCloud());
  WarmPool pool(sim, cloud, WarmPoolConfig{/*max_parked=*/4, /*max_idle_seconds=*/600.0});
  InstanceId id = -1;
  pool.RequestInstances(1, 0.0, [&](InstanceId ready) { id = ready; });
  sim.Run();
  ASSERT_GE(id, 0);

  // A plain release would park this instance for the next tenant; discard
  // must never hand known-slow hardware to anyone again.
  pool.DiscardInstance(id);
  EXPECT_EQ(pool.num_parked(), 0);
  EXPECT_EQ(cloud.num_ready(), 0);
  EXPECT_EQ(pool.stats().parked, 0);
  EXPECT_EQ(pool.stats().released_cold, 1);
}

// ---------------------------------------------------------------------------
// End-to-end: the executor's detect/quarantine/restore loop.
// ---------------------------------------------------------------------------

ExecutionReport RunExecutor(uint64_t seed, double rate, double factor, bool detect,
                            bool mitigate) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  const AllocationPlan plan({8, 8, 8});
  CloudProfile cloud = TestCloud();
  cloud.fault.straggler_rate = rate;
  cloud.fault.straggler_factor_min = factor;
  cloud.fault.straggler_factor_max = factor;
  ExecutorOptions options;
  options.seed = seed;
  options.straggler.detect = detect;
  options.straggler.mitigate = mitigate;
  return ExecutePlan(spec, plan, workload, cloud, options);
}

TEST(StragglerExecutor, ZeroRateWithPolicyArmedIsBitIdenticalToBaseline) {
  // The whole gray-failure layer must be free when no stragglers exist:
  // arming detection AND mitigation at straggler_rate zero reproduces the
  // fault-free run exactly — no Rng draws, no behavioural change.
  const ExecutionReport baseline = RunExecutor(17, 0.0, 3.0, false, false);
  const ExecutionReport armed = RunExecutor(17, 0.0, 3.0, true, true);
  EXPECT_EQ(baseline.jct, armed.jct);
  EXPECT_EQ(baseline.cost.Total(), armed.cost.Total());
  EXPECT_EQ(baseline.best_accuracy, armed.best_accuracy);
  EXPECT_EQ(baseline.trace.events().size(), armed.trace.events().size());
  EXPECT_EQ(armed.stragglers_injected, 0);
  EXPECT_EQ(armed.stragglers_detected, 0);
  EXPECT_EQ(armed.stragglers_quarantined, 0);
  EXPECT_EQ(armed.straggler_false_positives, 0);
  EXPECT_EQ(armed.straggler_mitigation_seconds, 0.0);
}

TEST(StragglerExecutor, DetectionIsObservationOnly) {
  // The detector consumes iteration latencies and produces trace events —
  // nothing else. With mitigation off, a detect-armed run must match the
  // detector-free run on every execution outcome at any straggler rate,
  // while still finding the injected stragglers. (This is the no-oracle,
  // no-perturbation proof: if detection touched the Rng or the schedule,
  // these runs would diverge.)
  int total_injected = 0;
  int total_detected = 0;
  int total_false_positives = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const ExecutionReport plain = RunExecutor(seed, 0.4, 3.0, false, false);
    const ExecutionReport watched = RunExecutor(seed, 0.4, 3.0, true, false);
    EXPECT_EQ(plain.jct, watched.jct) << "seed " << seed;
    EXPECT_EQ(plain.cost.Total(), watched.cost.Total()) << "seed " << seed;
    EXPECT_EQ(plain.best_accuracy, watched.best_accuracy) << "seed " << seed;
    EXPECT_EQ(plain.stragglers_injected, watched.stragglers_injected) << "seed " << seed;
    EXPECT_EQ(watched.stragglers_quarantined, 0);
    total_injected += watched.stragglers_injected;
    total_detected += watched.stragglers_detected;
    total_false_positives += watched.straggler_false_positives;
  }
  EXPECT_GT(total_injected, 0);
  EXPECT_GT(total_detected, 0);
  EXPECT_EQ(total_false_positives, 0);
}

TEST(StragglerExecutor, MitigationBeatsNoMitigationUnderSevereStragglers) {
  Seconds unmitigated_jct = 0.0;
  Seconds mitigated_jct = 0.0;
  int total_quarantined = 0;
  int total_false_positives = 0;
  Seconds total_mitigation_cost = 0.0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const ExecutionReport off = RunExecutor(seed, 0.4, 3.0, false, false);
    const ExecutionReport on = RunExecutor(seed, 0.4, 3.0, true, true);
    unmitigated_jct += off.jct;
    mitigated_jct += on.jct;
    total_quarantined += on.stragglers_quarantined;
    total_false_positives += on.straggler_false_positives;
    total_mitigation_cost += on.straggler_mitigation_seconds;
    EXPECT_LE(on.stragglers_quarantined, on.stragglers_detected);
    EXPECT_LE(on.stragglers_detected, on.stragglers_injected);
    // Every quarantine leaves a matching pair of trace events.
    EXPECT_EQ(on.trace.OfType(TraceEventType::kStragglerQuarantined).size(),
              static_cast<size_t>(on.stragglers_quarantined));
    EXPECT_EQ(on.trace.OfType(TraceEventType::kStragglerDetected).size(),
              static_cast<size_t>(on.stragglers_detected));
  }
  EXPECT_GT(total_quarantined, 0);
  EXPECT_EQ(total_false_positives, 0);
  // Cutting 3x-slow instances out must win on aggregate completion time,
  // and the checkpoint/restore tax must be small against the gain.
  EXPECT_LT(mitigated_jct, unmitigated_jct);
  EXPECT_LT(total_mitigation_cost, unmitigated_jct - mitigated_jct);
}

TEST(StragglerExecutor, MildSlowdownBelowThresholdIsNeverFlagged) {
  // Everybody straggles equally at 1.2x — well under the 1.5x relative
  // threshold. An oracle reading the injector's tags would flag them all;
  // the observation-only detector correctly sees a uniformly slow (i.e.
  // relatively healthy) fleet and flags nothing. Proves detection runs on
  // observations, not ground truth.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const ExecutionReport report = RunExecutor(seed, 1.0, 1.2, true, true);
    EXPECT_GT(report.stragglers_injected, 0) << "seed " << seed;
    EXPECT_EQ(report.stragglers_detected, 0) << "seed " << seed;
    EXPECT_EQ(report.stragglers_quarantined, 0) << "seed " << seed;
  }
}

TEST(StragglerExecutor, QuarantineBudgetBoundsMitigation) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  const AllocationPlan plan({8, 8, 8});
  CloudProfile cloud = TestCloud();
  cloud.fault.straggler_rate = 0.6;
  cloud.fault.straggler_factor_min = 3.0;
  cloud.fault.straggler_factor_max = 3.0;
  ExecutorOptions options;
  options.seed = 2;
  options.straggler.detect = true;
  options.straggler.mitigate = true;
  options.straggler.max_quarantines = 1;
  const ExecutionReport report = ExecutePlan(spec, plan, workload, cloud, options);
  EXPECT_LE(report.stragglers_quarantined, 1);
}

// ---------------------------------------------------------------------------
// Service plumbing: straggler policy and stats flow through the service.
// ---------------------------------------------------------------------------

ServiceReport RunService(double rate, bool mitigate) {
  ServiceConfig config;
  config.cloud = TestCloud();
  config.cloud.fault.straggler_rate = rate;
  config.cloud.fault.straggler_factor_min = 3.0;
  config.cloud.fault.straggler_factor_max = 3.0;
  config.capacity_gpus = 16;
  config.seed = 5;
  config.straggler.detect = mitigate;
  config.straggler.mitigate = mitigate;
  TuningService service(config);
  for (int j = 0; j < 3; ++j) {
    JobRequest request;
    request.name = "job-" + std::to_string(j);
    // Large enough (and deadline tight enough) that the planner picks
    // multi-instance plans — a one-instance job has no peer baseline for
    // the detector to compare against.
    request.spec = MakeSha(16, 4, 28, 2);
    request.workload = ResNet101Cifar10();
    request.submit_at = 200.0 * j;
    request.deadline = 2500.0;
    service.Submit(std::move(request));
  }
  return service.Run();
}

TEST(StragglerService, PolicyAndStatsFlowThroughTheService) {
  const ServiceReport report = RunService(/*rate=*/0.4, /*mitigate=*/true);
  EXPECT_EQ(report.completed + report.rejected, 3);
  EXPECT_GT(report.stragglers_injected, 0);
  EXPECT_GT(report.total_stragglers_detected, 0);
  EXPECT_GT(report.total_stragglers_quarantined, 0);
  int per_job_detected = 0;
  for (const JobOutcome& job : report.jobs) {
    per_job_detected += job.stragglers_detected;
  }
  EXPECT_EQ(per_job_detected, report.total_stragglers_detected);
}

TEST(StragglerService, ZeroRateWithPolicyArmedIsBitIdentical) {
  const ServiceReport baseline = RunService(/*rate=*/0.0, /*mitigate=*/false);
  const ServiceReport armed = RunService(/*rate=*/0.0, /*mitigate=*/true);
  EXPECT_EQ(baseline.makespan, armed.makespan);
  EXPECT_EQ(baseline.total_cost.Total(), armed.total_cost.Total());
  EXPECT_EQ(baseline.completed, armed.completed);
  EXPECT_EQ(armed.stragglers_injected, 0);
  EXPECT_EQ(armed.total_stragglers_detected, 0);
  EXPECT_EQ(armed.total_stragglers_quarantined, 0);
}

}  // namespace
}  // namespace rubberband
