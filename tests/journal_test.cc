// Durability layer of the serving front door: CRC-32C, the write-ahead
// journal's record format and recovery semantics (torn tails truncated,
// corruption refused with a byte offset), digest-enveloped snapshot files,
// and the runner-level contract — a server killed at any byte of the WAL
// resumes bit-identical to an uninterrupted run, and idempotent retries
// never double-apply, even across the kill.

#include "src/server/journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/crc32c.h"
#include "src/rubberband.h"
#include "src/server/protocol.h"
#include "src/server/service_runner.h"

namespace rubberband {
namespace {

std::string TempPath(const std::string& name) { return testing::TempDir() + "/" + name; }

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// ---------------------------------------------------------------------------
// CRC-32C.

TEST(Crc32c, KnownAnswers) {
  // The canonical Castagnoli check value (RFC 3720 appendix / every
  // hardware implementation agrees on this one).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  // 32 zero bytes — another published vector (iSCSI test pattern).
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32c, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    uint32_t crc = Crc32cExtend(0, data.data(), cut);
    crc = Crc32cExtend(crc, data.data() + cut, data.size() - cut);
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << cut;
  }
}

// ---------------------------------------------------------------------------
// WAL record format and recovery.

TEST(Wal, RoundTripsRecordsInOrder) {
  const std::string path = TempPath("wal_roundtrip.wal");
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Create(path, WalOptions{}, &error)) << error;
  ASSERT_TRUE(writer.Append("first", &error)) << error;
  ASSERT_TRUE(writer.Append("", &error)) << error;  // empty payload is legal
  ASSERT_TRUE(writer.Append(std::string(1000, 'x'), &error)) << error;
  writer.Close();

  WalReadResult result;
  ASSERT_TRUE(ReadWal(path, &result, &error)) << error;
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.records[0], "first");
  EXPECT_EQ(result.records[1], "");
  EXPECT_EQ(result.records[2], std::string(1000, 'x'));
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(result.valid_bytes, ReadFileBytes(path).size());
}

TEST(Wal, AbsentOrEmptyFileIsAFreshJournal) {
  WalReadResult result;
  std::string error;
  ASSERT_TRUE(ReadWal(TempPath("wal_never_created.wal"), &result, &error)) << error;
  EXPECT_TRUE(result.records.empty());

  const std::string path = TempPath("wal_empty.wal");
  WriteFileBytes(path, "");
  ASSERT_TRUE(ReadWal(path, &result, &error)) << error;
  EXPECT_TRUE(result.records.empty());
}

TEST(Wal, FsyncPolicyControlsSyncCadence) {
  std::string error;
  {
    WalWriter always;
    ASSERT_TRUE(always.Create(TempPath("wal_always.wal"), WalOptions{}, &error)) << error;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(always.Append("r", &error)) << error;
    }
    EXPECT_EQ(always.syncs(), 5);  // one per record
  }
  {
    WalOptions batched;
    batched.fsync = FsyncPolicy::kBatch;
    batched.batch_records = 3;
    WalWriter writer;
    ASSERT_TRUE(writer.Create(TempPath("wal_batch.wal"), batched, &error)) << error;
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(writer.Append("r", &error)) << error;
    }
    EXPECT_EQ(writer.syncs(), 2);  // after records 3 and 6
    writer.Close();
    EXPECT_EQ(writer.syncs(), 3);  // close flushes the partial batch
  }
  {
    WalOptions off;
    off.fsync = FsyncPolicy::kOff;
    WalWriter writer;
    ASSERT_TRUE(writer.Create(TempPath("wal_off.wal"), off, &error)) << error;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(writer.Append("r", &error)) << error;
    }
    writer.Close();
    EXPECT_EQ(writer.syncs(), 0);
  }
  FsyncPolicy policy;
  EXPECT_TRUE(ParseFsyncPolicy("batch", &policy));
  EXPECT_EQ(policy, FsyncPolicy::kBatch);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes", &policy));
}

TEST(Wal, TornTailIsReportedAndTruncatedNotFatal) {
  const std::string path = TempPath("wal_torn.wal");
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Create(path, WalOptions{}, &error)) << error;
  ASSERT_TRUE(writer.Append("alpha", &error)) << error;
  ASSERT_TRUE(writer.Append("beta", &error)) << error;
  // Die mid-append: only 6 of the third record's bytes reach the file.
  ASSERT_TRUE(writer.AppendTorn("gamma", 6, &error)) << error;
  writer.Abandon();

  WalReadResult result;
  ASSERT_TRUE(ReadWal(path, &result, &error)) << error;
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[1], "beta");
  EXPECT_TRUE(result.torn_tail);
  EXPECT_EQ(result.torn_offset, result.valid_bytes);
  EXPECT_LT(result.valid_bytes, ReadFileBytes(path).size());

  // Repair, then append again: the journal is whole.
  ASSERT_TRUE(TruncateWal(path, result.valid_bytes, &error)) << error;
  WalWriter resumed;
  ASSERT_TRUE(resumed.OpenAppend(path, WalOptions{}, &error)) << error;
  ASSERT_TRUE(resumed.Append("gamma", &error)) << error;
  resumed.Close();
  ASSERT_TRUE(ReadWal(path, &result, &error)) << error;
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.records[2], "gamma");
  EXPECT_FALSE(result.torn_tail);
}

TEST(Wal, CorruptionOfACompleteRecordRefusesNamingTheOffset) {
  const std::string path = TempPath("wal_corrupt.wal");
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Create(path, WalOptions{}, &error)) << error;
  ASSERT_TRUE(writer.Append("alpha", &error)) << error;
  ASSERT_TRUE(writer.Append("beta", &error)) << error;
  writer.Close();

  // Flip one payload byte of the SECOND record. Its record starts right
  // after the first record ends.
  std::string bytes = ReadFileBytes(path);
  const size_t second_record = kWalMagicBytes + kWalRecordHeaderBytes + 5;
  bytes[second_record + kWalRecordHeaderBytes] ^= 0x01;
  WriteFileBytes(path, bytes);

  WalReadResult result;
  ASSERT_FALSE(ReadWal(path, &result, &error));
  EXPECT_NE(error.find("offset " + std::to_string(second_record)), std::string::npos)
      << error;
  EXPECT_NE(error.find("refusing"), std::string::npos) << error;
}

TEST(Wal, GarbledMagicAndOversizeLengthAreCorruption) {
  const std::string path = TempPath("wal_magic.wal");
  WriteFileBytes(path, "NOTAWAL\n");
  WalReadResult result;
  std::string error;
  ASSERT_FALSE(ReadWal(path, &result, &error));
  EXPECT_NE(error.find("offset 0"), std::string::npos) << error;

  // Valid magic, then a length prefix announcing > kMaxWalRecordBytes.
  std::string bytes(kWalMagic, kWalMagicBytes);
  bytes += std::string("\xff\xff\xff\xff\x00\x00\x00\x00", 8);
  WriteFileBytes(path, bytes);
  ASSERT_FALSE(ReadWal(path, &result, &error));
  EXPECT_NE(error.find("offset " + std::to_string(kWalMagicBytes)), std::string::npos)
      << error;
}

// ---------------------------------------------------------------------------
// Digest-enveloped snapshot files.

TEST(DigestFile, RoundTripsAndDetectsCorruption) {
  const std::string body = R"({"version":1,"ops":[]})";
  const std::string encoded = EncodeDigestFile(body);
  EXPECT_TRUE(LooksLikeDigestFile(encoded));

  std::string decoded;
  std::string error;
  ASSERT_TRUE(DecodeDigestFile(encoded, &decoded, &error)) << error;
  EXPECT_EQ(decoded, body);

  std::string flipped = encoded;
  flipped[flipped.size() - 2] ^= 0x04;
  EXPECT_FALSE(DecodeDigestFile(flipped, &decoded, &error));
  EXPECT_FALSE(error.empty());

  std::string truncated = encoded.substr(0, encoded.size() - 3);
  EXPECT_FALSE(DecodeDigestFile(truncated, &decoded, &error));
}

TEST(DigestFile, BareJsonPassesThroughForOldSnapshots) {
  std::string decoded;
  std::string error;
  ASSERT_TRUE(DecodeDigestFile(R"({"version":1})", &decoded, &error)) << error;
  EXPECT_EQ(decoded, R"({"version":1})");
  EXPECT_FALSE(LooksLikeDigestFile(R"({"version":1})"));
}

// ---------------------------------------------------------------------------
// Runner-level WAL recovery: the bit-identical-resume contract.

RunnerOptions WalRunner(const std::string& wal_path, uint64_t seed = 11) {
  RunnerOptions options;
  options.service.cloud.instance = P3_8xlarge();
  options.service.cloud.provisioning = ProvisioningModel::Fixed(30.0, 60.0);
  options.service.capacity_gpus = 16;
  options.service.seed = seed;
  options.auto_advance_step = 0.0;
  options.wal_path = wal_path;
  return options;
}

Request Req(const std::string& method, JsonValue params = JsonValue::MakeObject(),
            const std::string& idem = "") {
  Request request;
  request.method = method;
  request.params = std::move(params);
  request.idem = idem;
  return request;
}

JsonValue SubmitParams(const std::string& name) {
  JsonValue params = JsonValue::MakeObject();
  params.Set("name", JsonValue::MakeString(name));
  params.Set("trials", JsonValue::MakeNumber(4));
  params.Set("min_iters", JsonValue::MakeNumber(1));
  params.Set("max_iters", JsonValue::MakeNumber(4));
  params.Set("eta", JsonValue::MakeNumber(2));
  params.Set("deadline_s", JsonValue::MakeNumber(36'000.0));
  return params;
}

JsonValue AdvanceParams(double seconds) {
  JsonValue params = JsonValue::MakeObject();
  params.Set("seconds", JsonValue::MakeNumber(seconds));
  return params;
}

void RunToQuiescence(ServiceRunner& runner) {
  for (int i = 0; i < 10'000 && runner.service().HasPendingEvents(); ++i) {
    runner.Handle(Req("advance", AdvanceParams(600.0)));
  }
  ASSERT_TRUE(runner.service().LiveIdle());
}

std::string FinalReportText(ServiceRunner& runner) {
  RunToQuiescence(runner);
  const OpResult report = runner.Handle(Req("report"));
  EXPECT_TRUE(report.ok) << report.message;
  return report.body.at("text").string();
}

TEST(WalRecovery, KilledRunnerResumesBitIdenticalToUninterruptedRun) {
  // Control: never killed, no WAL.
  ServiceRunner control(WalRunner(""));
  control.Handle(Req("submit", SubmitParams("exp1")));
  control.Handle(Req("advance", AdvanceParams(120.0)));
  control.Handle(Req("submit", SubmitParams("exp2")));
  control.Handle(Req("advance", AdvanceParams(300.0)));
  const std::string control_report = FinalReportText(control);

  // Victim: same ops, killed (WAL abandoned, no clean close) mid-run.
  const std::string wal = TempPath("wal_recovery_identity.wal");
  auto victim = std::make_unique<ServiceRunner>(WalRunner(wal));
  victim->Handle(Req("submit", SubmitParams("exp1")));
  victim->Handle(Req("advance", AdvanceParams(120.0)));
  victim->Handle(Req("submit", SubmitParams("exp2")));
  victim->AbandonWal();
  victim.reset();

  std::unique_ptr<ServiceRunner> resumed = ServiceRunner::Open(WalRunner(wal));
  EXPECT_TRUE(resumed->wal_stats().recovered);
  EXPECT_EQ(resumed->wal_stats().ops_replayed, 2);
  resumed->Handle(Req("advance", AdvanceParams(300.0)));
  EXPECT_EQ(FinalReportText(*resumed), control_report);
}

TEST(WalRecovery, SurvivesAKillMidAppendUnderFsyncAlways) {
  const std::string wal = TempPath("wal_recovery_midappend.wal");
  auto victim = std::make_unique<ServiceRunner>(WalRunner(wal));
  victim->Handle(Req("submit", SubmitParams("exp1")));
  victim->AbandonWal();
  victim.reset();

  // A kill -9 lands mid-append of the next record: splice a torn record
  // onto the journal by hand (in-process kills cannot tear write()s).
  {
    WalReadResult current;
    std::string error;
    ASSERT_TRUE(ReadWal(wal, &current, &error)) << error;
    std::ofstream out(wal, std::ios::binary | std::ios::app);
    out << std::string("\x00\x00\x01", 3);  // 3 bytes of a length prefix
  }

  std::unique_ptr<ServiceRunner> resumed = ServiceRunner::Open(WalRunner(wal));
  EXPECT_TRUE(resumed->wal_stats().torn_tail_truncated);
  EXPECT_GT(resumed->wal_stats().torn_offset, 0u);
  EXPECT_EQ(resumed->wal_stats().ops_replayed, 1);

  ServiceRunner control(WalRunner(""));
  control.Handle(Req("submit", SubmitParams("exp1")));
  EXPECT_EQ(FinalReportText(*resumed), FinalReportText(control));
}

TEST(WalRecovery, TornWriteMatrixEveryTruncationResumesOrRefusesPrecisely) {
  // Build a journal with several ops and settled outcomes.
  const std::string wal = TempPath("wal_matrix_master.wal");
  auto victim = std::make_unique<ServiceRunner>(WalRunner(wal));
  victim->Handle(Req("submit", SubmitParams("exp1")));
  victim->Handle(Req("advance", AdvanceParams(120.0)));
  victim->Handle(Req("submit", SubmitParams("exp2")));
  RunToQuiescence(*victim);  // completions => clock + outcome records
  victim->AbandonWal();
  victim.reset();
  const std::string master = ReadFileBytes(wal);

  // Record boundaries, from the raw file.
  std::vector<size_t> boundaries = {kWalMagicBytes};
  {
    size_t offset = kWalMagicBytes;
    while (offset + kWalRecordHeaderBytes <= master.size()) {
      const uint32_t length =
          (static_cast<uint32_t>(static_cast<unsigned char>(master[offset])) << 24) |
          (static_cast<uint32_t>(static_cast<unsigned char>(master[offset + 1])) << 16) |
          (static_cast<uint32_t>(static_cast<unsigned char>(master[offset + 2])) << 8) |
          static_cast<uint32_t>(static_cast<unsigned char>(master[offset + 3]));
      offset += kWalRecordHeaderBytes + length;
      boundaries.push_back(offset);
    }
    ASSERT_EQ(boundaries.back(), master.size());
    ASSERT_GE(boundaries.size(), 5u);  // header + 2 ops + clock + outcomes
  }

  const std::string cut_path = TempPath("wal_matrix_cut.wal");
  // Every record boundary, and a mid-record cut inside every record.
  std::vector<size_t> cuts = boundaries;
  for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
    cuts.push_back(boundaries[i] + (boundaries[i + 1] - boundaries[i]) / 2);
  }
  for (size_t cut : cuts) {
    WriteFileBytes(cut_path, master.substr(0, cut));
    // Any truncation is either a clean prefix or a torn tail — never a
    // refusal. Open() must succeed and replay exactly the complete records.
    std::unique_ptr<ServiceRunner> resumed;
    ASSERT_NO_THROW(resumed = ServiceRunner::Open(WalRunner(cut_path))) << "cut at " << cut;
    RunToQuiescence(*resumed);
  }

  // A byte flip INSIDE a complete record is corruption, and the resume
  // refuses, naming the record's byte offset.
  std::string corrupt = master;
  const size_t target_record = boundaries[1];  // first op record
  corrupt[target_record + kWalRecordHeaderBytes + 2] ^= 0x10;
  WriteFileBytes(cut_path, corrupt);
  try {
    ServiceRunner::Open(WalRunner(cut_path));
    FAIL() << "corrupt journal must refuse to resume";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset " + std::to_string(target_record)),
              std::string::npos)
        << e.what();
  }
}

TEST(WalRecovery, RefusesAConfigMismatch) {
  const std::string wal = TempPath("wal_config_mismatch.wal");
  auto victim = std::make_unique<ServiceRunner>(WalRunner(wal, /*seed=*/11));
  victim->Handle(Req("submit", SubmitParams("exp1")));
  victim->AbandonWal();
  victim.reset();
  EXPECT_THROW(ServiceRunner::Open(WalRunner(wal, /*seed=*/12)), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Idempotency: at-most-once application of retried ops.

TEST(Idempotency, DuplicateSubmitReturnsTheOriginalDecision) {
  ServiceRunner runner(WalRunner(""));
  const OpResult first = runner.Handle(Req("submit", SubmitParams("exp1"), "key-1"));
  ASSERT_TRUE(first.ok) << first.message;
  runner.Handle(Req("advance", AdvanceParams(60.0)));

  // The retry returns the journaled original decision byte-for-byte — not
  // a fresh status (the job has advanced since) and not a second job.
  const OpResult retry = runner.Handle(Req("submit", SubmitParams("exp1"), "key-1"));
  ASSERT_TRUE(retry.ok) << retry.message;
  EXPECT_EQ(retry.body.ToJson(), first.body.ToJson());
  EXPECT_EQ(runner.service().num_jobs(), 1u);
  EXPECT_EQ(runner.idem_duplicates(), 1);

  // A different key is a different op.
  const OpResult other = runner.Handle(Req("submit", SubmitParams("exp2"), "key-2"));
  ASSERT_TRUE(other.ok) << other.message;
  EXPECT_EQ(runner.service().num_jobs(), 2u);
}

TEST(Idempotency, RetriedSubmitAcrossARestartIsAppliedExactlyOnce) {
  const std::string wal = TempPath("wal_idem_restart.wal");
  auto victim = std::make_unique<ServiceRunner>(WalRunner(wal));
  const OpResult original = victim->Handle(Req("submit", SubmitParams("exp1"), "key-9"));
  ASSERT_TRUE(original.ok) << original.message;
  victim->AbandonWal();
  victim.reset();

  // The client never saw the ack (the server died), so it retries against
  // the restarted server. Exactly one job exists; the original decision
  // comes back verbatim.
  std::unique_ptr<ServiceRunner> resumed = ServiceRunner::Open(WalRunner(wal));
  const OpResult retry = resumed->Handle(Req("submit", SubmitParams("exp1"), "key-9"));
  ASSERT_TRUE(retry.ok) << retry.message;
  EXPECT_EQ(retry.body.ToJson(), original.body.ToJson());
  EXPECT_EQ(resumed->service().num_jobs(), 1u);
  EXPECT_EQ(resumed->idem_duplicates(), 1);
}

TEST(Idempotency, CancelRetriesAreIdempotentToo) {
  ServiceRunner runner(WalRunner(""));
  // A future arrival stays PENDING — the only cancellable state.
  JsonValue params = SubmitParams("exp1");
  params.Set("submit_at_s", JsonValue::MakeNumber(5'000.0));
  runner.Handle(Req("submit", params));
  JsonValue who = JsonValue::MakeObject();
  who.Set("job", JsonValue::MakeString("exp1"));
  const OpResult first = runner.Handle(Req("cancel", who, "cxl-1"));
  ASSERT_TRUE(first.ok) << first.message;
  // A bare retry would be CONFLICT (already cancelled); the keyed retry
  // returns the original decision instead.
  const OpResult retry = runner.Handle(Req("cancel", who, "cxl-1"));
  ASSERT_TRUE(retry.ok) << retry.message;
  EXPECT_EQ(retry.body.ToJson(), first.body.ToJson());
  const OpResult bare = runner.Handle(Req("cancel", who));
  EXPECT_FALSE(bare.ok);
  EXPECT_EQ(bare.code, kErrConflict);
}

TEST(Idempotency, SnapshotRestoreCarriesTheIdempotencyIndex) {
  const std::string wal = TempPath("wal_idem_snapshot.wal");
  ServiceRunner first(WalRunner(""));
  const OpResult original = first.Handle(Req("submit", SubmitParams("exp1"), "key-5"));
  ASSERT_TRUE(original.ok) << original.message;
  const std::string snapshot = first.SnapshotJson();

  // Restore rebuilds the index AND rewrites the WAL; a duplicate after a
  // further crash-restart still answers with the original decision.
  std::unique_ptr<ServiceRunner> restored = ServiceRunner::Restore(WalRunner(wal), snapshot);
  restored->AbandonWal();
  restored.reset();
  std::unique_ptr<ServiceRunner> reopened = ServiceRunner::Open(WalRunner(wal));
  const OpResult retry = reopened->Handle(Req("submit", SubmitParams("exp1"), "key-5"));
  ASSERT_TRUE(retry.ok) << retry.message;
  EXPECT_EQ(retry.body.ToJson(), original.body.ToJson());
  EXPECT_EQ(reopened->service().num_jobs(), 1u);
}

}  // namespace
}  // namespace rubberband
