#include <gtest/gtest.h>

#include "src/planner/planner.h"
#include "src/spec/sha.h"

namespace rubberband {
namespace {

PlannerInputs TestInputs(Seconds deadline) {
  PlannerInputs inputs;
  inputs.spec = MakeSha(8, 2, 14, 2);
  inputs.model.iter_latency_1gpu = Distribution::Constant(30.0);
  inputs.model.scaling = ScalingFunction::FromPoints({{1, 1.0}, {2, 1.8}, {4, 3.0}, {8, 4.0}});
  inputs.cloud.provisioning = ProvisioningModel::Fixed(2.0, 5.0);
  inputs.deadline = deadline;
  return inputs;
}

TEST(InstanceSelection, PicksCheapestFeasibleType) {
  const PlannerInputs inputs = TestInputs(Minutes(30));
  const std::vector<InstanceType> candidates = {P3_2xlarge(), P3_8xlarge(), P3_16xlarge()};
  const TypedPlannedJob selected = PlanWithInstanceSelection(inputs, candidates);
  ASSERT_TRUE(selected.job.feasible);

  // Cross-check: no candidate type yields a cheaper feasible plan.
  for (const InstanceType& type : candidates) {
    PlannerInputs typed = inputs;
    typed.cloud.instance = type;
    const PlannedJob job = PlanGreedy(typed);
    if (job.feasible) {
      EXPECT_GE(job.estimate.cost_mean.dollars(),
                selected.job.estimate.cost_mean.dollars() - 1e-6)
          << type.name;
    }
  }
}

TEST(InstanceSelection, SkipsCpuOnlyTypes) {
  const PlannerInputs inputs = TestInputs(Minutes(30));
  const TypedPlannedJob selected =
      PlanWithInstanceSelection(inputs, {R5_4xlarge(), P3_8xlarge()});
  EXPECT_EQ(selected.cloud.instance.name, "p3.8xlarge");
}

TEST(InstanceSelection, RejectsDegenerateCatalogs) {
  const PlannerInputs inputs = TestInputs(Minutes(30));
  EXPECT_THROW(PlanWithInstanceSelection(inputs, {}), std::invalid_argument);
  EXPECT_THROW(PlanWithInstanceSelection(inputs, {R5_4xlarge()}), std::invalid_argument);
}

TEST(InstanceSelection, InfeasibleDeadlineReturnsBestEffort) {
  const PlannerInputs inputs = TestInputs(1.0);
  const TypedPlannedJob selected =
      PlanWithInstanceSelection(inputs, {P3_2xlarge(), P3_16xlarge()});
  EXPECT_FALSE(selected.job.feasible);
  EXPECT_GT(selected.job.estimate.jct_mean, 1.0);
}

TEST(InstanceSelection, FinerGranularityWinsWhenGangsAreSmall) {
  // All gangs in this spec are 1-2 GPUs; 1-GPU nodes provision exactly what
  // each stage needs, while 8-GPU nodes round every stage up.
  PlannerInputs inputs = TestInputs(Minutes(40));
  const TypedPlannedJob selected =
      PlanWithInstanceSelection(inputs, {P3_2xlarge(), P3_16xlarge()});
  ASSERT_TRUE(selected.job.feasible);
  EXPECT_EQ(selected.cloud.instance.name, "p3.2xlarge");
}

}  // namespace
}  // namespace rubberband
