// ASHA baseline executor: asynchronous rung promotion semantics and the
// comparison RubberBand's evaluation leans on.

#include "src/executor/asha.h"

#include <gtest/gtest.h>

#include "src/rubberband.h"

namespace rubberband {
namespace {

CloudProfile TestCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  return cloud;
}

AshaOptions TestOptions() {
  AshaOptions options;
  options.min_iters = 1;
  options.max_iters = 27;
  options.reduction_factor = 3;
  options.num_workers = 8;
  options.time_limit = Minutes(30);
  options.seed = 3;
  return options;
}

TEST(Asha, RunsToTimeLimitAndReports) {
  const AshaReport report = RunAsha(ResNet101Cifar10(), TestCloud(), TestOptions());
  EXPECT_GT(report.configurations_sampled, 8);  // kept sampling beyond the pool
  EXPECT_GT(report.best_accuracy, 0.5);
  EXPECT_GE(report.jct, Minutes(30));  // in-flight tasks drain past the limit
  // Grace: at most one in-flight top-rung task (18 iters x ~88 s at 1 GPU).
  EXPECT_LT(report.jct, Minutes(30) + 15.0 + 18 * 110.0);
  EXPECT_GT(report.cost.Total().dollars(), 0.0);
}

TEST(Asha, RungCountsFollowGeometricDecay) {
  const AshaReport report = RunAsha(ResNet101Cifar10(), TestCloud(), TestOptions());
  ASSERT_GE(report.rungs.size(), 3u);
  // Rung 0 completes the most results; each promotion gate passes ~1/eta.
  EXPECT_GT(report.rungs[0].completed, report.rungs[1].completed);
  EXPECT_GE(report.rungs[1].completed, report.rungs[2].completed);
  // Promotions out of a rung never exceed completions into it.
  for (size_t r = 0; r + 1 < report.rungs.size(); ++r) {
    EXPECT_LE(report.rungs[r].promoted, report.rungs[r].completed);
    EXPECT_EQ(report.rungs[r + 1].completed, report.rungs[r].promoted);
  }
}

TEST(Asha, DeterministicForFixedSeed) {
  const AshaReport a = RunAsha(ResNet101Cifar10(), TestCloud(), TestOptions());
  const AshaReport b = RunAsha(ResNet101Cifar10(), TestCloud(), TestOptions());
  EXPECT_EQ(a.configurations_sampled, b.configurations_sampled);
  EXPECT_DOUBLE_EQ(a.best_accuracy, b.best_accuracy);
  EXPECT_EQ(a.cost.Total(), b.cost.Total());
}

TEST(Asha, MoreWorkersSampleMoreConfigurations) {
  AshaOptions small = TestOptions();
  small.num_workers = 4;
  AshaOptions large = TestOptions();
  large.num_workers = 16;
  const AshaReport a = RunAsha(ResNet101Cifar10(), TestCloud(), small);
  const AshaReport b = RunAsha(ResNet101Cifar10(), TestCloud(), large);
  EXPECT_GT(b.configurations_sampled, a.configurations_sampled);
}

TEST(Asha, RubberBandReachesDeeperTrainingAtComparableCost) {
  // The paper's argument (via HyperSched): under a time constraint,
  // continually sampling new configurations is an ineffective use of
  // resources — RubberBand trains its winner to the full budget R, while
  // ASHA spreads the same spending over many shallow runs.
  const WorkloadSpec workload = ResNet101Cifar10();
  const CloudProfile cloud = TestCloud();

  AshaOptions asha_options = TestOptions();
  asha_options.max_iters = 50;
  asha_options.time_limit = Minutes(20);
  const AshaReport asha = RunAsha(workload, cloud, asha_options);

  const ExperimentSpec spec = MakeSha(32, 1, 50, 3);
  const ModelProfile profile = ProfileWorkload(workload).profile;
  const PlannedJob job = CompilePlan(spec, profile, cloud, Minutes(20));
  ASSERT_TRUE(job.feasible);
  const ExecutionReport rubberband = Execute(spec, job.plan, workload, cloud);

  // RubberBand's winner is trained to R = 50; ASHA's best is much shallower.
  EXPECT_LT(asha.best_config_cum_iters, 50);
  EXPECT_GE(rubberband.best_accuracy + 0.02, asha.best_accuracy);
}

}  // namespace
}  // namespace rubberband
