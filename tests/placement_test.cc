// Placement controller (Algorithm 3) behaviour and invariants.

#include "src/placement/controller.h"

#include "src/common/rng.h"

#include <gtest/gtest.h>

namespace rubberband {
namespace {

PlacementController MakeCluster(int nodes, int gpus_per_node = 4,
                                PlacementStrategy strategy = PlacementStrategy::kPacked) {
  PlacementController controller(gpus_per_node, strategy);
  for (int i = 0; i < nodes; ++i) {
    controller.AddNode(i);
  }
  return controller;
}

// No node may ever hold more GPUs than it has.
void ExpectNoOversubscription(const PlacementController& controller) {
  std::map<PlacementNodeId, int> used;
  for (const auto& [trial, assignments] : controller.plan().all()) {
    for (const WorkerAssignment& assignment : assignments) {
      used[assignment.node] += assignment.gpus;
    }
  }
  for (const auto& [node, gpus] : used) {
    EXPECT_LE(gpus, controller.gpus_per_node()) << "node " << node;
  }
}

TEST(Placement, SmallTrialsAreColocatedOnSingleNodes) {
  PlacementController controller = MakeCluster(4);
  const PlacementResult result = controller.Place({{0, 2}, {1, 2}, {2, 4}, {3, 3}});
  EXPECT_TRUE(result.unplaced.empty());
  for (TrialId trial : {0, 1, 2, 3}) {
    EXPECT_EQ(controller.plan().TrialSpan(trial), 1) << "trial " << trial;
    EXPECT_TRUE(controller.IsColocated(trial));
  }
  ExpectNoOversubscription(controller);
}

TEST(Placement, LargeTrialAcquiresMinimalNodeSet) {
  PlacementController controller = MakeCluster(4);
  controller.Place({{0, 8}});
  EXPECT_EQ(controller.plan().TrialGpus(0), 8);
  EXPECT_EQ(controller.plan().TrialSpan(0), 2);  // ceil(8/4)
  EXPECT_TRUE(controller.IsColocated(0));
}

TEST(Placement, BestFitPacksBeforeOpeningNewNodes) {
  PlacementController controller = MakeCluster(3);
  controller.Place({{0, 2}, {1, 2}});
  // Both 2-GPU trials share one node, leaving two nodes idle.
  EXPECT_EQ(controller.IdleNodes().size(), 2u);
}

TEST(Placement, SatisfiedPlacementIsStableAcrossEpochs) {
  PlacementController controller = MakeCluster(2);
  controller.Place({{0, 2}, {1, 2}});
  const std::string before = controller.plan().ToString();
  controller.Place({{0, 2}, {1, 2}});  // same allocations: nothing moves
  EXPECT_EQ(controller.plan().ToString(), before);
}

TEST(Placement, ChangedAllocationIsReplaced) {
  PlacementController controller = MakeCluster(2);
  controller.Place({{0, 1}});
  controller.Place({{0, 4}});
  EXPECT_EQ(controller.plan().TrialGpus(0), 4);
  ExpectNoOversubscription(controller);
}

TEST(Placement, DepartedTrialsAreEvicted) {
  PlacementController controller = MakeCluster(2);
  controller.Place({{0, 4}, {1, 4}});
  controller.Place({{1, 4}});
  EXPECT_FALSE(controller.plan().HasTrial(0));
  EXPECT_EQ(controller.IdleNodes().size(), 1u);
}

TEST(Placement, DisplacementEvictsSmallerTrialToFitLarger) {
  PlacementController controller = MakeCluster(1);
  controller.Place({{0, 1}});
  // A 4-GPU trial arrives on the single node; the 1-GPU trial must be
  // displaced (larger allocations may displace smaller ones), and with no
  // room left anywhere it ends up unplaced.
  const PlacementResult result = controller.Place({{0, 1}, {1, 4}});
  EXPECT_EQ(controller.plan().TrialGpus(1), 4);
  ASSERT_EQ(result.unplaced.size(), 1u);
  EXPECT_EQ(result.unplaced.front(), 0);
  EXPECT_FALSE(controller.plan().HasTrial(0));
  ExpectNoOversubscription(controller);
}

TEST(Placement, DisplacedTrialGetsRePlacedElsewhere) {
  PlacementController controller = MakeCluster(3);
  // Fill the cluster so every node is partially used: 3+3+2 over three
  // 4-GPU nodes.
  controller.Place({{0, 2}, {1, 3}, {3, 3}});
  // A 4-GPU trial arrives: it displaces the 2-GPU trial (the only one
  // smaller than it), which then re-enters the queue and lands scattered
  // across the leftover single GPUs.
  const PlacementResult result = controller.Place({{0, 2}, {1, 3}, {3, 3}, {2, 4}});
  EXPECT_TRUE(result.unplaced.empty());
  EXPECT_EQ(controller.plan().TrialGpus(2), 4);
  EXPECT_TRUE(controller.IsColocated(2));
  EXPECT_EQ(controller.plan().TrialGpus(0), 2);
  EXPECT_EQ(controller.plan().TrialSpan(0), 2);  // relocated, split 1+1
  ExpectNoOversubscription(controller);
}

TEST(Placement, ReservedTrialsAreNeverPerturbed) {
  PlacementController controller = MakeCluster(1);
  controller.Place({{0, 2}});
  // Trial 0 is locked; trial 1 wants the whole node and would otherwise
  // displace it. With the lock, trial 1 cannot be placed.
  const PlacementResult result = controller.Place({{0, 2}, {1, 4}}, {0});
  EXPECT_EQ(controller.plan().TrialGpus(0), 2);
  ASSERT_EQ(result.unplaced.size(), 1u);
  EXPECT_EQ(result.unplaced.front(), 1);
  ExpectNoOversubscription(controller);
}

TEST(Placement, UnplaceableTrialReportedNotPartiallyPlaced) {
  PlacementController controller = MakeCluster(1);
  const PlacementResult result = controller.Place({{0, 4}, {1, 4}});
  ASSERT_EQ(result.unplaced.size(), 1u);
  const TrialId loser = result.unplaced.front();
  EXPECT_FALSE(controller.plan().HasTrial(loser));
  ExpectNoOversubscription(controller);
}

TEST(Placement, SplitFallbackScattersWhenNoNodeFits) {
  PlacementController controller = MakeCluster(2);
  // 3-GPU gangs on 4-GPU nodes: two fit colocated, the third must split.
  const PlacementResult result = controller.Place({{0, 3}, {1, 3}, {2, 2}});
  EXPECT_TRUE(result.unplaced.empty());
  EXPECT_EQ(controller.plan().TrialGpus(2), 2);
  EXPECT_EQ(controller.plan().TrialSpan(2), 2);  // 1+1 across nodes
  EXPECT_FALSE(controller.IsColocated(2));
  ExpectNoOversubscription(controller);
}

TEST(Placement, IdleNodesSafeToDeprovision) {
  PlacementController controller = MakeCluster(4);
  controller.Place({{0, 4}, {1, 4}});
  const std::vector<PlacementNodeId> idle = controller.IdleNodes();
  EXPECT_EQ(idle.size(), 2u);
  for (PlacementNodeId node : idle) {
    controller.RemoveNode(node);  // must not throw
  }
  EXPECT_EQ(controller.num_nodes(), 2);
}

TEST(Placement, RemoveBusyNodeThrows) {
  PlacementController controller = MakeCluster(1);
  controller.Place({{0, 4}});
  EXPECT_THROW(controller.RemoveNode(0), std::logic_error);
  EXPECT_THROW(controller.RemoveNode(99), std::logic_error);
}

TEST(Placement, AddDuplicateNodeThrows) {
  PlacementController controller = MakeCluster(1);
  EXPECT_THROW(controller.AddNode(0), std::logic_error);
}

TEST(Placement, ScatterStrategySpraysAcrossNodes) {
  PlacementController controller = MakeCluster(4, 4, PlacementStrategy::kScatter);
  const PlacementResult result = controller.Place({{0, 4}});
  EXPECT_TRUE(result.unplaced.empty());
  // Round-robin: the 4-GPU gang lands on 4 different nodes.
  EXPECT_EQ(controller.plan().TrialSpan(0), 4);
  EXPECT_FALSE(controller.IsColocated(0));
  ExpectNoOversubscription(controller);
}

TEST(Placement, ScatterStillRespectsCapacity) {
  PlacementController controller = MakeCluster(2, 4, PlacementStrategy::kScatter);
  const PlacementResult result = controller.Place({{0, 6}, {1, 6}});
  // 12 GPUs requested, 8 exist: one trial placed, one unplaced.
  EXPECT_EQ(result.unplaced.size(), 1u);
  ExpectNoOversubscription(controller);
}

// Quarantined (unschedulable) nodes: placement must route around gray-failed
// hardware without evicting what already runs there.

TEST(PlacementUnschedulable, BestFitSkipsQuarantinedNodes) {
  PlacementController controller = MakeCluster(2);
  controller.SetUnschedulable(0, true);
  EXPECT_TRUE(controller.IsUnschedulable(0));
  EXPECT_FALSE(controller.IsUnschedulable(1));
  const PlacementResult result = controller.Place({{0, 4}});
  EXPECT_TRUE(result.unplaced.empty());
  ASSERT_EQ(controller.plan().TrialSpan(0), 1);
  EXPECT_EQ(controller.plan().Assignments(0).front().node, 1);
}

TEST(PlacementUnschedulable, QuarantiningEveryNodeLeavesTrialsUnplaced) {
  PlacementController controller = MakeCluster(2);
  controller.SetUnschedulable(0, true);
  controller.SetUnschedulable(1, true);
  const PlacementResult result = controller.Place({{0, 2}});
  EXPECT_EQ(result.unplaced.size(), 1u);
}

TEST(PlacementUnschedulable, SplitFallbackSkipsQuarantinedCapacity) {
  // 6 GPUs fit nowhere whole; the split fallback must not count (or use)
  // the quarantined node's free GPUs.
  PlacementController controller = MakeCluster(3);
  controller.SetUnschedulable(2, true);
  const PlacementResult result = controller.Place({{0, 6}});
  EXPECT_TRUE(result.unplaced.empty());
  for (const WorkerAssignment& assignment : controller.plan().Assignments(0)) {
    EXPECT_NE(assignment.node, 2);
  }
  ExpectNoOversubscription(controller);
}

TEST(PlacementUnschedulable, ScatterCursorSkipsQuarantinedNodes) {
  PlacementController controller = MakeCluster(4, 4, PlacementStrategy::kScatter);
  controller.SetUnschedulable(1, true);
  const PlacementResult result = controller.Place({{0, 6}});
  EXPECT_TRUE(result.unplaced.empty());
  for (const WorkerAssignment& assignment : controller.plan().Assignments(0)) {
    EXPECT_NE(assignment.node, 1);
  }
  ExpectNoOversubscription(controller);
}

TEST(PlacementUnschedulable, FlagClearsOnRemovalAndEviction) {
  PlacementController controller = MakeCluster(2);
  controller.SetUnschedulable(0, true);
  controller.SetUnschedulable(1, true);
  controller.RemoveNode(0);
  controller.EvictNode(1);  // both drop the node AND its quarantine flag
  controller.AddNode(0);
  controller.AddNode(1);
  EXPECT_FALSE(controller.IsUnschedulable(0));
  EXPECT_FALSE(controller.IsUnschedulable(1));
  const PlacementResult result = controller.Place({{0, 4}, {1, 4}});
  EXPECT_TRUE(result.unplaced.empty());
}

TEST(PlacementUnschedulable, UnknownNodeThrows) {
  PlacementController controller = MakeCluster(1);
  EXPECT_THROW(controller.SetUnschedulable(42, true), std::logic_error);
}

// Property sweep: random allocation sequences never oversubscribe and every
// placed trial has exactly its allocation.
class PlacementProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlacementProperty, InvariantsUnderRandomChurn) {
  Rng rng(GetParam());
  PlacementController controller = MakeCluster(4, 4);
  std::map<TrialId, int> allocations;
  for (int epoch = 0; epoch < 30; ++epoch) {
    // Random churn: add, remove, resize.
    const int op = static_cast<int>(rng.UniformInt(0, 2));
    const TrialId trial = static_cast<TrialId>(rng.UniformInt(0, 9));
    if (op == 0) {
      allocations[trial] = static_cast<int>(rng.UniformInt(1, 8));
    } else if (op == 1) {
      allocations.erase(trial);
    } else if (!allocations.empty()) {
      allocations.begin()->second = static_cast<int>(rng.UniformInt(1, 8));
    }
    const PlacementResult result = controller.Place(allocations);
    ExpectNoOversubscription(controller);
    for (const auto& [id, gpus] : allocations) {
      const bool unplaced =
          std::find(result.unplaced.begin(), result.unplaced.end(), id) != result.unplaced.end();
      if (!unplaced) {
        EXPECT_EQ(controller.plan().TrialGpus(id), gpus) << "trial " << id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementProperty, ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace rubberband
