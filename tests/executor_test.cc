#include "src/executor/executor.h"

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/executor/scheduler.h"
#include "src/executor/trial.h"
#include "src/spec/sha.h"

namespace rubberband {
namespace {

CloudProfile FastCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  return cloud;
}

TEST(StageSchedule, ParallelWhenGpusCoverTrials) {
  const StageSchedule schedule = BuildStageSchedule({0, 1, 2, 3}, 8);
  EXPECT_EQ(schedule.gpus_per_trial, 2);
  EXPECT_EQ(schedule.running.size(), 4u);
  EXPECT_TRUE(schedule.queued.empty());
}

TEST(StageSchedule, QueuesWhenGpusShort) {
  const StageSchedule schedule = BuildStageSchedule({0, 1, 2, 3, 4}, 2);
  EXPECT_EQ(schedule.gpus_per_trial, 1);
  EXPECT_EQ(schedule.running.size(), 2u);
  EXPECT_EQ(schedule.queued.size(), 3u);
  EXPECT_THROW(BuildStageSchedule({}, 2), std::invalid_argument);
}

TEST(Trial, LifecycleStates) {
  SearchSpace space;
  Rng rng(1);
  Trial trial(0, ResNet101Cifar10(), space.Sample(rng), 1);
  EXPECT_EQ(trial.state(), TrialState::kPending);
  trial.set_state(TrialState::kRunning);
  EXPECT_EQ(ToString(trial.state()), "RUNNING");
  trial.AssignStageWork(3);
  trial.CompleteIteration();
  EXPECT_EQ(trial.remaining_iters(), 2);
  EXPECT_THROW(trial.RestoreFromCheckpoint(), std::logic_error);
  trial.SaveCheckpoint();
  EXPECT_TRUE(trial.has_checkpoint());
  trial.RestoreFromCheckpoint();
}

TEST(Executor, RunsSpecToCompletion) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  const AllocationPlan plan({8, 8, 8});
  const ExecutionReport report = ExecutePlan(spec, plan, workload, FastCloud());

  ASSERT_EQ(report.stage_log.size(), 3u);
  EXPECT_EQ(report.stage_log[0].num_trials, 8);
  EXPECT_EQ(report.stage_log[1].num_trials, 4);
  EXPECT_EQ(report.stage_log[2].num_trials, 2);
  EXPECT_GT(report.jct, 0.0);
  EXPECT_GT(report.best_accuracy, 0.0);
  // Stage boundaries are ordered and the job ends after the last stage.
  for (size_t i = 0; i < report.stage_log.size(); ++i) {
    EXPECT_LT(report.stage_log[i].start, report.stage_log[i].end);
    if (i > 0) {
      EXPECT_GE(report.stage_log[i].start, report.stage_log[i - 1].end);
    }
  }
  EXPECT_GE(report.jct, report.stage_log.back().end);
}

TEST(Executor, EpochRangesMatchSpecCumulativeIters) {
  const ExperimentSpec spec = MakeSha(32, 1, 50, 3);
  const AllocationPlan plan({32, 20, 12, 8});
  const ExecutionReport report =
      ExecutePlan(spec, plan, ResNet101Cifar10(), FastCloud());
  ASSERT_EQ(report.stage_log.size(), 4u);
  EXPECT_EQ(report.stage_log[0].start_cum_iters, 0);
  EXPECT_EQ(report.stage_log[0].end_cum_iters, 1);
  EXPECT_EQ(report.stage_log[1].end_cum_iters, 4);
  EXPECT_EQ(report.stage_log[2].end_cum_iters, 13);
  EXPECT_EQ(report.stage_log[3].end_cum_iters, 50);
}

TEST(Executor, ElasticPlanShrinksCluster) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const AllocationPlan plan({16, 8, 4});
  const ExecutionReport report =
      ExecutePlan(spec, plan, ResNet101Cifar10(), FastCloud());
  EXPECT_EQ(report.stage_log[0].instances, 4);
  EXPECT_EQ(report.stage_log[1].instances, 2);
  EXPECT_EQ(report.stage_log[2].instances, 1);
}

TEST(Executor, QueuedStageStillCompletesAllWork) {
  const ExperimentSpec spec = MakeSha(8, 1, 1, 8);  // single stage, 8 trials
  const AllocationPlan plan({2});                   // only 2 GPU slots
  const ExecutionReport report =
      ExecutePlan(spec, plan, ResNet101Cifar10(), FastCloud());
  EXPECT_EQ(report.stage_log[0].gpus_per_trial, 1);
  // 8 trials through 2 slots: at least 4 serial rounds of (startup + epoch).
  const WorkloadSpec workload = ResNet101Cifar10();
  EXPECT_GT(report.jct, 4.0 * workload.base_iter_seconds * 0.5);
}

TEST(Executor, CostUsesPerInstanceLedger) {
  const ExperimentSpec spec = MakeSha(4, 2, 6, 2);
  const AllocationPlan plan({4, 4});
  const ExecutionReport report =
      ExecutePlan(spec, plan, ResNet101Cifar10(), FastCloud());
  EXPECT_GT(report.cost.compute.dollars(), 0.0);
  EXPECT_EQ(report.cost.data, Money());  // data price defaults to zero
  // Rough cross-check: one instance for the whole job.
  const double expected = 12.24 / 3600.0 * report.jct;
  EXPECT_NEAR(report.cost.Total().dollars(), expected, 0.15 * expected);
}

TEST(Executor, PerFunctionBillingIsCheaperUnderStragglers) {
  const ExperimentSpec spec = MakeSha(16, 4, 28, 2);
  const AllocationPlan plan({16, 16, 16});
  CloudProfile per_instance = FastCloud();
  CloudProfile per_function = FastCloud();
  per_function.pricing.billing = BillingModel::kPerFunction;

  const ExecutionReport inst =
      ExecutePlan(spec, plan, ResNet101Cifar10(), per_instance);
  const ExecutionReport func =
      ExecutePlan(spec, plan, ResNet101Cifar10(), per_function);
  EXPECT_LT(func.cost.Total().dollars(), inst.cost.Total().dollars());
}

TEST(Executor, BetterConfigsWinUnderFullSha) {
  // With 16 configs and enough training, the surviving config should be
  // among the better half by latent quality.
  const ExperimentSpec spec = MakeSha(16, 2, 30, 2);
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), 16);
  ExecutorOptions options;
  options.seed = 3;
  const ExecutionReport report =
      ExecutePlan(spec, plan, ResNet101Cifar10(), FastCloud(), options);
  EXPECT_GT(report.best_config.quality, 0.3);
  EXPECT_GT(report.best_accuracy, 0.75);
}

TEST(Executor, DeterministicForFixedSeed) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const AllocationPlan plan({8, 8, 8});
  ExecutorOptions options;
  options.seed = 11;
  const ExecutionReport a = ExecutePlan(spec, plan, ResNet101Cifar10(), FastCloud(), options);
  const ExecutionReport b = ExecutePlan(spec, plan, ResNet101Cifar10(), FastCloud(), options);
  EXPECT_DOUBLE_EQ(a.jct, b.jct);
  EXPECT_EQ(a.cost.Total(), b.cost.Total());
  EXPECT_EQ(a.best_config.id, b.best_config.id);
}

TEST(Executor, SeedsChangeOutcomes) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const AllocationPlan plan({8, 8, 8});
  ExecutorOptions a_options;
  a_options.seed = 1;
  ExecutorOptions b_options;
  b_options.seed = 2;
  const ExecutionReport a = ExecutePlan(spec, plan, ResNet101Cifar10(), FastCloud(), a_options);
  const ExecutionReport b = ExecutePlan(spec, plan, ResNet101Cifar10(), FastCloud(), b_options);
  EXPECT_NE(a.jct, b.jct);
}

TEST(Executor, ThroughputRecordingCollectsPerTrialSamples) {
  const ExperimentSpec spec = MakeSha(4, 2, 6, 2);
  const AllocationPlan plan({8, 8});
  ExecutorOptions options;
  options.record_throughput = true;
  const ExecutionReport report =
      ExecutePlan(spec, plan, ResNet101Cifar10(), FastCloud(), options);
  // 4 trials in stage 0 + 2 in stage 1.
  EXPECT_EQ(report.trial_throughputs.size(), 6u);
  for (double tput : report.trial_throughputs) {
    EXPECT_GT(tput, 0.0);
  }
}

TEST(Executor, ScatterPlacementDegradesThroughput) {
  // Table 1's ablation mechanism: locality-unaware placement splits gangs
  // across nodes and the cross-node penalty cuts throughput.
  const ExperimentSpec spec = MakeSha(4, 1, 3, 2);
  const AllocationPlan plan({16, 16});  // 4-GPU gangs on 4-GPU nodes
  ExecutorOptions packed;
  packed.record_throughput = true;
  ExecutorOptions scattered;
  scattered.record_throughput = true;
  scattered.placement = PlacementStrategy::kScatter;

  const ExecutionReport a = ExecutePlan(spec, plan, ResNet101Cifar10(), FastCloud(), packed);
  const ExecutionReport b = ExecutePlan(spec, plan, ResNet101Cifar10(), FastCloud(), scattered);
  EXPECT_GT(Mean(a.trial_throughputs), 1.8 * Mean(b.trial_throughputs));
}

TEST(Executor, RunTwiceThrows) {
  const ExperimentSpec spec = MakeSha(2, 1, 1, 2);
  Executor executor(spec, AllocationPlan({2}), ResNet101Cifar10(), FastCloud());
  executor.Run();
  EXPECT_THROW(executor.Run(), std::logic_error);
}

TEST(Executor, RejectsMismatchedPlan) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  EXPECT_THROW(Executor(spec, AllocationPlan({8}), ResNet101Cifar10(), FastCloud()),
               std::invalid_argument);
}

}  // namespace
}  // namespace rubberband
