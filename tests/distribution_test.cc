#include "src/common/distribution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/common/stats.h"

namespace rubberband {
namespace {

// Draws n samples and returns their running stats.
RunningStats SampleStats(const Distribution& dist, int n = 20'000, uint64_t seed = 7) {
  Rng rng(seed);
  RunningStats stats;
  for (int i = 0; i < n; ++i) {
    stats.Add(dist.Sample(rng));
  }
  return stats;
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(Rng, ForkDecorrelatesSiblings) {
  Rng parent(42);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  // Distinct streams: first draws differ.
  EXPECT_NE(child1.Uniform(0, 1), child2.Uniform(0, 1));
}

TEST(Rng, UniformIntIsInclusive) {
  Rng rng(1);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Distribution, ConstantAlwaysSameValue) {
  const Distribution d = Distribution::Constant(4.2);
  Rng rng(0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(d.Sample(rng), 4.2);
  }
  EXPECT_DOUBLE_EQ(d.Mean(), 4.2);
  EXPECT_DOUBLE_EQ(d.StdDev(), 0.0);
}

TEST(Distribution, TruncatedNormalRespectsFloor) {
  // Paper's worst straggler setting: mean 4, sigma 10 — heavy truncation.
  const Distribution d = Distribution::TruncatedNormal(4.0, 10.0, 0.0);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(d.Sample(rng), 0.0);
  }
  // Truncated mean is above the untruncated mean.
  EXPECT_GT(d.Mean(), 4.0);
  const RunningStats stats = SampleStats(d);
  EXPECT_NEAR(stats.mean(), d.Mean(), 0.15);
}

TEST(Distribution, TruncatedNormalMildTruncationMatchesNormal) {
  const Distribution d = Distribution::TruncatedNormal(100.0, 5.0, 0.0);
  EXPECT_NEAR(d.Mean(), 100.0, 1e-6);
  EXPECT_NEAR(d.StdDev(), 5.0, 1e-9);
  const RunningStats stats = SampleStats(d);
  EXPECT_NEAR(stats.mean(), 100.0, 0.2);
  EXPECT_NEAR(stats.stddev(), 5.0, 0.2);
}

TEST(Distribution, ExponentialMean) {
  const Distribution d = Distribution::Exponential(7.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 7.0);
  EXPECT_DOUBLE_EQ(d.StdDev(), 7.0);
  EXPECT_NEAR(SampleStats(d).mean(), 7.0, 0.25);
}

TEST(Distribution, UniformMeanAndBounds) {
  const Distribution d = Distribution::Uniform(2.0, 6.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 4.0);
  EXPECT_NEAR(d.StdDev(), 4.0 / std::sqrt(12.0), 1e-12);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = d.Sample(rng);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(Distribution, LogNormalMean) {
  const Distribution d = Distribution::LogNormal(1.0, 0.5);
  EXPECT_NEAR(d.Mean(), std::exp(1.0 + 0.125), 1e-9);
  EXPECT_NEAR(SampleStats(d, 100'000).mean(), d.Mean(), 0.05);
}

TEST(Distribution, EmpiricalResamplesObservedValues) {
  const Distribution d = Distribution::Empirical({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d.Mean(), 2.0);
  EXPECT_NEAR(d.StdDev(), 1.0, 1e-12);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const double v = d.Sample(rng);
    EXPECT_TRUE(v == 1.0 || v == 2.0 || v == 3.0);
  }
}

TEST(Distribution, EmpiricalRejectsEmpty) {
  EXPECT_THROW(Distribution::Empirical({}), std::invalid_argument);
}

TEST(Distribution, ScaledScalesMeanLinearly) {
  for (const Distribution& d :
       {Distribution::Constant(3.0), Distribution::TruncatedNormal(10.0, 2.0, 0.0),
        Distribution::Exponential(4.0), Distribution::Uniform(1.0, 3.0),
        Distribution::LogNormal(0.5, 0.3), Distribution::Empirical({2.0, 4.0})}) {
    EXPECT_NEAR(d.Scaled(0.5).Mean(), 0.5 * d.Mean(), 1e-9);
    EXPECT_NEAR(d.Scaled(3.0).Mean(), 3.0 * d.Mean(), 1e-9);
  }
}

TEST(Distribution, ScaledRejectsNonPositive) {
  EXPECT_THROW(Distribution::Constant(1.0).Scaled(0.0), std::invalid_argument);
  EXPECT_THROW(Distribution::Constant(1.0).Scaled(-2.0), std::invalid_argument);
}

}  // namespace
}  // namespace rubberband
