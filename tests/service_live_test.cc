// Live-mode property tests: a bursty batch of same-tick submissions must
// leave the service's accounting consistent — queue-wait metrics agree
// with per-job outcomes, fair-share caps hold, warm-pool counters balance
// — and a live run must be bit-identical to the batch replay of the same
// trace (the serving front door's correctness foundation).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/rubberband.h"
#include "src/service/tuning_service.h"

namespace rubberband {
namespace {

ServiceConfig BurstConfig(uint64_t seed, bool warm) {
  ServiceConfig config;
  config.cloud.instance = P3_8xlarge();
  config.cloud.provisioning = ProvisioningModel::Fixed(30.0, 60.0);
  config.capacity_gpus = 16;  // small on purpose: a burst must queue
  config.seed = seed;
  if (warm) {
    config.warm_pool.max_parked = 8;
    config.warm_pool.max_idle_seconds = 300.0;
  }
  return config;
}

JobRequest BurstJob(int i, int burst) {
  JobRequest job;
  job.name = "burst-" + std::to_string(i);
  job.spec = MakeSha(/*num_trials=*/4, /*min_iters=*/1, /*max_iters=*/4,
                     /*reduction_factor=*/2);
  job.workload = ResNet101Cifar10();
  job.submit_at = 0.0;  // the whole burst lands on one tick
  job.deadline = 3600.0 * burst;
  return job;
}

ServiceReport RunLiveBurst(const ServiceConfig& config, int burst) {
  TuningService service(config);
  service.StartLive();
  // Same-tick burst: every submission is scheduled before the clock moves,
  // exactly what the front door sees when N tenants hit submit at once.
  for (int i = 0; i < burst; ++i) {
    service.SubmitLive(BurstJob(i, burst));
  }
  service.FinishLive();
  return service.SnapshotReport();
}

ServiceReport RunBatchBurst(const ServiceConfig& config, int burst) {
  TuningService service(config);
  for (int i = 0; i < burst; ++i) {
    service.Submit(BurstJob(i, burst));
  }
  return service.Run();
}

void CheckBurstInvariants(const ServiceReport& report, const ServiceConfig& config,
                          int burst) {
  // Every submission is accounted for in exactly one terminal bucket.
  ASSERT_EQ(static_cast<int>(report.jobs.size()), burst);
  EXPECT_EQ(report.completed + report.rejected + report.cancelled, burst);
  EXPECT_EQ(report.in_flight, 0);

  // Queue-wait accounting: each started job's wait is its started-at minus
  // submitted-at gap, the report mean matches the per-job values, and the
  // service.queue_wait_seconds histogram saw exactly the started jobs.
  int started = 0;
  double total_wait = 0.0;
  bool any_queued = false;
  for (const JobOutcome& job : report.jobs) {
    EXPECT_DOUBLE_EQ(job.submitted_at, 0.0) << job.name;
    if (job.state == JobState::kCompleted) {
      ++started;
      EXPECT_GE(job.queue_wait, 0.0) << job.name;
      EXPECT_DOUBLE_EQ(job.queue_wait, job.started_at - job.submitted_at) << job.name;
      total_wait += job.queue_wait;
      any_queued = any_queued || job.queue_wait > 0.0;
      // Fair-share cap: no job's peak fleet exceeds the service's capacity
      // (the arbiter clamps per-stage allocations to the tenant's slice).
      EXPECT_GE(job.peak_instances, 1) << job.name;
      EXPECT_LE(job.peak_instances * config.cloud.instance.gpus, config.capacity_gpus)
          << job.name;
    }
  }
  ASSERT_GT(started, 0);
  // When the burst's floor demand (one instance per job) oversubscribes
  // capacity, it cannot all start at once: someone must wait.
  if (burst * config.cloud.instance.gpus > config.capacity_gpus) {
    EXPECT_TRUE(any_queued);
  }
  EXPECT_NEAR(report.mean_queue_wait, total_wait / started, 1e-9);

  const auto wait_histogram = report.metrics.histograms.find("service.queue_wait_seconds");
  ASSERT_NE(wait_histogram, report.metrics.histograms.end());
  EXPECT_EQ(wait_histogram->second.count, started);
  EXPECT_NEAR(static_cast<double>(wait_histogram->second.sum_ns) / 1e9, total_wait, 1e-3);

  // Warm-pool ledger balances: every instance request was either a warm hit
  // or a cold miss, and cold misses are exactly the real launches paid for.
  EXPECT_EQ(report.warm.requests, report.warm.warm_hits + report.warm.cold_misses);
  EXPECT_EQ(report.instance_launches, static_cast<int>(report.warm.cold_misses));
  EXPECT_GE(report.warm.HitRate(), 0.0);
  EXPECT_LE(report.warm.HitRate(), 1.0);
  EXPECT_GE(report.warm.init_seconds_saved, 0.0);
  if (config.warm_pool.max_parked == 0) {
    EXPECT_EQ(report.warm.warm_hits, 0);
  }
}

void ExpectIdenticalReports(const ServiceReport& live, const ServiceReport& batch) {
  ASSERT_EQ(live.jobs.size(), batch.jobs.size());
  for (size_t i = 0; i < live.jobs.size(); ++i) {
    const JobOutcome& a = batch.jobs[i];
    const JobOutcome& b = live.jobs[i];
    EXPECT_EQ(b.state, a.state) << a.name;
    EXPECT_DOUBLE_EQ(b.queue_wait, a.queue_wait) << a.name;
    EXPECT_DOUBLE_EQ(b.jct, a.jct) << a.name;
    EXPECT_EQ(b.cost.micros(), a.cost.micros()) << a.name;
    EXPECT_DOUBLE_EQ(b.best_accuracy, a.best_accuracy) << a.name;
  }
  EXPECT_EQ(live.instance_launches, batch.instance_launches);
  EXPECT_EQ(live.warm.warm_hits, batch.warm.warm_hits);
  EXPECT_EQ(live.total_cost.Total().micros(), batch.total_cost.Total().micros());
  EXPECT_DOUBLE_EQ(live.makespan, batch.makespan);
}

TEST(ServiceBurstProperty, SameTickBurstKeepsAccountingConsistent) {
  for (const uint64_t seed : {3u, 11u, 29u}) {
    for (const int burst : {4, 9}) {
      for (const bool warm : {false, true}) {
        SCOPED_TRACE("seed=" + std::to_string(seed) + " burst=" + std::to_string(burst) +
                     (warm ? " warm" : " cold"));
        const ServiceConfig config = BurstConfig(seed, warm);
        CheckBurstInvariants(RunLiveBurst(config, burst), config, burst);
      }
    }
  }
}

TEST(ServiceBurstProperty, LiveBurstIsBitIdenticalToBatchReplay) {
  // The snapshot/restore contract rests on live mode being a pure function
  // of (seed, config, op sequence): driving the same-tick burst through
  // SubmitLive must reproduce the batch Run() to the micro-dollar.
  for (const uint64_t seed : {7u, 21u}) {
    for (const bool warm : {false, true}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + (warm ? " warm" : " cold"));
      const ServiceConfig config = BurstConfig(seed, warm);
      ExpectIdenticalReports(RunLiveBurst(config, /*burst=*/6),
                             RunBatchBurst(config, /*burst=*/6));
    }
  }
}

TEST(ServiceBurstProperty, SameTickSubmissionsAdmitInSubmissionOrder) {
  // Determinism of the tie-break: jobs arriving on the same tick start in
  // submission order, every time (the front door's fairness floor).
  const ServiceConfig config = BurstConfig(/*seed=*/5, /*warm=*/false);
  const ServiceReport report = RunLiveBurst(config, /*burst=*/6);
  double last_start = -1.0;
  for (const JobOutcome& job : report.jobs) {
    if (job.state != JobState::kCompleted) {
      continue;
    }
    EXPECT_GE(job.started_at, last_start) << job.name;
    last_start = job.started_at;
  }
}

}  // namespace
}  // namespace rubberband
