#include "src/model/scaling.h"

#include <gtest/gtest.h>

#include "src/model/profile.h"

namespace rubberband {
namespace {

TEST(ScalingFunction, DefaultIsLinear) {
  ScalingFunction fn;
  EXPECT_DOUBLE_EQ(fn.Speedup(1), 1.0);
  EXPECT_DOUBLE_EQ(fn.Speedup(8), 8.0);
  EXPECT_DOUBLE_EQ(fn.Efficiency(16), 1.0);
}

TEST(ScalingFunction, AmdahlShape) {
  const ScalingFunction fn = ScalingFunction::Amdahl(0.1);
  EXPECT_DOUBLE_EQ(fn.Speedup(1), 1.0);
  EXPECT_NEAR(fn.Speedup(2), 2.0 / 1.1, 1e-12);
  // Saturates towards 1/overhead.
  EXPECT_LT(fn.Speedup(1024), 10.0);
  EXPECT_GT(fn.Speedup(1024), 9.0);
  EXPECT_THROW(ScalingFunction::Amdahl(-0.1), std::invalid_argument);
  EXPECT_THROW(ScalingFunction::Amdahl(1.5), std::invalid_argument);
}

TEST(ScalingFunction, PointInterpolationHitsKnots) {
  const auto fn = ScalingFunction::FromPoints({{1, 1.0}, {4, 3.2}, {8, 5.4}});
  EXPECT_DOUBLE_EQ(fn.Speedup(1), 1.0);
  EXPECT_DOUBLE_EQ(fn.Speedup(4), 3.2);
  EXPECT_DOUBLE_EQ(fn.Speedup(8), 5.4);
}

TEST(ScalingFunction, InterpolatesInLogSpace) {
  const auto fn = ScalingFunction::FromPoints({{1, 1.0}, {4, 3.0}});
  // log2(2) is halfway between log2(1) and log2(4).
  EXPECT_NEAR(fn.Speedup(2), 2.0, 1e-12);
}

TEST(ScalingFunction, ExtrapolatesLastTrendIncludingDecline) {
  // Rising trend extrapolates upward.
  const auto rising = ScalingFunction::FromPoints({{1, 1.0}, {8, 5.0}, {16, 6.0}});
  EXPECT_GT(rising.Speedup(32), 6.0);
  // Declining trend extrapolates downward (communication-bound), with a
  // floor at 0.25.
  const auto declining = ScalingFunction::FromPoints({{1, 1.0}, {8, 6.0}, {16, 5.0}});
  EXPECT_LT(declining.Speedup(32), 5.0);
  EXPECT_GE(declining.Speedup(4096), 0.25);
}

TEST(ScalingFunction, AddsImplicitUnitPoint) {
  const auto fn = ScalingFunction::FromPoints({{4, 2.0}});
  EXPECT_DOUBLE_EQ(fn.Speedup(1), 1.0);
  EXPECT_DOUBLE_EQ(fn.Speedup(4), 2.0);
}

TEST(ScalingFunction, RejectsBadInput) {
  EXPECT_THROW(ScalingFunction::FromPoints({{0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(ScalingFunction::FromPoints({{2, -1.0}}), std::invalid_argument);
  EXPECT_THROW(ScalingFunction().Speedup(0), std::invalid_argument);
}

TEST(ScalingFunction, LatencyFactorIsInverseSpeedup) {
  const auto fn = ScalingFunction::FromPoints({{1, 1.0}, {4, 3.2}});
  EXPECT_DOUBLE_EQ(fn.LatencyFactor(4), 1.0 / 3.2);
}

TEST(ScalingFunction, EfficiencyDeclines) {
  const auto fn = ScalingFunction::FromPoints({{1, 1.0}, {2, 1.8}, {4, 3.2}, {8, 5.4}});
  EXPECT_GT(fn.Efficiency(2), fn.Efficiency(4));
  EXPECT_GT(fn.Efficiency(4), fn.Efficiency(8));
}

TEST(ModelProfile, IterLatencyScalesWithSpeedup) {
  ModelProfile profile;
  profile.iter_latency_1gpu = Distribution::Constant(10.0);
  profile.scaling = ScalingFunction::FromPoints({{1, 1.0}, {4, 2.5}});
  EXPECT_DOUBLE_EQ(profile.MeanIterLatency(1), 10.0);
  EXPECT_DOUBLE_EQ(profile.MeanIterLatency(4), 4.0);
}

}  // namespace
}  // namespace rubberband
