#include <gtest/gtest.h>

#include <cstdint>

#include "src/spec/experiment_spec.h"
#include "src/spec/hyperband.h"
#include "src/spec/sha.h"

namespace rubberband {
namespace {

TEST(ExperimentSpec, BuilderAccumulatesStages) {
  ExperimentSpec spec;
  spec.AddStage(10, 10).AddStage(8, 21).AddStage(3, 53);
  EXPECT_EQ(spec.num_stages(), 3);
  EXPECT_EQ(spec.stage(0).num_trials, 10);
  EXPECT_EQ(spec.stage(2).iters_per_trial, 53);
  EXPECT_EQ(spec.TotalWork(), 10 * 10 + 8 * 21 + 3 * 53);
  EXPECT_EQ(spec.MaxTrials(), 10);
  EXPECT_EQ(spec.CumulativeIters(1), 31);
}

TEST(ExperimentSpec, ValidateRejectsBadShapes) {
  EXPECT_THROW(ExperimentSpec().Validate(), std::invalid_argument);
  {
    ExperimentSpec spec;
    spec.AddStage(0, 5);
    EXPECT_THROW(spec.Validate(), std::invalid_argument);
  }
  {
    ExperimentSpec spec;
    spec.AddStage(4, 0);
    EXPECT_THROW(spec.Validate(), std::invalid_argument);
  }
  {
    // Early stopping only terminates: trial counts must not grow.
    ExperimentSpec spec;
    spec.AddStage(4, 5).AddStage(8, 5);
    EXPECT_THROW(spec.Validate(), std::invalid_argument);
  }
}

TEST(ExperimentSpec, ToStringMentionsEveryStage) {
  ExperimentSpec spec;
  spec.AddStage(4, 5).AddStage(2, 10);
  const std::string s = spec.ToString();
  EXPECT_NE(s.find("4 trials"), std::string::npos);
  EXPECT_NE(s.find("10 iters"), std::string::npos);
}

// The paper's own SHA instances, used throughout its evaluation.
TEST(Sha, PaperFigure9Instance) {
  // SHA(n=64, r=4, R=508, eta=2): 4+8+16+32+64+128+256 = 508 exactly.
  const ExperimentSpec spec = MakeSha(64, 4, 508, 2);
  ASSERT_EQ(spec.num_stages(), 7);
  int64_t expected_iters = 4;
  int expected_trials = 64;
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(spec.stage(i).num_trials, expected_trials);
    EXPECT_EQ(spec.stage(i).iters_per_trial, expected_iters);
    expected_iters *= 2;
    expected_trials /= 2;
  }
  EXPECT_EQ(spec.CumulativeIters(6), 508);
}

TEST(Sha, PaperTable3Instance) {
  // SHA(n=32, r=1, R=50, eta=3) must reproduce Table 3's epoch ranges:
  // 0-1 (32 trials), 1-4 (10), 4-13 (3), 13-50 (1).
  const ExperimentSpec spec = MakeSha(32, 1, 50, 3);
  ASSERT_EQ(spec.num_stages(), 4);
  EXPECT_EQ(spec.stage(0).num_trials, 32);
  EXPECT_EQ(spec.stage(1).num_trials, 10);
  EXPECT_EQ(spec.stage(2).num_trials, 3);
  EXPECT_EQ(spec.stage(3).num_trials, 1);
  EXPECT_EQ(spec.CumulativeIters(0), 1);
  EXPECT_EQ(spec.CumulativeIters(1), 4);
  EXPECT_EQ(spec.CumulativeIters(2), 13);
  EXPECT_EQ(spec.CumulativeIters(3), 50);
}

TEST(Sha, PaperFigure12Instance) {
  const ExperimentSpec spec = MakeSha(512, 4, 4096, 2);
  EXPECT_EQ(spec.stage(0).num_trials, 512);
  EXPECT_EQ(spec.stages().back().num_trials, 1);
  EXPECT_EQ(spec.CumulativeIters(spec.num_stages() - 1), 4096);
}

TEST(Sha, RejectsInvalidParameters) {
  EXPECT_THROW(MakeSha(0, 4, 508, 2), std::invalid_argument);
  EXPECT_THROW(MakeSha(64, 0, 508, 2), std::invalid_argument);
  EXPECT_THROW(MakeSha(64, 8, 4, 2), std::invalid_argument);   // R < r
  EXPECT_THROW(MakeSha(64, 4, 508, 1), std::invalid_argument);  // eta < 2
}

TEST(Sha, SingleTrialTrainsFullBudget) {
  const ExperimentSpec spec = MakeSha(1, 4, 100, 2);
  ASSERT_EQ(spec.num_stages(), 1);
  EXPECT_EQ(spec.stage(0).num_trials, 1);
  EXPECT_EQ(spec.stage(0).iters_per_trial, 100);
}

// Property sweep: SHA structure invariants across a parameter grid.
struct ShaCase {
  int n;
  int64_t r;
  int64_t big_r;
  int eta;
};

class ShaProperties : public ::testing::TestWithParam<ShaCase> {};

TEST_P(ShaProperties, StructuralInvariants) {
  const ShaCase& c = GetParam();
  const ExperimentSpec spec = MakeSha(c.n, c.r, c.big_r, c.eta);
  spec.Validate();

  // Trial counts follow floor(n / eta^i) and strictly decrease (until 1).
  int64_t eta_pow = 1;
  for (int i = 0; i < spec.num_stages(); ++i) {
    EXPECT_EQ(spec.stage(i).num_trials, static_cast<int>(c.n / eta_pow)) << "stage " << i;
    eta_pow *= c.eta;
  }
  // First stage does exactly r iterations; budget never exceeds R and the
  // last survivor (if reached) exhausts it.
  EXPECT_EQ(spec.stage(0).iters_per_trial, std::min(c.r, c.big_r));
  EXPECT_LE(spec.CumulativeIters(spec.num_stages() - 1), c.big_r);
  if (spec.stages().back().num_trials == 1) {
    EXPECT_EQ(spec.CumulativeIters(spec.num_stages() - 1), c.big_r);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShaProperties,
    ::testing::Values(ShaCase{64, 4, 508, 2}, ShaCase{32, 1, 50, 3}, ShaCase{512, 4, 4096, 2},
                      ShaCase{16, 1, 100, 4}, ShaCase{100, 2, 64, 2}, ShaCase{7, 3, 20, 2},
                      ShaCase{81, 1, 81, 3}, ShaCase{2, 1, 2, 2}, ShaCase{128, 8, 1000, 2},
                      ShaCase{50, 5, 500, 5}));

TEST(Hyperband, BracketStructure) {
  const std::vector<ExperimentSpec> brackets = MakeHyperband({81, 3});
  // s_max = log_3(81) = 4 -> 5 brackets.
  ASSERT_EQ(brackets.size(), 5u);
  // The most aggressive bracket starts many trials at few iterations; the
  // most conservative runs few trials at the full budget.
  EXPECT_GT(brackets.front().stage(0).num_trials, brackets.back().stage(0).num_trials);
  EXPECT_LT(brackets.front().stage(0).iters_per_trial, brackets.back().stage(0).iters_per_trial);
  for (const ExperimentSpec& bracket : brackets) {
    bracket.Validate();
    EXPECT_LE(bracket.CumulativeIters(bracket.num_stages() - 1), 81);
  }
}

TEST(Hyperband, LastBracketIsPlainSearch) {
  const std::vector<ExperimentSpec> brackets = MakeHyperband({27, 3});
  // s = 0: no early stopping, single stage at full budget.
  EXPECT_EQ(brackets.back().num_stages(), 1);
  EXPECT_EQ(brackets.back().stage(0).iters_per_trial, 27);
}

TEST(Hyperband, RejectsInvalidParameters) {
  EXPECT_THROW(MakeHyperband({0, 3}), std::invalid_argument);
  EXPECT_THROW(MakeHyperband({81, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace rubberband
