#!/usr/bin/env bash
# End-to-end trace2chrome check: run an execute with --trace-csv, feed the
# CSV (plus injected garbage rows) back through `rubberband trace2chrome`,
# and verify the converter reports the malformed-row count and emits a
# well-formed trace-event document.
#
# Usage: cli_trace2chrome.sh <cli-binary>
set -euo pipefail

cli="$1"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

"$cli" execute --trials=8 --max-iters=14 --eta=2 --deadline-min=30 --seed=3 --trace-csv \
  | sed -n '/^time_s,/,$p' > "$workdir/trace.csv"
[[ -s "$workdir/trace.csv" ]] || { echo "no CSV captured from execute --trace-csv" >&2; exit 1; }

# Clean conversion: no parse errors reported, JSON written.
"$cli" trace2chrome --in="$workdir/trace.csv" --out="$workdir/trace.json" 2> "$workdir/log"
grep -q "traceEvents" "$workdir/trace.json"
grep -q "displayTimeUnit" "$workdir/trace.json"
if grep -q "malformed" "$workdir/log"; then
  echo "clean CSV reported parse errors:" >&2
  cat "$workdir/log" >&2
  exit 1
fi

# Corrupted conversion: garbage rows are counted, good rows still convert.
{ cat "$workdir/trace.csv"; echo "not,a,valid,row"; echo "garbage"; } > "$workdir/bad.csv"
"$cli" trace2chrome --in="$workdir/bad.csv" --out="$workdir/bad.json" 2> "$workdir/badlog"
grep -q "2 malformed rows skipped" "$workdir/badlog"
grep -q "traceEvents" "$workdir/bad.json"

# A missing input is a hard error.
if "$cli" trace2chrome --in="$workdir/absent.csv" 2>/dev/null; then
  echo "trace2chrome accepted a missing input file" >&2
  exit 1
fi
echo "trace2chrome checks passed"
