// The dual planner: minimize JCT subject to a cost budget.

#include <gtest/gtest.h>

#include "src/planner/planner.h"
#include "src/spec/sha.h"

namespace rubberband {
namespace {

TEST(FairAllocation, NextHigherSteps) {
  EXPECT_EQ(NextHigherFairAllocation(0, 10), 1);
  EXPECT_EQ(NextHigherFairAllocation(1, 10), 2);
  EXPECT_EQ(NextHigherFairAllocation(2, 10), 5);
  EXPECT_EQ(NextHigherFairAllocation(5, 10), 10);
  EXPECT_EQ(NextHigherFairAllocation(10, 10), 20);
  EXPECT_EQ(NextHigherFairAllocation(25, 10), 30);  // snaps up to a multiple
  EXPECT_EQ(NextHigherFairAllocation(3, 7), 7);     // prime: divisors are 1, 7
}

PlannerInputs TestInputs() {
  PlannerInputs inputs;
  inputs.spec = MakeSha(8, 2, 14, 2);
  inputs.model.iter_latency_1gpu = Distribution::Constant(30.0);
  inputs.model.scaling = ScalingFunction::FromPoints({{1, 1.0}, {2, 1.8}, {4, 3.0}, {8, 4.0}});
  inputs.model.trial_startup_seconds = 2.0;
  inputs.model.sync_seconds = 1.0;
  inputs.cloud.instance = P3_8xlarge();
  inputs.cloud.provisioning = ProvisioningModel::Fixed(2.0, 5.0);
  return inputs;
}

TEST(BudgetPlanner, RespectsBudget) {
  const PlannerInputs inputs = TestInputs();
  for (double budget : {3.0, 5.0, 8.0, 15.0}) {
    const PlannedJob job = PlanGreedyMinTime(inputs, Money::FromDollars(budget));
    if (job.feasible) {
      EXPECT_LE(job.estimate.cost_mean.dollars(), budget) << "budget " << budget;
    }
  }
}

TEST(BudgetPlanner, MoreBudgetNeverSlower) {
  const PlannerInputs inputs = TestInputs();
  double previous_jct = 0.0;
  bool have_previous = false;
  for (double budget : {3.0, 4.0, 6.0, 10.0, 20.0}) {
    const PlannedJob job = PlanGreedyMinTime(inputs, Money::FromDollars(budget));
    if (!job.feasible) {
      continue;
    }
    if (have_previous) {
      EXPECT_LE(job.estimate.jct_mean, previous_jct + 1e-6) << "budget " << budget;
    }
    previous_jct = job.estimate.jct_mean;
    have_previous = true;
  }
  EXPECT_TRUE(have_previous);
}

TEST(BudgetPlanner, SpendsBudgetToGoFaster) {
  const PlannerInputs inputs = TestInputs();
  const PlannedJob tight = PlanGreedyMinTime(inputs, Money::FromDollars(3.5));
  const PlannedJob loose = PlanGreedyMinTime(inputs, Money::FromDollars(20.0));
  ASSERT_TRUE(tight.feasible);
  ASSERT_TRUE(loose.feasible);
  EXPECT_LT(loose.estimate.jct_mean, tight.estimate.jct_mean);
  EXPECT_GE(loose.plan.MaxGpus(), tight.plan.MaxGpus());
}

TEST(BudgetPlanner, ImpossibleBudgetIsFlaggedInfeasible) {
  const PlannedJob job = PlanGreedyMinTime(TestInputs(), Money::FromCents(1));
  EXPECT_FALSE(job.feasible);
  EXPECT_GT(job.estimate.cost_mean.dollars(), 0.01);
}

TEST(BudgetPlanner, DualityWithCostPlanner) {
  // Plan for a deadline, then feed the resulting cost back as a budget: the
  // dual planner must achieve a JCT no worse than that deadline.
  PlannerInputs inputs = TestInputs();
  inputs.deadline = Minutes(20);
  const PlannedJob cost_min = PlanGreedy(inputs);
  ASSERT_TRUE(cost_min.feasible);
  const PlannedJob time_min = PlanGreedyMinTime(inputs, cost_min.estimate.cost_mean);
  ASSERT_TRUE(time_min.feasible);
  EXPECT_LE(time_min.estimate.jct_mean, inputs.deadline + 1.0);
}

}  // namespace
}  // namespace rubberband
