#include "src/planner/render.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/dag/builder.h"
#include "src/dag/simulate.h"
#include "src/spec/sha.h"

namespace rubberband {
namespace {

ModelProfile TestModel() {
  ModelProfile model;
  model.iter_latency_1gpu = Distribution::Constant(10.0);
  model.scaling = ScalingFunction::FromPoints({{1, 1.0}, {2, 2.0}, {4, 4.0}});
  return model;
}

CloudProfile TestCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  return cloud;
}

TEST(MeanFinishTimes, MatchesHandComputedCriticalPath) {
  ExperimentSpec spec;
  spec.AddStage(2, 3).AddStage(1, 4);
  const AllocationPlan plan({2, 4});
  const ExecutionDag dag = BuildDag(spec, plan, TestModel(), TestCloud());
  const std::vector<Seconds> finish = MeanFinishTimes(dag);
  // Stage 0: 3 iters x 10 s at 1 GPU = 30 s; stage 1: 4 iters x 2.5 s = 10 s.
  EXPECT_NEAR(finish[static_cast<size_t>(dag.stages()[0].sync_node)], 30.0, 1e-9);
  EXPECT_NEAR(finish[static_cast<size_t>(dag.stages()[1].sync_node)], 40.0, 1e-9);
}

TEST(RenderPlan, ContainsEveryGpuLevelAndStage) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const AllocationPlan plan({8, 4, 2});
  const std::string chart = RenderPlan(spec, plan, TestModel(), TestCloud());
  EXPECT_NE(chart.find("   8 |"), std::string::npos);
  EXPECT_NE(chart.find("   4 |"), std::string::npos);
  EXPECT_NE(chart.find("   2 |"), std::string::npos);
  EXPECT_NE(chart.find('0'), std::string::npos);
  EXPECT_NE(chart.find('2'), std::string::npos);
  EXPECT_NE(chart.find("JCT"), std::string::npos);
}

TEST(RenderPlan, WidthIsRespected) {
  const ExperimentSpec spec = MakeSha(4, 1, 2, 2);
  const AllocationPlan plan({4, 4});
  const std::string chart = RenderPlan(spec, plan, TestModel(), TestCloud(), 40);
  // Every chart row fits the requested width plus its label/annotation.
  std::istringstream stream(chart);
  std::string line;
  while (std::getline(stream, line)) {
    EXPECT_LE(line.size(), 40u + 16u) << line;
  }
}

TEST(RenderComparison, ShowsBothPanelsOnSharedAxis) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const std::string chart = RenderComparison(spec, AllocationPlan({8, 8, 8}),
                                             AllocationPlan({16, 8, 4}), TestModel(), TestCloud());
  EXPECT_NE(chart.find("-- static [8, 8, 8] --"), std::string::npos);
  EXPECT_NE(chart.find("-- elastic [16, 8, 4] --"), std::string::npos);
  EXPECT_NE(chart.find("  16 |"), std::string::npos);
}

}  // namespace
}  // namespace rubberband
