// Experiment-IR front-end tests: scheduler parsing, the JSON spec loader,
// and — the property suite — a seeded generator of malformed specs proving
// every rejection is an std::invalid_argument that names the offending
// field (the spec-file author's contract).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/spec/ir.h"

namespace rubberband {
namespace {

TEST(SpecIr, SchedulerKindRoundTrips) {
  for (const SchedulerKind kind :
       {SchedulerKind::kSha, SchedulerKind::kHyperband, SchedulerKind::kAsha,
        SchedulerKind::kRandom, SchedulerKind::kGrid}) {
    EXPECT_EQ(ParseSchedulerKind(ToString(kind)), kind);
  }
}

TEST(SpecIr, UnknownSchedulerNamesTheField) {
  try {
    ParseSchedulerKind("bohb");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("scheduler"), std::string::npos) << e.what();
  }
}

TEST(SpecIr, ValidIrPassesValidation) {
  ExperimentIR ir;
  ir.scheduler = SchedulerKind::kSha;
  ir.num_trials = 8;
  ir.min_iters = 2;
  ir.max_iters = 14;
  ir.reduction_factor = 2;
  EXPECT_NO_THROW(ir.Validate());
}

TEST(SpecIr, GridTrialCountIsAxisProduct) {
  const GridShape grid{3, 4, 2};
  EXPECT_EQ(grid.TrialCount(), 24);
}

TEST(SpecIr, ParseJsonDocument) {
  const ExperimentIR ir = ParseExperimentIR(R"({
    "scheduler": "hyperband",
    "max_iters": 27,
    "reduction_factor": 3,
    "search_space": { "log10_lr_min": -3.0, "log10_lr_max": -1.0 },
    "grid": { "lr_points": 2 }
  })");
  EXPECT_EQ(ir.scheduler, SchedulerKind::kHyperband);
  EXPECT_EQ(ir.max_iters, 27);
  EXPECT_EQ(ir.reduction_factor, 3);
  EXPECT_DOUBLE_EQ(ir.space.log10_lr_min, -3.0);
  EXPECT_DOUBLE_EQ(ir.space.log10_lr_max, -1.0);
  EXPECT_EQ(ir.grid.lr_points, 2);
}

TEST(SpecIr, ParseJsonRejectsUnknownKeysByName) {
  try {
    ParseExperimentIR(R"({"scheduler": "sha", "num_trials": 8, "max_iters": 14,
                          "bracket_count": 3})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bracket_count"), std::string::npos) << e.what();
  }
}

TEST(SpecIr, ParseJsonRequiresScheduler) {
  EXPECT_THROW(ParseExperimentIR(R"({"num_trials": 8, "max_iters": 14})"),
               std::invalid_argument);
}

TEST(SpecIr, LoadFromFileAndUnreadablePathThrows) {
  const std::string path = ::testing::TempDir() + "/rb_experiment_ir_test.json";
  {
    std::ofstream out(path);
    out << R"({"scheduler": "random", "num_trials": 4, "max_iters": 10})";
  }
  const ExperimentIR ir = LoadExperimentIR(path);
  EXPECT_EQ(ir.scheduler, SchedulerKind::kRandom);
  EXPECT_EQ(ir.num_trials, 4);
  std::remove(path.c_str());
  EXPECT_THROW(LoadExperimentIR(path), std::runtime_error);
}

// ---- Named-field rejection table ------------------------------------------

struct RejectionCase {
  const char* name;
  std::function<void(ExperimentIR&)> poison;
  const char* field;  // substring the error message must contain
};

ExperimentIR BaseIr(SchedulerKind kind) {
  ExperimentIR ir;
  ir.scheduler = kind;
  ir.num_trials = 8;
  ir.min_iters = 1;
  ir.max_iters = 14;
  ir.reduction_factor = 2;
  return ir;
}

std::vector<RejectionCase> RejectionCases() {
  return {
      {"ZeroTrials", [](ExperimentIR& ir) { ir.num_trials = 0; }, "num_trials"},
      {"NegativeTrials", [](ExperimentIR& ir) { ir.num_trials = -3; }, "num_trials"},
      {"ZeroMinIters", [](ExperimentIR& ir) { ir.min_iters = 0; }, "min_iters"},
      {"ZeroMaxIters", [](ExperimentIR& ir) { ir.max_iters = 0; }, "max_iters"},
      {"MaxBelowMin",
       [](ExperimentIR& ir) {
         ir.min_iters = 20;
         ir.max_iters = 10;
       },
       "max_iters"},
      {"ReductionFactorBelowTwo", [](ExperimentIR& ir) { ir.reduction_factor = 1; },
       "reduction_factor"},
      {"RungBudgetOverflow",
       [](ExperimentIR& ir) { ir.max_iters = (int64_t{1} << 57); }, "max_iters"},
      {"NanLrBound",
       [](ExperimentIR& ir) {
         ir.space.log10_lr_min = std::numeric_limits<double>::quiet_NaN();
       },
       "search_space.log10_lr_min"},
      {"InfWdBound",
       [](ExperimentIR& ir) {
         ir.space.log10_wd_max = std::numeric_limits<double>::infinity();
       },
       "search_space.log10_wd_max"},
      {"EmptySearchSpace",
       [](ExperimentIR& ir) {
         ir.space.log10_lr_min = -1.0;
         ir.space.log10_lr_max = -2.0;
       },
       "search_space"},
      {"ZeroGridAxis", [](ExperimentIR& ir) { ir.grid.lr_points = 0; }, "grid.lr_points"},
      {"NegativeMomentumPoints",
       [](ExperimentIR& ir) { ir.grid.momentum_points = -1; }, "grid.momentum_points"},
  };
}

TEST(SpecIrValidation, EveryRejectionNamesTheOffendingField) {
  for (const SchedulerKind kind :
       {SchedulerKind::kSha, SchedulerKind::kAsha, SchedulerKind::kRandom,
        SchedulerKind::kGrid, SchedulerKind::kHyperband}) {
    for (const RejectionCase& rejection : RejectionCases()) {
      ExperimentIR ir = BaseIr(kind);
      rejection.poison(ir);
      // Some poisons only apply to some schedulers (grid shape is ignored
      // outside kGrid; num_trials outside sha/asha/random; the promotion
      // rate outside sha/hyperband/asha). A pass is fine — what is not
      // fine is a rejection that fails to name its field.
      try {
        ir.Validate();
      } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find(rejection.field), std::string::npos)
            << ToString(kind) << "/" << rejection.name << ": " << e.what();
      }
    }
  }
}

TEST(SpecIrValidation, TotalBudgetOverflowIsRejected) {
  ExperimentIR ir = BaseIr(SchedulerKind::kRandom);
  ir.num_trials = std::numeric_limits<int>::max();
  ir.min_iters = 1;
  ir.max_iters = int64_t{1} << 55;
  ir.reduction_factor = 2;
  EXPECT_THROW(ir.Validate(), std::invalid_argument);
}

// ---- Seeded fuzz: random malformed specs always reject with a field name --

TEST(SpecIrFuzz, SeededMalformedSpecsRejectWithFieldNames) {
  const std::vector<RejectionCase> poisons = RejectionCases();
  Rng rng(20260808);
  int rejections = 0;
  for (int round = 0; round < 400; ++round) {
    const SchedulerKind kind = static_cast<SchedulerKind>(rng.UniformInt(0, 4));
    ExperimentIR ir = BaseIr(kind);
    // Randomize the well-formed part of the spec.
    ir.num_trials = static_cast<int>(rng.UniformInt(1, 64));
    ir.min_iters = rng.UniformInt(1, 8);
    ir.max_iters = ir.min_iters + rng.UniformInt(0, 100);
    ir.reduction_factor = static_cast<int>(rng.UniformInt(2, 6));
    ir.grid.lr_points = static_cast<int>(rng.UniformInt(1, 5));
    ir.grid.wd_points = static_cast<int>(rng.UniformInt(1, 5));
    ir.grid.momentum_points = static_cast<int>(rng.UniformInt(1, 3));

    // Apply 1-3 random poisons and remember the fields they touched.
    std::vector<std::string> fields;
    const int count = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < count; ++i) {
      const RejectionCase& poison =
          poisons[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(poisons.size()) - 1))];
      poison.poison(ir);
      fields.push_back(poison.field);
    }

    try {
      ir.Validate();
      // Legal: every applied poison hit a field this scheduler ignores.
    } catch (const std::invalid_argument& e) {
      ++rejections;
      const std::string message = e.what();
      EXPECT_NE(message.find("invalid experiment IR"), std::string::npos) << message;
      bool named = false;
      for (const std::string& field : fields) {
        // The validator may name the *root* of a compound field (an empty
        // search space names "search_space.…"), so substring match on the
        // poisoned field's prefix up to the first '.' is the contract.
        const std::string root = field.substr(0, field.find('.'));
        named = named || message.find(root) != std::string::npos;
      }
      EXPECT_TRUE(named) << "rejection names none of the poisoned fields: " << message;
    } catch (const std::exception& e) {
      FAIL() << "wrong exception type: " << e.what();
    }
  }
  // The generator must actually exercise the rejection paths.
  EXPECT_GT(rejections, 200);
}

}  // namespace
}  // namespace rubberband
