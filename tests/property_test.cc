// Cross-module property tests over randomly generated (fair) allocation
// plans: the offline model and the online executor must agree, and cost
// structure invariants must hold regardless of the plan.

#include <gtest/gtest.h>

#include "src/rubberband.h"

namespace rubberband {
namespace {

CloudProfile TestCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  return cloud;
}

// A random plan whose every stage allocation is fair (factor or multiple of
// the stage's trial count), bounded to keep runtimes sane.
AllocationPlan RandomFairPlan(const ExperimentSpec& spec, Rng& rng) {
  std::vector<int> gpus;
  for (const Stage& stage : spec.stages()) {
    const int raw = static_cast<int>(rng.UniformInt(1, 4 * stage.num_trials));
    gpus.push_back(RoundUpToFairAllocation(raw, stage.num_trials));
  }
  return AllocationPlan(std::move(gpus));
}

class PlanProperties : public ::testing::TestWithParam<uint64_t> {
 protected:
  static ExperimentSpec Spec() { return MakeSha(8, 2, 14, 2); }
};

TEST_P(PlanProperties, SimulationPredictsExecutionForArbitraryPlans) {
  Rng rng(GetParam());
  const ExperimentSpec spec = Spec();
  const WorkloadSpec workload = ResNet101Cifar10();
  const ModelProfile profile = ProfileWorkload(workload).profile;
  const AllocationPlan plan = RandomFairPlan(spec, rng);

  PlannerOptions planner_options;
  planner_options.sim_samples = 50;
  const PlanEstimate estimate =
      EstimatePlan({spec, profile, TestCloud(), Hours(10)}, plan, planner_options);

  ExecutorOptions executor_options;
  executor_options.seed = GetParam();
  const ExecutionReport report = ExecutePlan(spec, plan, workload, TestCloud(), executor_options);

  EXPECT_NEAR(report.jct, estimate.jct_mean, 0.25 * estimate.jct_mean)
      << "plan " << plan.ToString();
  EXPECT_NEAR(report.cost.Total().dollars(), estimate.cost_mean.dollars(),
              0.25 * estimate.cost_mean.dollars())
      << "plan " << plan.ToString();
}

TEST_P(PlanProperties, PerInstanceNeverCheaperThanPerFunction) {
  // Per-instance billing charges for everything per-function charges for
  // (busy GPUs), plus idle capacity and minimum charges.
  Rng rng(GetParam() ^ 0xBEEF);
  const ExperimentSpec spec = Spec();
  const ModelProfile profile = ProfileWorkload(ResNet101Cifar10()).profile;
  const AllocationPlan plan = RandomFairPlan(spec, rng);

  CloudProfile per_instance = TestCloud();
  CloudProfile per_function = TestCloud();
  per_function.pricing.billing = BillingModel::kPerFunction;

  PlannerOptions options;
  const PlanEstimate inst = EstimatePlan({spec, profile, per_instance, Hours(10)}, plan, options);
  const PlanEstimate func = EstimatePlan({spec, profile, per_function, Hours(10)}, plan, options);
  EXPECT_GE(inst.cost_mean.dollars(), func.cost_mean.dollars() - 1e-9)
      << "plan " << plan.ToString();
}

TEST_P(PlanProperties, PerFunctionCostBoundedBelowByTotalWork) {
  // Sub-linear scaling means g GPUs never deliver more than g times the
  // single-GPU throughput, so the busy GPU-seconds of any plan are at least
  // the spec's total work at single-GPU latency.
  Rng rng(GetParam() ^ 0xF00D);
  const ExperimentSpec spec = Spec();
  const ModelProfile profile = ProfileWorkload(ResNet101Cifar10()).profile;
  const AllocationPlan plan = RandomFairPlan(spec, rng);

  CloudProfile per_function = TestCloud();
  per_function.pricing.billing = BillingModel::kPerFunction;
  PlannerOptions options;
  const PlanEstimate estimate =
      EstimatePlan({spec, profile, per_function, Hours(10)}, plan, options);

  const double min_gpu_seconds =
      static_cast<double>(spec.TotalWork()) * profile.iter_latency_1gpu.Mean();
  const double min_cost =
      per_function.instance.GpuSecondPrice().dollars() * min_gpu_seconds;
  EXPECT_GE(estimate.cost_mean.dollars(), 0.95 * min_cost) << "plan " << plan.ToString();
}

TEST_P(PlanProperties, ExecutorConservesTrials) {
  // Every trial either survives to the end or is terminated at exactly one
  // barrier; counts must reconcile with the spec.
  Rng rng(GetParam() ^ 0xCAFE);
  const ExperimentSpec spec = Spec();
  const AllocationPlan plan = RandomFairPlan(spec, rng);
  ExecutorOptions options;
  options.seed = GetParam();
  const ExecutionReport report =
      ExecutePlan(spec, plan, ResNet101Cifar10(), TestCloud(), options);

  int expected_runs = 0;
  for (const Stage& stage : spec.stages()) {
    expected_runs += stage.num_trials;
  }
  EXPECT_EQ(report.trace.OfType(TraceEventType::kTrialComplete).size(),
            static_cast<size_t>(expected_runs));
  // Terminations happen at intermediate barriers only; the final stage's
  // runners-up are not "terminated", the best is simply selected.
  EXPECT_EQ(report.trace.OfType(TraceEventType::kTrialTerminated).size(),
            static_cast<size_t>(spec.stage(0).num_trials - spec.stages().back().num_trials));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanProperties, ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace rubberband
