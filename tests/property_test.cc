// Cross-module property tests over randomly generated (fair) allocation
// plans: the offline model and the online executor must agree, and cost
// structure invariants must hold regardless of the plan.

#include <gtest/gtest.h>

#include "src/rubberband.h"

namespace rubberband {
namespace {

CloudProfile TestCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  return cloud;
}

// A random plan whose every stage allocation is fair (factor or multiple of
// the stage's trial count), bounded to keep runtimes sane.
AllocationPlan RandomFairPlan(const ExperimentSpec& spec, Rng& rng) {
  std::vector<int> gpus;
  for (const Stage& stage : spec.stages()) {
    const int raw = static_cast<int>(rng.UniformInt(1, 4 * stage.num_trials));
    gpus.push_back(RoundUpToFairAllocation(raw, stage.num_trials));
  }
  return AllocationPlan(std::move(gpus));
}

class PlanProperties : public ::testing::TestWithParam<uint64_t> {
 protected:
  static ExperimentSpec Spec() { return MakeSha(8, 2, 14, 2); }
};

TEST_P(PlanProperties, SimulationPredictsExecutionForArbitraryPlans) {
  Rng rng(GetParam());
  const ExperimentSpec spec = Spec();
  const WorkloadSpec workload = ResNet101Cifar10();
  const ModelProfile profile = ProfileWorkload(workload).profile;
  const AllocationPlan plan = RandomFairPlan(spec, rng);

  PlannerOptions planner_options;
  planner_options.sim_samples = 50;
  const PlanEstimate estimate =
      EstimatePlan({spec, profile, TestCloud(), Hours(10)}, plan, planner_options);

  ExecutorOptions executor_options;
  executor_options.seed = GetParam();
  const ExecutionReport report = ExecutePlan(spec, plan, workload, TestCloud(), executor_options);

  EXPECT_NEAR(report.jct, estimate.jct_mean, 0.25 * estimate.jct_mean)
      << "plan " << plan.ToString();
  EXPECT_NEAR(report.cost.Total().dollars(), estimate.cost_mean.dollars(),
              0.25 * estimate.cost_mean.dollars())
      << "plan " << plan.ToString();
}

TEST_P(PlanProperties, PerInstanceNeverCheaperThanPerFunction) {
  // Per-instance billing charges for everything per-function charges for
  // (busy GPUs), plus idle capacity and minimum charges.
  Rng rng(GetParam() ^ 0xBEEF);
  const ExperimentSpec spec = Spec();
  const ModelProfile profile = ProfileWorkload(ResNet101Cifar10()).profile;
  const AllocationPlan plan = RandomFairPlan(spec, rng);

  CloudProfile per_instance = TestCloud();
  CloudProfile per_function = TestCloud();
  per_function.pricing.billing = BillingModel::kPerFunction;

  PlannerOptions options;
  const PlanEstimate inst = EstimatePlan({spec, profile, per_instance, Hours(10)}, plan, options);
  const PlanEstimate func = EstimatePlan({spec, profile, per_function, Hours(10)}, plan, options);
  EXPECT_GE(inst.cost_mean.dollars(), func.cost_mean.dollars() - 1e-9)
      << "plan " << plan.ToString();
}

TEST_P(PlanProperties, PerFunctionCostBoundedBelowByTotalWork) {
  // Sub-linear scaling means g GPUs never deliver more than g times the
  // single-GPU throughput, so the busy GPU-seconds of any plan are at least
  // the spec's total work at single-GPU latency.
  Rng rng(GetParam() ^ 0xF00D);
  const ExperimentSpec spec = Spec();
  const ModelProfile profile = ProfileWorkload(ResNet101Cifar10()).profile;
  const AllocationPlan plan = RandomFairPlan(spec, rng);

  CloudProfile per_function = TestCloud();
  per_function.pricing.billing = BillingModel::kPerFunction;
  PlannerOptions options;
  const PlanEstimate estimate =
      EstimatePlan({spec, profile, per_function, Hours(10)}, plan, options);

  const double min_gpu_seconds =
      static_cast<double>(spec.TotalWork()) * profile.iter_latency_1gpu.Mean();
  const double min_cost =
      per_function.instance.GpuSecondPrice().dollars() * min_gpu_seconds;
  EXPECT_GE(estimate.cost_mean.dollars(), 0.95 * min_cost) << "plan " << plan.ToString();
}

TEST_P(PlanProperties, ExecutorConservesTrials) {
  // Every trial either survives to the end or is terminated at exactly one
  // barrier; counts must reconcile with the spec.
  Rng rng(GetParam() ^ 0xCAFE);
  const ExperimentSpec spec = Spec();
  const AllocationPlan plan = RandomFairPlan(spec, rng);
  ExecutorOptions options;
  options.seed = GetParam();
  const ExecutionReport report =
      ExecutePlan(spec, plan, ResNet101Cifar10(), TestCloud(), options);

  int expected_runs = 0;
  for (const Stage& stage : spec.stages()) {
    expected_runs += stage.num_trials;
  }
  EXPECT_EQ(report.trace.OfType(TraceEventType::kTrialComplete).size(),
            static_cast<size_t>(expected_runs));
  // Terminations happen at intermediate barriers only; the final stage's
  // runners-up are not "terminated", the best is simply selected.
  EXPECT_EQ(report.trace.OfType(TraceEventType::kTrialTerminated).size(),
            static_cast<size_t>(spec.stage(0).num_trials - spec.stages().back().num_trials));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanProperties, ::testing::Range<uint64_t>(0, 8));

// Straggler-detector properties over seeded random workloads: soundness
// (identically distributed instances are never flagged, whatever the noise)
// and completeness (a persistent straggler well past the threshold is
// always flagged, within a bounded number of syncs).

class StragglerDetectorProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StragglerDetectorProperties, NeverFlagsIdenticallyDistributedInstances) {
  Rng rng(GetParam() ^ 0x57A66);
  StragglerDetector detector(StragglerDetectorConfig{});
  const int instances = 4 + static_cast<int>(rng.UniformInt(0, 4));  // 4..8
  for (int sync = 0; sync < 300; ++sync) {
    for (InstanceId id = 0; id < instances; ++id) {
      // Same noisy distribution for everyone: latency ~ max(N(1, 0.15), 0.5).
      const double latency = std::max(0.5, rng.Normal(1.0, 0.15));
      EXPECT_FALSE(detector.Observe(id, latency))
          << "flagged instance " << id << " at sync " << sync << " (seed " << GetParam() << ")";
    }
  }
  EXPECT_EQ(detector.num_flagged(), 0);
}

TEST_P(StragglerDetectorProperties, AlwaysFlagsAPersistentStragglerPromptly) {
  Rng rng(GetParam() ^ 0xFA57);
  StragglerDetectorConfig config;
  config.consecutive_syncs = 3;
  config.min_observations = 3;
  StragglerDetector detector(config);
  const int instances = 4 + static_cast<int>(rng.UniformInt(0, 4));
  const InstanceId straggler = static_cast<InstanceId>(rng.UniformInt(0, instances - 1));
  // 2x the threshold over the healthy mean: factor 3 vs threshold 1.5.
  const double factor = 3.0;
  int flagged_at = 0;
  for (int sync = 1; sync <= 40 && flagged_at == 0; ++sync) {
    for (InstanceId id = 0; id < instances; ++id) {
      const double noise = std::max(0.5, rng.Normal(1.0, 0.1));
      const bool crossed = detector.Observe(id, id == straggler ? noise * factor : noise);
      if (crossed) {
        EXPECT_EQ(id, straggler) << "flagged a healthy instance (seed " << GetParam() << ")";
        flagged_at = sync;
      }
    }
  }
  ASSERT_GT(flagged_at, 0) << "straggler never flagged (seed " << GetParam() << ")";
  // Detection latency is bounded: hysteresis needs k syncs over threshold,
  // and the EWMA (seeded with the first observation, alpha 0.3) of a 3x
  // signal sits over 1.5x baseline from sync one — so k + 2 covers it.
  EXPECT_LE(flagged_at, config.consecutive_syncs + 2)
      << "detection latency too high (seed " << GetParam() << ")";
  EXPECT_EQ(detector.num_flagged(), 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StragglerDetectorProperties, ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace rubberband
