// WarmPool: warm-instance reuse between jobs — hit/miss accounting, LIFO
// hand-out, bounded size, idle TTL, and spot-reclamation of parked
// capacity.

#include "src/cloud/warm_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/rubberband.h"

namespace rubberband {
namespace {

// Deterministic provisioning: 5s queuing + 10s init, ready 15s after the
// request. Init time is billed; queuing is not.
CloudProfile TestCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  return cloud;
}

// Requests `count` instances through `source` and drains the simulation up
// to (and including) events at the current timestamp.
std::vector<InstanceId> Acquire(Simulation& sim, InstanceSource& source, int count) {
  std::vector<InstanceId> ids;
  source.RequestInstances(count, 0.0, [&](InstanceId id) { ids.push_back(id); });
  sim.Run();
  return ids;
}

TEST(WarmPool, DisabledPoolPassesEveryReleaseThrough) {
  Simulation sim(1);
  SimulatedCloud cloud(sim, TestCloud());
  WarmPool pool(sim, cloud, WarmPoolConfig{/*max_parked=*/0});

  const std::vector<InstanceId> ids = Acquire(sim, pool, 2);
  ASSERT_EQ(ids.size(), 2u);
  for (InstanceId id : ids) {
    pool.ReleaseInstance(id);
  }
  EXPECT_EQ(pool.num_parked(), 0);
  EXPECT_EQ(cloud.num_ready(), 0);  // terminated for real
  EXPECT_EQ(pool.stats().released_cold, 2);
  EXPECT_EQ(pool.stats().parked, 0);
  EXPECT_EQ(pool.stats().cold_misses, 2);
  EXPECT_EQ(pool.stats().warm_hits, 0);
}

TEST(WarmPool, WarmHitServesInstantlyAndRecordsSavedInit) {
  Simulation sim(1);
  SimulatedCloud cloud(sim, TestCloud());
  WarmPool pool(sim, cloud, WarmPoolConfig{/*max_parked=*/4, /*max_idle_seconds=*/600.0});

  const std::vector<InstanceId> cold = Acquire(sim, pool, 1);
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 15.0);  // paid queuing + init once

  pool.ReleaseInstance(cold[0]);
  EXPECT_EQ(pool.num_parked(), 1);
  EXPECT_EQ(cloud.num_ready(), 1);  // still running (and billing)

  InstanceId warm = -1;
  const Seconds before = sim.now();
  pool.RequestInstances(1, 0.0, [&](InstanceId id) { warm = id; });
  sim.RunUntil(before);  // the hand-over is a zero-delay event
  EXPECT_EQ(warm, cold[0]);
  EXPECT_DOUBLE_EQ(sim.now(), before);  // no queuing, no init
  EXPECT_EQ(pool.num_parked(), 0);

  const WarmPoolStats& stats = pool.stats();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.cold_misses, 1);
  EXPECT_EQ(stats.warm_hits, 1);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
  EXPECT_DOUBLE_EQ(stats.init_seconds_saved, 15.0);
}

TEST(WarmPool, MixedRequestTakesWarmFirstThenFallsThrough) {
  Simulation sim(1);
  SimulatedCloud cloud(sim, TestCloud());
  WarmPool pool(sim, cloud, WarmPoolConfig{/*max_parked=*/4, /*max_idle_seconds=*/600.0});

  const std::vector<InstanceId> first = Acquire(sim, pool, 1);
  pool.ReleaseInstance(first[0]);

  const std::vector<InstanceId> second = Acquire(sim, pool, 3);
  ASSERT_EQ(second.size(), 3u);
  EXPECT_EQ(second[0], first[0]);  // the parked instance leads
  EXPECT_EQ(pool.stats().warm_hits, 1);
  EXPECT_EQ(pool.stats().cold_misses, 3);  // 1 + 2
  EXPECT_EQ(cloud.num_ready(), 3);
}

TEST(WarmPool, HandsOutTheMostRecentlyParkedFirst) {
  Simulation sim(1);
  SimulatedCloud cloud(sim, TestCloud());
  WarmPool pool(sim, cloud, WarmPoolConfig{/*max_parked=*/4, /*max_idle_seconds=*/600.0});

  const std::vector<InstanceId> ids = Acquire(sim, pool, 2);
  ASSERT_EQ(ids.size(), 2u);
  pool.ReleaseInstance(ids[0]);
  pool.ReleaseInstance(ids[1]);  // parked last: hottest

  InstanceId warm = -1;
  pool.RequestInstances(1, 0.0, [&](InstanceId id) { warm = id; });
  sim.RunUntil(sim.now());
  EXPECT_EQ(warm, ids[1]);
}

TEST(WarmPool, BoundedSizeTerminatesOverflowReleases) {
  Simulation sim(1);
  SimulatedCloud cloud(sim, TestCloud());
  WarmPool pool(sim, cloud, WarmPoolConfig{/*max_parked=*/1, /*max_idle_seconds=*/600.0});

  const std::vector<InstanceId> ids = Acquire(sim, pool, 3);
  for (InstanceId id : ids) {
    pool.ReleaseInstance(id);
  }
  EXPECT_EQ(pool.num_parked(), 1);
  EXPECT_EQ(cloud.num_ready(), 1);
  EXPECT_EQ(pool.stats().parked, 1);
  EXPECT_EQ(pool.stats().released_cold, 2);
}

TEST(WarmPool, IdleInstancesExpireAfterTtl) {
  Simulation sim(1);
  SimulatedCloud cloud(sim, TestCloud());
  WarmPool pool(sim, cloud, WarmPoolConfig{/*max_parked=*/4, /*max_idle_seconds=*/120.0});

  const std::vector<InstanceId> ids = Acquire(sim, pool, 2);
  const Seconds parked_at = sim.now();
  for (InstanceId id : ids) {
    pool.ReleaseInstance(id);
  }
  sim.Run();  // advance through the TTL timers
  EXPECT_DOUBLE_EQ(sim.now(), parked_at + 120.0);
  EXPECT_EQ(pool.num_parked(), 0);
  EXPECT_EQ(cloud.num_ready(), 0);
  EXPECT_EQ(pool.stats().expired, 2);
  EXPECT_DOUBLE_EQ(pool.stats().parked_idle_seconds, 240.0);
}

TEST(WarmPool, ReparkingRefreshesTheTtl) {
  Simulation sim(1);
  SimulatedCloud cloud(sim, TestCloud());
  WarmPool pool(sim, cloud, WarmPoolConfig{/*max_parked=*/4, /*max_idle_seconds=*/120.0});

  const std::vector<InstanceId> ids = Acquire(sim, pool, 1);
  pool.ReleaseInstance(ids[0]);  // parked at t=15; first TTL fires at t=135

  // Reacquire at t=100 and re-park at t=110.
  sim.ScheduleAt(100.0, [&] { pool.RequestInstances(1, 0.0, [](InstanceId) {}); });
  sim.ScheduleAt(110.0, [&] { pool.ReleaseInstance(ids[0]); });

  sim.RunUntil(140.0);  // past the stale first-generation TTL event
  EXPECT_EQ(pool.num_parked(), 1) << "a stale TTL timer expired a re-parked instance";
  EXPECT_EQ(pool.stats().expired, 0);

  sim.Run();  // the second-generation TTL (t=230) is the one that counts
  EXPECT_DOUBLE_EQ(sim.now(), 230.0);
  EXPECT_EQ(pool.num_parked(), 0);
  EXPECT_EQ(pool.stats().expired, 1);
}

TEST(WarmPool, ReclaimedParkedInstanceIsDropped) {
  CloudProfile profile = TestCloud();
  profile.spot.enabled = true;
  profile.spot.discount = 0.3;
  profile.spot.mean_time_to_preemption = 100.0;

  Simulation sim(7);
  SimulatedCloud cloud(sim, profile);
  WarmPool pool(sim, cloud, WarmPoolConfig{/*max_parked=*/4, /*max_idle_seconds=*/1e9});
  int orphaned = 0;
  cloud.SetPreemptionHandler([&](InstanceId id) {
    if (!pool.OnPreempted(id)) {
      ++orphaned;
    }
  });

  std::vector<InstanceId> ids;
  pool.RequestInstances(3, 0.0, [&](InstanceId id) { ids.push_back(id); });
  sim.RunUntil(16.0);  // ready at t=15, before any plausible reclamation
  ASSERT_EQ(ids.size(), 3u);
  for (InstanceId id : ids) {
    pool.ReleaseInstance(id);
  }
  sim.RunUntil(10'000.0);  // 100 mean lifetimes: everything reclaimed
  EXPECT_EQ(pool.num_parked(), 0);
  EXPECT_EQ(pool.stats().preempted_parked, 3);
  EXPECT_EQ(orphaned, 0) << "a preempted parked instance was routed past the pool";
  EXPECT_EQ(cloud.num_ready(), 0);
}

TEST(WarmPool, DrainTerminatesEverythingParked) {
  Simulation sim(1);
  SimulatedCloud cloud(sim, TestCloud());
  WarmPool pool(sim, cloud, WarmPoolConfig{/*max_parked=*/4, /*max_idle_seconds=*/600.0});

  const std::vector<InstanceId> ids = Acquire(sim, pool, 2);
  for (InstanceId id : ids) {
    pool.ReleaseInstance(id);
  }
  pool.Drain();
  EXPECT_EQ(pool.num_parked(), 0);
  EXPECT_EQ(cloud.num_ready(), 0);
}

}  // namespace
}  // namespace rubberband
