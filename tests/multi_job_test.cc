#include "src/planner/multi_job.h"

#include <gtest/gtest.h>

#include "src/model/profiler.h"
#include "src/spec/hyperband.h"
#include "src/trainer/model_zoo.h"

namespace rubberband {
namespace {

CloudProfile TestCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(2.0, 5.0);
  return cloud;
}

TEST(MultiJob, PlansEveryBracketWithinTheSharedDeadline) {
  const std::vector<ExperimentSpec> brackets = MakeHyperband({27, 3});
  const ModelProfile profile = ProfileWorkload(ResNet50(Cifar10(), 512)).profile;
  const MultiJobPlan plan = PlanMultiJob(brackets, profile, TestCloud(), Hours(1));
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.jobs.size(), brackets.size());
  EXPECT_LE(plan.total_jct_mean, Hours(1));
  Money summed;
  Seconds jct = 0.0;
  for (const PlannedJob& job : plan.jobs) {
    EXPECT_TRUE(job.feasible);
    summed += job.estimate.cost_mean;
    jct += job.estimate.jct_mean;
  }
  EXPECT_EQ(summed, plan.total_cost_mean);
  EXPECT_DOUBLE_EQ(jct, plan.total_jct_mean);
}

TEST(MultiJob, TighterSharedDeadlineCostsMore) {
  const std::vector<ExperimentSpec> brackets = MakeHyperband({27, 3});
  const ModelProfile profile = ProfileWorkload(ResNet50(Cifar10(), 512)).profile;
  const MultiJobPlan tight = PlanMultiJob(brackets, profile, TestCloud(), Minutes(25));
  const MultiJobPlan loose = PlanMultiJob(brackets, profile, TestCloud(), Hours(2));
  if (tight.feasible && loose.feasible) {
    EXPECT_GE(tight.total_cost_mean.dollars(), loose.total_cost_mean.dollars() - 1e-6);
  }
}

TEST(MultiJob, ImpossibleDeadlineIsFlagged) {
  const std::vector<ExperimentSpec> brackets = MakeHyperband({27, 3});
  const ModelProfile profile = ProfileWorkload(ResNet50(Cifar10(), 512)).profile;
  const MultiJobPlan plan = PlanMultiJob(brackets, profile, TestCloud(), 10.0);
  EXPECT_FALSE(plan.feasible);
  EXPECT_EQ(plan.jobs.size(), brackets.size());  // best-effort plans still returned
}

TEST(MultiJob, RejectsEmptyBracketList) {
  const ModelProfile profile = ProfileWorkload(ResNet50(Cifar10(), 512)).profile;
  EXPECT_THROW(PlanMultiJob({}, profile, TestCloud(), Hours(1)), std::invalid_argument);
}

}  // namespace
}  // namespace rubberband
