// Serving front door: framing, the bounded admission queue, per-tenant
// token buckets, the wire protocol, the single-threaded ServiceRunner
// (including the drain → snapshot → restore identity contract), and the
// full framed-TCP server end to end over real sockets.

#include "src/server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/rubberband.h"
#include "src/server/bounded_queue.h"
#include "src/server/client.h"
#include "src/server/framing.h"
#include "src/server/protocol.h"
#include "src/server/rate_limiter.h"
#include "src/server/service_runner.h"

namespace rubberband {
namespace {

// ---------------------------------------------------------------------------
// Framing.

TEST(Framing, RoundTripsAPayload) {
  std::string buffer = EncodeFrame(R"({"method":"ping"})");
  std::string payload;
  std::string error;
  ASSERT_EQ(DecodeFrame(buffer, &payload, &error), 1) << error;
  EXPECT_EQ(payload, R"({"method":"ping"})");
  EXPECT_TRUE(buffer.empty());
}

TEST(Framing, PartialFrameAsksForMoreBytes) {
  const std::string frame = EncodeFrame("hello");
  std::string payload;
  std::string error;
  // Just the prefix, then the prefix plus part of the payload: neither is
  // decodable, and neither consumes anything.
  for (size_t cut : {size_t{2}, size_t{4}, frame.size() - 1}) {
    std::string buffer = frame.substr(0, cut);
    EXPECT_EQ(DecodeFrame(buffer, &payload, &error), 0);
    EXPECT_EQ(buffer.size(), cut);
  }
}

TEST(Framing, DecodesBackToBackFramesInOrder) {
  std::string buffer = EncodeFrame("first") + EncodeFrame("second");
  std::string payload;
  std::string error;
  ASSERT_EQ(DecodeFrame(buffer, &payload, &error), 1);
  EXPECT_EQ(payload, "first");
  ASSERT_EQ(DecodeFrame(buffer, &payload, &error), 1);
  EXPECT_EQ(payload, "second");
  EXPECT_EQ(DecodeFrame(buffer, &payload, &error), 0);
}

TEST(Framing, RejectsAnOversizedAnnouncement) {
  // A hand-built prefix announcing kMaxFrameBytes + 1 must fail before any
  // payload bytes arrive — the cap is enforced on the announcement.
  const uint32_t size = kMaxFrameBytes + 1;
  std::string buffer;
  buffer.push_back(static_cast<char>((size >> 24) & 0xff));
  buffer.push_back(static_cast<char>((size >> 16) & 0xff));
  buffer.push_back(static_cast<char>((size >> 8) & 0xff));
  buffer.push_back(static_cast<char>(size & 0xff));
  std::string payload;
  std::string error;
  EXPECT_EQ(DecodeFrame(buffer, &payload, &error), -1);
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Bounded admission queue.

TEST(BoundedQueue, RejectsPushesWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full: reject, never block
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueue, DrainMovesEverythingAtOnce) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.TryPush(i));
  }
  std::vector<int> out;
  EXPECT_EQ(queue.DrainFor(&out, std::chrono::milliseconds(10)), 5u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, CloseRejectsNewPushesButDrainsTheBacklog) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(7));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(8));
  std::vector<int> out;
  EXPECT_EQ(queue.DrainFor(&out, std::chrono::milliseconds(10)), 1u);
  EXPECT_EQ(out, (std::vector<int>{7}));
  // Closed and empty: the consumer gets 0 immediately, not a hang.
  EXPECT_EQ(queue.DrainFor(&out, std::chrono::milliseconds(10)), 0u);
}

// ---------------------------------------------------------------------------
// Per-tenant token buckets (synthetic timestamps — fully deterministic).

constexpr int64_t kSecondNs = 1'000'000'000;

TEST(RateLimiter, DisabledConfigAdmitsEverything) {
  RateLimiter limiter(RateLimitConfig{});  // rate 0 = disabled
  EXPECT_FALSE(limiter.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(limiter.Admit("anyone", 0).admitted);
  }
}

TEST(RateLimiter, BurstThenHonestRetryAfter) {
  RateLimiter limiter(RateLimitConfig{/*rate_per_second=*/1.0, /*burst=*/2.0});
  ASSERT_TRUE(limiter.enabled());
  EXPECT_TRUE(limiter.Admit("a", 0).admitted);
  EXPECT_TRUE(limiter.Admit("a", 0).admitted);
  const RateDecision rejected = limiter.Admit("a", 0);
  EXPECT_FALSE(rejected.admitted);
  // One token deficit at 1 token/s: the honest hint is one second.
  EXPECT_NEAR(static_cast<double>(rejected.retry_after_ns), kSecondNs, 1e6);
  // Waiting exactly the advertised time makes the next request admissible.
  EXPECT_TRUE(limiter.Admit("a", rejected.retry_after_ns).admitted);
}

TEST(RateLimiter, TenantsHaveIndependentBuckets) {
  RateLimiter limiter(RateLimitConfig{/*rate_per_second=*/1.0, /*burst=*/1.0});
  EXPECT_TRUE(limiter.Admit("hog", 0).admitted);
  EXPECT_FALSE(limiter.Admit("hog", 0).admitted);
  // The hog draining its bucket must not touch anyone else's.
  EXPECT_TRUE(limiter.Admit("compliant", 0).admitted);
}

// ---------------------------------------------------------------------------
// Wire protocol.

TEST(Protocol, ParsesAnEnvelopeWithDefaults) {
  Request request;
  std::string error;
  ASSERT_TRUE(ParseRequest(R"({"id": 7, "method": "status"})", &request, &error)) << error;
  EXPECT_EQ(request.method, "status");
  EXPECT_EQ(request.tenant, "default");
  EXPECT_TRUE(request.params.is_object());
  EXPECT_DOUBLE_EQ(request.id.number(), 7.0);
}

TEST(Protocol, RejectsMalformedEnvelopes) {
  Request request;
  std::string error;
  EXPECT_FALSE(ParseRequest("not json", &request, &error));
  EXPECT_FALSE(ParseRequest("[1, 2]", &request, &error));
  EXPECT_FALSE(ParseRequest(R"({"id": 1})", &request, &error));  // no method
  EXPECT_FALSE(ParseRequest(R"({"method": 42})", &request, &error));
}

TEST(Protocol, ResponsesEchoTheIdAndCarryRetryAfter) {
  const JsonValue ok = JsonValue::Parse(OkResponse(JsonValue::MakeNumber(3),
                                                   JsonValue::MakeObject()));
  EXPECT_DOUBLE_EQ(ok.at("id").number(), 3.0);
  EXPECT_TRUE(ok.at("ok").bool_value());

  const JsonValue err = JsonValue::Parse(
      ErrorResponse(JsonValue::MakeString("x"), kErrRateLimited, "slow down", 120));
  EXPECT_EQ(err.at("id").string(), "x");
  EXPECT_FALSE(err.at("ok").bool_value());
  EXPECT_EQ(err.at("error").at("code").string(), kErrRateLimited);
  EXPECT_DOUBLE_EQ(err.at("error").at("retry_after_ms").number(), 120.0);
  // retry_after_ms is only present on backpressure responses.
  const JsonValue plain =
      JsonValue::Parse(ErrorResponse(JsonValue::MakeNull(), kErrNotFound, "nope"));
  EXPECT_FALSE(plain.at("error").Has("retry_after_ms"));
}

TEST(Protocol, JobRequestValidationNamesTheField) {
  JobRequest job;
  std::string error;
  JsonValue params = JsonValue::MakeObject();
  params.Set("deadline_s", JsonValue::MakeNumber(3600));
  EXPECT_FALSE(ParseJobRequest(params, &job, &error));
  EXPECT_NE(error.find("name"), std::string::npos);

  params = JsonValue::MakeObject();
  params.Set("name", JsonValue::MakeString("exp"));
  EXPECT_FALSE(ParseJobRequest(params, &job, &error));
  EXPECT_NE(error.find("deadline"), std::string::npos);
}

TEST(Protocol, JournalParamsRoundTripTheJob) {
  // The journal stores ops in the same shape `submit` accepts, so a
  // snapshot's replay parses the exact job back — including the explicit
  // stage list (eta is not recoverable from stages, so stages travel
  // verbatim).
  JsonValue params = JsonValue::MakeObject();
  params.Set("name", JsonValue::MakeString("exp1"));
  params.Set("trials", JsonValue::MakeNumber(8));
  params.Set("min_iters", JsonValue::MakeNumber(2));
  params.Set("max_iters", JsonValue::MakeNumber(14));
  params.Set("eta", JsonValue::MakeNumber(2));
  params.Set("deadline_s", JsonValue::MakeNumber(1800));
  params.Set("weight", JsonValue::MakeNumber(2.0));

  JobRequest job;
  std::string error;
  ASSERT_TRUE(ParseJobRequest(params, &job, &error)) << error;

  JobRequest replayed;
  ASSERT_TRUE(ParseJobRequest(JobRequestToParams(job), &replayed, &error)) << error;
  ASSERT_EQ(replayed.spec.num_stages(), job.spec.num_stages());
  for (int i = 0; i < job.spec.num_stages(); ++i) {
    EXPECT_EQ(replayed.spec.stage(i).num_trials, job.spec.stage(i).num_trials);
    EXPECT_EQ(replayed.spec.stage(i).iters_per_trial, job.spec.stage(i).iters_per_trial);
  }
  EXPECT_EQ(replayed.name, job.name);
  EXPECT_EQ(replayed.workload.name, job.workload.name);
  EXPECT_DOUBLE_EQ(replayed.deadline, job.deadline);
  EXPECT_DOUBLE_EQ(replayed.weight, job.weight);
}

// ---------------------------------------------------------------------------
// ServiceRunner: the single-threaded request handler.

RunnerOptions SmallRunner(uint64_t seed = 11) {
  RunnerOptions options;
  options.service.cloud.instance = P3_8xlarge();
  options.service.cloud.provisioning = ProvisioningModel::Fixed(30.0, 60.0);
  options.service.capacity_gpus = 16;
  options.service.seed = seed;
  options.auto_advance_step = 0.0;  // tests drive time explicitly
  return options;
}

Request Req(const std::string& method, JsonValue params = JsonValue::MakeObject(),
            const std::string& tenant = "default") {
  Request request;
  request.method = method;
  request.params = std::move(params);
  request.tenant = tenant;
  return request;
}

JsonValue SubmitParams(const std::string& name, double deadline_s = 36'000.0) {
  JsonValue params = JsonValue::MakeObject();
  params.Set("name", JsonValue::MakeString(name));
  params.Set("trials", JsonValue::MakeNumber(4));
  params.Set("min_iters", JsonValue::MakeNumber(1));
  params.Set("max_iters", JsonValue::MakeNumber(4));
  params.Set("eta", JsonValue::MakeNumber(2));
  params.Set("deadline_s", JsonValue::MakeNumber(deadline_s));
  return params;
}

JsonValue AdvanceParams(double seconds) {
  JsonValue params = JsonValue::MakeObject();
  params.Set("seconds", JsonValue::MakeNumber(seconds));
  return params;
}

// Advances the runner's service until it is idle (all admitted jobs done).
void RunToQuiescence(ServiceRunner& runner) {
  for (int i = 0; i < 10'000 && runner.service().HasPendingEvents(); ++i) {
    runner.Handle(Req("advance", AdvanceParams(600.0)));
  }
  ASSERT_TRUE(runner.service().LiveIdle());
}

TEST(ServiceRunner, SubmitDecisionIsSynchronous) {
  ServiceRunner runner(SmallRunner());
  const OpResult result = runner.Handle(Req("submit", SubmitParams("exp1")));
  ASSERT_TRUE(result.ok) << result.message;
  // The admission decision (not execution) lands before the response: an
  // ample-capacity submit is RUNNING, not PENDING.
  EXPECT_EQ(result.body.at("state").string(), "RUNNING");
  EXPECT_EQ(result.body.at("job").string(), "exp1");
}

TEST(ServiceRunner, StatusAndCancelErrorsUseTheClosedVocabulary) {
  ServiceRunner runner(SmallRunner());
  JsonValue who = JsonValue::MakeObject();
  who.Set("job", JsonValue::MakeString("ghost"));
  EXPECT_EQ(runner.Handle(Req("status", who)).code, kErrNotFound);
  EXPECT_EQ(runner.Handle(Req("cancel", who)).code, kErrNotFound);
  EXPECT_EQ(runner.Handle(Req("nonsense")).code, kErrBadRequest);

  // Cancelling a running job is a state conflict, not a missing job.
  runner.Handle(Req("submit", SubmitParams("exp1")));
  JsonValue running = JsonValue::MakeObject();
  running.Set("job", JsonValue::MakeString("exp1"));
  EXPECT_EQ(runner.Handle(Req("cancel", running)).code, kErrConflict);
}

TEST(ServiceRunner, DrainRefusesNewSubmitsAndReportsInFlight) {
  ServiceRunner runner(SmallRunner());
  runner.Handle(Req("submit", SubmitParams("exp1")));
  const OpResult drained = runner.Handle(Req("drain"));
  ASSERT_TRUE(drained.ok) << drained.message;
  EXPECT_DOUBLE_EQ(drained.body.at("in_flight").number(), 1.0);
  EXPECT_TRUE(runner.draining());
  EXPECT_EQ(runner.Handle(Req("submit", SubmitParams("exp2"))).code, kErrDraining);
}

// The acceptance contract: drain mid-run, restore from the snapshot, and
// every job — in-flight at the drain or already done — finishes with a
// report bit-identical to a run that was never interrupted.
TEST(ServiceRunner, SnapshotRestoreMatchesAnUninterruptedRun) {
  // Control: two jobs run start to finish in one process.
  ServiceRunner control(SmallRunner());
  control.Handle(Req("submit", SubmitParams("exp1")));
  control.Handle(Req("advance", AdvanceParams(120.0)));
  control.Handle(Req("submit", SubmitParams("exp2")));
  RunToQuiescence(control);

  // Interrupted: same ops, but drained mid-flight and restored.
  ServiceRunner first(SmallRunner());
  first.Handle(Req("submit", SubmitParams("exp1")));
  first.Handle(Req("advance", AdvanceParams(120.0)));
  first.Handle(Req("submit", SubmitParams("exp2")));
  // Mid-provisioning for exp2, mid-stage for exp1: both still in flight.
  first.Handle(Req("advance", AdvanceParams(60.0)));
  const OpResult drained = first.Handle(Req("drain"));
  ASSERT_TRUE(drained.ok);
  EXPECT_DOUBLE_EQ(drained.body.at("in_flight").number(), 2.0);

  std::unique_ptr<ServiceRunner> restored =
      ServiceRunner::Restore(SmallRunner(), first.SnapshotJson());
  RunToQuiescence(*restored);

  ASSERT_EQ(restored->service().num_jobs(), control.service().num_jobs());
  for (size_t i = 0; i < control.service().num_jobs(); ++i) {
    const JobOutcome& a = control.service().outcome(i);
    const JobOutcome& b = restored->service().outcome(i);
    EXPECT_EQ(b.state, a.state) << a.name;
    EXPECT_DOUBLE_EQ(b.jct, a.jct) << a.name;
    EXPECT_EQ(b.cost.micros(), a.cost.micros()) << a.name;
    EXPECT_DOUBLE_EQ(b.best_accuracy, a.best_accuracy) << a.name;
    EXPECT_EQ(b.preemptions, a.preemptions) << a.name;
  }
}

// A job that completed BEFORE the drain must survive the restart: the
// restore replays it and verifies its outcome against the snapshot digest.
TEST(ServiceRunner, CompletedReportsSurviveRestore) {
  ServiceRunner first(SmallRunner());
  first.Handle(Req("submit", SubmitParams("done-before-drain")));
  RunToQuiescence(first);
  first.Handle(Req("submit", SubmitParams("in-flight")));
  first.Handle(Req("drain"));

  const JobOutcome before = first.service().outcome(0);
  ASSERT_EQ(before.state, JobState::kCompleted);

  std::unique_ptr<ServiceRunner> restored =
      ServiceRunner::Restore(SmallRunner(), first.SnapshotJson());
  const JobOutcome& after = restored->service().outcome(0);
  EXPECT_EQ(after.state, JobState::kCompleted);
  EXPECT_DOUBLE_EQ(after.jct, before.jct);
  EXPECT_EQ(after.cost.micros(), before.cost.micros());
}

TEST(ServiceRunner, RestoreRefusesAConfigMismatch) {
  ServiceRunner first(SmallRunner(/*seed=*/11));
  first.Handle(Req("submit", SubmitParams("exp1")));
  first.Handle(Req("drain"));
  const std::string snapshot = first.SnapshotJson();

  // A different seed replays a different universe; the fingerprint check
  // must refuse rather than resume into silently divergent state.
  EXPECT_THROW(ServiceRunner::Restore(SmallRunner(/*seed=*/12), snapshot), std::runtime_error);
  EXPECT_THROW(ServiceRunner::Restore(SmallRunner(), "{not json"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Server end to end: real sockets, real threads.

ServerOptions SmallServer(uint64_t seed = 11) {
  ServerOptions options;
  options.runner = SmallRunner(seed);
  options.port = 0;  // kernel-assigned
  return options;
}

JsonValue MustCall(Client& client, const std::string& method, const JsonValue& params,
                   const std::string& tenant = "default") {
  JsonValue response;
  std::string error;
  EXPECT_TRUE(client.Call(method, params, tenant, &response, &error)) << error;
  EXPECT_TRUE(response.at("ok").bool_value()) << response.ToJson();
  return response.at("result");
}

TEST(ServerEndToEnd, SubmitStatusReportMetricsOverSockets) {
  Server server(SmallServer());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;

  const JsonValue submitted = MustCall(client, "submit", SubmitParams("exp1"));
  EXPECT_EQ(submitted.at("state").string(), "RUNNING");

  MustCall(client, "advance", AdvanceParams(600.0));
  const JsonValue status = MustCall(client, "status", JsonValue::MakeObject());
  ASSERT_EQ(status.at("jobs").size(), 1u);
  EXPECT_EQ(status.at("jobs").at(0).at("job").string(), "exp1");

  const JsonValue report = MustCall(client, "report", JsonValue::MakeObject());
  EXPECT_TRUE(report.Has("text"));

  // The metrics response merges the service registry with the server's own
  // request-path counters.
  const JsonValue metrics = MustCall(client, "metrics", JsonValue::MakeObject());
  const JsonValue& counters = metrics.at("metrics").at("counters");
  EXPECT_GE(counters.at("server.requests.submit").number(), 1.0);
  EXPECT_GE(counters.at("service.jobs_admitted").number(), 1.0);

  client.Close();
  server.Stop();
}

TEST(ServerEndToEnd, MalformedFramesGetBadRequestNotDisconnect) {
  Server server(SmallServer());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  // A well-formed frame holding garbage JSON: the server must answer (and
  // keep the connection) rather than drop it.
  JsonValue response;
  ASSERT_TRUE(client.Call("bogus-method", JsonValue::MakeObject(), "default", &response, &error))
      << error;
  EXPECT_FALSE(response.at("ok").bool_value());
  EXPECT_EQ(response.at("error").at("code").string(), kErrBadRequest);
  // Connection still usable.
  MustCall(client, "ping", JsonValue::MakeObject());
  server.Stop();
}

TEST(ServerEndToEnd, DrainPersistsSnapshotAndRestartFinishesInFlightJobs) {
  const std::string snapshot_path =
      testing::TempDir() + "/rb_server_test_snapshot.json";
  std::remove(snapshot_path.c_str());

  // Control: the same op sequence, uninterrupted.
  ServiceRunner control(SmallRunner());
  control.Handle(Req("submit", SubmitParams("exp1")));
  control.Handle(Req("advance", AdvanceParams(120.0)));
  control.Handle(Req("submit", SubmitParams("exp2")));
  RunToQuiescence(control);

  ServerOptions options = SmallServer();
  options.snapshot_path = snapshot_path;
  std::string error;
  {
    Server server(options);
    ASSERT_TRUE(server.Start(&error)) << error;
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
    MustCall(client, "submit", SubmitParams("exp1"));
    MustCall(client, "advance", AdvanceParams(120.0));
    MustCall(client, "submit", SubmitParams("exp2"));
    const JsonValue drained = MustCall(client, "drain", JsonValue::MakeObject());
    EXPECT_DOUBLE_EQ(drained.at("in_flight").number(), 2.0);
    EXPECT_EQ(drained.at("snapshot_path").string(), snapshot_path);
    server.Wait();  // returns once the drain has been fully served
    server.Stop();
  }

  std::FILE* file = std::fopen(snapshot_path.c_str(), "rb");
  ASSERT_NE(file, nullptr) << "drain must persist " << snapshot_path;
  std::string snapshot;
  char chunk[4096];
  size_t read = 0;
  while ((read = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    snapshot.append(chunk, read);
  }
  std::fclose(file);

  {
    Server server(options);
    ASSERT_TRUE(server.StartRestored(snapshot, &error)) << error;
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
    for (int i = 0; i < 200; ++i) {
      const JsonValue advanced = MustCall(client, "advance", AdvanceParams(600.0));
      if (advanced.at("idle").bool_value()) {
        break;
      }
    }
    const JsonValue status = MustCall(client, "status", JsonValue::MakeObject());
    ASSERT_EQ(status.at("jobs").size(), 2u);
    for (size_t i = 0; i < 2; ++i) {
      const JsonValue& job = status.at("jobs").at(i);
      const JobOutcome& expected = control.service().outcome(i);
      EXPECT_EQ(job.at("state").string(), "COMPLETED") << job.ToJson();
      // Identical to the run that was never interrupted, to the digit.
      EXPECT_DOUBLE_EQ(job.at("jct_s").number(), expected.jct);
      EXPECT_DOUBLE_EQ(job.at("cost_dollars").number(), expected.cost.dollars());
      EXPECT_DOUBLE_EQ(job.at("best_accuracy").number(), expected.best_accuracy);
    }
    server.Stop();
  }
  std::remove(snapshot_path.c_str());
}

TEST(ServerEndToEnd, BackpressureBoundsTheHogAndSparesTheCompliant) {
  ServerOptions options = SmallServer();
  // Refill slow enough that even a sanitizer-throttled loop outpaces it:
  // at 2 tokens/s the hog's 40 submits can all be admitted only if the
  // loop takes 17+ seconds. The compliant tenant below is unaffected —
  // its 5 submits fit entirely within its own burst.
  options.rate.rate_per_second = 2.0;
  options.rate.burst = 5.0;
  std::string error;
  Server server(options);
  ASSERT_TRUE(server.Start(&error)) << error;

  Client hog;
  ASSERT_TRUE(hog.Connect("127.0.0.1", server.port(), &error)) << error;
  int admitted = 0;
  int rate_limited = 0;
  bool retry_after_present = true;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 40; ++i) {
    JsonValue response;
    ASSERT_TRUE(hog.Call("submit", SubmitParams("hog-" + std::to_string(i)), "hog",
                         &response, &error))
        << error;
    if (response.at("ok").bool_value()) {
      ++admitted;
    } else {
      ASSERT_EQ(response.at("error").at("code").string(), kErrRateLimited);
      ++rate_limited;
      retry_after_present =
          retry_after_present && response.at("error").Has("retry_after_ms") &&
          response.at("error").at("retry_after_ms").number() > 0.0;
    }
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  // The hog's admissions are bounded by burst + rate * elapsed (plus one
  // token of slack); the rest were rejected with an honest retry hint.
  EXPECT_GT(rate_limited, 0);
  EXPECT_TRUE(retry_after_present);
  EXPECT_LE(admitted, 5.0 + 2.0 * elapsed_s + 1.0);

  // A compliant tenant staying inside its own burst is untouched by the
  // hog's rejections, and its submits decide promptly.
  Client compliant;
  ASSERT_TRUE(compliant.Connect("127.0.0.1", server.port(), &error)) << error;
  for (int i = 0; i < 5; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const JsonValue result =
        MustCall(compliant, "submit", SubmitParams("ok-" + std::to_string(i)), "compliant");
    const double wait_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    // Admitted (running, or queued behind the hog's jobs) — never rejected.
    const std::string& state = result.at("state").string();
    EXPECT_TRUE(state == "RUNNING" || state == "QUEUED") << state;
    EXPECT_LT(wait_s, 5.0);  // generous CI budget; typical is sub-ms
  }
  server.Stop();
}

// ---------------------------------------------------------------------------
// Request-path concurrency (also registered under the tsan ctest label:
// tools/check.sh --tsan runs these under ThreadSanitizer).

TEST(ServerConcurrency, ParallelClientsMixingMethodsStayConsistent) {
  Server server(SmallServer());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const int port = server.port();

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 30;
  std::atomic<int> transport_errors{0};
  std::atomic<int> submits_admitted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      std::string err;
      if (!client.Connect("127.0.0.1", port, &err)) {
        transport_errors.fetch_add(1);
        return;
      }
      const std::string tenant = "tenant-" + std::to_string(t);
      for (int i = 0; i < kRequestsPerThread; ++i) {
        JsonValue response;
        bool ok = false;
        switch (i % 4) {
          case 0:
            ok = client.Call("submit", SubmitParams(tenant + "-job-" + std::to_string(i)),
                             tenant, &response, &err);
            if (ok && response.at("ok").bool_value()) {
              submits_admitted.fetch_add(1);
            }
            break;
          case 1:
            ok = client.Call("status", JsonValue::MakeObject(), "default", &response, &err);
            break;
          case 2:
            ok = client.Call("ping", JsonValue::MakeObject(), "default", &response, &err);
            break;
          default:
            ok = client.Call("metrics", JsonValue::MakeObject(), "default", &response, &err);
            break;
        }
        if (!ok) {
          transport_errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(transport_errors.load(), 0);

  // Every admitted submit is visible in one consistent status snapshot.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port, &error)) << error;
  const JsonValue status = MustCall(client, "status", JsonValue::MakeObject());
  EXPECT_EQ(static_cast<int>(status.at("jobs").size()), submits_admitted.load());
  server.Stop();
}

TEST(ServerConcurrency, StopUnblocksWaitersWhileClientsAreActive) {
  Server server(SmallServer());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const int port = server.port();

  std::atomic<bool> keep_going{true};
  std::thread chatter([&] {
    Client client;
    std::string err;
    if (!client.Connect("127.0.0.1", port, &err)) {
      return;
    }
    JsonValue response;
    while (keep_going.load() &&
           client.Call("ping", JsonValue::MakeObject(), "default", &response, &err)) {
    }
  });
  std::thread waiter([&] { server.Wait(); });

  // Stop with live traffic: Wait() must return promptly and the chatter's
  // connection must fail cleanly, not hang.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Stop();
  waiter.join();
  keep_going.store(false);
  chatter.join();
}

// ---------------------------------------------------------------------------
// Fault paths: malformed byte streams, deadlines, wire faults, restarts.
// (ServerFault* also runs under the TSan tier — these paths cross the
// accept/reader/service threads in unusual orders.)

// A raw TCP connection for speaking garbage the Client refuses to send.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() { Close(); }
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  bool ok() const { return fd_ >= 0; }
  void SendAll(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        return;
      }
      sent += static_cast<size_t>(n);
    }
  }
  // Blocks until the peer closes (or data arrives); true on clean EOF.
  bool WaitForEof() {
    char buffer[256];
    while (true) {
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n == 0) {
        return true;
      }
      if (n < 0) {
        return false;
      }
    }
  }

 private:
  int fd_ = -1;
};

// Pure-function property test: no byte sequence may crash the frame
// decoder or the envelope parser — only clean 1/0/-1 verdicts.
TEST(ServerFault, DecoderAndParserSurviveArbitraryBytes) {
  Rng rng(20260808);
  for (int round = 0; round < 500; ++round) {
    const size_t size = static_cast<size_t>(rng.UniformInt(0, 64));
    std::string bytes;
    for (size_t i = 0; i < size; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    std::string buffer = bytes;
    std::string payload;
    std::string error;
    const int verdict = DecodeFrame(buffer, &payload, &error);
    EXPECT_GE(verdict, -1);
    EXPECT_LE(verdict, 1);
    Request request;
    ParseRequest(bytes, &request, &error);  // must not throw or crash
  }
  // Mutations of a VALID frame: every truncation, and every one-byte flip.
  const std::string frame = EncodeFrame(R"({"method":"ping","params":{}})");
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::string buffer = frame.substr(0, cut);
    std::string payload;
    std::string error;
    EXPECT_EQ(DecodeFrame(buffer, &payload, &error), 0) << "cut " << cut;
  }
  for (size_t flip = 0; flip < frame.size(); ++flip) {
    std::string buffer = frame;
    buffer[flip] ^= 0x40;
    std::string payload;
    std::string error;
    const int verdict = DecodeFrame(buffer, &payload, &error);
    if (verdict == 1) {
      Request request;
      ParseRequest(payload, &request, &error);
    }
  }
}

TEST(ServerFault, MalformedByteStreamsNeverWedgeTheServer) {
  ServerOptions options = SmallServer();
  options.frame_timeout_ms = 200;  // stalled mid-frame garbage gets evicted
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Oversize-by-one announcement: refused at the prefix, connection closed.
  {
    const uint32_t size = kMaxFrameBytes + 1;
    std::string prefix;
    prefix.push_back(static_cast<char>((size >> 24) & 0xff));
    prefix.push_back(static_cast<char>((size >> 16) & 0xff));
    prefix.push_back(static_cast<char>((size >> 8) & 0xff));
    prefix.push_back(static_cast<char>(size & 0xff));
    RawConn conn(server.port());
    ASSERT_TRUE(conn.ok());
    conn.SendAll(prefix);
    EXPECT_TRUE(conn.WaitForEof());
  }
  // Truncated prefix then EOF; a frame torn mid-payload then EOF.
  {
    RawConn conn(server.port());
    ASSERT_TRUE(conn.ok());
    conn.SendAll("\x00\x00");
    conn.Close();
  }
  {
    RawConn conn(server.port());
    ASSERT_TRUE(conn.ok());
    const std::string frame = EncodeFrame(R"({"method":"ping"})");
    conn.SendAll(frame.substr(0, frame.size() - 3));
    conn.Close();
  }
  // Seeded random garbage streams.
  Rng rng(7);
  for (int round = 0; round < 8; ++round) {
    RawConn conn(server.port());
    ASSERT_TRUE(conn.ok());
    std::string bytes;
    for (int i = 0; i < 32; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    conn.SendAll(bytes);
    conn.Close();
  }

  // After all that abuse a clean client still gets served.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  MustCall(client, "ping", JsonValue::MakeObject());
  server.Stop();
}

TEST(ServerFault, IdleAndSlowLorisConnectionsAreReaped) {
  ServerOptions options = SmallServer();
  options.idle_timeout_ms = 150;
  options.frame_timeout_ms = 150;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Idle: connects, never sends a byte.
  RawConn idle(server.port());
  ASSERT_TRUE(idle.ok());
  // Slow loris: sends a prefix announcing 100 bytes, then one byte, then
  // stalls mid-frame.
  RawConn loris(server.port());
  ASSERT_TRUE(loris.ok());
  loris.SendAll(std::string("\x00\x00\x00\x64", 4) + "{");

  EXPECT_TRUE(idle.WaitForEof());
  EXPECT_TRUE(loris.WaitForEof());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  const JsonValue metrics = MustCall(client, "metrics", JsonValue::MakeObject());
  EXPECT_GE(metrics.at("metrics").at("counters").at("server.conn.idle_closed").number(), 2.0);
  server.Stop();
}

TEST(ServerFault, ClientDeadlineExpiryIsACleanTimeoutError) {
  // A listener that accepts and never answers.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 4), 0);
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &bound_len);

  ClientOptions client_options;
  client_options.io_timeout_ms = 100;
  Client client(client_options);
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", ntohs(bound.sin_port), &error)) << error;
  JsonValue response;
  EXPECT_FALSE(client.Call("ping", JsonValue::MakeObject(), "default", &response, &error));
  EXPECT_EQ(error.rfind("TIMEOUT", 0), 0u) << error;
  EXPECT_EQ(client.stats().timeouts, 1);
  EXPECT_FALSE(client.connected());  // a timed-out connection is unusable
  ::close(listener);
}

TEST(ServerFault, WireFaultInjectionYieldsCleanErrorsNotCrashes) {
  ServerOptions options = SmallServer();
  options.fault.seed = 4242;
  options.fault.reset_rate = 0.05;
  options.fault.short_write_rate = 0.3;
  options.fault.byte_flip_rate = 0.05;
  options.frame_timeout_ms = 500;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  ClientOptions client_options;
  client_options.io_timeout_ms = 2'000;
  client_options.max_attempts = 5;
  client_options.base_backoff_ms = 1.0;
  client_options.max_backoff_ms = 10.0;
  client_options.seed = 99;
  Client client(client_options);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;

  // Under resets, short writes, and byte flips, every retried call must
  // land eventually — and the ones that fail mid-way must fail cleanly.
  int successes = 0;
  for (int i = 0; i < 40; ++i) {
    JsonValue response;
    if (client.CallIdempotent("ping", JsonValue::MakeObject(), "default",
                              /*idem=*/"", &response, &error)) {
      ++successes;
    }
  }
  EXPECT_GT(successes, 30) << "retries should ride out injected faults";
  server.Stop();
}

TEST(ServerFault, IdempotentRetryAcrossRestartSubmitsExactlyOnce) {
  const std::string wal_path = testing::TempDir() + "/rb_serverfault_restart.wal";
  std::remove(wal_path.c_str());

  ServerOptions options = SmallServer();
  options.runner.wal_path = wal_path;
  auto first = std::make_unique<Server>(options);
  std::string error;
  ASSERT_TRUE(first->Start(&error)) << error;
  const int port = first->port();

  ClientOptions client_options;
  client_options.max_attempts = 20;
  client_options.base_backoff_ms = 5.0;
  client_options.max_backoff_ms = 50.0;
  Client client(client_options);
  ASSERT_TRUE(client.Connect("127.0.0.1", port, &error)) << error;
  JsonValue original;
  ASSERT_TRUE(client.CallIdempotent("submit", SubmitParams("exp1"), "default", "idem-7",
                                    &original, &error))
      << error;
  ASSERT_TRUE(original.at("ok").bool_value()) << original.ToJson();

  // kill -9: no drain, no snapshot, WAL abandoned mid-flight.
  first->Kill();
  first.reset();

  options.port = port;  // rebind the same front door
  Server second(options);
  ASSERT_TRUE(second.Start(&error)) << error;

  // The client never learned whether the first submit survived, so it
  // retries with the same key. The WAL-recovered server answers with the
  // journaled original decision and does NOT submit a second job.
  JsonValue retried;
  ASSERT_TRUE(client.CallIdempotent("submit", SubmitParams("exp1"), "default", "idem-7",
                                    &retried, &error))
      << error;
  EXPECT_EQ(retried.at("result").ToJson(), original.at("result").ToJson());
  EXPECT_GE(client.stats().reconnects, 1);

  const JsonValue status = MustCall(client, "status", JsonValue::MakeObject());
  EXPECT_EQ(status.at("jobs").size(), 1u);
  second.Stop();
  EXPECT_TRUE(second.runner()->wal_stats().recovered);
  EXPECT_EQ(second.runner()->idem_duplicates(), 1);
  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace rubberband
