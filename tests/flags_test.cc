#include "src/common/flags.h"

#include <gtest/gtest.h>

namespace rubberband {
namespace {

Flags ParseAll(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags flags = ParseAll({"--trials=32", "--deadline-min=20.5", "--name=abc"});
  EXPECT_EQ(flags.GetInt("trials", 0), 32);
  EXPECT_DOUBLE_EQ(flags.GetDouble("deadline-min", 0.0), 20.5);
  EXPECT_EQ(flags.GetString("name"), "abc");
}

TEST(Flags, SpaceSeparatedForm) {
  const Flags flags = ParseAll({"--trials", "64", "--name", "xyz"});
  EXPECT_EQ(flags.GetInt("trials", 0), 64);
  EXPECT_EQ(flags.GetString("name"), "xyz");
}

TEST(Flags, BareSwitches) {
  const Flags flags = ParseAll({"--render", "--spot=false", "--verbose=1"});
  EXPECT_TRUE(flags.GetBool("render"));
  EXPECT_FALSE(flags.GetBool("spot"));
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_FALSE(flags.GetBool("absent"));
  EXPECT_TRUE(flags.GetBool("absent", true));
}

TEST(Flags, SwitchFollowedByFlagDoesNotConsumeIt) {
  const Flags flags = ParseAll({"--render", "--trials=8"});
  EXPECT_TRUE(flags.GetBool("render"));
  EXPECT_EQ(flags.GetInt("trials", 0), 8);
}

TEST(Flags, FallbacksWhenAbsent) {
  const Flags flags = ParseAll({});
  EXPECT_EQ(flags.GetInt("trials", 7), 7);
  EXPECT_EQ(flags.GetInt64("big", 1ll << 40), 1ll << 40);
  EXPECT_EQ(flags.GetString("name", "default"), "default");
}

TEST(Flags, PositionalArgumentsPreserved) {
  const Flags flags = ParseAll({"plan", "--trials=2", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "plan");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(Flags, MalformedFlagThrows) {
  EXPECT_THROW(ParseAll({"---bad"}), std::invalid_argument);
  EXPECT_THROW(ParseAll({"--"}), std::invalid_argument);
}

TEST(Flags, UnusedKeysDetectsTypos) {
  const Flags flags = ParseAll({"--trials=2", "--typo=1"});
  EXPECT_EQ(flags.GetInt("trials", 0), 2);
  const std::vector<std::string> unused = flags.UnusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

}  // namespace
}  // namespace rubberband
