// Mixed-scheduler service traces: one multi-tenant day admitting sha,
// hyperband, asha, random, and grid experiments side by side — everything
// completes, the whole day replays bit-for-bit, and an experiment-submitted
// SHA job is indistinguishable from one submitted through the legacy
// Submit() path.

#include "src/service/tuning_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/rubberband.h"

namespace rubberband {
namespace {

CloudProfile ServiceCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(30.0, 60.0);
  return cloud;
}

ServiceConfig BaseConfig() {
  ServiceConfig config;
  config.cloud = ServiceCloud();
  config.capacity_gpus = 128;
  config.seed = 11;
  return config;
}

ExperimentIR MakeIr(SchedulerKind kind) {
  ExperimentIR ir;
  ir.scheduler = kind;
  switch (kind) {
    case SchedulerKind::kSha:
      ir.num_trials = 8;
      ir.min_iters = 2;
      ir.max_iters = 14;
      ir.reduction_factor = 2;
      break;
    case SchedulerKind::kHyperband:
      ir.max_iters = 9;
      ir.reduction_factor = 3;
      break;
    case SchedulerKind::kAsha:
      ir.num_trials = 9;
      ir.min_iters = 2;
      ir.max_iters = 18;
      ir.reduction_factor = 3;
      break;
    case SchedulerKind::kRandom:
      ir.num_trials = 6;
      ir.max_iters = 10;
      break;
    case SchedulerKind::kGrid:
      ir.max_iters = 8;
      ir.grid = GridShape{2, 2, 2};
      break;
  }
  return ir;
}

ExperimentRequest MakeExperiment(SchedulerKind kind, Seconds submit_at, Seconds deadline) {
  ExperimentRequest request;
  request.name = ToString(kind);
  request.ir = MakeIr(kind);
  request.workload = ResNet101Cifar10();
  request.submit_at = submit_at;
  request.deadline = deadline;
  return request;
}

ServiceReport RunMixedTrace(const ServiceConfig& config) {
  TuningService service(config);
  Seconds submit_at = 0.0;
  for (const SchedulerKind kind :
       {SchedulerKind::kSha, SchedulerKind::kHyperband, SchedulerKind::kAsha,
        SchedulerKind::kRandom, SchedulerKind::kGrid}) {
    service.SubmitExperiment(MakeExperiment(kind, submit_at, 2.0 * 3600.0));
    submit_at += 60.0;
  }
  return service.Run();
}

TEST(MixedScheduler, FiveSchedulerKindsShareOneTrace) {
  ServiceConfig config = BaseConfig();
  config.warm_pool.max_parked = 16;
  config.warm_pool.max_idle_seconds = 600.0;

  const ServiceReport report = RunMixedTrace(config);

  // sha(1) + hyperband(3 brackets) + asha(1) + random(1) + grid(1) = 7 jobs.
  ASSERT_EQ(report.jobs.size(), 7u);
  EXPECT_EQ(report.completed, 7);
  EXPECT_EQ(report.rejected, 0);
  for (const JobOutcome& job : report.jobs) {
    EXPECT_EQ(job.state, JobState::kCompleted) << job.name;
    EXPECT_GT(job.best_accuracy, 0.0) << job.name;
    EXPECT_GT(job.jct, 0.0) << job.name;
  }

  // Single-unit experiments keep their tenant name verbatim; hyperband's
  // brackets are named after their unit.
  std::vector<std::string> names;
  names.reserve(report.jobs.size());
  for (const JobOutcome& job : report.jobs) {
    names.push_back(job.name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "sha"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "asha"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "random"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "grid"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "hyperband/bracket-2"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "hyperband/bracket-0"), names.end());

  EXPECT_GT(report.total_cost.Total().dollars(), 0.0);
  EXPECT_GT(report.aggregate_utilization, 0.0);
}

TEST(MixedScheduler, MixedTraceReplaysBitForBit) {
  const ServiceConfig config = BaseConfig();
  const ServiceReport a = RunMixedTrace(config);
  const ServiceReport b = RunMixedTrace(config);

  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].name, b.jobs[i].name);
    EXPECT_EQ(a.jobs[i].state, b.jobs[i].state);
    EXPECT_EQ(a.jobs[i].jct, b.jobs[i].jct) << a.jobs[i].name;
    EXPECT_EQ(a.jobs[i].finished_at, b.jobs[i].finished_at) << a.jobs[i].name;
    EXPECT_EQ(a.jobs[i].cost, b.jobs[i].cost) << a.jobs[i].name;
    EXPECT_EQ(a.jobs[i].best_accuracy, b.jobs[i].best_accuracy) << a.jobs[i].name;
  }
  EXPECT_EQ(a.total_cost.Total(), b.total_cost.Total());
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.instance_launches, b.instance_launches);
}

TEST(MixedScheduler, ShaExperimentMatchesLegacySubmit) {
  // A SHA experiment submitted through the IR front end must be
  // indistinguishable from the legacy JobRequest path: same job name, same
  // plan, same makespan, same billed cost, same winner.
  const ServiceConfig config = BaseConfig();

  JobRequest legacy_job;
  legacy_job.name = "tenant-a";
  legacy_job.spec = MakeSha(8, 2, 14, 2);
  legacy_job.workload = ResNet101Cifar10();
  legacy_job.deadline = 3600.0;
  TuningService legacy(config);
  legacy.Submit(legacy_job);
  const ServiceReport legacy_report = legacy.Run();

  ExperimentRequest experiment;
  experiment.name = "tenant-a";
  experiment.ir = MakeIr(SchedulerKind::kSha);
  experiment.workload = ResNet101Cifar10();
  experiment.deadline = 3600.0;
  TuningService compiled(config);
  const std::vector<size_t> ids = compiled.SubmitExperiment(experiment);
  EXPECT_EQ(ids.size(), 1u);
  const ServiceReport compiled_report = compiled.Run();

  ASSERT_EQ(legacy_report.jobs.size(), 1u);
  ASSERT_EQ(compiled_report.jobs.size(), 1u);
  const JobOutcome& l = legacy_report.jobs[0];
  const JobOutcome& c = compiled_report.jobs[0];
  EXPECT_EQ(c.name, l.name);
  EXPECT_EQ(c.state, JobState::kCompleted);
  EXPECT_EQ(c.plan, l.plan);
  EXPECT_EQ(c.jct, l.jct);
  EXPECT_EQ(c.finished_at, l.finished_at);
  EXPECT_EQ(c.cost, l.cost);
  EXPECT_EQ(c.best_accuracy, l.best_accuracy);
  EXPECT_EQ(compiled_report.total_cost.Total(), legacy_report.total_cost.Total());
}

TEST(MixedScheduler, ExperimentBudgetSplitsAcrossBrackets) {
  // A hyperband experiment with a budget spreads it over the brackets in
  // proportion to their training work; every bracket must still be admitted.
  ServiceConfig config = BaseConfig();
  ExperimentRequest experiment = MakeExperiment(SchedulerKind::kHyperband, 0.0, 2.0 * 3600.0);
  experiment.budget = Money::FromDollars(500.0);

  TuningService service(config);
  const std::vector<size_t> ids = service.SubmitExperiment(experiment);
  EXPECT_EQ(ids.size(), 3u);
  const ServiceReport report = service.Run();
  EXPECT_EQ(report.completed, 3);
  EXPECT_EQ(report.rejected, 0);
}

TEST(MixedScheduler, InvalidExperimentIsRejectedAtSubmit) {
  TuningService service(BaseConfig());
  ExperimentRequest experiment = MakeExperiment(SchedulerKind::kSha, 0.0, 3600.0);
  experiment.ir.num_trials = 0;
  EXPECT_THROW(service.SubmitExperiment(experiment), std::invalid_argument);
}

}  // namespace
}  // namespace rubberband
