// Execution-DAG construction and Algorithm 1 simulation, verified against
// hand-computed critical paths and costs on deterministic profiles.

#include <gtest/gtest.h>

#include "src/dag/builder.h"
#include "src/dag/simulate.h"
#include "src/spec/sha.h"

namespace rubberband {
namespace {

// 10 s per iteration on one GPU, perfect halving at 2/4, startup 0, sync 0;
// everything constant so critical paths are exact.
ModelProfile DeterministicProfile() {
  ModelProfile profile;
  profile.iter_latency_1gpu = Distribution::Constant(10.0);
  profile.scaling = ScalingFunction::FromPoints({{1, 1.0}, {2, 2.0}, {4, 4.0}});
  return profile;
}

CloudProfile InstantCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();  // 4 GPUs
  cloud.provisioning = ProvisioningModel::Instant();
  return cloud;
}

int CountType(const ExecutionDag& dag, NodeType type) {
  int count = 0;
  for (int id = 0; id < dag.size(); ++id) {
    count += dag.type(id) == type ? 1 : 0;
  }
  return count;
}

TEST(GpusPerTrial, FairShareRules) {
  EXPECT_EQ(GpusPerTrial(8, 4), 2);
  EXPECT_EQ(GpusPerTrial(8, 8), 1);
  EXPECT_EQ(GpusPerTrial(4, 8), 1);   // queued: one GPU each
  EXPECT_EQ(GpusPerTrial(32, 1), 32);
  EXPECT_THROW(GpusPerTrial(0, 1), std::invalid_argument);
}

TEST(ColocatedCapacity, NodePackingArithmetic) {
  // 3-GPU gangs on 4-GPU nodes: one per node.
  EXPECT_EQ(ColocatedCapacity(10, 3, 8, 4), 8);
  // 2-GPU gangs: two per node.
  EXPECT_EQ(ColocatedCapacity(10, 2, 5, 4), 10);
  // Gangs bigger than a node are minimal-span by construction.
  EXPECT_EQ(ColocatedCapacity(3, 8, 6, 4), 3);
}

TEST(DagBuilder, ParallelStageShape) {
  ExperimentSpec spec;
  spec.AddStage(4, 6).AddStage(2, 12);
  const AllocationPlan plan({8, 4});
  const ExecutionDag dag = BuildDag(spec, plan, DeterministicProfile(), InstantCloud());

  // Stage 0: SCALE + 2 INIT (8 GPUs = 2 instances) + 4 TRAIN + SYNC.
  // Stage 1: no scale (shrinking) + 2 TRAIN + SYNC.
  EXPECT_EQ(CountType(dag, NodeType::kScale), 1);
  EXPECT_EQ(CountType(dag, NodeType::kInitInstance), 2);
  EXPECT_EQ(CountType(dag, NodeType::kTrain), 6);
  EXPECT_EQ(CountType(dag, NodeType::kSync), 2);

  ASSERT_EQ(dag.stages().size(), 2u);
  EXPECT_EQ(dag.stages()[0].instances, 2);
  EXPECT_EQ(dag.stages()[0].gpus_per_trial, 2);
  EXPECT_EQ(dag.stages()[1].instances, 1);
  EXPECT_EQ(dag.stages()[1].gpus_per_trial, 2);
  EXPECT_EQ(dag.TotalInstancesProvisioned(), 2);
}

TEST(DagBuilder, ScaleUpMidJobAddsNodes) {
  ExperimentSpec spec;
  spec.AddStage(2, 1).AddStage(1, 1);
  const AllocationPlan plan({2, 8});  // grows from 1 to 2 instances
  const ExecutionDag dag = BuildDag(spec, plan, DeterministicProfile(), InstantCloud());
  EXPECT_EQ(CountType(dag, NodeType::kScale), 2);
  EXPECT_EQ(CountType(dag, NodeType::kInitInstance), 2);  // 1 + 1
  EXPECT_EQ(dag.TotalInstancesProvisioned(), 2);
  // The second SCALE must depend on the first stage's SYNC.
  const int sync0 = dag.stages()[0].sync_node;
  const int scale1 = dag.stages()[1].scale_node;
  ASSERT_GE(scale1, 0);
  ASSERT_EQ(dag.deps(scale1).size(), 1u);
  EXPECT_EQ(dag.deps(scale1)[0], sync0);
}

TEST(DagBuilder, QueuedStageBuildsSerialChains) {
  ExperimentSpec spec;
  spec.AddStage(6, 5);
  const AllocationPlan plan({2});  // 2 GPU slots for 6 trials
  const ExecutionDag dag = BuildDag(spec, plan, DeterministicProfile(), InstantCloud());

  // 6 TRAIN nodes in 2 chains of 3.
  EXPECT_EQ(CountType(dag, NodeType::kTrain), 6);
  int chained = 0;
  for (int id = 0; id < dag.size(); ++id) {
    if (dag.type(id) == NodeType::kTrain) {
      EXPECT_EQ(dag.gpus(id), 1);
      for (int dep : dag.deps(id)) {
        chained += dag.type(dep) == NodeType::kTrain ? 1 : 0;
      }
    }
  }
  EXPECT_EQ(chained, 4);  // 2 chain heads, 4 chained followers
}

TEST(DagBuilder, SingleGpuDegeneratesToFullSequence) {
  ExperimentSpec spec;
  spec.AddStage(4, 2);
  const AllocationPlan plan({1});
  const ExecutionDag dag = BuildDag(spec, plan, DeterministicProfile(), InstantCloud());
  const PlanEstimate estimate =
      SimulatePlan(dag, DeterministicProfile(), InstantCloud(), {1, 0});
  // 4 trials x 2 iters x 10 s, fully serial.
  EXPECT_NEAR(estimate.jct_mean, 80.0, 1e-9);
}

TEST(DagBuilder, SyncDependsOnWholeFrontier) {
  ExperimentSpec spec;
  spec.AddStage(3, 1);
  const AllocationPlan plan({3});
  const ExecutionDag dag = BuildDag(spec, plan, DeterministicProfile(), InstantCloud());
  const StageMeta& meta = dag.stages()[0];
  EXPECT_EQ(dag.deps(meta.sync_node).size(), 3u);
}

TEST(DagBuilder, FragmentedTrialsGetPenalizedLatency) {
  ModelProfile profile = DeterministicProfile();
  profile.cross_node_latency_factor = 2.0;
  ExperimentSpec spec;
  spec.AddStage(10, 1);
  const AllocationPlan plan({30});  // gpt=3 on 4-GPU nodes: 8 colocated, 2 split
  const ExecutionDag dag = BuildDag(spec, plan, profile, InstantCloud());
  EXPECT_EQ(dag.stages()[0].fragmented_trials, 2);
  const PlanEstimate estimate = SimulatePlan(dag, profile, InstantCloud(), {1, 0});
  // Critical path goes through a penalized trial: 10 s / speedup(3) * 2.
  const double expected = 10.0 / profile.scaling.Speedup(3) * 2.0;
  EXPECT_NEAR(estimate.jct_mean, expected, 1e-9);
}

TEST(DagBuilder, ValidatesInputs) {
  ExperimentSpec spec;
  spec.AddStage(2, 1);
  EXPECT_THROW(BuildDag(spec, AllocationPlan({2, 2}), DeterministicProfile(), InstantCloud()),
               std::invalid_argument);
  CloudProfile cpu_only = InstantCloud();
  cpu_only.instance = R5_4xlarge();
  EXPECT_THROW(BuildDag(spec, AllocationPlan({2}), DeterministicProfile(), cpu_only),
               std::invalid_argument);
}

TEST(DagSimulate, CriticalPathIncludesProvisioning) {
  CloudProfile cloud = InstantCloud();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  ExperimentSpec spec;
  spec.AddStage(2, 3);
  const AllocationPlan plan({2});
  const ExecutionDag dag = BuildDag(spec, plan, DeterministicProfile(), cloud);
  const PlanEstimate estimate = SimulatePlan(dag, DeterministicProfile(), cloud, {1, 0});
  // 15 s provisioning + 3 iters x 10 s (gpt=1).
  EXPECT_NEAR(estimate.jct_mean, 45.0, 1e-9);
}

TEST(DagSimulate, PerInstanceCostBillsStageSpans) {
  ExperimentSpec spec;
  spec.AddStage(4, 10).AddStage(1, 10);
  const AllocationPlan plan({4, 4});
  CloudProfile cloud = InstantCloud();
  cloud.pricing.minimum_billed_seconds = 0.0;
  const ModelProfile profile = DeterministicProfile();
  const ExecutionDag dag = BuildDag(spec, plan, profile, cloud);
  const PlanEstimate estimate = SimulatePlan(dag, profile, cloud, {1, 0});
  // Stage 0: 4 trials x 1 GPU x 100 s; stage 1: 1 trial x 4 GPUs x 25 s.
  EXPECT_NEAR(estimate.jct_mean, 125.0, 1e-9);
  // One instance alive for the full 125 s.
  const double expected_cost = 12.24 / 3600.0 * 125.0;
  EXPECT_NEAR(estimate.cost_mean.dollars(), expected_cost, 1e-6);
}

TEST(DagSimulate, PerInstanceReleasesInstancesOnScaleDown) {
  ExperimentSpec spec;
  spec.AddStage(8, 10).AddStage(1, 10);
  const AllocationPlan plan({8, 4});  // 2 instances then 1
  CloudProfile cloud = InstantCloud();
  cloud.pricing.minimum_billed_seconds = 0.0;
  const ModelProfile profile = DeterministicProfile();
  const ExecutionDag dag = BuildDag(spec, plan, profile, cloud);
  const PlanEstimate estimate = SimulatePlan(dag, profile, cloud, {1, 0});
  // Stage 0 is 100 s on 2 instances; stage 1 is 25 s on 1 instance.
  const double expected_cost = 12.24 / 3600.0 * (2 * 100.0 + 1 * 25.0);
  EXPECT_NEAR(estimate.cost_mean.dollars(), expected_cost, 1e-6);
}

TEST(DagSimulate, MinimumChargeAppliesPerAcquisition) {
  ExperimentSpec spec;
  spec.AddStage(4, 1);
  const AllocationPlan plan({4});
  CloudProfile cloud = InstantCloud();  // default 60 s minimum
  const ModelProfile profile = DeterministicProfile();
  const ExecutionDag dag = BuildDag(spec, plan, profile, cloud);
  const PlanEstimate estimate = SimulatePlan(dag, profile, cloud, {1, 0});
  EXPECT_NEAR(estimate.jct_mean, 10.0, 1e-9);
  // 10 s of use still bills 60 s.
  EXPECT_NEAR(estimate.cost_mean.dollars(), 12.24 / 3600.0 * 60.0, 1e-6);
}

TEST(DagSimulate, PerFunctionBillsOnlyTrainGpuSeconds) {
  ExperimentSpec spec;
  spec.AddStage(4, 10).AddStage(1, 10);
  const AllocationPlan plan({4, 4});
  CloudProfile cloud = InstantCloud();
  cloud.pricing.billing = BillingModel::kPerFunction;
  const ModelProfile profile = DeterministicProfile();
  const ExecutionDag dag = BuildDag(spec, plan, profile, cloud);
  const PlanEstimate estimate = SimulatePlan(dag, profile, cloud, {1, 0});
  // GPU-seconds: stage 0 = 4 x 1 x 100; stage 1 = 1 x 4 x 25. Rate =
  // 12.24 / (4 gpus x 3600).
  const double expected_cost = 12.24 / (4 * 3600.0) * (400.0 + 100.0);
  EXPECT_NEAR(estimate.cost_mean.dollars(), expected_cost, 1e-6);
}

TEST(DagSimulate, DataIngressChargedPerProvisionedInstance) {
  ModelProfile profile = DeterministicProfile();
  profile.dataset_gb = 150.0;
  CloudProfile cloud = InstantCloud();
  cloud.pricing.data_price_per_gb = Money::FromCents(1);
  ExperimentSpec spec;
  spec.AddStage(8, 1);
  const ExecutionDag dag = BuildDag(spec, AllocationPlan({8}), profile, cloud);
  const PlanEstimate estimate = SimulatePlan(dag, profile, cloud, {1, 0});
  EXPECT_NEAR(estimate.data_cost_mean.dollars(), 0.01 * 150.0 * 2, 1e-6);
}

TEST(DagSimulate, StragglersInflatePerInstanceButNotPerFunction) {
  // The Figure 9 mechanism: under per-instance billing every instance waits
  // for the slowest trial at the barrier; per-function releases resources
  // as each trial finishes.
  ModelProfile profile = DeterministicProfile();
  profile.iter_latency_1gpu = Distribution::TruncatedNormal(10.0, 8.0, 0.0);
  ExperimentSpec spec;
  spec.AddStage(16, 4);
  const AllocationPlan plan({16});
  CloudProfile per_instance = InstantCloud();
  per_instance.pricing.minimum_billed_seconds = 0.0;
  CloudProfile per_function = per_instance;
  per_function.pricing.billing = BillingModel::kPerFunction;

  const ExecutionDag dag = BuildDag(spec, plan, profile, per_instance);
  const PlanEstimate inst = SimulatePlan(dag, profile, per_instance, {200, 1});
  const PlanEstimate func = SimulatePlan(dag, profile, per_function, {200, 1});
  EXPECT_GT(inst.cost_mean.dollars(), 1.25 * func.cost_mean.dollars());
}

TEST(DagSimulate, SampleCountControlsEstimateStability) {
  ModelProfile profile = DeterministicProfile();
  profile.iter_latency_1gpu = Distribution::TruncatedNormal(10.0, 3.0, 0.0);
  ExperimentSpec spec;
  spec.AddStage(8, 8);
  const ExecutionDag dag = BuildDag(spec, AllocationPlan({8}), profile, InstantCloud());
  const PlanEstimate small = SimulatePlan(dag, profile, InstantCloud(), {5, 1});
  const PlanEstimate large = SimulatePlan(dag, profile, InstantCloud(), {500, 1});
  EXPECT_GT(large.jct_p95, large.jct_mean);
  EXPECT_NEAR(small.jct_mean, large.jct_mean, 0.1 * large.jct_mean);
}

TEST(ExecutionDag, RejectsForwardDependencies) {
  ExecutionDag dag;
  const int forward[] = {5};
  NodeSpec node;
  node.deps = forward;
  EXPECT_THROW(dag.AddNode(node), std::logic_error);
  // The failed append must not leave a partial node behind.
  EXPECT_EQ(dag.size(), 0);
}

TEST(ExecutionDag, FrontierTracksSuccessorlessNodes) {
  ExecutionDag dag;
  const int a = dag.AddNode(NodeSpec{});
  const int first[] = {a};
  NodeSpec b;
  b.deps = first;
  const int b_id = dag.AddNode(b);
  EXPECT_EQ(dag.Frontier(), std::vector<int>{b_id});
}

TEST(ExecutionDag, ToStringListsNodes) {
  ExperimentSpec spec;
  spec.AddStage(2, 1);
  const ExecutionDag dag =
      BuildDag(spec, AllocationPlan({2}), DeterministicProfile(), InstantCloud());
  const std::string s = dag.ToString();
  EXPECT_NE(s.find("SCALE"), std::string::npos);
  EXPECT_NE(s.find("TRAIN"), std::string::npos);
  EXPECT_NE(s.find("SYNC"), std::string::npos);
}

}  // namespace
}  // namespace rubberband
