#include "src/common/stats.h"

#include <gtest/gtest.h>

#include "src/common/time.h"

namespace rubberband {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, MeanStdDevMinMax) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroStdDev) {
  RunningStats stats;
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(Percentile, EmptyReturnsZero) { EXPECT_EQ(Percentile({}, 50.0), 0.0); }

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> values{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0}, 50.0), 1.5);
  EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(VectorStats, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.13809, 1e-4);
}

TEST(FormatDuration, MinutesSeconds) {
  EXPECT_EQ(FormatDuration(0.0), "00:00");
  EXPECT_EQ(FormatDuration(59.4), "00:59");
  EXPECT_EQ(FormatDuration(1164.0), "19:24");
  EXPECT_EQ(FormatDuration(Minutes(20)), "20:00");
}

TEST(FormatDuration, HoursRollOver) {
  EXPECT_EQ(FormatDuration(3600.0), "1:00:00");
  EXPECT_EQ(FormatDuration(Hours(1) + Minutes(2) + 3), "1:02:03");
}

TEST(FormatDuration, Negative) { EXPECT_EQ(FormatDuration(-61.0), "-01:01"); }

TEST(TimeHelpers, Conversions) {
  EXPECT_DOUBLE_EQ(Minutes(1.5), 90.0);
  EXPECT_DOUBLE_EQ(Hours(2.0), 7200.0);
}

}  // namespace
}  // namespace rubberband
