#include "src/model/profiler.h"

#include <gtest/gtest.h>

#include "src/trainer/model_zoo.h"

namespace rubberband {
namespace {

TEST(Profiler, FitsScalingCloseToGroundTruth) {
  const WorkloadSpec workload = ResNet101Cifar10();
  ProfilerOptions options;
  options.iters_per_allocation = 64;  // tight fit for the test
  const ProfileResult result = ProfileWorkload(workload, options);

  for (int gpus : {1, 2, 4, 8, 16, 32}) {
    const double truth = workload.true_scaling.Speedup(gpus);
    const double fitted = result.profile.scaling.Speedup(gpus);
    EXPECT_NEAR(fitted, truth, 0.15 * truth) << "gpus=" << gpus;
  }
}

TEST(Profiler, LatencyDistributionMatchesWorkload) {
  const WorkloadSpec workload = ResNet101Cifar10();
  ProfilerOptions options;
  options.iters_per_allocation = 128;
  const ProfileResult result = ProfileWorkload(workload, options);
  EXPECT_NEAR(result.profile.iter_latency_1gpu.Mean(), workload.base_iter_seconds,
              0.1 * workload.base_iter_seconds);
  EXPECT_GT(result.profile.iter_latency_1gpu.StdDev(), 0.0);
}

TEST(Profiler, CarriesWorkloadMetadata) {
  const ProfileResult result = ProfileWorkload(BertRte());
  EXPECT_EQ(result.profile.name, "bert-rte");
  EXPECT_NEAR(result.profile.dataset_gb, RteGlue().size_gb, 1e-12);
  EXPECT_DOUBLE_EQ(result.profile.trial_startup_seconds, BertRte().trial_startup_seconds);
  EXPECT_DOUBLE_EQ(result.profile.sync_seconds, BertRte().sync_seconds);
}

TEST(Profiler, MeasuresCrossNodePenalty) {
  const WorkloadSpec workload = ResNet101Cifar10();
  const ProfileResult result = ProfileWorkload(workload);
  EXPECT_NEAR(result.profile.cross_node_latency_factor, workload.cross_node_latency_factor, 0.1);
}

TEST(Profiler, ProfilingTimeIsMinutesNotHours) {
  // The paper's point: profiling is cheap relative to the job. Default
  // options should cost well under an hour of simulated GPU time.
  const ProfileResult result = ProfileWorkload(ResNet101Cifar10());
  EXPECT_GT(result.profiling_seconds, 0.0);
  EXPECT_LT(result.profiling_seconds, 3600.0);
}

TEST(Profiler, DeterministicForFixedSeed) {
  const WorkloadSpec workload = ResNet50(Cifar10(), 512);
  ProfilerOptions options;
  options.seed = 99;
  const ProfileResult a = ProfileWorkload(workload, options);
  const ProfileResult b = ProfileWorkload(workload, options);
  EXPECT_DOUBLE_EQ(a.profile.scaling.Speedup(8), b.profile.scaling.Speedup(8));
  EXPECT_DOUBLE_EQ(a.profiling_seconds, b.profiling_seconds);
}

}  // namespace
}  // namespace rubberband
