// Multi-tenant tuning service: fair-share arithmetic, admission control,
// deterministic multi-job execution on one shared simulation, and the
// warm-pool cost/latency win over cold provisioning.

#include "src/service/tuning_service.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/rubberband.h"

namespace rubberband {
namespace {

// ---------------------------------------------------------------------------
// FairShares: weighted max-min division of the service's GPU capacity.

TEST(FairShare, AmpleCapacityGivesEveryoneTheirDemand) {
  const std::vector<int> shares = FairShares(100, {{30, 1.0}, {20, 1.0}, {10, 1.0}});
  EXPECT_EQ(shares, (std::vector<int>{30, 20, 10}));
}

TEST(FairShare, EqualWeightsSplitContendedCapacityEvenly) {
  const std::vector<int> shares = FairShares(8, {{8, 1.0}, {8, 1.0}});
  EXPECT_EQ(shares, (std::vector<int>{4, 4}));
}

TEST(FairShare, SmallDemandsRollTheirSlackForward) {
  // Job 0 needs only 2 of its 4-GPU slice; the slack flows to the others.
  const std::vector<int> shares = FairShares(12, {{2, 1.0}, {20, 1.0}, {20, 1.0}});
  EXPECT_EQ(shares, (std::vector<int>{2, 5, 5}));
}

TEST(FairShare, WeightsBiasTheSplit) {
  const std::vector<int> shares = FairShares(9, {{9, 2.0}, {9, 1.0}});
  EXPECT_EQ(shares, (std::vector<int>{6, 3}));
}

TEST(FairShare, IntegerRemainderIsHandedOutDeterministically) {
  // 7 GPUs over two equal contenders: the tie breaks toward the earlier
  // submission, every time.
  const std::vector<int> shares = FairShares(7, {{7, 1.0}, {7, 1.0}});
  EXPECT_EQ(shares[0] + shares[1], 7);
  EXPECT_EQ(shares, FairShares(7, {{7, 1.0}, {7, 1.0}}));
}

TEST(FairShare, EdgeCases) {
  EXPECT_TRUE(FairShares(10, {}).empty());
  EXPECT_EQ(FairShares(0, {{5, 1.0}}), (std::vector<int>{0}));
  EXPECT_EQ(FairShares(10, {{0, 1.0}, {4, 1.0}}), (std::vector<int>{0, 4}));
}

// ---------------------------------------------------------------------------
// TuningService.

CloudProfile ServiceCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(30.0, 60.0);
  return cloud;
}

JobRequest MakeJob(const std::string& name, Seconds submit_at, Seconds deadline) {
  JobRequest job;
  job.name = name;
  job.spec = MakeSha(8, 2, 14, 2);
  job.workload = ResNet101Cifar10();
  job.submit_at = submit_at;
  job.deadline = deadline;
  return job;
}

ServiceConfig BaseConfig() {
  ServiceConfig config;
  config.cloud = ServiceCloud();
  config.capacity_gpus = 128;
  config.seed = 11;
  return config;
}

ServiceReport RunTrace(const ServiceConfig& config, const std::vector<JobRequest>& trace) {
  TuningService service(config);
  for (const JobRequest& job : trace) {
    service.Submit(job);
  }
  return service.Run();
}

TEST(Service, EightConcurrentJobsRunDeterministically) {
  ServiceConfig config = BaseConfig();
  config.warm_pool.max_parked = 16;
  config.warm_pool.max_idle_seconds = 600.0;

  std::vector<JobRequest> trace;
  for (int i = 0; i < 8; ++i) {
    trace.push_back(MakeJob("job-" + std::to_string(i), 30.0 * i, 3600.0));
  }

  const ServiceReport a = RunTrace(config, trace);
  const ServiceReport b = RunTrace(config, trace);

  EXPECT_EQ(a.completed, 8);
  EXPECT_EQ(a.rejected, 0);
  EXPECT_EQ(a.deadline_misses, 0);
  ASSERT_EQ(a.jobs.size(), 8u);
  ASSERT_EQ(b.jobs.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a.jobs[i].state, JobState::kCompleted) << a.jobs[i].name;
    EXPECT_TRUE(a.jobs[i].met_deadline) << a.jobs[i].name;
    EXPECT_GT(a.jobs[i].best_accuracy, 0.5);
    // Same seed, same trace: the entire multi-tenant day replays bit-for-bit.
    EXPECT_DOUBLE_EQ(a.jobs[i].jct, b.jobs[i].jct) << a.jobs[i].name;
    EXPECT_DOUBLE_EQ(a.jobs[i].finished_at, b.jobs[i].finished_at);
    EXPECT_EQ(a.jobs[i].cost, b.jobs[i].cost);
  }
  EXPECT_EQ(a.total_cost.Total(), b.total_cost.Total());
  EXPECT_EQ(a.instance_launches, b.instance_launches);
  EXPECT_EQ(a.warm.warm_hits, b.warm.warm_hits);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Service, AdmittedJobsMeetTheirDeadlineOrAreRejectedUpFront) {
  ServiceConfig config = BaseConfig();

  std::vector<JobRequest> trace;
  trace.push_back(MakeJob("feasible-a", 0.0, 3600.0));
  // No plan finishes an 8-trial SHA sweep in 45 seconds: rejected at
  // admission, never run late.
  trace.push_back(MakeJob("impossible", 10.0, 45.0));
  trace.push_back(MakeJob("feasible-b", 20.0, 3600.0));

  const ServiceReport report = RunTrace(config, trace);
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.rejected, 1);
  EXPECT_EQ(report.deadline_misses, 0);
  EXPECT_EQ(report.jobs[1].state, JobState::kRejectedInfeasible);
  for (size_t i : {size_t{0}, size_t{2}}) {
    EXPECT_EQ(report.jobs[i].state, JobState::kCompleted);
    EXPECT_TRUE(report.jobs[i].met_deadline);
    EXPECT_LE(report.jobs[i].finished_at, report.jobs[i].deadline_at);
  }
}

TEST(Service, WarmPoolCutsProvisioningEventsAndCost) {
  // Four identical jobs, two at a time through an 8-GPU cluster. The two
  // queued jobs dequeue the instant a predecessor finishes — exactly when
  // its fleet lands in the pool — so their scale-up is served warm. Init
  // latency is steep (300s, billed from launch), so each avoided
  // provisioning event saves far more than the pool's parked idling costs.
  ServiceConfig config = BaseConfig();
  config.cloud.provisioning = ProvisioningModel::Fixed(30.0, 300.0);
  config.capacity_gpus = 8;
  config.seed = 3;

  std::vector<JobRequest> trace;
  for (int i = 0; i < 4; ++i) {
    trace.push_back(MakeJob("job-" + std::to_string(i), 1.0 * i, 4800.0));
  }

  ServiceConfig cold = config;
  cold.warm_pool.max_parked = 0;
  ServiceConfig warm = config;
  warm.warm_pool.max_parked = 8;
  warm.warm_pool.max_idle_seconds = 300.0;

  const ServiceReport cold_report = RunTrace(cold, trace);
  const ServiceReport warm_report = RunTrace(warm, trace);

  ASSERT_EQ(cold_report.completed, 4);
  ASSERT_EQ(warm_report.completed, 4);
  EXPECT_EQ(cold_report.deadline_misses, 0);
  EXPECT_EQ(warm_report.deadline_misses, 0);

  // The pool absorbed real provisioning events (each a paid init period).
  EXPECT_GT(warm_report.warm.warm_hits, 0);
  EXPECT_GT(warm_report.warm.HitRate(), 0.0);
  EXPECT_GT(warm_report.warm.init_seconds_saved, 0.0);
  EXPECT_LT(warm_report.instance_launches, cold_report.instance_launches);

  // And the account bill — including the pool's parked idle time — is
  // strictly lower than cold provisioning for the same trace.
  EXPECT_LT(warm_report.total_cost.Total().dollars(), cold_report.total_cost.Total().dollars());

  // Warm starts also shave queue+init off successors' time-to-first-trial.
  EXPECT_LE(warm_report.makespan, cold_report.makespan);
}

TEST(Service, CapacityContentionQueuesJobsFifo) {
  ServiceConfig config = BaseConfig();
  config.capacity_gpus = 8;

  std::vector<JobRequest> trace;
  // A 900s deadline forces the first job onto all 8 GPUs; the second must
  // wait for the whole cluster, then replans for its remaining time.
  trace.push_back(MakeJob("first", 0.0, 900.0));
  trace.push_back(MakeJob("second", 10.0, 1900.0));

  const ServiceReport report = RunTrace(config, trace);
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.deadline_misses, 0);
  EXPECT_DOUBLE_EQ(report.jobs[0].queue_wait, 0.0);
  EXPECT_GT(report.jobs[1].queue_wait, 0.0);
  EXPECT_GE(report.jobs[1].started_at, report.jobs[0].finished_at);
  EXPECT_GT(report.mean_queue_wait, 0.0);

  // The dequeue re-plan runs on the same per-job evaluator as admission
  // (only the deadline moved), so the service-level cache metric must show
  // plan estimates served from the memo.
  EXPECT_GT(report.planner_cache.plan_evaluations, 0);
  EXPECT_GT(report.planner_cache.plan_memo_hits, 0);
  EXPECT_GT(report.planner_cache.PlanHitRate(), 0.0);
}

TEST(Service, QueuedJobWhoseDeadlineExpiresIsRejectedStaleNotLate) {
  ServiceConfig config = BaseConfig();
  config.capacity_gpus = 8;

  std::vector<JobRequest> trace;
  // The hog's tight deadline reserves the whole 8-GPU cluster until ~766s.
  trace.push_back(MakeJob("hog", 0.0, 900.0));
  // Feasible at arrival (solo it would finish in ~790s), but by the time
  // the hog releases the cluster only ~240s of its deadline remain.
  trace.push_back(MakeJob("squeezed", 10.0, 1000.0));

  const ServiceReport report = RunTrace(config, trace);
  EXPECT_EQ(report.jobs[0].state, JobState::kCompleted);
  EXPECT_EQ(report.jobs[1].state, JobState::kRejectedStale);
  // The contract: a job the service could not serve on time is reported,
  // never silently finished late.
  EXPECT_EQ(report.deadline_misses, 0);
}

TEST(Service, OvercommitMakesTheFairShareArbiterBind) {
  ServiceConfig config = BaseConfig();
  config.capacity_gpus = 8;
  config.overcommit = 2.0;  // admit two peak-8 jobs onto 8 GPUs

  std::vector<JobRequest> trace;
  // 900s deadlines make both plans peak at the full cluster.
  trace.push_back(MakeJob("a", 0.0, 900.0));
  trace.push_back(MakeJob("b", 0.0, 900.0));

  const ServiceReport report = RunTrace(config, trace);
  EXPECT_EQ(report.completed, 2);
  // Halved clusters run past the 900s deadlines — late, but *reported*
  // late: overcommit trades the admission-time guarantee for throughput.
  EXPECT_EQ(report.deadline_misses, 2);
  const int gpus_per_instance = config.cloud.gpus_per_instance();
  int bound = 0;
  for (const JobOutcome& job : report.jobs) {
    EXPECT_EQ(job.state, JobState::kCompleted);
    EXPECT_LE(job.peak_instances * gpus_per_instance, config.capacity_gpus);
    if (job.peak_instances * gpus_per_instance < job.plan.MaxGpus()) {
      ++bound;
    }
  }
  // At least one job ran below its planned peak: the caps actually bit.
  EXPECT_GT(bound, 0);
}

TEST(Service, BudgetRejectsJobsWhoseCheapestPlanIsTooExpensive) {
  ServiceConfig config = BaseConfig();
  JobRequest job = MakeJob("frugal", 0.0, 3600.0);
  job.budget = Money::FromCents(1);  // no GPU-hour costs a cent
  const ServiceReport report = RunTrace(config, {job});
  EXPECT_EQ(report.jobs[0].state, JobState::kRejectedOverBudget);
  EXPECT_EQ(report.rejected, 1);
  EXPECT_EQ(report.completed, 0);
}

TEST(Service, SubmissionValidation) {
  TuningService service(BaseConfig());
  JobRequest no_deadline = MakeJob("bad", 0.0, 0.0);
  EXPECT_THROW(service.Submit(no_deadline), std::invalid_argument);
  JobRequest time_traveler = MakeJob("bad", -5.0, 100.0);
  EXPECT_THROW(service.Submit(time_traveler), std::invalid_argument);

  service.Submit(MakeJob("ok", 0.0, 3600.0));
  service.Run();
  EXPECT_THROW(service.Run(), std::logic_error);
  EXPECT_THROW(service.Submit(MakeJob("late", 0.0, 3600.0)), std::logic_error);
}

}  // namespace
}  // namespace rubberband
