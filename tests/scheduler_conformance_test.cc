// Cross-scheduler conformance grid: every scheduler kind the plan compiler
// lowers (sha, hyperband, asha, random, grid) runs the full compile ->
// plan -> execute pipeline under the same three contracts the base
// conformance suite enforces case by case:
//   1. The planner's estimate brackets the executed outcome.
//   2. Stage-total timeline spans tile [0, JCT] for every unit.
//   3. Observability is inert: observe off reproduces the run bit-for-bit.
// A checked-in golden (compiled_plans.json) pins the compiled structure,
// the planned allocations, and the executed outcome for all five kinds;
// regenerate with RB_UPDATE_GOLDEN=1 after an intentional change.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/rubberband.h"

#ifndef RB_TEST_GOLDEN_DIR
#error "RB_TEST_GOLDEN_DIR must point at tests/golden"
#endif

namespace rubberband {
namespace {

constexpr Seconds Minutes(double m) { return m * 60.0; }

std::string SchedulerGoldenPath(const std::string& name) {
  return std::string(RB_TEST_GOLDEN_DIR) + "/" + name;
}

std::string ReadGoldenOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool UpdateSchedulerGoldens() { return std::getenv("RB_UPDATE_GOLDEN") != nullptr; }

ExperimentIR IrFor(SchedulerKind kind) {
  ExperimentIR ir;
  ir.scheduler = kind;
  switch (kind) {
    case SchedulerKind::kSha:
      ir.num_trials = 8;
      ir.min_iters = 2;
      ir.max_iters = 14;
      ir.reduction_factor = 2;
      break;
    case SchedulerKind::kHyperband:
      ir.max_iters = 9;
      ir.reduction_factor = 3;
      break;
    case SchedulerKind::kAsha:
      ir.num_trials = 9;
      ir.min_iters = 2;
      ir.max_iters = 18;
      ir.reduction_factor = 3;
      break;
    case SchedulerKind::kRandom:
      ir.num_trials = 6;
      ir.max_iters = 10;
      break;
    case SchedulerKind::kGrid:
      ir.max_iters = 8;
      ir.grid = GridShape{2, 2, 2};
      break;
  }
  return ir;
}

CloudProfile SchedulerCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  return cloud;
}

struct SchedulerRun {
  CompiledPlan compiled;
  CompiledPlannedExperiment planned;
  CompiledExecutionReport report;
};

SchedulerRun RunScheduler(SchedulerKind kind, bool observe) {
  SchedulerRun run;
  run.compiled = CompileExperiment(IrFor(kind));
  const WorkloadSpec workload = ResNet101Cifar10();
  const ModelProfile model = ProfileWorkload(workload).profile;
  const CloudProfile cloud = SchedulerCloud();
  run.planned = PlanCompiledExperiment(run.compiled, model, cloud, Minutes(45));
  ExecutorOptions options;
  options.seed = 7;
  options.observe = observe;
  run.report = ExecuteCompiled(run.compiled, run.planned, workload, cloud, options);
  return run;
}

class SchedulerConformance : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(SchedulerConformance, EstimateBracketsExecutionAndSpansTile) {
  const SchedulerKind kind = GetParam();
  const SchedulerRun run = RunScheduler(kind, /*observe=*/true);

  ASSERT_EQ(run.report.units.size(), run.compiled.units.size());
  ASSERT_GT(run.report.jct, 0.0);
  ASSERT_GT(run.report.best_accuracy, 0.0);
  EXPECT_TRUE(run.planned.feasible);

  // --- 1. The estimate brackets the executed outcome. An ASHA envelope is
  // a staged approximation of an asynchronous run, so its bracket is
  // looser than the staged schedulers' (which execute their plan exactly).
  const bool staged = run.compiled.asha == nullptr;
  const double lo = staged ? 0.5 : 0.2;
  const double hi = staged ? 1.5 : 4.0;
  EXPECT_GE(run.report.jct, run.planned.EstimatedJct() * lo);
  EXPECT_LE(run.report.jct, run.planned.EstimatedJct() * hi);
  EXPECT_GE(run.report.cost.Total().dollars(), run.planned.EstimatedCost().dollars() * lo);
  EXPECT_LE(run.report.cost.Total().dollars(), run.planned.EstimatedCost().dollars() * hi);

  // --- 2. Per unit: stage-total spans tile [0, unit JCT] without gaps.
  // Staged units emit one span per stage; an ASHA unit emits one total.
  for (size_t i = 0; i < run.report.units.size(); ++i) {
    const ExecutionReport& unit = run.report.units[i];
    const std::vector<TimelineSpan> spans = unit.timeline.OfName("stage-total");
    if (staged) {
      ASSERT_EQ(static_cast<int>(spans.size()), run.planned.units[i].plan.num_stages())
          << run.compiled.units[i].name;
    } else {
      ASSERT_EQ(spans.size(), 1u) << run.compiled.units[i].name;
    }
    Seconds previous_end = 0.0;
    for (const TimelineSpan& span : spans) {
      EXPECT_DOUBLE_EQ(span.start, previous_end) << run.compiled.units[i].name;
      previous_end = span.end;
    }
    EXPECT_DOUBLE_EQ(previous_end, unit.jct) << run.compiled.units[i].name;
  }

  // The experiment aggregates its units: slowest JCT, summed cost.
  Seconds slowest = 0.0;
  int64_t summed_micros = 0;
  for (const ExecutionReport& unit : run.report.units) {
    slowest = std::max(slowest, unit.jct);
    summed_micros += unit.cost.Total().micros();
  }
  EXPECT_DOUBLE_EQ(run.report.jct, slowest);
  EXPECT_EQ(run.report.cost.Total().micros(), summed_micros);

  // --- 3. Observability is inert: observe off reproduces every unit. ---
  const SchedulerRun baseline = RunScheduler(kind, /*observe=*/false);
  ASSERT_EQ(baseline.report.units.size(), run.report.units.size());
  EXPECT_DOUBLE_EQ(baseline.report.jct, run.report.jct);
  EXPECT_EQ(baseline.report.cost.Total().micros(), run.report.cost.Total().micros());
  EXPECT_DOUBLE_EQ(baseline.report.best_accuracy, run.report.best_accuracy);
  EXPECT_EQ(baseline.report.best_config.id, run.report.best_config.id);
  for (size_t i = 0; i < run.report.units.size(); ++i) {
    EXPECT_EQ(baseline.report.units[i].trace.ToCsv(), run.report.units[i].trace.ToCsv())
        << run.compiled.units[i].name;
    EXPECT_TRUE(baseline.report.units[i].timeline.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, SchedulerConformance,
                         ::testing::Values(SchedulerKind::kSha, SchedulerKind::kHyperband,
                                           SchedulerKind::kAsha, SchedulerKind::kRandom,
                                           SchedulerKind::kGrid),
                         [](const ::testing::TestParamInfo<SchedulerKind>& param_info) {
                           return ToString(param_info.param);
                         });

// ---- Golden: the compiled structure and outcome of all five kinds ----------

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

std::string RenderSchedulerGolden() {
  std::ostringstream os;
  os << "{\n  \"schedulers\": {\n";
  const std::vector<SchedulerKind> kinds = {SchedulerKind::kSha, SchedulerKind::kHyperband,
                                            SchedulerKind::kAsha, SchedulerKind::kRandom,
                                            SchedulerKind::kGrid};
  for (size_t k = 0; k < kinds.size(); ++k) {
    const SchedulerRun run = RunScheduler(kinds[k], /*observe=*/false);
    os << "    \"" << ToString(kinds[k]) << "\": {\n";
    os << "      \"units\": [\n";
    for (size_t i = 0; i < run.compiled.units.size(); ++i) {
      const CompiledUnit& unit = run.compiled.units[i];
      os << "        {\"name\": \"" << unit.name << "\", \"spec\": \""
         << unit.spec.ToString() << "\", \"configs\": \""
         << (unit.configs.kind == ConfigSource::Kind::kRandom ? "random" : "explicit")
         << "\", \"plan\": \"" << run.planned.units[i].plan.ToString()
         << "\", \"jct_s\": " << FormatDouble(run.report.units[i].jct)
         << ", \"cost_micros\": " << run.report.units[i].cost.Total().micros() << "}"
         << (i + 1 < run.compiled.units.size() ? "," : "") << "\n";
    }
    os << "      ],\n";
    os << "      \"asha_workers\": " << run.planned.asha_workers << ",\n";
    os << "      \"estimated_jct_s\": " << FormatDouble(run.planned.EstimatedJct()) << ",\n";
    os << "      \"executed_jct_s\": " << FormatDouble(run.report.jct) << ",\n";
    os << "      \"cost_micros\": " << run.report.cost.Total().micros() << ",\n";
    os << "      \"best_config\": " << run.report.best_config.id << ",\n";
    os << "      \"best_accuracy\": " << FormatDouble(run.report.best_accuracy) << "\n";
    os << "    }" << (k + 1 < kinds.size() ? "," : "") << "\n";
  }
  os << "  }\n}\n";
  return os.str();
}

TEST(SchedulerGolden, CompiledPlansMatchCheckedInArtifact) {
  const std::string actual = RenderSchedulerGolden();
  const std::string path = SchedulerGoldenPath("compiled_plans.json");
  if (UpdateSchedulerGoldens()) {
    std::ofstream out(path, std::ios::binary);
    out << actual;
    ASSERT_TRUE(out.good()) << "failed to update " << path;
    GTEST_SKIP() << "updated " << path;
  }
  const std::string golden = ReadGoldenOrEmpty(path);
  ASSERT_FALSE(golden.empty()) << path
                               << " is missing; regenerate with RB_UPDATE_GOLDEN=1";
  const JsonValue actual_doc = JsonValue::Parse(actual);
  const JsonValue golden_doc = JsonValue::Parse(golden);
  if (actual_doc != golden_doc) {
    EXPECT_EQ(actual, golden)
        << "compiled_plans.json drifted from its golden; if intentional, regenerate "
           "with RB_UPDATE_GOLDEN=1";
  }
}

}  // namespace
}  // namespace rubberband
