#!/usr/bin/env bash
# Byte-exact CLI baseline check: runs the CLI with the given flags and
# diffs stdout against a checked-in golden transcript. These baselines were
# captured before the metrics registry was threaded through the stack, so
# they are the acceptance gate for "observability off is bit-identical":
# any drift in a default (no --observe/--metrics-json/--chrome-trace) run
# fails the diff.
#
# Usage: cli_baseline.sh <cli-binary> <golden-file> [cli args...]
set -euo pipefail

cli="$1"
golden="$2"
shift 2

actual="$(mktemp)"
trap 'rm -f "$actual"' EXIT

"$cli" "$@" > "$actual"
diff -u "$golden" "$actual"
