// Plan-compiler tests: lowering shape for every scheduler kind, the
// bit-identity regression (compiled-SHA versus the legacy hard-coded path:
// same DAG arenas, same trace bytes, same report), and the ASHA oracle —
// the deprecated src/executor/asha.cc side-car versus compiled-ASHA on the
// engine, held to identical promotion logs and final-trial selection.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/rubberband.h"

namespace rubberband {
namespace {

constexpr Seconds Minutes(double m) { return m * 60.0; }
constexpr Seconds Hours(double h) { return h * 3600.0; }

ExperimentIR ShaIr(int trials, int64_t r, int64_t big_r, int eta) {
  ExperimentIR ir;
  ir.scheduler = SchedulerKind::kSha;
  ir.num_trials = trials;
  ir.min_iters = r;
  ir.max_iters = big_r;
  ir.reduction_factor = eta;
  return ir;
}

void ExpectSameStages(const ExperimentSpec& a, const ExperimentSpec& b) {
  ASSERT_EQ(a.num_stages(), b.num_stages());
  for (int i = 0; i < a.num_stages(); ++i) {
    EXPECT_EQ(a.stage(i).num_trials, b.stage(i).num_trials) << "stage " << i;
    EXPECT_EQ(a.stage(i).iters_per_trial, b.stage(i).iters_per_trial) << "stage " << i;
  }
}

void ExpectSameConfig(const HyperparameterConfig& a, const HyperparameterConfig& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.learning_rate, b.learning_rate);
  EXPECT_EQ(a.weight_decay, b.weight_decay);
  EXPECT_EQ(a.momentum, b.momentum);
  EXPECT_EQ(a.quality, b.quality);
}

// ---- Lowering shape --------------------------------------------------------

TEST(Compile, ShaLowersToLegacySpec) {
  const CompiledPlan compiled = CompileExperiment(ShaIr(8, 2, 14, 2));
  ASSERT_EQ(compiled.units.size(), 1u);
  EXPECT_EQ(compiled.units[0].name, "sha");
  EXPECT_EQ(compiled.scheduler, SchedulerKind::kSha);
  EXPECT_EQ(compiled.asha, nullptr);
  ExpectSameStages(compiled.units[0].spec, MakeSha(8, 2, 14, 2));
  EXPECT_EQ(compiled.TotalWork(), MakeSha(8, 2, 14, 2).TotalWork());
}

TEST(Compile, ShaConfigStreamMatchesLegacyExecutor) {
  // The executor's historical inline sampling: one Rng seeded
  // `seed ^ 0xC0FFEE`, configurations drawn in trial order. The default
  // ConfigSource must replay it draw for draw or bit-identity is lost.
  const uint64_t seed = 3;
  const CompiledPlan compiled = CompileExperiment(ShaIr(8, 2, 14, 2));
  const std::vector<HyperparameterConfig> materialized =
      compiled.units[0].configs.Materialize(8, seed);

  SearchSpace sampler{SearchSpace::Options{}};
  Rng legacy_rng(seed ^ 0xC0FFEE);
  ASSERT_EQ(materialized.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const HyperparameterConfig expected = sampler.Sample(legacy_rng);
    ExpectSameConfig(materialized[static_cast<size_t>(i)], expected);
  }
}

TEST(Compile, HyperbandBracketsMatchMakeHyperband) {
  ExperimentIR ir;
  ir.scheduler = SchedulerKind::kHyperband;
  ir.max_iters = 27;
  ir.reduction_factor = 3;
  const CompiledPlan compiled = CompileExperiment(ir);

  const std::vector<ExperimentSpec> brackets = MakeHyperband(HyperbandParams{27, 3});
  ASSERT_EQ(compiled.units.size(), brackets.size());
  const int s_max = static_cast<int>(brackets.size()) - 1;
  for (size_t i = 0; i < brackets.size(); ++i) {
    EXPECT_EQ(compiled.units[i].name,
              "bracket-" + std::to_string(s_max - static_cast<int>(i)));
    ExpectSameStages(compiled.units[i].spec, brackets[i]);
    EXPECT_EQ(compiled.units[i].configs.kind, ConfigSource::Kind::kRandom);
  }
}

TEST(Compile, AshaLowersEnvelopePlusRungLadder) {
  ExperimentIR ir = ShaIr(27, 2, 18, 3);
  ir.scheduler = SchedulerKind::kAsha;
  const CompiledPlan compiled = CompileExperiment(ir);

  ASSERT_EQ(compiled.units.size(), 1u);
  EXPECT_EQ(compiled.units[0].name, "asha-envelope");
  ExpectSameStages(compiled.units[0].spec, MakeSha(27, 2, 18, 3));
  ASSERT_NE(compiled.asha, nullptr);
  EXPECT_EQ(compiled.asha->rung_budgets, (std::vector<int64_t>{2, 6, 18}));
  EXPECT_EQ(compiled.asha->reduction_factor, 3);
  EXPECT_EQ(compiled.asha->num_trials, 27);
}

TEST(Compile, RandomLowersToSingleStage) {
  ExperimentIR ir;
  ir.scheduler = SchedulerKind::kRandom;
  ir.num_trials = 6;
  ir.max_iters = 10;
  const CompiledPlan compiled = CompileExperiment(ir);
  ASSERT_EQ(compiled.units.size(), 1u);
  EXPECT_EQ(compiled.units[0].name, "random");
  ASSERT_EQ(compiled.units[0].spec.num_stages(), 1);
  EXPECT_EQ(compiled.units[0].spec.stage(0).num_trials, 6);
  EXPECT_EQ(compiled.units[0].spec.stage(0).iters_per_trial, 10);
}

TEST(Compile, GridEnumerationIsTheOrderedAxisProduct) {
  SearchSpace::Options space;
  const GridShape shape{3, 2, 2};
  const std::vector<HyperparameterConfig> points = EnumerateGrid(space, shape);
  ASSERT_EQ(points.size(), 12u);
  SearchSpace surface(space);
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].id, static_cast<int>(i));  // sequential ids
    EXPECT_EQ(points[i].quality, surface.Quality(points[i]));
  }
  // Learning rate is the outer axis, log-spaced across its bounds.
  EXPECT_DOUBLE_EQ(points.front().learning_rate, std::pow(10.0, space.log10_lr_min));
  EXPECT_DOUBLE_EQ(points.back().learning_rate, std::pow(10.0, space.log10_lr_max));
  // Momentum is the inner axis: adjacent points differ in momentum only.
  EXPECT_EQ(points[0].learning_rate, points[1].learning_rate);
  EXPECT_EQ(points[0].weight_decay, points[1].weight_decay);
  EXPECT_NE(points[0].momentum, points[1].momentum);
}

TEST(Compile, SinglePointGridAxisPinsTheMidpoint) {
  SearchSpace::Options space;
  const std::vector<HyperparameterConfig> points = EnumerateGrid(space, GridShape{1, 1, 1});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].learning_rate,
                   std::pow(10.0, (space.log10_lr_min + space.log10_lr_max) / 2.0));
  EXPECT_DOUBLE_EQ(points[0].momentum, (space.momentum_min + space.momentum_max) / 2.0);
}

TEST(Compile, ExplicitSourceRejectsOverdraw) {
  ConfigSource source;
  source.kind = ConfigSource::Kind::kExplicit;
  source.points = EnumerateGrid(SearchSpace::Options{}, GridShape{1, 2, 1});
  EXPECT_EQ(source.Materialize(2, 0).size(), 2u);
  EXPECT_THROW(source.Materialize(3, 0), std::invalid_argument);
}

TEST(Compile, InvalidIrNeverCompiles) {
  ExperimentIR ir = ShaIr(0, 2, 14, 2);  // num_trials = 0
  EXPECT_THROW(CompileExperiment(ir), std::invalid_argument);
}

// ---- Planning over compiled experiments ------------------------------------

TEST(Compile, PlanCompiledHyperbandAggregatesAcrossBrackets) {
  ExperimentIR ir;
  ir.scheduler = SchedulerKind::kHyperband;
  ir.max_iters = 9;
  ir.reduction_factor = 3;
  const CompiledPlan compiled = CompileExperiment(ir);

  const WorkloadSpec workload = ResNet101Cifar10();
  const ModelProfile model = ProfileWorkload(workload).profile;
  const CloudProfile cloud;
  const CompiledPlannedExperiment planned =
      PlanCompiledExperiment(compiled, model, cloud, Minutes(45));

  ASSERT_EQ(planned.units.size(), compiled.units.size());
  EXPECT_TRUE(planned.feasible);
  Seconds slowest = 0.0;
  Money total_cost;
  for (const PlannedJob& unit : planned.units) {
    EXPECT_TRUE(unit.feasible);
    slowest = std::max(slowest, unit.estimate.jct_mean);
    total_cost += unit.estimate.cost_mean;
  }
  EXPECT_DOUBLE_EQ(planned.EstimatedJct(), slowest);
  EXPECT_EQ(planned.EstimatedCost().micros(), total_cost.micros());
}

TEST(Compile, PlanCompiledAshaSizesTheWorkerPool) {
  ExperimentIR ir = ShaIr(27, 2, 18, 3);
  ir.scheduler = SchedulerKind::kAsha;
  const CompiledPlan compiled = CompileExperiment(ir);

  const WorkloadSpec workload = ResNet101Cifar10();
  const ModelProfile model = ProfileWorkload(workload).profile;
  const CloudProfile cloud;
  const CompiledPlannedExperiment planned =
      PlanCompiledExperiment(compiled, model, cloud, Hours(2));

  ASSERT_EQ(planned.units.size(), 1u);
  EXPECT_EQ(planned.units[0].planner, "static");
  EXPECT_GE(planned.asha_workers, 1);
  EXPECT_EQ(planned.asha_workers,
            std::max(1, planned.units[0].plan.MaxGpus() / compiled.asha->gpus_per_trial));
}

// ---- Bit-identity: compiled-SHA versus the legacy hard-coded path ----------

TEST(Compile, ShaBitIdentityWithLegacyPath) {
  const uint64_t seed = 3;
  const ExperimentSpec legacy_spec = MakeSha(8, 2, 14, 2);
  const WorkloadSpec workload = ResNet101Cifar10();
  const ModelProfile model = ProfileWorkload(workload).profile;
  const CloudProfile cloud;
  const Seconds deadline = Minutes(45);

  // Legacy: hard-coded SHA spec, planner, executor.
  const PlannedJob legacy_planned =
      PlanGreedy(PlannerInputs{legacy_spec, model, cloud, deadline});
  ExecutorOptions options;
  options.seed = seed;
  const ExecutionReport legacy =
      ExecutePlan(legacy_spec, legacy_planned.plan, workload, cloud, options);

  // Compiled: the same experiment through IR -> compile -> plan -> execute.
  const CompiledPlan compiled = CompileExperiment(ShaIr(8, 2, 14, 2));
  const CompiledPlannedExperiment planned =
      PlanCompiledExperiment(compiled, model, cloud, deadline);
  ASSERT_EQ(planned.units.size(), 1u);
  EXPECT_EQ(planned.units[0].plan, legacy_planned.plan);

  // Same DAG arenas, node for node.
  const ExecutionDag legacy_dag = BuildDag(legacy_spec, legacy_planned.plan, model, cloud);
  const ExecutionDag compiled_dag =
      BuildDag(compiled.units[0].spec, planned.units[0].plan, model, cloud);
  ASSERT_EQ(compiled_dag.size(), legacy_dag.size());
  for (int id = 0; id < legacy_dag.size(); ++id) {
    EXPECT_EQ(compiled_dag.type(id), legacy_dag.type(id)) << "node " << id;
    EXPECT_EQ(compiled_dag.stage(id), legacy_dag.stage(id)) << "node " << id;
    EXPECT_EQ(compiled_dag.gpus(id), legacy_dag.gpus(id)) << "node " << id;
    EXPECT_EQ(compiled_dag.trial(id), legacy_dag.trial(id)) << "node " << id;
    EXPECT_EQ(compiled_dag.new_instances(id), legacy_dag.new_instances(id)) << "node " << id;
    EXPECT_EQ(compiled_dag.latency(id).Mean(), legacy_dag.latency(id).Mean()) << "node " << id;
    ASSERT_EQ(compiled_dag.deps(id).size(), legacy_dag.deps(id).size()) << "node " << id;
    for (size_t d = 0; d < legacy_dag.deps(id).size(); ++d) {
      EXPECT_EQ(compiled_dag.deps(id)[d], legacy_dag.deps(id)[d]) << "node " << id;
    }
  }

  ExecutorOptions base;
  base.seed = seed;
  const CompiledExecutionReport report =
      ExecuteCompiled(compiled, planned, workload, cloud, base);
  ASSERT_EQ(report.units.size(), 1u);
  const ExecutionReport& unit = report.units[0];

  // Bit-equal outcomes: makespan, billing, winner, stage blocks, and the
  // full event trace rendered to CSV.
  EXPECT_EQ(report.jct, legacy.jct);
  EXPECT_EQ(unit.jct, legacy.jct);
  EXPECT_EQ(unit.cost.compute.micros(), legacy.cost.compute.micros());
  EXPECT_EQ(unit.cost.data.micros(), legacy.cost.data.micros());
  EXPECT_EQ(unit.best_accuracy, legacy.best_accuracy);
  ExpectSameConfig(unit.best_config, legacy.best_config);
  EXPECT_EQ(unit.realized_utilization, legacy.realized_utilization);
  ASSERT_EQ(unit.stage_log.size(), legacy.stage_log.size());
  for (size_t i = 0; i < legacy.stage_log.size(); ++i) {
    EXPECT_EQ(unit.stage_log[i].stage, legacy.stage_log[i].stage);
    EXPECT_EQ(unit.stage_log[i].num_trials, legacy.stage_log[i].num_trials);
    EXPECT_EQ(unit.stage_log[i].gpus, legacy.stage_log[i].gpus);
    EXPECT_EQ(unit.stage_log[i].instances, legacy.stage_log[i].instances);
    EXPECT_EQ(unit.stage_log[i].start, legacy.stage_log[i].start);
    EXPECT_EQ(unit.stage_log[i].end, legacy.stage_log[i].end);
  }
  EXPECT_EQ(unit.trace.ToCsv(), legacy.trace.ToCsv());
}

// ---- ASHA oracle: deprecated side-car versus the compiled engine -----------

TEST(Compile, AshaOracleParity) {
  const WorkloadSpec workload = ResNet101Cifar10();
  const CloudProfile cloud;

  AshaOptions legacy_options;
  legacy_options.min_iters = 2;
  legacy_options.max_iters = 18;
  legacy_options.reduction_factor = 3;
  legacy_options.gpus_per_trial = 1;
  legacy_options.num_workers = 4;
  legacy_options.time_limit = Hours(1);
  legacy_options.seed = 11;
  const AshaReport legacy = RunAsha(workload, cloud, legacy_options);

  // The same promotion rule, compiled: rung ladder from the IR, engine in
  // time-limited parity mode (num_trials = 0).
  ExperimentIR ir = ShaIr(1, 2, 18, 3);
  ir.scheduler = SchedulerKind::kAsha;
  const CompiledPlan compiled = CompileExperiment(ir);
  AshaPlan plan = *compiled.asha;
  plan.num_trials = 0;  // parity mode: sample to the time limit, like RunAsha

  AshaEngineOptions engine_options;
  engine_options.num_workers = 4;
  engine_options.time_limit = Hours(1);
  engine_options.seed = 11;
  AshaEngine engine(plan, workload, cloud, engine_options);
  const ExecutionReport report = engine.Run();

  // Identical decision trace: the ordered promotion log is the scheduler's
  // complete output — two implementations agree iff their logs agree.
  EXPECT_EQ(engine.promotions(), legacy.promotions);
  EXPECT_EQ(engine.configurations_sampled(), legacy.configurations_sampled);
  ASSERT_EQ(engine.rung_stats().size(), legacy.rungs.size());
  for (size_t r = 0; r < legacy.rungs.size(); ++r) {
    EXPECT_EQ(engine.rung_stats()[r].completed, legacy.rungs[r].completed) << "rung " << r;
    EXPECT_EQ(engine.rung_stats()[r].promoted, legacy.rungs[r].promoted) << "rung " << r;
  }

  // Identical final-trial selection and outcome.
  EXPECT_EQ(report.jct, legacy.jct);
  EXPECT_EQ(report.best_accuracy, legacy.best_accuracy);
  ExpectSameConfig(report.best_config, legacy.best_config);
  EXPECT_EQ(engine.best_config_cum_iters(), legacy.best_config_cum_iters);
  EXPECT_EQ(report.cost.compute.micros(), legacy.cost.compute.micros());
}

TEST(Compile, AshaBoundedModeDrainsAtTheTrialBudget) {
  ExperimentIR ir = ShaIr(12, 2, 18, 3);
  ir.scheduler = SchedulerKind::kAsha;
  const CompiledPlan compiled = CompileExperiment(ir);

  AshaEngineOptions options;
  options.num_workers = 4;
  options.seed = 5;
  AshaEngine engine(*compiled.asha, ResNet101Cifar10(), CloudProfile{}, options);
  const ExecutionReport report = engine.Run();

  EXPECT_TRUE(engine.finished());
  EXPECT_EQ(engine.configurations_sampled(), 12);  // the sample cap
  ASSERT_FALSE(engine.rung_stats().empty());
  // Every sampled configuration ran its rung-0 budget before the drain.
  EXPECT_EQ(engine.rung_stats()[0].completed, 12);
  EXPECT_GT(report.jct, 0.0);
  EXPECT_GT(report.best_accuracy, 0.0);
  EXPECT_GT(report.cost.Total().dollars(), 0.0);
}

}  // namespace
}  // namespace rubberband
