#include "src/executor/checkpoint_store.h"

#include <gtest/gtest.h>

#include "src/rubberband.h"

namespace rubberband {
namespace {

TEST(CheckpointStore, TransferLatencyScalesWithSize) {
  CheckpointStoreOptions options;
  options.bandwidth_gbps = 8.0;  // 1 GB/s
  options.base_latency = 0.5;
  CheckpointStore store(options);
  EXPECT_NEAR(store.Save(0, 2.0), 0.5 + 2.0, 1e-9);
  ASSERT_TRUE(store.Fetch(0).has_value());
  EXPECT_NEAR(store.Fetch(0).value(), 0.5 + 2.0, 1e-9);
  EXPECT_NEAR(store.Save(1, 0.0), 0.5, 1e-9);  // metadata-only checkpoint
}

TEST(CheckpointStore, TracksLedger) {
  CheckpointStore store;
  store.Save(0, 1.0);
  store.Save(1, 0.5);
  store.Save(0, 1.0);  // overwrite: still one stored object for trial 0
  store.Fetch(1);
  EXPECT_EQ(store.num_stored(), 2);
  EXPECT_NEAR(store.stored_gb(), 1.5, 1e-12);
  EXPECT_EQ(store.saves(), 3);
  EXPECT_EQ(store.fetches(), 1);
  EXPECT_NEAR(store.gb_moved(), 3.0, 1e-12);
}

TEST(CheckpointStore, EvictFreesMemoryAndFetchOfMissingIsRecoverable) {
  CheckpointStore store;
  store.Save(7, 0.3);
  store.Evict(7);
  EXPECT_EQ(store.num_stored(), 0);
  // A missing object is a recoverable condition (the executor re-serializes
  // from the driver replica), not a crash.
  EXPECT_FALSE(store.Fetch(7).has_value());
  EXPECT_EQ(store.fetches(), 0);  // a miss is not a transfer
  EXPECT_THROW(store.Save(1, -0.1), std::invalid_argument);
}

TEST(CheckpointStore, ExecutorAccountsCheckpointTraffic) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);  // stages of 8, 4, 2 trials
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  const WorkloadSpec workload = ResNet101Cifar10();
  const ExecutionReport report =
      ExecutePlan(spec, AllocationPlan({8, 8, 8}), workload, cloud);

  // One save per trial per stage boundary: 8 + 4 + 2.
  EXPECT_EQ(report.checkpoint_saves, 14);
  // Every gang start fetches (all trials hold a stage-start checkpoint).
  EXPECT_EQ(report.checkpoint_fetches, 14);
  EXPECT_NEAR(report.checkpoint_gb_moved, 28 * workload.checkpoint_gb, 1e-9);
}

TEST(CheckpointStore, BiggerModelsMoveMoreBytes) {
  const ExperimentSpec spec = MakeSha(4, 2, 6, 2);
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  const ExecutionReport resnet =
      ExecutePlan(spec, AllocationPlan({4, 4}), ResNet101Cifar10(), cloud);
  const ExecutionReport bert = ExecutePlan(spec, AllocationPlan({4, 4}), BertRte(), cloud);
  EXPECT_GT(bert.checkpoint_gb_moved, 3.0 * resnet.checkpoint_gb_moved);
}

}  // namespace
}  // namespace rubberband
