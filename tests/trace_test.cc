// Execution trace and the realized-utilization metric.

#include "src/executor/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/rubberband.h"

namespace rubberband {
namespace {

CloudProfile TestCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  return cloud;
}

TEST(Trace, CsvHasHeaderAndOneRowPerEvent) {
  ExecutionTrace trace;
  trace.Record(1.0, TraceEventType::kStageStart, 0);
  trace.Record(2.5, TraceEventType::kTrialStart, 0, 3);
  trace.Record(9.0, TraceEventType::kSync, 0);
  const std::string csv = trace.ToCsv();
  EXPECT_NE(csv.find("time_s,event,stage,trial,instance"), std::string::npos);
  EXPECT_NE(csv.find("1.000,STAGE_START,0,-1,-1"), std::string::npos);
  EXPECT_NE(csv.find("2.500,TRIAL_START,0,3,-1"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(Trace, OfTypeFilters) {
  ExecutionTrace trace;
  trace.Record(1.0, TraceEventType::kTrialStart, 0, 1);
  trace.Record(2.0, TraceEventType::kTrialComplete, 0, 1);
  trace.Record(3.0, TraceEventType::kTrialStart, 0, 2);
  EXPECT_EQ(trace.OfType(TraceEventType::kTrialStart).size(), 2u);
  EXPECT_EQ(trace.OfType(TraceEventType::kSync).size(), 0u);
}

TEST(Trace, ExecutorEmitsCoherentEventLog) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const ExecutionReport report =
      ExecutePlan(spec, AllocationPlan({8, 8, 8}), ResNet101Cifar10(), TestCloud());
  const ExecutionTrace& trace = report.trace;

  EXPECT_EQ(trace.OfType(TraceEventType::kStageStart).size(), 3u);
  EXPECT_EQ(trace.OfType(TraceEventType::kSync).size(), 3u);
  // 8 + 4 + 2 trial-stage runs start and complete.
  EXPECT_EQ(trace.OfType(TraceEventType::kTrialStart).size(), 14u);
  EXPECT_EQ(trace.OfType(TraceEventType::kTrialComplete).size(), 14u);
  // 4 + 2 trials are terminated at the two intermediate barriers.
  EXPECT_EQ(trace.OfType(TraceEventType::kTrialTerminated).size(), 6u);
  // Instances: 2 provisioned up front, every one released by the end.
  EXPECT_EQ(trace.OfType(TraceEventType::kInstanceReady).size(), 2u);
  EXPECT_EQ(trace.OfType(TraceEventType::kInstanceReleased).size(), 2u);

  // Timestamps are non-decreasing.
  Seconds previous = 0.0;
  for (const TraceEvent& event : trace.events()) {
    EXPECT_GE(event.time, previous);
    previous = event.time;
  }
}

TEST(Trace, CsvRoundTripPreservesEveryEvent) {
  ExecutionTrace trace;
  trace.Record(0.0, TraceEventType::kStageStart, 0);
  trace.Record(12.125, TraceEventType::kInstanceReady, 0, -1, 7);
  trace.Record(13.0, TraceEventType::kTrialStart, 0, 3);
  trace.Record(90.5, TraceEventType::kPreemption, 1, -1, 7);
  trace.Record(91.0, TraceEventType::kTrialRestart, 1, 3);
  trace.Record(120.0, TraceEventType::kTrialComplete, 1, 3);
  trace.Record(121.0, TraceEventType::kTrialTerminated, 1, 4);
  trace.Record(122.0, TraceEventType::kSync, 1);
  trace.Record(123.0, TraceEventType::kInstanceReleased, 1, -1, 7);

  const std::string csv = trace.ToCsv();
  const ExecutionTrace parsed = ExecutionTrace::FromCsv(csv);
  ASSERT_EQ(parsed.events().size(), trace.events().size());
  for (size_t i = 0; i < trace.events().size(); ++i) {
    const TraceEvent& original = trace.events()[i];
    const TraceEvent& round_tripped = parsed.events()[i];
    EXPECT_DOUBLE_EQ(round_tripped.time, original.time);
    EXPECT_EQ(round_tripped.type, original.type);
    EXPECT_EQ(round_tripped.stage, original.stage);
    EXPECT_EQ(round_tripped.trial, original.trial);
    EXPECT_EQ(round_tripped.instance, original.instance);
  }
  // Re-exporting reproduces the file byte for byte.
  EXPECT_EQ(parsed.ToCsv(), csv);
}

TEST(Trace, ExecutorTraceSurvivesTheCsvRoundTrip) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const ExecutionReport report =
      ExecutePlan(spec, AllocationPlan({8, 8, 8}), ResNet101Cifar10(), TestCloud());
  const ExecutionTrace parsed = ExecutionTrace::FromCsv(report.trace.ToCsv());
  EXPECT_EQ(parsed.events().size(), report.trace.events().size());
  EXPECT_EQ(parsed.ToCsv(), report.trace.ToCsv());
}

TEST(Trace, FaultEventKindsRoundTripThroughCsv) {
  ExecutionTrace trace;
  trace.Record(1.0, TraceEventType::kInstanceCrash, 0, -1, 7);
  trace.Record(2.0, TraceEventType::kProvisionFailure, 0);
  trace.Record(3.0, TraceEventType::kProvisionRetry, 0);
  trace.Record(4.0, TraceEventType::kProvisionGiveUp, 1);
  trace.Record(5.0, TraceEventType::kCheckpointRetry, 1, 3);
  trace.Record(6.0, TraceEventType::kStageDegraded, 1);
  trace.Record(7.0, TraceEventType::kReplan, 2);
  const ExecutionTrace parsed = ExecutionTrace::FromCsv(trace.ToCsv());
  ASSERT_EQ(parsed.events().size(), trace.events().size());
  for (size_t i = 0; i < trace.events().size(); ++i) {
    EXPECT_EQ(parsed.events()[i].type, trace.events()[i].type);
    EXPECT_EQ(parsed.events()[i].time, trace.events()[i].time);
    EXPECT_EQ(parsed.events()[i].stage, trace.events()[i].stage);
    EXPECT_EQ(parsed.events()[i].trial, trace.events()[i].trial);
    EXPECT_EQ(parsed.events()[i].instance, trace.events()[i].instance);
  }
  EXPECT_EQ(parsed.OfType(TraceEventType::kInstanceCrash)[0].instance, 7);
  EXPECT_EQ(parsed.OfType(TraceEventType::kCheckpointRetry)[0].trial, 3);
}

TEST(Trace, EveryEventKindRoundTripsThroughCsv) {
  // Table-driven over the enum itself: every kind in [0, kNumTraceEventTypes)
  // is serialized with distinctive field values and parsed back. A new event
  // kind is enrolled automatically once kNumTraceEventTypes is bumped (and
  // the guard test below makes sure it is bumped).
  ExecutionTrace trace;
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    trace.Record(0.125 * i, static_cast<TraceEventType>(i), i % 3, i % 2 == 0 ? i : -1,
                 i % 2 == 1 ? 100 + i : -1);
  }
  const ExecutionTrace parsed = ExecutionTrace::FromCsv(trace.ToCsv());
  ASSERT_EQ(parsed.events().size(), static_cast<size_t>(kNumTraceEventTypes));
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    const TraceEvent& original = trace.events()[static_cast<size_t>(i)];
    const TraceEvent& round_tripped = parsed.events()[static_cast<size_t>(i)];
    EXPECT_EQ(round_tripped.type, original.type) << ToString(original.type);
    EXPECT_DOUBLE_EQ(round_tripped.time, original.time) << ToString(original.type);
    EXPECT_EQ(round_tripped.stage, original.stage) << ToString(original.type);
    EXPECT_EQ(round_tripped.trial, original.trial) << ToString(original.type);
    EXPECT_EQ(round_tripped.instance, original.instance) << ToString(original.type);
  }
  EXPECT_EQ(parsed.ToCsv(), trace.ToCsv());

  // Names are real (never the UNKNOWN fallthrough) and pairwise distinct —
  // a duplicated name would make FromCsv ambiguous.
  std::set<std::string> names;
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    const std::string name = ToString(static_cast<TraceEventType>(i));
    EXPECT_NE(name, "UNKNOWN") << "enum value " << i << " has no name";
    names.insert(name);
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumTraceEventTypes));
}

TEST(Trace, EventKindCountGuardsExhaustiveness) {
  // Static guard: if an event kind is appended to the enum without bumping
  // kNumTraceEventTypes, the value at the boundary acquires a real name and
  // this expectation fails — forcing the bump, which in turn enrolls the
  // new kind in the exhaustive round-trip test above. Event kinds cannot
  // silently skip CSV coverage.
  EXPECT_EQ(ToString(static_cast<TraceEventType>(kNumTraceEventTypes)), "UNKNOWN");
  EXPECT_NE(ToString(static_cast<TraceEventType>(kNumTraceEventTypes - 1)), "UNKNOWN");
  EXPECT_THROW(TraceEventTypeFromString("UNKNOWN"), std::invalid_argument);
}

TEST(Trace, StragglerEventKindsRoundTripThroughCsv) {
  ExecutionTrace trace;
  trace.Record(10.0, TraceEventType::kStragglerDetected, 1, -1, 42);
  trace.Record(10.0, TraceEventType::kStragglerFalsePositive, 1, -1, 42);
  trace.Record(11.0, TraceEventType::kStragglerQuarantined, 1, -1, 42);
  const ExecutionTrace parsed = ExecutionTrace::FromCsv(trace.ToCsv());
  ASSERT_EQ(parsed.events().size(), 3u);
  EXPECT_EQ(parsed.OfType(TraceEventType::kStragglerDetected)[0].instance, 42);
  EXPECT_EQ(parsed.OfType(TraceEventType::kStragglerQuarantined)[0].instance, 42);
  EXPECT_EQ(parsed.OfType(TraceEventType::kStragglerFalsePositive)[0].stage, 1);
}

TEST(Trace, FromCsvRejectsMalformedInput) {
  EXPECT_THROW(ExecutionTrace::FromCsv(""), std::invalid_argument);
  EXPECT_THROW(ExecutionTrace::FromCsv("time,event\n"), std::invalid_argument);
  const std::string header = "time_s,event,stage,trial,instance\n";
  EXPECT_THROW(ExecutionTrace::FromCsv(header + "1.0,NOT_AN_EVENT,0,-1,-1\n"),
               std::invalid_argument);
  EXPECT_THROW(ExecutionTrace::FromCsv(header + "1.0,SYNC,0\n"), std::invalid_argument);
  EXPECT_NO_THROW(ExecutionTrace::FromCsv(header));  // empty trace is fine
}

TEST(Trace, FromCsvCountsMalformedRowsInTolerantMode) {
  // With a parse-error out-param, FromCsv salvages every good row and
  // counts the bad ones instead of throwing — trace2chrome surfaces the
  // count so a partially corrupted log still converts.
  const std::string header = "time_s,event,stage,trial,instance\n";
  const std::string csv = header +
                          "1.000,STAGE_START,0,-1,-1\n"        // good
                          "garbage row with no commas\n"       // unparseable
                          "2.000,NOT_AN_EVENT,0,-1,-1\n"       // unknown event
                          "3.000,SYNC,0\n"                     // truncated
                          "3.500,SYNC,0,-1,-1,extra\n"         // too many fields
                          "4.000,SYNC,0,-1,-1\n";              // good
  int parse_errors = -1;
  const ExecutionTrace trace = ExecutionTrace::FromCsv(csv, &parse_errors);
  EXPECT_EQ(parse_errors, 4);
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].type, TraceEventType::kStageStart);
  EXPECT_EQ(trace.events()[1].type, TraceEventType::kSync);
  EXPECT_DOUBLE_EQ(trace.events()[1].time, 4.0);
}

TEST(Trace, FromCsvTolerantModeStillRejectsABadHeader) {
  // Header damage means the file is not a trace at all; tolerant mode only
  // forgives row damage.
  int parse_errors = -1;
  EXPECT_THROW(ExecutionTrace::FromCsv("", &parse_errors), std::invalid_argument);
  EXPECT_THROW(ExecutionTrace::FromCsv("time,event\n1.0,SYNC\n", &parse_errors),
               std::invalid_argument);
}

TEST(Trace, FromCsvReportsZeroErrorsOnACleanFile) {
  ExecutionTrace trace;
  trace.Record(1.0, TraceEventType::kStageStart, 0);
  trace.Record(2.0, TraceEventType::kSync, 0);
  int parse_errors = -1;
  const ExecutionTrace parsed = ExecutionTrace::FromCsv(trace.ToCsv(), &parse_errors);
  EXPECT_EQ(parse_errors, 0);
  EXPECT_EQ(parsed.events().size(), 2u);
}

TEST(Trace, FromCsvRejectsNumbersWithTrailingGarbage) {
  // std::stoi("12abc") silently truncates; the strict full-token parse must
  // reject it in both modes, not round-trip a garbled row as a different
  // event.
  const std::string header = "time_s,event,stage,trial,instance\n";
  const std::string bad_stage = header + "1.0,SYNC,0abc,-1,-1\n";
  const std::string bad_time = header + "1.0x,SYNC,0,-1,-1\n";
  const std::string bad_instance = header + "1.0,SYNC,0,-1,-1junk\n";
  EXPECT_THROW(ExecutionTrace::FromCsv(bad_stage), std::invalid_argument);
  EXPECT_THROW(ExecutionTrace::FromCsv(bad_time), std::invalid_argument);
  EXPECT_THROW(ExecutionTrace::FromCsv(bad_instance), std::invalid_argument);
  for (const std::string* csv : {&bad_stage, &bad_time, &bad_instance}) {
    int parse_errors = -1;
    const ExecutionTrace trace = ExecutionTrace::FromCsv(*csv, &parse_errors);
    EXPECT_EQ(parse_errors, 1);
    EXPECT_TRUE(trace.empty());
  }
}

TEST(Trace, PreemptionsAreInstanceScopedAndRestartsTrialScoped) {
  // A spot run exercises the recovery path: the provider reclaims machines
  // (instance-scoped events) and the executor restarts the trials that were
  // running on them (trial-scoped events).
  CloudProfile cloud = TestCloud();
  cloud.spot.enabled = true;
  cloud.spot.discount = 0.3;
  cloud.spot.mean_time_to_preemption = 240.0;
  ExecutorOptions options;
  options.seed = 5;
  const ExecutionReport report = ExecutePlan(MakeSha(8, 2, 14, 2), AllocationPlan({8, 8, 8}),
                                             ResNet101Cifar10(), cloud, options);
  ASSERT_GT(report.preemptions, 0);
  ASSERT_GT(report.trial_restarts, 0);

  const std::vector<TraceEvent> preemptions = report.trace.OfType(TraceEventType::kPreemption);
  EXPECT_EQ(preemptions.size(), static_cast<size_t>(report.preemptions));
  for (const TraceEvent& event : preemptions) {
    EXPECT_GE(event.instance, 0) << "preemption events name the reclaimed instance";
    EXPECT_EQ(event.trial, -1);
    EXPECT_GE(event.stage, 0);
  }

  const std::vector<TraceEvent> restarts = report.trace.OfType(TraceEventType::kTrialRestart);
  EXPECT_EQ(restarts.size(), static_cast<size_t>(report.trial_restarts));
  for (const TraceEvent& event : restarts) {
    EXPECT_GE(event.trial, 0) << "restart events name the restarted trial";
    EXPECT_EQ(event.instance, -1);
  }

  // The preemption path also survives the CSV round trip.
  const ExecutionTrace parsed = ExecutionTrace::FromCsv(report.trace.ToCsv());
  EXPECT_EQ(parsed.OfType(TraceEventType::kPreemption).size(), preemptions.size());
  EXPECT_EQ(parsed.OfType(TraceEventType::kTrialRestart).size(), restarts.size());
}

TEST(Trace, UtilizationIsAFraction) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const ExecutionReport report =
      ExecutePlan(spec, AllocationPlan({8, 8, 8}), ResNet101Cifar10(), TestCloud());
  EXPECT_GT(report.realized_utilization, 0.3);
  EXPECT_LE(report.realized_utilization, 1.0);
}

TEST(Trace, ElasticPlanBeatsStaticOnUtilization) {
  // The paper's central claim, measured: the elastic plan wastes fewer
  // provisioned GPU-seconds than a static cluster running the same spec.
  const ExperimentSpec spec = MakeSha(32, 1, 50, 3);
  const WorkloadSpec workload = ResNet101Cifar10();
  ExecutorOptions options;
  options.seed = 4;
  const ExecutionReport fixed =
      ExecutePlan(spec, AllocationPlan::Uniform(4, 24), workload, TestCloud(), options);
  const ExecutionReport elastic =
      ExecutePlan(spec, AllocationPlan({32, 20, 12, 8}), workload, TestCloud(), options);
  EXPECT_GT(elastic.realized_utilization, fixed.realized_utilization);
}

}  // namespace
}  // namespace rubberband
