// Execution trace and the realized-utilization metric.

#include "src/executor/trace.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/rubberband.h"

namespace rubberband {
namespace {

CloudProfile TestCloud() {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  return cloud;
}

TEST(Trace, CsvHasHeaderAndOneRowPerEvent) {
  ExecutionTrace trace;
  trace.Record(1.0, TraceEventType::kStageStart, 0);
  trace.Record(2.5, TraceEventType::kTrialStart, 0, 3);
  trace.Record(9.0, TraceEventType::kSync, 0);
  const std::string csv = trace.ToCsv();
  EXPECT_NE(csv.find("time_s,event,stage,trial,instance"), std::string::npos);
  EXPECT_NE(csv.find("1.000,STAGE_START,0,-1,-1"), std::string::npos);
  EXPECT_NE(csv.find("2.500,TRIAL_START,0,3,-1"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(Trace, OfTypeFilters) {
  ExecutionTrace trace;
  trace.Record(1.0, TraceEventType::kTrialStart, 0, 1);
  trace.Record(2.0, TraceEventType::kTrialComplete, 0, 1);
  trace.Record(3.0, TraceEventType::kTrialStart, 0, 2);
  EXPECT_EQ(trace.OfType(TraceEventType::kTrialStart).size(), 2u);
  EXPECT_EQ(trace.OfType(TraceEventType::kSync).size(), 0u);
}

TEST(Trace, ExecutorEmitsCoherentEventLog) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const ExecutionReport report =
      ExecutePlan(spec, AllocationPlan({8, 8, 8}), ResNet101Cifar10(), TestCloud());
  const ExecutionTrace& trace = report.trace;

  EXPECT_EQ(trace.OfType(TraceEventType::kStageStart).size(), 3u);
  EXPECT_EQ(trace.OfType(TraceEventType::kSync).size(), 3u);
  // 8 + 4 + 2 trial-stage runs start and complete.
  EXPECT_EQ(trace.OfType(TraceEventType::kTrialStart).size(), 14u);
  EXPECT_EQ(trace.OfType(TraceEventType::kTrialComplete).size(), 14u);
  // 4 + 2 trials are terminated at the two intermediate barriers.
  EXPECT_EQ(trace.OfType(TraceEventType::kTrialTerminated).size(), 6u);
  // Instances: 2 provisioned up front, every one released by the end.
  EXPECT_EQ(trace.OfType(TraceEventType::kInstanceReady).size(), 2u);
  EXPECT_EQ(trace.OfType(TraceEventType::kInstanceReleased).size(), 2u);

  // Timestamps are non-decreasing.
  Seconds previous = 0.0;
  for (const TraceEvent& event : trace.events()) {
    EXPECT_GE(event.time, previous);
    previous = event.time;
  }
}

TEST(Trace, UtilizationIsAFraction) {
  const ExperimentSpec spec = MakeSha(8, 2, 14, 2);
  const ExecutionReport report =
      ExecutePlan(spec, AllocationPlan({8, 8, 8}), ResNet101Cifar10(), TestCloud());
  EXPECT_GT(report.realized_utilization, 0.3);
  EXPECT_LE(report.realized_utilization, 1.0);
}

TEST(Trace, ElasticPlanBeatsStaticOnUtilization) {
  // The paper's central claim, measured: the elastic plan wastes fewer
  // provisioned GPU-seconds than a static cluster running the same spec.
  const ExperimentSpec spec = MakeSha(32, 1, 50, 3);
  const WorkloadSpec workload = ResNet101Cifar10();
  ExecutorOptions options;
  options.seed = 4;
  const ExecutionReport fixed =
      ExecutePlan(spec, AllocationPlan::Uniform(4, 24), workload, TestCloud(), options);
  const ExecutionReport elastic =
      ExecutePlan(spec, AllocationPlan({32, 20, 12, 8}), workload, TestCloud(), options);
  EXPECT_GT(elastic.realized_utilization, fixed.realized_utilization);
}

}  // namespace
}  // namespace rubberband
