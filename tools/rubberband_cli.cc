// rubberband — command-line front end.
//
//   rubberband plan    [flags]   compile + compare plans for one job
//   rubberband execute [flags]   compile the elastic plan and run end-to-end
//   rubberband sweep   [flags]   cost vs deadline exploration
//   rubberband asha    [flags]   run the legacy ASHA side-car baseline
//                                (deprecated: prefer execute --scheduler=asha,
//                                which plans and bills like any other job)
//   rubberband serve   [flags]   replay a job-arrival trace on the service
//   rubberband trace2chrome --in=<trace.csv> [--out=<trace.json>]
//                                convert a --trace-csv event log to Chrome
//                                trace-event JSON (chrome://tracing, Perfetto)
//
// Common flags:
//   --workload=resnet101-cifar10   (see FindWorkload for the catalog)
//   --scheduler=sha|hyperband|asha|random|grid   experiment front end (plan,
//                                  execute, and serve compile the experiment
//                                  IR; sha is the default and byte-identical
//                                  to the historical hard-coded path)
//   --spec-file=<experiment.json>  load the experiment IR from a JSON spec
//                                  instead of flags (see examples/)
//   --grid-lr-points=4 --grid-wd-points=4 --grid-momentum-points=2
//                                  grid axis resolution (--scheduler=grid)
//   --trials=32 --min-iters=1 --max-iters=50 --eta=3      SHA parameters
//   --deadline-min=20                                     time constraint
//   --instance=p3.8xlarge --billing=per-instance|per-function
//   --data-price-gb=0.0 --queue-s=5 --init-s=10
//   --spot --spot-mttp-s=14400 --seed=1
//   Spot market (all take effect only with --spot):
//   --spot-discount=0.3            spot price as a fraction of on-demand
//   --spot-volatility=0.0          per-step stddev of the price random walk
//   --spot-price-interval-s=300    seconds between price-trace steps
//   --spot-hazard-coupling=0.0     preemption-hazard exponent on the price
//                                  level (cheap capacity reclaims faster)
//   --spot-storm-interval-s=0      mean seconds between reclamation storms
//                                  (0 = storms off)
//   --spot-storm-fraction=0.25     fraction of the family a storm sweeps
//   --spot-capacity=0              family capacity limit (0 = unlimited);
//                                  over-limit requests are rejected outright
//   --spot-warning-s=120           reclamation warning the executor uses to
//                                  checkpoint eagerly before the reclaim
//   --plan-threads=4               parallel candidate evaluation inside the
//                                  planner (identical plans at any count)
//   Fault injection (all default off; runs stay deterministic per seed):
//   --provision-failure-rate=0.1   provider rejects requests at this rate
//   --init-failure-rate=0.05       launched instances die during init (billed)
//   --mtbf=3600                    mean seconds between hardware crashes
//   --ckpt-failure-rate=0.02       checkpoint fetches fail and retry
//   --straggler-rate=0.2           instances launch persistently slow at this
//                                  rate (gray failure; factor drawn per instance)
//   --straggler-factor=3           slowdown factor of a straggling instance
//                                  (sets the min=max of the draw; default 2-4x)
//   --mitigate-stragglers          detect stragglers from observed iteration
//                                  times and quarantine them (checkpoint out,
//                                  discard instance, restart on a replacement)
//   Observability (execute and serve):
//   --metrics-json=<path>          write the metrics registry snapshot as JSON
//   --chrome-trace=<path>          write a Chrome trace-event JSON timeline
//   --top-phases                   print phases ranked by total time
// plan:     --render (ASCII chart), --budget=<dollars> (adds the min-time dual)
// execute:  --trace-csv (dump the event log)
//           --replan (re-plan remaining stages when faults burn deadline slack)
// sweep:    --from-min=15 --to-min=60 --step-min=5
// serve:    --jobs=4 --gap-s=120 --capacity-gpus=64 --overcommit=1.0
//           --warm --pool-max=16 --warm-ttl-s=300 --budget=<dollars per job>
//           (each job runs the common SHA spec/deadline; arrivals --gap-s apart)
//           --listen turns serve into the networked front door:
//           --host=127.0.0.1 --port=8787 --rate=<submits/s per tenant>
//           --burst=8 --queue-cap=256 --auto-advance-s=1
//           --snapshot=rubberband.snapshot.json --restore=<snapshot.json>
// client:   rubberband client <action> --host=.. --port=.. --tenant=..
//           actions: submit (--name --workload --trials --min-iters
//           --max-iters --eta --deadline-min --budget --weight), status
//           [--job], cancel --job, report, metrics, trace [--out], advance
//           --seconds, drain [--mode=snapshot|finish], ping

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/flags.h"
#include "src/common/report_format.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/metrics.h"
#include "src/obs/timeline.h"
#include "src/rubberband.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace rubberband {
namespace {

struct CliSetup {
  WorkloadSpec workload;
  // The declarative experiment (from --scheduler flags or --spec-file) and
  // its compiled lowering; `spec` is the first compiled unit — for sha the
  // exact MakeSha spec the CLI always built, so the legacy single-spec
  // commands stay byte-identical.
  ExperimentIR ir;
  CompiledPlan compiled;
  ExperimentSpec spec;
  ModelProfile profile;
  CloudProfile cloud;
  Seconds deadline = 0.0;
  uint64_t seed = 0;
  PlannerOptions planner;
  bool mitigate_stragglers = false;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

// Observability outputs shared by execute and serve. Any of the flags turns
// on span/histogram recording (--observe alone records without exporting).
struct ObsFlags {
  std::string metrics_json;
  std::string chrome_trace;
  bool top_phases = false;
  bool observe = false;

  bool Enabled() const {
    return observe || top_phases || !metrics_json.empty() || !chrome_trace.empty();
  }
};

ObsFlags ParseObsFlags(const Flags& flags) {
  ObsFlags obs;
  obs.metrics_json = flags.GetString("metrics-json", "");
  obs.chrome_trace = flags.GetString("chrome-trace", "");
  obs.top_phases = flags.GetBool("top-phases");
  obs.observe = flags.GetBool("observe");
  return obs;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: failed to write '%s'\n", path.c_str());
    return false;
  }
  return true;
}

// Writes the metrics/chrome-trace artifacts and prints the phase summary.
// Returns 0, or 1 if any file write failed.
int EmitObservability(const ObsFlags& obs, const MetricsSnapshot& metrics,
                      const Timeline& timeline, const std::string& chrome_json) {
  int status = 0;
  if (!obs.metrics_json.empty()) {
    if (WriteFile(obs.metrics_json, metrics.ToJson())) {
      std::printf("metrics: wrote %s\n", obs.metrics_json.c_str());
    } else {
      status = 1;
    }
  }
  if (!obs.chrome_trace.empty()) {
    if (WriteFile(obs.chrome_trace, chrome_json)) {
      std::printf("chrome trace: wrote %s (open in chrome://tracing or Perfetto)\n",
                  obs.chrome_trace.c_str());
    } else {
      status = 1;
    }
  }
  if (obs.top_phases) {
    std::printf("\n%s", TopPhasesSummary(timeline).c_str());
  }
  return status;
}

bool BuildSetup(const Flags& flags, CliSetup& setup) {
  const std::string workload_name = flags.GetString("workload", "resnet101-cifar10");
  const auto workload = FindWorkload(workload_name);
  if (!workload.has_value()) {
    std::fprintf(stderr, "unknown workload '%s'\n", workload_name.c_str());
    return false;
  }
  setup.workload = *workload;

  const std::string spec_file = flags.GetString("spec-file", "");
  try {
    if (!spec_file.empty()) {
      setup.ir = LoadExperimentIR(spec_file);
    } else {
      setup.ir.scheduler = ParseSchedulerKind(flags.GetString("scheduler", "sha"));
      setup.ir.num_trials = flags.GetInt("trials", 32);
      setup.ir.min_iters = flags.GetInt64("min-iters", 1);
      setup.ir.max_iters = flags.GetInt64("max-iters", 50);
      setup.ir.reduction_factor = flags.GetInt("eta", 3);
      setup.ir.grid.lr_points = flags.GetInt("grid-lr-points", setup.ir.grid.lr_points);
      setup.ir.grid.wd_points = flags.GetInt("grid-wd-points", setup.ir.grid.wd_points);
      setup.ir.grid.momentum_points =
          flags.GetInt("grid-momentum-points", setup.ir.grid.momentum_points);
    }
    setup.compiled = CompileExperiment(setup.ir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return false;
  }
  setup.spec = setup.compiled.units.front().spec;

  const std::string instance_name = flags.GetString("instance", "p3.8xlarge");
  const auto instance = FindInstanceType(instance_name);
  if (!instance.has_value() || instance->gpus < 1) {
    std::fprintf(stderr, "unknown or CPU-only instance type '%s'\n", instance_name.c_str());
    return false;
  }
  setup.cloud.instance = *instance;
  setup.cloud.provisioning =
      ProvisioningModel::Fixed(flags.GetDouble("queue-s", 5.0), flags.GetDouble("init-s", 10.0));
  const std::string billing = flags.GetString("billing", "per-instance");
  if (billing == "per-function") {
    setup.cloud.pricing.billing = BillingModel::kPerFunction;
  } else if (billing != "per-instance") {
    std::fprintf(stderr, "unknown billing model '%s'\n", billing.c_str());
    return false;
  }
  setup.cloud.pricing.data_price_per_gb =
      Money::FromDollars(flags.GetDouble("data-price-gb", 0.0));
  if (flags.GetBool("spot")) {
    SpotMarket& spot = setup.cloud.spot;
    spot.enabled = true;
    spot.mean_time_to_preemption = flags.GetDouble("spot-mttp-s", 14'400.0);
    spot.discount = flags.GetDouble("spot-discount", spot.discount);
    spot.volatility = flags.GetDouble("spot-volatility", spot.volatility);
    spot.price_interval_s = flags.GetDouble("spot-price-interval-s", spot.price_interval_s);
    spot.hazard_coupling = flags.GetDouble("spot-hazard-coupling", spot.hazard_coupling);
    spot.storm_mean_interval_s =
        flags.GetDouble("spot-storm-interval-s", spot.storm_mean_interval_s);
    spot.storm_fraction = flags.GetDouble("spot-storm-fraction", spot.storm_fraction);
    spot.capacity_limit = flags.GetInt("spot-capacity", spot.capacity_limit);
    spot.reclamation_warning_s = flags.GetDouble("spot-warning-s", spot.reclamation_warning_s);
  }
  setup.cloud.fault.provision_failure_rate = flags.GetDouble("provision-failure-rate", 0.0);
  setup.cloud.fault.init_failure_rate = flags.GetDouble("init-failure-rate", 0.0);
  setup.cloud.fault.mtbf = flags.GetDouble("mtbf", 0.0);
  setup.cloud.fault.checkpoint_failure_rate = flags.GetDouble("ckpt-failure-rate", 0.0);
  setup.cloud.fault.straggler_rate = flags.GetDouble("straggler-rate", 0.0);
  if (flags.Has("straggler-factor")) {
    const double factor = flags.GetDouble("straggler-factor", 3.0);
    setup.cloud.fault.straggler_factor_min = factor;
    setup.cloud.fault.straggler_factor_max = factor;
  }
  setup.mitigate_stragglers = flags.GetBool("mitigate-stragglers");

  setup.deadline = Minutes(flags.GetDouble("deadline-min", 20.0));
  setup.seed = static_cast<uint64_t>(flags.GetInt64("seed", 1));
  setup.planner.eval_threads = flags.GetInt("plan-threads", 1);
  if (setup.planner.eval_threads < 1) {
    std::fprintf(stderr, "--plan-threads must be >= 1\n");
    return false;
  }

  ProfilerOptions profiler_options;
  profiler_options.seed = setup.seed;
  setup.profile = ProfileWorkload(setup.workload, profiler_options).profile;

  // sha keeps the historical spec banner byte for byte; the other
  // schedulers describe the whole experiment.
  const std::string description = setup.compiled.scheduler == SchedulerKind::kSha
                                      ? setup.spec.ToString()
                                      : setup.ir.ToString();
  std::printf("workload %s | %s | deadline %s | %s, %s\n", setup.workload.name.c_str(),
              description.c_str(), FormatDuration(setup.deadline).c_str(),
              setup.cloud.instance.name.c_str(), ToString(setup.cloud.pricing.billing).c_str());
  return true;
}

void PrintJob(const char* name, const PlannedJob& job) {
  std::printf("%-14s %-28s JCT %8s  cost %8s%s\n", name, job.plan.ToString().c_str(),
              FormatDuration(job.estimate.jct_mean).c_str(),
              job.estimate.cost_mean.ToString().c_str(), job.feasible ? "" : "  [infeasible]");
}

// plan/execute for every scheduler beyond sha: one planned job per compiled
// unit, with an aggregate experiment line (units run concurrently).
int RunPlanCompiled(CliSetup& setup) {
  const CompiledPlannedExperiment planned = PlanCompiledExperiment(
      setup.compiled, setup.profile, setup.cloud, setup.deadline, setup.planner);
  for (size_t i = 0; i < planned.units.size(); ++i) {
    PrintJob(setup.compiled.units[i].name.c_str(), planned.units[i]);
  }
  std::printf("%-14s %-28s JCT %8s  cost %8s%s\n", "experiment", "",
              FormatDuration(planned.EstimatedJct()).c_str(),
              planned.EstimatedCost().ToString().c_str(),
              planned.feasible ? "" : "  [infeasible]");
  if (setup.compiled.asha) {
    std::printf("asha: %d worker gangs on the envelope's static plan\n", planned.asha_workers);
  }
  return 0;
}

int RunExecuteCompiled(const Flags& flags, CliSetup& setup) {
  const CompiledPlannedExperiment planned = PlanCompiledExperiment(
      setup.compiled, setup.profile, setup.cloud, setup.deadline, setup.planner);
  for (size_t i = 0; i < planned.units.size(); ++i) {
    PrintJob(setup.compiled.units[i].name.c_str(), planned.units[i]);
  }
  if (setup.compiled.asha) {
    std::printf("asha: %d worker gangs on the envelope's static plan\n", planned.asha_workers);
  }

  const ObsFlags obs = ParseObsFlags(flags);
  ExecutorOptions options;
  options.seed = setup.seed;
  options.observe = obs.Enabled();
  if (setup.mitigate_stragglers) {
    options.straggler.detect = true;
    options.straggler.mitigate = true;
  }
  if (flags.GetBool("replan")) {
    options.replan.enabled = true;
    options.replan.deadline = setup.deadline;
    options.replan.model = setup.profile;
    options.replan.planner = setup.planner;
  }
  const CompiledExecutionReport report =
      ExecuteCompiled(setup.compiled, planned, setup.workload, setup.cloud, options);

  if (report.units.size() == 1) {
    ExecutionFormatOptions format;
    format.show_faults = setup.cloud.fault.Any();
    format.show_stragglers =
        setup.cloud.fault.straggler_rate > 0.0 || report.units[0].stragglers_detected > 0;
    format.show_spot = setup.cloud.spot.enabled;
    format.deadline = setup.deadline;
    std::fputs(FormatExecutionSummary(report.units[0], format).c_str(), stdout);
    std::fputs(FormatStageTable(report.units[0]).c_str(), stdout);
  } else {
    for (size_t i = 0; i < report.units.size(); ++i) {
      const ExecutionReport& unit = report.units[i];
      std::printf("%-14s JCT %8s  cost %8s  best %.1f%%\n",
                  setup.compiled.units[i].name.c_str(), FormatDuration(unit.jct).c_str(),
                  unit.cost.Total().ToString().c_str(), 100.0 * unit.best_accuracy);
    }
  }
  std::printf("experiment: JCT %s, cost %s, best %s at %.1f%%\n",
              FormatDuration(report.jct).c_str(), report.cost.Total().ToString().c_str(),
              report.best_config.ToString().c_str(), 100.0 * report.best_accuracy);
  if (flags.GetBool("trace-csv")) {
    for (const ExecutionReport& unit : report.units) {
      std::printf("\n%s", unit.trace.ToCsv().c_str());
    }
  }

  // The multi-unit fleet view mirrors serve's: one pid per unit.
  MetricsSnapshot metrics;
  Timeline fleet;
  ChromeTraceBuilder chrome;
  for (size_t i = 0; i < report.units.size(); ++i) {
    const int pid = static_cast<int>(i) + 1;
    metrics.Merge(report.units[i].metrics);
    fleet.Append(report.units[i].timeline, pid);
    if (!obs.chrome_trace.empty()) {
      chrome.SetProcessName(pid, setup.compiled.units[i].name);
      chrome.AddTimeline(report.units[i].timeline, pid);
      chrome.AddExecutionTrace(report.units[i].trace, pid);
    }
  }
  return EmitObservability(obs, metrics, fleet,
                           obs.chrome_trace.empty() ? std::string() : chrome.ToJson());
}

int RunPlan(const Flags& flags, CliSetup& setup) {
  if (setup.compiled.scheduler != SchedulerKind::kSha) {
    return RunPlanCompiled(setup);
  }
  const PlannerInputs inputs{setup.spec, setup.profile, setup.cloud, setup.deadline};
  const PlannedJob fixed = PlanStatic(inputs, setup.planner);
  const PlannedJob naive = PlanNaiveElastic(inputs, setup.planner);
  const PlannedJob elastic = PlanGreedy(inputs, setup.planner);
  PrintJob("static", fixed);
  PrintJob("naive-elastic", naive);
  PrintJob("rubberband", elastic);
  if (flags.Has("budget")) {
    const Money budget = Money::FromDollars(flags.GetDouble("budget", 0.0));
    PrintJob("min-time", PlanGreedyMinTime(inputs, budget, setup.planner));
  }
  if (flags.GetBool("render")) {
    std::printf("\n%s", RenderComparison(setup.spec, fixed.plan, elastic.plan, setup.profile,
                                         setup.cloud)
                            .c_str());
  }
  return 0;
}

int RunExecute(const Flags& flags, CliSetup& setup) {
  if (setup.compiled.scheduler != SchedulerKind::kSha) {
    return RunExecuteCompiled(flags, setup);
  }
  const PlannedJob job =
      PlanGreedy({setup.spec, setup.profile, setup.cloud, setup.deadline}, setup.planner);
  PrintJob("rubberband", job);

  const ObsFlags obs = ParseObsFlags(flags);
  ExecutorOptions options;
  options.seed = setup.seed;
  options.observe = obs.Enabled();
  if (setup.mitigate_stragglers) {
    options.straggler.detect = true;
    options.straggler.mitigate = true;
  }
  if (flags.GetBool("replan")) {
    options.replan.enabled = true;
    options.replan.deadline = setup.deadline;
    options.replan.model = setup.profile;
    options.replan.planner = setup.planner;
  }
  const ExecutionReport report = Execute(setup.spec, job.plan, setup.workload, setup.cloud,
                                         options);
  ExecutionFormatOptions format;
  format.show_faults = setup.cloud.fault.Any();
  format.show_stragglers =
      setup.cloud.fault.straggler_rate > 0.0 || report.stragglers_detected > 0;
  format.show_spot = setup.cloud.spot.enabled;
  format.deadline = setup.deadline;
  std::fputs(FormatExecutionSummary(report, format).c_str(), stdout);
  std::fputs(FormatStageTable(report).c_str(), stdout);
  if (flags.GetBool("trace-csv")) {
    std::printf("\n%s", report.trace.ToCsv().c_str());
  }
  return EmitObservability(obs, report.metrics, report.timeline,
                           obs.chrome_trace.empty() ? std::string()
                                                    : ChromeTraceFromReport(report));
}

int RunSweep(const Flags& flags, CliSetup& setup) {
  const double from = flags.GetDouble("from-min", 15.0);
  const double to = flags.GetDouble("to-min", 60.0);
  const double step = flags.GetDouble("step-min", 5.0);
  if (step <= 0.0 || to < from) {
    return Fail("sweep needs from-min <= to-min and step-min > 0");
  }
  std::printf("%-12s %12s %12s %10s\n", "deadline", "static $", "rubberband $", "gain");
  for (double minutes = from; minutes <= to + 1e-9; minutes += step) {
    const PlannerInputs inputs{setup.spec, setup.profile, setup.cloud, Minutes(minutes)};
    // Honor the common planner flags (--plan-threads); sweep used to drop
    // setup.planner on the floor and silently plan single-threaded.
    const PlannedJob fixed = PlanStatic(inputs, setup.planner);
    const PlannedJob elastic = PlanGreedy(inputs, setup.planner);
    if (!elastic.feasible) {
      std::printf("%-12.0f %12s %12s %10s\n", minutes, "-", "-", "infeasible");
      continue;
    }
    std::printf("%-12.0f %12s %12s %9.2fx\n", minutes,
                fixed.estimate.cost_mean.ToString().c_str(),
                elastic.estimate.cost_mean.ToString().c_str(),
                fixed.estimate.cost_mean.dollars() / elastic.estimate.cost_mean.dollars());
  }
  return 0;
}

int RunAshaCommand(const Flags& flags, CliSetup& setup) {
  AshaOptions options;
  options.min_iters = flags.GetInt64("min-iters", 1);
  options.max_iters = flags.GetInt64("max-iters", 50);
  options.reduction_factor = flags.GetInt("eta", 3);
  options.num_workers = flags.GetInt("workers", 8);
  options.gpus_per_trial = flags.GetInt("gpus-per-trial", 1);
  options.time_limit = setup.deadline;
  options.seed = setup.seed;
  const AshaReport report = RunAsha(setup.workload, setup.cloud, options);
  std::printf("ASHA: %d configurations, JCT %s, cost %s\n", report.configurations_sampled,
              FormatDuration(report.jct).c_str(), report.cost.Total().ToString().c_str());
  std::printf("best: %s at %lld iters, accuracy %.1f%%\n",
              report.best_config.ToString().c_str(),
              static_cast<long long>(report.best_config_cum_iters),
              100.0 * report.best_accuracy);
  for (size_t r = 0; r < report.rungs.size(); ++r) {
    std::printf("rung %zu: %d completed, %d promoted\n", r, report.rungs[r].completed,
                report.rungs[r].promoted);
  }
  return 0;
}

ServiceConfig BuildServiceConfig(const Flags& flags, const CliSetup& setup,
                                 const ObsFlags& obs) {
  ServiceConfig config;
  config.cloud = setup.cloud;
  config.observe = obs.Enabled();
  config.capacity_gpus = flags.GetInt("capacity-gpus", 64);
  config.overcommit = flags.GetDouble("overcommit", 1.0);
  if (flags.GetBool("warm")) {
    config.warm_pool.max_parked = flags.GetInt("pool-max", 16);
    config.warm_pool.max_idle_seconds = flags.GetDouble("warm-ttl-s", 300.0);
  }
  config.planner = setup.planner;
  config.seed = setup.seed;
  config.replan_on_faults = flags.GetBool("replan");
  if (setup.mitigate_stragglers) {
    config.straggler.detect = true;
    config.straggler.mitigate = true;
  }
  return config;
}

// `serve --listen`: the networked front door. Blocks until a client drains
// the server (snapshot written to --snapshot) or the process is killed.
int RunServeListen(const Flags& flags, const ServiceConfig& config) {
  ServerOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  options.port = flags.GetInt("port", 8787);
  options.queue_capacity = static_cast<size_t>(flags.GetInt("queue-cap", 256));
  options.rate.rate_per_second = flags.GetDouble("rate", 0.0);
  options.rate.burst = flags.GetDouble("burst", 8.0);
  options.runner.service = config;
  options.runner.auto_advance_step = flags.GetDouble("auto-advance-s", 1.0);
  options.snapshot_path = flags.GetString("snapshot", "rubberband.snapshot.json");
  // Crash durability: with --wal set, every submit/cancel is journaled
  // (and fsynced per --wal-fsync) before its ack, and a restart with the
  // same --wal resumes from the journal automatically.
  options.runner.wal_path = flags.GetString("wal", "");
  if (flags.Has("wal-fsync")) {
    if (!ParseFsyncPolicy(flags.GetString("wal-fsync", "always"), &options.runner.wal.fsync)) {
      return Fail("--wal-fsync must be always, batch, or off");
    }
  }
  options.idle_timeout_ms = flags.GetInt("idle-timeout-ms", 300'000);
  options.frame_timeout_ms = flags.GetInt("frame-timeout-ms", 30'000);

  Server server(options);
  std::string error;
  const std::string restore_path = flags.GetString("restore", "");
  bool started = false;
  if (!restore_path.empty()) {
    std::ifstream in(restore_path, std::ios::binary);
    if (!in) {
      return Fail("cannot read snapshot '" + restore_path + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      started = server.StartRestored(buffer.str(), &error);
    } catch (const std::exception& e) {
      return Fail(std::string("snapshot restore failed: ") + e.what());
    }
    if (started) {
      std::fprintf(stderr, "restored from %s\n", restore_path.c_str());
    }
  } else {
    started = server.Start(&error);
  }
  if (!started) {
    return Fail(error);
  }
  std::fprintf(stderr, "serving on %s:%d (drain with: rubberband client drain)\n",
               options.host.c_str(), server.port());
  server.Wait();
  server.Stop();
  if (server.draining()) {
    std::fprintf(stderr, "drained; snapshot at %s (resume with --restore=%s)\n",
                 options.snapshot_path.c_str(), options.snapshot_path.c_str());
  }
  return 0;
}

int RunServe(const Flags& flags, CliSetup& setup) {
  const ObsFlags obs = ParseObsFlags(flags);
  const ServiceConfig config = BuildServiceConfig(flags, setup, obs);
  if (flags.GetBool("listen")) {
    return RunServeListen(flags, config);
  }

  const int num_jobs = flags.GetInt("jobs", 4);
  const double gap = flags.GetDouble("gap-s", 120.0);
  if (num_jobs < 1 || gap < 0.0) {
    return Fail("serve needs --jobs >= 1 and --gap-s >= 0");
  }

  TuningService service(config);
  for (int i = 0; i < num_jobs; ++i) {
    // Every scheduler goes through the experiment front end; a sha
    // experiment submits exactly the job the old hard-coded loop did.
    ExperimentRequest job;
    job.name = "job-" + std::to_string(i);
    job.ir = setup.ir;
    job.workload = setup.workload;
    job.submit_at = gap * i;
    job.deadline = setup.deadline;
    job.budget = Money::FromDollars(flags.GetDouble("budget", 0.0));
    service.SubmitExperiment(job);
  }
  const ServiceReport report = service.Run();

  std::fputs(FormatServiceJobTable(report).c_str(), stdout);
  ServiceFormatOptions service_format;
  service_format.show_faults = setup.cloud.fault.Any();
  service_format.show_stragglers =
      setup.cloud.fault.straggler_rate > 0.0 || report.total_stragglers_detected > 0;
  service_format.show_spot = setup.cloud.spot.enabled;
  std::fputs(FormatServiceSummary(report, service_format).c_str(), stdout);
  // The fleet view: service-level spans plus every job's executor phases
  // (each job keeps its own pid, matching the Chrome export's process map).
  Timeline fleet = report.timeline;
  for (size_t i = 0; i < report.jobs.size(); ++i) {
    fleet.Append(report.jobs[i].timeline, static_cast<int>(i) + 1);
  }
  return EmitObservability(obs, report.metrics, fleet,
                           obs.chrome_trace.empty() ? std::string()
                                                    : ChromeTraceFromService(report));
}

// `rubberband client <action> [--flags]`: one request against a running
// `serve --listen` server. Prints the response; exit 0 on ok, 1 on a
// protocol error, 2 on transport failure.
int RunClient(const std::string& action, const Flags& flags) {
  ClientOptions client_options;
  client_options.connect_timeout_ms = flags.GetInt("connect-timeout-ms", 10'000);
  client_options.io_timeout_ms = flags.GetInt("timeout-ms", 30'000);
  client_options.max_attempts = flags.GetInt("retries", 1);
  Client client(client_options);
  std::string error;
  if (!client.Connect(flags.GetString("host", "127.0.0.1"), flags.GetInt("port", 8787),
                      &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  JsonValue params = JsonValue::MakeObject();
  if (action == "submit") {
    params.Set("name", JsonValue::MakeString(flags.GetString("name", "job")));
    params.Set("workload",
               JsonValue::MakeString(flags.GetString("workload", "resnet101-cifar10")));
    params.Set("trials", JsonValue::MakeNumber(flags.GetInt("trials", 32)));
    params.Set("min_iters",
               JsonValue::MakeNumber(static_cast<double>(flags.GetInt64("min-iters", 1))));
    params.Set("max_iters",
               JsonValue::MakeNumber(static_cast<double>(flags.GetInt64("max-iters", 50))));
    params.Set("eta", JsonValue::MakeNumber(flags.GetInt("eta", 3)));
    params.Set("deadline_s", JsonValue::MakeNumber(flags.GetDouble("deadline-min", 20.0) * 60.0));
    params.Set("budget_dollars", JsonValue::MakeNumber(flags.GetDouble("budget", 0.0)));
    params.Set("weight", JsonValue::MakeNumber(flags.GetDouble("weight", 1.0)));
  } else if (action == "status" || action == "cancel") {
    if (flags.Has("job")) {
      params.Set("job", JsonValue::MakeString(flags.GetString("job", "")));
    } else if (action == "cancel") {
      return Fail("client cancel needs --job=<name>");
    }
  } else if (action == "advance") {
    params.Set("seconds", JsonValue::MakeNumber(flags.GetDouble("seconds", 60.0)));
  } else if (action == "drain") {
    params.Set("mode", JsonValue::MakeString(flags.GetString("mode", "snapshot")));
  } else if (action != "report" && action != "metrics" && action != "trace" &&
             action != "ping") {
    return Fail("unknown client action '" + action +
                "' (submit|status|cancel|report|metrics|trace|advance|drain|ping)");
  }

  // --idem gives retried submits/cancels at-most-once semantics: the
  // server journals the first decision under the key and answers retries
  // with it verbatim, even across a crash-restart.
  JsonValue response;
  if (!client.CallIdempotent(action, params, flags.GetString("tenant", "default"),
                             flags.GetString("idem", ""), &response, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  const bool ok = response.Has("ok") && response.at("ok").bool_value();
  if (!ok) {
    std::fprintf(stderr, "%s\n", response.ToJson().c_str());
    return 1;
  }
  const JsonValue& result = response.at("result");
  // The report's human rendering comes through as a text field — print it
  // as a terminal report, not an escaped JSON string.
  if (action == "report" && result.Has("text")) {
    std::printf("%s", result.at("text").string().c_str());
  } else if (action == "metrics" && result.Has("metrics")) {
    std::printf("%s\n", result.at("metrics").ToJson().c_str());
  } else if (action == "trace" && result.Has("chrome_trace")) {
    const std::string out_path = flags.GetString("out", "");
    if (out_path.empty()) {
      std::printf("%s", result.at("chrome_trace").string().c_str());
    } else if (!WriteFile(out_path, result.at("chrome_trace").string())) {
      return 1;
    } else {
      std::fprintf(stderr, "chrome trace: wrote %s\n", out_path.c_str());
    }
  } else {
    std::printf("%s\n", result.ToJson().c_str());
  }
  return 0;
}

int RunTraceToChrome(const Flags& flags) {
  const std::string in_path = flags.GetString("in", "");
  if (in_path.empty()) {
    return Fail("trace2chrome needs --in=<trace.csv> (output of execute --trace-csv)");
  }
  std::ifstream in(in_path, std::ios::binary);
  if (!in) {
    return Fail("cannot read '" + in_path + "'");
  }
  std::ostringstream csv;
  csv << in.rdbuf();

  int parse_errors = 0;
  ExecutionTrace trace;
  try {
    trace = ExecutionTrace::FromCsv(csv.str(), &parse_errors);
  } catch (const std::exception& e) {
    return Fail(std::string("unparseable trace CSV: ") + e.what());
  }
  std::fprintf(stderr, "trace2chrome: %zu events from %s", trace.events().size(),
               in_path.c_str());
  if (parse_errors > 0) {
    std::fprintf(stderr, " (%d malformed row%s skipped)", parse_errors,
                 parse_errors == 1 ? "" : "s");
  }
  std::fprintf(stderr, "\n");

  ChromeTraceBuilder builder;
  builder.SetProcessName(1, "job");
  builder.AddExecutionTrace(trace, 1);
  const std::string json = builder.ToJson();

  const std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::printf("%s", json.c_str());
  } else if (!WriteFile(out_path, json)) {
    return 1;
  } else {
    std::fprintf(stderr, "trace2chrome: wrote %s\n", out_path.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s plan|execute|sweep|asha|serve|client|trace2chrome [--flags]\n",
                 argv[0]);
    return 2;
  }
  const std::string command = argv[1];

  // client is a pure network front end — no workload setup, and its action
  // word comes before the flags.
  if (command == "client") {
    if (argc < 3 || argv[2][0] == '-') {
      std::fprintf(stderr,
                   "usage: %s client submit|status|cancel|report|metrics|trace|advance|"
                   "drain|ping [--host=.. --port=.. --tenant=..]\n",
                   argv[0]);
      return 2;
    }
    const std::string action = argv[2];
    const Flags client_flags = Flags::Parse(argc - 3, argv + 3);
    const int status = RunClient(action, client_flags);
    for (const std::string& key : client_flags.UnusedKeys()) {
      std::fprintf(stderr, "warning: unused flag --%s\n", key.c_str());
    }
    return status;
  }

  const Flags flags = Flags::Parse(argc - 2, argv + 2);

  // trace2chrome is a pure file converter — no workload setup (or banner).
  if (command == "trace2chrome") {
    const int status = RunTraceToChrome(flags);
    for (const std::string& key : flags.UnusedKeys()) {
      std::fprintf(stderr, "warning: unused flag --%s\n", key.c_str());
    }
    return status;
  }

  CliSetup setup;
  if (!BuildSetup(flags, setup)) {
    return 1;
  }

  int status = 2;
  if (command == "plan") {
    status = RunPlan(flags, setup);
  } else if (command == "execute") {
    status = RunExecute(flags, setup);
  } else if (command == "sweep") {
    status = RunSweep(flags, setup);
  } else if (command == "asha") {
    status = RunAshaCommand(flags, setup);
  } else if (command == "serve") {
    status = RunServe(flags, setup);
  } else {
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return 2;
  }

  for (const std::string& key : flags.UnusedKeys()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", key.c_str());
  }
  return status;
}

}  // namespace
}  // namespace rubberband

int main(int argc, char** argv) { return rubberband::Main(argc, argv); }
