#!/usr/bin/env bash
# Tier-1 verification: configure, build (the src/ library compiles with
# -Wall -Wextra; any compiler warning fails the check), and run the full
# test suite. The build/test sequence is the same one CI and ROADMAP.md
# use:
#
#   cmake -B build -S . && cmake --build build -j && \
#     cd build && ctest --output-on-failure -j
#
# Run from the repository root: tools/check.sh
#
# tools/check.sh --sanitize rebuilds into build-asan/ with
# -fsanitize=address,undefined and runs the suite under both sanitizers
# (slower; catches the memory and UB bugs the plain build cannot).
#
# tools/check.sh --tsan rebuilds into build-tsan/ with -fsanitize=thread
# and runs the concurrency-relevant subset (thread pool, parallel plan
# evaluation, planners, service, straggler handling) under ThreadSanitizer.
#
# tools/check.sh --all runs the three tiers back to back (default,
# --sanitize, --tsan) and prints a one-line pass/fail verdict per tier.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--all" ]]; then
  declare -a tiers=(default sanitize tsan)
  declare -a verdicts=()
  status=0
  for tier in "${tiers[@]}"; do
    args=()
    [[ "$tier" != default ]] && args=("--$tier")
    if "$0" "${args[@]}"; then
      verdicts+=("PASS  $tier")
    else
      verdicts+=("FAIL  $tier")
      status=1
    fi
  done
  echo
  echo "=== tools/check.sh --all summary ==="
  for verdict in "${verdicts[@]}"; do
    echo "$verdict"
  done
  exit "$status"
fi

build_dir=build
cmake_args=()
ctest_args=()
if [[ "${1:-}" == "--sanitize" ]]; then
  build_dir=build-asan
  cmake_args+=(
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
    "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
    "-DCMAKE_EXE_LINKER_FLAGS=-fsanitize=address,undefined"
  )
elif [[ "${1:-}" == "--tsan" ]]; then
  build_dir=build-tsan
  cmake_args+=(
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
    "-DCMAKE_CXX_FLAGS=-fsanitize=thread -fno-omit-frame-pointer"
    "-DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread"
  )
  ctest_args+=(-R '(ThreadPool|PlanEvaluator|Planner|FairAllocation|Service|Straggler)')
elif [[ $# -gt 0 ]]; then
  echo "usage: tools/check.sh [--sanitize|--tsan|--all]" >&2
  exit 2
fi

log="$(mktemp)"
trap 'rm -f "$log"' EXIT

cmake -B "$build_dir" -S . "${cmake_args[@]}"
cmake --build "$build_dir" -j 2>&1 | tee "$log"
if grep -E "warning:" "$log" >/dev/null; then
  echo "error: compiler warnings detected (see above)" >&2
  exit 1
fi

cd "$build_dir"
ctest --output-on-failure "${ctest_args[@]}" -j
