#!/usr/bin/env bash
# Tier-1 verification: configure, build (the src/ library compiles with
# -Wall -Wextra; any compiler warning fails the check), and run the full
# test suite. The build/test sequence is the same one CI and ROADMAP.md
# use:
#
#   cmake -B build -S . && cmake --build build -j && \
#     cd build && ctest --output-on-failure -j
#
# Run from the repository root: tools/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

log="$(mktemp)"
trap 'rm -f "$log"' EXIT

cmake -B build -S .
cmake --build build -j 2>&1 | tee "$log"
if grep -E "warning:" "$log" >/dev/null; then
  echo "error: compiler warnings detected (see above)" >&2
  exit 1
fi

cd build
ctest --output-on-failure -j
