#!/usr/bin/env bash
# Tier-1 verification: configure, build (the src/ library compiles with
# -Wall -Wextra; any compiler warning fails the check), and run the full
# test suite. The build/test sequence is the same one CI and ROADMAP.md
# use:
#
#   cmake -B build -S . && cmake --build build -j && \
#     cd build && ctest --output-on-failure -j
#
# Run from the repository root: tools/check.sh
#
# The default tier also enforces a wall-clock budget (RB_SMOKE_BUDGET_S,
# default 300s) on the test run: the smoke suite is the edit-compile-test
# loop, and a runaway test that balloons it should fail loudly, not be
# quietly absorbed.
#
# tools/check.sh --conformance runs only the sim-vs-execution conformance
# and golden-artifact suite (ctest -L conformance) in the default build
# tree.
#
# tools/check.sh --server runs only the serving front door suite (ctest
# -L server): framing, admission queue, rate limiter, wire protocol,
# snapshot/restore, and the socket end-to-end tests.
#
# tools/check.sh --sanitize rebuilds into build-asan/ with
# -fsanitize=address,undefined and runs the suite under both sanitizers
# (slower; catches the memory and UB bugs the plain build cannot). This
# includes the seeded experiment-IR fuzz suite (SpecIrFuzz), so malformed
# spec rejection paths are exercised under ASan/UBSan every run.
#
# tools/check.sh --tsan rebuilds into build-tsan/ with -fsanitize=thread
# and runs the concurrency-relevant subset (thread pool, parallel plan
# evaluation, planners, service, straggler handling, metrics registry,
# plus the plan-compiler and mixed-scheduler service suites) under
# ThreadSanitizer via the tsan ctest label (-DRB_TSAN_SUITE=ON).
#
# tools/check.sh --chaos runs the front-door durability tier in the
# default build tree: the WAL torn-write recovery matrix and idempotency
# suites (ctest -R), then bench/chaos_server across three seeds — a
# seeded kill/restart schedule whose final report must be byte-identical
# to the uninterrupted run.
#
# tools/check.sh --perf runs the control-plane/DES-kernel throughput
# gate in the default build tree: bench/service_throughput --fleet 10000
# (a 10k-job sha trace plus a 2k-experiment mixed-scheduler trace) under
# a wall-clock budget (RB_PERF_BUDGET_S, default 60s), plus the kernel
# microbench allocation check (bench/micro_simulator --json). Any
# EventCallback heap fallback or budget overrun fails the tier.
#
# tools/check.sh --spot runs the spot-market survival tier in the default
# build tree: the Spot* suites (market mechanics, eager checkpoints,
# fallback, risk-aware planning, billing) via ctest -R, then
# bench/spot_sweep — whose hard self-checks (inert-market row byte-equal
# to on-demand; moderate volatility >= 25% cheaper without giving up the
# deadline) regenerate BENCH_spot.json.
#
# tools/check.sh --all runs the eight tiers back to back (default,
# --conformance, --server, --sanitize, --tsan, --chaos, --perf, --spot)
# and prints a one-line pass/fail verdict per tier.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--all" ]]; then
  declare -a tiers=(default conformance server sanitize tsan chaos perf spot)
  declare -a verdicts=()
  status=0
  for tier in "${tiers[@]}"; do
    args=()
    [[ "$tier" != default ]] && args=("--$tier")
    if "$0" "${args[@]}"; then
      verdicts+=("PASS  $tier")
    else
      verdicts+=("FAIL  $tier")
      status=1
    fi
  done
  echo
  echo "=== tools/check.sh --all summary ==="
  for verdict in "${verdicts[@]}"; do
    echo "$verdict"
  done
  exit "$status"
fi

build_dir=build
budget_s=""
chaos_bench=""
perf_bench=""
spot_bench=""
cmake_args=()
ctest_args=()
if [[ "${1:-}" == "--sanitize" ]]; then
  build_dir=build-asan
  cmake_args+=(
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
    "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
    "-DCMAKE_EXE_LINKER_FLAGS=-fsanitize=address,undefined"
  )
elif [[ "${1:-}" == "--tsan" ]]; then
  build_dir=build-tsan
  cmake_args+=(
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
    -DRB_TSAN_SUITE=ON
    "-DCMAKE_CXX_FLAGS=-fsanitize=thread -fno-omit-frame-pointer"
    "-DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread"
  )
  ctest_args+=(-L tsan)
elif [[ "${1:-}" == "--conformance" ]]; then
  ctest_args+=(-L conformance)
elif [[ "${1:-}" == "--server" ]]; then
  ctest_args+=(-L server)
elif [[ "${1:-}" == "--chaos" ]]; then
  ctest_args+=(-R "Wal|Idempotency|ServerFault")
  chaos_bench=1
elif [[ "${1:-}" == "--perf" ]]; then
  ctest_args+=(-R "EventQueue")
  perf_bench=1
elif [[ "${1:-}" == "--spot" ]]; then
  ctest_args+=(-R "Spot")
  spot_bench=1
elif [[ $# -eq 0 ]]; then
  budget_s="${RB_SMOKE_BUDGET_S:-300}"
else
  echo "usage: tools/check.sh [--conformance|--server|--sanitize|--tsan|--chaos|--perf|--all]" >&2
  exit 2
fi

log="$(mktemp)"
trap 'rm -f "$log"' EXIT

cmake -B "$build_dir" -S . "${cmake_args[@]}"
cmake --build "$build_dir" -j 2>&1 | tee "$log"
if grep -E "warning:" "$log" >/dev/null; then
  echo "error: compiler warnings detected (see above)" >&2
  exit 1
fi

cd "$build_dir"
test_start=$SECONDS
ctest --output-on-failure "${ctest_args[@]}" -j
if [[ -n "$chaos_bench" ]]; then
  echo "=== bench/chaos_server: seeded kill/restart byte-identity ==="
  ./bench/chaos_server --seeds=3 --jobs=12 --kill-rate=0.3
fi
if [[ -n "$perf_bench" ]]; then
  echo "=== bench/micro_simulator --json: kernel events/s + allocation check ==="
  ./bench/micro_simulator --json "$(mktemp)"
  echo "=== bench/service_throughput --fleet 10000: control-plane budget gate ==="
  ./bench/service_throughput --fleet 10000 --budget-s "${RB_PERF_BUDGET_S:-60}"
fi
if [[ -n "$spot_bench" ]]; then
  echo "=== bench/spot_sweep: volatility regimes + inert-market self-check ==="
  ./bench/spot_sweep --json ../BENCH_spot.json
fi
test_elapsed=$((SECONDS - test_start))
if [[ -n "$budget_s" ]]; then
  echo "test wall clock: ${test_elapsed}s (budget ${budget_s}s)"
  if (( test_elapsed > budget_s )); then
    echo "error: test suite exceeded its ${budget_s}s wall-clock budget" >&2
    exit 1
  fi
fi
