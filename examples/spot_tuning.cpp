// Tuning on spot (pre-emptible) capacity: cheaper GPUs, interrupted trials.
//
// RubberBand's checkpoint/restore machinery makes spot viable: when the
// provider reclaims an instance, affected trials roll back to their
// stage-start checkpoint and restart on replacement capacity. This example
// sweeps the reclamation rate to show the trade-off: deep discounts win
// until restart rework and deadline misses eat them.

#include <cstdio>

#include "src/rubberband.h"

int main() {
  using namespace rubberband;

  const ExperimentSpec spec = MakeSha(32, 1, 50, 3);
  const WorkloadSpec workload = ResNet101Cifar10();
  const ModelProfile profile = ProfileWorkload(workload).profile;

  CloudProfile on_demand;
  on_demand.instance = P3_8xlarge();
  on_demand.provisioning = ProvisioningModel::Fixed(5.0, 10.0);

  const Seconds deadline = Minutes(20);
  const PlannedJob job = CompilePlan(spec, profile, on_demand, deadline);
  std::printf("plan %s (planned against on-demand, %s deadline)\n\n",
              job.plan.ToString().c_str(), FormatDuration(deadline).c_str());

  std::printf("%-26s %10s %10s %12s %10s\n", "market", "JCT", "cost", "preemptions",
              "restarts");
  const ExecutionReport baseline = Execute(spec, job.plan, workload, on_demand);
  std::printf("%-26s %10s %10s %12d %10d\n", "on-demand",
              FormatDuration(baseline.jct).c_str(), baseline.cost.Total().ToString().c_str(),
              baseline.preemptions, baseline.trial_restarts);

  for (double mttp_minutes : {120.0, 30.0, 10.0, 5.0}) {
    CloudProfile spot = on_demand;
    spot.spot.enabled = true;
    spot.spot.discount = 0.3;
    spot.spot.mean_time_to_preemption = Minutes(mttp_minutes);
    const ExecutionReport report = Execute(spec, job.plan, workload, spot);
    char label[64];
    std::snprintf(label, sizeof(label), "spot (reclaim ~%.0f min)", mttp_minutes);
    std::printf("%-26s %10s %10s %12d %10d%s\n", label, FormatDuration(report.jct).c_str(),
                report.cost.Total().ToString().c_str(), report.preemptions,
                report.trial_restarts, report.jct > deadline ? "  [missed deadline]" : "");
  }

  std::printf("\nThe 70%% discount absorbs a lot of rework, but the JCT guarantee is\n"
              "gone: every reclamation rolls the affected trials back to the last\n"
              "stage boundary. Deadline-critical jobs should stay on-demand.\n");
  return 0;
}
