// Hyperband as a RubberBand multi-job (paper Figure 6: "a collection of
// [specifications] can specify Hyperband-based methods as a multi-job").
//
// Each Hyperband bracket is an independent SHA job; RubberBand compiles a
// separate elastic plan per bracket and executes them back to back, then
// reports the best configuration across all brackets.

#include <cstdio>

#include "src/rubberband.h"

int main() {
  using namespace rubberband;

  const std::vector<ExperimentSpec> brackets = MakeHyperband({/*max_iters=*/27,
                                                              /*reduction_factor=*/3});
  const WorkloadSpec workload = ResNet50(Cifar10(), 512);
  const ModelProfile profile = ProfileWorkload(workload).profile;

  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);

  const Seconds per_bracket_deadline = Minutes(15);
  Money total_cost;
  Seconds total_jct = 0.0;
  double best_accuracy = 0.0;
  HyperparameterConfig best_config;

  std::printf("%-9s %-34s %12s %10s %8s\n", "bracket", "spec", "plan cost", "JCT", "acc");
  for (size_t s = 0; s < brackets.size(); ++s) {
    const ExperimentSpec& bracket = brackets[s];
    const PlannedJob job = CompilePlan(bracket, profile, cloud, per_bracket_deadline);
    ExecutorOptions options;
    options.seed = s + 1;  // each bracket samples fresh configurations
    const ExecutionReport report = Execute(bracket, job.plan, workload, cloud, options);

    total_cost += report.cost.Total();
    total_jct += report.jct;
    if (report.best_accuracy > best_accuracy) {
      best_accuracy = report.best_accuracy;
      best_config = report.best_config;
    }
    std::printf("%-9zu %-34s %12s %10s %7.1f%%\n", s, bracket.ToString().c_str(),
                report.cost.Total().ToString().c_str(), FormatDuration(report.jct).c_str(),
                100.0 * report.best_accuracy);
  }

  std::printf("\nHyperband total: cost %s, wall time %s\n", total_cost.ToString().c_str(),
              FormatDuration(total_jct).c_str());
  std::printf("best configuration overall: %s (%.1f%%)\n", best_config.ToString().c_str(),
              100.0 * best_accuracy);
  return 0;
}
