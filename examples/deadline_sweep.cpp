// Exploring the cost/deadline trade-off before committing to a constraint.
//
// Because RubberBand plans offline against a simulator, a practitioner can
// sweep candidate deadlines in milliseconds of CPU time and pick the knee of
// the cost curve — tightening the deadline past the knee buys little time at
// a steep price, while relaxing beyond it saves almost nothing.

#include <cstdio>

#include "src/rubberband.h"

int main() {
  using namespace rubberband;

  const ExperimentSpec spec = MakeSha(32, 1, 50, 3);
  const ModelProfile profile = ProfileWorkload(ResNet101Cifar10()).profile;
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);

  std::printf("%-12s %12s %12s %14s %14s\n", "deadline", "static $", "elastic $",
              "elastic JCT", "elastic plan");
  for (int minutes = 16; minutes <= 60; minutes += 4) {
    const Seconds deadline = Minutes(minutes);
    const PlannedJob fixed = PlanStatic({spec, profile, cloud, deadline});
    const PlannedJob elastic = CompilePlan(spec, profile, cloud, deadline);
    if (!elastic.feasible) {
      std::printf("%-12d %12s %12s %14s %14s\n", minutes, "-", "-", "infeasible", "-");
      continue;
    }
    std::printf("%-12d %12s %12s %14s  %s\n", minutes,
                fixed.feasible ? fixed.estimate.cost_mean.ToString().c_str() : "-",
                elastic.estimate.cost_mean.ToString().c_str(),
                FormatDuration(elastic.estimate.jct_mean).c_str(),
                elastic.plan.ToString().c_str());
  }

  std::printf("\nReading the sweep: the cheapest achievable cost flattens once the\n"
              "deadline stops forcing extra parallelism; pick the knee.\n");
  return 0;
}
