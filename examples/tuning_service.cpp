// Running RubberBand as a service: many tenants, one elastic cluster.
//
// A single tuning job rents its cluster, pays the provisioning tax once,
// and walks away. A tuning *service* amortizes that tax across a stream of
// jobs: admission control runs the planner on every arrival and rejects
// deadlines it cannot honor, a weighted max-min arbiter divides the GPUs
// among whatever is running, and a warm pool recycles one job's
// still-billed instances into the next job's scale-up so successors skip
// the queuing + init delay entirely.
//
// This example replays the same five-job arrival trace twice — cold
// (every release terminates) and warm — and compares the bills.

#include <cstdio>

#include "src/rubberband.h"

int main() {
  using namespace rubberband;

  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  // Provisioning is expensive here (~2.5 min to a usable machine, billed
  // from launch) — exactly the regime the warm pool is for.
  cloud.provisioning = ProvisioningModel::Fixed(30.0, 120.0);

  ServiceConfig config;
  config.cloud = cloud;
  config.capacity_gpus = 4;
  config.seed = 7;

  // Five tenants submit within five minutes; a one-instance cluster works
  // through them back to back. Every hand-off from a finishing job to the
  // next in the queue happens the moment the instance is released — the
  // warm pool turns that into a zero-idle, zero-init hand-over.
  const auto replay = [&](const WarmPoolConfig& pool) {
    TuningService service([&] {
      ServiceConfig c = config;
      c.warm_pool = pool;
      return c;
    }());
    for (int i = 0; i < 5; ++i) {
      JobRequest job;
      job.name = "tenant-" + std::to_string(i);
      job.spec = MakeSha(/*num_trials=*/8, /*min_iters=*/2, /*max_iters=*/14,
                         /*reduction_factor=*/2);
      job.workload = ResNet101Cifar10();
      job.submit_at = 60.0 * i;
      job.deadline = Minutes(150);
      service.Submit(job);
    }
    return service.Run();
  };

  const ServiceReport cold = replay(WarmPoolConfig{/*max_parked=*/0});
  const ServiceReport warm = replay(WarmPoolConfig{/*max_parked=*/16,
                                                   /*max_idle_seconds=*/300.0});

  std::printf("%-28s %12s %12s\n", "", "cold", "warm");
  std::printf("%-28s %12d %12d\n", "jobs completed", cold.completed, warm.completed);
  std::printf("%-28s %12d %12d\n", "deadline misses", cold.deadline_misses,
              warm.deadline_misses);
  std::printf("%-28s %12d %12d\n", "instance launches", cold.instance_launches,
              warm.instance_launches);
  std::printf("%-28s %11.0f%% %11.0f%%\n", "warm hit rate", 100.0 * cold.warm.HitRate(),
              100.0 * warm.warm.HitRate());
  std::printf("%-28s %12.0f %12.0f\n", "init seconds saved", cold.warm.init_seconds_saved,
              warm.warm.init_seconds_saved);
  std::printf("%-28s %12s %12s\n", "total bill", cold.total_cost.Total().ToString().c_str(),
              warm.total_cost.Total().ToString().c_str());
  std::printf("%-28s %12s %12s\n", "$/job",
              cold.cost_per_completed_job.ToString().c_str(),
              warm.cost_per_completed_job.ToString().c_str());

  const double saved =
      cold.total_cost.Total().dollars() - warm.total_cost.Total().dollars();
  std::printf("\nwarm reuse saved $%.2f (%.1f%%) on the same trace\n", saved,
              100.0 * saved / cold.total_cost.Total().dollars());
  return 0;
}
