// What-if analysis: how would this tuning job's cost change under
// serverless-style per-function billing, with pricier data ingress, or on a
// bigger instance type?
//
// The paper treats billing granularity, data price and instance choice as
// model parameters (section 4.1) precisely so questions like these can be
// answered before spending a dollar. This example prices one workload under
// six cloud configurations.

#include <cstdio>

#include "src/rubberband.h"

namespace {

struct Scenario {
  const char* name;
  rubberband::CloudProfile cloud;
};

}  // namespace

int main() {
  using namespace rubberband;

  const ExperimentSpec spec = MakeSha(64, 4, 508, 2);
  WorkloadSpec workload = ResNet50(Cifar10(), 512);
  const ModelProfile profile = ProfileWorkload(workload).profile;
  const Seconds deadline = Minutes(15);

  CloudProfile base;
  base.instance = P3_8xlarge();
  base.provisioning = ProvisioningModel::Fixed(5.0, 10.0);

  CloudProfile serverless = base;
  serverless.pricing.billing = BillingModel::kPerFunction;
  serverless.pricing.minimum_billed_seconds = 0.0;
  serverless.provisioning = ProvisioningModel::Fixed(1.0, 1.0);

  CloudProfile pricey_data = base;
  pricey_data.pricing.data_price_per_gb = Money::FromCents(16);

  CloudProfile big_nodes = base;
  big_nodes.instance = P3_16xlarge();

  CloudProfile small_nodes = base;
  small_nodes.instance = P3_2xlarge();

  CloudProfile slow_provisioning = base;
  slow_provisioning.provisioning = ProvisioningModel::Fixed(30.0, 120.0);

  const Scenario scenarios[] = {
      {"on-demand p3.8xlarge (baseline)", base},
      {"per-function billing", serverless},
      {"$0.16/GB data ingress", pricey_data},
      {"p3.16xlarge (8 GPUs/node)", big_nodes},
      {"p3.2xlarge (1 GPU/node)", small_nodes},
      {"cold provisioning (150 s)", slow_provisioning},
  };

  std::printf("%-34s %12s %12s %10s\n", "scenario", "static $", "elastic $", "gain");
  for (const Scenario& scenario : scenarios) {
    const PlannedJob fixed = PlanStatic({spec, profile, scenario.cloud, deadline});
    const PlannedJob elastic = CompilePlan(spec, profile, scenario.cloud, deadline);
    const double gain =
        fixed.estimate.cost_mean.dollars() / elastic.estimate.cost_mean.dollars();
    std::printf("%-34s %12s %12s %9.2fx%s\n", scenario.name,
                fixed.estimate.cost_mean.ToString().c_str(),
                elastic.estimate.cost_mean.ToString().c_str(), gain,
                elastic.feasible ? "" : "  (infeasible)");
  }

  std::printf("\nNotes: per-function billing removes straggler-idle cost entirely;\n"
              "high ingress prices penalize wide (many-instance) plans; slow\n"
              "provisioning discourages mid-job scale-up.\n");
  return 0;
}
