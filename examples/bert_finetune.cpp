// Fine-tuning BERT on RTE under a deadline — the paper's NLP workload
// (Table 4).
//
// BERT is the worst scaler in the zoo (heavy all-reduce traffic), so its
// cost-optimal plans look different from the ResNet ones: the planner keeps
// per-trial allocations small and leans on stage-level parallelism instead.
// This example also shows how to inspect the compiled plan before paying
// for it.

#include <cstdio>

#include "src/rubberband.h"

int main() {
  using namespace rubberband;

  const ExperimentSpec spec = MakeSha(/*num_trials=*/32, /*min_iters=*/2,
                                      /*max_iters=*/40, /*reduction_factor=*/3);
  const WorkloadSpec workload = BertRte();
  const ModelProfile profile = ProfileWorkload(workload).profile;

  std::printf("BERT/RTE scaling (profiled): ");
  for (int gpus : {1, 2, 4, 8, 16}) {
    std::printf("%d->%.2fx  ", gpus, profile.scaling.Speedup(gpus));
  }
  std::printf("\n");

  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);

  const Seconds deadline = Minutes(20);
  const PlannedJob fixed = PlanStatic({spec, profile, cloud, deadline});
  const PlannedJob job = CompilePlan(spec, profile, cloud, deadline);

  std::printf("\nfixed cluster:  %s  cost %s  JCT %s\n", fixed.plan.ToString().c_str(),
              fixed.estimate.cost_mean.ToString().c_str(),
              FormatDuration(fixed.estimate.jct_mean).c_str());
  std::printf("RubberBand:     %s  cost %s  JCT %s\n", job.plan.ToString().c_str(),
              job.estimate.cost_mean.ToString().c_str(),
              FormatDuration(job.estimate.jct_mean).c_str());

  // Inspect before executing: per-stage efficiency of the chosen plan.
  std::printf("\nstage  trials  GPUs  GPUs/trial  parallel-efficiency\n");
  for (int i = 0; i < spec.num_stages(); ++i) {
    const int gpt = GpusPerTrial(job.plan.gpus(i), spec.stage(i).num_trials);
    std::printf("%5d  %6d  %4d  %10d  %18.0f%%\n", i, spec.stage(i).num_trials,
                job.plan.gpus(i), gpt, 100.0 * profile.scaling.Efficiency(gpt));
  }

  const ExecutionReport report = Execute(spec, job.plan, workload, cloud);
  std::printf("\nexecuted: JCT %s (deadline %s), cost %s, RTE accuracy %.1f%%\n",
              FormatDuration(report.jct).c_str(), FormatDuration(deadline).c_str(),
              report.cost.Total().ToString().c_str(), 100.0 * report.best_accuracy);
  std::printf("winning config: %s\n", report.best_config.ToString().c_str());
  return 0;
}
