// Quickstart: tune ResNet-101 on CIFAR-10 under a 20-minute deadline.
//
// Walks the complete RubberBand workflow from the paper's Figure 6:
//  1. declare a Successive Halving experiment,
//  2. profile the model's training latency and scaling,
//  3. compile a cost-minimizing elastic allocation plan,
//  4. execute it on the (simulated) cloud,
// and compares against the cost-optimal static cluster.

#include <cstdio>

#include "src/rubberband.h"

int main() {
  using namespace rubberband;

  // 1. Experiment: SHA with 32 trials, eta = 3, up to 50 epochs (Table 2).
  const ExperimentSpec spec = MakeSha(/*num_trials=*/32, /*min_iters=*/1,
                                      /*max_iters=*/50, /*reduction_factor=*/3);
  std::printf("Experiment: %s\n", spec.ToString().c_str());

  // 2. Profile the workload (measures iteration latency at 1,2,4,... GPUs).
  const WorkloadSpec workload = ResNet101Cifar10();
  const ProfileResult profiled = ProfileWorkload(workload);
  std::printf("Profiling took %s of simulated GPU time\n",
              FormatDuration(profiled.profiling_seconds).c_str());

  // 3. Plan: p3.8xlarge on-demand workers, 15 s provisioning (warm pool).
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(5.0, 10.0);
  const Seconds deadline = Minutes(20);

  const PlannedJob rubberband = CompilePlan(spec, profiled.profile, cloud, deadline);
  const PlannedJob fixed = PlanStatic({spec, profiled.profile, cloud, deadline});

  std::printf("\n%-12s %-28s %10s %10s\n", "planner", "plan (GPUs per stage)", "JCT", "cost");
  for (const PlannedJob* job : {&fixed, &rubberband}) {
    std::printf("%-12s %-28s %10s %10s\n", job->planner.c_str(), job->plan.ToString().c_str(),
                FormatDuration(job->estimate.jct_mean).c_str(),
                job->estimate.cost_mean.ToString().c_str());
  }

  // 4. Execute the elastic plan end-to-end.
  const ExecutionReport report = Execute(spec, rubberband.plan, workload, cloud);
  std::printf("\nExecuted: JCT %s, cost %s, best config %s, accuracy %.1f%%\n",
              FormatDuration(report.jct).c_str(), report.cost.Total().ToString().c_str(),
              report.best_config.ToString().c_str(), 100.0 * report.best_accuracy);
  std::printf("\nCluster schedule (cf. paper Table 3):\n");
  std::printf("%-12s %8s %10s %14s\n", "epoch range", "trials", "GPUs/trial", "cluster size");
  for (const StageLogEntry& stage : report.stage_log) {
    std::printf("%4lld-%-7lld %8d %10d %14d\n",
                static_cast<long long>(stage.start_cum_iters),
                static_cast<long long>(stage.end_cum_iters), stage.num_trials,
                stage.gpus_per_trial, stage.instances);
  }
  return 0;
}
