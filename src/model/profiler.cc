#include "src/model/profiler.h"

#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/trainer/synthetic_trainer.h"

namespace rubberband {

ProfileResult ProfileWorkload(const WorkloadSpec& workload, const ProfilerOptions& options) {
  Rng rng(options.seed);
  SearchSpace space;
  // The probe trial uses an arbitrary configuration: by the shared-scaling
  // assumption (paper section 3), hyperparameters do not affect throughput.
  SyntheticTrainer probe(workload, space.Sample(rng), options.seed ^ 0x9E3779B9ULL);

  ProfileResult result;
  std::vector<double> one_gpu_samples;
  std::vector<std::pair<int, double>> scaling_points;
  double mean_at_one = 0.0;

  for (int gpus = 1; gpus <= options.max_gpus; gpus *= 2) {
    probe.Configure(gpus, /*colocated=*/true);
    RunningStats stats;
    for (int i = 0; i < options.iters_per_allocation; ++i) {
      const double latency = probe.SampleIterLatency();
      stats.Add(latency);
      result.profiling_seconds += latency;
      if (gpus == 1) {
        one_gpu_samples.push_back(latency);
      }
    }
    if (gpus == 1) {
      mean_at_one = stats.mean();
      scaling_points.emplace_back(1, 1.0);
    } else {
      scaling_points.emplace_back(gpus, mean_at_one / stats.mean());
    }
  }

  ModelProfile& profile = result.profile;
  profile.name = workload.name;
  profile.iter_latency_1gpu = Distribution::Empirical(std::move(one_gpu_samples));
  profile.scaling = ScalingFunction::FromPoints(std::move(scaling_points));
  profile.dataset_gb = workload.dataset.size_gb;
  profile.trial_startup_seconds = workload.trial_startup_seconds;
  profile.sync_seconds = workload.sync_seconds;

  // Measure the cross-node penalty: run the 2-GPU probe deliberately
  // scattered across nodes and compare against the packed placement.
  probe.Configure(2, /*colocated=*/true);
  const double packed = probe.MeanIterLatency();
  probe.Configure(2, /*colocated=*/false);
  const double scattered = probe.MeanIterLatency();
  result.profiling_seconds += packed * options.iters_per_allocation +
                              scattered * options.iters_per_allocation;
  profile.cross_node_latency_factor = scattered / packed;
  return result;
}

}  // namespace rubberband
