#include "src/model/scaling.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rubberband {

ScalingFunction::ScalingFunction() : linear_(true) {}

ScalingFunction::ScalingFunction(std::vector<std::pair<int, double>> points)
    : points_(std::move(points)) {}

ScalingFunction ScalingFunction::FromPoints(std::vector<std::pair<int, double>> points) {
  for (const auto& [gpus, speedup] : points) {
    if (gpus < 1 || speedup <= 0.0) {
      throw std::invalid_argument("scaling points require gpus >= 1 and speedup > 0");
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end(),
                           [](const auto& a, const auto& b) { return a.first == b.first; }),
               points.end());
  if (points.empty() || points.front().first != 1) {
    points.insert(points.begin(), {1, 1.0});
  } else {
    points.front().second = 1.0;
  }
  return ScalingFunction(std::move(points));
}

ScalingFunction ScalingFunction::Amdahl(double overhead) {
  if (overhead < 0.0 || overhead > 1.0) {
    throw std::invalid_argument("Amdahl overhead must be in [0, 1]");
  }
  ScalingFunction fn;
  fn.linear_ = false;
  fn.amdahl_overhead_ = overhead;
  return fn;
}

double ScalingFunction::Speedup(int gpus) const {
  if (gpus < 1) {
    throw std::invalid_argument("gpus must be >= 1");
  }
  if (linear_) {
    return static_cast<double>(gpus);
  }
  if (amdahl_overhead_ >= 0.0) {
    const double n = static_cast<double>(gpus);
    return n / (1.0 + amdahl_overhead_ * (n - 1.0));
  }
  // Point-based: piecewise-linear in log2(gpus).
  if (gpus <= points_.front().first) {
    return points_.front().second;
  }
  if (gpus >= points_.back().first) {
    // Extrapolate the last segment's log-linear trend (which may decline —
    // communication-bound strong scaling), floored at 0.25.
    if (points_.size() < 2) {
      return points_.back().second;
    }
    const auto& [g1, s1] = points_[points_.size() - 2];
    const auto& [g2, s2] = points_.back();
    const double slope =
        (s2 - s1) / (std::log2(static_cast<double>(g2)) - std::log2(static_cast<double>(g1)));
    const double extrapolated =
        s2 + slope * (std::log2(static_cast<double>(gpus)) - std::log2(static_cast<double>(g2)));
    return std::max(extrapolated, 0.25);
  }
  const auto upper = std::upper_bound(
      points_.begin(), points_.end(), gpus,
      [](int value, const std::pair<int, double>& point) { return value < point.first; });
  const auto lower = upper - 1;
  const double x = std::log2(static_cast<double>(gpus));
  const double x1 = std::log2(static_cast<double>(lower->first));
  const double x2 = std::log2(static_cast<double>(upper->first));
  const double t = (x - x1) / (x2 - x1);
  return lower->second + t * (upper->second - lower->second);
}

double ScalingFunction::Efficiency(int gpus) const {
  return Speedup(gpus) / static_cast<double>(gpus);
}

}  // namespace rubberband
