// Profiler (paper section 5, "Planning").
//
// Before execution, RubberBand profiles the job for a configurable period:
// it iteratively scales a probe trial's allocation by powers of two,
// measures per-iteration training latencies at each allocation, and fits
// (a) an empirical single-GPU latency distribution and (b) the scaling
// function, which together parameterize the simulator. DL training is
// highly repetitive, so a handful of iterations per allocation suffices and
// profiling costs minutes, not the job's hours.

#ifndef SRC_MODEL_PROFILER_H_
#define SRC_MODEL_PROFILER_H_

#include "src/common/time.h"
#include "src/model/profile.h"
#include "src/trainer/model_zoo.h"
#include "src/trainer/search_space.h"

namespace rubberband {

struct ProfilerOptions {
  int iters_per_allocation = 8;  // probe iterations measured per allocation
  int max_gpus = 32;             // largest power-of-two allocation probed
  uint64_t seed = 0;
};

struct ProfileResult {
  ModelProfile profile;
  // Wall-clock the profiling phase itself consumed (counts against the job
  // if profiling shares its deadline).
  Seconds profiling_seconds = 0.0;
};

// Profiles the workload by driving a SyntheticTrainer probe trial.
ProfileResult ProfileWorkload(const WorkloadSpec& workload, const ProfilerOptions& options = {});

}  // namespace rubberband

#endif  // SRC_MODEL_PROFILER_H_
