// ModelProfile: the "model scaling profile S" input of Algorithms 1 and 2.
//
// Everything the planner knows about the workload's performance: the
// single-GPU per-iteration latency distribution, the scaling function, the
// dataset footprint each instance must ingress, and fixed per-trial
// overheads (worker startup / checkpoint restore). Produced either by the
// Profiler (measuring a live trainer) or constructed directly for
// simulation-only studies.

#ifndef SRC_MODEL_PROFILE_H_
#define SRC_MODEL_PROFILE_H_

#include <string>

#include "src/common/distribution.h"
#include "src/model/scaling.h"

namespace rubberband {

struct ModelProfile {
  std::string name = "model";

  // Latency of one training iteration on a single GPU (includes the
  // all-reduce step time at that scale).
  Distribution iter_latency_1gpu = Distribution::Constant(1.0);

  ScalingFunction scaling;

  // Dataset ingress per instance, in GB (charged at the cloud data price).
  double dataset_gb = 0.0;

  // Fixed latency to (re)start a trial's worker gang: loading checkpoints
  // and establishing peer-to-peer connections.
  double trial_startup_seconds = 0.0;

  // Latency of the end-of-stage evaluation/synchronization step.
  double sync_seconds = 0.0;

  // Per-iteration latency multiplier when a trial's worker gang spans more
  // nodes than necessary (cross-node all-reduce). The profiler measures it
  // by comparing a deliberately scattered probe placement against a packed
  // one. The planner uses it to cost plans whose allocations fragment
  // across instances (e.g. 3-GPU gangs on 4-GPU nodes).
  double cross_node_latency_factor = 1.0;

  // Per-iteration latency distribution at `gpus` workers: the single-GPU
  // latency scaled by the inverse speedup.
  Distribution IterLatency(int gpus) const {
    return iter_latency_1gpu.Scaled(scaling.LatencyFactor(gpus));
  }

  double MeanIterLatency(int gpus) const { return IterLatency(gpus).Mean(); }
};

}  // namespace rubberband

#endif  // SRC_MODEL_PROFILE_H_
