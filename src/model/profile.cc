#include "src/model/profile.h"

// ModelProfile is a plain aggregate; this file anchors the target.
