// Scaling function: how distributed data-parallel training speeds up with
// the number of GPUs allocated to one trial (paper Figure 4).
//
// Communication overheads make the speedup sub-linear; RubberBand measures
// it empirically (profiler) rather than deriving it from the architecture.
// The function is represented as profile points (gpus -> speedup over one
// GPU) interpolated piecewise-linearly in log2(gpus); a parametric
// Amdahl-style constructor covers synthetic studies.
//
// Speedup need NOT be monotone: under strong scaling (fixed effective batch
// size) the per-GPU micro-batch shrinks as workers are added until
// all-reduce communication dominates and throughput *declines*. This hump
// shape is what makes a static cluster wasteful in late stages — the paper's
// Figure 1 survivor "is allocated the entire cluster despite needing fewer
// resources" — and what the elastic planner exploits.

#ifndef SRC_MODEL_SCALING_H_
#define SRC_MODEL_SCALING_H_

#include <utility>
#include <vector>

namespace rubberband {

class ScalingFunction {
 public:
  // Identity: speedup(n) = n (perfect linear scaling).
  ScalingFunction();

  // From measured points (gpus, speedup). Must include gpus = 1 with
  // speedup = 1 or it will be added. Points are sorted and deduplicated.
  static ScalingFunction FromPoints(std::vector<std::pair<int, double>> points);

  // Amdahl-style: speedup(n) = n / (1 + overhead * (n - 1)). overhead = 0 is
  // linear; overhead = 1 means no benefit from parallelism.
  static ScalingFunction Amdahl(double overhead);

  // Speedup over a single GPU, interpolated/extrapolated from the points
  // (log-linear extrapolation of the last segment, floored at 0.25 — even a
  // badly over-scaled trial keeps making some progress).
  double Speedup(int gpus) const;

  // Per-iteration latency multiplier relative to 1 GPU: 1 / Speedup(n).
  double LatencyFactor(int gpus) const { return 1.0 / Speedup(gpus); }

  // Parallel efficiency: Speedup(n) / n.
  double Efficiency(int gpus) const;

  const std::vector<std::pair<int, double>>& points() const { return points_; }

 private:
  explicit ScalingFunction(std::vector<std::pair<int, double>> points);

  bool linear_ = false;
  double amdahl_overhead_ = -1.0;  // < 0 when point-based.
  std::vector<std::pair<int, double>> points_;
};

}  // namespace rubberband

#endif  // SRC_MODEL_SCALING_H_
