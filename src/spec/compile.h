// Plan compiler: lowers a validated ExperimentIR into the staged structures
// the scheduler-agnostic back end consumes.
//
// A CompiledPlan is one or more CompiledUnits — each a (ExperimentSpec,
// ConfigSource) pair the existing dag/builder + planner + executor stack
// handles unchanged — plus, for ASHA, an AshaPlan describing asynchronous
// rung promotion (executed by AshaEngine on the DES kernel instead of a
// staged DAG). Lowerings:
//   sha        — one unit, MakeSha(n, r, R, eta), random sampling
//   hyperband  — one unit per bracket (MakeHyperband), all sharing one
//                deadline; unit names "bracket-<s>"
//   asha       — one *envelope* unit (the SHA the promotion rule converges
//                to, used for admission planning and cluster sizing) plus
//                the AshaPlan the engine executes
//   random     — one single-stage unit: n trials x R iterations
//   grid       — one single-stage unit over the materialized axis product
//
// Compiled-SHA is bit-identical to the legacy hard-coded path: the unit's
// spec equals MakeSha's and the default ConfigSource replays the executor's
// historical `seed ^ 0xC0FFEE` sampling stream draw for draw.

#ifndef SRC_SPEC_COMPILE_H_
#define SRC_SPEC_COMPILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/spec/experiment_spec.h"
#include "src/spec/ir.h"
#include "src/trainer/search_space.h"

namespace rubberband {

// Where an executor's initial trial configurations come from. The default
// (kRandom over the default bounds) is exactly the sampling the executor
// always did inline, so legacy call sites stay bit-identical.
struct ConfigSource {
  enum class Kind { kRandom, kExplicit };
  Kind kind = Kind::kRandom;
  // Sampling bounds (kRandom) and the quality response surface (both).
  SearchSpace::Options space;
  // kExplicit: precomputed configurations (grid points), consumed in order.
  std::vector<HyperparameterConfig> points;

  // Returns `count` trial configurations, ids 0..count-1 in order. kRandom
  // draws from one Rng seeded `seed ^ 0xC0FFEE` — the executor's historical
  // stream. kExplicit returns the precomputed points and throws
  // std::invalid_argument if fewer than `count` exist.
  std::vector<HyperparameterConfig> Materialize(int count, uint64_t seed) const;
};

// One schedulable unit: a staged spec the DAG back end can build, plus its
// configuration source.
struct CompiledUnit {
  std::string name;
  ExperimentSpec spec;
  ConfigSource configs;
};

// Asynchronous-promotion execution parameters (kAsha): rung r trains a
// trial to rung_budgets[r] cumulative iterations; a result in the top
// 1/reduction_factor of its rung is promotable. Executed by AshaEngine.
struct AshaPlan {
  std::vector<int64_t> rung_budgets;  // cumulative, rung 0 .. top
  int reduction_factor = 3;
  int gpus_per_trial = 1;
  // Sample cap: the engine stops sampling new configurations after this
  // many. 0 = unbounded (the legacy time-limited baseline mode).
  int num_trials = 0;
  SearchSpace::Options space;
};

struct CompiledPlan {
  SchedulerKind scheduler = SchedulerKind::kSha;
  std::vector<CompiledUnit> units;  // >= 1; hyperband: one per bracket
  // Set iff scheduler == kAsha; units[0] is then the planning envelope.
  std::shared_ptr<const AshaPlan> asha;

  int64_t TotalWork() const;
};

// Lowers `ir` (validating it first; invalid IR never compiles).
CompiledPlan CompileExperiment(const ExperimentIR& ir);

// Grid enumeration, exposed for tests: learning rate is the outer axis,
// weight decay the middle, momentum the inner; lr/wd points are log-spaced,
// momentum linear; a single-point axis pins its midpoint. Ids are
// sequential and quality comes from the space's response surface.
std::vector<HyperparameterConfig> EnumerateGrid(const SearchSpace::Options& space,
                                                const GridShape& grid);

}  // namespace rubberband

#endif  // SRC_SPEC_COMPILE_H_
