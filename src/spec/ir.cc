#include "src/spec/ir.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/obs/json.h"

namespace rubberband {
namespace {

// Any cumulative budget past this cannot survive the eta^k rung ladder (or
// a trials * iters product) without overflowing int64 arithmetic.
constexpr int64_t kMaxBudget = int64_t{1} << 56;
// Grids are materialized configuration lists; cap the product well below
// anything an executor could run.
constexpr int64_t kMaxGridTrials = int64_t{1} << 20;

[[noreturn]] void Reject(const std::string& message) {
  throw std::invalid_argument("invalid experiment IR: " + message);
}

void CheckFinite(double value, const char* field) {
  if (!std::isfinite(value)) {
    std::ostringstream os;
    os << field << " is not finite";
    Reject(os.str());
  }
}

void ValidateSpace(const SearchSpace::Options& space) {
  CheckFinite(space.log10_lr_min, "search_space.log10_lr_min");
  CheckFinite(space.log10_lr_max, "search_space.log10_lr_max");
  CheckFinite(space.log10_wd_min, "search_space.log10_wd_min");
  CheckFinite(space.log10_wd_max, "search_space.log10_wd_max");
  CheckFinite(space.momentum_min, "search_space.momentum_min");
  CheckFinite(space.momentum_max, "search_space.momentum_max");
  CheckFinite(space.optimal_log10_lr, "search_space.optimal_log10_lr");
  CheckFinite(space.optimal_log10_wd, "search_space.optimal_log10_wd");
  CheckFinite(space.optimal_momentum, "search_space.optimal_momentum");
  if (space.log10_lr_min > space.log10_lr_max) {
    Reject("search_space.log10_lr_min exceeds search_space.log10_lr_max (empty search space)");
  }
  if (space.log10_wd_min > space.log10_wd_max) {
    Reject("search_space.log10_wd_min exceeds search_space.log10_wd_max (empty search space)");
  }
  if (space.momentum_min > space.momentum_max) {
    Reject("search_space.momentum_min exceeds search_space.momentum_max (empty search space)");
  }
}

}  // namespace

std::string ToString(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kSha:
      return "sha";
    case SchedulerKind::kHyperband:
      return "hyperband";
    case SchedulerKind::kAsha:
      return "asha";
    case SchedulerKind::kRandom:
      return "random";
    case SchedulerKind::kGrid:
      return "grid";
  }
  return "unknown";
}

SchedulerKind ParseSchedulerKind(const std::string& text) {
  if (text == "sha") return SchedulerKind::kSha;
  if (text == "hyperband") return SchedulerKind::kHyperband;
  if (text == "asha") return SchedulerKind::kAsha;
  if (text == "random") return SchedulerKind::kRandom;
  if (text == "grid") return SchedulerKind::kGrid;
  Reject("scheduler must be one of sha|hyperband|asha|random|grid (got \"" + text + "\")");
}

void ExperimentIR::Validate() const {
  const bool needs_trials = scheduler == SchedulerKind::kSha ||
                            scheduler == SchedulerKind::kAsha ||
                            scheduler == SchedulerKind::kRandom;
  const bool needs_eta = scheduler == SchedulerKind::kSha ||
                         scheduler == SchedulerKind::kHyperband ||
                         scheduler == SchedulerKind::kAsha;

  if (needs_trials && num_trials < 1) {
    std::ostringstream os;
    os << "num_trials must be >= 1 (got " << num_trials << ")";
    Reject(os.str());
  }
  if (min_iters < 1) {
    std::ostringstream os;
    os << "min_iters must be >= 1 (got " << min_iters << ")";
    Reject(os.str());
  }
  if (max_iters < min_iters) {
    std::ostringstream os;
    os << "max_iters must be >= min_iters (got " << max_iters << " < " << min_iters << ")";
    Reject(os.str());
  }
  if (max_iters > kMaxBudget) {
    std::ostringstream os;
    os << "max_iters rung budget overflows (got " << max_iters << ", limit " << kMaxBudget << ")";
    Reject(os.str());
  }
  if (needs_eta && reduction_factor < 2) {
    std::ostringstream os;
    os << "reduction_factor must be >= 2 (got " << reduction_factor << ")";
    Reject(os.str());
  }
  if (needs_trials &&
      static_cast<__int128>(num_trials) * static_cast<__int128>(max_iters) > kMaxBudget) {
    Reject("num_trials * max_iters overflows the trial budget (num_trials too large)");
  }

  ValidateSpace(space);

  if (scheduler == SchedulerKind::kGrid) {
    if (grid.lr_points < 1) {
      Reject("grid.lr_points must be >= 1");
    }
    if (grid.wd_points < 1) {
      Reject("grid.wd_points must be >= 1");
    }
    if (grid.momentum_points < 1) {
      Reject("grid.momentum_points must be >= 1");
    }
    const __int128 product = static_cast<__int128>(grid.lr_points) *
                             static_cast<__int128>(grid.wd_points) *
                             static_cast<__int128>(grid.momentum_points);
    if (product > kMaxGridTrials) {
      std::ostringstream os;
      os << "grid.lr_points * grid.wd_points * grid.momentum_points overflows the trial budget "
         << "(limit " << kMaxGridTrials << ")";
      Reject(os.str());
    }
    if (product * static_cast<__int128>(max_iters) > kMaxBudget) {
      Reject("grid.lr_points * grid.wd_points * grid.momentum_points * max_iters overflows");
    }
  }
}

std::string ExperimentIR::ToString() const {
  std::ostringstream os;
  os << "ExperimentIR[" << rubberband::ToString(scheduler);
  if (scheduler == SchedulerKind::kGrid) {
    os << ", grid " << grid.lr_points << "x" << grid.wd_points << "x" << grid.momentum_points;
  } else if (scheduler != SchedulerKind::kHyperband) {
    os << ", " << num_trials << " trials";  // hyperband derives per-bracket counts
  }
  os << ", iters " << min_iters << ".." << max_iters;
  if (scheduler != SchedulerKind::kRandom && scheduler != SchedulerKind::kGrid) {
    os << ", eta " << reduction_factor;
  }
  os << "]";
  return os.str();
}

namespace {

int64_t IntField(const JsonValue& value, const std::string& key) {
  if (!value.is_number()) {
    Reject("field \"" + key + "\" must be a number");
  }
  return static_cast<int64_t>(value.number());
}

double DoubleField(const JsonValue& value, const std::string& key) {
  if (!value.is_number()) {
    Reject("field \"" + key + "\" must be a number");
  }
  return value.number();
}

void ParseSpace(const JsonValue& doc, SearchSpace::Options* space) {
  if (!doc.is_object()) {
    Reject("field \"search_space\" must be an object");
  }
  for (const auto& [key, value] : doc.object()) {
    if (key == "log10_lr_min") {
      space->log10_lr_min = DoubleField(value, "search_space." + key);
    } else if (key == "log10_lr_max") {
      space->log10_lr_max = DoubleField(value, "search_space." + key);
    } else if (key == "log10_wd_min") {
      space->log10_wd_min = DoubleField(value, "search_space." + key);
    } else if (key == "log10_wd_max") {
      space->log10_wd_max = DoubleField(value, "search_space." + key);
    } else if (key == "momentum_min") {
      space->momentum_min = DoubleField(value, "search_space." + key);
    } else if (key == "momentum_max") {
      space->momentum_max = DoubleField(value, "search_space." + key);
    } else {
      Reject("unknown field \"search_space." + key + "\"");
    }
  }
}

void ParseGrid(const JsonValue& doc, GridShape* grid) {
  if (!doc.is_object()) {
    Reject("field \"grid\" must be an object");
  }
  for (const auto& [key, value] : doc.object()) {
    if (key == "lr_points") {
      grid->lr_points = static_cast<int>(IntField(value, "grid." + key));
    } else if (key == "wd_points") {
      grid->wd_points = static_cast<int>(IntField(value, "grid." + key));
    } else if (key == "momentum_points") {
      grid->momentum_points = static_cast<int>(IntField(value, "grid." + key));
    } else {
      Reject("unknown field \"grid." + key + "\"");
    }
  }
}

}  // namespace

ExperimentIR ParseExperimentIR(const std::string& json_text) {
  const JsonValue doc = JsonValue::Parse(json_text);
  if (!doc.is_object()) {
    Reject("experiment spec document must be a JSON object");
  }
  ExperimentIR ir;
  bool saw_scheduler = false;
  for (const auto& [key, value] : doc.object()) {
    if (key == "scheduler") {
      if (!value.is_string()) {
        Reject("field \"scheduler\" must be a string");
      }
      ir.scheduler = ParseSchedulerKind(value.string());
      saw_scheduler = true;
    } else if (key == "num_trials") {
      ir.num_trials = static_cast<int>(IntField(value, key));
    } else if (key == "min_iters") {
      ir.min_iters = IntField(value, key);
    } else if (key == "max_iters") {
      ir.max_iters = IntField(value, key);
    } else if (key == "reduction_factor") {
      ir.reduction_factor = static_cast<int>(IntField(value, key));
    } else if (key == "search_space") {
      ParseSpace(value, &ir.space);
    } else if (key == "grid") {
      ParseGrid(value, &ir.grid);
    } else {
      Reject("unknown field \"" + key + "\"");
    }
  }
  if (!saw_scheduler) {
    Reject("scheduler field is required");
  }
  ir.Validate();
  return ir;
}

ExperimentIR LoadExperimentIR(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read experiment spec file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseExperimentIR(buffer.str());
}

}  // namespace rubberband
