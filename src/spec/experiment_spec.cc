#include "src/spec/experiment_spec.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rubberband {

ExperimentSpec& ExperimentSpec::AddStage(int num_trials, int64_t iters_per_trial) {
  stages_.push_back(Stage{num_trials, iters_per_trial});
  return *this;
}

int64_t ExperimentSpec::TotalWork() const {
  int64_t work = 0;
  for (const Stage& s : stages_) {
    work += static_cast<int64_t>(s.num_trials) * s.iters_per_trial;
  }
  return work;
}

int64_t ExperimentSpec::CumulativeIters(int index) const {
  int64_t cum = 0;
  for (int i = 0; i <= index; ++i) {
    cum += stage(i).iters_per_trial;
  }
  return cum;
}

int ExperimentSpec::MaxTrials() const {
  int max_trials = 0;
  for (const Stage& s : stages_) {
    max_trials = std::max(max_trials, s.num_trials);
  }
  return max_trials;
}

void ExperimentSpec::Validate() const {
  if (stages_.empty()) {
    throw std::invalid_argument("experiment spec has no stages");
  }
  int prev_trials = stages_.front().num_trials;
  for (const Stage& s : stages_) {
    if (s.num_trials <= 0) {
      throw std::invalid_argument("stage has non-positive trial count");
    }
    if (s.iters_per_trial <= 0) {
      throw std::invalid_argument("stage has non-positive iteration count");
    }
    if (s.num_trials > prev_trials) {
      throw std::invalid_argument("trial count increases across stages");
    }
    prev_trials = s.num_trials;
  }
}

std::string ExperimentSpec::ToString() const {
  std::ostringstream os;
  os << "ExperimentSpec[";
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << "(" << stages_[i].num_trials << " trials x " << stages_[i].iters_per_trial << " iters)";
  }
  os << "]";
  return os.str();
}

}  // namespace rubberband
