// Declarative experiment IR: the scheduler-agnostic front end of the
// compile-then-execute split.
//
// An ExperimentIR names a search space, a trial budget, and a rung/bracket
// structure plus promotion rule (the scheduler kind); `Validate()` rejects
// malformed specifications *by field name* before anything reaches the
// compiler, and `CompileExperiment` (src/spec/compile.h) lowers a valid IR
// into the staged ExperimentSpec structure the DAG back-end consumes. Five
// schedulers lower today:
//   sha        — Successive Halving (the paper's native front end)
//   hyperband  — Hyperband's outer loop: one SHA bracket per aggressiveness
//                level, planned and run concurrently under one deadline
//   asha       — asynchronous successive halving: rung events on the DES
//                kernel instead of gang barriers (no staged DAG at all)
//   random     — n independent trials trained to the full budget
//   grid       — the cartesian product of axis points, full budget each

#ifndef SRC_SPEC_IR_H_
#define SRC_SPEC_IR_H_

#include <cstdint>
#include <string>

#include "src/trainer/search_space.h"

namespace rubberband {

enum class SchedulerKind { kSha, kHyperband, kAsha, kRandom, kGrid };

std::string ToString(SchedulerKind kind);

// Parses "sha" | "hyperband" | "asha" | "random" | "grid"; throws
// std::invalid_argument naming the `scheduler` field otherwise.
SchedulerKind ParseSchedulerKind(const std::string& text);

// Grid axis resolution (kGrid only): points per hyperparameter axis. The
// trial budget is the product; an axis with one point pins its midpoint.
struct GridShape {
  int lr_points = 4;
  int wd_points = 4;
  int momentum_points = 2;

  int64_t TrialCount() const {
    return static_cast<int64_t>(lr_points) * wd_points * momentum_points;
  }
};

struct ExperimentIR {
  SchedulerKind scheduler = SchedulerKind::kSha;
  // Initial trial count n (sha/asha/random; hyperband derives per-bracket
  // counts from max_iters, grid from the axis product).
  int num_trials = 0;
  // Rung structure: min_iters (r) is the first rung's cumulative budget,
  // max_iters (R) the longest survivor's, reduction_factor (eta) the
  // promotion rate. Random and grid train every trial straight to R.
  int64_t min_iters = 1;
  int64_t max_iters = 0;
  int reduction_factor = 2;
  // Hyperparameter bounds; also the quality response surface for grids.
  SearchSpace::Options space;
  GridShape grid;

  // Rejects malformed IR with std::invalid_argument; every message names
  // the offending field (e.g. "num_trials", "search_space.log10_lr_min",
  // "grid.momentum_points") so spec-file authors get an actionable error.
  void Validate() const;

  std::string ToString() const;
};

// Parses a JSON experiment document (see examples/experiment.json):
//   { "scheduler": "hyperband", "max_iters": 27, "reduction_factor": 3,
//     "search_space": { "log10_lr_min": -4.0, ... },
//     "grid": { "lr_points": 4, ... } }
// Unknown keys and type mismatches throw naming the key; the returned IR
// has already passed Validate().
ExperimentIR ParseExperimentIR(const std::string& json_text);

// Reads `path` and parses it; throws std::runtime_error when unreadable.
ExperimentIR LoadExperimentIR(const std::string& path);

}  // namespace rubberband

#endif  // SRC_SPEC_IR_H_
