#include "src/spec/hyperband.h"

#include <cmath>
#include <stdexcept>

#include "src/spec/sha.h"

namespace rubberband {

std::vector<ExperimentSpec> MakeHyperband(const HyperbandParams& params) {
  if (params.max_iters < 1 || params.reduction_factor < 2) {
    throw std::invalid_argument("invalid Hyperband parameters");
  }
  const double eta = params.reduction_factor;
  const int s_max =
      static_cast<int>(std::floor(std::log(static_cast<double>(params.max_iters)) / std::log(eta)));

  std::vector<ExperimentSpec> brackets;
  for (int s = s_max; s >= 0; --s) {
    const double eta_s = std::pow(eta, s);
    const int n = static_cast<int>(
        std::ceil(static_cast<double>(s_max + 1) / static_cast<double>(s + 1) * eta_s));
    const int64_t r =
        std::max<int64_t>(1, static_cast<int64_t>(static_cast<double>(params.max_iters) / eta_s));
    brackets.push_back(MakeSha(ShaParams{n, r, params.max_iters, params.reduction_factor}));
  }
  return brackets;
}

}  // namespace rubberband
