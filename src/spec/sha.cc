#include "src/spec/sha.h"

#include <stdexcept>

namespace rubberband {

ExperimentSpec MakeSha(const ShaParams& params) {
  if (params.num_trials < 1 || params.min_iters < 1 || params.max_iters < params.min_iters ||
      params.reduction_factor < 2) {
    throw std::invalid_argument("invalid SHA parameters");
  }

  ExperimentSpec spec;
  const int eta = params.reduction_factor;
  int64_t eta_pow = 1;  // eta^i
  int64_t cumulative = 0;

  for (int i = 0;; ++i) {
    const int trials = static_cast<int>(params.num_trials / eta_pow);
    if (trials < 1 || cumulative >= params.max_iters) {
      break;
    }
    int64_t incr = params.min_iters * eta_pow;
    if (trials == 1) {
      // Final survivor trains out the rest of the budget R (this is what
      // produces Table 3's 13-50 epoch range rather than 13-40).
      incr = params.max_iters - cumulative;
    }
    if (cumulative + incr > params.max_iters) {
      incr = params.max_iters - cumulative;
    }
    spec.AddStage(trials, incr);
    cumulative += incr;
    if (trials == 1) {
      break;
    }
    eta_pow *= eta;
  }

  spec.Validate();
  return spec;
}

}  // namespace rubberband
