#include "src/spec/compile.h"

#include <cmath>
#include <stdexcept>

#include "src/common/rng.h"
#include "src/spec/hyperband.h"
#include "src/spec/sha.h"

namespace rubberband {
namespace {

// Axis value at index i of `points` evenly spaced over [lo, hi]; one point
// pins the midpoint.
double AxisValue(double lo, double hi, int i, int points) {
  if (points <= 1) {
    return (lo + hi) / 2.0;
  }
  return lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
}

}  // namespace

std::vector<HyperparameterConfig> ConfigSource::Materialize(int count, uint64_t seed) const {
  std::vector<HyperparameterConfig> configs;
  configs.reserve(static_cast<size_t>(count));
  switch (kind) {
    case Kind::kRandom: {
      // The executor's historical inline sampling, draw for draw: one
      // stream, configurations in trial order, sequential ids.
      SearchSpace sampler(space);
      Rng config_rng(seed ^ 0xC0FFEE);
      for (int i = 0; i < count; ++i) {
        configs.push_back(sampler.Sample(config_rng));
      }
      break;
    }
    case Kind::kExplicit: {
      if (static_cast<size_t>(count) > points.size()) {
        throw std::invalid_argument("ConfigSource has fewer points than requested trials");
      }
      configs.assign(points.begin(), points.begin() + count);
      break;
    }
  }
  return configs;
}

std::vector<HyperparameterConfig> EnumerateGrid(const SearchSpace::Options& space,
                                                const GridShape& grid) {
  SearchSpace surface(space);
  std::vector<HyperparameterConfig> points;
  points.reserve(static_cast<size_t>(grid.TrialCount()));
  int id = 0;
  for (int li = 0; li < grid.lr_points; ++li) {
    const double log_lr = AxisValue(space.log10_lr_min, space.log10_lr_max, li, grid.lr_points);
    for (int wi = 0; wi < grid.wd_points; ++wi) {
      const double log_wd = AxisValue(space.log10_wd_min, space.log10_wd_max, wi, grid.wd_points);
      for (int mi = 0; mi < grid.momentum_points; ++mi) {
        HyperparameterConfig config;
        config.id = id++;
        config.learning_rate = std::pow(10.0, log_lr);
        config.weight_decay = std::pow(10.0, log_wd);
        config.momentum = AxisValue(space.momentum_min, space.momentum_max, mi,
                                    grid.momentum_points);
        config.quality = surface.Quality(config);
        points.push_back(config);
      }
    }
  }
  return points;
}

int64_t CompiledPlan::TotalWork() const {
  int64_t work = 0;
  for (const CompiledUnit& unit : units) {
    work += unit.spec.TotalWork();
  }
  return work;
}

CompiledPlan CompileExperiment(const ExperimentIR& ir) {
  ir.Validate();  // no invalid IR ever reaches a lowering

  CompiledPlan plan;
  plan.scheduler = ir.scheduler;

  ConfigSource random_source;
  random_source.kind = ConfigSource::Kind::kRandom;
  random_source.space = ir.space;

  switch (ir.scheduler) {
    case SchedulerKind::kSha: {
      CompiledUnit unit;
      unit.name = "sha";
      unit.spec = MakeSha(ir.num_trials, ir.min_iters, ir.max_iters, ir.reduction_factor);
      unit.configs = random_source;
      plan.units.push_back(std::move(unit));
      break;
    }
    case SchedulerKind::kHyperband: {
      const std::vector<ExperimentSpec> brackets =
          MakeHyperband(HyperbandParams{ir.max_iters, ir.reduction_factor});
      const int s_max = static_cast<int>(brackets.size()) - 1;
      for (size_t i = 0; i < brackets.size(); ++i) {
        CompiledUnit unit;
        unit.name = "bracket-" + std::to_string(s_max - static_cast<int>(i));
        unit.spec = brackets[i];
        unit.configs = random_source;
        plan.units.push_back(std::move(unit));
      }
      break;
    }
    case SchedulerKind::kAsha: {
      // The envelope (what the rung ladder converges to when results arrive
      // in rank order) sizes the cluster and carries admission planning;
      // execution itself follows the AshaPlan, promotion by promotion.
      CompiledUnit unit;
      unit.name = "asha-envelope";
      unit.spec = MakeSha(ir.num_trials, ir.min_iters, ir.max_iters, ir.reduction_factor);
      unit.configs = random_source;
      plan.units.push_back(std::move(unit));

      auto asha = std::make_shared<AshaPlan>();
      int64_t budget = ir.min_iters;
      while (budget < ir.max_iters) {
        asha->rung_budgets.push_back(budget);
        budget *= ir.reduction_factor;
      }
      asha->rung_budgets.push_back(ir.max_iters);
      asha->reduction_factor = ir.reduction_factor;
      asha->gpus_per_trial = 1;
      asha->num_trials = ir.num_trials;
      asha->space = ir.space;
      plan.asha = std::move(asha);
      break;
    }
    case SchedulerKind::kRandom: {
      CompiledUnit unit;
      unit.name = "random";
      unit.spec = ExperimentSpec().AddStage(ir.num_trials, ir.max_iters);
      unit.configs = random_source;
      plan.units.push_back(std::move(unit));
      break;
    }
    case SchedulerKind::kGrid: {
      CompiledUnit unit;
      unit.name = "grid";
      unit.configs.kind = ConfigSource::Kind::kExplicit;
      unit.configs.space = ir.space;
      unit.configs.points = EnumerateGrid(ir.space, ir.grid);
      unit.spec = ExperimentSpec().AddStage(static_cast<int>(unit.configs.points.size()),
                                            ir.max_iters);
      plan.units.push_back(std::move(unit));
      break;
    }
  }
  return plan;
}

}  // namespace rubberband
