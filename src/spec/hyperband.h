// Hyperband bracket generator (Li et al.).
//
// Hyperband hedges SHA's aggressiveness by running several SHA brackets
// with different trade-offs between the number of configurations and the
// budget each receives. In RubberBand's model (paper Figure 6), a Hyperband
// job is simply a *collection* of experiment specifications — a multi-job —
// each of which is planned independently.

#ifndef SRC_SPEC_HYPERBAND_H_
#define SRC_SPEC_HYPERBAND_H_

#include <cstdint>
#include <vector>

#include "src/spec/experiment_spec.h"

namespace rubberband {

struct HyperbandParams {
  int64_t max_iters = 0;     // R: maximum budget for any single trial.
  int reduction_factor = 3;  // eta.
};

// Returns the brackets s = s_max, ..., 0 where s_max = floor(log_eta(R)).
// Bracket s starts n = ceil((s_max + 1) / (s + 1) * eta^s) trials at
// r = R / eta^s initial iterations.
std::vector<ExperimentSpec> MakeHyperband(const HyperbandParams& params);

}  // namespace rubberband

#endif  // SRC_SPEC_HYPERBAND_H_
