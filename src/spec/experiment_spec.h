// Declarative experiment specification (paper Figure 6).
//
// An early-stopping hyperparameter tuning job is a sequence of stages; each
// stage runs `num_trials` surviving trials for `iters_per_trial` additional
// iterations and ends with a synchronization barrier that ranks trials and
// promotes the survivors into the next stage. Because the specification is
// declarative, the whole structure is known before runtime, which is what
// lets RubberBand plan resource allocation offline.

#ifndef SRC_SPEC_EXPERIMENT_SPEC_H_
#define SRC_SPEC_EXPERIMENT_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rubberband {

struct Stage {
  int num_trials = 0;
  // Incremental training iterations assigned to each surviving trial in
  // this stage (not cumulative).
  int64_t iters_per_trial = 0;
};

class ExperimentSpec {
 public:
  ExperimentSpec() = default;

  // Fluent builder mirroring the paper's
  //   rb.EmptyExperimentSpec().add_stage(num_trials=.., iters=..)...
  ExperimentSpec& AddStage(int num_trials, int64_t iters_per_trial);

  int num_stages() const { return static_cast<int>(stages_.size()); }
  const Stage& stage(int index) const { return stages_.at(static_cast<size_t>(index)); }
  const std::vector<Stage>& stages() const { return stages_; }

  bool empty() const { return stages_.empty(); }

  // Total trial-iterations across the job: sum_i trials_i * iters_i. This is
  // the work lower bound any allocation plan must execute.
  int64_t TotalWork() const;

  // Cumulative iterations a trial surviving through stage `index` has
  // trained for (inclusive).
  int64_t CumulativeIters(int index) const;

  int MaxTrials() const;

  // Validates SHA-style structure: at least one stage, positive trial counts
  // and iteration counts, and non-increasing trial counts (early-stopping
  // only ever terminates trials). Throws std::invalid_argument otherwise.
  void Validate() const;

  std::string ToString() const;

 private:
  std::vector<Stage> stages_;
};

}  // namespace rubberband

#endif  // SRC_SPEC_EXPERIMENT_SPEC_H_
