// Successive Halving (SHA) specification generator (Jamieson & Talwalkar).
//
// SHA(n, r, R, eta): start with n trials, give each trial r iterations in
// the first stage, keep the top 1/eta after every stage while multiplying
// the per-stage work assignment by eta, until one trial remains and the
// cumulative budget reaches R.
//
// Calibrated against the paper's own instances:
//   SHA(n=64, r=4, R=508, eta=2)  -> stages of 4,8,16,32,64,128,256 iters
//                                    (cumulative exactly 508) over
//                                    64,32,16,8,4,2,1 trials.
//   SHA(n=32, r=1, R=50, eta=3)   -> Table 3's schedule: 32 trials epochs
//                                    0-1, 10 trials 1-4, 3 trials 4-13,
//                                    1 trial 13-50.

#ifndef SRC_SPEC_SHA_H_
#define SRC_SPEC_SHA_H_

#include <cstdint>

#include "src/spec/experiment_spec.h"

namespace rubberband {

struct ShaParams {
  int num_trials = 0;       // n: initial trial count.
  int64_t min_iters = 0;    // r: iterations assigned in the first stage.
  int64_t max_iters = 0;    // R: cumulative budget of the longest survivor.
  int reduction_factor = 2; // eta.
};

ExperimentSpec MakeSha(const ShaParams& params);

inline ExperimentSpec MakeSha(int num_trials, int64_t min_iters, int64_t max_iters,
                              int reduction_factor = 2) {
  return MakeSha(ShaParams{num_trials, min_iters, max_iters, reduction_factor});
}

}  // namespace rubberband

#endif  // SRC_SPEC_SHA_H_
