// DAG construction (paper section 4.2, "DAG construction").
//
// Parses the specification and allocation plan together stage-by-stage,
// extending dependency edges from the frontier:
//   * if the stage needs more instances than are provisioned, a blocking
//     SCALE node extends the previous frontier, followed by one parallel
//     INIT_INSTANCE node per new instance;
//   * one TRAIN node is added per trial; when the allocation cannot run all
//     trials in parallel (GPUs < trials), queued trials become TRAIN nodes
//     with serial dependencies on a previously run trial (an allocation of
//     1 GPU degenerates to a fully sequential chain);
//   * a SYNC node closes the stage, depending on the whole frontier.
// Scale-downs are free and instantaneous and add no nodes; the cost model
// releases instances at the stage boundary.
//
// Every stage's nodes are generated from a StageBlock — the closed-form
// description of that stage under (spec, allocation, instance delta) — so
// the block, not the node list, is the unit the stage-incremental plan
// evaluator caches.

#ifndef SRC_DAG_BUILDER_H_
#define SRC_DAG_BUILDER_H_

#include "src/cloud/cloud_profile.h"
#include "src/dag/node.h"
#include "src/model/profile.h"
#include "src/planner/plan.h"
#include "src/spec/experiment_spec.h"

namespace rubberband {

// GPUs each trial receives when `gpus` are shared fairly among `trials`
// (the fair-share rule of section 5's scheduler): a whole multiple when
// gpus >= trials, otherwise 1 each with queuing.
int GpusPerTrial(int gpus, int trials);

// Aggregate latency distribution of training one trial for `iters`
// iterations at `gpus_per_trial`, including the fixed startup cost: a
// normal approximation to the sum of iid per-iteration draws (CLT),
// truncated below at the startup cost. `latency_factor` scales the
// per-iteration latency (cross-node penalty for fragmented placements).
Distribution TrainNodeLatency(const ModelProfile& model, int64_t iters, int gpus_per_trial,
                              double latency_factor = 1.0);

// How many of `trials` gangs of `gpus_per_trial` GPUs can be placed without
// spanning extra nodes on `instances` nodes of `gpus_per_instance`; the
// remainder train at the cross-node penalty.
int ColocatedCapacity(int trials, int gpus_per_trial, int instances, int gpus_per_instance);

// Resolves one stage of a plan into its simulation block: cluster size and
// provisioning delta (against `prev_instances` already-held instances),
// fair-share split, colocation split, and the latency distributions of
// every node kind the stage will contain. A stage's block depends only on
// (stage spec, gpus, prev_instances) given fixed model and cloud — the
// cache key of the stage-incremental evaluator.
StageBlock MakeStageBlock(const Stage& stage, int stage_index, int gpus, int prev_instances,
                          const ModelProfile& model, const CloudProfile& cloud);

ExecutionDag BuildDag(const ExperimentSpec& spec, const AllocationPlan& plan,
                      const ModelProfile& model, const CloudProfile& cloud);

}  // namespace rubberband

#endif  // SRC_DAG_BUILDER_H_
