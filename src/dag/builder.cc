#include "src/dag/builder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rubberband {

int GpusPerTrial(int gpus, int trials) {
  if (gpus < 1 || trials < 1) {
    throw std::invalid_argument("gpus and trials must be positive");
  }
  return gpus >= trials ? gpus / trials : 1;
}

Distribution TrainNodeLatency(const ModelProfile& model, int64_t iters, int gpus_per_trial,
                              double latency_factor) {
  const Distribution per_iter = model.IterLatency(gpus_per_trial).Scaled(latency_factor);
  const double mean = model.trial_startup_seconds + static_cast<double>(iters) * per_iter.Mean();
  const double stddev = std::sqrt(static_cast<double>(iters)) * per_iter.StdDev();
  if (stddev <= 0.0) {
    return Distribution::Constant(mean);
  }
  return Distribution::TruncatedNormal(mean, stddev, model.trial_startup_seconds);
}

int ColocatedCapacity(int trials, int gpus_per_trial, int instances, int gpus_per_instance) {
  if (gpus_per_trial > gpus_per_instance) {
    // Gangs larger than a node span several whole nodes; a minimal span is
    // colocated by definition.
    return trials;
  }
  return instances * (gpus_per_instance / gpus_per_trial);
}

ExecutionDag BuildDag(const ExperimentSpec& spec, const AllocationPlan& plan,
                      const ModelProfile& model, const CloudProfile& cloud) {
  spec.Validate();
  plan.Validate(spec.num_stages());
  const int gpus_per_instance = cloud.gpus_per_instance();
  if (gpus_per_instance < 1) {
    throw std::invalid_argument("worker instance type has no GPUs");
  }

  ExecutionDag dag;
  int cluster_instances = 0;
  std::vector<int> frontier;  // nodes the next stage's entry depends on

  for (int i = 0; i < spec.num_stages(); ++i) {
    const Stage& stage = spec.stage(i);
    const int gpus = plan.gpus(i);
    const int instances_needed = (gpus + gpus_per_instance - 1) / gpus_per_instance;

    StageMeta meta;
    meta.instances = instances_needed;

    // Scale up if the provisioned cluster is too small for this stage.
    std::vector<int> entry = frontier;
    if (instances_needed > cluster_instances) {
      DagNode scale;
      scale.type = NodeType::kScale;
      scale.stage = i;
      scale.latency = cloud.provisioning.queuing_delay;
      scale.deps = frontier;
      scale.new_instances = instances_needed - cluster_instances;
      const int scale_id = dag.AddNode(std::move(scale));
      meta.scale_node = scale_id;

      entry.clear();
      for (int k = 0; k < instances_needed - cluster_instances; ++k) {
        DagNode init;
        init.type = NodeType::kInitInstance;
        init.stage = i;
        init.latency = cloud.provisioning.init_latency;
        init.deps = {scale_id};
        const int init_id = dag.AddNode(std::move(init));
        meta.init_nodes.push_back(init_id);
        entry.push_back(init_id);
      }
    }
    cluster_instances = instances_needed;

    // Training: parallel when the allocation covers all trials, serial
    // chains over the available GPU slots otherwise.
    const int gpus_per_trial = GpusPerTrial(gpus, stage.num_trials);
    meta.gpus_per_trial = gpus_per_trial;
    const Distribution train_latency = TrainNodeLatency(model, stage.iters_per_trial, gpus_per_trial);

    std::vector<int> tails;
    if (gpus >= stage.num_trials) {
      // Gangs that do not pack cleanly onto instances (e.g. 3-GPU gangs on
      // 4-GPU nodes) leave some trials spanning extra nodes; those pay the
      // cross-node penalty.
      const int colocated = ColocatedCapacity(stage.num_trials, gpus_per_trial, instances_needed,
                                              gpus_per_instance);
      meta.fragmented_trials = std::max(0, stage.num_trials - colocated);
      const Distribution fragmented_latency =
          TrainNodeLatency(model, stage.iters_per_trial, gpus_per_trial,
                           model.cross_node_latency_factor);
      for (int t = 0; t < stage.num_trials; ++t) {
        DagNode train;
        train.type = NodeType::kTrain;
        train.stage = i;
        train.latency = t < colocated ? train_latency : fragmented_latency;
        train.deps = entry;
        train.gpus = gpus_per_trial;
        train.trial = t;
        const int train_id = dag.AddNode(std::move(train));
        meta.train_nodes.push_back(train_id);
        tails.push_back(train_id);
      }
    } else {
      // `gpus` slots of one GPU each; slot s runs trials s, s+gpus, ...
      std::vector<int> slot_tail(static_cast<size_t>(gpus), -1);
      for (int t = 0; t < stage.num_trials; ++t) {
        const size_t slot = static_cast<size_t>(t % gpus);
        DagNode train;
        train.type = NodeType::kTrain;
        train.stage = i;
        train.latency = train_latency;
        train.deps = slot_tail[slot] >= 0 ? std::vector<int>{slot_tail[slot]} : entry;
        train.gpus = 1;
        train.trial = t;
        const int train_id = dag.AddNode(std::move(train));
        meta.train_nodes.push_back(train_id);
        slot_tail[slot] = train_id;
      }
      for (int tail : slot_tail) {
        tails.push_back(tail);
      }
    }

    // Stage-terminating synchronization barrier.
    DagNode sync;
    sync.type = NodeType::kSync;
    sync.stage = i;
    sync.latency = Distribution::Constant(model.sync_seconds);
    sync.deps = tails;
    meta.sync_node = dag.AddNode(std::move(sync));

    frontier = {meta.sync_node};
    dag.stages().push_back(std::move(meta));
  }

  return dag;
}

}  // namespace rubberband
