#include "src/dag/builder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rubberband {

int GpusPerTrial(int gpus, int trials) {
  if (gpus < 1 || trials < 1) {
    throw std::invalid_argument("gpus and trials must be positive");
  }
  return gpus >= trials ? gpus / trials : 1;
}

Distribution TrainNodeLatency(const ModelProfile& model, int64_t iters, int gpus_per_trial,
                              double latency_factor) {
  const Distribution per_iter = model.IterLatency(gpus_per_trial).Scaled(latency_factor);
  const double mean = model.trial_startup_seconds + static_cast<double>(iters) * per_iter.Mean();
  const double stddev = std::sqrt(static_cast<double>(iters)) * per_iter.StdDev();
  if (stddev <= 0.0) {
    return Distribution::Constant(mean);
  }
  return Distribution::TruncatedNormal(mean, stddev, model.trial_startup_seconds);
}

int ColocatedCapacity(int trials, int gpus_per_trial, int instances, int gpus_per_instance) {
  if (gpus_per_trial > gpus_per_instance) {
    // Gangs larger than a node span several whole nodes; a minimal span is
    // colocated by definition.
    return trials;
  }
  return instances * (gpus_per_instance / gpus_per_trial);
}

StageBlock MakeStageBlock(const Stage& stage, int stage_index, int gpus, int prev_instances,
                          const ModelProfile& model, const CloudProfile& cloud) {
  const int gpus_per_instance = cloud.gpus_per_instance();
  if (gpus_per_instance < 1) {
    throw std::invalid_argument("worker instance type has no GPUs");
  }
  StageBlock block;
  block.index = stage_index;
  block.trials = stage.num_trials;
  block.gpus = gpus;
  block.instances = (gpus + gpus_per_instance - 1) / gpus_per_instance;
  block.new_instances = std::max(0, block.instances - prev_instances);
  block.gpus_per_trial = GpusPerTrial(gpus, stage.num_trials);
  block.scale_latency = cloud.provisioning.queuing_delay;
  block.init_latency = cloud.provisioning.init_latency;
  block.train_latency = TrainNodeLatency(model, stage.iters_per_trial, block.gpus_per_trial);
  block.sync_seconds = model.sync_seconds;
  if (gpus >= stage.num_trials) {
    // Gangs that do not pack cleanly onto instances (e.g. 3-GPU gangs on
    // 4-GPU nodes) leave some trials spanning extra nodes; those pay the
    // cross-node penalty.
    block.colocated = ColocatedCapacity(stage.num_trials, block.gpus_per_trial, block.instances,
                                        gpus_per_instance);
    block.fragmented_latency =
        block.colocated < stage.num_trials
            ? TrainNodeLatency(model, stage.iters_per_trial, block.gpus_per_trial,
                               model.cross_node_latency_factor)
            : block.train_latency;
  } else {
    // Queued stages run every trial on 1 GPU; no fragmentation.
    block.colocated = stage.num_trials;
    block.fragmented_latency = block.train_latency;
  }
  return block;
}

ExecutionDag BuildDag(const ExperimentSpec& spec, const AllocationPlan& plan,
                      const ModelProfile& model, const CloudProfile& cloud) {
  spec.Validate();
  plan.Validate(spec.num_stages());
  if (cloud.gpus_per_instance() < 1) {
    throw std::invalid_argument("worker instance type has no GPUs");
  }

  ExecutionDag dag;
  int cluster_instances = 0;
  std::vector<int> frontier;  // nodes the next stage's entry depends on
  std::vector<int> entry;
  std::vector<int> tails;
  std::vector<int> slot_tail;

  for (int i = 0; i < spec.num_stages(); ++i) {
    const Stage& stage = spec.stage(i);
    const StageBlock block =
        MakeStageBlock(stage, i, plan.gpus(i), cluster_instances, model, cloud);

    StageMeta meta;
    meta.instances = block.instances;

    // Scale up if the provisioned cluster is too small for this stage.
    entry = frontier;
    if (block.new_instances > 0) {
      NodeSpec scale;
      scale.type = NodeType::kScale;
      scale.stage = i;
      scale.latency = block.scale_latency;
      scale.deps = frontier;
      scale.new_instances = block.new_instances;
      const int scale_id = dag.AddNode(scale);
      meta.scale_node = scale_id;

      entry.clear();
      const int scale_dep[] = {scale_id};
      for (int k = 0; k < block.new_instances; ++k) {
        NodeSpec init;
        init.type = NodeType::kInitInstance;
        init.stage = i;
        init.latency = block.init_latency;
        init.deps = scale_dep;
        const int init_id = dag.AddNode(init);
        meta.init_nodes.push_back(init_id);
        entry.push_back(init_id);
      }
    }
    cluster_instances = block.instances;

    // Training: parallel when the allocation covers all trials, serial
    // chains over the available GPU slots otherwise.
    meta.gpus_per_trial = block.gpus_per_trial;
    tails.clear();
    if (block.gpus >= block.trials) {
      meta.fragmented_trials = std::max(0, block.trials - block.colocated);
      for (int t = 0; t < block.trials; ++t) {
        NodeSpec train;
        train.type = NodeType::kTrain;
        train.stage = i;
        train.latency = t < block.colocated ? block.train_latency : block.fragmented_latency;
        train.deps = entry;
        train.gpus = block.gpus_per_trial;
        train.trial = t;
        const int train_id = dag.AddNode(train);
        meta.train_nodes.push_back(train_id);
        tails.push_back(train_id);
      }
    } else {
      // `gpus` slots of one GPU each; slot s runs trials s, s+gpus, ...
      slot_tail.assign(static_cast<size_t>(block.gpus), -1);
      for (int t = 0; t < block.trials; ++t) {
        const size_t slot = static_cast<size_t>(t % block.gpus);
        NodeSpec train;
        train.type = NodeType::kTrain;
        train.stage = i;
        train.latency = block.train_latency;
        train.deps = slot_tail[slot] >= 0 ? std::span<const int>(&slot_tail[slot], 1)
                                          : std::span<const int>(entry);
        train.gpus = 1;
        train.trial = t;
        const int train_id = dag.AddNode(train);
        meta.train_nodes.push_back(train_id);
        slot_tail[slot] = train_id;
      }
      for (int tail : slot_tail) {
        tails.push_back(tail);
      }
    }

    // Stage-terminating synchronization barrier.
    NodeSpec sync;
    sync.type = NodeType::kSync;
    sync.stage = i;
    sync.latency = Distribution::Constant(block.sync_seconds);
    sync.deps = tails;
    meta.sync_node = dag.AddNode(sync);

    meta.block = block;
    frontier = {meta.sync_node};
    dag.stages().push_back(std::move(meta));
  }

  return dag;
}

}  // namespace rubberband
