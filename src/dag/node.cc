#include "src/dag/node.h"

#include <sstream>
#include <stdexcept>

namespace rubberband {

std::string ToString(NodeType type) {
  switch (type) {
    case NodeType::kScale:
      return "SCALE";
    case NodeType::kInitInstance:
      return "INIT_INSTANCE";
    case NodeType::kTrain:
      return "TRAIN";
    case NodeType::kSync:
      return "SYNC";
  }
  return "UNKNOWN";
}

size_t ExecutionDag::Check(int id) const {
  if (id < 0 || id >= size()) {
    throw std::out_of_range("DAG node id out of range");
  }
  return static_cast<size_t>(id);
}

int ExecutionDag::AddNode(const NodeSpec& spec) {
  const int id = size();
  for (int dep : spec.deps) {
    if (dep < 0 || dep >= id) {
      throw std::logic_error("DAG dependency must reference an earlier node");
    }
  }
  for (int dep : spec.deps) {
    ++successor_count_[static_cast<size_t>(dep)];
  }
  type_.push_back(spec.type);
  stage_.push_back(spec.stage);
  latency_.push_back(spec.latency);
  gpus_.push_back(spec.gpus);
  trial_.push_back(spec.trial);
  new_instances_.push_back(spec.new_instances);
  deps_.insert(deps_.end(), spec.deps.begin(), spec.deps.end());
  dep_begin_.push_back(deps_.size());
  successor_count_.push_back(0);
  return id;
}

std::vector<int> ExecutionDag::Frontier() const {
  std::vector<int> frontier;
  for (size_t i = 0; i < successor_count_.size(); ++i) {
    if (successor_count_[i] == 0) {
      frontier.push_back(static_cast<int>(i));
    }
  }
  return frontier;
}

int ExecutionDag::TotalInstancesProvisioned() const {
  int total = 0;
  for (int i = 0; i < size(); ++i) {
    if (type_[static_cast<size_t>(i)] == NodeType::kScale) {
      total += new_instances_[static_cast<size_t>(i)];
    }
  }
  return total;
}

std::string ExecutionDag::ToString() const {
  std::ostringstream os;
  for (int id = 0; id < size(); ++id) {
    os << id << " " << rubberband::ToString(type(id)) << " stage=" << stage(id);
    if (type(id) == NodeType::kTrain) {
      os << " trial=" << trial(id) << " gpus=" << gpus(id);
    }
    const std::span<const int> node_deps = deps(id);
    if (!node_deps.empty()) {
      os << " deps=[";
      for (size_t i = 0; i < node_deps.size(); ++i) {
        os << (i > 0 ? "," : "") << node_deps[i];
      }
      os << "]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rubberband
