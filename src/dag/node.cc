#include "src/dag/node.h"

#include <sstream>
#include <stdexcept>

namespace rubberband {

std::string ToString(NodeType type) {
  switch (type) {
    case NodeType::kScale:
      return "SCALE";
    case NodeType::kInitInstance:
      return "INIT_INSTANCE";
    case NodeType::kTrain:
      return "TRAIN";
    case NodeType::kSync:
      return "SYNC";
  }
  return "UNKNOWN";
}

int ExecutionDag::AddNode(DagNode node) {
  node.id = static_cast<int>(nodes_.size());
  for (int dep : node.deps) {
    if (dep < 0 || dep >= node.id) {
      throw std::logic_error("DAG dependency must reference an earlier node");
    }
    ++successor_count_[static_cast<size_t>(dep)];
  }
  nodes_.push_back(std::move(node));
  successor_count_.push_back(0);
  return nodes_.back().id;
}

std::vector<int> ExecutionDag::Frontier() const {
  std::vector<int> frontier;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (successor_count_[i] == 0) {
      frontier.push_back(static_cast<int>(i));
    }
  }
  return frontier;
}

int ExecutionDag::TotalInstancesProvisioned() const {
  int total = 0;
  for (const DagNode& node : nodes_) {
    if (node.type == NodeType::kScale) {
      total += node.new_instances;
    }
  }
  return total;
}

std::string ExecutionDag::ToString() const {
  std::ostringstream os;
  for (const DagNode& node : nodes_) {
    os << node.id << " " << rubberband::ToString(node.type) << " stage=" << node.stage;
    if (node.type == NodeType::kTrain) {
      os << " trial=" << node.trial << " gpus=" << node.gpus;
    }
    if (!node.deps.empty()) {
      os << " deps=[";
      for (size_t i = 0; i < node.deps.size(); ++i) {
        os << (i > 0 ? "," : "") << node.deps[i];
      }
      os << "]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rubberband
