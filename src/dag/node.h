// Execution DAG (paper section 4.2).
//
// RubberBand models a job's execution as a directed acyclic graph of tasks,
// each carrying a latency distribution; edges are task dependencies. Four
// node types:
//   SCALE          provision resources from the provider (queuing delay)
//   INIT_INSTANCE  make a provisioned instance usable (dependency install)
//   TRAIN          train one trial for a stage's worth of iterations
//   SYNC           end-of-stage barrier that ranks and prunes trials
// Deprovisioning has negligible latency and no cost and is unrepresented.
//
// Nodes are appended with dependencies on already-present nodes only, so the
// node id order is a topological order — Algorithm 1's sampling pass is a
// single forward sweep.

#ifndef SRC_DAG_NODE_H_
#define SRC_DAG_NODE_H_

#include <string>
#include <vector>

#include "src/common/distribution.h"

namespace rubberband {

enum class NodeType { kScale, kInitInstance, kTrain, kSync };

std::string ToString(NodeType type);

struct DagNode {
  int id = -1;
  NodeType type = NodeType::kTrain;
  int stage = -1;
  Distribution latency = Distribution::Constant(0.0);
  std::vector<int> deps;  // predecessor node ids (all < id)

  // TRAIN: GPUs the trial holds and which trial slot it trains.
  int gpus = 0;
  int trial = -1;
  // SCALE: instances being added by this provisioning request.
  int new_instances = 0;
};

// Per-stage bookkeeping the cost model needs (which instances are held for
// the span of which stage).
struct StageMeta {
  int instances = 0;       // cluster size (instances) during this stage
  int gpus_per_trial = 0;  // 0 means trials queue serially on 1 GPU each
  int fragmented_trials = 0;  // trials paying the cross-node penalty
  int scale_node = -1;     // -1 when no scale-up precedes this stage
  std::vector<int> init_nodes;
  std::vector<int> train_nodes;
  int sync_node = -1;
};

class ExecutionDag {
 public:
  // Appends a node; all deps must reference existing nodes. Returns its id.
  int AddNode(DagNode node);

  const std::vector<DagNode>& nodes() const { return nodes_; }
  const DagNode& node(int id) const { return nodes_.at(static_cast<size_t>(id)); }
  int size() const { return static_cast<int>(nodes_.size()); }

  // Node ids with no successors (the construction frontier).
  std::vector<int> Frontier() const;

  std::vector<StageMeta>& stages() { return stages_; }
  const std::vector<StageMeta>& stages() const { return stages_; }

  // Total instances ever provisioned (sum over SCALE nodes); drives the
  // per-instance data-ingress charge.
  int TotalInstancesProvisioned() const;

  std::string ToString() const;

 private:
  std::vector<DagNode> nodes_;
  std::vector<int> successor_count_;
  std::vector<StageMeta> stages_;
};

}  // namespace rubberband

#endif  // SRC_DAG_NODE_H_
