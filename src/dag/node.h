// Execution DAG (paper section 4.2).
//
// RubberBand models a job's execution as a directed acyclic graph of tasks,
// each carrying a latency distribution; edges are task dependencies. Four
// node types:
//   SCALE          provision resources from the provider (queuing delay)
//   INIT_INSTANCE  make a provisioned instance usable (dependency install)
//   TRAIN          train one trial for a stage's worth of iterations
//   SYNC           end-of-stage barrier that ranks and prunes trials
// Deprovisioning has negligible latency and no cost and is unrepresented.
//
// Nodes are appended with dependencies on already-present nodes only, so the
// node id order is a topological order — Algorithm 1's sampling pass is a
// single forward sweep.
//
// Storage is struct-of-arrays: one flat column per attribute plus a single
// shared dependency arena addressed by prefix offsets. Building a candidate
// plan's DAG allocates a handful of large vectors instead of one small
// `deps` vector per node, which is what made BuildDag dominate the
// planner's profile.

#ifndef SRC_DAG_NODE_H_
#define SRC_DAG_NODE_H_

#include <span>
#include <string>
#include <vector>

#include "src/common/distribution.h"

namespace rubberband {

enum class NodeType { kScale, kInitInstance, kTrain, kSync };

std::string ToString(NodeType type);

// Construction-time description of one node; `deps` is copied into the
// DAG's arena (all ids must be < the new node's id).
struct NodeSpec {
  NodeType type = NodeType::kTrain;
  int stage = -1;
  Distribution latency = Distribution::Constant(0.0);
  std::span<const int> deps;

  // TRAIN: GPUs the trial holds and which trial slot it trains.
  int gpus = 0;
  int trial = -1;
  // SCALE: instances being added by this provisioning request.
  int new_instances = 0;
};

// Everything the simulator needs to know about one stage of a plan, closed
// over (stage spec, allocation, instance delta, model, cloud). The DAG's
// stage-i nodes are generated from this block, and a stage's Monte-Carlo
// draw is a pure function of (block, seed, sample index) — which is what
// makes per-stage simulation results reusable across candidate plans.
struct StageBlock {
  int index = 0;           // stage position in the spec
  int trials = 0;
  int gpus = 0;            // the plan's allocation for this stage
  int gpus_per_trial = 1;  // fair share when gpus >= trials (else queued)
  int instances = 0;       // cluster size (instances) during this stage
  int new_instances = 0;   // instances provisioned at stage entry
  int colocated = 0;       // trials placed without spanning extra nodes
  Distribution scale_latency = Distribution::Constant(0.0);
  Distribution init_latency = Distribution::Constant(0.0);
  Distribution train_latency = Distribution::Constant(0.0);
  Distribution fragmented_latency = Distribution::Constant(0.0);
  double sync_seconds = 0.0;
};

// Per-stage bookkeeping the cost model needs (which instances are held for
// the span of which stage).
struct StageMeta {
  int instances = 0;       // cluster size (instances) during this stage
  int gpus_per_trial = 0;  // 0 means trials queue serially on 1 GPU each
  int fragmented_trials = 0;  // trials paying the cross-node penalty
  int scale_node = -1;     // -1 when no scale-up precedes this stage
  std::vector<int> init_nodes;
  std::vector<int> train_nodes;
  int sync_node = -1;
  StageBlock block;        // the generator this stage's nodes came from
};

class ExecutionDag {
 public:
  // Appends a node; all deps must reference existing nodes. Returns its id.
  int AddNode(const NodeSpec& spec);

  int size() const { return static_cast<int>(type_.size()); }

  NodeType type(int id) const { return type_[Check(id)]; }
  int stage(int id) const { return stage_[Check(id)]; }
  const Distribution& latency(int id) const { return latency_[Check(id)]; }
  int gpus(int id) const { return gpus_[Check(id)]; }
  int trial(int id) const { return trial_[Check(id)]; }
  int new_instances(int id) const { return new_instances_[Check(id)]; }

  // Predecessor ids of `id` (a view into the shared dependency arena).
  std::span<const int> deps(int id) const {
    const size_t i = Check(id);
    return {deps_.data() + dep_begin_[i], dep_begin_[i + 1] - dep_begin_[i]};
  }

  // Node ids with no successors (the construction frontier).
  std::vector<int> Frontier() const;

  std::vector<StageMeta>& stages() { return stages_; }
  const std::vector<StageMeta>& stages() const { return stages_; }

  // Total instances ever provisioned (sum over SCALE nodes); drives the
  // per-instance data-ingress charge.
  int TotalInstancesProvisioned() const;

  std::string ToString() const;

 private:
  size_t Check(int id) const;

  // Struct-of-arrays node columns, indexed by node id.
  std::vector<NodeType> type_;
  std::vector<int> stage_;
  std::vector<Distribution> latency_;
  std::vector<int> gpus_;
  std::vector<int> trial_;
  std::vector<int> new_instances_;
  // Flattened dependency arena: node i's deps are
  // deps_[dep_begin_[i] .. dep_begin_[i+1]).
  std::vector<size_t> dep_begin_{0};
  std::vector<int> deps_;
  std::vector<int> successor_count_;
  std::vector<StageMeta> stages_;
};

}  // namespace rubberband

#endif  // SRC_DAG_NODE_H_
