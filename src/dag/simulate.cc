#include "src/dag/simulate.h"

#include <algorithm>
#include <vector>

#include "src/common/stats.h"

namespace rubberband {
namespace {

// Per-instance compute cost for one sampled execution. Reconstructs each
// instance slot's launch -> release interval from the stage spans.
Money PerInstanceComputeCost(const ExecutionDag& dag, const CloudProfile& cloud,
                             const std::vector<double>& finish) {
  const Money per_second = cloud.instance.PricePerSecond();
  const Seconds min_billed = cloud.pricing.minimum_billed_seconds;
  Money total;

  std::vector<double> slot_launch;  // launch time of each alive instance
  double prev_stage_end = 0.0;
  const auto bill = [&](double launch, double release) {
    total += per_second * std::max(release - launch, min_billed);
  };

  for (const StageMeta& meta : dag.stages()) {
    const int needed = meta.instances;
    const int alive = static_cast<int>(slot_launch.size());
    if (needed > alive) {
      // New instances launch when the provider serves the SCALE request.
      const double launch =
          meta.scale_node >= 0 ? finish[static_cast<size_t>(meta.scale_node)] : prev_stage_end;
      slot_launch.resize(static_cast<size_t>(needed), launch);
    } else if (needed < alive) {
      // Shrink at the stage boundary; release the most recently launched
      // instances first (they have accrued the least minimum-charge value).
      for (int k = 0; k < alive - needed; ++k) {
        bill(slot_launch.back(), prev_stage_end);
        slot_launch.pop_back();
      }
    }
    prev_stage_end = finish[static_cast<size_t>(meta.sync_node)];
  }
  for (double launch : slot_launch) {
    bill(launch, prev_stage_end);
  }
  return total;
}

Money PerFunctionComputeCost(const ExecutionDag& dag, const CloudProfile& cloud,
                             const std::vector<double>& latency) {
  const Money gpu_second = cloud.instance.GpuSecondPrice();
  Money total;
  for (const DagNode& node : dag.nodes()) {
    if (node.type == NodeType::kTrain) {
      total += gpu_second * (static_cast<double>(node.gpus) * latency[static_cast<size_t>(node.id)]);
    }
  }
  return total;
}

}  // namespace

PlanSample SamplePlan(const ExecutionDag& dag, const ModelProfile& model,
                      const CloudProfile& cloud, Rng& rng) {
  const size_t n = static_cast<size_t>(dag.size());
  std::vector<double> latency(n, 0.0);
  std::vector<double> finish(n, 0.0);

  // Algorithm 1: ids are topologically ordered, so one forward sweep
  // computes every node's finish time.
  for (const DagNode& node : dag.nodes()) {
    const size_t id = static_cast<size_t>(node.id);
    latency[id] = node.latency.Sample(rng);
    double start = 0.0;
    for (int dep : node.deps) {
      start = std::max(start, finish[static_cast<size_t>(dep)]);
    }
    finish[id] = start + latency[id];
  }

  PlanSample sample;
  for (double f : finish) {
    sample.duration = std::max(sample.duration, f);
  }

  switch (cloud.pricing.billing) {
    case BillingModel::kPerInstance:
      sample.compute_cost = PerInstanceComputeCost(dag, cloud, finish);
      break;
    case BillingModel::kPerFunction:
      sample.compute_cost = PerFunctionComputeCost(dag, cloud, latency);
      break;
  }
  sample.data_cost = cloud.pricing.data_price_per_gb *
                     (model.dataset_gb * static_cast<double>(dag.TotalInstancesProvisioned()));
  sample.cost = sample.compute_cost + sample.data_cost;
  return sample;
}

std::vector<Seconds> MeanFinishTimes(const ExecutionDag& dag) {
  std::vector<Seconds> finish(static_cast<size_t>(dag.size()), 0.0);
  for (const DagNode& node : dag.nodes()) {
    double start = 0.0;
    for (int dep : node.deps) {
      start = std::max(start, finish[static_cast<size_t>(dep)]);
    }
    finish[static_cast<size_t>(node.id)] = start + node.latency.Mean();
  }
  return finish;
}

PlanEstimate SimulatePlan(const ExecutionDag& dag, const ModelProfile& model,
                          const CloudProfile& cloud, const SimulateOptions& options) {
  Rng rng(options.seed);
  RunningStats jct_stats;
  RunningStats cost_stats;
  RunningStats compute_stats;
  RunningStats data_stats;
  std::vector<double> durations;
  durations.reserve(static_cast<size_t>(options.num_samples));

  for (int i = 0; i < options.num_samples; ++i) {
    const PlanSample sample = SamplePlan(dag, model, cloud, rng);
    jct_stats.Add(sample.duration);
    cost_stats.Add(sample.cost.dollars());
    compute_stats.Add(sample.compute_cost.dollars());
    data_stats.Add(sample.data_cost.dollars());
    durations.push_back(sample.duration);
  }

  PlanEstimate estimate;
  estimate.jct_mean = jct_stats.mean();
  estimate.jct_stddev = jct_stats.stddev();
  estimate.jct_p95 = Percentile(durations, 95.0);
  estimate.cost_mean = Money::FromDollars(cost_stats.mean());
  estimate.compute_cost_mean = Money::FromDollars(compute_stats.mean());
  estimate.data_cost_mean = Money::FromDollars(data_stats.mean());
  estimate.cost_stddev_dollars = cost_stats.stddev();
  return estimate;
}

}  // namespace rubberband
