#include "src/dag/simulate.h"

#include <algorithm>

#include "src/common/stats.h"

namespace rubberband {

StageDraw SampleStageDraw(const StageBlock& block, uint64_t seed, int sample_index) {
  Rng rng = Rng::ForStream(seed, static_cast<uint64_t>(block.index),
                           static_cast<uint64_t>(sample_index));
  StageDraw draw;

  // Fixed draw order within the stage: SCALE, each INIT, each TRAIN in
  // trial order. The SYNC barrier is a constant and consumes no draws.
  Seconds entry = 0.0;
  if (block.new_instances > 0) {
    draw.scale_done = block.scale_latency.Sample(rng);
    Seconds slowest_init = 0.0;
    for (int k = 0; k < block.new_instances; ++k) {
      slowest_init = std::max(slowest_init, block.init_latency.Sample(rng));
    }
    entry = draw.scale_done + slowest_init;
  }

  Seconds tail = 0.0;
  if (block.gpus >= block.trials) {
    for (int t = 0; t < block.trials; ++t) {
      const Distribution& latency =
          t < block.colocated ? block.train_latency : block.fragmented_latency;
      const double duration = latency.Sample(rng);
      draw.train_gpu_seconds += static_cast<double>(block.gpus_per_trial) * duration;
      tail = std::max(tail, entry + duration);
    }
  } else {
    // Queued: `gpus` one-GPU slots; slot s runs trials s, s+gpus, ...
    // serially, so each slot's finish time accumulates.
    std::vector<Seconds> slot_done(static_cast<size_t>(block.gpus), entry);
    for (int t = 0; t < block.trials; ++t) {
      const double duration = block.train_latency.Sample(rng);
      draw.train_gpu_seconds += duration;
      Seconds& done = slot_done[static_cast<size_t>(t % block.gpus)];
      done += duration;
      tail = std::max(tail, done);
    }
  }
  draw.span = tail + block.sync_seconds;
  return draw;
}

SampleComposer::SampleComposer(const ModelProfile& model, const CloudProfile& cloud)
    : model_(model),
      cloud_(cloud),
      per_instance_(cloud.pricing.billing == BillingModel::kPerInstance),
      per_second_(cloud.instance.PricePerSecond()),
      gpu_second_(cloud.instance.GpuSecondPrice()),
      min_billed_(cloud.pricing.minimum_billed_seconds) {}

void SampleComposer::Bill(Seconds launch, Seconds release) {
  compute_ += per_second_ * std::max(release - launch, min_billed_);
}

void SampleComposer::AddStage(const StageBlock& block, const StageDraw& draw) {
  total_provisioned_ += block.new_instances;
  if (per_instance_) {
    const int needed = block.instances;
    const int alive = static_cast<int>(slot_launch_.size());
    if (needed > alive) {
      // New instances launch when the provider serves the SCALE request.
      const Seconds launch =
          block.new_instances > 0 ? clock_ + draw.scale_done : clock_;
      slot_launch_.resize(static_cast<size_t>(needed), launch);
    } else if (needed < alive) {
      // Shrink at the stage boundary; release the most recently launched
      // instances first (they have accrued the least minimum-charge value).
      for (int k = 0; k < alive - needed; ++k) {
        Bill(slot_launch_.back(), clock_);
        slot_launch_.pop_back();
      }
    }
  } else {
    compute_ += gpu_second_ * draw.train_gpu_seconds;
  }
  clock_ += draw.span;
}

PlanSample SampleComposer::Finish() {
  for (Seconds launch : slot_launch_) {
    Bill(launch, clock_);
  }
  slot_launch_.clear();
  PlanSample sample;
  sample.duration = clock_;
  sample.compute_cost = compute_;
  sample.data_cost = cloud_.pricing.data_price_per_gb *
                     (model_.dataset_gb * static_cast<double>(total_provisioned_));
  sample.cost = sample.compute_cost + sample.data_cost;
  return sample;
}

PlanSample SamplePlan(const ExecutionDag& dag, const ModelProfile& model,
                      const CloudProfile& cloud, uint64_t seed, int sample_index) {
  SampleComposer composer(model, cloud);
  for (const StageMeta& meta : dag.stages()) {
    composer.AddStage(meta.block, SampleStageDraw(meta.block, seed, sample_index));
  }
  return composer.Finish();
}

std::vector<Seconds> MeanFinishTimes(const ExecutionDag& dag) {
  std::vector<Seconds> finish(static_cast<size_t>(dag.size()), 0.0);
  for (int id = 0; id < dag.size(); ++id) {
    double start = 0.0;
    for (int dep : dag.deps(id)) {
      start = std::max(start, finish[static_cast<size_t>(dep)]);
    }
    finish[static_cast<size_t>(id)] = start + dag.latency(id).Mean();
  }
  return finish;
}

PlanEstimate SimulatePlan(const ExecutionDag& dag, const ModelProfile& model,
                          const CloudProfile& cloud, const SimulateOptions& options) {
  RunningStats jct_stats;
  RunningStats cost_stats;
  RunningStats compute_stats;
  RunningStats data_stats;
  std::vector<double> durations;
  if (options.collect_percentiles) {
    durations.reserve(static_cast<size_t>(options.num_samples));
  }

  for (int i = 0; i < options.num_samples; ++i) {
    const PlanSample sample = SamplePlan(dag, model, cloud, options.seed, i);
    jct_stats.Add(sample.duration);
    cost_stats.Add(sample.cost.dollars());
    compute_stats.Add(sample.compute_cost.dollars());
    data_stats.Add(sample.data_cost.dollars());
    if (options.collect_percentiles) {
      durations.push_back(sample.duration);
    }
  }

  PlanEstimate estimate;
  estimate.jct_mean = jct_stats.mean();
  estimate.jct_stddev = jct_stats.stddev();
  estimate.jct_p95 = options.collect_percentiles ? Percentile(durations, 95.0) : 0.0;
  estimate.cost_mean = Money::FromDollars(cost_stats.mean());
  estimate.compute_cost_mean = Money::FromDollars(compute_stats.mean());
  estimate.data_cost_mean = Money::FromDollars(data_stats.mean());
  estimate.cost_stddev_dollars = cost_stats.stddev();
  return estimate;
}

}  // namespace rubberband
