// Plan simulation (paper section 4.2, "Simulation", and Algorithm 1).
//
// JCT: sample a latency for every node and take the critical path (one
// forward sweep — node ids are topologically ordered). Averaged over a
// configurable number of samples.
//
// Cost, per sample:
//   * per-function billing sums each billable TRAIN node's GPU-seconds at
//     the GPU-second rate — resources are released the moment a trial
//     finishes, so stragglers do not inflate cost;
//   * per-instance billing reconstructs each instance's launch->release
//     interval: instances launch when their stage's SCALE completes, are
//     held through every stage that needs them (billed through the stage's
//     SYNC — the critical path *within* the stage — which is how
//     straggler-induced idling shows up as cost), are released at stage
//     boundaries when the plan shrinks, and pay the per-acquisition minimum
//     charge;
//   * data ingress is charged once per instance ever provisioned.

#ifndef SRC_DAG_SIMULATE_H_
#define SRC_DAG_SIMULATE_H_

#include <cstdint>

#include "src/cloud/cloud_profile.h"
#include "src/common/money.h"
#include "src/common/time.h"
#include "src/dag/node.h"
#include "src/model/profile.h"

namespace rubberband {

struct PlanEstimate {
  Seconds jct_mean = 0.0;
  Seconds jct_stddev = 0.0;
  Seconds jct_p95 = 0.0;
  Money cost_mean;
  Money compute_cost_mean;
  Money data_cost_mean;
  double cost_stddev_dollars = 0.0;

  bool MeetsDeadline(Seconds deadline) const { return jct_mean <= deadline; }
};

struct SimulateOptions {
  int num_samples = 20;
  uint64_t seed = 42;
};

// One Monte-Carlo draw of (duration, cost) for the DAG.
struct PlanSample {
  Seconds duration = 0.0;
  Money cost;
  Money compute_cost;
  Money data_cost;
};

PlanSample SamplePlan(const ExecutionDag& dag, const ModelProfile& model,
                      const CloudProfile& cloud, Rng& rng);

PlanEstimate SimulatePlan(const ExecutionDag& dag, const ModelProfile& model,
                          const CloudProfile& cloud, const SimulateOptions& options = {});

// Deterministic forward pass using every node's mean latency; returns each
// node's finish time (indexed by node id). Used for rendering plans and for
// tests that need exact expected timings.
std::vector<Seconds> MeanFinishTimes(const ExecutionDag& dag);

}  // namespace rubberband

#endif  // SRC_DAG_SIMULATE_H_
