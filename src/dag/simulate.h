// Plan simulation (paper section 4.2, "Simulation", and Algorithm 1).
//
// The execution DAG is a chain of stage blocks separated by SYNC barriers,
// so a stage's sampled behavior is fully described relative to its entry
// (the previous barrier's completion): a StageDraw carries the stage's
// span, the relative completion time of its SCALE request, and its billable
// TRAIN GPU-seconds. Sampling a whole plan composes stage draws in order
// (SampleComposer), which is equivalent to Algorithm 1's forward sweep over
// topologically ordered nodes but touches O(stages) state per sample.
//
// Randomness is keyed, not sequential: stage s of sample i draws from
// Rng::ForStream(seed, s, i), so a stage's draw depends only on its own
// block — not on which other stages exist. This makes per-stage results
// exactly reusable across candidate plans (the stage-incremental
// PlanEvaluator caches them) while keeping every path bit-identical: the
// fresh sweep here and the evaluator's cache both call SampleStageDraw.
//
// Cost, per sample:
//   * per-function billing sums each billable TRAIN node's GPU-seconds at
//     the GPU-second rate — resources are released the moment a trial
//     finishes, so stragglers do not inflate cost;
//   * per-instance billing reconstructs each instance's launch->release
//     interval: instances launch when their stage's SCALE completes, are
//     held through every stage that needs them (billed through the stage's
//     SYNC — the critical path *within* the stage — which is how
//     straggler-induced idling shows up as cost), are released at stage
//     boundaries when the plan shrinks, and pay the per-acquisition minimum
//     charge;
//   * data ingress is charged once per instance ever provisioned.

#ifndef SRC_DAG_SIMULATE_H_
#define SRC_DAG_SIMULATE_H_

#include <cstdint>
#include <vector>

#include "src/cloud/cloud_profile.h"
#include "src/common/money.h"
#include "src/common/time.h"
#include "src/dag/node.h"
#include "src/model/profile.h"

namespace rubberband {

struct PlanEstimate {
  Seconds jct_mean = 0.0;
  Seconds jct_stddev = 0.0;
  Seconds jct_p95 = 0.0;  // 0 unless SimulateOptions::collect_percentiles
  Money cost_mean;
  Money compute_cost_mean;
  Money data_cost_mean;
  double cost_stddev_dollars = 0.0;

  bool MeetsDeadline(Seconds deadline) const { return jct_mean <= deadline; }
};

struct SimulateOptions {
  int num_samples = 20;
  uint64_t seed = 42;
  // Percentile reporting needs the full per-sample duration vector; the
  // planner's hot loop only ranks candidates by mean, so it opts out.
  bool collect_percentiles = true;
};

// One Monte-Carlo draw of (duration, cost) for the DAG.
struct PlanSample {
  Seconds duration = 0.0;
  Money cost;
  Money compute_cost;
  Money data_cost;
};

// One stage's Monte-Carlo draw, everything relative to the stage's entry.
struct StageDraw {
  Seconds span = 0.0;        // entry -> this stage's SYNC completion
  Seconds scale_done = 0.0;  // entry -> SCALE served (0 without scale-up)
  double train_gpu_seconds = 0.0;  // billable under per-function pricing
};

// Draws stage `block` for sample `sample_index` from the keyed stream
// (seed, block.index, sample_index). Pure: same arguments, same draw.
StageDraw SampleStageDraw(const StageBlock& block, uint64_t seed, int sample_index);

// Folds stage draws into one plan sample: advances the stage clock and
// reconstructs per-instance billing intervals (or accumulates per-function
// GPU-seconds). Feed stages in plan order, then call Finish() once.
class SampleComposer {
 public:
  SampleComposer(const ModelProfile& model, const CloudProfile& cloud);

  void AddStage(const StageBlock& block, const StageDraw& draw);
  PlanSample Finish();

 private:
  void Bill(Seconds launch, Seconds release);

  const ModelProfile& model_;
  const CloudProfile& cloud_;
  const bool per_instance_;
  const Money per_second_;
  const Money gpu_second_;
  const Seconds min_billed_;
  Seconds clock_ = 0.0;  // completion time of the last composed barrier
  std::vector<Seconds> slot_launch_;  // launch time of each alive instance
  Money compute_;
  int total_provisioned_ = 0;
};

// One full-plan draw for `sample_index` under keyed streams. Requires a
// BuildDag-produced DAG (the stage blocks drive the sampling).
PlanSample SamplePlan(const ExecutionDag& dag, const ModelProfile& model,
                      const CloudProfile& cloud, uint64_t seed, int sample_index);

PlanEstimate SimulatePlan(const ExecutionDag& dag, const ModelProfile& model,
                          const CloudProfile& cloud, const SimulateOptions& options = {});

// Deterministic forward pass using every node's mean latency; returns each
// node's finish time (indexed by node id). Used for rendering plans and for
// tests that need exact expected timings.
std::vector<Seconds> MeanFinishTimes(const ExecutionDag& dag);

}  // namespace rubberband

#endif  // SRC_DAG_SIMULATE_H_
