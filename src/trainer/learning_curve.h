// Synthetic learning-curve model.
//
// Validation accuracy as a function of cumulative training iterations, with
// the two properties the paper's background section leans on: diminishing
// returns (rate of improvement decays as training progresses) and noisy
// intermediate metrics (early measurements are imperfect predictors of
// final quality — which is why SHA's staged elimination is the right
// structure rather than one-shot selection).
//
//   acc(q, t) = floor + (asymptote(q) - floor) * (1 - exp(-t / tau))
//   asymptote(q) = base + range * q
//
// where q is the configuration's latent quality. Evaluation adds zero-mean
// noise whose magnitude shrinks as training progresses.

#ifndef SRC_TRAINER_LEARNING_CURVE_H_
#define SRC_TRAINER_LEARNING_CURVE_H_

#include <cstdint>

#include "src/common/rng.h"

namespace rubberband {

struct LearningCurveModel {
  double floor = 0.10;           // accuracy before any training (chance level)
  double base_asymptote = 0.55;  // converged accuracy of the worst config
  double quality_range = 0.40;   // extra converged accuracy at quality = 1
  double tau_iters = 10.0;       // convergence time constant, in iterations
  double eval_noise = 0.01;      // stddev of evaluation noise early in training

  // Noise-free expected accuracy.
  double ExpectedAccuracy(double quality, double cum_iters) const;

  // Expected accuracy plus evaluation noise (clamped to [0, 1]). Noise
  // decays with training progress: early metrics are less reliable.
  double NoisyAccuracy(double quality, double cum_iters, Rng& rng) const;
};

}  // namespace rubberband

#endif  // SRC_TRAINER_LEARNING_CURVE_H_
