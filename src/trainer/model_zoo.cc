#include "src/trainer/model_zoo.h"

namespace rubberband {

int WorkloadSpec::MicroSteps(int gpus) const {
  if (gpus < 1 || max_batch_per_gpu < 1) {
    return 1;
  }
  const int capacity = gpus * max_batch_per_gpu;
  return (batch_size + capacity - 1) / capacity;
}

// Scaling curves saturate under strong scaling (fixed effective batch):
// speedup rises sub-linearly (Figure 4) and plateaus once per-GPU
// micro-batches become communication-bound — past that point extra GPUs buy
// essentially nothing, which is why reallocating a whole static cluster to
// the lone surviving trial wastes money (the paper's Figure 1). The plateau
// position scales with batch size: bigger batches keep more GPUs busy.

WorkloadSpec ResNet50(const Dataset& dataset, int batch_size) {
  WorkloadSpec spec;
  spec.name = "resnet50-" + dataset.name;
  spec.dataset = dataset;
  spec.batch_size = batch_size;
  // Calibrated to the paper's simulated experiments: mean per-iteration
  // latency of 4 s at batch 512 (Figure 9) and 12 s at batch 2048
  // (Figure 12); latency scales roughly linearly in batch.
  spec.base_iter_seconds = 4.0 * static_cast<double>(batch_size) / 512.0;
  spec.iter_noise_sigma = 0.1 * spec.base_iter_seconds;
  spec.max_batch_per_gpu = 256;
  // The plateau position depends on the batch size: strong scaling divides
  // the fixed batch across workers, so smaller batches hit the
  // communication wall at fewer GPUs (~64 samples per GPU).
  if (batch_size >= 1024) {
    spec.true_scaling = ScalingFunction::FromPoints(
        {{1, 1.0}, {2, 1.85}, {4, 3.4}, {8, 5.9}, {16, 9.5}, {32, 10.8}, {64, 11.2}});
  } else {
    spec.true_scaling = ScalingFunction::FromPoints(
        {{1, 1.0}, {2, 1.85}, {4, 3.4}, {8, 5.5}, {16, 5.9}, {32, 6.1}, {64, 6.2}});
  }
  spec.cross_node_latency_factor = 2.3;
  spec.curve = LearningCurveModel{0.10, 0.70, 0.20, 40.0, 0.02};
  spec.checkpoint_gb = 0.20;  // ~25M params + SGD momentum
  spec.trial_startup_seconds = 5.0;
  spec.sync_seconds = 2.0;
  return spec;
}

WorkloadSpec ResNet101Cifar10(int batch_size) {
  WorkloadSpec spec;
  spec.name = "resnet101-cifar10";
  spec.dataset = Cifar10();
  spec.batch_size = batch_size;
  // One "iteration" of the Table 2 workload is an epoch over CIFAR-10;
  // ~88 s on one V100 at batch 1024 reproduces the stage spans implied by
  // the paper's Table 3 schedule.
  spec.base_iter_seconds = 88.0 * static_cast<double>(batch_size) / 1024.0;
  spec.iter_noise_sigma = 8.0;
  spec.max_batch_per_gpu = 256;
  spec.true_scaling = ScalingFunction::FromPoints({{1, 1.0},
                                                   {2, 1.80},
                                                   {4, 3.2},
                                                   {8, 5.4},
                                                   {12, 5.55},
                                                   {16, 5.60},
                                                   {24, 5.65},
                                                   {32, 5.70}});
  spec.cross_node_latency_factor = 2.3;
  spec.curve = LearningCurveModel{0.10, 0.80, 0.13, 10.0, 0.02};
  spec.checkpoint_gb = 0.35;  // ~45M params + SGD momentum
  spec.trial_startup_seconds = 15.0;
  spec.sync_seconds = 5.0;
  return spec;
}

WorkloadSpec ResNet152Cifar100(int batch_size) {
  WorkloadSpec spec;
  spec.name = "resnet152-cifar100";
  spec.dataset = Cifar100();
  spec.batch_size = batch_size;
  spec.base_iter_seconds = 130.0 * static_cast<double>(batch_size) / 1024.0;
  spec.iter_noise_sigma = 10.0;
  spec.max_batch_per_gpu = 128;
  spec.true_scaling = ScalingFunction::FromPoints(
      {{1, 1.0}, {2, 1.78}, {4, 3.1}, {8, 5.1}, {12, 5.25}, {16, 5.3}, {24, 5.35}, {32, 5.4}});
  spec.cross_node_latency_factor = 2.3;
  spec.curve = LearningCurveModel{0.01, 0.55, 0.20, 30.0, 0.02};
  spec.checkpoint_gb = 0.48;  // ~60M params + SGD momentum
  spec.trial_startup_seconds = 18.0;
  spec.sync_seconds = 6.0;
  return spec;
}

WorkloadSpec BertRte(int batch_size) {
  WorkloadSpec spec;
  spec.name = "bert-rte";
  spec.dataset = RteGlue();
  spec.batch_size = batch_size;
  // Fine-tuning epoch over RTE; BERT's all-reduce volume makes it the
  // worst scaler in Figure 4 and pushes its peak to very few GPUs.
  spec.base_iter_seconds = 60.0 * static_cast<double>(batch_size) / 32.0;
  spec.iter_noise_sigma = 4.0;
  spec.max_batch_per_gpu = 8;
  spec.true_scaling = ScalingFunction::FromPoints(
      {{1, 1.0}, {2, 1.60}, {4, 2.6}, {8, 3.9}, {16, 4.05}, {32, 4.1}});
  spec.cross_node_latency_factor = 2.6;
  spec.curve = LearningCurveModel{0.50, 0.58, 0.12, 8.0, 0.02};
  spec.checkpoint_gb = 1.30;  // ~110M params + Adam moments
  spec.trial_startup_seconds = 12.0;
  spec.sync_seconds = 4.0;
  return spec;
}

std::optional<WorkloadSpec> FindWorkload(const std::string& name) {
  for (const WorkloadSpec& spec : {ResNet50(Cifar10(), 512), ResNet101Cifar10(1024),
                                   ResNet152Cifar100(1024), BertRte(32)}) {
    if (spec.name == name) {
      return spec;
    }
  }
  return std::nullopt;
}

}  // namespace rubberband
