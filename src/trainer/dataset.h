// Dataset catalog.
//
// The planner only observes two dataset properties: the per-instance
// ingress footprint in GB (drives the data-movement cost studied in
// Figure 10) and the number of training samples (converts iterations to
// epochs and throughput to samples/second).

#ifndef SRC_TRAINER_DATASET_H_
#define SRC_TRAINER_DATASET_H_

#include <cstdint>
#include <optional>
#include <string>

namespace rubberband {

struct Dataset {
  std::string name;
  double size_gb = 0.0;
  int64_t num_train_samples = 0;
};

Dataset Cifar10();    // ~150 MB, 50k samples
Dataset Cifar100();   // ~150 MB, 50k samples
Dataset ImageNet();   // ~150 GB, 1.28M samples
Dataset RteGlue();    // ~2 MB, 2.5k samples

std::optional<Dataset> FindDataset(const std::string& name);

}  // namespace rubberband

#endif  // SRC_TRAINER_DATASET_H_
