#include "src/trainer/synthetic_trainer.h"

#include <algorithm>
#include <stdexcept>

namespace rubberband {

SyntheticTrainer::SyntheticTrainer(const WorkloadSpec& workload,
                                   const HyperparameterConfig& config, uint64_t seed)
    : workload_(workload), config_(config), rng_(seed) {}

void SyntheticTrainer::Configure(int gpus, bool colocated) {
  if (gpus < 1) {
    throw std::invalid_argument("trainer needs at least one GPU");
  }
  gpus_ = gpus;
  colocated_ = colocated;
}

Seconds SyntheticTrainer::MeanIterLatency() const {
  double latency = workload_.base_iter_seconds * workload_.true_scaling.LatencyFactor(gpus_);
  if (!colocated_) {
    latency *= workload_.cross_node_latency_factor;
  }
  return latency;
}

void SyntheticTrainer::SetWorkerSlowdowns(std::vector<double> slowdowns) {
  worker_slowdowns_ = std::move(slowdowns);
}

Seconds SyntheticTrainer::SampleIterLatency() {
  const double mean = MeanIterLatency();
  // Straggler noise scales with the same factor as the mean so that the
  // coefficient of variation is allocation-independent.
  const double sigma = workload_.iter_noise_sigma * (mean / workload_.base_iter_seconds);
  if (worker_slowdowns_.empty()) {
    const double latency = rng_.Normal(mean, sigma);
    // Iterations cannot take less than a tenth of the mean (a physical
    // floor; also keeps the truncated-normal draw positive).
    const double floored = std::max(latency, 0.1 * mean);
    last_worker_latencies_.assign(1, floored);
    return floored;
  }
  // Gang-synchronous mode: every worker group draws independently and the
  // iteration completes when the slowest group does, so one persistently
  // slow instance taxes every sync (the gray-failure signature).
  last_worker_latencies_.clear();
  double gang = 0.0;
  for (const double slowdown : worker_slowdowns_) {
    const double draw = std::max(rng_.Normal(mean, sigma), 0.1 * mean) * slowdown;
    last_worker_latencies_.push_back(draw);
    gang = std::max(gang, draw);
  }
  return gang;
}

void SyntheticTrainer::Advance(int64_t iters) {
  if (iters < 0) {
    throw std::invalid_argument("cannot train a negative number of iterations");
  }
  cum_iters_ += iters;
}

double SyntheticTrainer::Evaluate() {
  return workload_.curve.NoisyAccuracy(config_.quality, static_cast<double>(cum_iters_), rng_);
}

double SyntheticTrainer::ExpectedAccuracy() const {
  return workload_.curve.ExpectedAccuracy(config_.quality, static_cast<double>(cum_iters_));
}

double SyntheticTrainer::SamplesPerSecond() const {
  return static_cast<double>(workload_.batch_size) / MeanIterLatency();
}

TrainerCheckpoint SyntheticTrainer::Checkpoint() const {
  return TrainerCheckpoint{cum_iters_, config_.id};
}

void SyntheticTrainer::Restore(const TrainerCheckpoint& checkpoint) {
  if (checkpoint.config_id != config_.id) {
    throw std::logic_error("checkpoint belongs to a different configuration");
  }
  cum_iters_ = checkpoint.cum_iters;
}

}  // namespace rubberband
