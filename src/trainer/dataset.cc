#include "src/trainer/dataset.h"

namespace rubberband {

Dataset Cifar10() { return Dataset{"cifar10", 0.15, 50'000}; }

Dataset Cifar100() { return Dataset{"cifar100", 0.15, 50'000}; }

Dataset ImageNet() { return Dataset{"imagenet", 150.0, 1'281'167}; }

Dataset RteGlue() { return Dataset{"rte", 0.002, 2'490}; }

std::optional<Dataset> FindDataset(const std::string& name) {
  for (const Dataset& dataset : {Cifar10(), Cifar100(), ImageNet(), RteGlue()}) {
    if (dataset.name == name) {
      return dataset;
    }
  }
  return std::nullopt;
}

}  // namespace rubberband
