// Model zoo: ground-truth workload characteristics for the deep learning
// models the paper evaluates (ResNet-50/101/152, BERT).
//
// These are the *simulated hardware truth* — what a p3-class GPU cluster
// would actually exhibit. RubberBand itself never reads them directly; the
// Profiler measures a SyntheticTrainer built from a WorkloadSpec and fits a
// ModelProfile, mirroring how the real system profiles a live PyTorch job.
// Scaling curves are shaped after the paper's Figure 4 (sub-linear, with
// communication-heavy BERT scaling worst).

#ifndef SRC_TRAINER_MODEL_ZOO_H_
#define SRC_TRAINER_MODEL_ZOO_H_

#include <optional>
#include <string>

#include "src/model/scaling.h"
#include "src/trainer/dataset.h"
#include "src/trainer/learning_curve.h"

namespace rubberband {

struct WorkloadSpec {
  std::string name;
  Dataset dataset;
  int batch_size = 0;

  // Mean latency of one full-batch training iteration on a single GPU
  // (gradient accumulation over micro-batches included).
  double base_iter_seconds = 0.0;
  // Per-iteration latency noise (stddev), the straggler knob of Figure 9.
  double iter_noise_sigma = 0.0;

  // The largest micro-batch one GPU can hold; a trial on g GPUs runs
  // ceil(batch_size / (g * max_batch_per_gpu)) gradient-accumulation steps
  // so the effective batch size never changes with the allocation (strong
  // scaling, paper section 3).
  int max_batch_per_gpu = 0;

  // Ground-truth scaling with co-located workers.
  ScalingFunction true_scaling;

  // Latency multiplier (> 1) when a trial's workers are scattered across
  // more nodes than necessary; Table 1 measures the resulting throughput
  // collapse when the placement controller is disabled.
  double cross_node_latency_factor = 2.2;

  LearningCurveModel curve;

  // Serialized checkpoint footprint (model + optimizer + LR schedule), in
  // GB; drives migration transfer costs through the checkpoint store.
  double checkpoint_gb = 0.1;

  // Fixed overheads.
  double trial_startup_seconds = 1.0;  // worker rendezvous + gang setup
  double sync_seconds = 1.0;           // end-of-stage evaluation barrier

  // Gradient-accumulation micro-steps at an allocation of `gpus`.
  int MicroSteps(int gpus) const;
};

// The paper's evaluation workloads.
WorkloadSpec ResNet50(const Dataset& dataset, int batch_size);   // Figs 9-12
WorkloadSpec ResNet101Cifar10(int batch_size = 1024);            // Tables 2-4
WorkloadSpec ResNet152Cifar100(int batch_size = 1024);           // Table 4
WorkloadSpec BertRte(int batch_size = 32);                       // Table 4

std::optional<WorkloadSpec> FindWorkload(const std::string& name);

}  // namespace rubberband

#endif  // SRC_TRAINER_MODEL_ZOO_H_
