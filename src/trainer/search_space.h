// Hyperparameter search space and configurations.
//
// RubberBand is agnostic to how the space is designed or navigated (paper
// section 2): the user supplies a space and a sampling method. This module
// provides the standard random-search space over learning rate, weight
// decay and momentum. Each sampled configuration carries a latent *quality*
// in [0, 1], computed from a smooth response surface around a hidden
// optimum; the synthetic learning curve converts quality into asymptotic
// accuracy. This preserves the property hyperparameter tuning relies on:
// configurations closer to the optimum rank higher once trained enough,
// while early intermediate metrics are noisy predictors.

#ifndef SRC_TRAINER_SEARCH_SPACE_H_
#define SRC_TRAINER_SEARCH_SPACE_H_

#include <string>

#include "src/common/rng.h"

namespace rubberband {

struct HyperparameterConfig {
  int id = 0;
  double learning_rate = 0.0;
  double weight_decay = 0.0;
  double momentum = 0.0;
  // Latent closeness to the hidden optimum (1 = optimal). Derived, not
  // sampled: deterministic in the hyperparameter values.
  double quality = 0.0;

  std::string ToString() const;
};

class SearchSpace {
 public:
  struct Options {
    double log10_lr_min = -4.0;
    double log10_lr_max = 0.0;
    double log10_wd_min = -6.0;
    double log10_wd_max = -2.0;
    double momentum_min = 0.80;
    double momentum_max = 0.99;
    // Hidden optimum (defaults are a typical SGD sweet spot).
    double optimal_log10_lr = -1.0;
    double optimal_log10_wd = -4.0;
    double optimal_momentum = 0.9;
  };

  SearchSpace() : SearchSpace(Options{}) {}
  explicit SearchSpace(const Options& options) : options_(options) {}

  // Random-search sampling: log-uniform lr and weight decay, uniform
  // momentum. Assigns the next sequential id.
  HyperparameterConfig Sample(Rng& rng);

  // Response surface: quality = exp(-||normalized distance to optimum||^2).
  double Quality(const HyperparameterConfig& config) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  int next_id_ = 0;
};

}  // namespace rubberband

#endif  // SRC_TRAINER_SEARCH_SPACE_H_
