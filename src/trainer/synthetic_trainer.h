// SyntheticTrainer: the stand-in for a distributed PyTorch DDP training job.
//
// Implements the trial training contract from paper section 3 ("Training
// assumptions"): an iterative procedure that returns intermediate metrics
// after each iteration, can be checkpointed between iterations, keeps the
// effective batch size constant via gradient accumulation (strong scaling),
// and whose per-iteration latency depends on the resource allocation through
// the workload's ground-truth scaling function. Placement quality enters as
// a latency multiplier: a trial whose worker gang is scattered across more
// nodes than necessary pays the cross-node communication penalty the
// placement controller exists to avoid (Table 1).

#ifndef SRC_TRAINER_SYNTHETIC_TRAINER_H_
#define SRC_TRAINER_SYNTHETIC_TRAINER_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/trainer/model_zoo.h"
#include "src/trainer/search_space.h"

namespace rubberband {

struct TrainerCheckpoint {
  int64_t cum_iters = 0;
  int config_id = 0;
};

class SyntheticTrainer {
 public:
  SyntheticTrainer(const WorkloadSpec& workload, const HyperparameterConfig& config,
                   uint64_t seed);

  // (Re)configures the worker gang after (re)placement. `gpus` is the
  // current allocation; `colocated` says whether the placement controller
  // packed the workers onto a minimal node set.
  void Configure(int gpus, bool colocated);

  // Per-instance persistent slowdown factors for the gang's worker groups
  // (one entry per instance hosting workers; 1.0 = healthy). Non-empty
  // switches SampleIterLatency to gang-synchronous mode: each group draws
  // its own latency, the iteration takes the max. Empty (the default)
  // preserves the original single-draw path bit-identically.
  void SetWorkerSlowdowns(std::vector<double> slowdowns);

  // Latency of the next training iteration under the current configuration
  // (samples straggler noise). Does not advance progress.
  Seconds SampleIterLatency();

  // Per-worker-group latencies of the last SampleIterLatency call (a single
  // entry in single-draw mode). Indexed like the SetWorkerSlowdowns vector.
  const std::vector<double>& last_worker_latencies() const { return last_worker_latencies_; }

  // Expected (noise-free) iteration latency under the current configuration.
  Seconds MeanIterLatency() const;

  // Advances training progress by `iters` full-batch iterations.
  void Advance(int64_t iters);

  // Validation accuracy at the current progress (with evaluation noise).
  double Evaluate();

  // Noise-free accuracy (used for final reporting).
  double ExpectedAccuracy() const;

  // Training throughput in samples/second under the current configuration
  // (expected, noise-free); the Table 1 metric.
  double SamplesPerSecond() const;

  TrainerCheckpoint Checkpoint() const;
  void Restore(const TrainerCheckpoint& checkpoint);

  int64_t cum_iters() const { return cum_iters_; }
  int gpus() const { return gpus_; }
  const HyperparameterConfig& config() const { return config_; }
  const WorkloadSpec& workload() const { return workload_; }

 private:
  WorkloadSpec workload_;
  HyperparameterConfig config_;
  Rng rng_;
  std::vector<double> worker_slowdowns_;
  std::vector<double> last_worker_latencies_;
  int64_t cum_iters_ = 0;
  int gpus_ = 1;
  bool colocated_ = true;
};

}  // namespace rubberband

#endif  // SRC_TRAINER_SYNTHETIC_TRAINER_H_
