#include "src/trainer/search_space.h"

#include <cmath>
#include <cstdio>

namespace rubberband {

std::string HyperparameterConfig::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "config#%d{lr=%.2e, wd=%.2e, momentum=%.3f, q=%.3f}", id,
                learning_rate, weight_decay, momentum, quality);
  return buf;
}

HyperparameterConfig SearchSpace::Sample(Rng& rng) {
  HyperparameterConfig config;
  config.id = next_id_++;
  config.learning_rate = std::pow(10.0, rng.Uniform(options_.log10_lr_min, options_.log10_lr_max));
  config.weight_decay = std::pow(10.0, rng.Uniform(options_.log10_wd_min, options_.log10_wd_max));
  config.momentum = rng.Uniform(options_.momentum_min, options_.momentum_max);
  config.quality = Quality(config);
  return config;
}

double SearchSpace::Quality(const HyperparameterConfig& config) const {
  const auto& o = options_;
  // Each coordinate is normalized by half its range, so a config at the edge
  // of the space contributes ~1 to the squared distance.
  const double d_lr =
      (std::log10(config.learning_rate) - o.optimal_log10_lr) / ((o.log10_lr_max - o.log10_lr_min) / 2.0);
  const double d_wd =
      (std::log10(config.weight_decay) - o.optimal_log10_wd) / ((o.log10_wd_max - o.log10_wd_min) / 2.0);
  const double d_mom =
      (config.momentum - o.optimal_momentum) / ((o.momentum_max - o.momentum_min) / 2.0);
  const double distance_sq = d_lr * d_lr + d_wd * d_wd + d_mom * d_mom;
  return std::exp(-distance_sq);
}

}  // namespace rubberband
