#include "src/trainer/learning_curve.h"

#include <algorithm>
#include <cmath>

namespace rubberband {

double LearningCurveModel::ExpectedAccuracy(double quality, double cum_iters) const {
  const double asymptote = base_asymptote + quality_range * quality;
  const double progress = 1.0 - std::exp(-cum_iters / tau_iters);
  return floor + (asymptote - floor) * progress;
}

double LearningCurveModel::NoisyAccuracy(double quality, double cum_iters, Rng& rng) const {
  const double expected = ExpectedAccuracy(quality, cum_iters);
  // Noise shrinks as the run converges: sigma * exp(-t / (4 tau)) keeps
  // early-stage rankings noisy while late-stage rankings stabilize.
  const double sigma = eval_noise * std::exp(-cum_iters / (4.0 * tau_iters));
  const double noisy = expected + rng.Normal(0.0, sigma);
  return std::clamp(noisy, 0.0, 1.0);
}

}  // namespace rubberband
