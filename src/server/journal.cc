#include "src/server/journal.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/crc32c.h"

namespace rubberband {

namespace {

void PutBe32(uint32_t value, char out[4]) {
  out[0] = static_cast<char>((value >> 24) & 0xff);
  out[1] = static_cast<char>((value >> 16) & 0xff);
  out[2] = static_cast<char>((value >> 8) & 0xff);
  out[3] = static_cast<char>(value & 0xff);
}

uint32_t GetBe32(const char in[4]) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(in[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3]));
}

bool WriteAllFd(int fd, const char* data, size_t size, std::string* error) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      *error = std::string("wal write: ") + std::strerror(errno);
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

std::string RecordBytes(const std::string& payload) {
  std::string record;
  record.resize(kWalRecordHeaderBytes);
  PutBe32(static_cast<uint32_t>(payload.size()), record.data());
  PutBe32(Crc32c(payload), record.data() + 4);
  record.append(payload);
  return record;
}

}  // namespace

bool ParseFsyncPolicy(const std::string& name, FsyncPolicy* policy) {
  if (name == "always") {
    *policy = FsyncPolicy::kAlways;
  } else if (name == "batch") {
    *policy = FsyncPolicy::kBatch;
  } else if (name == "off") {
    *policy = FsyncPolicy::kOff;
  } else {
    return false;
  }
  return true;
}

const char* ToString(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "?";
}

WalWriter::~WalWriter() { Close(); }

bool WalWriter::Open(const std::string& path, const WalOptions& options, bool truncate,
                     std::string* error) {
  Close();
  options_ = options;
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) {
    flags |= O_TRUNC;
  }
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    *error = "wal open '" + path + "': " + std::strerror(errno);
    return false;
  }
  if (truncate && !WriteAllFd(fd_, kWalMagic, kWalMagicBytes, error)) {
    Close();
    return false;
  }
  return true;
}

bool WalWriter::Create(const std::string& path, const WalOptions& options,
                       std::string* error) {
  return Open(path, options, /*truncate=*/true, error);
}

bool WalWriter::OpenAppend(const std::string& path, const WalOptions& options,
                           std::string* error) {
  return Open(path, options, /*truncate=*/false, error);
}

bool WalWriter::Append(const std::string& payload, std::string* error) {
  if (fd_ < 0) {
    *error = "wal not open";
    return false;
  }
  if (payload.size() > kMaxWalRecordBytes) {
    *error = "wal record of " + std::to_string(payload.size()) + " bytes exceeds limit";
    return false;
  }
  // One write() per record: the header and payload land contiguously, so a
  // crash can tear at any byte but cannot interleave records.
  const std::string record = RecordBytes(payload);
  if (!WriteAllFd(fd_, record.data(), record.size(), error)) {
    return false;
  }
  ++appends_;
  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      return Sync(error);
    case FsyncPolicy::kBatch:
      if (++unsynced_records_ >= options_.batch_records) {
        return Sync(error);
      }
      return true;
    case FsyncPolicy::kOff:
      return true;
  }
  return true;
}

bool WalWriter::AppendTorn(const std::string& payload, size_t bytes, std::string* error) {
  if (fd_ < 0) {
    *error = "wal not open";
    return false;
  }
  const std::string record = RecordBytes(payload);
  const size_t cut = bytes < record.size() ? bytes : record.size();
  if (!WriteAllFd(fd_, record.data(), cut, error)) {
    return false;
  }
  ::fsync(fd_);
  return true;
}

bool WalWriter::Sync(std::string* error) {
  if (fd_ < 0) {
    *error = "wal not open";
    return false;
  }
  if (::fsync(fd_) != 0) {
    *error = std::string("wal fsync: ") + std::strerror(errno);
    return false;
  }
  ++syncs_;
  unsynced_records_ = 0;
  return true;
}

void WalWriter::Close() {
  if (fd_ < 0) {
    return;
  }
  if (options_.fsync != FsyncPolicy::kOff) {
    std::string ignored;
    Sync(&ignored);
  }
  ::close(fd_);
  fd_ = -1;
}

void WalWriter::Abandon() {
  if (fd_ < 0) {
    return;
  }
  ::close(fd_);
  fd_ = -1;
}

bool ReadWal(const std::string& path, WalReadResult* result, std::string* error) {
  *result = WalReadResult{};
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return true;  // absent = empty journal (fresh server)
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();
  if (data.empty()) {
    return true;
  }
  if (data.size() < kWalMagicBytes ||
      std::memcmp(data.data(), kWalMagic, kWalMagicBytes) != 0) {
    *error = "wal corrupt at offset 0: bad magic (not a journal, or header overwritten)";
    return false;
  }
  size_t offset = kWalMagicBytes;
  result->valid_bytes = offset;
  while (offset < data.size()) {
    if (data.size() - offset < kWalRecordHeaderBytes) {
      result->torn_tail = true;
      result->torn_offset = offset;
      return true;
    }
    const uint32_t length = GetBe32(data.data() + offset);
    const uint32_t crc = GetBe32(data.data() + offset + 4);
    if (length > kMaxWalRecordBytes) {
      // An absurd length is indistinguishable from a corrupt header when
      // bytes follow it; at the very tail it could equally be a torn
      // header. Refusing is the safe call either way: an operator can
      // truncate by hand, recovery must not guess.
      *error = "wal corrupt at offset " + std::to_string(offset) + ": record length " +
               std::to_string(length) + " exceeds limit";
      return false;
    }
    if (data.size() - offset - kWalRecordHeaderBytes < length) {
      result->torn_tail = true;
      result->torn_offset = offset;
      return true;
    }
    const char* payload = data.data() + offset + kWalRecordHeaderBytes;
    if (Crc32cExtend(0, payload, length) != crc) {
      *error = "wal corrupt at offset " + std::to_string(offset) +
               ": crc mismatch on a complete record (refusing to resume)";
      return false;
    }
    result->records.emplace_back(payload, length);
    offset += kWalRecordHeaderBytes + length;
    result->valid_bytes = offset;
  }
  return true;
}

bool TruncateWal(const std::string& path, uint64_t valid_bytes, std::string* error) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    *error = "wal truncate '" + path + "': " + std::strerror(errno);
    return false;
  }
  return true;
}

// --------------------------------------------------------------------------
// Snapshot digest envelope.

namespace {
constexpr char kSnapMagic[] = "RBSNAP1 ";  // trailing space intended
constexpr size_t kSnapMagicBytes = 8;
}  // namespace

std::string EncodeDigestFile(const std::string& body) {
  char header[64];
  std::snprintf(header, sizeof(header), "%s%08x %zu\n", kSnapMagic, Crc32c(body),
                body.size());
  return std::string(header) + body;
}

bool LooksLikeDigestFile(const std::string& content) {
  return content.size() >= kSnapMagicBytes &&
         std::memcmp(content.data(), kSnapMagic, kSnapMagicBytes) == 0;
}

bool DecodeDigestFile(const std::string& content, std::string* body, std::string* error) {
  if (!LooksLikeDigestFile(content)) {
    // Pre-digest snapshot (or a raw JSON string handed straight to
    // StartRestored): pass through; the JSON layer still validates shape.
    *body = content;
    return true;
  }
  const size_t newline = content.find('\n');
  if (newline == std::string::npos) {
    *error = "snapshot digest header has no terminating newline";
    return false;
  }
  const std::string header = content.substr(kSnapMagicBytes, newline - kSnapMagicBytes);
  unsigned int crc = 0;
  size_t size = 0;
  if (std::sscanf(header.c_str(), "%8x %zu", &crc, &size) != 2) {
    *error = "snapshot digest header unparseable: '" + header + "'";
    return false;
  }
  const std::string payload = content.substr(newline + 1);
  if (payload.size() != size) {
    *error = "snapshot truncated: header promises " + std::to_string(size) +
             " bytes, file carries " + std::to_string(payload.size());
    return false;
  }
  const uint32_t actual = Crc32c(payload);
  if (actual != crc) {
    char message[96];
    std::snprintf(message, sizeof(message),
                  "snapshot digest mismatch: header %08x, body %08x", crc, actual);
    *error = message;
    return false;
  }
  *body = payload;
  return true;
}

}  // namespace rubberband
