// Durable write-ahead journal for the serving front door.
//
// File layout: an 8-byte magic ("RBWAL01\n") followed by append-only
// records, each `[4-byte BE payload length][4-byte BE CRC-32C of payload]
// [payload]`. The CRC is per record, so recovery can tell the two failure
// shapes apart:
//
//   - torn tail: the file ends before a record's announced bytes are all
//     present (a crash mid-append). Recovery drops the partial record,
//     reports where the valid prefix ends, and the writer truncates there
//     before resuming appends. The torn record was never acknowledged to a
//     client (appends are acked only after the record — and, under
//     `fsync=always`, its fsync — completes), so dropping it loses nothing
//     a client was promised.
//   - corruption: a record whose announced bytes are all present but whose
//     CRC does not match (bit rot, a flipped byte, an overwritten region).
//     That is not a crash artifact; recovery refuses with an error naming
//     the byte offset rather than replaying a different history.
//
// Fsync policy trades durability for append latency: `always` fsyncs every
// record before the append returns (a kill -9 loses at most the in-flight
// unacknowledged record), `batch` fsyncs every N records (a machine crash
// can lose up to N-1 acked records; a mere process kill loses nothing,
// since written pages survive the process), `off` never fsyncs explicitly.

#ifndef SRC_SERVER_JOURNAL_H_
#define SRC_SERVER_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rubberband {

inline constexpr char kWalMagic[] = "RBWAL01\n";  // 8 bytes on disk
inline constexpr size_t kWalMagicBytes = 8;
inline constexpr size_t kWalRecordHeaderBytes = 8;  // length + crc
// A journal record is one op's JSON; far smaller than a wire frame, and a
// corrupt length prefix should fail fast, not allocate gigabytes.
inline constexpr uint32_t kMaxWalRecordBytes = 16 * 1024 * 1024;

enum class FsyncPolicy { kAlways, kBatch, kOff };

// Parses "always" / "batch" / "off"; returns false on anything else.
bool ParseFsyncPolicy(const std::string& name, FsyncPolicy* policy);
const char* ToString(FsyncPolicy policy);

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  size_t batch_records = 16;  // fsync cadence under kBatch
};

// Append side. Create() starts a fresh journal (truncating any existing
// file); OpenAppend() resumes one that RecoverWal() already validated.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  bool Create(const std::string& path, const WalOptions& options, std::string* error);
  bool OpenAppend(const std::string& path, const WalOptions& options, std::string* error);

  // Appends one record and applies the fsync policy. Returns false with
  // `*error` set on a write/fsync failure (the journal is then unusable).
  bool Append(const std::string& payload, std::string* error);

  // Forces an fsync regardless of policy (used at graceful close).
  bool Sync(std::string* error);

  // Sync (under kAlways/kBatch) + close.
  void Close();
  // Close WITHOUT the final sync — simulates dying mid-flight. Data already
  // write()n still reaches the file (the page cache belongs to the kernel,
  // not the process); only a machine crash would lose unsynced bytes.
  void Abandon();

  bool is_open() const { return fd_ >= 0; }
  int64_t appends() const { return appends_; }
  int64_t syncs() const { return syncs_; }

  // Test/chaos hook: writes only the first `bytes` bytes of what Append
  // would have written (a record torn mid-write), then syncs. Models a
  // kill -9 that lands between a record's first and last byte.
  bool AppendTorn(const std::string& payload, size_t bytes, std::string* error);

 private:
  bool Open(const std::string& path, const WalOptions& options, bool truncate,
            std::string* error);

  int fd_ = -1;
  WalOptions options_;
  size_t unsynced_records_ = 0;
  int64_t appends_ = 0;
  int64_t syncs_ = 0;
};

struct WalReadResult {
  std::vector<std::string> records;
  // Byte length of the valid prefix (magic + complete, CRC-clean records).
  uint64_t valid_bytes = 0;
  // True when a partial record was dropped from the tail.
  bool torn_tail = false;
  uint64_t torn_offset = 0;  // where the dropped partial record began
};

// Reads every complete record. Returns false with `*error` naming the byte
// offset on corruption (missing/garbled magic, or a complete record whose
// CRC mismatches). A truncated tail is NOT an error: it is reported through
// `torn_tail`/`torn_offset` and the caller truncates to `valid_bytes`
// before reopening for append. An empty or absent file yields zero records.
bool ReadWal(const std::string& path, WalReadResult* result, std::string* error);

// Truncates the journal to `valid_bytes` (torn-tail repair).
bool TruncateWal(const std::string& path, uint64_t valid_bytes, std::string* error);

// --------------------------------------------------------------------------
// Digest-carrying snapshot files.
//
// A drained snapshot is one JSON document wrapped in a one-line header:
//   "RBSNAP1 <crc32c-hex8> <body-bytes>\n<body>"
// so a truncated or bit-flipped snapshot file refuses to restore with a
// precise error instead of replaying garbage.

std::string EncodeDigestFile(const std::string& body);
// Accepts either the digest envelope (verified) or, for pre-digest files,
// a bare JSON body (detected by the missing magic) when `allow_bare`.
bool DecodeDigestFile(const std::string& content, std::string* body, std::string* error);
bool LooksLikeDigestFile(const std::string& content);

}  // namespace rubberband

#endif  // SRC_SERVER_JOURNAL_H_
