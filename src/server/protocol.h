// Wire protocol for the serving front door.
//
// Requests and responses are single JSON objects, one per frame:
//
//   request:  {"id": 7, "tenant": "alice", "method": "submit",
//              "params": {...}}
//   success:  {"id": 7, "ok": true, "result": {...}}
//   failure:  {"id": 7, "ok": false,
//              "error": {"code": "RATE_LIMITED", "message": "...",
//                        "retry_after_ms": 120}}
//
// `id` is an opaque client-chosen correlation value echoed verbatim.
// `tenant` names the rate-limit bucket (default "default"). Error codes are
// closed-vocabulary so clients can switch on them; `retry_after_ms` is only
// present on the two backpressure codes, and it is honest — computed from
// the token bucket or queue state, not a constant.

#ifndef SRC_SERVER_PROTOCOL_H_
#define SRC_SERVER_PROTOCOL_H_

#include <string>

#include "src/obs/json.h"
#include "src/service/tuning_service.h"

namespace rubberband {

// Closed vocabulary of protocol error codes.
inline constexpr const char* kErrBadRequest = "BAD_REQUEST";    // malformed envelope/params
inline constexpr const char* kErrRateLimited = "RATE_LIMITED";  // tenant over its token rate
inline constexpr const char* kErrQueueFull = "QUEUE_FULL";      // admission queue at capacity
inline constexpr const char* kErrDraining = "DRAINING";         // server refusing new work
inline constexpr const char* kErrNotFound = "NOT_FOUND";        // unknown job name
inline constexpr const char* kErrConflict = "CONFLICT";         // op illegal in current state
inline constexpr const char* kErrInternal = "INTERNAL";         // handler threw
inline constexpr const char* kErrTimeout = "TIMEOUT";           // client-side deadline expired

// A parsed request envelope.
struct Request {
  JsonValue id;  // echoed verbatim; null when the client sent none
  std::string tenant = "default";
  std::string method;
  JsonValue params;  // object; empty object when absent
  // Client-supplied idempotency key (optional). A submit/cancel retried
  // with the same key after an ambiguous failure (timeout, dead
  // connection, server restart) is applied at most once: the journaled
  // original decision is returned verbatim instead of re-executing.
  std::string idem;
};

// Parses one request frame. Returns false with `*error` set on malformed
// JSON, a non-object document, or a missing/non-string method.
bool ParseRequest(const std::string& payload, Request* request, std::string* error);

// Builds a success / failure response envelope. `retry_after_ms` < 0 omits
// the field.
std::string OkResponse(const JsonValue& id, JsonValue result);
std::string ErrorResponse(const JsonValue& id, const std::string& code,
                          const std::string& message, int64_t retry_after_ms = -1);

// Builds a JobRequest from `submit` params:
//   name (string, required), workload (zoo name, default resnet101-cifar10),
//   trials/min_iters/max_iters/eta (SHA shape, defaults 32/1/50/3),
//   deadline_s (required, > 0), budget_dollars (default 0 = unbounded),
//   weight (default 1.0).
// Returns false with `*error` naming the offending field.
bool ParseJobRequest(const JsonValue& params, JobRequest* request, std::string* error);

// Re-serializes a JobRequest's wire-expressible fields as submit params
// (the journal stores ops in exactly the shape `submit` accepts).
JsonValue JobRequestToParams(const JobRequest& request);

// One job's status object: {job, state, submitted_at_s, ...}; timing and
// cost fields appear once the job settles.
JsonValue JobStatusJson(const JobOutcome& outcome);

}  // namespace rubberband

#endif  // SRC_SERVER_PROTOCOL_H_
