#include "src/server/rate_limiter.h"

#include <algorithm>
#include <cmath>

namespace rubberband {

RateDecision RateLimiter::Admit(const std::string& tenant, int64_t now_ns) {
  if (!enabled()) {
    return RateDecision{};
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = buckets_.try_emplace(tenant);
  Bucket& bucket = it->second;
  if (inserted) {
    // A new tenant starts with a full bucket: the first burst is free, the
    // sustained rate binds from there.
    bucket.tokens = std::max(config_.burst, 1.0);
    bucket.refilled_ns = now_ns;
  } else if (now_ns > bucket.refilled_ns) {
    const double elapsed_s = static_cast<double>(now_ns - bucket.refilled_ns) / 1e9;
    bucket.tokens = std::min(std::max(config_.burst, 1.0),
                             bucket.tokens + elapsed_s * config_.rate_per_second);
    bucket.refilled_ns = now_ns;
  }
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return RateDecision{};
  }
  RateDecision decision;
  decision.admitted = false;
  const double deficit = 1.0 - bucket.tokens;
  decision.retry_after_ns =
      static_cast<int64_t>(std::ceil(deficit / config_.rate_per_second * 1e9));
  return decision;
}

}  // namespace rubberband
