// Byte-stream transport abstraction under the framing layer.
//
// PR 6 read and wrote file descriptors directly, which made two things
// impossible: per-connection deadlines (a peer that sends a length prefix
// and then stalls pinned a reader thread forever) and deterministic
// network-fault injection (you cannot flip a byte inside ::send). Both
// server and client now speak through a Transport: FdTransport adds
// poll()-based read/write deadlines to a socket, and
// FaultInjectingTransport wraps any transport with a seeded profile of
// resets, short writes, stalls, and byte flips — the chaos tests drive the
// REAL server/client code paths, only the bottom of the stack is shimmed.

#ifndef SRC_SERVER_TRANSPORT_H_
#define SRC_SERVER_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/rng.h"

namespace rubberband {

// Recv/Send status returns. Positive values are byte counts.
inline constexpr int kTransportEof = 0;
inline constexpr int kTransportError = -1;
inline constexpr int kTransportTimeout = -2;

class Transport {
 public:
  virtual ~Transport() = default;

  // Reads up to `len` bytes. Returns the byte count, kTransportEof on a
  // clean peer close, kTransportTimeout when `timeout_ms` >= 0 expires
  // before any byte arrives, or kTransportError with `*error` set.
  virtual int Recv(char* buffer, size_t len, int timeout_ms, std::string* error) = 0;

  // Writes all `len` bytes (retrying short writes internally). Returns
  // kTransportTimeout / kTransportError on failure, otherwise `len`.
  virtual int Send(const char* buffer, size_t len, int timeout_ms, std::string* error) = 0;

  // Hard-closes the underlying connection (both directions).
  virtual void ShutdownBoth() = 0;
};

// A socket with poll()-based deadlines. Does not own the fd.
class FdTransport : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}

  int Recv(char* buffer, size_t len, int timeout_ms, std::string* error) override;
  int Send(const char* buffer, size_t len, int timeout_ms, std::string* error) override;
  void ShutdownBoth() override;

 private:
  int fd_;
};

// Deterministic (seeded) wire-fault profile. All rates are probabilities
// in [0, 1] drawn per Send/Recv call from the shim's own stream; zero
// everywhere means the shim is never even constructed.
struct NetFaultProfile {
  uint64_t seed = 0;
  double reset_rate = 0.0;        // abort the connection mid-send: a partial
                                  // frame reaches the peer, then hard close
  double short_write_rate = 0.0;  // deliver a send in several small chunks
                                  // (all bytes still arrive — exercises the
                                  // peer's partial-read path)
  double byte_flip_rate = 0.0;    // flip one payload byte in a send
  double stall_rate = 0.0;        // sleep before serving a recv
  double stall_ms = 20.0;         // how long a stall lasts

  bool Any() const {
    return reset_rate > 0.0 || short_write_rate > 0.0 || byte_flip_rate > 0.0 ||
           stall_rate > 0.0;
  }
};

// Wraps a transport with the profile above. `stream` distinguishes
// connections so every connection sees its own deterministic fault
// sequence.
class FaultInjectingTransport : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner, const NetFaultProfile& profile,
                          uint64_t stream);

  int Recv(char* buffer, size_t len, int timeout_ms, std::string* error) override;
  int Send(const char* buffer, size_t len, int timeout_ms, std::string* error) override;
  void ShutdownBoth() override;

  int64_t resets() const { return resets_; }
  int64_t flips() const { return flips_; }

 private:
  std::unique_ptr<Transport> inner_;
  NetFaultProfile profile_;
  Rng rng_;
  bool dead_ = false;  // a injected reset kills the connection for good
  int64_t resets_ = 0;
  int64_t flips_ = 0;
};

// Builds the transport a server connection / client socket should use:
// plain FdTransport when the profile is inert, fault-injecting otherwise.
std::unique_ptr<Transport> MakeTransport(int fd, const NetFaultProfile& profile,
                                         uint64_t stream);

}  // namespace rubberband

#endif  // SRC_SERVER_TRANSPORT_H_
