#include "src/server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/server/framing.h"

namespace rubberband {

namespace {

// connect() under a deadline: non-blocking connect, poll for writability,
// then read back SO_ERROR (the poll success only means "resolved", not
// "succeeded").
bool ConnectWithTimeout(int fd, const sockaddr_in& addr, int timeout_ms, std::string* error) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (timeout_ms > 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    *error = std::string("connect: ") + std::strerror(errno);
    return false;
  }
  if (rc < 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      *error = "TIMEOUT: connect deadline of " + std::to_string(timeout_ms) + "ms expired";
      return false;
    }
    if (rc < 0) {
      *error = std::string("poll: ") + std::strerror(errno);
      return false;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      *error = std::string("connect: ") + std::strerror(so_error);
      return false;
    }
  }
  if (timeout_ms > 0) {
    ::fcntl(fd, F_SETFL, flags);  // back to blocking; reads are poll-gated
  }
  return true;
}

}  // namespace

bool Client::Connect(const std::string& host, int port, std::string* error) {
  Close();
  host_ = host;
  port_ = port;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad address '" + host + "'";
    Close();
    return false;
  }
  if (!ConnectWithTimeout(fd_, addr, options_.connect_timeout_ms, error)) {
    if (error->rfind("TIMEOUT", 0) == 0) {
      ++stats_.timeouts;
    }
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  transport_ = MakeTransport(fd_, options_.fault, conn_serial_++);
  return true;
}

void Client::Close() {
  transport_.reset();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::Call(const std::string& method, const JsonValue& params, const std::string& tenant,
                  JsonValue* response, std::string* error) {
  return CallOnce(method, params, tenant, /*idem=*/"", response, error);
}

bool Client::CallOnce(const std::string& method, const JsonValue& params,
                      const std::string& tenant, const std::string& idem, JsonValue* response,
                      std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  JsonValue request = JsonValue::MakeObject();
  request.Set("id", JsonValue::MakeNumber(static_cast<double>(next_id_++)));
  request.Set("tenant", JsonValue::MakeString(tenant));
  request.Set("method", JsonValue::MakeString(method));
  if (!idem.empty()) {
    request.Set("idem", JsonValue::MakeString(idem));
  }
  request.Set("params", params);

  const int io_ms = options_.io_timeout_ms > 0 ? options_.io_timeout_ms : -1;
  if (!WriteFrame(*transport_, request.ToJson(), error, io_ms)) {
    Close();
    return false;
  }
  std::string payload;
  const int status = ReadFrame(*transport_, &payload, error, io_ms, io_ms);
  if (status <= 0) {
    if (status == 0) {
      *error = "connection closed by server";
    } else if (status == kTransportTimeout) {
      // A late response would desynchronize the lockstep framing, so a
      // timed-out connection cannot be reused.
      ++stats_.timeouts;
      *error = "TIMEOUT: " + *error;
    }
    Close();
    return false;
  }
  try {
    *response = JsonValue::Parse(payload);
  } catch (const std::exception& e) {
    *error = std::string("malformed response: ") + e.what();
    Close();
    return false;
  }
  return true;
}

bool Client::CallIdempotent(const std::string& method, const JsonValue& params,
                            const std::string& tenant, const std::string& idem,
                            JsonValue* response, std::string* error) {
  const int attempts = std::max(1, options_.max_attempts);
  // Deterministic jitter: one stream per (seed, call), so a fixed seed
  // replays the exact retry schedule.
  Rng rng = Rng::ForStream(options_.seed, /*stream=*/0x9E77, static_cast<uint64_t>(next_id_));
  std::string last_error = "no attempt made";
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      double backoff = options_.base_backoff_ms;
      for (int i = 1; i < attempt && backoff < options_.max_backoff_ms; ++i) {
        backoff *= 2.0;
      }
      backoff = std::min(backoff, options_.max_backoff_ms);
      backoff *= 1.0 + rng.Uniform(-options_.jitter, options_.jitter);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int64_t>(std::max(0.0, backoff))));
    }
    if (!connected()) {
      if (!Connect(host_, port_, error)) {
        last_error = *error;
        continue;  // server may still be restarting; back off and retry
      }
      if (conn_serial_ > 1) {
        ++stats_.reconnects;  // re-established, as opposed to first connect
      }
    }
    if (CallOnce(method, params, tenant, idem, response, error)) {
      return true;
    }
    last_error = *error;
  }
  *error = last_error;
  return false;
}

}  // namespace rubberband
