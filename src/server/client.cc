#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "src/server/framing.h"

namespace rubberband {

bool Client::Connect(const std::string& host, int port, std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad address '" + host + "'";
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    *error = std::string("connect: ") + std::strerror(errno);
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::Call(const std::string& method, const JsonValue& params, const std::string& tenant,
                  JsonValue* response, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  JsonValue request = JsonValue::MakeObject();
  request.Set("id", JsonValue::MakeNumber(static_cast<double>(next_id_++)));
  request.Set("tenant", JsonValue::MakeString(tenant));
  request.Set("method", JsonValue::MakeString(method));
  request.Set("params", params);

  if (!WriteFrame(fd_, request.ToJson(), error)) {
    Close();
    return false;
  }
  std::string payload;
  const int status = ReadFrame(fd_, &payload, error);
  if (status <= 0) {
    if (status == 0) {
      *error = "connection closed by server";
    }
    Close();
    return false;
  }
  try {
    *response = JsonValue::Parse(payload);
  } catch (const std::exception& e) {
    *error = std::string("malformed response: ") + e.what();
    Close();
    return false;
  }
  return true;
}

}  // namespace rubberband
