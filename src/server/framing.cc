#include "src/server/framing.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace rubberband {

namespace {

void PutPrefix(uint32_t length, char out[4]) {
  out[0] = static_cast<char>((length >> 24) & 0xff);
  out[1] = static_cast<char>((length >> 16) & 0xff);
  out[2] = static_cast<char>((length >> 8) & 0xff);
  out[3] = static_cast<char>(length & 0xff);
}

uint32_t GetPrefix(const char in[4]) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(in[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3]));
}

// Writes all of `data`, retrying on EINTR and short writes. MSG_NOSIGNAL
// turns a write to a peer-closed socket into an EPIPE error return instead
// of a process-killing SIGPIPE — connection teardown races are routine
// (the server shuts connections down during Stop()), not fatal.
bool WriteAll(int fd, const char* data, size_t size, std::string* error) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      *error = std::string("write: ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads exactly `size` bytes. Returns 1 on success, 0 on EOF before the
// first byte, -1 on error or EOF mid-message.
int ReadAll(int fd, char* data, size_t size, std::string* error) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      *error = std::string("read: ") + std::strerror(errno);
      return -1;
    }
    if (n == 0) {
      if (got == 0) {
        return 0;
      }
      *error = "connection closed mid-frame";
      return -1;
    }
    got += static_cast<size_t>(n);
  }
  return 1;
}

}  // namespace

std::string EncodeFrame(const std::string& payload) {
  char prefix[4];
  PutPrefix(static_cast<uint32_t>(payload.size()), prefix);
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.append(prefix, 4);
  frame.append(payload);
  return frame;
}

int DecodeFrame(std::string& buffer, std::string* payload, std::string* error) {
  if (buffer.size() < 4) {
    return 0;
  }
  const uint32_t length = GetPrefix(buffer.data());
  if (length > kMaxFrameBytes) {
    *error = "frame of " + std::to_string(length) + " bytes exceeds limit";
    return -1;
  }
  if (buffer.size() < 4 + static_cast<size_t>(length)) {
    return 0;
  }
  payload->assign(buffer, 4, length);
  buffer.erase(0, 4 + static_cast<size_t>(length));
  return 1;
}

bool WriteFrame(int fd, const std::string& payload, std::string* error) {
  if (payload.size() > kMaxFrameBytes) {
    *error = "frame of " + std::to_string(payload.size()) + " bytes exceeds limit";
    return false;
  }
  char prefix[4];
  PutPrefix(static_cast<uint32_t>(payload.size()), prefix);
  if (!WriteAll(fd, prefix, 4, error)) {
    return false;
  }
  return WriteAll(fd, payload.data(), payload.size(), error);
}

int ReadFrame(int fd, std::string* payload, std::string* error) {
  char prefix[4];
  const int header = ReadAll(fd, prefix, 4, error);
  if (header <= 0) {
    return header;
  }
  const uint32_t length = GetPrefix(prefix);
  if (length > kMaxFrameBytes) {
    *error = "frame of " + std::to_string(length) + " bytes exceeds limit";
    return -1;
  }
  payload->resize(length);
  if (length == 0) {
    return 1;
  }
  return ReadAll(fd, payload->data(), length, error) == 1 ? 1 : -1;
}

}  // namespace rubberband
