#include "src/server/framing.h"

#include <cstring>

namespace rubberband {

namespace {

void PutPrefix(uint32_t length, char out[4]) {
  out[0] = static_cast<char>((length >> 24) & 0xff);
  out[1] = static_cast<char>((length >> 16) & 0xff);
  out[2] = static_cast<char>((length >> 8) & 0xff);
  out[3] = static_cast<char>(length & 0xff);
}

uint32_t GetPrefix(const char in[4]) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(in[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3]));
}

// Reads exactly `size` bytes through the transport. Returns 1 on success,
// 0 on EOF before the first byte, kTransportTimeout on deadline, -1 on
// error or EOF mid-read. `first_timeout_ms` guards the wait for the first
// byte; `rest_timeout_ms` guards every subsequent read.
int ReadExactly(Transport& transport, char* data, size_t size, int first_timeout_ms,
                int rest_timeout_ms, std::string* error) {
  size_t got = 0;
  while (got < size) {
    const int timeout = got == 0 ? first_timeout_ms : rest_timeout_ms;
    const int n = transport.Recv(data + got, size - got, timeout, error);
    if (n == kTransportTimeout) {
      return kTransportTimeout;
    }
    if (n < 0) {
      return -1;
    }
    if (n == 0) {
      if (got == 0) {
        return 0;
      }
      *error = "connection closed mid-frame";
      return -1;
    }
    got += static_cast<size_t>(n);
  }
  return 1;
}

}  // namespace

std::string EncodeFrame(const std::string& payload) {
  char prefix[4];
  PutPrefix(static_cast<uint32_t>(payload.size()), prefix);
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.append(prefix, 4);
  frame.append(payload);
  return frame;
}

int DecodeFrame(std::string& buffer, std::string* payload, std::string* error) {
  if (buffer.size() < 4) {
    return 0;
  }
  const uint32_t length = GetPrefix(buffer.data());
  if (length > kMaxFrameBytes) {
    *error = "frame of " + std::to_string(length) + " bytes exceeds limit";
    return -1;
  }
  if (buffer.size() < 4 + static_cast<size_t>(length)) {
    return 0;
  }
  payload->assign(buffer, 4, length);
  buffer.erase(0, 4 + static_cast<size_t>(length));
  return 1;
}

bool WriteFrame(Transport& transport, const std::string& payload, std::string* error,
                int timeout_ms) {
  if (payload.size() > kMaxFrameBytes) {
    *error = "frame of " + std::to_string(payload.size()) + " bytes exceeds limit";
    return false;
  }
  // Prefix and payload leave in one Send: the fault shim (and the kernel)
  // may still tear the frame mid-stream, but frames never interleave.
  const std::string frame = EncodeFrame(payload);
  return transport.Send(frame.data(), frame.size(), timeout_ms, error) ==
         static_cast<int>(frame.size());
}

int ReadFrame(Transport& transport, std::string* payload, std::string* error,
              int idle_timeout_ms, int frame_timeout_ms) {
  char prefix[4];
  // Waiting for a frame's first byte is idleness; everything after it is
  // mid-frame and gets the (typically much tighter) frame deadline.
  const int header =
      ReadExactly(transport, prefix, 4, idle_timeout_ms, frame_timeout_ms, error);
  if (header <= 0) {
    return header;  // EOF, error, or timeout (kTransportTimeout)
  }
  const uint32_t length = GetPrefix(prefix);
  if (length > kMaxFrameBytes) {
    *error = "frame of " + std::to_string(length) + " bytes exceeds limit";
    return -1;
  }
  payload->resize(length);
  if (length == 0) {
    return 1;
  }
  return ReadExactly(transport, payload->data(), length, frame_timeout_ms,
                     frame_timeout_ms, error);
}

bool WriteFrame(int fd, const std::string& payload, std::string* error) {
  FdTransport transport(fd);
  return WriteFrame(transport, payload, error);
}

int ReadFrame(int fd, std::string* payload, std::string* error) {
  FdTransport transport(fd);
  return ReadFrame(transport, payload, error);
}

}  // namespace rubberband
