// Per-tenant token-bucket rate limiting.
//
// Each tenant owns one bucket: `rate_per_second` tokens refill continuously
// up to a `burst` cap, and every request spends one token. An empty bucket
// rejects the request and reports how long until a token is available, so
// the server can answer RATE_LIMITED with an honest retry-after instead of
// a blind backoff hint. Buckets are created on first sight of a tenant.
//
// Time is supplied by the caller in nanoseconds on any monotonic scale —
// the server passes steady_clock, tests pass synthetic timestamps — which
// keeps the arithmetic deterministic and clock-free under test.

#ifndef SRC_SERVER_RATE_LIMITER_H_
#define SRC_SERVER_RATE_LIMITER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace rubberband {

struct RateLimitConfig {
  double rate_per_second = 0.0;  // sustained request rate; <= 0 disables
  double burst = 1.0;            // bucket capacity (instantaneous burst)
};

struct RateDecision {
  bool admitted = true;
  int64_t retry_after_ns = 0;  // time until one token exists (when rejected)
};

class RateLimiter {
 public:
  explicit RateLimiter(const RateLimitConfig& config) : config_(config) {}

  // Spends one token from `tenant`'s bucket at monotonic time `now_ns`.
  RateDecision Admit(const std::string& tenant, int64_t now_ns);

  bool enabled() const { return config_.rate_per_second > 0.0; }

 private:
  struct Bucket {
    double tokens = 0.0;
    int64_t refilled_ns = 0;
  };

  RateLimitConfig config_;
  std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
};

}  // namespace rubberband

#endif  // SRC_SERVER_RATE_LIMITER_H_
