#include "src/server/protocol.h"

#include <cmath>
#include <stdexcept>

#include "src/spec/sha.h"
#include "src/trainer/model_zoo.h"

namespace rubberband {

namespace {

// Fetches an optional numeric field; returns false (with *error) when the
// field exists but is not a number.
bool GetNumber(const JsonValue& params, const std::string& key, double* out,
               std::string* error) {
  if (!params.Has(key)) {
    return true;
  }
  const JsonValue& value = params.at(key);
  if (!value.is_number()) {
    *error = "field '" + key + "' must be a number";
    return false;
  }
  *out = value.number();
  return true;
}

bool GetInt(const JsonValue& params, const std::string& key, int64_t* out, std::string* error) {
  double number = static_cast<double>(*out);
  if (!GetNumber(params, key, &number, error)) {
    return false;
  }
  if (number != std::floor(number)) {
    *error = "field '" + key + "' must be an integer";
    return false;
  }
  *out = static_cast<int64_t>(number);
  return true;
}

}  // namespace

bool ParseRequest(const std::string& payload, Request* request, std::string* error) {
  JsonValue doc;
  try {
    doc = JsonValue::Parse(payload);
  } catch (const std::exception& e) {
    *error = std::string("malformed JSON: ") + e.what();
    return false;
  }
  if (!doc.is_object()) {
    *error = "request must be a JSON object";
    return false;
  }
  if (doc.Has("id")) {
    request->id = doc.at("id");
  }
  if (doc.Has("tenant")) {
    if (!doc.at("tenant").is_string() || doc.at("tenant").string().empty()) {
      *error = "field 'tenant' must be a non-empty string";
      return false;
    }
    request->tenant = doc.at("tenant").string();
  }
  if (!doc.Has("method") || !doc.at("method").is_string()) {
    *error = "missing string field 'method'";
    return false;
  }
  request->method = doc.at("method").string();
  if (doc.Has("idem")) {
    if (!doc.at("idem").is_string()) {
      *error = "field 'idem' must be a string";
      return false;
    }
    request->idem = doc.at("idem").string();
  }
  if (doc.Has("params")) {
    if (!doc.at("params").is_object()) {
      *error = "field 'params' must be an object";
      return false;
    }
    request->params = doc.at("params");
  } else {
    request->params = JsonValue::MakeObject();
  }
  return true;
}

std::string OkResponse(const JsonValue& id, JsonValue result) {
  JsonValue response = JsonValue::MakeObject();
  response.Set("id", id);
  response.Set("ok", JsonValue::MakeBool(true));
  response.Set("result", std::move(result));
  return response.ToJson();
}

std::string ErrorResponse(const JsonValue& id, const std::string& code,
                          const std::string& message, int64_t retry_after_ms) {
  JsonValue detail = JsonValue::MakeObject();
  detail.Set("code", JsonValue::MakeString(code));
  detail.Set("message", JsonValue::MakeString(message));
  if (retry_after_ms >= 0) {
    detail.Set("retry_after_ms", JsonValue::MakeNumber(static_cast<double>(retry_after_ms)));
  }
  JsonValue response = JsonValue::MakeObject();
  response.Set("id", id);
  response.Set("ok", JsonValue::MakeBool(false));
  response.Set("error", std::move(detail));
  return response.ToJson();
}

bool ParseJobRequest(const JsonValue& params, JobRequest* request, std::string* error) {
  if (!params.Has("name") || !params.at("name").is_string() ||
      params.at("name").string().empty()) {
    *error = "submit needs a non-empty string field 'name'";
    return false;
  }
  request->name = params.at("name").string();

  std::string workload_name = "resnet101-cifar10";
  if (params.Has("workload")) {
    if (!params.at("workload").is_string()) {
      *error = "field 'workload' must be a string";
      return false;
    }
    workload_name = params.at("workload").string();
  }
  const auto workload = FindWorkload(workload_name);
  if (!workload.has_value()) {
    *error = "unknown workload '" + workload_name + "'";
    return false;
  }
  request->workload = *workload;

  try {
    if (params.Has("stages")) {
      // An explicit stage list (the journal's form) overrides the SHA
      // shape: replay must rebuild the exact spec, not re-derive it.
      if (!params.at("stages").is_array() || params.at("stages").size() == 0) {
        *error = "field 'stages' must be a non-empty array";
        return false;
      }
      ExperimentSpec spec;
      for (const JsonValue& entry : params.at("stages").array()) {
        if (!entry.is_object() || !entry.Has("trials") || !entry.Has("iters") ||
            !entry.at("trials").is_number() || !entry.at("iters").is_number()) {
          *error = "each stage needs numeric 'trials' and 'iters'";
          return false;
        }
        spec.AddStage(static_cast<int>(entry.at("trials").number()),
                      static_cast<int64_t>(entry.at("iters").number()));
      }
      spec.Validate();
      request->spec = spec;
    } else {
      int64_t trials = 32, min_iters = 1, max_iters = 50, eta = 3;
      if (!GetInt(params, "trials", &trials, error) ||
          !GetInt(params, "min_iters", &min_iters, error) ||
          !GetInt(params, "max_iters", &max_iters, error) ||
          !GetInt(params, "eta", &eta, error)) {
        return false;
      }
      request->spec =
          MakeSha(static_cast<int>(trials), min_iters, max_iters, static_cast<int>(eta));
      request->spec.Validate();
    }
  } catch (const std::exception& e) {
    *error = std::string("invalid experiment shape: ") + e.what();
    return false;
  }

  double deadline_s = 0.0;
  if (!GetNumber(params, "deadline_s", &deadline_s, error)) {
    return false;
  }
  if (deadline_s <= 0.0) {
    *error = "submit needs 'deadline_s' > 0";
    return false;
  }
  request->deadline = deadline_s;

  double budget = 0.0, weight = 1.0, submit_at = 0.0;
  if (!GetNumber(params, "budget_dollars", &budget, error) ||
      !GetNumber(params, "weight", &weight, error) ||
      !GetNumber(params, "submit_at_s", &submit_at, error)) {
    return false;
  }
  if (weight <= 0.0) {
    *error = "field 'weight' must be > 0";
    return false;
  }
  request->budget = Money::FromDollars(budget);
  request->weight = weight;
  request->submit_at = submit_at;
  return true;
}

JsonValue JobRequestToParams(const JobRequest& request) {
  JsonValue params = JsonValue::MakeObject();
  params.Set("name", JsonValue::MakeString(request.name));
  params.Set("workload", JsonValue::MakeString(request.workload.name));
  params.Set("trials", JsonValue::MakeNumber(request.spec.stage(0).num_trials));
  params.Set("min_iters",
             JsonValue::MakeNumber(static_cast<double>(request.spec.stage(0).iters_per_trial)));
  params.Set("max_iters",
             JsonValue::MakeNumber(static_cast<double>(request.spec.CumulativeIters(
                 request.spec.num_stages() - 1))));
  params.Set("deadline_s", JsonValue::MakeNumber(request.deadline));
  params.Set("budget_dollars", JsonValue::MakeNumber(request.budget.dollars()));
  params.Set("weight", JsonValue::MakeNumber(request.weight));
  params.Set("submit_at_s", JsonValue::MakeNumber(request.submit_at));
  // eta is recoverable from the stage sequence only approximately; the
  // journal stores the explicit stage list instead so replay rebuilds the
  // exact spec.
  JsonValue stages = JsonValue::MakeArray();
  for (const Stage& stage : request.spec.stages()) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("trials", JsonValue::MakeNumber(stage.num_trials));
    entry.Set("iters", JsonValue::MakeNumber(static_cast<double>(stage.iters_per_trial)));
    stages.Append(std::move(entry));
  }
  params.Set("stages", std::move(stages));
  return params;
}

JsonValue JobStatusJson(const JobOutcome& outcome) {
  JsonValue status = JsonValue::MakeObject();
  status.Set("job", JsonValue::MakeString(outcome.name));
  status.Set("state", JsonValue::MakeString(ToString(outcome.state)));
  status.Set("submitted_at_s", JsonValue::MakeNumber(outcome.submitted_at));
  if (outcome.state == JobState::kCompleted) {
    status.Set("queue_wait_s", JsonValue::MakeNumber(outcome.queue_wait));
    status.Set("jct_s", JsonValue::MakeNumber(outcome.jct));
    status.Set("cost_dollars", JsonValue::MakeNumber(outcome.cost.dollars()));
    status.Set("best_accuracy", JsonValue::MakeNumber(outcome.best_accuracy));
    status.Set("met_deadline", JsonValue::MakeBool(outcome.met_deadline));
    status.Set("preemptions", JsonValue::MakeNumber(outcome.preemptions));
  }
  return status;
}

}  // namespace rubberband
