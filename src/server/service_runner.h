// ServiceRunner: the single-threaded owner of a live TuningService behind
// the serving front door.
//
// The server's I/O threads never touch the TuningService — they enqueue
// requests, and exactly one service thread calls Handle() for each. That
// thread-per-service design keeps the discrete-event simulation single-
// threaded (its determinism contract) while the network side scales with
// connections.
//
// Restartability is event sourcing. A live service run is a pure function
// of (seed, config, the stamped operation sequence): every state-changing
// op (submit, cancel) is journaled with the simulation time at which it was
// applied. A snapshot is the journal plus a digest of completed outcomes;
// restore replays `AdvanceUntil(op.at); apply(op)` per op and then advances
// to the snapshot's clock, which reproduces the exact event heap — every
// in-flight job resumes mid-stage, and every completed job's report is
// verified bit-identical against the digest.

#ifndef SRC_SERVER_SERVICE_RUNNER_H_
#define SRC_SERVER_SERVICE_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/server/protocol.h"
#include "src/service/tuning_service.h"

namespace rubberband {

struct RunnerOptions {
  ServiceConfig service;
  // Simulated seconds the clock advances per idle Tick(); 0 disables
  // auto-advance (tests drive time with the explicit `advance` method).
  double auto_advance_step = 0.0;
  // Event budget per Tick(), so one tick through a busy simulation cannot
  // stall queued requests. A capped tick still finishes the current
  // same-timestamp group (the replay-determinism invariant).
  size_t max_events_per_tick = 4096;
};

// Outcome of one handled request, transport-agnostic.
struct OpResult {
  bool ok = true;
  JsonValue body;            // `result` payload when ok
  std::string code;          // protocol error code when !ok
  std::string message;
  int64_t retry_after_ms = -1;

  static OpResult Ok(JsonValue body);
  static OpResult Error(std::string code, std::string message, int64_t retry_after_ms = -1);
};

class ServiceRunner {
 public:
  explicit ServiceRunner(const RunnerOptions& options);

  ServiceRunner(const ServiceRunner&) = delete;
  ServiceRunner& operator=(const ServiceRunner&) = delete;

  // Dispatches one request (submit / cancel / status / report / metrics /
  // trace / advance / drain / ping). Single-threaded: caller guarantees no
  // concurrent Handle/Tick. `server_metrics`, when non-null, is merged into
  // the `metrics` response (the server's own request-path registry).
  OpResult Handle(const Request& request, const MetricsSnapshot* server_metrics = nullptr);

  // One auto-advance pacing step (no-op when auto_advance_step == 0 or the
  // service is idle with no pending events).
  void Tick();

  // True once a drain was requested; new submits are refused.
  bool draining() const { return draining_; }

  // Serializes config fingerprint + op journal + completed-job digest.
  std::string SnapshotJson() const;

  // Rebuilds a runner by replaying a snapshot's journal under `options`.
  // Throws std::runtime_error on a version/config mismatch, a corrupt op,
  // or a completed job whose replayed outcome diverges from the digest.
  static std::unique_ptr<ServiceRunner> Restore(const RunnerOptions& options,
                                                const std::string& snapshot_json);

  TuningService& service() { return *service_; }
  const RunnerOptions& options() const { return options_; }

 private:
  struct Op {
    enum class Kind { kSubmit, kCancel };
    Kind kind;
    Seconds at = 0.0;   // simulation time the op was applied
    std::string tenant;
    JsonValue params;   // submit params (journal form) or {"job": name}
  };

  OpResult HandleSubmit(const Request& request);
  OpResult HandleCancel(const Request& request);
  OpResult HandleStatus(const Request& request);
  OpResult HandleReport();
  OpResult HandleMetrics(const MetricsSnapshot* server_metrics);
  OpResult HandleTrace();
  OpResult HandleAdvance(const Request& request);
  OpResult HandleDrain(const Request& request);

  RunnerOptions options_;
  std::unique_ptr<TuningService> service_;
  std::vector<Op> journal_;
  bool draining_ = false;
};

}  // namespace rubberband

#endif  // SRC_SERVER_SERVICE_RUNNER_H_
