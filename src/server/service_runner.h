// ServiceRunner: the single-threaded owner of a live TuningService behind
// the serving front door.
//
// The server's I/O threads never touch the TuningService — they enqueue
// requests, and exactly one service thread calls Handle() for each. That
// thread-per-service design keeps the discrete-event simulation single-
// threaded (its determinism contract) while the network side scales with
// connections.
//
// Restartability is event sourcing. A live service run is a pure function
// of (seed, config, the stamped operation sequence): every state-changing
// op (submit, cancel) is journaled with the simulation time at which it was
// applied. Two durability layers share that journal:
//
//   - the drained snapshot (graceful stop): journal + digest of completed
//     outcomes in one JSON document, restored via Restore();
//   - the write-ahead log (`journal.{h,cc}`, crash stop): every op is
//     appended (and, per fsync policy, fsynced) BEFORE its response leaves
//     the server, so a kill -9 at any byte recovers via Open() — the WAL
//     replays exactly like a snapshot's op list, torn tails are truncated,
//     and completed-outcome digest records interleaved in the log verify
//     the replay reproduced history bit-identically or the resume refuses.

#ifndef SRC_SERVER_SERVICE_RUNNER_H_
#define SRC_SERVER_SERVICE_RUNNER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/server/journal.h"
#include "src/server/protocol.h"
#include "src/service/tuning_service.h"

namespace rubberband {

struct RunnerOptions {
  ServiceConfig service;
  // Simulated seconds the clock advances per idle Tick(); 0 disables
  // auto-advance (tests drive time with the explicit `advance` method).
  double auto_advance_step = 0.0;
  // Event budget per Tick(), so one tick through a busy simulation cannot
  // stall queued requests. A capped tick still finishes the current
  // same-timestamp group (the replay-determinism invariant).
  size_t max_events_per_tick = 4096;
  // Write-ahead journal. Empty path disables the WAL (snapshot-only
  // durability, the PR 6 behavior).
  std::string wal_path;
  WalOptions wal;
};

// Outcome of one handled request, transport-agnostic.
struct OpResult {
  bool ok = true;
  JsonValue body;            // `result` payload when ok
  std::string code;          // protocol error code when !ok
  std::string message;
  int64_t retry_after_ms = -1;

  static OpResult Ok(JsonValue body);
  static OpResult Error(std::string code, std::string message, int64_t retry_after_ms = -1);
};

// Counters from a WAL recovery, surfaced to metrics and the chaos bench.
struct WalRecoveryStats {
  bool recovered = false;      // true when Open() replayed a non-empty WAL
  int64_t ops_replayed = 0;
  int64_t outcomes_verified = 0;
  bool torn_tail_truncated = false;
  uint64_t torn_offset = 0;
};

class ServiceRunner {
 public:
  // Starts a FRESH run. With `wal_path` set this truncates any existing
  // journal at that path — use Open() to resume one.
  explicit ServiceRunner(const RunnerOptions& options);

  ServiceRunner(const ServiceRunner&) = delete;
  ServiceRunner& operator=(const ServiceRunner&) = delete;

  // Resumes from the WAL at options.wal_path when it exists and holds
  // records; otherwise starts fresh (identical to the constructor). Throws
  // std::runtime_error, naming the byte offset where possible, on a corrupt
  // journal, a config-fingerprint mismatch, or a replay that diverges from
  // the journaled outcome digests.
  static std::unique_ptr<ServiceRunner> Open(const RunnerOptions& options);

  // Dispatches one request (submit / cancel / status / report / metrics /
  // trace / advance / drain / ping). Single-threaded: caller guarantees no
  // concurrent Handle/Tick. `server_metrics`, when non-null, is merged into
  // the `metrics` response (the server's own request-path registry).
  OpResult Handle(const Request& request, const MetricsSnapshot* server_metrics = nullptr);

  // One auto-advance pacing step (no-op when auto_advance_step == 0 or the
  // service is idle with no pending events).
  void Tick();

  // True once a drain was requested; new submits are refused.
  bool draining() const { return draining_; }

  // Serializes config fingerprint + op journal + completed-job digest.
  std::string SnapshotJson() const;

  // Rebuilds a runner by replaying a snapshot's journal under `options`.
  // Throws std::runtime_error on a version/config mismatch, a corrupt op,
  // or a completed job whose replayed outcome diverges from the digest.
  // With options.wal_path set, the restored runner rewrites the WAL so
  // subsequent crashes recover from the resumed history.
  static std::unique_ptr<ServiceRunner> Restore(const RunnerOptions& options,
                                                const std::string& snapshot_json);

  // Closes the WAL without the final fsync — crash simulation (see
  // WalWriter::Abandon). Safe to call when no WAL is configured.
  void AbandonWal();

  TuningService& service() { return *service_; }
  const RunnerOptions& options() const { return options_; }
  const WalRecoveryStats& wal_stats() const { return wal_stats_; }
  int64_t wal_appends() const { return wal_.appends(); }
  int64_t idem_duplicates() const { return idem_duplicates_; }

 private:
  struct Op {
    enum class Kind { kSubmit, kCancel };
    Kind kind;
    Seconds at = 0.0;   // simulation time the op was applied
    std::string tenant;
    JsonValue params;   // submit params (journal form) or {"job": name}
    std::string idem;   // idempotency key, empty when the client sent none
    std::string response_json;  // the original decision body, serialized
  };

  OpResult HandleSubmit(const Request& request);
  OpResult HandleCancel(const Request& request);
  OpResult HandleStatus(const Request& request);
  OpResult HandleReport();
  OpResult HandleMetrics(const MetricsSnapshot* server_metrics);
  OpResult HandleTrace();
  OpResult HandleAdvance(const Request& request);
  OpResult HandleDrain(const Request& request);

  // Records `op` in the in-memory journal, the idempotency index, and —
  // when configured — the WAL (append + fsync per policy). Called after
  // the op applied but before its response leaves Handle(): the WAL write
  // is ahead of the acknowledgement, which is the durability contract.
  void CommitOp(Op op);
  // Appends clock + outcome digest records for newly completed jobs.
  void JournalNewOutcomes();
  // Returns the journaled original decision when `key` was seen before.
  const std::string* FindIdempotent(const std::string& key) const;

  // Shared WAL-record (de)serialization.
  static JsonValue OpToJson(const Op& op);
  // Replays one WAL record into the service; throws on corruption or
  // divergence. `where` names the record for error messages.
  void ReplayWalRecord(const JsonValue& record, const std::string& where);

  RunnerOptions options_;
  std::unique_ptr<TuningService> service_;
  std::vector<Op> journal_;
  // Idempotency index: key -> serialized original decision body. Rebuilt
  // from the journal on every recovery path, so it survives restarts.
  std::map<std::string, std::string> idem_index_;
  int64_t idem_duplicates_ = 0;
  WalWriter wal_;
  WalRecoveryStats wal_stats_;
  std::vector<bool> outcome_digested_;  // per job index, WAL outcome written
  bool draining_ = false;
};

}  // namespace rubberband

#endif  // SRC_SERVER_SERVICE_RUNNER_H_
