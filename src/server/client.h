// Blocking client for the serving front door: one TCP connection, framed
// JSON request/response pairs in lockstep. Used by the `rubberband client`
// CLI subcommand, the server tests, and the closed-loop load generator.

#ifndef SRC_SERVER_CLIENT_H_
#define SRC_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/obs/json.h"

namespace rubberband {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool Connect(const std::string& host, int port, std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Sends one request and blocks for its response. Returns false with
  // `*error` set on transport failure (the connection is closed); protocol
  // errors come back as a parsed `ok: false` envelope, not a failure.
  bool Call(const std::string& method, const JsonValue& params, const std::string& tenant,
            JsonValue* response, std::string* error);

 private:
  int fd_ = -1;
  int64_t next_id_ = 1;
};

}  // namespace rubberband

#endif  // SRC_SERVER_CLIENT_H_
