// Blocking client for the serving front door: one TCP connection, framed
// JSON request/response pairs in lockstep. Used by the `rubberband client`
// CLI subcommand, the server tests, and the load / chaos generators.
//
// Resilience model: Call() is one attempt under connect/IO deadlines — a
// deadline expiry surfaces as a "TIMEOUT: ..." error (the client-side twin
// of the protocol's TIMEOUT code) and closes the connection, because a
// late response would desynchronize the lockstep framing. CallIdempotent()
// layers at-least-once delivery on top: it reconnects and retries
// ambiguous failures with capped exponential backoff and deterministic
// jitter, stamping the client-supplied idempotency key into the envelope
// so the server applies the op at most once no matter how many retries —
// or server restarts — it takes.

#ifndef SRC_SERVER_CLIENT_H_
#define SRC_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/obs/json.h"
#include "src/server/transport.h"

namespace rubberband {

struct ClientOptions {
  // Deadline for establishing the TCP connection; <= 0 blocks indefinitely.
  int connect_timeout_ms = 10'000;
  // Per-read/write deadline inside one call; <= 0 blocks indefinitely.
  int io_timeout_ms = 30'000;
  // Retry policy for CallIdempotent (the ClusterManager RetryPolicy idiom:
  // capped exponential backoff, deterministic jitter). max_attempts == 1
  // means a single attempt, i.e. plain Call behavior.
  int max_attempts = 1;
  double base_backoff_ms = 50.0;
  double max_backoff_ms = 2'000.0;
  double jitter = 0.2;  // +/- fraction of the backoff
  uint64_t seed = 0;    // jitter stream; same seed => same retry schedule
  // Client-side wire-fault injection (tests / chaos bench; inert by
  // default).
  NetFaultProfile fault;
};

class Client {
 public:
  // Counters for observing resilience behavior (chaos bench report).
  struct Stats {
    int64_t retries = 0;     // re-attempts after a failed call
    int64_t reconnects = 0;  // connections re-established by CallIdempotent
    int64_t timeouts = 0;    // calls that died on a deadline
  };

  Client() = default;
  explicit Client(const ClientOptions& options) : options_(options) {}
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects under connect_timeout_ms; remembers host/port so
  // CallIdempotent can re-establish the connection after a failure.
  bool Connect(const std::string& host, int port, std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Sends one request and blocks for its response (one attempt). Returns
  // false with `*error` set on transport failure or deadline expiry
  // ("TIMEOUT: ..."); the connection is closed either way. Protocol errors
  // come back as a parsed `ok: false` envelope, not a failure.
  bool Call(const std::string& method, const JsonValue& params, const std::string& tenant,
            JsonValue* response, std::string* error);

  // Call with retries. `idem`, when non-empty, is stamped into the request
  // envelope; the server journals the original decision under that key, so
  // a retry that lands after the original applied (lost ack, restart)
  // returns the original decision instead of double-submitting. Ambiguous
  // failures (timeout, reset, refused connection) are retried up to
  // options_.max_attempts with capped exponential backoff.
  bool CallIdempotent(const std::string& method, const JsonValue& params,
                      const std::string& tenant, const std::string& idem, JsonValue* response,
                      std::string* error);

  const Stats& stats() const { return stats_; }

 private:
  bool CallOnce(const std::string& method, const JsonValue& params, const std::string& tenant,
                const std::string& idem, JsonValue* response, std::string* error);

  ClientOptions options_;
  int fd_ = -1;
  std::unique_ptr<Transport> transport_;
  int64_t next_id_ = 1;
  uint64_t conn_serial_ = 0;  // fault-injection stream per connection
  std::string host_;
  int port_ = 0;
  Stats stats_;
};

}  // namespace rubberband

#endif  // SRC_SERVER_CLIENT_H_
