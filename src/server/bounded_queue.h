// Bounded multi-producer single-consumer queue with explicit rejection.
//
// The serving front door's admission queue: connection threads TryPush
// requests, the single service thread drains them in batches. A full queue
// never blocks a producer — TryPush fails immediately so the I/O thread can
// answer QUEUE_FULL with a retry-after hint instead of holding the socket
// hostage. Backpressure is a protocol feature, not an accident of buffer
// sizes.

#ifndef SRC_SERVER_BOUNDED_QUEUE_H_
#define SRC_SERVER_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace rubberband {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Enqueues unless the queue is full or closed. Never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  // Moves every queued item into `*out` (appended), waiting up to
  // `timeout` for the first one. Returns the number drained — 0 on timeout
  // or on a closed-and-empty queue.
  size_t DrainFor(std::vector<T>* out, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait_for(lock, timeout, [this] { return !items_.empty() || closed_; });
    const size_t drained = items_.size();
    while (!items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return drained;
  }

  // Rejects future pushes and wakes the consumer. Items already queued
  // remain drainable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rubberband

#endif  // SRC_SERVER_BOUNDED_QUEUE_H_
