#include "src/server/service_runner.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/common/report_format.h"
#include "src/obs/chrome_trace.h"

namespace rubberband {

namespace {

constexpr int kSnapshotVersion = 1;

JsonValue Num(double value) { return JsonValue::MakeNumber(value); }
JsonValue Str(std::string value) { return JsonValue::MakeString(std::move(value)); }

// The config fields a snapshot pins. Replay only reproduces the original
// run under the original seed/capacity/cloud shape, so restore refuses a
// drifted config instead of silently diverging.
JsonValue ConfigFingerprint(const ServiceConfig& config) {
  JsonValue fp = JsonValue::MakeObject();
  fp.Set("seed", Num(static_cast<double>(config.seed)));
  fp.Set("capacity_gpus", Num(config.capacity_gpus));
  fp.Set("overcommit", Num(config.overcommit));
  fp.Set("warm_max_parked", Num(config.warm_pool.max_parked));
  fp.Set("warm_ttl_s", Num(config.warm_pool.max_idle_seconds));
  fp.Set("replan_on_faults", JsonValue::MakeBool(config.replan_on_faults));
  fp.Set("instance", Str(config.cloud.instance.name));
  fp.Set("instance_price_micros",
         Num(static_cast<double>(config.cloud.instance.price_per_hour.micros())));
  return fp;
}

}  // namespace

OpResult OpResult::Ok(JsonValue body) {
  OpResult result;
  result.body = std::move(body);
  return result;
}

OpResult OpResult::Error(std::string code, std::string message, int64_t retry_after_ms) {
  OpResult result;
  result.ok = false;
  result.code = std::move(code);
  result.message = std::move(message);
  result.retry_after_ms = retry_after_ms;
  return result;
}

ServiceRunner::ServiceRunner(const RunnerOptions& options)
    : options_(options), service_(std::make_unique<TuningService>(options.service)) {
  service_->StartLive();
}

OpResult ServiceRunner::Handle(const Request& request, const MetricsSnapshot* server_metrics) {
  try {
    if (request.method == "submit") {
      return HandleSubmit(request);
    }
    if (request.method == "cancel") {
      return HandleCancel(request);
    }
    if (request.method == "status") {
      return HandleStatus(request);
    }
    if (request.method == "report") {
      return HandleReport();
    }
    if (request.method == "metrics") {
      return HandleMetrics(server_metrics);
    }
    if (request.method == "trace") {
      return HandleTrace();
    }
    if (request.method == "advance") {
      return HandleAdvance(request);
    }
    if (request.method == "drain") {
      return HandleDrain(request);
    }
    if (request.method == "ping") {
      JsonValue pong = JsonValue::MakeObject();
      pong.Set("now_s", Num(service_->now()));
      return OpResult::Ok(std::move(pong));
    }
    return OpResult::Error(kErrBadRequest, "unknown method '" + request.method + "'");
  } catch (const std::exception& e) {
    return OpResult::Error(kErrInternal, e.what());
  }
}

OpResult ServiceRunner::HandleSubmit(const Request& request) {
  if (draining_) {
    return OpResult::Error(kErrDraining, "server is draining; resubmit after restart");
  }
  JobRequest job;
  std::string error;
  if (!ParseJobRequest(request.params, &job, &error)) {
    return OpResult::Error(kErrBadRequest, error);
  }

  // Settle the pending same-time event group BEFORE scheduling the arrival.
  // Replay applies each journaled op as `AdvanceUntil(op.at); apply(op)`,
  // so the live run must interleave clock and op identically — otherwise
  // same-timestamp events would carry different sequence numbers live vs
  // replayed and the heaps could pop in different orders.
  service_->AdvanceUntil(service_->now());

  Op op;
  op.kind = Op::Kind::kSubmit;
  op.at = service_->now();
  op.tenant = request.tenant;
  op.params = JobRequestToParams(job);

  const size_t index = service_->SubmitLive(std::move(job));
  journal_.push_back(std::move(op));
  // Run the freshly scheduled group so an immediate arrival's admission
  // decision lands before we answer (submit is synchronous up to the
  // decision, asynchronous for execution). Replay reproduces this with the
  // next op's pre-advance.
  service_->AdvanceUntil(service_->now());

  const JobOutcome& outcome = service_->outcome(index);
  JsonValue result = JobStatusJson(outcome);
  result.Set("index", Num(static_cast<double>(index)));
  result.Set("now_s", Num(service_->now()));
  return OpResult::Ok(std::move(result));
}

OpResult ServiceRunner::HandleCancel(const Request& request) {
  if (!request.params.Has("job") || !request.params.at("job").is_string()) {
    return OpResult::Error(kErrBadRequest, "cancel needs a string field 'job'");
  }
  const std::string& name = request.params.at("job").string();
  const size_t index = service_->FindJob(name);
  if (index == TuningService::kNoJob) {
    return OpResult::Error(kErrNotFound, "no job named '" + name + "'");
  }
  // Same clock/op interleaving as replay (see HandleSubmit).
  service_->AdvanceUntil(service_->now());

  Op op;
  op.kind = Op::Kind::kCancel;
  op.at = service_->now();
  op.tenant = request.tenant;
  op.params = JsonValue::MakeObject();
  op.params.Set("job", Str(name));

  std::string error;
  if (!service_->CancelLive(index, &error)) {
    return OpResult::Error(kErrConflict, error);
  }
  journal_.push_back(std::move(op));

  JsonValue result = JobStatusJson(service_->outcome(index));
  return OpResult::Ok(std::move(result));
}

OpResult ServiceRunner::HandleStatus(const Request& request) {
  if (request.params.Has("job")) {
    if (!request.params.at("job").is_string()) {
      return OpResult::Error(kErrBadRequest, "field 'job' must be a string");
    }
    const std::string& name = request.params.at("job").string();
    const size_t index = service_->FindJob(name);
    if (index == TuningService::kNoJob) {
      return OpResult::Error(kErrNotFound, "no job named '" + name + "'");
    }
    JsonValue result = JobStatusJson(service_->outcome(index));
    result.Set("now_s", Num(service_->now()));
    return OpResult::Ok(std::move(result));
  }
  JsonValue jobs = JsonValue::MakeArray();
  for (size_t i = 0; i < service_->num_jobs(); ++i) {
    jobs.Append(JobStatusJson(service_->outcome(i)));
  }
  JsonValue result = JsonValue::MakeObject();
  result.Set("jobs", std::move(jobs));
  result.Set("now_s", Num(service_->now()));
  result.Set("draining", JsonValue::MakeBool(draining_));
  return OpResult::Ok(std::move(result));
}

OpResult ServiceRunner::HandleReport() {
  ServiceReport report = service_->SnapshotReport();
  JsonValue result = JsonValue::MakeObject();
  result.Set("now_s", Num(service_->now()));
  result.Set("completed", Num(report.completed));
  result.Set("rejected", Num(report.rejected));
  result.Set("cancelled", Num(report.cancelled));
  result.Set("in_flight", Num(report.in_flight));
  result.Set("deadline_misses", Num(report.deadline_misses));
  result.Set("total_cost_dollars", Num(report.total_cost.Total().dollars()));
  result.Set("aggregate_utilization", Num(report.aggregate_utilization));
  // The same renderer the CLI uses, so the wire report and the terminal
  // report cannot drift.
  ServiceFormatOptions format;
  format.show_faults = options_.service.cloud.fault.Any();
  format.show_stragglers = options_.service.cloud.fault.straggler_rate > 0.0 ||
                           report.total_stragglers_detected > 0;
  result.Set("text", Str(FormatServiceJobTable(report) + FormatServiceSummary(report, format)));
  return OpResult::Ok(std::move(result));
}

OpResult ServiceRunner::HandleMetrics(const MetricsSnapshot* server_metrics) {
  MetricsSnapshot merged = service_->MetricsNow();
  if (server_metrics != nullptr) {
    merged.Merge(*server_metrics);
  }
  JsonValue result = JsonValue::MakeObject();
  result.Set("now_s", Num(service_->now()));
  result.Set("metrics", JsonValue::Parse(merged.ToJson()));
  return OpResult::Ok(std::move(result));
}

OpResult ServiceRunner::HandleTrace() {
  ServiceReport report = service_->SnapshotReport();
  JsonValue result = JsonValue::MakeObject();
  result.Set("now_s", Num(service_->now()));
  result.Set("chrome_trace", Str(ChromeTraceFromService(report)));
  return OpResult::Ok(std::move(result));
}

OpResult ServiceRunner::HandleAdvance(const Request& request) {
  double seconds = 0.0;
  if (request.params.Has("seconds")) {
    if (!request.params.at("seconds").is_number() ||
        request.params.at("seconds").number() < 0.0) {
      return OpResult::Error(kErrBadRequest, "field 'seconds' must be a number >= 0");
    }
    seconds = request.params.at("seconds").number();
  }
  const Seconds target = service_->now() + seconds;
  const size_t events = service_->AdvanceUntil(target);
  JsonValue result = JsonValue::MakeObject();
  result.Set("now_s", Num(service_->now()));
  result.Set("events", Num(static_cast<double>(events)));
  result.Set("idle", JsonValue::MakeBool(service_->LiveIdle()));
  return OpResult::Ok(std::move(result));
}

OpResult ServiceRunner::HandleDrain(const Request& request) {
  std::string mode = "snapshot";
  if (request.params.Has("mode")) {
    if (!request.params.at("mode").is_string()) {
      return OpResult::Error(kErrBadRequest, "field 'mode' must be a string");
    }
    mode = request.params.at("mode").string();
  }
  draining_ = true;
  JsonValue result = JsonValue::MakeObject();
  if (mode == "finish") {
    // Run every admitted job to completion before stopping; nothing is
    // left to resume, so the snapshot degenerates to a completed journal.
    service_->FinishLive();
    const ServiceReport report = service_->SnapshotReport();
    result.Set("completed", Num(report.completed));
    result.Set("in_flight", Num(report.in_flight));
  } else if (mode == "snapshot") {
    const ServiceReport report = service_->SnapshotReport();
    result.Set("completed", Num(report.completed));
    result.Set("in_flight", Num(report.in_flight));
  } else {
    draining_ = false;
    return OpResult::Error(kErrBadRequest, "drain mode must be 'snapshot' or 'finish'");
  }
  result.Set("mode", Str(mode));
  result.Set("now_s", Num(service_->now()));
  return OpResult::Ok(std::move(result));
}

void ServiceRunner::Tick() {
  if (options_.auto_advance_step <= 0.0) {
    return;
  }
  if (service_->LiveIdle() && !service_->HasPendingEvents()) {
    return;  // an idle service's clock does not free-run
  }
  service_->AdvanceUntil(service_->now() + options_.auto_advance_step,
                         options_.max_events_per_tick);
}

std::string ServiceRunner::SnapshotJson() const {
  JsonValue snapshot = JsonValue::MakeObject();
  snapshot.Set("version", Num(kSnapshotVersion));
  snapshot.Set("config", ConfigFingerprint(options_.service));
  snapshot.Set("now_s", Num(service_->now()));

  JsonValue ops = JsonValue::MakeArray();
  for (const Op& op : journal_) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("kind", Str(op.kind == Op::Kind::kSubmit ? "submit" : "cancel"));
    entry.Set("at_s", Num(op.at));
    entry.Set("tenant", Str(op.tenant));
    entry.Set("params", op.params);
    ops.Append(std::move(entry));
  }
  snapshot.Set("ops", std::move(ops));

  // Digest of settled jobs: restore replays the journal and verifies these
  // outcomes reproduce exactly (cost in exact micro-dollars, no float
  // round-trip).
  JsonValue completed = JsonValue::MakeArray();
  for (size_t i = 0; i < service_->num_jobs(); ++i) {
    const JobOutcome& outcome = service_->outcome(i);
    if (outcome.state != JobState::kCompleted) {
      continue;
    }
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("job", Str(outcome.name));
    entry.Set("jct_s", Num(outcome.jct));
    entry.Set("cost_micros", Num(static_cast<double>(outcome.cost.micros())));
    entry.Set("best_accuracy", Num(outcome.best_accuracy));
    completed.Append(std::move(entry));
  }
  snapshot.Set("completed", std::move(completed));
  return snapshot.ToJson();
}

std::unique_ptr<ServiceRunner> ServiceRunner::Restore(const RunnerOptions& options,
                                                      const std::string& snapshot_json) {
  JsonValue snapshot;
  try {
    snapshot = JsonValue::Parse(snapshot_json);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("unparseable snapshot: ") + e.what());
  }
  if (!snapshot.is_object() || !snapshot.Has("version") ||
      snapshot.at("version").number() != kSnapshotVersion) {
    throw std::runtime_error("snapshot missing or unsupported version");
  }
  const JsonValue fingerprint = ConfigFingerprint(options.service);
  if (!snapshot.Has("config") || snapshot.at("config") != fingerprint) {
    throw std::runtime_error(
        "snapshot config does not match the server's (seed/capacity/cloud "
        "must be identical to resume)");
  }

  auto runner = std::make_unique<ServiceRunner>(options);
  TuningService& service = *runner->service_;

  // Replay: advance to each op's application time, then re-apply it. The
  // pre-op advance processes exactly the events the live run had processed
  // before that op, so arrivals and stage events re-enter the heap in the
  // original (time, seq) order.
  for (const JsonValue& entry : snapshot.at("ops").array()) {
    const std::string kind = entry.at("kind").string();
    const Seconds at = entry.at("at_s").number();
    service.AdvanceUntil(at);
    if (kind == "submit") {
      JobRequest job;
      std::string error;
      if (!ParseJobRequest(entry.at("params"), &job, &error)) {
        throw std::runtime_error("corrupt journal submit: " + error);
      }
      service.SubmitLive(std::move(job));
    } else if (kind == "cancel") {
      const size_t index = service.FindJob(entry.at("params").at("job").string());
      if (index == TuningService::kNoJob) {
        throw std::runtime_error("corrupt journal: cancel of unknown job");
      }
      std::string error;
      if (!service.CancelLive(index, &error)) {
        throw std::runtime_error("journal cancel no longer applies: " + error);
      }
    } else {
      throw std::runtime_error("corrupt journal: unknown op kind '" + kind + "'");
    }
    Op op;
    op.kind = kind == "submit" ? Op::Kind::kSubmit : Op::Kind::kCancel;
    op.at = at;
    op.tenant = entry.Has("tenant") ? entry.at("tenant").string() : "default";
    op.params = entry.at("params");
    runner->journal_.push_back(std::move(op));
  }
  service.AdvanceUntil(snapshot.at("now_s").number());

  // Verify the replayed timeline reproduced every completed job exactly.
  for (const JsonValue& entry : snapshot.at("completed").array()) {
    const std::string& name = entry.at("job").string();
    const size_t index = service.FindJob(name);
    if (index == TuningService::kNoJob) {
      throw std::runtime_error("replay diverged: completed job '" + name + "' unknown");
    }
    const JobOutcome& outcome = service.outcome(index);
    if (outcome.state != JobState::kCompleted || outcome.jct != entry.at("jct_s").number() ||
        static_cast<double>(outcome.cost.micros()) != entry.at("cost_micros").number()) {
      throw std::runtime_error("replay diverged on job '" + name +
                               "' (outcome differs from snapshot digest)");
    }
  }
  return runner;
}

}  // namespace rubberband
