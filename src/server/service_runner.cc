#include "src/server/service_runner.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/common/report_format.h"
#include "src/obs/chrome_trace.h"

namespace rubberband {

namespace {

constexpr int kSnapshotVersion = 1;
constexpr int kWalVersion = 1;

JsonValue Num(double value) { return JsonValue::MakeNumber(value); }
JsonValue Str(std::string value) { return JsonValue::MakeString(std::move(value)); }

// The config fields a snapshot pins. Replay only reproduces the original
// run under the original seed/capacity/cloud shape, so restore refuses a
// drifted config instead of silently diverging.
JsonValue ConfigFingerprint(const ServiceConfig& config) {
  JsonValue fp = JsonValue::MakeObject();
  fp.Set("seed", Num(static_cast<double>(config.seed)));
  fp.Set("capacity_gpus", Num(config.capacity_gpus));
  fp.Set("overcommit", Num(config.overcommit));
  fp.Set("warm_max_parked", Num(config.warm_pool.max_parked));
  fp.Set("warm_ttl_s", Num(config.warm_pool.max_idle_seconds));
  fp.Set("replan_on_faults", JsonValue::MakeBool(config.replan_on_faults));
  fp.Set("instance", Str(config.cloud.instance.name));
  fp.Set("instance_price_micros",
         Num(static_cast<double>(config.cloud.instance.price_per_hour.micros())));
  return fp;
}

}  // namespace

OpResult OpResult::Ok(JsonValue body) {
  OpResult result;
  result.body = std::move(body);
  return result;
}

OpResult OpResult::Error(std::string code, std::string message, int64_t retry_after_ms) {
  OpResult result;
  result.ok = false;
  result.code = std::move(code);
  result.message = std::move(message);
  result.retry_after_ms = retry_after_ms;
  return result;
}

ServiceRunner::ServiceRunner(const RunnerOptions& options)
    : options_(options), service_(std::make_unique<TuningService>(options.service)) {
  service_->StartLive();
  if (!options_.wal_path.empty()) {
    std::string error;
    if (!wal_.Create(options_.wal_path, options_.wal, &error)) {
      throw std::runtime_error(error);
    }
    JsonValue header = JsonValue::MakeObject();
    header.Set("kind", Str("header"));
    header.Set("version", Num(kWalVersion));
    header.Set("config", ConfigFingerprint(options_.service));
    if (!wal_.Append(header.ToJson(), &error) || !wal_.Sync(&error)) {
      throw std::runtime_error(error);
    }
  }
}

std::unique_ptr<ServiceRunner> ServiceRunner::Open(const RunnerOptions& options) {
  if (options.wal_path.empty()) {
    return std::make_unique<ServiceRunner>(options);
  }
  WalReadResult wal;
  std::string error;
  if (!ReadWal(options.wal_path, &wal, &error)) {
    throw std::runtime_error(error);
  }
  if (wal.records.empty()) {
    // Absent, empty, or nothing but a torn first record: a fresh journal.
    return std::make_unique<ServiceRunner>(options);
  }

  // Replay without a WAL attached (the constructor with a wal_path would
  // truncate the very journal we are recovering).
  RunnerOptions replay_options = options;
  replay_options.wal_path.clear();
  auto runner = std::make_unique<ServiceRunner>(replay_options);

  JsonValue header;
  try {
    header = JsonValue::Parse(wal.records[0]);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("wal header unparseable: ") + e.what());
  }
  if (!header.is_object() || !header.Has("kind") || header.at("kind").string() != "header" ||
      !header.Has("version") || header.at("version").number() != kWalVersion) {
    throw std::runtime_error("wal header missing or unsupported version");
  }
  if (!header.Has("config") ||
      header.at("config") != ConfigFingerprint(options.service)) {
    throw std::runtime_error(
        "wal config does not match the server's (seed/capacity/cloud must be "
        "identical to resume)");
  }

  for (size_t i = 1; i < wal.records.size(); ++i) {
    const std::string where = "wal record " + std::to_string(i);
    JsonValue record;
    try {
      record = JsonValue::Parse(wal.records[i]);
    } catch (const std::exception& e) {
      throw std::runtime_error(where + " unparseable: " + e.what());
    }
    runner->ReplayWalRecord(record, where);
  }

  runner->wal_stats_.recovered = true;
  runner->wal_stats_.ops_replayed = static_cast<int64_t>(runner->journal_.size());
  if (wal.torn_tail) {
    if (!TruncateWal(options.wal_path, wal.valid_bytes, &error)) {
      throw std::runtime_error(error);
    }
    runner->wal_stats_.torn_tail_truncated = true;
    runner->wal_stats_.torn_offset = wal.torn_offset;
  }
  runner->options_.wal_path = options.wal_path;
  runner->options_.wal = options.wal;
  if (!runner->wal_.OpenAppend(options.wal_path, options.wal, &error)) {
    throw std::runtime_error(error);
  }
  // Jobs that completed before the crash but after the last digest record
  // get their outcome digested now.
  runner->JournalNewOutcomes();
  return runner;
}

void ServiceRunner::ReplayWalRecord(const JsonValue& record, const std::string& where) {
  if (!record.is_object() || !record.Has("kind") || !record.at("kind").is_string()) {
    throw std::runtime_error(where + ": record has no kind");
  }
  const std::string& kind = record.at("kind").string();
  TuningService& service = *service_;
  if (kind == "clock") {
    service.AdvanceUntil(record.at("at_s").number());
    return;
  }
  if (kind == "outcome") {
    const std::string& name = record.at("job").string();
    const size_t index = service.FindJob(name);
    if (index == TuningService::kNoJob) {
      throw std::runtime_error(where + ": replay diverged: completed job '" + name +
                               "' unknown");
    }
    const JobOutcome& outcome = service.outcome(index);
    if (outcome.state != JobState::kCompleted ||
        outcome.jct != record.at("jct_s").number() ||
        static_cast<double>(outcome.cost.micros()) != record.at("cost_micros").number()) {
      throw std::runtime_error(where + ": replay diverged on job '" + name +
                               "' (outcome differs from journaled digest)");
    }
    if (index >= outcome_digested_.size()) {
      outcome_digested_.resize(index + 1, false);
    }
    outcome_digested_[index] = true;
    ++wal_stats_.outcomes_verified;
    return;
  }
  if (kind != "submit" && kind != "cancel") {
    throw std::runtime_error(where + ": unknown op kind '" + kind + "'");
  }

  // Replay: advance to the op's application time, then re-apply it. The
  // pre-op advance processes exactly the events the live run had processed
  // before that op, so arrivals and stage events re-enter the heap in the
  // original (time, seq) order.
  const Seconds at = record.at("at_s").number();
  service.AdvanceUntil(at);
  if (kind == "submit") {
    JobRequest job;
    std::string error;
    if (!ParseJobRequest(record.at("params"), &job, &error)) {
      throw std::runtime_error(where + ": corrupt journal submit: " + error);
    }
    service.SubmitLive(std::move(job));
  } else {
    const size_t index = service.FindJob(record.at("params").at("job").string());
    if (index == TuningService::kNoJob) {
      throw std::runtime_error(where + ": corrupt journal: cancel of unknown job");
    }
    std::string error;
    if (!service.CancelLive(index, &error)) {
      throw std::runtime_error(where + ": journal cancel no longer applies: " + error);
    }
  }
  Op op;
  op.kind = kind == "submit" ? Op::Kind::kSubmit : Op::Kind::kCancel;
  op.at = at;
  op.tenant = record.Has("tenant") ? record.at("tenant").string() : "default";
  op.params = record.at("params");
  if (record.Has("idem")) {
    op.idem = record.at("idem").string();
  }
  if (record.Has("response")) {
    op.response_json = record.at("response").ToJson();
  }
  if (!op.idem.empty()) {
    idem_index_[op.idem] = op.response_json;
  }
  journal_.push_back(std::move(op));
}

JsonValue ServiceRunner::OpToJson(const Op& op) {
  JsonValue entry = JsonValue::MakeObject();
  entry.Set("kind", Str(op.kind == Op::Kind::kSubmit ? "submit" : "cancel"));
  entry.Set("at_s", Num(op.at));
  entry.Set("tenant", Str(op.tenant));
  entry.Set("params", op.params);
  if (!op.idem.empty()) {
    entry.Set("idem", Str(op.idem));
  }
  if (!op.response_json.empty()) {
    entry.Set("response", JsonValue::Parse(op.response_json));
  }
  return entry;
}

void ServiceRunner::CommitOp(Op op) {
  if (wal_.is_open()) {
    std::string error;
    if (!wal_.Append(OpToJson(op).ToJson(), &error)) {
      // The op is already applied; failing to journal it means a restart
      // would replay a shorter history than clients observed. Surfacing a
      // hard error (the client sees INTERNAL, not an ack) is the only
      // honest option — an unacknowledged op may be absent after recovery.
      throw std::runtime_error("wal append failed: " + error);
    }
  }
  if (!op.idem.empty()) {
    idem_index_[op.idem] = op.response_json;
  }
  journal_.push_back(std::move(op));
}

const std::string* ServiceRunner::FindIdempotent(const std::string& key) const {
  if (key.empty()) {
    return nullptr;
  }
  const auto it = idem_index_.find(key);
  return it == idem_index_.end() ? nullptr : &it->second;
}

void ServiceRunner::JournalNewOutcomes() {
  if (!wal_.is_open()) {
    return;
  }
  if (outcome_digested_.size() < service_->num_jobs()) {
    outcome_digested_.resize(service_->num_jobs(), false);
  }
  std::vector<size_t> fresh;
  for (size_t i = 0; i < service_->num_jobs(); ++i) {
    if (!outcome_digested_[i] && service_->outcome(i).state == JobState::kCompleted) {
      fresh.push_back(i);
    }
  }
  if (fresh.empty()) {
    return;
  }
  std::string error;
  // The clock record pins the simulation time at which these completions
  // are known to have settled; recovery advances to it before verifying.
  JsonValue clock = JsonValue::MakeObject();
  clock.Set("kind", Str("clock"));
  clock.Set("at_s", Num(service_->now()));
  if (!wal_.Append(clock.ToJson(), &error)) {
    throw std::runtime_error("wal append failed: " + error);
  }
  for (size_t index : fresh) {
    const JobOutcome& outcome = service_->outcome(index);
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("kind", Str("outcome"));
    entry.Set("job", Str(outcome.name));
    entry.Set("jct_s", Num(outcome.jct));
    entry.Set("cost_micros", Num(static_cast<double>(outcome.cost.micros())));
    entry.Set("best_accuracy", Num(outcome.best_accuracy));
    if (!wal_.Append(entry.ToJson(), &error)) {
      throw std::runtime_error("wal append failed: " + error);
    }
    outcome_digested_[index] = true;
  }
}

void ServiceRunner::AbandonWal() { wal_.Abandon(); }

OpResult ServiceRunner::Handle(const Request& request, const MetricsSnapshot* server_metrics) {
  try {
    OpResult result;
    if (request.method == "submit") {
      result = HandleSubmit(request);
    } else if (request.method == "cancel") {
      result = HandleCancel(request);
    } else if (request.method == "status") {
      result = HandleStatus(request);
    } else if (request.method == "report") {
      result = HandleReport();
    } else if (request.method == "metrics") {
      result = HandleMetrics(server_metrics);
    } else if (request.method == "trace") {
      result = HandleTrace();
    } else if (request.method == "advance") {
      result = HandleAdvance(request);
    } else if (request.method == "drain") {
      result = HandleDrain(request);
    } else if (request.method == "ping") {
      JsonValue pong = JsonValue::MakeObject();
      pong.Set("now_s", Num(service_->now()));
      result = OpResult::Ok(std::move(pong));
    } else {
      return OpResult::Error(kErrBadRequest, "unknown method '" + request.method + "'");
    }
    // Digest any jobs this op drove to completion, so a crash right after
    // the response still verifies them on recovery.
    JournalNewOutcomes();
    return result;
  } catch (const std::exception& e) {
    return OpResult::Error(kErrInternal, e.what());
  }
}

OpResult ServiceRunner::HandleSubmit(const Request& request) {
  // A retry of an op that already happened must answer with the original
  // decision, even across a restart — checked before the draining gate,
  // because "already applied" beats "no longer accepting".
  if (const std::string* original = FindIdempotent(request.idem)) {
    ++idem_duplicates_;
    return OpResult::Ok(JsonValue::Parse(*original));
  }
  if (draining_) {
    return OpResult::Error(kErrDraining, "server is draining; resubmit after restart");
  }
  JobRequest job;
  std::string error;
  if (!ParseJobRequest(request.params, &job, &error)) {
    return OpResult::Error(kErrBadRequest, error);
  }

  // Settle the pending same-time event group BEFORE scheduling the arrival.
  // Replay applies each journaled op as `AdvanceUntil(op.at); apply(op)`,
  // so the live run must interleave clock and op identically — otherwise
  // same-timestamp events would carry different sequence numbers live vs
  // replayed and the heaps could pop in different orders.
  service_->AdvanceUntil(service_->now());

  Op op;
  op.kind = Op::Kind::kSubmit;
  op.at = service_->now();
  op.tenant = request.tenant;
  op.idem = request.idem;
  op.params = JobRequestToParams(job);

  const size_t index = service_->SubmitLive(std::move(job));
  // Run the freshly scheduled group so an immediate arrival's admission
  // decision lands before we answer (submit is synchronous up to the
  // decision, asynchronous for execution). Replay reproduces this with the
  // next op's pre-advance.
  service_->AdvanceUntil(service_->now());

  const JobOutcome& outcome = service_->outcome(index);
  JsonValue result = JobStatusJson(outcome);
  result.Set("index", Num(static_cast<double>(index)));
  result.Set("now_s", Num(service_->now()));
  // Journal op + decision (write-ahead of the acknowledgement), then reply.
  op.response_json = result.ToJson();
  CommitOp(std::move(op));
  return OpResult::Ok(std::move(result));
}

OpResult ServiceRunner::HandleCancel(const Request& request) {
  if (const std::string* original = FindIdempotent(request.idem)) {
    ++idem_duplicates_;
    return OpResult::Ok(JsonValue::Parse(*original));
  }
  if (!request.params.Has("job") || !request.params.at("job").is_string()) {
    return OpResult::Error(kErrBadRequest, "cancel needs a string field 'job'");
  }
  const std::string& name = request.params.at("job").string();
  const size_t index = service_->FindJob(name);
  if (index == TuningService::kNoJob) {
    return OpResult::Error(kErrNotFound, "no job named '" + name + "'");
  }
  // Same clock/op interleaving as replay (see HandleSubmit).
  service_->AdvanceUntil(service_->now());

  Op op;
  op.kind = Op::Kind::kCancel;
  op.at = service_->now();
  op.tenant = request.tenant;
  op.idem = request.idem;
  op.params = JsonValue::MakeObject();
  op.params.Set("job", Str(name));

  std::string error;
  if (!service_->CancelLive(index, &error)) {
    return OpResult::Error(kErrConflict, error);
  }

  JsonValue result = JobStatusJson(service_->outcome(index));
  op.response_json = result.ToJson();
  CommitOp(std::move(op));
  return OpResult::Ok(std::move(result));
}

OpResult ServiceRunner::HandleStatus(const Request& request) {
  if (request.params.Has("job")) {
    if (!request.params.at("job").is_string()) {
      return OpResult::Error(kErrBadRequest, "field 'job' must be a string");
    }
    const std::string& name = request.params.at("job").string();
    const size_t index = service_->FindJob(name);
    if (index == TuningService::kNoJob) {
      return OpResult::Error(kErrNotFound, "no job named '" + name + "'");
    }
    JsonValue result = JobStatusJson(service_->outcome(index));
    result.Set("now_s", Num(service_->now()));
    return OpResult::Ok(std::move(result));
  }
  JsonValue jobs = JsonValue::MakeArray();
  for (size_t i = 0; i < service_->num_jobs(); ++i) {
    jobs.Append(JobStatusJson(service_->outcome(i)));
  }
  JsonValue result = JsonValue::MakeObject();
  result.Set("jobs", std::move(jobs));
  result.Set("now_s", Num(service_->now()));
  result.Set("draining", JsonValue::MakeBool(draining_));
  return OpResult::Ok(std::move(result));
}

OpResult ServiceRunner::HandleReport() {
  ServiceReport report = service_->SnapshotReport();
  JsonValue result = JsonValue::MakeObject();
  result.Set("now_s", Num(service_->now()));
  result.Set("completed", Num(report.completed));
  result.Set("rejected", Num(report.rejected));
  result.Set("cancelled", Num(report.cancelled));
  result.Set("in_flight", Num(report.in_flight));
  result.Set("deadline_misses", Num(report.deadline_misses));
  result.Set("total_cost_dollars", Num(report.total_cost.Total().dollars()));
  result.Set("aggregate_utilization", Num(report.aggregate_utilization));
  // The same renderer the CLI uses, so the wire report and the terminal
  // report cannot drift.
  ServiceFormatOptions format;
  format.show_faults = options_.service.cloud.fault.Any();
  format.show_stragglers = options_.service.cloud.fault.straggler_rate > 0.0 ||
                           report.total_stragglers_detected > 0;
  result.Set("text", Str(FormatServiceJobTable(report) + FormatServiceSummary(report, format)));
  return OpResult::Ok(std::move(result));
}

OpResult ServiceRunner::HandleMetrics(const MetricsSnapshot* server_metrics) {
  MetricsSnapshot merged = service_->MetricsNow();
  if (server_metrics != nullptr) {
    merged.Merge(*server_metrics);
  }
  JsonValue result = JsonValue::MakeObject();
  result.Set("now_s", Num(service_->now()));
  result.Set("metrics", JsonValue::Parse(merged.ToJson()));
  return OpResult::Ok(std::move(result));
}

OpResult ServiceRunner::HandleTrace() {
  ServiceReport report = service_->SnapshotReport();
  JsonValue result = JsonValue::MakeObject();
  result.Set("now_s", Num(service_->now()));
  result.Set("chrome_trace", Str(ChromeTraceFromService(report)));
  return OpResult::Ok(std::move(result));
}

OpResult ServiceRunner::HandleAdvance(const Request& request) {
  double seconds = 0.0;
  if (request.params.Has("seconds")) {
    if (!request.params.at("seconds").is_number() ||
        request.params.at("seconds").number() < 0.0) {
      return OpResult::Error(kErrBadRequest, "field 'seconds' must be a number >= 0");
    }
    seconds = request.params.at("seconds").number();
  }
  const Seconds target = service_->now() + seconds;
  const size_t events = service_->AdvanceUntil(target);
  JsonValue result = JsonValue::MakeObject();
  result.Set("now_s", Num(service_->now()));
  result.Set("events", Num(static_cast<double>(events)));
  result.Set("idle", JsonValue::MakeBool(service_->LiveIdle()));
  return OpResult::Ok(std::move(result));
}

OpResult ServiceRunner::HandleDrain(const Request& request) {
  std::string mode = "snapshot";
  if (request.params.Has("mode")) {
    if (!request.params.at("mode").is_string()) {
      return OpResult::Error(kErrBadRequest, "field 'mode' must be a string");
    }
    mode = request.params.at("mode").string();
  }
  draining_ = true;
  JsonValue result = JsonValue::MakeObject();
  if (mode == "finish") {
    // Run every admitted job to completion before stopping; nothing is
    // left to resume, so the snapshot degenerates to a completed journal.
    service_->FinishLive();
    const ServiceReport report = service_->SnapshotReport();
    result.Set("completed", Num(report.completed));
    result.Set("in_flight", Num(report.in_flight));
  } else if (mode == "snapshot") {
    const ServiceReport report = service_->SnapshotReport();
    result.Set("completed", Num(report.completed));
    result.Set("in_flight", Num(report.in_flight));
  } else {
    draining_ = false;
    return OpResult::Error(kErrBadRequest, "drain mode must be 'snapshot' or 'finish'");
  }
  result.Set("mode", Str(mode));
  result.Set("now_s", Num(service_->now()));
  return OpResult::Ok(std::move(result));
}

void ServiceRunner::Tick() {
  if (options_.auto_advance_step <= 0.0) {
    return;
  }
  if (service_->LiveIdle() && !service_->HasPendingEvents()) {
    return;  // an idle service's clock does not free-run
  }
  service_->AdvanceUntil(service_->now() + options_.auto_advance_step,
                         options_.max_events_per_tick);
  JournalNewOutcomes();
}

std::string ServiceRunner::SnapshotJson() const {
  JsonValue snapshot = JsonValue::MakeObject();
  snapshot.Set("version", Num(kSnapshotVersion));
  snapshot.Set("config", ConfigFingerprint(options_.service));
  snapshot.Set("now_s", Num(service_->now()));

  JsonValue ops = JsonValue::MakeArray();
  for (const Op& op : journal_) {
    ops.Append(OpToJson(op));
  }
  snapshot.Set("ops", std::move(ops));

  // Digest of settled jobs: restore replays the journal and verifies these
  // outcomes reproduce exactly (cost in exact micro-dollars, no float
  // round-trip).
  JsonValue completed = JsonValue::MakeArray();
  for (size_t i = 0; i < service_->num_jobs(); ++i) {
    const JobOutcome& outcome = service_->outcome(i);
    if (outcome.state != JobState::kCompleted) {
      continue;
    }
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("job", Str(outcome.name));
    entry.Set("jct_s", Num(outcome.jct));
    entry.Set("cost_micros", Num(static_cast<double>(outcome.cost.micros())));
    entry.Set("best_accuracy", Num(outcome.best_accuracy));
    completed.Append(std::move(entry));
  }
  snapshot.Set("completed", std::move(completed));
  return snapshot.ToJson();
}

std::unique_ptr<ServiceRunner> ServiceRunner::Restore(const RunnerOptions& options,
                                                      const std::string& snapshot_json) {
  JsonValue snapshot;
  try {
    snapshot = JsonValue::Parse(snapshot_json);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("unparseable snapshot: ") + e.what());
  }
  if (!snapshot.is_object() || !snapshot.Has("version") ||
      snapshot.at("version").number() != kSnapshotVersion) {
    throw std::runtime_error("snapshot missing or unsupported version");
  }
  const JsonValue fingerprint = ConfigFingerprint(options.service);
  if (!snapshot.Has("config") || snapshot.at("config") != fingerprint) {
    throw std::runtime_error(
        "snapshot config does not match the server's (seed/capacity/cloud "
        "must be identical to resume)");
  }

  // Replay with the WAL detached (see Open); it is rebuilt afterwards so
  // post-restore crashes recover the resumed history.
  RunnerOptions replay_options = options;
  replay_options.wal_path.clear();
  auto runner = std::make_unique<ServiceRunner>(replay_options);
  TuningService& service = *runner->service_;

  size_t index = 0;
  for (const JsonValue& entry : snapshot.at("ops").array()) {
    runner->ReplayWalRecord(entry, "snapshot op " + std::to_string(index++));
  }
  service.AdvanceUntil(snapshot.at("now_s").number());

  // Verify the replayed timeline reproduced every completed job exactly.
  for (const JsonValue& entry : snapshot.at("completed").array()) {
    const std::string& name = entry.at("job").string();
    const size_t job = service.FindJob(name);
    if (job == TuningService::kNoJob) {
      throw std::runtime_error("replay diverged: completed job '" + name + "' unknown");
    }
    const JobOutcome& outcome = service.outcome(job);
    if (outcome.state != JobState::kCompleted || outcome.jct != entry.at("jct_s").number() ||
        static_cast<double>(outcome.cost.micros()) != entry.at("cost_micros").number()) {
      throw std::runtime_error("replay diverged on job '" + name +
                               "' (outcome differs from snapshot digest)");
    }
  }

  if (!options.wal_path.empty()) {
    runner->options_.wal_path = options.wal_path;
    runner->options_.wal = options.wal;
    std::string error;
    if (!runner->wal_.Create(options.wal_path, options.wal, &error)) {
      throw std::runtime_error(error);
    }
    JsonValue header = JsonValue::MakeObject();
    header.Set("kind", Str("header"));
    header.Set("version", Num(kWalVersion));
    header.Set("config", fingerprint);
    if (!runner->wal_.Append(header.ToJson(), &error)) {
      throw std::runtime_error(error);
    }
    for (const Op& op : runner->journal_) {
      if (!runner->wal_.Append(OpToJson(op).ToJson(), &error)) {
        throw std::runtime_error(error);
      }
    }
    runner->JournalNewOutcomes();
    if (!runner->wal_.Sync(&error)) {
      throw std::runtime_error(error);
    }
  }
  return runner;
}

}  // namespace rubberband
