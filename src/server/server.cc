#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "src/server/framing.h"

namespace rubberband {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options), limiter_(options.rate), queue_(options.queue_capacity) {}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  // Open() resumes an existing WAL (or starts fresh without one); throws
  // on a corrupt or mismatched journal — refusing to serve beats silently
  // diverging from acknowledged history.
  return StartWithRunner(ServiceRunner::Open(options_.runner), error);
}

bool Server::StartRestored(const std::string& snapshot_json, std::string* error) {
  // Throws on digest/config mismatch / replay divergence — a corrupt
  // snapshot is an operator problem, not a socket error.
  std::string body;
  std::string digest_error;
  if (!DecodeDigestFile(snapshot_json, &body, &digest_error)) {
    throw std::runtime_error("snapshot " + digest_error);
  }
  return StartWithRunner(ServiceRunner::Restore(options_.runner, body), error);
}

bool Server::StartWithRunner(std::unique_ptr<ServiceRunner> runner, std::string* error) {
  runner_ = std::move(runner);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad listen address '" + options_.host + "'";
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    *error = std::string("bind/listen: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);

  service_thread_ = std::thread(&Server::ServiceLoop, this);
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  return true;
}

void Server::AcceptLoop() {
  // The listener fd is fixed for this thread's lifetime; Stop() closes it,
  // which makes accept() fail and ends the loop.
  const int listen_fd = listen_fd_.load(std::memory_order_acquire);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listener closed (shutdown) or fatal
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    // The kernel reuses fds of closed connections; reap the finished
    // reader thread that last owned this fd before handing it out again.
    auto stale = connections_.find(fd);
    if (stale != connections_.end()) {
      if (stale->second.joinable()) {
        stale->second.join();
      }
      connections_.erase(stale);
    }
    connections_.emplace(fd, std::thread(&Server::ConnectionLoop, this, fd));
  }
}

bool Server::Prescreen(const Request& request, std::string* response) {
  if (request.method == "submit") {
    if (draining_.load(std::memory_order_acquire)) {
      obs::Inc(metrics_.GetCounter("server.rejected.draining"));
      *response = ErrorResponse(request.id, kErrDraining, "server is draining");
      return true;
    }
    const RateDecision decision = limiter_.Admit(request.tenant, SteadyNowNs());
    if (!decision.admitted) {
      obs::Inc(metrics_.GetCounter("server.rejected.rate_limited"));
      *response = ErrorResponse(request.id, kErrRateLimited,
                                "tenant '" + request.tenant + "' over its submit rate",
                                decision.retry_after_ns / 1'000'000 + 1);
      return true;
    }
  }
  return false;
}

void Server::ConnectionLoop(int fd) {
  const uint64_t serial = conn_serial_.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<Transport> transport = MakeTransport(fd, options_.fault, serial);
  const int idle_ms = options_.idle_timeout_ms > 0 ? options_.idle_timeout_ms : -1;
  const int frame_ms = options_.frame_timeout_ms > 0 ? options_.frame_timeout_ms : -1;
  std::string payload;
  std::string error;
  while (!stopping_.load(std::memory_order_acquire)) {
    payload.clear();
    const int status = ReadFrame(*transport, &payload, &error, idle_ms, frame_ms);
    if (status == kTransportTimeout) {
      // Idle past the reaper deadline, or trickling a frame too slowly —
      // either way this reader thread is reclaimed.
      obs::Inc(metrics_.GetCounter("server.conn.idle_closed"));
      break;
    }
    if (status <= 0) {
      break;  // clean EOF, peer reset, or shutdown
    }

    Request request;
    std::string response;
    if (!ParseRequest(payload, &request, &error)) {
      obs::Inc(metrics_.GetCounter("server.rejected.bad_request"));
      response = ErrorResponse(JsonValue::MakeNull(), kErrBadRequest, error);
    } else {
      obs::Inc(metrics_.GetCounter("server.requests." + request.method));
      if (!Prescreen(request, &response)) {
        auto op = std::make_unique<PendingOp>();
        op->request = std::move(request);
        op->received_ns = SteadyNowNs();
        std::future<OpResult> future = op->reply.get_future();
        const JsonValue id = op->request.id;
        if (!queue_.TryPush(std::move(op))) {
          obs::Inc(metrics_.GetCounter("server.rejected.queue_full"));
          // Honest hint: a full queue drains in roughly depth * the moving
          // average op cost on the service thread.
          const int64_t retry_ms =
              queue_.capacity() * avg_op_ns_.load(std::memory_order_relaxed) / 1'000'000 + 1;
          response = ErrorResponse(id, kErrQueueFull, "admission queue full", retry_ms);
        } else {
          const OpResult result = future.get();
          response = result.ok ? OkResponse(id, result.body)
                               : ErrorResponse(id, result.code, result.message,
                                               result.retry_after_ms);
        }
      }
    }
    if (!WriteFrame(*transport, response, &error, frame_ms)) {
      break;
    }
  }
  ::close(fd);
}

void Server::ServiceLoop() {
  std::vector<std::unique_ptr<PendingOp>> batch;
  Histogram* decision_latency =
      metrics_.GetHistogram("server.submit.decision_ns", FineLatencyBucketsNs());
  while (true) {
    batch.clear();
    queue_.DrainFor(&batch, std::chrono::milliseconds(1));
    bool drained = false;
    std::string snapshot_json;
    for (std::unique_ptr<PendingOp>& op : batch) {
      const int64_t begin_ns = SteadyNowNs();
      OpResult result;
      if (op->request.method == "metrics") {
        const MetricsSnapshot server_metrics = ServerMetrics();
        result = runner_->Handle(op->request, &server_metrics);
      } else {
        result = runner_->Handle(op->request);
      }
      const int64_t end_ns = SteadyNowNs();

      // EWMA over op cost (alpha = 1/8) for the QUEUE_FULL retry hint.
      const int64_t prev = avg_op_ns_.load(std::memory_order_relaxed);
      avg_op_ns_.store(prev + (end_ns - begin_ns - prev) / 8, std::memory_order_relaxed);

      if (op->request.method == "submit" && result.ok) {
        obs::ObserveNanos(decision_latency, end_ns - op->received_ns);
      }
      if (op->request.method == "drain" && result.ok) {
        draining_.store(true, std::memory_order_release);
        snapshot_json = runner_->SnapshotJson();
        if (!options_.snapshot_path.empty()) {
          result.body.Set("snapshot_path", JsonValue::MakeString(options_.snapshot_path));
        }
        // Persist before acknowledging: once the client sees the drain
        // response, the snapshot is durable.
        FinishDrain(snapshot_json);
        drained = true;
      }
      op->reply.set_value(std::move(result));
    }
    if (drained) {
      break;
    }
    if (stopping_.load(std::memory_order_acquire) && queue_.closed() && batch.empty() &&
        queue_.size() == 0) {
      break;
    }
    runner_->Tick();
  }
  // Fail any ops that raced in after the drain/stop cutoff.
  batch.clear();
  queue_.Close();
  queue_.DrainFor(&batch, std::chrono::milliseconds(0));
  for (std::unique_ptr<PendingOp>& op : batch) {
    op->reply.set_value(OpResult::Error(kErrDraining, "server stopped"));
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done_ = true;
  }
  done_cv_.notify_all();
}

void Server::FinishDrain(const std::string& snapshot_json) {
  if (!options_.snapshot_path.empty()) {
    std::ofstream out(options_.snapshot_path, std::ios::binary | std::ios::trunc);
    // Digest envelope: a torn or bit-rotted snapshot file fails the CRC on
    // restore instead of replaying a truncated history.
    out << EncodeDigestFile(snapshot_json);
  }
}

bool Server::draining() const { return draining_.load(std::memory_order_acquire); }

void Server::Kill() {
  Stop();
  // After the service thread is joined nothing touches the WAL; dropping
  // it without the close-time fsync models a process that died rather
  // than exited. (Bytes already write()n survive either way — true torn
  // tails are injected explicitly in tests via WalWriter::AppendTorn.)
  if (runner_ != nullptr) {
    runner_->AbandonWal();
  }
}

void Server::Wait() {
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [this] { return done_; });
}

void Server::Stop() {
  if (stopping_.exchange(true)) {
    // Second caller still needs the joins below to have happened; the first
    // caller does them, so just wait for completion.
    Wait();
    return;
  }
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  queue_.Close();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& entry : connections_) {
      // Read side only: unblocks readers parked in ReadFrame with an EOF
      // while letting a reply already in flight (e.g. the drain ack that
      // triggered this Stop) finish its write.
      ::shutdown(entry.first, SHUT_RD);
    }
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& entry : connections_) {
      if (entry.second.joinable()) {
        entry.second.join();
      }
    }
    connections_.clear();
  }
  if (service_thread_.joinable()) {
    service_thread_.join();
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done_ = true;
  }
  done_cv_.notify_all();
}

}  // namespace rubberband
