// Length-prefixed message framing over a byte stream.
//
// Every message on the wire is a 4-byte big-endian payload length followed
// by that many bytes of UTF-8 JSON. The prefix makes message boundaries
// explicit (TCP is a byte stream), lets the reader allocate exactly once,
// and gives the server a cheap place to enforce a maximum request size
// before parsing anything.

#ifndef SRC_SERVER_FRAMING_H_
#define SRC_SERVER_FRAMING_H_

#include <cstdint>
#include <string>

namespace rubberband {

// Hard cap on a single frame's payload. Requests are small JSON documents;
// responses carrying a Chrome trace can run to a few MB.
inline constexpr uint32_t kMaxFrameBytes = 16 * 1024 * 1024;

// Encodes `payload` as prefix + bytes (for tests and in-memory transports).
std::string EncodeFrame(const std::string& payload);

// Decodes one frame from the front of `buffer`. Returns 1 and fills
// `*payload` (erasing the consumed bytes) when a complete frame is
// buffered, 0 when more bytes are needed, and -1 (with `*error` set) when
// the prefix announces an oversized frame.
int DecodeFrame(std::string& buffer, std::string* payload, std::string* error);

// Blocking frame I/O on a file descriptor. WriteFrame returns false with
// `*error` set on any short write or oversized payload. ReadFrame returns
// 1 on a frame, 0 on clean EOF at a message boundary, and -1 with `*error`
// set on a truncated frame, read error, or oversized announcement.
bool WriteFrame(int fd, const std::string& payload, std::string* error);
int ReadFrame(int fd, std::string* payload, std::string* error);

}  // namespace rubberband

#endif  // SRC_SERVER_FRAMING_H_
