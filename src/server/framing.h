// Length-prefixed message framing over a byte stream.
//
// Every message on the wire is a 4-byte big-endian payload length followed
// by that many bytes of UTF-8 JSON. The prefix makes message boundaries
// explicit (TCP is a byte stream), lets the reader allocate exactly once,
// and gives the server a cheap place to enforce a maximum request size
// before parsing anything.

#ifndef SRC_SERVER_FRAMING_H_
#define SRC_SERVER_FRAMING_H_

#include <cstdint>
#include <string>

#include "src/server/transport.h"

namespace rubberband {

// Hard cap on a single frame's payload. Requests are small JSON documents;
// responses carrying a Chrome trace can run to a few MB.
inline constexpr uint32_t kMaxFrameBytes = 16 * 1024 * 1024;

// Encodes `payload` as prefix + bytes (for tests and in-memory transports).
std::string EncodeFrame(const std::string& payload);

// Decodes one frame from the front of `buffer`. Returns 1 and fills
// `*payload` (erasing the consumed bytes) when a complete frame is
// buffered, 0 when more bytes are needed, and -1 (with `*error` set) when
// the prefix announces an oversized frame.
int DecodeFrame(std::string& buffer, std::string* payload, std::string* error);

// Frame I/O over a Transport. WriteFrame sends prefix + payload as one
// buffer (a crash or injected reset can tear the frame at any byte, but
// frames never interleave); returns false with `*error` set on transport
// failure, deadline expiry, or an oversized payload. `timeout_ms` < 0
// disables the write deadline.
bool WriteFrame(Transport& transport, const std::string& payload, std::string* error,
                int timeout_ms = -1);

// Reads one frame. Returns 1 on a frame, 0 on clean EOF at a message
// boundary, -1 with `*error` set on a truncated frame / read error /
// oversized announcement, and -2 (kTransportTimeout) when a deadline
// expires. Two deadlines, because they mean different things: a peer
// quietly holding an idle connection (`idle_timeout_ms`, waiting for a
// frame's first byte) versus a peer that announced a frame and then
// stalled mid-payload — the slow-loris shape (`frame_timeout_ms`, applied
// to every read after the first byte). Either value < 0 disables that
// deadline.
int ReadFrame(Transport& transport, std::string* payload, std::string* error,
              int idle_timeout_ms = -1, int frame_timeout_ms = -1);

// Legacy fd entry points (no deadlines, no fault shim); kept for call
// sites that only ever speak to a live local peer.
bool WriteFrame(int fd, const std::string& payload, std::string* error);
int ReadFrame(int fd, std::string* payload, std::string* error);

}  // namespace rubberband

#endif  // SRC_SERVER_FRAMING_H_
