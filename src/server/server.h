// Framed-TCP front door for the tuning service.
//
// Threading model (DESIGN.md §13): one accept thread, one blocking reader
// thread per connection, one service thread. I/O threads parse and
// pre-screen requests — malformed envelopes, per-tenant token-bucket rate
// limits, and a full admission queue are all answered directly from the
// I/O thread with an honest retry-after, so an overloaded service never
// has its rejections queued behind the very backlog that caused them. Only
// admitted requests cross the bounded MPSC queue to the single service
// thread that owns the TuningService.

#ifndef SRC_SERVER_SERVER_H_
#define SRC_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/server/bounded_queue.h"
#include "src/server/protocol.h"
#include "src/server/rate_limiter.h"
#include "src/server/service_runner.h"
#include "src/server/transport.h"

namespace rubberband {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = kernel-assigned; read back via port()
  // Admission queue depth. Full queue => QUEUE_FULL with retry-after.
  size_t queue_capacity = 256;
  // Per-tenant submit rate (token bucket); rate_per_second <= 0 disables.
  RateLimitConfig rate;
  RunnerOptions runner;
  // Where `drain` (mode "snapshot") persists the service snapshot; empty
  // keeps the snapshot response-only. Written as a digest file (whole-file
  // CRC envelope, journal.h) so a torn snapshot is detected on restore.
  std::string snapshot_path;
  // Read deadlines, milliseconds; <= 0 disables. `idle_timeout_ms` bounds
  // the wait for a frame's FIRST byte (idle-connection reaper);
  // `frame_timeout_ms` bounds every read after it (a peer trickling a
  // frame byte-by-byte cannot pin a reader thread past this).
  int idle_timeout_ms = 0;
  int frame_timeout_ms = 30'000;
  // Deterministic wire-fault injection on accepted connections (tests /
  // chaos bench only; inert by default).
  NetFaultProfile fault;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and starts the accept + service threads. With
  // runner.wal_path set, Start() resumes from an existing write-ahead
  // journal (ServiceRunner::Open) and throws std::runtime_error on a
  // corrupt or mismatched one. On a restore, pass the snapshot file
  // contents (digest envelope or bare JSON); throws std::runtime_error
  // when the digest fails or the snapshot does not replay under this
  // config. Returns false with `*error` set on socket errors.
  bool Start(std::string* error);
  bool StartRestored(const std::string& snapshot_json, std::string* error);

  // Blocks until a drain request has been fully served (snapshot written /
  // jobs finished) or Stop() is called from another thread.
  void Wait();

  // Shuts down the listener, all connections, and both thread pools.
  // Idempotent.
  void Stop();

  // Crash-style stop: like Stop(), but the WAL is abandoned without its
  // final fsync — the closest an in-process server gets to kill -9. No
  // drain, no snapshot; recovery goes through the WAL.
  void Kill();

  int port() const { return port_; }
  bool draining() const;

  // The runner, for post-mortem inspection (WAL recovery stats, idempotency
  // counters). Only safe to read once the service thread has stopped
  // (after Wait/Stop/Kill) — the runner is single-threaded.
  const ServiceRunner* runner() const { return runner_.get(); }

  // The server's own request-path metrics (server.* scope): per-method
  // counters, rejection counters, submit→decision latency histogram.
  MetricsSnapshot ServerMetrics() const { return metrics_.Snapshot(); }

 private:
  struct PendingOp {
    Request request;
    int64_t received_ns = 0;  // steady clock, for decision latency
    std::promise<OpResult> reply;
  };

  bool StartWithRunner(std::unique_ptr<ServiceRunner> runner, std::string* error);
  void AcceptLoop();
  void ConnectionLoop(int fd);
  void ServiceLoop();
  // I/O-thread screening: returns true when `request` was answered locally
  // (rejection) and must not be enqueued.
  bool Prescreen(const Request& request, std::string* response);
  void FinishDrain(const std::string& snapshot_json);

  ServerOptions options_;
  MetricsRegistry metrics_;
  RateLimiter limiter_;
  BoundedQueue<std::unique_ptr<PendingOp>> queue_;
  std::unique_ptr<ServiceRunner> runner_;  // touched only by the service thread

  // Owned by StartWithRunner until the threads spawn; Stop() takes it back
  // with an exchange so teardown races with the accept thread are benign.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  // Per-connection serial, the fault-injection stream index: connection k
  // of a given server sees the same fault schedule on every run.
  std::atomic<uint64_t> conn_serial_{0};
  // EWMA of service-thread op handling time, the honest basis for the
  // QUEUE_FULL retry-after hint.
  std::atomic<int64_t> avg_op_ns_{1'000'000};

  std::thread accept_thread_;
  std::thread service_thread_;
  std::mutex conn_mu_;
  std::map<int, std::thread> connections_;  // fd -> reader thread

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  bool done_ = false;
};

}  // namespace rubberband

#endif  // SRC_SERVER_SERVER_H_
