#include "src/server/transport.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace rubberband {

namespace {

// Waits for the fd to become readable/writable. Returns 1 ready, 0 timeout,
// -1 error.
int WaitFor(int fd, short events, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) {
      continue;
    }
    return rc < 0 ? -1 : (rc == 0 ? 0 : 1);
  }
}

}  // namespace

int FdTransport::Recv(char* buffer, size_t len, int timeout_ms, std::string* error) {
  if (timeout_ms >= 0) {
    const int ready = WaitFor(fd_, POLLIN, timeout_ms);
    if (ready == 0) {
      *error = "read deadline of " + std::to_string(timeout_ms) + "ms expired";
      return kTransportTimeout;
    }
    if (ready < 0) {
      *error = std::string("poll: ") + std::strerror(errno);
      return kTransportError;
    }
  }
  while (true) {
    const ssize_t n = ::read(fd_, buffer, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      *error = std::string("read: ") + std::strerror(errno);
      return kTransportError;
    }
    return static_cast<int>(n);
  }
}

int FdTransport::Send(const char* buffer, size_t len, int timeout_ms, std::string* error) {
  size_t sent = 0;
  while (sent < len) {
    if (timeout_ms >= 0) {
      const int ready = WaitFor(fd_, POLLOUT, timeout_ms);
      if (ready == 0) {
        *error = "write deadline of " + std::to_string(timeout_ms) + "ms expired";
        return kTransportTimeout;
      }
      if (ready < 0) {
        *error = std::string("poll: ") + std::strerror(errno);
        return kTransportError;
      }
    }
    // MSG_NOSIGNAL: a peer-closed socket yields EPIPE, not a process-killing
    // SIGPIPE — teardown races are routine, not fatal.
    const ssize_t n = ::send(fd_, buffer + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      *error = std::string("write: ") + std::strerror(errno);
      return kTransportError;
    }
    sent += static_cast<size_t>(n);
  }
  return static_cast<int>(len);
}

void FdTransport::ShutdownBoth() { ::shutdown(fd_, SHUT_RDWR); }

FaultInjectingTransport::FaultInjectingTransport(std::unique_ptr<Transport> inner,
                                                 const NetFaultProfile& profile,
                                                 uint64_t stream)
    : inner_(std::move(inner)),
      profile_(profile),
      rng_(Rng::ForStream(profile.seed, /*stream=*/0xFA17, stream)) {}

int FaultInjectingTransport::Recv(char* buffer, size_t len, int timeout_ms,
                                  std::string* error) {
  if (dead_) {
    *error = "injected connection reset";
    return kTransportError;
  }
  if (profile_.stall_rate > 0.0 && rng_.Uniform(0.0, 1.0) < profile_.stall_rate) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(profile_.stall_ms)));
  }
  return inner_->Recv(buffer, len, timeout_ms, error);
}

int FaultInjectingTransport::Send(const char* buffer, size_t len, int timeout_ms,
                                  std::string* error) {
  if (dead_) {
    *error = "injected connection reset";
    return kTransportError;
  }
  std::string mutated;
  const char* data = buffer;
  if (profile_.byte_flip_rate > 0.0 && len > 0 &&
      rng_.Uniform(0.0, 1.0) < profile_.byte_flip_rate) {
    mutated.assign(buffer, len);
    // Flip past the 4-byte length prefix when the buffer is a whole frame,
    // so the fault lands in the payload (a flipped length desynchronizes
    // the stream instead — that failure shape is the stall/timeout tests').
    const size_t lo = len > 4 ? 4 : 0;
    const size_t index =
        static_cast<size_t>(rng_.UniformInt(static_cast<int64_t>(lo),
                                            static_cast<int64_t>(len - 1)));
    mutated[index] = static_cast<char>(mutated[index] ^ 0x20);
    data = mutated.data();
    ++flips_;
  }
  if (profile_.reset_rate > 0.0 && rng_.Uniform(0.0, 1.0) < profile_.reset_rate) {
    // Deliver a prefix of the frame, then kill the connection: the peer
    // sees a mid-frame EOF.
    const size_t cut = len > 1 ? static_cast<size_t>(rng_.UniformInt(
                                     1, static_cast<int64_t>(len - 1)))
                               : len;
    inner_->Send(data, cut, timeout_ms, error);
    inner_->ShutdownBoth();
    dead_ = true;
    ++resets_;
    *error = "injected connection reset mid-frame";
    return kTransportError;
  }
  if (profile_.short_write_rate > 0.0 && len > 1 &&
      rng_.Uniform(0.0, 1.0) < profile_.short_write_rate) {
    // All bytes still arrive, just in awkward chunks.
    size_t sent = 0;
    while (sent < len) {
      const size_t chunk = std::min(
          len - sent, static_cast<size_t>(rng_.UniformInt(1, 7)));
      const int rc = inner_->Send(data + sent, chunk, timeout_ms, error);
      if (rc <= 0) {
        return rc;
      }
      sent += chunk;
    }
    return static_cast<int>(len);
  }
  return inner_->Send(data, len, timeout_ms, error);
}

void FaultInjectingTransport::ShutdownBoth() { inner_->ShutdownBoth(); }

std::unique_ptr<Transport> MakeTransport(int fd, const NetFaultProfile& profile,
                                         uint64_t stream) {
  auto base = std::make_unique<FdTransport>(fd);
  if (!profile.Any()) {
    return base;
  }
  return std::make_unique<FaultInjectingTransport>(std::move(base), profile, stream);
}

}  // namespace rubberband
