#include "src/obs/timeline.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace rubberband {

void Timeline::Append(const Timeline& other, int pid) {
  spans_.reserve(spans_.size() + other.spans_.size());
  for (TimelineSpan span : other.spans_) {
    span.pid = pid;
    spans_.push_back(std::move(span));
  }
}

std::vector<TimelineSpan> Timeline::OfName(std::string_view name) const {
  std::vector<TimelineSpan> matching;
  for (const TimelineSpan& span : spans_) {
    if (span.name == name) {
      matching.push_back(span);
    }
  }
  return matching;
}

Seconds Timeline::TotalSeconds(std::string_view name) const {
  Seconds total = 0.0;
  for (const TimelineSpan& span : spans_) {
    if (span.name == name) {
      total += span.duration();
    }
  }
  return total;
}

std::string TopPhasesSummary(const Timeline& timeline, size_t top_n) {
  struct PhaseTotal {
    Seconds seconds = 0.0;
    int64_t count = 0;
  };
  std::map<std::string, PhaseTotal> totals;  // sorted: deterministic ties
  for (const TimelineSpan& span : timeline.spans()) {
    std::string key;
    key.reserve(span.category.size() + 1 + span.name.size());
    key.append(span.category).append("/").append(span.name);
    PhaseTotal& total = totals[key];
    total.seconds += span.duration();
    ++total.count;
  }
  std::vector<std::pair<std::string, PhaseTotal>> ranked(totals.begin(), totals.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.second.seconds > b.second.seconds; });
  if (ranked.size() > top_n) {
    ranked.resize(top_n);
  }

  std::ostringstream os;
  os << "top phases (by total span time):\n";
  char line[160];
  for (const auto& [name, total] : ranked) {
    std::snprintf(line, sizeof(line), "  %-28s %10.1fs  x%lld\n", name.c_str(), total.seconds,
                  static_cast<long long>(total.count));
    os << line;
  }
  if (ranked.empty()) {
    os << "  (no spans recorded)\n";
  }
  return os.str();
}

}  // namespace rubberband
