// Chrome trace-event exporter: turns an ExecutionTrace (instants) and a
// Timeline (phase spans) into chrome://tracing / Perfetto JSON.
//
// Layout follows the issue's contract: one pid per job (the service maps
// job index -> pid; standalone runs use pid 1), one tid per instance.
// Lanes within a pid:
//   tid 0                control lane: stage spans and executor phases
//   tid 10 + instance    instance lifetime spans + instance-scoped markers
//   tid 100000 + trial   trial spans, checkpoint/restore, trial markers
// Thread-name metadata events label every lane.
//
// ChromeRuleFor is the single, exhaustive mapping from TraceEventType to
// export behavior. The switch has no default, so adding an event kind
// without mapping it is a compile warning, and the trace test's table-driven
// guard fails if any mapped rule is left empty.

#ifndef SRC_OBS_CHROME_TRACE_H_
#define SRC_OBS_CHROME_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/executor/trace.h"
#include "src/obs/timeline.h"

namespace rubberband {

// Which open-span table a close/open event keys into (and which lane an
// instant marker lands on).
enum class ChromeSpanKey { kNone, kStage, kTrial, kInstance };

struct ChromeEventRule {
  const char* name = "";  // exported event name; "" only past the enum's end
  enum Kind { kInstant, kOpen, kClose } kind = kInstant;
  ChromeSpanKey key = ChromeSpanKey::kNone;
};

// The exhaustive TraceEventType -> export rule table. Values outside the
// enum return the empty sentinel rule.
ChromeEventRule ChromeRuleFor(TraceEventType type);

// Derives paired spans from a raw event trace: STAGE_START..SYNC becomes a
// "stage" span, TRIAL_START..TRIAL_COMPLETE/TERMINATED/RESTART a "trial"
// span, INSTANCE_READY..released/preempted/crashed/quarantined an
// "instance" span. Spans still open at the end of the trace close at the
// last event's time. Category "trace".
Timeline SpansFromTrace(const ExecutionTrace& trace, int pid = 1);

class ChromeTraceBuilder {
 public:
  // Adds phase spans; each span's own pid is used.
  void AddTimeline(const Timeline& timeline);
  // Same, with every span forced onto `pid`.
  void AddTimeline(const Timeline& timeline, int pid);

  // Adds a raw event trace under `pid`: derived spans (SpansFromTrace) plus
  // an instant marker per instant/closing event.
  void AddExecutionTrace(const ExecutionTrace& trace, int pid);

  void SetProcessName(int pid, const std::string& name);

  size_t num_events() const { return events_.size(); }

  // The trace-event JSON document ({"traceEvents": [...], ...}); metadata
  // events first, then payload events in insertion order. Timestamps are
  // microseconds on the simulation clock.
  std::string ToJson() const;

 private:
  struct Event {
    std::string name;
    std::string category;
    char phase = 'i';  // 'X' complete, 'i' instant
    double ts_us = 0.0;
    double dur_us = 0.0;  // 'X' only
    int pid = 1;
    int64_t tid = 0;
    std::string args_json;  // pre-rendered {"stage": 1, ...} or empty
  };

  void NoteThread(int pid, int64_t tid);

  std::vector<Event> events_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int64_t>, std::string> thread_names_;
};

struct ExecutionReport;
struct ServiceReport;

// One job: phase spans + trace events under pid 1.
std::string ChromeTraceFromReport(const ExecutionReport& report);

// The fleet: service-level spans keep their own pids; each job's timeline
// and trace are exported under pid (job index + 1), named after the job.
std::string ChromeTraceFromService(const ServiceReport& report);

}  // namespace rubberband

#endif  // SRC_OBS_CHROME_TRACE_H_
