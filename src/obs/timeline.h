// Timeline profiler: scoped phase spans on the simulation clock.
//
// The execution trace records *instants* (what happened when); the
// timeline records *intervals* (what the run was doing between them): plan,
// provision, stage-run, sync, checkpoint, restore, quarantine. Spans are
// what the Chrome trace-event exporter draws as bars and what the "top
// phases" summary aggregates — the per-stage allocation timelines the
// paper's evaluation (§6) and HyperSched's reallocation plots are built on.
//
// The executor's stage-total spans tile the run exactly: stage i opens at
// the previous SYNC (stage 0 at t=0) and closes at its own SYNC, so the
// spans sum to the reported JCT — the conformance suite asserts this.

#ifndef SRC_OBS_TIMELINE_H_
#define SRC_OBS_TIMELINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"

namespace rubberband {

// name/category are string_views so recording a span on the hot path is a
// flat copy with no string construction; every producer passes string
// literals (executor phases, service phases, the trace-export rule table),
// and new producers must too — the views must outlive the timeline.
struct TimelineSpan {
  std::string_view name;      // phase: "stage-total", "provision", "restore", ...
  std::string_view category;  // component: "executor", "service"
  Seconds start = 0.0;
  Seconds end = 0.0;
  int pid = 1;            // process lane (job) in the Chrome export
  int stage = -1;         // -1 when not stage-scoped
  int trial = -1;         // -1 when not trial-scoped
  int64_t instance = -1;  // -1 when not instance-scoped

  Seconds duration() const { return end - start; }
};

class Timeline {
 public:
  void Record(TimelineSpan span) {
    if (spans_.empty()) {
      spans_.reserve(32);  // skip the early doubling steps on instrumented runs
    }
    spans_.push_back(span);
  }

  // Pre-sizes the backing store when the producer can bound its span count
  // (the executor records a handful of spans per trial and per stage).
  void Reserve(size_t spans) { spans_.reserve(spans); }

  const std::vector<TimelineSpan>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }
  size_t size() const { return spans_.size(); }

  // Appends another timeline's spans with their pid overridden (the service
  // folds per-job executor timelines into one fleet view, one pid per job).
  void Append(const Timeline& other, int pid);

  // Spans with the given name, in recording order.
  std::vector<TimelineSpan> OfName(std::string_view name) const;

  // Total seconds across spans with the given name.
  Seconds TotalSeconds(std::string_view name) const;

 private:
  std::vector<TimelineSpan> spans_;
};

// Compact text summary: phases ranked by total time, with counts — the
// at-a-glance companion to the full Chrome export.
std::string TopPhasesSummary(const Timeline& timeline, size_t top_n = 10);

}  // namespace rubberband

#endif  // SRC_OBS_TIMELINE_H_
