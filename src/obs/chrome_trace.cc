#include "src/obs/chrome_trace.h"

#include <cstdio>
#include <sstream>

#include "src/executor/executor.h"
#include "src/obs/json.h"
#include "src/service/tuning_service.h"

namespace rubberband {

namespace {

constexpr int64_t kControlLane = 0;
constexpr int64_t kInstanceLaneBase = 10;
constexpr int64_t kTrialLaneBase = 100000;

int64_t LaneFor(int trial, int64_t instance) {
  if (instance >= 0) {
    return kInstanceLaneBase + instance;
  }
  if (trial >= 0) {
    return kTrialLaneBase + trial;
  }
  return kControlLane;
}

std::string LaneName(int64_t tid) {
  if (tid == kControlLane) {
    return "stages";
  }
  if (tid >= kTrialLaneBase) {
    return "trial " + std::to_string(tid - kTrialLaneBase);
  }
  return "instance " + std::to_string(tid - kInstanceLaneBase);
}

std::string ArgsJson(int stage, int trial, int64_t instance) {
  std::ostringstream os;
  bool any = false;
  os << "{";
  if (stage >= 0) {
    os << "\"stage\": " << stage;
    any = true;
  }
  if (trial >= 0) {
    os << (any ? ", " : "") << "\"trial\": " << trial;
    any = true;
  }
  if (instance >= 0) {
    os << (any ? ", " : "") << "\"instance\": " << instance;
    any = true;
  }
  os << "}";
  return any ? os.str() : std::string();
}

std::string FormatMicros(double us) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.3f", us);
  return buffer;
}

}  // namespace

ChromeEventRule ChromeRuleFor(TraceEventType type) {
  switch (type) {
    case TraceEventType::kStageStart:
      return {"stage", ChromeEventRule::kOpen, ChromeSpanKey::kStage};
    case TraceEventType::kInstanceReady:
      return {"instance", ChromeEventRule::kOpen, ChromeSpanKey::kInstance};
    case TraceEventType::kInstanceReleased:
      return {"instance-released", ChromeEventRule::kClose, ChromeSpanKey::kInstance};
    case TraceEventType::kTrialStart:
      return {"trial", ChromeEventRule::kOpen, ChromeSpanKey::kTrial};
    case TraceEventType::kTrialComplete:
      return {"trial-complete", ChromeEventRule::kClose, ChromeSpanKey::kTrial};
    case TraceEventType::kTrialTerminated:
      return {"trial-terminated", ChromeEventRule::kClose, ChromeSpanKey::kTrial};
    case TraceEventType::kSync:
      return {"sync", ChromeEventRule::kClose, ChromeSpanKey::kStage};
    case TraceEventType::kPreemption:
      return {"preemption", ChromeEventRule::kClose, ChromeSpanKey::kInstance};
    case TraceEventType::kTrialRestart:
      return {"trial-restart", ChromeEventRule::kClose, ChromeSpanKey::kTrial};
    case TraceEventType::kInstanceCrash:
      return {"instance-crash", ChromeEventRule::kClose, ChromeSpanKey::kInstance};
    case TraceEventType::kProvisionFailure:
      return {"provision-failure", ChromeEventRule::kInstant, ChromeSpanKey::kNone};
    case TraceEventType::kProvisionRetry:
      return {"provision-retry", ChromeEventRule::kInstant, ChromeSpanKey::kNone};
    case TraceEventType::kProvisionGiveUp:
      return {"provision-give-up", ChromeEventRule::kInstant, ChromeSpanKey::kNone};
    case TraceEventType::kCheckpointRetry:
      return {"checkpoint-retry", ChromeEventRule::kInstant, ChromeSpanKey::kTrial};
    case TraceEventType::kStageDegraded:
      return {"stage-degraded", ChromeEventRule::kInstant, ChromeSpanKey::kNone};
    case TraceEventType::kReplan:
      return {"replan", ChromeEventRule::kInstant, ChromeSpanKey::kNone};
    case TraceEventType::kStragglerDetected:
      return {"straggler-detected", ChromeEventRule::kInstant, ChromeSpanKey::kInstance};
    case TraceEventType::kStragglerQuarantined:
      return {"straggler-quarantined", ChromeEventRule::kClose, ChromeSpanKey::kInstance};
    case TraceEventType::kStragglerFalsePositive:
      return {"straggler-false-positive", ChromeEventRule::kInstant, ChromeSpanKey::kInstance};
    case TraceEventType::kSpotPriceChange:
      // The instance column carries the price multiplier in basis points,
      // not an instance id, so the marker lives on the control lane.
      return {"spot-price-change", ChromeEventRule::kInstant, ChromeSpanKey::kStage};
    case TraceEventType::kPreemptionWarning:
      return {"preemption-warning", ChromeEventRule::kInstant, ChromeSpanKey::kInstance};
    case TraceEventType::kMarketFallback:
      return {"market-fallback", ChromeEventRule::kInstant, ChromeSpanKey::kStage};
  }
  return {};  // past the enum's end: the guard test asserts this stays empty
}

Timeline SpansFromTrace(const ExecutionTrace& trace, int pid) {
  struct OpenSpan {
    Seconds start = 0.0;
    int stage = -1;
    int trial = -1;
    int64_t instance = -1;
  };
  Timeline timeline;
  std::map<int, OpenSpan> open_stages;
  std::map<int, OpenSpan> open_trials;
  std::map<int64_t, OpenSpan> open_instances;
  Seconds last_time = 0.0;

  const auto close = [&](const char* name, const OpenSpan& open, Seconds end) {
    timeline.Record(
        TimelineSpan{name, "trace", open.start, end, pid, open.stage, open.trial, open.instance});
  };

  for (const TraceEvent& event : trace.events()) {
    last_time = std::max(last_time, event.time);
    const ChromeEventRule rule = ChromeRuleFor(event.type);
    if (rule.kind == ChromeEventRule::kInstant) {
      continue;  // markers are the builder's concern, not spans
    }
    const char* span_name = rule.key == ChromeSpanKey::kStage      ? "stage"
                            : rule.key == ChromeSpanKey::kTrial    ? "trial"
                                                                   : "instance";
    const OpenSpan opened{event.time, event.stage, event.trial, event.instance};
    const auto handle = [&](auto& open_map, auto key) {
      auto it = open_map.find(key);
      if (rule.kind == ChromeEventRule::kOpen) {
        if (it != open_map.end()) {
          // Re-opened without a close (defensive): close the dangling span.
          close(span_name, it->second, event.time);
          open_map.erase(it);
        }
        open_map.emplace(key, opened);
        return;
      }
      if (it != open_map.end()) {
        close(span_name, it->second, event.time);
        open_map.erase(it);
      }
      // A close with nothing open (e.g. a preemption of an instance this
      // trace never saw ready) leaves only the builder's instant marker.
    };
    switch (rule.key) {
      case ChromeSpanKey::kStage:
        handle(open_stages, event.stage);
        break;
      case ChromeSpanKey::kTrial:
        handle(open_trials, event.trial);
        break;
      case ChromeSpanKey::kInstance:
        handle(open_instances, event.instance);
        break;
      case ChromeSpanKey::kNone:
        break;
    }
  }
  for (const auto& [stage, open] : open_stages) {
    close("stage", open, last_time);
  }
  for (const auto& [trial, open] : open_trials) {
    close("trial", open, last_time);
  }
  for (const auto& [instance, open] : open_instances) {
    close("instance", open, last_time);
  }
  return timeline;
}

void ChromeTraceBuilder::NoteThread(int pid, int64_t tid) {
  thread_names_.emplace(std::make_pair(pid, tid), LaneName(tid));
}

void ChromeTraceBuilder::AddTimeline(const Timeline& timeline) {
  for (const TimelineSpan& span : timeline.spans()) {
    Event event;
    event.name = span.name;
    event.category = span.category;
    event.phase = 'X';
    event.ts_us = span.start * 1e6;
    event.dur_us = span.duration() * 1e6;
    event.pid = span.pid;
    // Executor/service phases live on the control lane unless the span is
    // pinned to a trial or instance (checkpoint/restore/quarantine).
    event.tid = LaneFor(span.trial, span.instance);
    event.args_json = ArgsJson(span.stage, span.trial, span.instance);
    NoteThread(event.pid, event.tid);
    events_.push_back(std::move(event));
  }
}

void ChromeTraceBuilder::AddTimeline(const Timeline& timeline, int pid) {
  Timeline pinned;
  pinned.Append(timeline, pid);
  AddTimeline(pinned);
}

void ChromeTraceBuilder::AddExecutionTrace(const ExecutionTrace& trace, int pid) {
  AddTimeline(SpansFromTrace(trace, pid));
  for (const TraceEvent& raw : trace.events()) {
    const ChromeEventRule rule = ChromeRuleFor(raw.type);
    if (rule.kind == ChromeEventRule::kOpen) {
      continue;  // the derived span's left edge marks it
    }
    Event event;
    event.name = rule.name;
    event.category = "trace";
    event.phase = 'i';
    event.ts_us = raw.time * 1e6;
    event.pid = pid;
    event.tid = rule.key == ChromeSpanKey::kStage ? kControlLane
                                                  : LaneFor(raw.trial, raw.instance);
    event.args_json = ArgsJson(raw.stage, raw.trial, raw.instance);
    NoteThread(event.pid, event.tid);
    events_.push_back(std::move(event));
  }
}

void ChromeTraceBuilder::SetProcessName(int pid, const std::string& name) {
  process_names_[pid] = name;
}

std::string ChromeTraceBuilder::ToJson() const {
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  bool first = true;
  const auto separator = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    separator();
    os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
       << ", \"tid\": 0, \"args\": {\"name\": \"" << JsonEscape(name) << "\"}}";
  }
  for (const auto& [key, name] : thread_names_) {
    separator();
    os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << key.first
       << ", \"tid\": " << key.second << ", \"args\": {\"name\": \"" << JsonEscape(name)
       << "\"}}";
  }
  for (const Event& event : events_) {
    separator();
    os << "  {\"name\": \"" << JsonEscape(event.name) << "\", \"cat\": \""
       << JsonEscape(event.category) << "\", \"ph\": \"" << event.phase
       << "\", \"ts\": " << FormatMicros(event.ts_us);
    if (event.phase == 'X') {
      os << ", \"dur\": " << FormatMicros(event.dur_us);
    }
    if (event.phase == 'i') {
      os << ", \"s\": \"t\"";
    }
    os << ", \"pid\": " << event.pid << ", \"tid\": " << event.tid;
    if (!event.args_json.empty()) {
      os << ", \"args\": " << event.args_json;
    }
    os << "}";
  }
  os << (first ? "]" : "\n]") << ", \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

std::string ChromeTraceFromReport(const ExecutionReport& report) {
  ChromeTraceBuilder builder;
  builder.SetProcessName(1, "job");
  builder.AddTimeline(report.timeline, 1);
  builder.AddExecutionTrace(report.trace, 1);
  return builder.ToJson();
}

std::string ChromeTraceFromService(const ServiceReport& report) {
  ChromeTraceBuilder builder;
  builder.SetProcessName(0, "service");
  builder.AddTimeline(report.timeline);  // service spans carry per-job pids
  for (size_t i = 0; i < report.jobs.size(); ++i) {
    const JobOutcome& job = report.jobs[i];
    const int pid = static_cast<int>(i) + 1;
    builder.SetProcessName(pid, job.name.empty() ? "job-" + std::to_string(i) : job.name);
    builder.AddTimeline(job.timeline, pid);
    builder.AddExecutionTrace(job.trace, pid);
  }
  return builder.ToJson();
}

}  // namespace rubberband
