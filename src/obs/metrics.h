// Unified metrics registry: typed counters, gauges, and fixed-bucket
// histograms behind per-component scopes (cloud / planner / executor /
// service), replacing the ad-hoc counter fields that had accreted on
// every report struct.
//
// Design rules:
//   * One source of truth. Components record into registry handles; report
//     structs are *views* populated from a snapshot when the run settles.
//   * Zero overhead when disabled. A scope over a disabled (or absent)
//     registry hands out null pointers, and the obs:: inline helpers make a
//     null handle a no-op — instrumentation costs one predictable branch.
//   * Deterministic. Recording never touches the simulation, its RNG, or
//     wall clocks, so metrics on/off cannot perturb a seeded run; snapshots
//     use sorted maps so JSON export is byte-stable for golden tests.
//   * Thread-safe. Handles are atomics (histogram buckets included), so
//     concurrent recorders — the parallel plan evaluator today, sharded
//     services tomorrow — need no external locking.
//
// Histograms record integer nanoseconds (Seconds are converted with
// llround) into fixed bucket bounds, which keeps merge exact: merging two
// snapshots is integer bucket addition, independent of recording order.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace rubberband {

// An up-down integer counter (negative deltas are allowed: the warm pool
// revokes a warm hit when the handed-over instance turns out to be gone).
class Counter {
 public:
  void Add(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A double-valued accumulator/level. Add() accumulates (seconds totals);
// Set() overwrites (utilization, $ per job).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  std::vector<int64_t> bounds_ns;  // inclusive upper bounds, ascending
  std::vector<int64_t> counts;     // bounds_ns.size() + 1; last = overflow
  int64_t count = 0;
  int64_t sum_ns = 0;

  double MeanSeconds() const { return count > 0 ? static_cast<double>(sum_ns) / count / 1e9 : 0.0; }

  // Bucket-wise addition; throws std::invalid_argument on mismatched
  // bounds. Integer adds make the merge exact and order-independent.
  void Merge(const HistogramSnapshot& other);

  // Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
  // bucket holding the q-th sample; 0 on an empty histogram. Values landing
  // in the overflow bucket report the highest finite bound (a lower bound
  // on the true quantile — size the buckets to cover the expected range).
  double QuantileNs(double q) const;
  double QuantileSeconds(double q) const { return QuantileNs(q) / 1e9; }

  bool operator==(const HistogramSnapshot& other) const = default;
};

// Fixed-bucket latency histogram with integer-nanosecond recording.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds_ns);

  void RecordNanos(int64_t nanos);
  void RecordSeconds(Seconds seconds) { RecordNanos(llround(seconds * 1e9)); }

  const std::vector<int64_t>& bounds_ns() const { return bounds_ns_; }
  HistogramSnapshot Snapshot() const;

 private:
  std::vector<int64_t> bounds_ns_;
  std::vector<std::atomic<int64_t>> counts_;  // bounds_ns_.size() + 1
  // No separate total-count atomic: the snapshot derives it from the bucket
  // sums, keeping the record path at two relaxed RMWs.
  std::atomic<int64_t> sum_ns_{0};
};

// Default latency buckets: 1ms .. ~1h in roughly 4x steps (simulated
// latencies span checkpoint transfers to multi-minute provisioning waits).
const std::vector<int64_t>& DefaultLatencyBucketsNs();

// Fine-grained wall-clock buckets: 1us .. ~4s in 2x steps. The serving
// front door records real (not simulated) submit→decision latencies, which
// live three orders of magnitude below the simulated-latency buckets.
const std::vector<int64_t>& FineLatencyBucketsNs();

// A point-in-time copy of a registry (or a merge of several), keyed by
// full metric name. Sorted maps make ToJson deterministic.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }

  // Adds `other` into this snapshot: counters and histograms add exactly,
  // gauges add as accumulators (the service merges per-job executor
  // snapshots into fleet totals).
  void Merge(const MetricsSnapshot& other);

  // {"counters": {...}, "gauges": {...}, "histograms": {name:
  // {"bounds_ns": [...], "counts": [...], "count": n, "sum_ns": n}}}.
  std::string ToJson() const;
};

class MetricsRegistry;

// A prefix-named view of a registry ("executor", "cloud.warm", ...).
// Handles are nullable: a default-constructed scope (or one over a
// disabled registry) returns nullptr everywhere, which the obs:: helpers
// below turn into no-ops.
class MetricsScope {
 public:
  MetricsScope() = default;
  MetricsScope(MetricsRegistry* registry, std::string prefix);

  Counter* GetCounter(const std::string& name) const;
  Gauge* GetGauge(const std::string& name) const;
  Histogram* GetHistogram(const std::string& name) const;  // default buckets
  Histogram* GetHistogram(const std::string& name, const std::vector<int64_t>& bounds_ns) const;

  MetricsScope Sub(const std::string& component) const;
  bool live() const;

 private:
  MetricsRegistry* registry_ = nullptr;
  std::string prefix_;  // includes the trailing '.' when non-empty
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  MetricsScope scope(const std::string& component) { return MetricsScope(this, component); }

  // Find-or-create by full name. Returned pointers are stable for the
  // registry's lifetime. GetHistogram throws std::invalid_argument when an
  // existing histogram was registered with different bounds.
  Counter* GetCounter(const std::string& full_name);
  Gauge* GetGauge(const std::string& full_name);
  Histogram* GetHistogram(const std::string& full_name, const std::vector<int64_t>& bounds_ns);

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }

 private:
  const bool enabled_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Null-safe recording helpers: the disabled path is one branch.
namespace obs {
inline void Inc(Counter* counter, int64_t delta = 1) {
  if (counter != nullptr) {
    counter->Add(delta);
  }
}
inline void Add(Gauge* gauge, double delta) {
  if (gauge != nullptr) {
    gauge->Add(delta);
  }
}
inline void Set(Gauge* gauge, double value) {
  if (gauge != nullptr) {
    gauge->Set(value);
  }
}
inline void ObserveSeconds(Histogram* histogram, Seconds seconds) {
  if (histogram != nullptr) {
    histogram->RecordSeconds(seconds);
  }
}
inline void ObserveNanos(Histogram* histogram, int64_t nanos) {
  if (histogram != nullptr) {
    histogram->RecordNanos(nanos);
  }
}
}  // namespace obs

}  // namespace rubberband

#endif  // SRC_OBS_METRICS_H_
