// Minimal JSON value + recursive-descent parser.
//
// Exists for the observability layer's own consumers: the golden-trace
// tests need a schema-aware comparator (field order must not matter, values
// must), and the conformance suite validates that exported Chrome traces
// and metrics snapshots are well-formed trace-event/JSON documents. It is a
// reader for JSON *we* emit plus hand-written goldens — not a general
// internet-facing parser.

#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <map>
#include <string>
#include <vector>

namespace rubberband {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses one JSON document (object, array, or scalar) with optional
  // trailing whitespace. Throws std::invalid_argument on malformed input,
  // with a byte offset in the message.
  static JsonValue Parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  bool Has(const std::string& key) const { return object_.count(key) > 0; }
  // Object member access; throws std::out_of_range on a missing key.
  const JsonValue& at(const std::string& key) const { return object_.at(key); }
  const JsonValue& at(size_t index) const { return array_.at(index); }
  size_t size() const { return type_ == Type::kArray ? array_.size() : object_.size(); }

  // Structural equality. Objects are key-sorted maps, so two documents that
  // differ only in member order compare equal — exactly the "schema-aware,
  // ignores field order but not values" contract the golden tests want.
  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  // Mutators for document building (the wire protocol assembles responses
  // as JsonValue trees). Set converts this value to an object if needed;
  // Append converts it to an array.
  JsonValue& Set(const std::string& key, JsonValue value);
  JsonValue& Append(JsonValue value);

  // Serializes the document. Objects emit key-sorted members (they are
  // stored in a sorted map), so output is deterministic; integral numbers
  // within the exact double range print without a decimal point.
  std::string ToJson() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

// Escapes a string for embedding in a JSON document (quotes not included).
std::string JsonEscape(const std::string& raw);

}  // namespace rubberband

#endif  // SRC_OBS_JSON_H_
