#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "src/obs/json.h"

namespace rubberband {

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0 && other.counts.empty()) {
    return;
  }
  if (counts.empty()) {
    *this = other;
    return;
  }
  if (bounds_ns != other.bounds_ns) {
    throw std::invalid_argument("merging histograms with mismatched bucket bounds");
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum_ns += other.sum_ns;
}

Histogram::Histogram(std::vector<int64_t> bounds_ns)
    : bounds_ns_(std::move(bounds_ns)), counts_(bounds_ns_.size() + 1) {
  if (!std::is_sorted(bounds_ns_.begin(), bounds_ns_.end())) {
    throw std::invalid_argument("histogram bucket bounds must be ascending");
  }
}

void Histogram::RecordNanos(int64_t nanos) {
  const auto it = std::lower_bound(bounds_ns_.begin(), bounds_ns_.end(), nanos);
  counts_[static_cast<size_t>(it - bounds_ns_.begin())].fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(nanos, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds_ns = bounds_ns_;
  snapshot.counts.reserve(counts_.size());
  for (const std::atomic<int64_t>& bucket : counts_) {
    const int64_t bucket_count = bucket.load(std::memory_order_relaxed);
    snapshot.counts.push_back(bucket_count);
    snapshot.count += bucket_count;
  }
  snapshot.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  return snapshot;
}

const std::vector<int64_t>& DefaultLatencyBucketsNs() {
  static const std::vector<int64_t> kBounds = [] {
    std::vector<int64_t> bounds;
    for (int64_t bound = 1'000'000; bound <= 5'000'000'000'000; bound *= 4) {
      bounds.push_back(bound);  // 1ms, 4ms, ..., ~70min
    }
    return bounds;
  }();
  return kBounds;
}

const std::vector<int64_t>& FineLatencyBucketsNs() {
  static const std::vector<int64_t> kBounds = [] {
    std::vector<int64_t> bounds;
    for (int64_t bound = 1'000; bound <= 4'000'000'000; bound *= 2) {
      bounds.push_back(bound);  // 1us, 2us, ..., ~4s
    }
    return bounds;
  }();
  return kBounds;
}

double HistogramSnapshot::QuantileNs(double q) const {
  if (count <= 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const int64_t in_bucket = counts[i];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (i >= bounds_ns.size()) {
        return static_cast<double>(bounds_ns.empty() ? 0 : bounds_ns.back());
      }
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds_ns[i - 1]);
      const double upper = static_cast<double>(bounds_ns[i]);
      const double fraction =
          (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, fraction));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(bounds_ns.empty() ? 0 : bounds_ns.back());
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] += value;
  }
  for (const auto& [name, histogram] : other.histograms) {
    histograms[name].Merge(histogram);
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": " << value;
    first = false;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": " << FormatDouble(value);
    first = false;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": {\"bounds_ns\": [";
    for (size_t i = 0; i < histogram.bounds_ns.size(); ++i) {
      os << (i > 0 ? "," : "") << histogram.bounds_ns[i];
    }
    os << "], \"counts\": [";
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      os << (i > 0 ? "," : "") << histogram.counts[i];
    }
    os << "], \"count\": " << histogram.count << ", \"sum_ns\": " << histogram.sum_ns << "}";
    first = false;
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
  return os.str();
}

MetricsScope::MetricsScope(MetricsRegistry* registry, std::string prefix)
    : registry_(registry), prefix_(prefix.empty() ? "" : prefix + ".") {}

bool MetricsScope::live() const { return registry_ != nullptr && registry_->enabled(); }

Counter* MetricsScope::GetCounter(const std::string& name) const {
  return live() ? registry_->GetCounter(prefix_ + name) : nullptr;
}

Gauge* MetricsScope::GetGauge(const std::string& name) const {
  return live() ? registry_->GetGauge(prefix_ + name) : nullptr;
}

Histogram* MetricsScope::GetHistogram(const std::string& name) const {
  return GetHistogram(name, DefaultLatencyBucketsNs());
}

Histogram* MetricsScope::GetHistogram(const std::string& name,
                                      const std::vector<int64_t>& bounds_ns) const {
  return live() ? registry_->GetHistogram(prefix_ + name, bounds_ns) : nullptr;
}

MetricsScope MetricsScope::Sub(const std::string& component) const {
  MetricsScope sub;
  sub.registry_ = registry_;
  sub.prefix_ = prefix_ + component + ".";
  return sub;
}

Counter* MetricsRegistry::GetCounter(const std::string& full_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[full_name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& full_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[full_name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& full_name,
                                         const std::vector<int64_t>& bounds_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[full_name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(bounds_ns);
  } else if (slot->bounds_ns() != bounds_ns) {
    throw std::invalid_argument("histogram '" + full_name +
                                "' already registered with different bounds");
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

}  // namespace rubberband
