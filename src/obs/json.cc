#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace rubberband {

namespace {

void AppendUtf8(std::string& out, unsigned code_point) {
  if (code_point < 0x80) {
    out.push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after the document");
    }
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::invalid_argument("JSON parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(std::string("expected '") + c + "', found '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool Consume(const char* literal) {
    const size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return JsonValue::MakeString(ParseString());
      case 't':
        if (!Consume("true")) Fail("invalid literal");
        return JsonValue::MakeBool(true);
      case 'f':
        if (!Consume("false")) Fail("invalid literal");
        return JsonValue::MakeBool(false);
      case 'n':
        if (!Consume("null")) Fail("invalid literal");
        return JsonValue::MakeNull();
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue value;
    value.type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      value.object_[std::move(key)] = ParseValue();
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return value;
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue value;
    value.type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array_.push_back(ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return value;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
          }
          unsigned code_point = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code_point <<= 4;
            if (h >= '0' && h <= '9') {
              code_point |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code_point |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code_point |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("invalid \\u escape");
            }
          }
          AppendUtf8(out, code_point);
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  JsonValue ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected a value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      Fail("malformed number '" + token + "'");
    }
    return JsonValue::MakeNumber(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

JsonValue JsonValue::Parse(const std::string& text) { return JsonParser(text).Parse(); }

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  if (type_ != Type::kObject) {
    *this = MakeObject();
  }
  object_[key] = std::move(value);
  return *this;
}

JsonValue& JsonValue::Append(JsonValue value) {
  if (type_ != Type::kArray) {
    *this = MakeArray();
  }
  array_.push_back(std::move(value));
  return *this;
}

namespace {

void AppendNumber(std::string& out, double value) {
  // Integral values in the exact double range print as integers; the rest
  // use %.17g, which round-trips any double through the parser.
  if (value == static_cast<double>(static_cast<int64_t>(value)) && std::abs(value) < 9e15) {
    out += std::to_string(static_cast<int64_t>(value));
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void AppendValue(std::string& out, const JsonValue& value) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      return;
    case JsonValue::Type::kBool:
      out += value.bool_value() ? "true" : "false";
      return;
    case JsonValue::Type::kNumber:
      AppendNumber(out, value.number());
      return;
    case JsonValue::Type::kString:
      out += '"';
      out += JsonEscape(value.string());
      out += '"';
      return;
    case JsonValue::Type::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& element : value.array()) {
        if (!first) {
          out += ',';
        }
        first = false;
        AppendValue(out, element);
      }
      out += ']';
      return;
    }
    case JsonValue::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.object()) {
        if (!first) {
          out += ',';
        }
        first = false;
        out += '"';
        out += JsonEscape(key);
        out += "\":";
        AppendValue(out, member);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string JsonValue::ToJson() const {
  std::string out;
  AppendValue(out, *this);
  return out;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) {
    return false;
  }
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace rubberband
