// Placement controller (paper section 4.4, Algorithm 3).
//
// Converts each trial's resource quantity into physical worker-to-node
// assignments, maximizing spatial locality: a trial smaller than a node is
// placed entirely on one node; a larger trial acquires a minimal set of
// nodes. Unchanged assignments are preserved across scheduling epochs on a
// best-effort basis; trials whose allocation grew may displace smaller
// trials (each displaced trial re-enters the queue and gets its own chance
// to be placed; trials placed in this epoch, and trials whose reassignment
// is in flight ("reserved"/locked), cannot be perturbed). Packing onto the
// fewest nodes is also what makes scale-down safe: emptied nodes can be
// deprovisioned without interrupting any trial (Figure 5).

#ifndef SRC_PLACEMENT_CONTROLLER_H_
#define SRC_PLACEMENT_CONTROLLER_H_

#include <map>
#include <set>
#include <vector>

#include "src/placement/cluster_state.h"

namespace rubberband {

struct PlacementResult {
  PlacementPlan plan;
  // Trials that could not be placed (cluster too small); the scheduler
  // queues them until resources free up.
  std::vector<TrialId> unplaced;
};

enum class PlacementStrategy {
  // Algorithm 3: locality-maximizing best-fit with displacement.
  kPacked,
  // Locality-unaware baseline (Table 1 "No Placement"): worker GPUs are
  // assigned one at a time round-robin across nodes, the behaviour of a
  // scheduler given no location preferences.
  kScatter,
};

class PlacementController {
 public:
  explicit PlacementController(int gpus_per_node,
                               PlacementStrategy strategy = PlacementStrategy::kPacked);

  // Cluster membership. Removing a node is only legal when no trial holds
  // GPUs on it in the current plan.
  void AddNode(PlacementNodeId id);
  void RemoveNode(PlacementNodeId id);

  // Forcibly removes a node that disappeared (spot preemption): every trial
  // with workers on it is evicted from the whole plan (its gang is gone)
  // and returned so the scheduler can restart it elsewhere.
  std::vector<TrialId> EvictNode(PlacementNodeId id);

  // Marks a node as ineligible for new worker assignments (a detected
  // straggler awaiting quarantine). Existing assignments are untouched —
  // eviction is a separate, explicit step — but best-fit, displacement,
  // split fallback and scatter all skip the node.
  void SetUnschedulable(PlacementNodeId id, bool unschedulable);
  bool IsUnschedulable(PlacementNodeId id) const { return unschedulable_.count(id) > 0; }

  // Algorithm 3. `allocations` maps every trial that should be running to
  // its GPU allocation; `reserved` lists trials whose placements are locked
  // this epoch. Returns the new placement plan (also retained internally).
  PlacementResult Place(const std::map<TrialId, int>& allocations,
                        const std::set<TrialId>& reserved = {});

  // Nodes with no assigned GPUs under the current plan (safe to
  // deprovision).
  std::vector<PlacementNodeId> IdleNodes() const;

  // True when the trial's workers span the minimum possible node count.
  bool IsColocated(TrialId trial) const;

  const PlacementPlan& plan() const { return plan_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int gpus_per_node() const { return gpus_per_node_; }

 private:
  PlacementResult PlaceScattered(const std::map<TrialId, int>& allocations);
  PlacementNode* FindBestFit(int gpus);
  // Frees >= `gpus` on `node` by evicting trials with allocations smaller
  // than `incoming_alloc` that are not protected. Returns evicted trials,
  // or nullopt (and changes nothing) if impossible.
  bool TryMakeSpace(PlacementNode& node, int gpus, int incoming_alloc,
                    const std::set<TrialId>& prot, std::vector<TrialId>& displaced);
  void Evict(TrialId trial);
  int MinSpan(int gpus) const;

  int gpus_per_node_;
  PlacementStrategy strategy_;
  std::map<PlacementNodeId, PlacementNode> nodes_;
  std::set<PlacementNodeId> unschedulable_;
  PlacementPlan plan_;
};

}  // namespace rubberband

#endif  // SRC_PLACEMENT_CONTROLLER_H_
