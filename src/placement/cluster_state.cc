#include "src/placement/cluster_state.h"

#include <set>
#include <sstream>

namespace rubberband {

int PlacementNode::UsedGpus() const {
  int used = 0;
  for (const auto& [trial, gpus] : assigned) {
    used += gpus;
  }
  return used;
}

void PlacementPlan::Assign(TrialId trial, PlacementNodeId node, int gpus) {
  auto& list = assignments_[trial];
  for (WorkerAssignment& existing : list) {
    if (existing.node == node) {
      existing.gpus += gpus;
      return;
    }
  }
  list.push_back(WorkerAssignment{node, gpus});
}

void PlacementPlan::RemoveTrial(TrialId trial) { assignments_.erase(trial); }

int PlacementPlan::TrialGpus(TrialId trial) const {
  auto it = assignments_.find(trial);
  if (it == assignments_.end()) {
    return 0;
  }
  int total = 0;
  for (const WorkerAssignment& assignment : it->second) {
    total += assignment.gpus;
  }
  return total;
}

int PlacementPlan::TrialSpan(TrialId trial) const {
  auto it = assignments_.find(trial);
  if (it == assignments_.end()) {
    return 0;
  }
  std::set<PlacementNodeId> nodes;
  for (const WorkerAssignment& assignment : it->second) {
    nodes.insert(assignment.node);
  }
  return static_cast<int>(nodes.size());
}

const std::vector<WorkerAssignment>& PlacementPlan::Assignments(TrialId trial) const {
  static const std::vector<WorkerAssignment> kEmpty;
  auto it = assignments_.find(trial);
  return it == assignments_.end() ? kEmpty : it->second;
}

std::string PlacementPlan::ToString() const {
  std::ostringstream os;
  for (const auto& [trial, list] : assignments_) {
    os << "trial " << trial << ":";
    for (const WorkerAssignment& assignment : list) {
      os << " (node " << assignment.node << ", " << assignment.gpus << " gpus)";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rubberband
