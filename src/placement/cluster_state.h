// Physical cluster state for placement: which trial holds how many GPUs on
// which node. The placement controller mutates this state; the executor
// reads it to configure trial worker gangs and to find empty nodes that can
// be deprovisioned safely (paper Figure 5).

#ifndef SRC_PLACEMENT_CLUSTER_STATE_H_
#define SRC_PLACEMENT_CLUSTER_STATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rubberband {

using PlacementNodeId = int64_t;
using TrialId = int;

struct PlacementNode {
  PlacementNodeId id = -1;
  int total_gpus = 0;
  // GPUs held on this node, per trial.
  std::map<TrialId, int> assigned;

  int UsedGpus() const;
  int FreeGpus() const { return total_gpus - UsedGpus(); }
};

struct WorkerAssignment {
  PlacementNodeId node = -1;
  int gpus = 0;
};

// The placement plan: every trial's worker-to-node mapping.
class PlacementPlan {
 public:
  void Assign(TrialId trial, PlacementNodeId node, int gpus);
  void RemoveTrial(TrialId trial);
  void Clear() { assignments_.clear(); }

  bool HasTrial(TrialId trial) const { return assignments_.count(trial) > 0; }
  int TrialGpus(TrialId trial) const;
  // Number of distinct nodes the trial's workers span.
  int TrialSpan(TrialId trial) const;

  const std::vector<WorkerAssignment>& Assignments(TrialId trial) const;
  const std::map<TrialId, std::vector<WorkerAssignment>>& all() const { return assignments_; }

  std::string ToString() const;

 private:
  std::map<TrialId, std::vector<WorkerAssignment>> assignments_;
};

}  // namespace rubberband

#endif  // SRC_PLACEMENT_CLUSTER_STATE_H_
