#include "src/placement/controller.h"

#include <algorithm>
#include <stdexcept>

namespace rubberband {

PlacementController::PlacementController(int gpus_per_node, PlacementStrategy strategy)
    : gpus_per_node_(gpus_per_node), strategy_(strategy) {
  if (gpus_per_node < 1) {
    throw std::invalid_argument("nodes must have at least one GPU");
  }
}

void PlacementController::AddNode(PlacementNodeId id) {
  if (!nodes_.emplace(id, PlacementNode{id, gpus_per_node_, {}}).second) {
    throw std::logic_error("node already in cluster");
  }
}

void PlacementController::RemoveNode(PlacementNodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    throw std::logic_error("removing unknown node");
  }
  if (it->second.UsedGpus() > 0) {
    throw std::logic_error("removing a node that still hosts trial workers");
  }
  nodes_.erase(it);
  unschedulable_.erase(id);
}

void PlacementController::SetUnschedulable(PlacementNodeId id, bool unschedulable) {
  if (nodes_.find(id) == nodes_.end()) {
    throw std::logic_error("marking unknown node unschedulable");
  }
  if (unschedulable) {
    unschedulable_.insert(id);
  } else {
    unschedulable_.erase(id);
  }
}

std::vector<TrialId> PlacementController::EvictNode(PlacementNodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    throw std::logic_error("evicting unknown node");
  }
  std::vector<TrialId> evicted;
  for (const auto& [trial, gpus] : it->second.assigned) {
    evicted.push_back(trial);
  }
  for (TrialId trial : evicted) {
    Evict(trial);
  }
  nodes_.erase(id);
  unschedulable_.erase(id);
  return evicted;
}

int PlacementController::MinSpan(int gpus) const {
  return (gpus + gpus_per_node_ - 1) / gpus_per_node_;
}

void PlacementController::Evict(TrialId trial) {
  for (const WorkerAssignment& assignment : plan_.Assignments(trial)) {
    nodes_.at(assignment.node).assigned.erase(trial);
  }
  plan_.RemoveTrial(trial);
}

PlacementNode* PlacementController::FindBestFit(int gpus) {
  PlacementNode* best = nullptr;
  for (auto& [id, node] : nodes_) {
    if (unschedulable_.count(id) > 0) {
      continue;
    }
    const int free = node.FreeGpus();
    if (free >= gpus && (best == nullptr || free < best->FreeGpus())) {
      best = &node;
    }
  }
  return best;
}

bool PlacementController::TryMakeSpace(PlacementNode& node, int gpus, int incoming_alloc,
                                       const std::set<TrialId>& prot,
                                       std::vector<TrialId>& displaced) {
  // Check feasibility first: evicting every unprotected, smaller trial —
  // would that free enough?
  std::vector<std::pair<int, TrialId>> evictable;  // (gpus on node, trial)
  int reclaimable = node.FreeGpus();
  for (const auto& [trial, held] : node.assigned) {
    if (prot.count(trial) > 0) {
      continue;
    }
    if (plan_.TrialGpus(trial) >= incoming_alloc) {
      continue;  // only smaller trials may be displaced
    }
    evictable.emplace_back(held, trial);
    reclaimable += held;
  }
  if (reclaimable < gpus) {
    return false;
  }
  // Evict the smallest holdings first until the unit fits.
  std::sort(evictable.begin(), evictable.end());
  for (const auto& [held, trial] : evictable) {
    if (node.FreeGpus() >= gpus) {
      break;
    }
    Evict(trial);
    displaced.push_back(trial);
  }
  return node.FreeGpus() >= gpus;
}

PlacementResult PlacementController::PlaceScattered(const std::map<TrialId, int>& allocations) {
  // Drop every stale placement, then hand out GPUs one at a time cycling
  // through nodes — no locality preference whatsoever.
  std::vector<TrialId> stale;
  for (const auto& [trial, assignments] : plan_.all()) {
    auto it = allocations.find(trial);
    if (it == allocations.end() || plan_.TrialGpus(trial) != it->second) {
      stale.push_back(trial);
    }
  }
  for (TrialId trial : stale) {
    Evict(trial);
  }

  PlacementResult result;
  auto cursor = nodes_.begin();
  for (const auto& [trial, gpus] : allocations) {
    if (plan_.TrialGpus(trial) == gpus) {
      continue;
    }
    int remaining = gpus;
    int scanned = 0;
    const int total_nodes = static_cast<int>(nodes_.size());
    while (remaining > 0 && scanned <= total_nodes) {
      if (cursor == nodes_.end()) {
        cursor = nodes_.begin();
      }
      if (unschedulable_.count(cursor->first) == 0 && cursor->second.FreeGpus() > 0) {
        cursor->second.assigned[trial] += 1;
        plan_.Assign(trial, cursor->first, 1);
        --remaining;
        scanned = 0;
      } else {
        ++scanned;
      }
      ++cursor;
    }
    if (remaining > 0) {
      Evict(trial);
      result.unplaced.push_back(trial);
    }
  }
  result.plan = plan_;
  return result;
}

PlacementResult PlacementController::Place(const std::map<TrialId, int>& allocations,
                                           const std::set<TrialId>& reserved) {
  if (strategy_ == PlacementStrategy::kScatter) {
    return PlaceScattered(allocations);
  }
  // Remove discrepancies: drop placements of trials that are gone or whose
  // allocation changed (locked trials stay untouched).
  std::vector<TrialId> stale;
  for (const auto& [trial, assignments] : plan_.all()) {
    auto it = allocations.find(trial);
    const bool gone = it == allocations.end();
    const bool changed = !gone && plan_.TrialGpus(trial) != it->second;
    if ((gone || changed) && reserved.count(trial) == 0) {
      stale.push_back(trial);
    }
  }
  for (TrialId trial : stale) {
    Evict(trial);
  }

  // Queue every trial not currently satisfied, largest allocation first.
  std::vector<TrialId> to_move;
  for (const auto& [trial, gpus] : allocations) {
    if (plan_.TrialGpus(trial) != gpus && reserved.count(trial) == 0) {
      to_move.push_back(trial);
    }
  }
  std::sort(to_move.begin(), to_move.end(), [&](TrialId a, TrialId b) {
    const int ga = allocations.at(a);
    const int gb = allocations.at(b);
    return ga != gb ? ga > gb : a < b;
  });

  std::set<TrialId> placed_this_epoch(reserved.begin(), reserved.end());
  PlacementResult result;

  // The queue can grow as displaced trials re-enter; index loop.
  for (size_t qi = 0; qi < to_move.size(); ++qi) {
    const TrialId trial = to_move[qi];
    const int target = allocations.at(trial);
    if (plan_.TrialGpus(trial) == target) {
      continue;  // re-queued trial that is in fact satisfied
    }
    if (plan_.HasTrial(trial)) {
      Evict(trial);  // partial/stale placement from a displacement
    }

    int remaining = target;
    bool failed = false;
    while (remaining > 0) {
      const int unit = std::min(remaining, gpus_per_node_);
      PlacementNode* node = FindBestFit(unit);
      if (node == nullptr) {
        // Displacement pass: consider roomy nodes first.
        std::vector<PlacementNode*> ordered;
        for (auto& [id, candidate] : nodes_) {
          if (unschedulable_.count(id) > 0) {
            continue;
          }
          ordered.push_back(&candidate);
        }
        std::sort(ordered.begin(), ordered.end(), [](PlacementNode* a, PlacementNode* b) {
          return a->FreeGpus() != b->FreeGpus() ? a->FreeGpus() > b->FreeGpus() : a->id < b->id;
        });
        for (PlacementNode* candidate : ordered) {
          std::vector<TrialId> displaced;
          if (TryMakeSpace(*candidate, unit, target, placed_this_epoch, displaced)) {
            node = candidate;
            for (TrialId d : displaced) {
              to_move.push_back(d);
            }
            break;
          }
        }
      }
      if (node == nullptr) {
        // Split fallback: no node can host the whole gang chunk, so scatter
        // the remaining GPUs across whatever free capacity exists. The
        // trial ends up non-colocated and pays the cross-node penalty —
        // still preferable to not running at all (and it is what a plan
        // whose gang size fragments the nodes, e.g. 3-GPU gangs on 4-GPU
        // instances, implies).
        int free_total = 0;
        for (const auto& [id, candidate] : nodes_) {
          if (unschedulable_.count(id) > 0) {
            continue;
          }
          free_total += candidate.FreeGpus();
        }
        if (free_total < remaining) {
          failed = true;
          break;
        }
        for (auto& [id, candidate] : nodes_) {
          if (unschedulable_.count(id) > 0) {
            continue;
          }
          const int take = std::min(candidate.FreeGpus(), remaining);
          if (take > 0) {
            candidate.assigned[trial] += take;
            plan_.Assign(trial, id, take);
            remaining -= take;
          }
          if (remaining == 0) {
            break;
          }
        }
        continue;
      }
      node->assigned[trial] += unit;
      plan_.Assign(trial, node->id, unit);
      remaining -= unit;
    }

    if (failed) {
      Evict(trial);  // roll back any partial assignment
      result.unplaced.push_back(trial);
    } else {
      placed_this_epoch.insert(trial);
    }
  }

  result.plan = plan_;
  return result;
}

std::vector<PlacementNodeId> PlacementController::IdleNodes() const {
  std::vector<PlacementNodeId> idle;
  for (const auto& [id, node] : nodes_) {
    if (node.UsedGpus() == 0) {
      idle.push_back(id);
    }
  }
  return idle;
}

bool PlacementController::IsColocated(TrialId trial) const {
  const int gpus = plan_.TrialGpus(trial);
  if (gpus == 0) {
    return false;
  }
  return plan_.TrialSpan(trial) <= MinSpan(gpus);
}

}  // namespace rubberband
