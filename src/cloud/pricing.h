// Cloud pricing policy (paper section 4.1, "Cost modeling").
//
// Three modeled parameters drive total job cost: compute price (carried by
// the InstanceType), billing granularity (per-instance vs per-function), and
// data-ingress price per GB. All major providers bill per-second with a
// 60-second minimum per acquisition, which the policy reproduces.

#ifndef SRC_CLOUD_PRICING_H_
#define SRC_CLOUD_PRICING_H_

#include <string>

#include "src/common/money.h"
#include "src/common/time.h"

namespace rubberband {

enum class BillingModel {
  // Traditional instance billing: an instance is charged from launch until
  // termination, whether or not its GPUs are doing useful work (idle
  // straggler-wait time is billed).
  kPerInstance,
  // Serverless-style billing that charges only for the resources a task
  // actually holds while it runs (approximates per-function pricing trends).
  kPerFunction,
};

std::string ToString(BillingModel model);

struct PricingPolicy {
  BillingModel billing = BillingModel::kPerInstance;
  // Minimum charge applied to each instance acquisition (per-instance mode).
  Seconds minimum_billed_seconds = 60.0;
  // Ingress price per GB of dataset downloaded to each instance. Zero within
  // a region; up to ~$0.16/GB in the paper's sweep.
  Money data_price_per_gb;
};

// Spot (pre-emptible) capacity: much cheaper than on-demand, but instances
// can be reclaimed by the provider at any time. The paper's evaluation uses
// on-demand (GPU spot prices are stable but reclamation interrupts
// training); the executor supports spot as an extension — trials restart
// from their last checkpoint on a replacement instance, hedged by the
// reclamation warning (eager checkpoints) and on-demand fallback when the
// market rejects capacity or storms.
struct SpotMarket {
  bool enabled = false;
  // Baseline spot price as a fraction of the on-demand price (~0.3 for the
  // p3 family). The time-varying trace multiplies on top of this.
  double discount = 0.3;
  // Mean time between reclamations per instance (exponentially
  // distributed) at price multiplier 1.0. <= 0 disables the hazard
  // entirely — no reclamations and no draws from the provider stream —
  // which is what lets the zero-volatility self-check replay the
  // on-demand baseline bit-identically.
  Seconds mean_time_to_preemption = 4.0 * 3600.0;

  // Price trace: the spot price moves as a regime-switching multiplicative
  // random walk around the discounted base price. Every price_interval_s
  // the multiplier takes a log-normal step of scale `volatility` (tripled,
  // with upward drift, while the market is in its turbulent regime), then
  // clamps to [price_floor, price_cap]. volatility == 0 keeps the trace
  // flat at 1.0 and forks no price stream.
  double volatility = 0.0;
  Seconds price_interval_s = 300.0;
  double price_floor = 0.5;
  double price_cap = 2.5;
  // Per-step probability of flipping between the calm and turbulent regime.
  double regime_flip_probability = 0.05;

  // Couples the per-instance reclamation hazard to the price multiplier
  // sampled at launch: the expected lifetime scales as multiplier^coupling,
  // so cheap capacity (multiplier < 1) is reclaimed sooner. 0 = hazard
  // independent of price.
  double hazard_coupling = 0.0;

  // Correlated reclamation storms: every Exponential(storm_mean_interval_s)
  // the provider sweeps ceil(storm_fraction * ready spot instances) in a
  // single event (the oldest first, mimicking a capacity pool being drained
  // for on-demand customers). 0 = no storms.
  Seconds storm_mean_interval_s = 0.0;
  double storm_fraction = 0.25;

  // Maximum concurrently held spot instances in this family (launching +
  // ready). Requests beyond the limit are rejected after the queuing delay
  // and flagged as capacity rejections so callers can fall back to
  // on-demand instead of retrying a market that is out of machines.
  // 0 = unlimited.
  int capacity_limit = 0;

  // Providers announce a reclamation this long before taking the instance
  // (EC2's two-minute warning). The executor checkpoints eagerly on the
  // warning so only the last warning-window of work can be lost. 0 = the
  // instance disappears without notice.
  Seconds reclamation_warning_s = 120.0;

  bool HazardEnabled() const { return enabled && mean_time_to_preemption > 0.0; }
  bool PriceVaries() const { return enabled && volatility > 0.0; }
  bool StormsEnabled() const { return enabled && storm_mean_interval_s > 0.0; }
};

}  // namespace rubberband

#endif  // SRC_CLOUD_PRICING_H_
