// Cloud pricing policy (paper section 4.1, "Cost modeling").
//
// Three modeled parameters drive total job cost: compute price (carried by
// the InstanceType), billing granularity (per-instance vs per-function), and
// data-ingress price per GB. All major providers bill per-second with a
// 60-second minimum per acquisition, which the policy reproduces.

#ifndef SRC_CLOUD_PRICING_H_
#define SRC_CLOUD_PRICING_H_

#include <string>

#include "src/common/money.h"
#include "src/common/time.h"

namespace rubberband {

enum class BillingModel {
  // Traditional instance billing: an instance is charged from launch until
  // termination, whether or not its GPUs are doing useful work (idle
  // straggler-wait time is billed).
  kPerInstance,
  // Serverless-style billing that charges only for the resources a task
  // actually holds while it runs (approximates per-function pricing trends).
  kPerFunction,
};

std::string ToString(BillingModel model);

struct PricingPolicy {
  BillingModel billing = BillingModel::kPerInstance;
  // Minimum charge applied to each instance acquisition (per-instance mode).
  Seconds minimum_billed_seconds = 60.0;
  // Ingress price per GB of dataset downloaded to each instance. Zero within
  // a region; up to ~$0.16/GB in the paper's sweep.
  Money data_price_per_gb;
};

// Spot (pre-emptible) capacity: much cheaper than on-demand, but instances
// can be reclaimed by the provider at any time. The paper's evaluation uses
// on-demand (GPU spot prices are stable but reclamation interrupts
// training); the executor supports spot as an extension — trials restart
// from their last checkpoint on a replacement instance.
struct SpotMarket {
  bool enabled = false;
  // Spot price as a fraction of the on-demand price (~0.3 for p3 family).
  double discount = 0.3;
  // Mean time between reclamations per instance (exponentially
  // distributed).
  Seconds mean_time_to_preemption = 4.0 * 3600.0;
};

}  // namespace rubberband

#endif  // SRC_CLOUD_PRICING_H_
