// SpotPriceTrace: deterministic time-varying spot price multiplier.
//
// The trace is a regime-switching multiplicative random walk (calm vs
// turbulent, SpotMarket::regime_flip_probability per step) advanced by the
// cloud's market clock. It remembers every breakpoint it produced, so
// billing can integrate the exact piecewise-constant price over an
// instance's lifetime instead of sampling it at termination — two instances
// covering the same interval always pay the same rate.

#ifndef SRC_CLOUD_SPOT_PRICE_H_
#define SRC_CLOUD_SPOT_PRICE_H_

#include <utility>
#include <vector>

#include "src/cloud/pricing.h"
#include "src/common/rng.h"
#include "src/common/time.h"

namespace rubberband {

class SpotPriceTrace {
 public:
  SpotPriceTrace(const SpotMarket& market, Rng rng);

  // Advances the walk by one step taking effect at `now` (which must not
  // precede the previous breakpoint) and returns the new multiplier.
  double Step(Seconds now);

  // The multiplier currently in effect (after the latest Step).
  double current() const { return breakpoints_.back().second; }

  // The multiplier in effect at time `t`.
  double MultiplierAt(Seconds t) const;

  // Time-weighted average multiplier over [a, b] — the exact integral of
  // the piecewise-constant trace, used to price a billing interval.
  double AverageOver(Seconds a, Seconds b) const;

  int num_steps() const { return static_cast<int>(breakpoints_.size()) - 1; }

 private:
  SpotMarket market_;
  Rng rng_;
  bool turbulent_ = false;
  // (effective-from time, multiplier), ascending; starts at (0, 1.0).
  std::vector<std::pair<Seconds, double>> breakpoints_;
};

}  // namespace rubberband

#endif  // SRC_CLOUD_SPOT_PRICE_H_
