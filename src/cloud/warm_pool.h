// WarmPool: warm-instance reuse across tuning jobs (the multi-tenant
// service's answer to Figure 12's init-latency tax).
//
// Sits between per-job cluster managers and the cloud provider. Releases
// are intercepted: instead of terminating, the instance is parked — still
// billing — in a bounded pool. The next job's request is served from the
// pool with zero queuing/init delay (a "warm hit"); only misses fall
// through to real provisioning. Parked instances that idle past the TTL
// are terminated for real, bounding the idle-billing exposure. The pool is
// LIFO: the most recently parked (hottest) instance is handed out first,
// so the oldest entries age toward their TTL and expire.
//
// Warm hits skip dataset re-ingress: the service's jobs draw from a shared
// workload catalog and a recycled instance is assumed to keep its dataset
// cache (ExpoCloud-style worker reuse).

#ifndef SRC_CLOUD_WARM_POOL_H_
#define SRC_CLOUD_WARM_POOL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/cloud/simulated_cloud.h"

namespace rubberband {

struct WarmPoolConfig {
  // Maximum simultaneously parked instances; 0 disables pooling entirely
  // (every release terminates — the cold baseline).
  int max_parked = 0;
  // How long a parked instance may idle before it is terminated for real.
  Seconds max_idle_seconds = 300.0;
};

struct WarmPoolStats {
  int64_t requests = 0;       // instances asked for through the pool
  int64_t warm_hits = 0;      // served from parked capacity
  int64_t cold_misses = 0;    // fell through to real provisioning
  int64_t parked = 0;         // releases the pool absorbed
  int64_t released_cold = 0;  // releases terminated (pool full or disabled)
  int64_t expired = 0;        // parked instances that idled out
  int64_t preempted_parked = 0;
  // Parked instances evicted early on their reclamation warning.
  int64_t warned_parked = 0;
  // Provisioning latency (queuing + init) the warm hits did not pay.
  double init_seconds_saved = 0.0;
  // Instance-seconds spent parked (the price of keeping capacity warm).
  double parked_idle_seconds = 0.0;

  double HitRate() const {
    return requests > 0 ? static_cast<double>(warm_hits) / static_cast<double>(requests) : 0.0;
  }
};

class WarmPool : public InstanceSource {
 public:
  // Records cloud.warm.* metrics into `registry` (defaults to the cloud's
  // own registry so pool statistics travel with provider statistics).
  WarmPool(Simulation& sim, SimulatedCloud& cloud, WarmPoolConfig config,
           MetricsRegistry* registry = nullptr);

  WarmPool(const WarmPool&) = delete;
  WarmPool& operator=(const WarmPool&) = delete;

  using InstanceSource::RequestInstances;

  // Serves warm instances first (ready on the next event-queue tick), then
  // falls through to the cloud for the remainder. Warm hits never fail;
  // `on_failure` is forwarded with the slots that reach the provider.
  void RequestInstances(int count, double dataset_gb, std::function<void(InstanceId)> on_ready,
                        std::function<void()> on_failure) override;

  // Market-aware variant: the market only steers slots that fall through
  // to real provisioning — a warm hit hands out whatever is parked (the
  // pool does not segregate markets; recycled capacity is recycled
  // capacity).
  void RequestInstances(int count, double dataset_gb, Market market,
                        std::function<void(InstanceId)> on_ready,
                        std::function<void()> on_failure) override;

  // Parks the instance (or terminates it when the pool is full/disabled).
  void ReleaseInstance(InstanceId id) override;

  // Quarantined hardware is terminated for real — never parked, so no later
  // tenant can draw a known straggler out of the pool.
  void DiscardInstance(InstanceId id) override;

  // The provider reclaimed a spot instance. Returns true if it was parked
  // here (the pool drops it); false if some job holds it.
  bool OnPreempted(InstanceId id);

  // The provider announced it will reclaim a spot instance. If it is
  // parked here the pool terminates it immediately — a doomed machine must
  // not be handed to the next tenant, and terminating early stops the
  // billing for the warning window. Returns true if it was parked.
  bool OnWarned(InstanceId id);

  // Terminates everything still parked (end-of-run cleanup).
  void Drain();

  int num_parked() const { return static_cast<int>(parked_.size()); }
  // A point-in-time view assembled from the registry handles (the registry
  // is the single source of truth).
  WarmPoolStats stats() const;

 private:
  struct ParkedInstance {
    Seconds parked_at = 0.0;
    // Bumped every time the same id is re-parked; stale TTL events no-op.
    int64_t generation = 0;
    // The pending TTL-expiry event: cancelled when the entry leaves the
    // pool early (claimed, preempted, drained), so dead timers never sit in
    // the event queue. The generation check stays as defense in depth.
    EventHandle ttl_event;
  };

  InstanceId PopHottest();

  Simulation& sim_;
  SimulatedCloud& cloud_;
  WarmPoolConfig config_;
  // Park order (LIFO stack of ids); parked_ holds the authoritative state.
  std::vector<InstanceId> stack_;
  std::map<InstanceId, ParkedInstance> parked_;
  int64_t next_generation_ = 0;
  // cloud.warm.* registry handles. warm_hits / init_seconds_saved go *down*
  // when a handed-over instance turns out to be reclaimed (the up-down
  // counter / gauge-subtract case the metric types exist for).
  struct MetricHandles {
    Counter* requests = nullptr;
    Counter* warm_hits = nullptr;
    Counter* cold_misses = nullptr;
    Counter* parked = nullptr;
    Counter* released_cold = nullptr;
    Counter* expired = nullptr;
    Counter* preempted_parked = nullptr;
    Counter* warned_parked = nullptr;
    Gauge* init_seconds_saved = nullptr;
    Gauge* parked_idle_seconds = nullptr;
  };
  MetricHandles m_;
};

}  // namespace rubberband

#endif  // SRC_CLOUD_WARM_POOL_H_
