#include "src/cloud/warm_pool.h"

#include <algorithm>
#include <utility>

namespace rubberband {

WarmPool::WarmPool(Simulation& sim, SimulatedCloud& cloud, WarmPoolConfig config,
                   MetricsRegistry* registry)
    : sim_(sim), cloud_(cloud), config_(config) {
  MetricsScope scope =
      (registry != nullptr ? registry : &cloud.metrics())->scope("cloud").Sub("warm");
  m_.requests = scope.GetCounter("requests");
  m_.warm_hits = scope.GetCounter("warm_hits");
  m_.cold_misses = scope.GetCounter("cold_misses");
  m_.parked = scope.GetCounter("parked");
  m_.released_cold = scope.GetCounter("released_cold");
  m_.expired = scope.GetCounter("expired");
  m_.preempted_parked = scope.GetCounter("preempted_parked");
  m_.warned_parked = scope.GetCounter("warned_parked");
  m_.init_seconds_saved = scope.GetGauge("init_seconds_saved");
  m_.parked_idle_seconds = scope.GetGauge("parked_idle_seconds");
}

WarmPoolStats WarmPool::stats() const {
  WarmPoolStats stats;
  stats.requests = m_.requests->value();
  stats.warm_hits = m_.warm_hits->value();
  stats.cold_misses = m_.cold_misses->value();
  stats.parked = m_.parked->value();
  stats.released_cold = m_.released_cold->value();
  stats.expired = m_.expired->value();
  stats.preempted_parked = m_.preempted_parked->value();
  stats.warned_parked = m_.warned_parked->value();
  stats.init_seconds_saved = m_.init_seconds_saved->value();
  stats.parked_idle_seconds = m_.parked_idle_seconds->value();
  return stats;
}

InstanceId WarmPool::PopHottest() {
  const InstanceId id = stack_.back();
  stack_.pop_back();
  auto it = parked_.find(id);
  obs::Add(m_.parked_idle_seconds, sim_.now() - it->second.parked_at);
  sim_.Cancel(it->second.ttl_event);
  parked_.erase(it);
  return id;
}

void WarmPool::RequestInstances(int count, double dataset_gb,
                                std::function<void(InstanceId)> on_ready,
                                std::function<void()> on_failure) {
  RequestInstances(count, dataset_gb,
                   cloud_.profile().spot.enabled ? Market::kSpot : Market::kOnDemand,
                   std::move(on_ready), std::move(on_failure));
}

void WarmPool::RequestInstances(int count, double dataset_gb, Market market,
                                std::function<void(InstanceId)> on_ready,
                                std::function<void()> on_failure) {
  obs::Inc(m_.requests, count);
  int remaining = count;
  while (remaining > 0 && !stack_.empty()) {
    const InstanceId id = PopHottest();
    obs::Inc(m_.warm_hits);
    obs::Add(m_.init_seconds_saved, cloud_.profile().provisioning.MeanReadyLatency());
    --remaining;
    // Hand over on the next tick so the caller's async contract (callback
    // after RequestInstances returns) holds for warm hits too.
    sim_.ScheduleIn(0.0, [this, on_ready, on_failure, id, dataset_gb, market] {
      if (!cloud_.IsReady(id)) {
        // Reclaimed inside the handover tick (spot): downgrade to a miss.
        obs::Inc(m_.cold_misses);
        obs::Inc(m_.warm_hits, -1);
        obs::Add(m_.init_seconds_saved, -cloud_.profile().provisioning.MeanReadyLatency());
        cloud_.RequestInstances(1, dataset_gb, market, on_ready, on_failure);
        return;
      }
      on_ready(id);
    });
  }
  if (remaining > 0) {
    obs::Inc(m_.cold_misses, remaining);
    cloud_.RequestInstances(remaining, dataset_gb, market, std::move(on_ready),
                            std::move(on_failure));
  }
}

void WarmPool::ReleaseInstance(InstanceId id) {
  if (config_.max_parked <= 0 || num_parked() >= config_.max_parked) {
    obs::Inc(m_.released_cold);
    cloud_.TerminateInstance(id);
    return;
  }
  obs::Inc(m_.parked);
  const int64_t generation = ++next_generation_;
  ParkedInstance& entry = parked_[id];
  entry = ParkedInstance{sim_.now(), generation, EventHandle{}};
  stack_.push_back(id);
  entry.ttl_event = sim_.ScheduleIn(config_.max_idle_seconds, [this, id, generation] {
    auto it = parked_.find(id);
    if (it == parked_.end() || it->second.generation != generation) {
      return;  // re-acquired (and possibly re-parked) since; not our entry
    }
    obs::Add(m_.parked_idle_seconds, sim_.now() - it->second.parked_at);
    parked_.erase(it);
    stack_.erase(std::find(stack_.begin(), stack_.end(), id));
    obs::Inc(m_.expired);
    cloud_.TerminateInstance(id);
  });
}

void WarmPool::DiscardInstance(InstanceId id) {
  obs::Inc(m_.released_cold);
  cloud_.TerminateInstance(id);
}

bool WarmPool::OnPreempted(InstanceId id) {
  auto it = parked_.find(id);
  if (it == parked_.end()) {
    return false;
  }
  obs::Add(m_.parked_idle_seconds, sim_.now() - it->second.parked_at);
  sim_.Cancel(it->second.ttl_event);
  parked_.erase(it);
  stack_.erase(std::find(stack_.begin(), stack_.end(), id));
  obs::Inc(m_.preempted_parked);
  return true;  // the provider already closed the billing interval
}

bool WarmPool::OnWarned(InstanceId id) {
  auto it = parked_.find(id);
  if (it == parked_.end()) {
    return false;
  }
  obs::Add(m_.parked_idle_seconds, sim_.now() - it->second.parked_at);
  sim_.Cancel(it->second.ttl_event);
  parked_.erase(it);
  stack_.erase(std::find(stack_.begin(), stack_.end(), id));
  obs::Inc(m_.warned_parked);
  // Still ours until the provider takes it: terminate for real, which also
  // stops the meter before the doomed warning window runs out.
  cloud_.TerminateInstance(id);
  return true;
}

void WarmPool::Drain() {
  while (!stack_.empty()) {
    cloud_.TerminateInstance(PopHottest());
  }
}

}  // namespace rubberband
