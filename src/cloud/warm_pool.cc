#include "src/cloud/warm_pool.h"

#include <algorithm>
#include <utility>

namespace rubberband {

WarmPool::WarmPool(Simulation& sim, SimulatedCloud& cloud, WarmPoolConfig config)
    : sim_(sim), cloud_(cloud), config_(config) {}

InstanceId WarmPool::PopHottest() {
  const InstanceId id = stack_.back();
  stack_.pop_back();
  auto it = parked_.find(id);
  stats_.parked_idle_seconds += sim_.now() - it->second.parked_at;
  parked_.erase(it);
  return id;
}

void WarmPool::RequestInstances(int count, double dataset_gb,
                                std::function<void(InstanceId)> on_ready,
                                std::function<void()> on_failure) {
  stats_.requests += count;
  int remaining = count;
  while (remaining > 0 && !stack_.empty()) {
    const InstanceId id = PopHottest();
    ++stats_.warm_hits;
    stats_.init_seconds_saved += cloud_.profile().provisioning.MeanReadyLatency();
    --remaining;
    // Hand over on the next tick so the caller's async contract (callback
    // after RequestInstances returns) holds for warm hits too.
    sim_.ScheduleIn(0.0, [this, on_ready, on_failure, id, dataset_gb] {
      if (!cloud_.IsReady(id)) {
        // Reclaimed inside the handover tick (spot): downgrade to a miss.
        ++stats_.cold_misses;
        --stats_.warm_hits;
        stats_.init_seconds_saved -= cloud_.profile().provisioning.MeanReadyLatency();
        cloud_.RequestInstances(1, dataset_gb, on_ready, on_failure);
        return;
      }
      on_ready(id);
    });
  }
  if (remaining > 0) {
    stats_.cold_misses += remaining;
    cloud_.RequestInstances(remaining, dataset_gb, std::move(on_ready), std::move(on_failure));
  }
}

void WarmPool::ReleaseInstance(InstanceId id) {
  if (config_.max_parked <= 0 || num_parked() >= config_.max_parked) {
    ++stats_.released_cold;
    cloud_.TerminateInstance(id);
    return;
  }
  ++stats_.parked;
  const int64_t generation = ++next_generation_;
  parked_[id] = ParkedInstance{sim_.now(), generation};
  stack_.push_back(id);
  sim_.ScheduleIn(config_.max_idle_seconds, [this, id, generation] {
    auto it = parked_.find(id);
    if (it == parked_.end() || it->second.generation != generation) {
      return;  // re-acquired (and possibly re-parked) since; not our entry
    }
    stats_.parked_idle_seconds += sim_.now() - it->second.parked_at;
    parked_.erase(it);
    stack_.erase(std::find(stack_.begin(), stack_.end(), id));
    ++stats_.expired;
    cloud_.TerminateInstance(id);
  });
}

void WarmPool::DiscardInstance(InstanceId id) {
  ++stats_.released_cold;
  cloud_.TerminateInstance(id);
}

bool WarmPool::OnPreempted(InstanceId id) {
  auto it = parked_.find(id);
  if (it == parked_.end()) {
    return false;
  }
  stats_.parked_idle_seconds += sim_.now() - it->second.parked_at;
  parked_.erase(it);
  stack_.erase(std::find(stack_.begin(), stack_.end(), id));
  ++stats_.preempted_parked;
  return true;  // the provider already closed the billing interval
}

void WarmPool::Drain() {
  while (!stack_.empty()) {
    cloud_.TerminateInstance(PopHottest());
  }
}

}  // namespace rubberband
