// CloudProfile: the "cloud profile C" input of Algorithms 1 and 2 — the
// complete parameterization of the target cloud: which instance type the
// user selected, how it is billed, and how long provisioning takes.

#ifndef SRC_CLOUD_CLOUD_PROFILE_H_
#define SRC_CLOUD_CLOUD_PROFILE_H_

#include "src/cloud/fault.h"
#include "src/cloud/instance.h"
#include "src/cloud/pricing.h"
#include "src/cloud/provisioning.h"

namespace rubberband {

struct CloudProfile {
  InstanceType instance = P3_8xlarge();
  PricingPolicy pricing;
  ProvisioningModel provisioning;
  SpotMarket spot;
  FaultProfile fault;

  int gpus_per_instance() const { return instance.gpus; }

  // The instance type with the effective (spot-discounted) price applied.
  InstanceType BilledInstance() const {
    if (!spot.enabled) {
      return instance;
    }
    return instance.WithPrice(instance.price_per_hour * spot.discount);
  }
};

}  // namespace rubberband

#endif  // SRC_CLOUD_CLOUD_PROFILE_H_
