#include "src/cloud/instance.h"

namespace rubberband {

InstanceType P3_2xlarge() { return InstanceType{"p3.2xlarge", 1, Money::FromCents(306)}; }

InstanceType P3_8xlarge() { return InstanceType{"p3.8xlarge", 4, Money::FromCents(1224)}; }

InstanceType P3_16xlarge() { return InstanceType{"p3.16xlarge", 8, Money::FromCents(2448)}; }

InstanceType R5_4xlarge() { return InstanceType{"r5.4xlarge", 0, Money::FromCents(101)}; }

std::optional<InstanceType> FindInstanceType(const std::string& name) {
  for (const InstanceType& type : {P3_2xlarge(), P3_8xlarge(), P3_16xlarge(), R5_4xlarge()}) {
    if (type.name == name) {
      return type;
    }
  }
  return std::nullopt;
}

}  // namespace rubberband
