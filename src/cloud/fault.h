// Fault model: the ways a real provider misbehaves that the paper's
// provider assumption ("provisioning always succeeds") papers over.
//
// Five fault classes, all parameters of the cloud profile and all driven by
// the deterministic Rng so faulty runs replay bit-identically from a seed:
//   * provisioning request failures — the provider rejects the request
//     after the queuing delay (EC2's InsufficientInstanceCapacity);
//   * init-time failures — the instance launches (and bills) but dies
//     before becoming ready;
//   * hardware crashes — ready instances fail with an exponential
//     mean-time-between-failures, independent of the spot market;
//   * checkpoint-transfer failures — a worker gang's checkpoint fetch must
//     be retried;
//   * persistent stragglers (gray failures) — an instance launches, stays
//     alive, and silently runs every training iteration slower by a factor
//     drawn once at launch. Gang-synchronous training pays that factor on
//     every sync, which is why gray failures dominate deadline misses.

#ifndef SRC_CLOUD_FAULT_H_
#define SRC_CLOUD_FAULT_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace rubberband {

struct FaultProfile {
  // Probability a provisioning request is rejected (after the queuing
  // delay) instead of launching an instance. Nothing is billed.
  double provision_failure_rate = 0.0;
  // Probability a launched instance dies during init. The launch-to-death
  // interval is billed (the provider charges while init scripts run).
  double init_failure_rate = 0.0;
  // Mean time between hardware crashes on a ready instance (exponentially
  // distributed, like spot reclamation but cause-independent); 0 disables.
  Seconds mtbf = 0.0;
  // Probability a checkpoint fetch fails and must be retried by the gang.
  double checkpoint_failure_rate = 0.0;
  // Probability a launched instance is a persistent straggler: alive and
  // billing, but every iteration it hosts runs slower by a factor drawn
  // uniformly from [straggler_factor_min, straggler_factor_max] at launch.
  double straggler_rate = 0.0;
  double straggler_factor_min = 2.0;
  double straggler_factor_max = 4.0;

  bool Any() const {
    return provision_failure_rate > 0.0 || init_failure_rate > 0.0 || mtbf > 0.0 ||
           checkpoint_failure_rate > 0.0 || straggler_rate > 0.0;
  }
};

// Samples fault occurrences from a dedicated random stream and counts what
// it injected. Methods never draw when their fault class is disabled, so a
// profile with no faults leaves every random stream bit-identical to a
// build without the injector.
class FaultInjector {
 public:
  FaultInjector(const FaultProfile& profile, Rng rng) : profile_(profile), rng_(rng) {}

  bool ProvisionFails();
  bool InitFails();
  bool CheckpointFetchFails();

  bool crashes_enabled() const { return profile_.mtbf > 0.0; }
  Seconds SampleTimeToCrash();

  bool stragglers_enabled() const { return profile_.straggler_rate > 0.0; }
  // Slowdown factor of a freshly launched instance: 1.0 for a healthy one,
  // otherwise a persistent factor from the profile's distribution. Never
  // draws when the class is disabled.
  double SampleStragglerFactor();

  int num_provision_failures() const { return num_provision_failures_; }
  int num_init_failures() const { return num_init_failures_; }
  int num_checkpoint_failures() const { return num_checkpoint_failures_; }
  int num_stragglers() const { return num_stragglers_; }

  const FaultProfile& profile() const { return profile_; }

 private:
  bool Sample(double rate, int& counter);

  FaultProfile profile_;
  Rng rng_;
  int num_provision_failures_ = 0;
  int num_init_failures_ = 0;
  int num_checkpoint_failures_ = 0;
  int num_stragglers_ = 0;
};

}  // namespace rubberband

#endif  // SRC_CLOUD_FAULT_H_
