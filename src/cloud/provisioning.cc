#include "src/cloud/provisioning.h"

// ProvisioningModel is a plain aggregate; this file anchors the target.
