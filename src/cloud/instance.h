// Cloud instance types.
//
// The catalog mirrors the EC2 offerings the paper evaluates on: the p3
// GPU family for workers and r5.4xlarge for the driver/checkpoint host.
// Prices are on-demand us-east-1 prices; every price is a parameter, so
// experiments can override (e.g. Table 1 quotes $7.50/hr for p3.16xlarge).

#ifndef SRC_CLOUD_INSTANCE_H_
#define SRC_CLOUD_INSTANCE_H_

#include <optional>
#include <string>

#include "src/common/money.h"

namespace rubberband {

struct InstanceType {
  std::string name;
  int gpus = 0;
  Money price_per_hour;

  Money PricePerSecond() const { return price_per_hour * (1.0 / 3600.0); }

  // Price of a single GPU for one second; the rate the per-function billing
  // model charges for the resources a function actually holds.
  Money GpuSecondPrice() const {
    return gpus > 0 ? price_per_hour * (1.0 / (3600.0 * gpus)) : Money();
  }

  InstanceType WithPrice(Money new_price_per_hour) const {
    InstanceType copy = *this;
    copy.price_per_hour = new_price_per_hour;
    return copy;
  }
};

// On-demand catalog.
InstanceType P3_2xlarge();   // 1x V100, ~$3.06/hr
InstanceType P3_8xlarge();   // 4x V100, ~$12.24/hr
InstanceType P3_16xlarge();  // 8x V100, ~$24.48/hr
InstanceType R5_4xlarge();   // CPU-only driver host, ~$1.01/hr

std::optional<InstanceType> FindInstanceType(const std::string& name);

}  // namespace rubberband

#endif  // SRC_CLOUD_INSTANCE_H_
