// Provisioning overhead model (paper section 4.1, "Performance modeling").
//
// Two latency sources between "job asks for an instance" and "instance is
// usable": scaling latency (provider-side queuing delay until the instance
// launches) and instance initialization latency (dependency install, joining
// the cluster). Large overheads make mid-job scale-up unattractive, which is
// exactly the effect the Figure 12 sweep studies.

#ifndef SRC_CLOUD_PROVISIONING_H_
#define SRC_CLOUD_PROVISIONING_H_

#include "src/common/distribution.h"

namespace rubberband {

struct ProvisioningModel {
  // Delay from provisioning request to instance launch (billing starts at
  // launch: the provider charges while init scripts run).
  Distribution queuing_delay = Distribution::Constant(0.0);
  // Delay from launch to the instance being ready to run trial workers.
  Distribution init_latency = Distribution::Constant(0.0);

  // Expected request -> ready latency.
  double MeanReadyLatency() const { return queuing_delay.Mean() + init_latency.Mean(); }

  static ProvisioningModel Instant() { return ProvisioningModel{}; }

  static ProvisioningModel Fixed(double queuing_seconds, double init_seconds) {
    return ProvisioningModel{Distribution::Constant(queuing_seconds),
                             Distribution::Constant(init_seconds)};
  }
};

}  // namespace rubberband

#endif  // SRC_CLOUD_PROVISIONING_H_
