#include "src/cloud/simulated_cloud.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

namespace rubberband {

SimulatedCloud::SimulatedCloud(Simulation& sim, CloudProfile profile, MetricsRegistry* registry)
    : sim_(sim),
      profile_(std::move(profile)),
      rng_(sim.rng().Fork()),
      // Only fork a fault stream when faults are configured, so fault-free
      // profiles draw the exact same sequences as before the fault layer
      // existed (bit-identical replays of old seeds).
      faults_(profile_.fault, profile_.fault.Any() ? rng_.Fork() : Rng(0)),
      price_trace_(profile_.spot.PriceVaries()
                       ? std::make_unique<SpotPriceTrace>(profile_.spot, rng_.Fork())
                       : nullptr),
      storm_rng_(profile_.spot.StormsEnabled() ? rng_.Fork() : Rng(0)) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<MetricsRegistry>();
    registry = owned_registry_.get();
  }
  registry_ = registry;
  MetricsScope scope = registry_->scope("cloud");
  m_.requested = scope.GetCounter("instances_requested");
  m_.launched = scope.GetCounter("instances_launched");
  m_.terminated = scope.GetCounter("instances_terminated");
  m_.preempted = scope.GetCounter("instances_preempted");
  m_.crashed = scope.GetCounter("instances_crashed");
  m_.init_failures = scope.GetCounter("init_failures");
  m_.billed_seconds = scope.GetGauge("billed_instance_seconds");
  m_.provision_latency = scope.GetHistogram("provision_latency_seconds");
}

void SimulatedCloud::CloseBillingInterval(Seconds launch, Market market, bool provider_reclaimed) {
  // Spot intervals bill at the discounted base rate scaled by the exact
  // time-average of the price trace over the interval; on-demand intervals
  // (including market-fallback capacity on a spot-enabled profile) bill at
  // full rate.
  double multiplier = 1.0;
  if (market == Market::kSpot && profile_.spot.enabled) {
    multiplier = profile_.spot.discount;
    if (price_trace_) {
      multiplier *= price_trace_->AverageOver(launch, sim_.now());
    }
  }
  meter_.RecordInstanceUsage(launch, sim_.now(), multiplier, provider_reclaimed);
  // Same interval, same order as the meter's own sum, so the gauge
  // reconciles exactly against TotalInstanceSeconds().
  obs::Add(m_.billed_seconds, sim_.now() - launch);
}

Market SimulatedCloud::InstanceMarket(InstanceId id) const {
  auto it = ready_.find(id);
  if (it != ready_.end()) {
    return it->second.market;
  }
  auto pending = pending_launch_.find(id);
  if (pending != pending_launch_.end()) {
    return pending->second.market;
  }
  return Market::kOnDemand;
}

void SimulatedCloud::RequestInstances(int count, double dataset_gb,
                                      std::function<void(InstanceId)> on_ready,
                                      std::function<void()> on_failure) {
  RequestInstances(count, dataset_gb,
                   profile_.spot.enabled ? Market::kSpot : Market::kOnDemand, std::move(on_ready),
                   std::move(on_failure));
}

void SimulatedCloud::RequestInstances(int count, double dataset_gb, Market market,
                                      std::function<void(InstanceId)> on_ready,
                                      std::function<void()> on_failure) {
  if (!profile_.spot.enabled) {
    market = Market::kOnDemand;
  }
  obs::Inc(m_.requested, count);
  const Seconds requested_at = sim_.now();
  if (profile_.spot.enabled) {
    MaybeStartMarketClocks();
  }
  for (int i = 0; i < count; ++i) {
    ++pending_;
    const InstanceId id = next_id_++;
    const Seconds queuing = profile_.provisioning.queuing_delay.Sample(rng_);
    const int64_t epoch = cancel_epoch_;
    if (market == Market::kSpot && profile_.spot.capacity_limit > 0 &&
        spot_held_ >= profile_.spot.capacity_limit) {
      // The family is out of spot capacity: rejected after the queuing
      // delay like any provisioning rejection, but counted separately so
      // callers can fall back to on-demand instead of retrying a market
      // that has no machines.
      sim_.ScheduleAt(sim_.now() + queuing, [this, on_failure, epoch]() {
        if (epoch != cancel_epoch_) {
          return;  // cancelled by TerminateAll
        }
        --pending_;
        ++capacity_rejections_;
        if (on_failure) {
          on_failure();
        }
      });
      continue;
    }
    if (faults_.ProvisionFails()) {
      // Insufficient capacity: the provider rejects the request after the
      // queuing delay. Nothing launched, nothing billed.
      sim_.ScheduleAt(sim_.now() + queuing, [this, on_failure, epoch]() {
        if (epoch != cancel_epoch_) {
          return;  // cancelled by TerminateAll
        }
        --pending_;
        if (on_failure) {
          on_failure();
        }
      });
      continue;
    }
    if (market == Market::kSpot) {
      ++spot_held_;
    }
    const Seconds init = profile_.provisioning.init_latency.Sample(rng_);
    const Seconds launch_at = sim_.now() + queuing;
    const Seconds ready_at = launch_at + init;
    if (dataset_gb > 0.0) {
      meter_.RecordDataIngress(dataset_gb);
    }
    pending_launch_.emplace(id, PendingSlot{launch_at, market});
    if (faults_.InitFails()) {
      // The instance launched (and billed) but died before becoming ready.
      sim_.ScheduleAt(ready_at, [this, id, launch_at, market, on_failure, epoch]() {
        if (epoch != cancel_epoch_) {
          return;
        }
        --pending_;
        pending_launch_.erase(id);
        if (market == Market::kSpot) {
          --spot_held_;
        }
        CloseBillingInterval(launch_at, market, /*provider_reclaimed=*/false);
        obs::Inc(m_.init_failures);
        if (on_failure) {
          on_failure();
        }
      });
      continue;
    }
    // Gray failure: the instance will come up alive but persistently slow.
    // Drawn here (request order) so the fault stream stays deterministic no
    // matter how ready events interleave.
    const double straggler_factor = faults_.SampleStragglerFactor();
    sim_.ScheduleAt(ready_at, [this, id, launch_at, ready_at, market, straggler_factor, on_ready,
                               requested_at, epoch]() {
      if (epoch != cancel_epoch_) {
        return;
      }
      --pending_;
      pending_launch_.erase(id);
      ready_.emplace(id, Instance{launch_at, ready_at, market, /*warned=*/false});
      obs::Inc(m_.launched);
      obs::ObserveSeconds(m_.provision_latency, sim_.now() - requested_at);
      if (straggler_factor != 1.0) {
        straggler_factors_.emplace(id, straggler_factor);
      }
      if (market == Market::kSpot && profile_.spot.HazardEnabled()) {
        SchedulePreemption(id);
      }
      if (faults_.crashes_enabled()) {
        ScheduleCrash(id);
      }
      on_ready(id);
    });
  }
}

void SimulatedCloud::ReclaimInstance(InstanceId id, Counter* counter,
                                     const std::function<void(InstanceId)>& handler,
                                     bool provider_reclaimed) {
  auto it = ready_.find(id);
  if (it == ready_.end()) {
    return;  // already terminated by the job (or lost to the other cause)
  }
  if (it->second.market == Market::kSpot) {
    --spot_held_;
  }
  CloseBillingInterval(it->second.launch, it->second.market, provider_reclaimed);
  ready_.erase(it);
  straggler_factors_.erase(id);
  obs::Inc(counter);
  if (handler) {
    handler(id);
  }
}

void SimulatedCloud::WarnInstance(InstanceId id) {
  auto it = ready_.find(id);
  if (it == ready_.end() || it->second.warned) {
    return;  // gone, or already warned (individual hazard + storm overlap)
  }
  it->second.warned = true;
  ++preemption_warnings_;
  if (on_preemption_warning_) {
    on_preemption_warning_(id);
  }
}

void SimulatedCloud::SchedulePreemption(InstanceId id) {
  Seconds delay = rng_.Exponential(profile_.spot.mean_time_to_preemption);
  if (profile_.spot.hazard_coupling != 0.0 && price_trace_ != nullptr) {
    // Expected lifetime scales as multiplier^coupling at the price level in
    // effect at launch: cheap capacity is the first to be reclaimed when
    // on-demand customers want it back.
    delay *= std::pow(price_trace_->current(), profile_.spot.hazard_coupling);
  }
  const Seconds warning = std::min(profile_.spot.reclamation_warning_s, delay);
  if (warning > 0.0) {
    sim_.ScheduleIn(delay - warning, [this, id]() { WarnInstance(id); });
  }
  sim_.ScheduleIn(delay, [this, id]() {
    ReclaimInstance(id, m_.preempted, on_preempted_, /*provider_reclaimed=*/true);
  });
}

void SimulatedCloud::ScheduleCrash(InstanceId id) {
  const Seconds delay = faults_.SampleTimeToCrash();
  // A crash is not a market reclamation: the interval keeps the normal
  // minimum-charge rule, exactly as the fault benchmarks pinned it.
  sim_.ScheduleIn(delay, [this, id]() {
    ReclaimInstance(id, m_.crashed, on_crashed_, /*provider_reclaimed=*/false);
  });
}

void SimulatedCloud::MaybeStartMarketClocks() {
  if (price_trace_ != nullptr && !price_clock_running_) {
    price_clock_running_ = true;
    sim_.ScheduleIn(profile_.spot.price_interval_s, [this]() { PriceStep(); });
  }
  if (profile_.spot.StormsEnabled() && !storm_clock_running_) {
    storm_clock_running_ = true;
    sim_.ScheduleIn(storm_rng_.Exponential(profile_.spot.storm_mean_interval_s),
                    [this]() { StormTick(); });
  }
}

void SimulatedCloud::PriceStep() {
  if (!MarketActive()) {
    price_clock_running_ = false;  // restarted by the next request
    return;
  }
  const double multiplier = price_trace_->Step(sim_.now());
  if (on_price_change_) {
    on_price_change_(multiplier);
  }
  sim_.ScheduleIn(profile_.spot.price_interval_s, [this]() { PriceStep(); });
}

void SimulatedCloud::StormTick() {
  if (!MarketActive()) {
    storm_clock_running_ = false;  // restarted by the next request
    return;
  }
  std::vector<InstanceId> spot_ready;
  for (const auto& [id, instance] : ready_) {
    if (instance.market == Market::kSpot) {
      spot_ready.push_back(id);
    }
  }
  if (!spot_ready.empty()) {
    // Sweep the oldest instances first (ascending id): the provider drains
    // the longest-held capacity back into the on-demand pool.
    const int victims = std::min(
        static_cast<int>(spot_ready.size()),
        static_cast<int>(
            std::ceil(profile_.spot.storm_fraction * static_cast<double>(spot_ready.size()))));
    if (victims > 0) {
      ++storms_;
    }
    const Seconds warning = std::max(profile_.spot.reclamation_warning_s, 0.0);
    for (int i = 0; i < victims; ++i) {
      const InstanceId id = spot_ready[i];
      if (warning > 0.0) {
        WarnInstance(id);
      }
      sim_.ScheduleIn(warning, [this, id]() {
        ReclaimInstance(id, m_.preempted, on_preempted_, /*provider_reclaimed=*/true);
      });
    }
  }
  sim_.ScheduleIn(storm_rng_.Exponential(profile_.spot.storm_mean_interval_s),
                  [this]() { StormTick(); });
}

void SimulatedCloud::TerminateInstance(InstanceId id) {
  auto it = ready_.find(id);
  if (it == ready_.end()) {
    throw std::logic_error("terminating unknown or pending instance");
  }
  if (it->second.market == Market::kSpot) {
    --spot_held_;
  }
  CloseBillingInterval(it->second.launch, it->second.market, /*provider_reclaimed=*/false);
  ready_.erase(it);
  straggler_factors_.erase(id);
  obs::Inc(m_.terminated);
}

void SimulatedCloud::TerminateAll() {
  std::vector<InstanceId> ids;
  ids.reserve(ready_.size());
  for (const auto& [id, instance] : ready_) {
    ids.push_back(id);
  }
  for (InstanceId id : ids) {
    TerminateInstance(id);
  }
  // Cancel in-flight requests: instances already launched were billing and
  // settle at now; still-queued requests never started billing.
  for (const auto& [id, slot] : pending_launch_) {
    if (slot.launch < sim_.now()) {
      CloseBillingInterval(slot.launch, slot.market, /*provider_reclaimed=*/false);
    }
  }
  pending_launch_.clear();
  pending_ = 0;
  spot_held_ = 0;
  ++cancel_epoch_;
}

}  // namespace rubberband
