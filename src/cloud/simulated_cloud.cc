#include "src/cloud/simulated_cloud.h"

#include <stdexcept>
#include <utility>
#include <vector>

namespace rubberband {

SimulatedCloud::SimulatedCloud(Simulation& sim, CloudProfile profile)
    : sim_(sim), profile_(std::move(profile)), rng_(sim.rng().Fork()) {}

void SimulatedCloud::RequestInstances(int count, double dataset_gb,
                                      std::function<void(InstanceId)> on_ready) {
  for (int i = 0; i < count; ++i) {
    ++pending_;
    const InstanceId id = next_id_++;
    const Seconds queuing = profile_.provisioning.queuing_delay.Sample(rng_);
    const Seconds init = profile_.provisioning.init_latency.Sample(rng_);
    const Seconds launch_at = sim_.now() + queuing;
    const Seconds ready_at = launch_at + init;
    if (dataset_gb > 0.0) {
      meter_.RecordDataIngress(dataset_gb);
    }
    sim_.ScheduleAt(ready_at, [this, id, launch_at, ready_at, on_ready]() {
      --pending_;
      ready_.emplace(id, Instance{launch_at, ready_at});
      if (profile_.spot.enabled) {
        SchedulePreemption(id);
      }
      on_ready(id);
    });
  }
}

void SimulatedCloud::SchedulePreemption(InstanceId id) {
  const Seconds delay = rng_.Exponential(profile_.spot.mean_time_to_preemption);
  sim_.ScheduleIn(delay, [this, id]() {
    auto it = ready_.find(id);
    if (it == ready_.end()) {
      return;  // already terminated by the job
    }
    meter_.RecordInstanceUsage(it->second.launch, sim_.now());
    ready_.erase(it);
    ++num_preemptions_;
    if (on_preempted_) {
      on_preempted_(id);
    }
  });
}

void SimulatedCloud::TerminateInstance(InstanceId id) {
  auto it = ready_.find(id);
  if (it == ready_.end()) {
    throw std::logic_error("terminating unknown or pending instance");
  }
  meter_.RecordInstanceUsage(it->second.launch, sim_.now());
  ready_.erase(it);
}

void SimulatedCloud::TerminateAll() {
  std::vector<InstanceId> ids;
  ids.reserve(ready_.size());
  for (const auto& [id, instance] : ready_) {
    ids.push_back(id);
  }
  for (InstanceId id : ids) {
    TerminateInstance(id);
  }
}

}  // namespace rubberband
