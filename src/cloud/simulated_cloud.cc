#include "src/cloud/simulated_cloud.h"

#include <stdexcept>
#include <utility>
#include <vector>

namespace rubberband {

SimulatedCloud::SimulatedCloud(Simulation& sim, CloudProfile profile, MetricsRegistry* registry)
    : sim_(sim),
      profile_(std::move(profile)),
      rng_(sim.rng().Fork()),
      // Only fork a fault stream when faults are configured, so fault-free
      // profiles draw the exact same sequences as before the fault layer
      // existed (bit-identical replays of old seeds).
      faults_(profile_.fault, profile_.fault.Any() ? rng_.Fork() : Rng(0)) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<MetricsRegistry>();
    registry = owned_registry_.get();
  }
  registry_ = registry;
  MetricsScope scope = registry_->scope("cloud");
  m_.requested = scope.GetCounter("instances_requested");
  m_.launched = scope.GetCounter("instances_launched");
  m_.terminated = scope.GetCounter("instances_terminated");
  m_.preempted = scope.GetCounter("instances_preempted");
  m_.crashed = scope.GetCounter("instances_crashed");
  m_.init_failures = scope.GetCounter("init_failures");
  m_.billed_seconds = scope.GetGauge("billed_instance_seconds");
  m_.provision_latency = scope.GetHistogram("provision_latency_seconds");
}

void SimulatedCloud::CloseBillingInterval(Seconds launch) {
  meter_.RecordInstanceUsage(launch, sim_.now());
  // Same interval, same order as the meter's own sum, so the gauge
  // reconciles exactly against TotalInstanceSeconds().
  obs::Add(m_.billed_seconds, sim_.now() - launch);
}

void SimulatedCloud::RequestInstances(int count, double dataset_gb,
                                      std::function<void(InstanceId)> on_ready,
                                      std::function<void()> on_failure) {
  obs::Inc(m_.requested, count);
  const Seconds requested_at = sim_.now();
  for (int i = 0; i < count; ++i) {
    ++pending_;
    const InstanceId id = next_id_++;
    const Seconds queuing = profile_.provisioning.queuing_delay.Sample(rng_);
    const int64_t epoch = cancel_epoch_;
    if (faults_.ProvisionFails()) {
      // Insufficient capacity: the provider rejects the request after the
      // queuing delay. Nothing launched, nothing billed.
      sim_.ScheduleAt(sim_.now() + queuing, [this, on_failure, epoch]() {
        if (epoch != cancel_epoch_) {
          return;  // cancelled by TerminateAll
        }
        --pending_;
        if (on_failure) {
          on_failure();
        }
      });
      continue;
    }
    const Seconds init = profile_.provisioning.init_latency.Sample(rng_);
    const Seconds launch_at = sim_.now() + queuing;
    const Seconds ready_at = launch_at + init;
    if (dataset_gb > 0.0) {
      meter_.RecordDataIngress(dataset_gb);
    }
    pending_launch_.emplace(id, launch_at);
    if (faults_.InitFails()) {
      // The instance launched (and billed) but died before becoming ready.
      sim_.ScheduleAt(ready_at, [this, id, launch_at, on_failure, epoch]() {
        if (epoch != cancel_epoch_) {
          return;
        }
        --pending_;
        pending_launch_.erase(id);
        CloseBillingInterval(launch_at);
        obs::Inc(m_.init_failures);
        if (on_failure) {
          on_failure();
        }
      });
      continue;
    }
    // Gray failure: the instance will come up alive but persistently slow.
    // Drawn here (request order) so the fault stream stays deterministic no
    // matter how ready events interleave.
    const double straggler_factor = faults_.SampleStragglerFactor();
    sim_.ScheduleAt(ready_at, [this, id, launch_at, ready_at, straggler_factor, on_ready,
                               requested_at, epoch]() {
      if (epoch != cancel_epoch_) {
        return;
      }
      --pending_;
      pending_launch_.erase(id);
      ready_.emplace(id, Instance{launch_at, ready_at});
      obs::Inc(m_.launched);
      obs::ObserveSeconds(m_.provision_latency, sim_.now() - requested_at);
      if (straggler_factor != 1.0) {
        straggler_factors_.emplace(id, straggler_factor);
      }
      if (profile_.spot.enabled) {
        SchedulePreemption(id);
      }
      if (faults_.crashes_enabled()) {
        ScheduleCrash(id);
      }
      on_ready(id);
    });
  }
}

void SimulatedCloud::ReclaimInstance(InstanceId id, Counter* counter,
                                     const std::function<void(InstanceId)>& handler) {
  auto it = ready_.find(id);
  if (it == ready_.end()) {
    return;  // already terminated by the job (or lost to the other cause)
  }
  CloseBillingInterval(it->second.launch);
  ready_.erase(it);
  straggler_factors_.erase(id);
  obs::Inc(counter);
  if (handler) {
    handler(id);
  }
}

void SimulatedCloud::SchedulePreemption(InstanceId id) {
  const Seconds delay = rng_.Exponential(profile_.spot.mean_time_to_preemption);
  sim_.ScheduleIn(delay, [this, id]() { ReclaimInstance(id, m_.preempted, on_preempted_); });
}

void SimulatedCloud::ScheduleCrash(InstanceId id) {
  const Seconds delay = faults_.SampleTimeToCrash();
  sim_.ScheduleIn(delay, [this, id]() { ReclaimInstance(id, m_.crashed, on_crashed_); });
}

void SimulatedCloud::TerminateInstance(InstanceId id) {
  auto it = ready_.find(id);
  if (it == ready_.end()) {
    throw std::logic_error("terminating unknown or pending instance");
  }
  CloseBillingInterval(it->second.launch);
  ready_.erase(it);
  straggler_factors_.erase(id);
  obs::Inc(m_.terminated);
}

void SimulatedCloud::TerminateAll() {
  std::vector<InstanceId> ids;
  ids.reserve(ready_.size());
  for (const auto& [id, instance] : ready_) {
    ids.push_back(id);
  }
  for (InstanceId id : ids) {
    TerminateInstance(id);
  }
  // Cancel in-flight requests: instances already launched were billing and
  // settle at now; still-queued requests never started billing.
  for (const auto& [id, launch_at] : pending_launch_) {
    if (launch_at < sim_.now()) {
      CloseBillingInterval(launch_at);
    }
  }
  pending_launch_.clear();
  pending_ = 0;
  ++cancel_epoch_;
}

}  // namespace rubberband
