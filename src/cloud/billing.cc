#include "src/cloud/billing.h"

#include <algorithm>
#include <stdexcept>

namespace rubberband {

void BillingMeter::RecordInstanceUsage(Seconds launch, Seconds terminate) {
  if (terminate < launch) {
    throw std::invalid_argument("instance terminated before launch");
  }
  instance_intervals_.push_back(Interval{launch, terminate});
}

void BillingMeter::RecordFunctionUsage(int gpus, Seconds duration) {
  if (gpus < 0 || duration < 0.0) {
    throw std::invalid_argument("negative function usage");
  }
  function_records_.push_back(FunctionRecord{gpus, duration});
}

void BillingMeter::RecordDataIngress(double gigabytes) {
  if (gigabytes < 0.0) {
    throw std::invalid_argument("negative ingress");
  }
  ingress_gb_ += gigabytes;
}

CostBreakdown BillingMeter::Price(const InstanceType& type, const PricingPolicy& policy) const {
  CostBreakdown breakdown;
  switch (policy.billing) {
    case BillingModel::kPerInstance: {
      const Money per_second = type.PricePerSecond();
      for (const Interval& interval : instance_intervals_) {
        const Seconds billed =
            std::max(interval.terminate - interval.launch, policy.minimum_billed_seconds);
        breakdown.compute += per_second * billed;
      }
      break;
    }
    case BillingModel::kPerFunction: {
      const Money gpu_second = type.GpuSecondPrice();
      for (const FunctionRecord& record : function_records_) {
        breakdown.compute += gpu_second * (static_cast<double>(record.gpus) * record.duration);
      }
      break;
    }
  }
  breakdown.data = policy.data_price_per_gb * ingress_gb_;
  return breakdown;
}

double BillingMeter::TotalInstanceSeconds() const {
  double total = 0.0;
  for (const Interval& interval : instance_intervals_) {
    total += interval.terminate - interval.launch;
  }
  return total;
}

double BillingMeter::TotalGpuSecondsUsed() const {
  double total = 0.0;
  for (const FunctionRecord& record : function_records_) {
    total += static_cast<double>(record.gpus) * record.duration;
  }
  return total;
}

}  // namespace rubberband
