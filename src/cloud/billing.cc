#include "src/cloud/billing.h"

#include <algorithm>
#include <stdexcept>

namespace rubberband {

void BillingMeter::RecordInstanceUsage(Seconds launch, Seconds terminate) {
  RecordInstanceUsage(launch, terminate, 1.0, false);
}

void BillingMeter::RecordInstanceUsage(Seconds launch, Seconds terminate, double rate_multiplier,
                                       bool provider_reclaimed) {
  if (terminate < launch) {
    throw std::invalid_argument("instance terminated before launch");
  }
  if (rate_multiplier < 0.0) {
    throw std::invalid_argument("negative billing rate multiplier");
  }
  instance_intervals_.push_back(Interval{launch, terminate, rate_multiplier, provider_reclaimed});
}

void BillingMeter::RecordFunctionUsage(int gpus, Seconds duration) {
  if (gpus < 0 || duration < 0.0) {
    throw std::invalid_argument("negative function usage");
  }
  function_records_.push_back(FunctionRecord{gpus, duration});
}

void BillingMeter::RecordDataIngress(double gigabytes) {
  if (gigabytes < 0.0) {
    throw std::invalid_argument("negative ingress");
  }
  ingress_gb_ += gigabytes;
}

CostBreakdown BillingMeter::Price(const InstanceType& type, const PricingPolicy& policy) const {
  return PriceIntervals(type, policy, /*at_full_rate=*/false);
}

CostBreakdown BillingMeter::PriceAtFullRate(const InstanceType& type,
                                            const PricingPolicy& policy) const {
  return PriceIntervals(type, policy, /*at_full_rate=*/true);
}

CostBreakdown BillingMeter::PriceIntervals(const InstanceType& type, const PricingPolicy& policy,
                                           bool at_full_rate) const {
  CostBreakdown breakdown;
  switch (policy.billing) {
    case BillingModel::kPerInstance: {
      const Money per_second = type.PricePerSecond();
      for (const Interval& interval : instance_intervals_) {
        // A provider-initiated reclamation never owes the per-acquisition
        // minimum: the remainder was the provider's choice, not the
        // customer's.
        const Seconds billed =
            interval.provider_reclaimed
                ? interval.terminate - interval.launch
                : std::max(interval.terminate - interval.launch, policy.minimum_billed_seconds);
        const double multiplier = at_full_rate ? 1.0 : interval.rate_multiplier;
        breakdown.compute += per_second * (billed * multiplier);
      }
      break;
    }
    case BillingModel::kPerFunction: {
      const Money gpu_second = type.GpuSecondPrice();
      for (const FunctionRecord& record : function_records_) {
        breakdown.compute += gpu_second * (static_cast<double>(record.gpus) * record.duration);
      }
      break;
    }
  }
  breakdown.data = policy.data_price_per_gb * ingress_gb_;
  return breakdown;
}

double BillingMeter::TotalInstanceSeconds() const {
  double total = 0.0;
  for (const Interval& interval : instance_intervals_) {
    total += interval.terminate - interval.launch;
  }
  return total;
}

double BillingMeter::TotalGpuSecondsUsed() const {
  double total = 0.0;
  for (const FunctionRecord& record : function_records_) {
    total += static_cast<double>(record.gpus) * record.duration;
  }
  return total;
}

}  // namespace rubberband
