// Billing meter: the cost ledger of a (simulated) cloud account.
//
// The runtime records raw usage events — instance lifetimes, function-style
// task executions, and data ingress — and the meter prices them under a
// PricingPolicy. Keeping raw events (rather than accumulating dollars as we
// go) lets the same execution be priced under both billing models, which is
// how the paper's per-instance vs per-function comparisons work.

#ifndef SRC_CLOUD_BILLING_H_
#define SRC_CLOUD_BILLING_H_

#include <vector>

#include "src/cloud/instance.h"
#include "src/cloud/pricing.h"
#include "src/common/money.h"
#include "src/common/time.h"

namespace rubberband {

struct CostBreakdown {
  Money compute;
  Money data;
  Money Total() const { return compute + data; }
};

class BillingMeter {
 public:
  // One instance acquisition, alive over [launch, terminate).
  void RecordInstanceUsage(Seconds launch, Seconds terminate);

  // Market-aware variant: `rate_multiplier` scales the instance's
  // per-second rate over this interval (spot discount × the time-averaged
  // price-trace multiplier; 1.0 for on-demand capacity), and
  // `provider_reclaimed` marks an interval the provider ended (spot
  // reclamation) — such an interval never owes the per-acquisition
  // minimum charge, since the customer did not choose to stop early.
  void RecordInstanceUsage(Seconds launch, Seconds terminate, double rate_multiplier,
                           bool provider_reclaimed);

  // One function-style task execution holding `gpus` GPUs for `duration`.
  void RecordFunctionUsage(int gpus, Seconds duration);

  void RecordDataIngress(double gigabytes);

  // Prices the recorded events. Per-instance mode prices instance
  // lifetimes (with the per-acquisition minimum charge); per-function mode
  // prices the function records at the GPU-second rate. Data ingress is
  // priced identically under both.
  CostBreakdown Price(const InstanceType& type, const PricingPolicy& policy) const;

  // Prices the ledger as if every interval had billed at rate multiplier
  // 1.0 — the on-demand counterfactual used for spot-savings attribution.
  // Identical to Price() when no discounted intervals were recorded.
  CostBreakdown PriceAtFullRate(const InstanceType& type, const PricingPolicy& policy) const;

  double TotalInstanceSeconds() const;
  double TotalGpuSecondsUsed() const;
  double total_ingress_gb() const { return ingress_gb_; }
  int num_acquisitions() const { return static_cast<int>(instance_intervals_.size()); }

 private:
  struct Interval {
    Seconds launch = 0.0;
    Seconds terminate = 0.0;
    double rate_multiplier = 1.0;
    bool provider_reclaimed = false;
  };

  CostBreakdown PriceIntervals(const InstanceType& type, const PricingPolicy& policy,
                               bool at_full_rate) const;
  struct FunctionRecord {
    int gpus = 0;
    Seconds duration = 0.0;
  };

  std::vector<Interval> instance_intervals_;
  std::vector<FunctionRecord> function_records_;
  double ingress_gb_ = 0.0;
};

}  // namespace rubberband

#endif  // SRC_CLOUD_BILLING_H_
