#include "src/cloud/spot_price.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rubberband {

SpotPriceTrace::SpotPriceTrace(const SpotMarket& market, Rng rng)
    : market_(market), rng_(std::move(rng)) {
  breakpoints_.emplace_back(0.0, 1.0);
}

double SpotPriceTrace::Step(Seconds now) {
  if (now < breakpoints_.back().first) {
    throw std::logic_error("spot price trace stepped backwards in time");
  }
  if (rng_.Uniform(0.0, 1.0) < market_.regime_flip_probability) {
    turbulent_ = !turbulent_;
  }
  // Turbulent regime: larger steps with an upward drift — the shape of a
  // capacity crunch, where the spot price climbs toward on-demand.
  const double scale = market_.volatility * (turbulent_ ? 3.0 : 1.0);
  const double drift = turbulent_ ? market_.volatility : 0.0;
  double multiplier = breakpoints_.back().second * std::exp(rng_.Normal(drift, scale));
  multiplier = std::clamp(multiplier, market_.price_floor, market_.price_cap);
  breakpoints_.emplace_back(now, multiplier);
  return multiplier;
}

double SpotPriceTrace::MultiplierAt(Seconds t) const {
  // Last breakpoint with effective-from <= t.
  auto it = std::upper_bound(
      breakpoints_.begin(), breakpoints_.end(), t,
      [](Seconds lhs, const std::pair<Seconds, double>& rhs) { return lhs < rhs.first; });
  if (it == breakpoints_.begin()) {
    return breakpoints_.front().second;
  }
  return std::prev(it)->second;
}

double SpotPriceTrace::AverageOver(Seconds a, Seconds b) const {
  if (b <= a) {
    return MultiplierAt(a);
  }
  double integral = 0.0;
  Seconds cursor = a;
  double level = MultiplierAt(a);
  for (const auto& [since, multiplier] : breakpoints_) {
    if (since <= cursor) {
      level = multiplier;
      continue;
    }
    if (since >= b) {
      break;
    }
    integral += level * (since - cursor);
    cursor = since;
    level = multiplier;
  }
  integral += level * (b - cursor);
  return integral / (b - a);
}

}  // namespace rubberband
