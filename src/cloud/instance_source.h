// InstanceSource: where a job's cluster manager gets its machines.
//
// The per-job runtime (ClusterManager/Executor) asks for instances and
// releases them when the plan shrinks; it does not care whether releases
// actually terminate capacity. Two implementations: SimulatedCloud releases
// by terminating (the single-job behaviour), and WarmPool parks released
// instances for the next job (the multi-tenant service behaviour).

#ifndef SRC_CLOUD_INSTANCE_SOURCE_H_
#define SRC_CLOUD_INSTANCE_SOURCE_H_

#include <cstdint>
#include <functional>

namespace rubberband {

using InstanceId = int64_t;

class InstanceSource {
 public:
  virtual ~InstanceSource() = default;

  // Requests `count` instances; `on_ready` fires once per instance when it
  // is usable. `dataset_gb` is ingressed by each freshly provisioned
  // instance (recycled instances are assumed to still hold the service's
  // shared dataset cache).
  virtual void RequestInstances(int count, double dataset_gb,
                                std::function<void(InstanceId)> on_ready) = 0;

  // Gives a ready instance back to the source (terminate or recycle).
  virtual void ReleaseInstance(InstanceId id) = 0;
};

}  // namespace rubberband

#endif  // SRC_CLOUD_INSTANCE_SOURCE_H_
