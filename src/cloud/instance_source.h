// InstanceSource: where a job's cluster manager gets its machines.
//
// The per-job runtime (ClusterManager/Executor) asks for instances and
// releases them when the plan shrinks; it does not care whether releases
// actually terminate capacity. Two implementations: SimulatedCloud releases
// by terminating (the single-job behaviour), and WarmPool parks released
// instances for the next job (the multi-tenant service behaviour).

#ifndef SRC_CLOUD_INSTANCE_SOURCE_H_
#define SRC_CLOUD_INSTANCE_SOURCE_H_

#include <cstdint>
#include <functional>
#include <utility>

namespace rubberband {

using InstanceId = int64_t;

class InstanceSource {
 public:
  virtual ~InstanceSource() = default;

  // Requests `count` instances; `on_ready` fires once per instance when it
  // is usable. `dataset_gb` is ingressed by each freshly provisioned
  // instance (recycled instances are assumed to still hold the service's
  // shared dataset cache). `on_failure` fires once per instance slot the
  // source could not deliver (provisioning rejection or init-time death);
  // a null handler drops the slot silently.
  virtual void RequestInstances(int count, double dataset_gb,
                                std::function<void(InstanceId)> on_ready,
                                std::function<void()> on_failure) = 0;

  // Convenience overload for callers that do not handle failures (the
  // fault-free provider never invokes on_failure anyway).
  void RequestInstances(int count, double dataset_gb, std::function<void(InstanceId)> on_ready) {
    RequestInstances(count, dataset_gb, std::move(on_ready), nullptr);
  }

  // Gives a ready instance back to the source (terminate or recycle).
  virtual void ReleaseInstance(InstanceId id) = 0;

  // Gives back an instance that must never be handed out again (quarantined
  // gray-failure hardware): sources that recycle must terminate it for real
  // instead of parking it. The default release already terminates.
  virtual void DiscardInstance(InstanceId id) { ReleaseInstance(id); }
};

}  // namespace rubberband

#endif  // SRC_CLOUD_INSTANCE_SOURCE_H_
