// InstanceSource: where a job's cluster manager gets its machines.
//
// The per-job runtime (ClusterManager/Executor) asks for instances and
// releases them when the plan shrinks; it does not care whether releases
// actually terminate capacity. Two implementations: SimulatedCloud releases
// by terminating (the single-job behaviour), and WarmPool parks released
// instances for the next job (the multi-tenant service behaviour).

#ifndef SRC_CLOUD_INSTANCE_SOURCE_H_
#define SRC_CLOUD_INSTANCE_SOURCE_H_

#include <cstdint>
#include <functional>
#include <utility>

namespace rubberband {

using InstanceId = int64_t;

// Capacity market a request draws from. Sources that model a spot market
// honour the choice; everything else serves plain on-demand capacity.
enum class Market {
  // Pre-emptible capacity at the (time-varying) spot price. Served
  // on-demand when the source has no spot market configured, so callers
  // can default to kSpot and let the profile decide.
  kSpot,
  // Regular capacity: full price, never reclaimed by the provider.
  kOnDemand,
};

class InstanceSource {
 public:
  virtual ~InstanceSource() = default;

  // Requests `count` instances; `on_ready` fires once per instance when it
  // is usable. `dataset_gb` is ingressed by each freshly provisioned
  // instance (recycled instances are assumed to still hold the service's
  // shared dataset cache). `on_failure` fires once per instance slot the
  // source could not deliver (provisioning rejection or init-time death);
  // a null handler drops the slot silently.
  virtual void RequestInstances(int count, double dataset_gb,
                                std::function<void(InstanceId)> on_ready,
                                std::function<void()> on_failure) = 0;

  // Convenience overload for callers that do not handle failures (the
  // fault-free provider never invokes on_failure anyway).
  void RequestInstances(int count, double dataset_gb, std::function<void(InstanceId)> on_ready) {
    RequestInstances(count, dataset_gb, std::move(on_ready), nullptr);
  }

  // Market-aware request. The default implementation ignores the market
  // and serves the plain request path, so sources without a spot market
  // (test fakes, single-market providers) need not care.
  virtual void RequestInstances(int count, double dataset_gb, Market market,
                                std::function<void(InstanceId)> on_ready,
                                std::function<void()> on_failure) {
    (void)market;
    RequestInstances(count, dataset_gb, std::move(on_ready), std::move(on_failure));
  }

  // Gives a ready instance back to the source (terminate or recycle).
  virtual void ReleaseInstance(InstanceId id) = 0;

  // Gives back an instance that must never be handed out again (quarantined
  // gray-failure hardware): sources that recycle must terminate it for real
  // instead of parking it. The default release already terminates.
  virtual void DiscardInstance(InstanceId id) { ReleaseInstance(id); }
};

}  // namespace rubberband

#endif  // SRC_CLOUD_INSTANCE_SOURCE_H_
