// SimulatedCloud: a discrete-event cloud provider.
//
// Substitute for AWS EC2 + boto in the paper's implementation (section 5,
// "Cluster management"): serves provisioning requests after the profile's
// queuing + init delays, terminates instances immediately, and keeps the
// billing ledger. The paper's provider assumption — provisioning always
// succeeds — holds only for the default (fault-free) profile; the profile's
// FaultProfile injects provisioning rejections, init-time deaths, and
// hardware crashes on ready instances, all from the deterministic Rng.

#ifndef SRC_CLOUD_SIMULATED_CLOUD_H_
#define SRC_CLOUD_SIMULATED_CLOUD_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "src/cloud/billing.h"
#include "src/cloud/cloud_profile.h"
#include "src/cloud/fault.h"
#include "src/cloud/instance_source.h"
#include "src/cloud/spot_price.h"
#include "src/obs/metrics.h"
#include "src/sim/simulation.h"

namespace rubberband {

class SimulatedCloud : public InstanceSource {
 public:
  // When `registry` is null the cloud owns a private registry (standalone
  // executors fold its snapshot into their report); a shared-cluster owner
  // passes its own so cloud.* metrics land in the service-wide registry.
  SimulatedCloud(Simulation& sim, CloudProfile profile, MetricsRegistry* registry = nullptr);

  SimulatedCloud(const SimulatedCloud&) = delete;
  SimulatedCloud& operator=(const SimulatedCloud&) = delete;

  using InstanceSource::RequestInstances;

  // Requests `count` instances. `on_ready` fires once per instance when it
  // becomes usable (after queuing delay + init latency). Billing starts at
  // launch (after queuing delay, before init completes), as real providers
  // charge while init scripts run. If `dataset_gb` > 0, each instance
  // ingresses that much data during init (charged at the data price).
  // Under a fault profile a slot may instead fail — rejected after the
  // queuing delay (nothing billed) or dead at the end of init (the init
  // interval is billed) — in which case `on_failure` fires for it.
  void RequestInstances(int count, double dataset_gb, std::function<void(InstanceId)> on_ready,
                        std::function<void()> on_failure) override;

  // Market-aware request: kSpot draws pre-emptible capacity billed at the
  // discounted, time-varying spot price (subject to the family's capacity
  // limit — over-limit slots are rejected after the queuing delay and
  // counted as capacity rejections); kOnDemand draws regular capacity at
  // full price that is never preempted. The 4-argument overload serves the
  // profile's default market: spot when the market is enabled, on-demand
  // otherwise.
  void RequestInstances(int count, double dataset_gb, Market market,
                        std::function<void(InstanceId)> on_ready,
                        std::function<void()> on_failure) override;

  // Terminates a ready instance and closes its billing interval.
  void TerminateInstance(InstanceId id);

  // InstanceSource: releasing to the raw provider terminates.
  void ReleaseInstance(InstanceId id) override { TerminateInstance(id); }

  // Registers the callback invoked when the provider reclaims a spot
  // instance (only fires when the profile's spot market is enabled). The
  // instance is already gone (billing closed) when the handler runs.
  void SetPreemptionHandler(std::function<void(InstanceId)> handler) {
    on_preempted_ = std::move(handler);
  }

  // Registers the callback invoked when a ready instance's hardware
  // crashes (only fires when the fault profile's MTBF is enabled). Like a
  // preemption, the instance is already gone when the handler runs.
  void SetCrashHandler(std::function<void(InstanceId)> handler) {
    on_crashed_ = std::move(handler);
  }

  // Registers the callback for the provider's reclamation warning, fired
  // SpotMarket::reclamation_warning_s before a spot instance is taken.
  // The instance is still ready (and billing) when the handler runs; the
  // executor uses the window to checkpoint eagerly.
  void SetPreemptionWarningHandler(std::function<void(InstanceId)> handler) {
    on_preemption_warning_ = std::move(handler);
  }

  // Registers the callback fired whenever the spot price trace steps; the
  // argument is the new multiplier on the discounted base price.
  void SetPriceChangeHandler(std::function<void(double)> handler) {
    on_price_change_ = std::move(handler);
  }

  int num_preemptions() const { return static_cast<int>(m_.preempted->value()); }
  int num_crashes() const { return static_cast<int>(m_.crashed->value()); }
  int num_provision_failures() const { return faults_.num_provision_failures(); }
  int num_init_failures() const { return faults_.num_init_failures(); }
  int num_straggler_instances() const { return faults_.num_stragglers(); }
  int num_preemption_warnings() const { return preemption_warnings_; }
  int num_capacity_rejections() const { return capacity_rejections_; }
  int num_storms() const { return storms_; }

  // The spot price multiplier currently in effect (1.0 with a flat trace).
  double SpotPriceMultiplier() const {
    return price_trace_ ? price_trace_->current() : 1.0;
  }

  // Time-averaged spot price multiplier over [from, to] (1.0 with a flat
  // trace): what a spot instance held over that window billed at, before
  // the discount. Used for per-job usage attribution on shared clusters.
  double SpotAverageMultiplier(Seconds from, Seconds to) const {
    return price_trace_ ? price_trace_->AverageOver(from, to) : 1.0;
  }

  // True while the family's capacity limit leaves no room for another spot
  // instance — the signal callers use to fall back to on-demand instead of
  // retrying the spot market.
  bool SpotCapacityExhausted() const {
    return profile_.spot.capacity_limit > 0 && spot_held_ >= profile_.spot.capacity_limit;
  }

  // The market a held (launching or ready) instance was acquired on;
  // kOnDemand for unknown ids.
  Market InstanceMarket(InstanceId id) const;

  // Persistent slowdown factor of a launched instance (1.0 = healthy).
  // Ground truth for the synthetic trainer — the hardware really is this
  // slow — never an input to detection, which sees observed iteration
  // times only.
  double StragglerFactor(InstanceId id) const {
    auto it = straggler_factors_.find(id);
    return it == straggler_factors_.end() ? 1.0 : it->second;
  }

  // Terminates everything still running and cancels in-flight provisioning
  // requests (end-of-job cleanup): launched-but-initializing instances are
  // billed up to now, still-queued requests never bill, and neither
  // `on_ready` nor `on_failure` fires for a cancelled slot.
  void TerminateAll();

  // Records a function-style task execution for per-function pricing.
  void RecordFunctionUsage(int gpus, Seconds duration) {
    meter_.RecordFunctionUsage(gpus, duration);
  }

  int num_ready() const { return static_cast<int>(ready_.size()); }
  int num_pending() const { return pending_; }
  // True while the instance is launched and not terminated/reclaimed.
  bool IsReady(InstanceId id) const { return ready_.count(id) > 0; }

  const CloudProfile& profile() const { return profile_; }
  const BillingMeter& meter() const { return meter_; }
  // The registry cloud.* metrics record into (owned or the caller's).
  MetricsRegistry& metrics() { return *registry_; }
  const MetricsRegistry& metrics() const { return *registry_; }

  // Prices the ledger under the profile's own pricing policy. Per-instance
  // intervals carry their own rate multiplier (spot discount × the
  // time-averaged price trace for spot capacity, 1.0 for on-demand), so
  // the ledger is priced at the on-demand rate; per-function records carry
  // no multiplier and keep the flat discounted rate.
  CostBreakdown Cost() const {
    const InstanceType type = profile_.pricing.billing == BillingModel::kPerFunction
                                  ? profile_.BilledInstance()
                                  : profile_.instance;
    return meter_.Price(type, profile_.pricing);
  }

  // The on-demand counterfactual for the same usage (every interval at
  // full rate); Cost() subtracted from this is the account's spot savings.
  CostBreakdown OnDemandEquivalentCost() const {
    return meter_.PriceAtFullRate(profile_.instance, profile_.pricing);
  }

 private:
  struct Instance {
    Seconds launch = 0.0;
    Seconds ready = 0.0;
    Market market = Market::kOnDemand;
    bool warned = false;  // reclamation warning already delivered
  };
  struct PendingSlot {
    Seconds launch = 0.0;
    Market market = Market::kOnDemand;
  };

  Simulation& sim_;
  CloudProfile profile_;
  Rng rng_;
  FaultInjector faults_;
  // Market streams follow the fault-stream discipline: forked only when
  // the feature can draw, so profiles without them replay bit-identically.
  std::unique_ptr<SpotPriceTrace> price_trace_;
  Rng storm_rng_;
  BillingMeter meter_;
  // Registry-backed provider statistics. The billed-seconds gauge adds the
  // exact intervals the meter records (same call, same order), so it equals
  // meter().TotalInstanceSeconds() to the last bit.
  std::unique_ptr<MetricsRegistry> owned_registry_;
  MetricsRegistry* registry_ = nullptr;
  struct MetricHandles {
    Counter* requested = nullptr;
    Counter* launched = nullptr;
    Counter* terminated = nullptr;
    Counter* preempted = nullptr;
    Counter* crashed = nullptr;
    Counter* init_failures = nullptr;
    Gauge* billed_seconds = nullptr;
    Histogram* provision_latency = nullptr;
  };
  MetricHandles m_;
  void SchedulePreemption(InstanceId id);
  void ScheduleCrash(InstanceId id);
  void ReclaimInstance(InstanceId id, Counter* counter,
                       const std::function<void(InstanceId)>& handler, bool provider_reclaimed);
  // Settles one instance's billing in both ledgers (meter + gauge).
  void CloseBillingInterval(Seconds launch, Market market, bool provider_reclaimed);
  // Delivers the reclamation warning for a still-ready instance (once).
  void WarnInstance(InstanceId id);
  // Market clocks (price steps, storms) run only while the provider holds
  // or is launching instances, so an idle simulation still drains; each
  // accepted request restarts them.
  bool MarketActive() const { return !ready_.empty() || pending_ > 0; }
  void MaybeStartMarketClocks();
  void PriceStep();
  void StormTick();

  std::map<InstanceId, Instance> ready_;
  // Straggler tags drawn at launch (absent = healthy); entries outlive the
  // instance's tenancy (a recycled warm instance stays slow) and are erased
  // at termination.
  std::map<InstanceId, double> straggler_factors_;
  // Launch time + market of every launched-but-not-ready instance
  // (cancellation closes these billing intervals).
  std::map<InstanceId, PendingSlot> pending_launch_;
  std::function<void(InstanceId)> on_preempted_;
  std::function<void(InstanceId)> on_crashed_;
  std::function<void(InstanceId)> on_preemption_warning_;
  std::function<void(double)> on_price_change_;
  int pending_ = 0;
  // Spot instances currently held (launching + ready), checked against the
  // family's capacity limit.
  int spot_held_ = 0;
  int preemption_warnings_ = 0;
  int capacity_rejections_ = 0;
  int storms_ = 0;
  bool price_clock_running_ = false;
  bool storm_clock_running_ = false;
  // Bumped by TerminateAll: in-flight ready/failure events from an older
  // epoch are cancelled and become no-ops.
  int64_t cancel_epoch_ = 0;
  InstanceId next_id_ = 0;
};

}  // namespace rubberband

#endif  // SRC_CLOUD_SIMULATED_CLOUD_H_
