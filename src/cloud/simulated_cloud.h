// SimulatedCloud: a discrete-event cloud provider.
//
// Substitute for AWS EC2 + boto in the paper's implementation (section 5,
// "Cluster management"): serves provisioning requests after the profile's
// queuing + init delays, terminates instances immediately, and keeps the
// billing ledger. The paper's provider assumption — provisioning always
// succeeds — holds only for the default (fault-free) profile; the profile's
// FaultProfile injects provisioning rejections, init-time deaths, and
// hardware crashes on ready instances, all from the deterministic Rng.

#ifndef SRC_CLOUD_SIMULATED_CLOUD_H_
#define SRC_CLOUD_SIMULATED_CLOUD_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "src/cloud/billing.h"
#include "src/cloud/cloud_profile.h"
#include "src/cloud/fault.h"
#include "src/cloud/instance_source.h"
#include "src/obs/metrics.h"
#include "src/sim/simulation.h"

namespace rubberband {

class SimulatedCloud : public InstanceSource {
 public:
  // When `registry` is null the cloud owns a private registry (standalone
  // executors fold its snapshot into their report); a shared-cluster owner
  // passes its own so cloud.* metrics land in the service-wide registry.
  SimulatedCloud(Simulation& sim, CloudProfile profile, MetricsRegistry* registry = nullptr);

  SimulatedCloud(const SimulatedCloud&) = delete;
  SimulatedCloud& operator=(const SimulatedCloud&) = delete;

  using InstanceSource::RequestInstances;

  // Requests `count` instances. `on_ready` fires once per instance when it
  // becomes usable (after queuing delay + init latency). Billing starts at
  // launch (after queuing delay, before init completes), as real providers
  // charge while init scripts run. If `dataset_gb` > 0, each instance
  // ingresses that much data during init (charged at the data price).
  // Under a fault profile a slot may instead fail — rejected after the
  // queuing delay (nothing billed) or dead at the end of init (the init
  // interval is billed) — in which case `on_failure` fires for it.
  void RequestInstances(int count, double dataset_gb, std::function<void(InstanceId)> on_ready,
                        std::function<void()> on_failure) override;

  // Terminates a ready instance and closes its billing interval.
  void TerminateInstance(InstanceId id);

  // InstanceSource: releasing to the raw provider terminates.
  void ReleaseInstance(InstanceId id) override { TerminateInstance(id); }

  // Registers the callback invoked when the provider reclaims a spot
  // instance (only fires when the profile's spot market is enabled). The
  // instance is already gone (billing closed) when the handler runs.
  void SetPreemptionHandler(std::function<void(InstanceId)> handler) {
    on_preempted_ = std::move(handler);
  }

  // Registers the callback invoked when a ready instance's hardware
  // crashes (only fires when the fault profile's MTBF is enabled). Like a
  // preemption, the instance is already gone when the handler runs.
  void SetCrashHandler(std::function<void(InstanceId)> handler) {
    on_crashed_ = std::move(handler);
  }

  int num_preemptions() const { return static_cast<int>(m_.preempted->value()); }
  int num_crashes() const { return static_cast<int>(m_.crashed->value()); }
  int num_provision_failures() const { return faults_.num_provision_failures(); }
  int num_init_failures() const { return faults_.num_init_failures(); }
  int num_straggler_instances() const { return faults_.num_stragglers(); }

  // Persistent slowdown factor of a launched instance (1.0 = healthy).
  // Ground truth for the synthetic trainer — the hardware really is this
  // slow — never an input to detection, which sees observed iteration
  // times only.
  double StragglerFactor(InstanceId id) const {
    auto it = straggler_factors_.find(id);
    return it == straggler_factors_.end() ? 1.0 : it->second;
  }

  // Terminates everything still running and cancels in-flight provisioning
  // requests (end-of-job cleanup): launched-but-initializing instances are
  // billed up to now, still-queued requests never bill, and neither
  // `on_ready` nor `on_failure` fires for a cancelled slot.
  void TerminateAll();

  // Records a function-style task execution for per-function pricing.
  void RecordFunctionUsage(int gpus, Seconds duration) {
    meter_.RecordFunctionUsage(gpus, duration);
  }

  int num_ready() const { return static_cast<int>(ready_.size()); }
  int num_pending() const { return pending_; }
  // True while the instance is launched and not terminated/reclaimed.
  bool IsReady(InstanceId id) const { return ready_.count(id) > 0; }

  const CloudProfile& profile() const { return profile_; }
  const BillingMeter& meter() const { return meter_; }
  // The registry cloud.* metrics record into (owned or the caller's).
  MetricsRegistry& metrics() { return *registry_; }
  const MetricsRegistry& metrics() const { return *registry_; }

  // Prices the ledger under the profile's own pricing policy (spot
  // discount applied when the spot market is enabled).
  CostBreakdown Cost() const { return meter_.Price(profile_.BilledInstance(), profile_.pricing); }

 private:
  struct Instance {
    Seconds launch = 0.0;
    Seconds ready = 0.0;
  };

  Simulation& sim_;
  CloudProfile profile_;
  Rng rng_;
  FaultInjector faults_;
  BillingMeter meter_;
  // Registry-backed provider statistics. The billed-seconds gauge adds the
  // exact intervals the meter records (same call, same order), so it equals
  // meter().TotalInstanceSeconds() to the last bit.
  std::unique_ptr<MetricsRegistry> owned_registry_;
  MetricsRegistry* registry_ = nullptr;
  struct MetricHandles {
    Counter* requested = nullptr;
    Counter* launched = nullptr;
    Counter* terminated = nullptr;
    Counter* preempted = nullptr;
    Counter* crashed = nullptr;
    Counter* init_failures = nullptr;
    Gauge* billed_seconds = nullptr;
    Histogram* provision_latency = nullptr;
  };
  MetricHandles m_;
  void SchedulePreemption(InstanceId id);
  void ScheduleCrash(InstanceId id);
  void ReclaimInstance(InstanceId id, Counter* counter,
                       const std::function<void(InstanceId)>& handler);
  // Settles one instance's billing in both ledgers (meter + gauge).
  void CloseBillingInterval(Seconds launch);

  std::map<InstanceId, Instance> ready_;
  // Straggler tags drawn at launch (absent = healthy); entries outlive the
  // instance's tenancy (a recycled warm instance stays slow) and are erased
  // at termination.
  std::map<InstanceId, double> straggler_factors_;
  // Launch time of every launched-but-not-ready instance (cancellation
  // closes these billing intervals).
  std::map<InstanceId, Seconds> pending_launch_;
  std::function<void(InstanceId)> on_preempted_;
  std::function<void(InstanceId)> on_crashed_;
  int pending_ = 0;
  // Bumped by TerminateAll: in-flight ready/failure events from an older
  // epoch are cancelled and become no-ops.
  int64_t cancel_epoch_ = 0;
  InstanceId next_id_ = 0;
};

}  // namespace rubberband

#endif  // SRC_CLOUD_SIMULATED_CLOUD_H_
