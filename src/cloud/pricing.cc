#include "src/cloud/pricing.h"

namespace rubberband {

std::string ToString(BillingModel model) {
  switch (model) {
    case BillingModel::kPerInstance:
      return "per-instance";
    case BillingModel::kPerFunction:
      return "per-function";
  }
  return "unknown";
}

}  // namespace rubberband
