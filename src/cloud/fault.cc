#include "src/cloud/fault.h"

namespace rubberband {

bool FaultInjector::Sample(double rate, int& counter) {
  if (rate <= 0.0) {
    return false;  // no draw: disabled faults leave the stream untouched
  }
  const bool fails = rate >= 1.0 || rng_.Uniform(0.0, 1.0) < rate;
  if (fails) {
    ++counter;
  }
  return fails;
}

bool FaultInjector::ProvisionFails() {
  return Sample(profile_.provision_failure_rate, num_provision_failures_);
}

bool FaultInjector::InitFails() { return Sample(profile_.init_failure_rate, num_init_failures_); }

bool FaultInjector::CheckpointFetchFails() {
  return Sample(profile_.checkpoint_failure_rate, num_checkpoint_failures_);
}

Seconds FaultInjector::SampleTimeToCrash() { return rng_.Exponential(profile_.mtbf); }

}  // namespace rubberband
