#include "src/cloud/fault.h"

namespace rubberband {

bool FaultInjector::Sample(double rate, int& counter) {
  if (rate <= 0.0) {
    return false;  // no draw: disabled faults leave the stream untouched
  }
  const bool fails = rate >= 1.0 || rng_.Uniform(0.0, 1.0) < rate;
  if (fails) {
    ++counter;
  }
  return fails;
}

bool FaultInjector::ProvisionFails() {
  return Sample(profile_.provision_failure_rate, num_provision_failures_);
}

bool FaultInjector::InitFails() { return Sample(profile_.init_failure_rate, num_init_failures_); }

bool FaultInjector::CheckpointFetchFails() {
  return Sample(profile_.checkpoint_failure_rate, num_checkpoint_failures_);
}

Seconds FaultInjector::SampleTimeToCrash() { return rng_.Exponential(profile_.mtbf); }

double FaultInjector::SampleStragglerFactor() {
  if (!stragglers_enabled()) {
    return 1.0;  // no draw: disabled faults leave the stream untouched
  }
  const bool straggles =
      profile_.straggler_rate >= 1.0 || rng_.Uniform(0.0, 1.0) < profile_.straggler_rate;
  if (!straggles) {
    return 1.0;
  }
  ++num_stragglers_;
  return rng_.Uniform(profile_.straggler_factor_min, profile_.straggler_factor_max);
}

}  // namespace rubberband
