// Naive elastic baseline (paper section 6.3.1).
//
// The cluster is resized elastically, but each trial's allocation is a
// constant number of GPUs across all stages (the strategy of prior work
// such as ASHA's elastic deployments): stage i gets t * trials_i GPUs. The
// planner enumerates t and returns the cheapest feasible choice. This
// policy front-loads enormous clusters under tight deadlines (512 GPUs in
// the paper's 20-minute experiment) because the only way to speed up the
// long final stages is to raise t for *every* stage.

#include "src/planner/evaluator.h"
#include "src/planner/planner.h"

namespace rubberband {

PlannedJob PlanNaiveElastic(PlanEvaluator& evaluator) {
  const PlannerInputs& inputs = evaluator.inputs();
  const PlannerOptions& options = evaluator.options();
  inputs.spec.Validate();

  std::vector<AllocationPlan> plans;
  for (int t = 1; t <= options.max_gpus_per_trial; ++t) {
    std::vector<int> stage_gpus;
    bool within_cap = true;
    for (const Stage& stage : inputs.spec.stages()) {
      const int gpus = t * stage.num_trials;
      if (gpus > options.max_total_gpus) {
        within_cap = false;
        break;
      }
      stage_gpus.push_back(gpus);
    }
    if (!within_cap) {
      break;
    }
    plans.emplace_back(std::move(stage_gpus));
  }
  const std::vector<PlanEstimate> estimates = evaluator.EvaluateBatch(plans);

  PlannedJob best;
  best.planner = "naive-elastic";
  PlannedJob fastest;
  fastest.planner = "naive-elastic";
  bool have_best = false;
  bool have_fastest = false;

  // Selection sweeps in t order regardless of evaluation thread count.
  for (size_t i = 0; i < plans.size(); ++i) {
    const PlanEstimate& estimate = estimates[i];
    if (!have_fastest || estimate.jct_mean < fastest.estimate.jct_mean) {
      fastest.plan = plans[i];
      fastest.estimate = estimate;
      have_fastest = true;
    }
    if (!estimate.MeetsDeadline(inputs.deadline)) {
      continue;
    }
    if (!have_best || estimate.cost_mean < best.estimate.cost_mean) {
      best.plan = plans[i];
      best.estimate = estimate;
      have_best = true;
    }
  }

  if (have_best) {
    best.feasible = true;
    return best;
  }
  fastest.feasible = false;
  return fastest;
}

PlannedJob PlanNaiveElastic(const PlannerInputs& inputs, const PlannerOptions& options) {
  PlanEvaluator evaluator(inputs, options);
  return PlanNaiveElastic(evaluator);
}

}  // namespace rubberband
