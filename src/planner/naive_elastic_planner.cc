// Naive elastic baseline (paper section 6.3.1).
//
// The cluster is resized elastically, but each trial's allocation is a
// constant number of GPUs across all stages (the strategy of prior work
// such as ASHA's elastic deployments): stage i gets t * trials_i GPUs. The
// planner enumerates t and returns the cheapest feasible choice. This
// policy front-loads enormous clusters under tight deadlines (512 GPUs in
// the paper's 20-minute experiment) because the only way to speed up the
// long final stages is to raise t for *every* stage.

#include "src/planner/planner.h"

namespace rubberband {

PlannedJob PlanNaiveElastic(const PlannerInputs& inputs, const PlannerOptions& options) {
  inputs.spec.Validate();

  PlannedJob best;
  best.planner = "naive-elastic";
  PlannedJob fastest;
  fastest.planner = "naive-elastic";
  bool have_best = false;
  bool have_fastest = false;

  for (int t = 1; t <= options.max_gpus_per_trial; ++t) {
    std::vector<int> stage_gpus;
    bool within_cap = true;
    for (const Stage& stage : inputs.spec.stages()) {
      const int gpus = t * stage.num_trials;
      if (gpus > options.max_total_gpus) {
        within_cap = false;
        break;
      }
      stage_gpus.push_back(gpus);
    }
    if (!within_cap) {
      break;
    }
    const AllocationPlan plan{std::move(stage_gpus)};
    const PlanEstimate estimate = EstimatePlan(inputs, plan, options);

    if (!have_fastest || estimate.jct_mean < fastest.estimate.jct_mean) {
      fastest.plan = plan;
      fastest.estimate = estimate;
      have_fastest = true;
    }
    if (!estimate.MeetsDeadline(inputs.deadline)) {
      continue;
    }
    if (!have_best || estimate.cost_mean < best.estimate.cost_mean) {
      best.plan = plan;
      best.estimate = estimate;
      have_best = true;
    }
  }

  if (have_best) {
    best.feasible = true;
    return best;
  }
  fastest.feasible = false;
  return fastest;
}

}  // namespace rubberband
