// Planning over compiled experiments: GPU-per-stage optimization for any
// scheduler the plan compiler lowers.
//
// Every CompiledUnit is a staged spec the existing planners already
// optimize, so planning a compiled experiment is per-unit planning under a
// shared deadline: Hyperband's brackets are planned concurrently (each gets
// the full deadline — they run side by side as sub-DAGs of one job), and an
// ASHA envelope is planned *statically*, because the engine executes on a
// fixed worker pool whose size this plan chooses.

#ifndef SRC_PLANNER_COMPILED_H_
#define SRC_PLANNER_COMPILED_H_

#include <vector>

#include "src/planner/planner.h"
#include "src/spec/compile.h"

namespace rubberband {

struct CompiledPlannedExperiment {
  // One planned job per compiled unit, in unit order.
  std::vector<PlannedJob> units;
  bool feasible = false;  // every unit meets the deadline
  // kAsha: worker-gang pool size derived from the envelope's static plan.
  int asha_workers = 0;

  // Concurrent units: the experiment finishes when its slowest unit does,
  // and pays for all of them.
  Seconds EstimatedJct() const;
  Money EstimatedCost() const;
};

// Plans every unit of `compiled` against the same absolute deadline:
// PlanGreedy for staged units, PlanStatic for an ASHA envelope.
CompiledPlannedExperiment PlanCompiledExperiment(const CompiledPlan& compiled,
                                                 const ModelProfile& model,
                                                 const CloudProfile& cloud, Seconds deadline,
                                                 const PlannerOptions& options = {});

}  // namespace rubberband

#endif  // SRC_PLANNER_COMPILED_H_
