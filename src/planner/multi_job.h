// Multi-job planning (paper Figure 6: "a collection of [specifications]
// can specify Hyperband-based methods as a multi-job").
//
// A Hyperband run executes its SHA brackets back to back; the multi-job
// planner splits one overall time constraint across the brackets and
// compiles an elastic plan per bracket. Deadline shares start proportional
// to each bracket's total work (GPU-iterations), and slack left over by a
// bracket that planned under its share rolls forward into the remaining
// brackets.

#ifndef SRC_PLANNER_MULTI_JOB_H_
#define SRC_PLANNER_MULTI_JOB_H_

#include <vector>

#include "src/planner/planner.h"

namespace rubberband {

struct MultiJobPlan {
  std::vector<PlannedJob> jobs;  // one per bracket, in execution order
  Seconds total_jct_mean = 0.0;
  Money total_cost_mean;
  bool feasible = false;  // every bracket met its share
};

MultiJobPlan PlanMultiJob(const std::vector<ExperimentSpec>& brackets, const ModelProfile& model,
                          const CloudProfile& cloud, Seconds deadline,
                          const PlannerOptions& options = {});

}  // namespace rubberband

#endif  // SRC_PLANNER_MULTI_JOB_H_
