// Stage-incremental, memoized, parallel plan evaluation — the fast path
// under Algorithm 2's inner loop.
//
// EstimatePlan rebuilds the full execution DAG and sweeps every node for
// every candidate; the greedy step mutates ONE stage, so almost all of
// that work re-derives results the previous candidate already computed.
// PlanEvaluator exploits the keyed sampling streams (see src/dag/simulate.h)
// to cache at two levels:
//   * stage cache — per (stage index, gpus, prev_instances): the resolved
//     StageBlock plus its `sim_samples` StageDraws. A candidate plan then
//     costs O(stages) cache lookups plus one composition pass, with only
//     changed stages re-simulated.
//   * plan memo — allocation vector -> PlanEstimate. Warm starts revisit
//     plans constantly (the static optimum is re-scored by every descent),
//     and the tuning service re-plans the same job at admission, dequeue,
//     and fault boundaries.
// Both caches survive set_deadline(): estimates do not depend on the
// deadline (feasibility is checked by the planners against inputs().deadline).
//
// Every estimate is bit-identical to the fresh-DAG path (EstimatePlan with
// the same seed): both compose the same SampleStageDraw results with the
// same SampleComposer arithmetic in the same order. EvaluateBatch may fan
// candidates out over a ThreadPool; evaluation is pure, results land in
// per-index slots, and counters are mutex-guarded, so parallel runs are
// bit-identical to serial ones.

#ifndef SRC_PLANNER_EVALUATOR_H_
#define SRC_PLANNER_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/dag/simulate.h"
#include "src/obs/metrics.h"
#include "src/planner/planner.h"

namespace rubberband {

// Cache instrumentation, aggregatable across evaluators (the tuning
// service sums per-job evaluators and per-replan evaluators into one
// service-level metric).
struct PlannerCacheStats {
  int64_t plan_evaluations = 0;  // plans actually composed (memo misses)
  int64_t plan_memo_hits = 0;    // plans served from the memo
  int64_t stage_evaluations = 0; // stage blocks sampled (cache misses)
  int64_t stage_cache_hits = 0;  // stage lookups served from the cache

  // Fraction of plan estimates served from the memo.
  double PlanHitRate() const {
    const int64_t total = plan_evaluations + plan_memo_hits;
    return total > 0 ? static_cast<double>(plan_memo_hits) / static_cast<double>(total) : 0.0;
  }
  // Fraction of stage lookups served from the stage cache.
  double StageHitRate() const {
    const int64_t total = stage_evaluations + stage_cache_hits;
    return total > 0 ? static_cast<double>(stage_cache_hits) / static_cast<double>(total) : 0.0;
  }

  PlannerCacheStats& operator+=(const PlannerCacheStats& other) {
    plan_evaluations += other.plan_evaluations;
    plan_memo_hits += other.plan_memo_hits;
    stage_evaluations += other.stage_evaluations;
    stage_cache_hits += other.stage_cache_hits;
    return *this;
  }
};

// Exports accumulated cache statistics into a metrics scope (typically
// "planner"): absolute counters plus the two hit-rate gauges. Add-based, so
// repeated publishes from different evaluators aggregate naturally.
void PublishCacheStats(const PlannerCacheStats& stats, const MetricsScope& scope);

class PlanEvaluator {
 public:
  PlanEvaluator(const PlannerInputs& inputs, const PlannerOptions& options);
  ~PlanEvaluator();

  PlanEvaluator(const PlanEvaluator&) = delete;
  PlanEvaluator& operator=(const PlanEvaluator&) = delete;

  const PlannerInputs& inputs() const { return inputs_; }
  const PlannerOptions& options() const { return options_; }

  // Re-aims the evaluator at a new deadline without dropping any cache:
  // sampled spans and costs are deadline-independent, only the planners'
  // feasibility filter changes. This is what lets one evaluator serve a
  // job's admission plan and its (tighter-deadline) dequeue re-plan.
  void set_deadline(Seconds deadline) { inputs_.deadline = deadline; }

  PlanEstimate Evaluate(const AllocationPlan& plan);

  // Evaluates a candidate batch, preserving order; runs on the evaluator's
  // thread pool when options().eval_threads > 1.
  std::vector<PlanEstimate> EvaluateBatch(const std::vector<AllocationPlan>& plans);

  PlannerCacheStats stats() const;

 private:
  // A cached stage: its resolved block and one draw per simulation sample.
  // Entries are immutable once published, so lookups can hold bare
  // pointers across the (mutex-released) composition pass.
  struct StageEntry {
    StageBlock block;
    std::vector<StageDraw> draws;
  };

  struct VectorHash {
    size_t operator()(const std::vector<int>& v) const;
  };

  const StageEntry* GetStage(int stage_index, int gpus, int prev_instances);
  PlanEstimate EvaluateFresh(const AllocationPlan& plan);
  PlanEstimate EvaluateIncremental(const AllocationPlan& plan);
  // Risk-aware scoring under a preemptible market: prices each stage's
  // expected rework (restart latency + warning-bounded lost work, times the
  // stage's expected preemption count) into the estimate. Applied
  // identically after the fresh and incremental paths (so they still match
  // bit for bit, and the memo stays consistent); a no-op unless the cloud
  // profile's spot market has a preemption hazard, so on-demand planning is
  // unperturbed.
  void ApplyRiskAdjustment(const AllocationPlan& plan, PlanEstimate* estimate) const;

  PlannerInputs inputs_;
  PlannerOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when eval_threads <= 1

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<StageEntry>> stage_cache_;
  std::unordered_map<std::vector<int>, PlanEstimate, VectorHash> memo_;
  PlannerCacheStats stats_;
};

}  // namespace rubberband

#endif  // SRC_PLANNER_EVALUATOR_H_
