// RubberBand's iterative-greedy allocation planner (paper section 4.3,
// Algorithm 2).
//
// Warm-started from the cost-optimal static allocation (and 2x/3x scaled
// variants, to let early stages *exceed* the static size — the paper's
// Table 3 plan allocates 32 GPUs to stage 0 against a 24-GPU static
// optimum). Each greedy step generates one candidate per stage by stepping
// that stage's allocation down to the next fair value, evaluates all
// candidates with the simulator, and keeps the one with the largest
// cost-marginal benefit
//
//     m_i = (C(a*) - C(a_i)) / (T(a_i) - T(a*))
//
// normalizing cost reduction by the JCT increase it buys (step sizes vary,
// so raw cost deltas are not comparable). Terminates when the best
// candidate no longer improves cost or would violate the time constraint.
// The solution is therefore never predicted to be worse than the best warm
// start, i.e. never worse than the optimal static allocation.
//
// All estimates flow through the caller's PlanEvaluator: each descent
// iteration batch-evaluates its candidates (possibly on a thread pool) and
// then selects in generation order, so the chosen step — and hence the
// whole descent — is identical at any thread count. Consecutive descent
// iterations and overlapping warm starts mostly differ in one stage, which
// the evaluator's stage cache and plan memo turn into near-free lookups.

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <utility>

#include "src/planner/evaluator.h"
#include "src/planner/planner.h"

namespace rubberband {
namespace {

struct Evaluated {
  AllocationPlan plan;
  PlanEstimate estimate;
};

// One run of the greedy descent from a feasible warm start.
Evaluated Optimize(PlanEvaluator& evaluator, Evaluated current) {
  const PlannerInputs& inputs = evaluator.inputs();
  const PlannerOptions& options = evaluator.options();
  constexpr int kMaxIterations = 10'000;
  for (int iteration = 0; iteration < kMaxIterations; ++iteration) {
    // Candidate generation: decrement each stage independently to the next
    // fair allocation.
    std::vector<AllocationPlan> candidates;
    const int gpg = inputs.cloud.gpus_per_instance();
    for (int i = 0; i < inputs.spec.num_stages(); ++i) {
      const int trials = inputs.spec.stage(i).num_trials;
      const int cur = current.plan.gpus(i);
      // Two step candidates per stage: the paper's smallest fair step, and
      // the largest fair allocation that sheds a whole instance. The second
      // lets the descent cross the flat cost plateaus that per-instance
      // billing creates between instance boundaries (e.g. 20 -> 19 GPUs on
      // 4-GPU instances costs the same; 20 -> 16 is the useful move).
      std::vector<int> steps;
      const int fair_step = NextLowerFairAllocation(cur, trials);
      if (fair_step >= 1) {
        steps.push_back(fair_step);
      }
      const int cur_instances = (cur + gpg - 1) / gpg;
      if (cur_instances > 1) {
        const int aligned = FairFloorAllocation((cur_instances - 1) * gpg, trials);
        if (aligned >= 1 && aligned < cur && aligned != fair_step) {
          steps.push_back(aligned);
        }
      }
      for (int lower : steps) {
        AllocationPlan candidate = current.plan;
        candidate.gpus(i) = lower;
        candidates.push_back(std::move(candidate));
      }
    }
    const std::vector<PlanEstimate> estimates = evaluator.EvaluateBatch(candidates);

    // Selection in generation (stage, step) order with strict improvement,
    // matching a serial first-max sweep exactly.
    size_t best_index = 0;
    double best_marginal = -std::numeric_limits<double>::infinity();
    bool found = false;
    for (size_t c = 0; c < candidates.size(); ++c) {
      const PlanEstimate& estimate = estimates[c];
      if (!estimate.MeetsDeadline(inputs.deadline)) {
        continue;
      }
      const double cost_delta =
          current.estimate.cost_mean.dollars() - estimate.cost_mean.dollars();
      if (cost_delta <= 0.0) {
        continue;
      }
      const double jct_delta = estimate.jct_mean - current.estimate.jct_mean;
      // A candidate that is cheaper *and* no slower strictly dominates.
      const double marginal = jct_delta <= 0.0 ? std::numeric_limits<double>::infinity()
                                               : cost_delta / jct_delta;
      if (!found || marginal > best_marginal) {
        best_index = c;
        best_marginal = marginal;
        found = true;
      }
    }

    if (!found) {
      break;
    }
    const double relative_improvement =
        (current.estimate.cost_mean.dollars() - estimates[best_index].cost_mean.dollars()) /
        std::max(current.estimate.cost_mean.dollars(), 1e-9);
    current = Evaluated{std::move(candidates[best_index]), estimates[best_index]};
    if (relative_improvement < options.min_relative_improvement) {
      break;
    }
  }
  return current;
}

}  // namespace

PlannedJob PlanGreedy(PlanEvaluator& evaluator) {
  const PlannerInputs& inputs = evaluator.inputs();
  const PlannerOptions& options = evaluator.options();
  inputs.spec.Validate();

  // Warm start: the cost-optimal static allocation (section 3.2). If even
  // that is infeasible, return it as the best-effort answer.
  const PlannedJob static_job = PlanStatic(evaluator);
  PlannedJob result;
  result.planner = "rubberband";
  if (!static_job.feasible) {
    result.plan = static_job.plan;
    result.estimate = static_job.estimate;
    result.feasible = false;
    return result;
  }

  const int static_gpus = static_job.plan.gpus(0);
  bool have_best = false;
  Evaluated best;

  // Distinct multipliers can round to the same warm plan (e.g. 2x and 3x
  // both hitting the per-trial cap); optimizing the same start twice cannot
  // change the answer, so duplicates are skipped outright.
  std::set<std::vector<int>> seen_warm_starts;

  for (double multiplier : options.warm_start_multipliers) {
    // Scale the static size and round each stage up to a fair allocation,
    // capped at max_gpus_per_trial per trial.
    std::vector<int> stage_gpus;
    for (const Stage& stage : inputs.spec.stages()) {
      const int scaled = static_cast<int>(std::lround(static_gpus * multiplier));
      int fair = RoundUpToFairAllocation(scaled, stage.num_trials);
      const int cap = std::min(stage.num_trials * options.max_gpus_per_trial,
                               options.max_total_gpus);
      if (fair > cap) {
        fair = RoundUpToFairAllocation(cap, stage.num_trials);
        while (fair > cap) {
          const int lower = NextLowerFairAllocation(fair, stage.num_trials);
          if (lower < 1) {
            fair = 1;
            break;
          }
          fair = lower;
        }
      }
      stage_gpus.push_back(fair);
    }
    if (!seen_warm_starts.insert(stage_gpus).second) {
      continue;
    }
    Evaluated warm;
    warm.plan = AllocationPlan{std::move(stage_gpus)};
    warm.estimate = evaluator.Evaluate(warm.plan);
    if (!warm.estimate.MeetsDeadline(inputs.deadline)) {
      continue;
    }
    Evaluated optimized = Optimize(evaluator, std::move(warm));
    if (!have_best || optimized.estimate.cost_mean < best.estimate.cost_mean ||
        (optimized.estimate.cost_mean == best.estimate.cost_mean &&
         optimized.estimate.jct_mean < best.estimate.jct_mean)) {
      best = std::move(optimized);
      have_best = true;
    }
  }

  // The optimal static allocation is itself a valid elastic plan. Keeping
  // it as a candidate makes the "never worse than static" guarantee
  // structural: warm starts are rounded up to per-stage fair allocations,
  // so a descent can in principle terminate above the raw static optimum.
  if (!have_best || static_job.estimate.cost_mean < best.estimate.cost_mean) {
    result.plan = static_job.plan;
    result.estimate = static_job.estimate;
    result.feasible = true;
    return result;
  }

  result.plan = std::move(best.plan);
  result.estimate = best.estimate;
  result.feasible = true;
  return result;
}

PlannedJob PlanGreedy(const PlannerInputs& inputs, const PlannerOptions& options) {
  PlanEvaluator evaluator(inputs, options);
  return PlanGreedy(evaluator);
}

}  // namespace rubberband
