// Resource allocation planners.
//
// All planners share one contract: given the experiment specification, the
// model scaling profile, the cloud profile and a time constraint, produce an
// allocation plan (GPUs per stage) minimizing predicted cost subject to the
// predicted JCT fitting the constraint. Three implementations:
//   * StaticPlanner      — cost-optimal fixed-size cluster (section 3.2
//                          baseline; also Algorithm 2's warm start);
//   * NaiveElasticPlanner — cost-optimal plan with a *constant GPUs per
//                          trial* across stages (elastic cluster, inelastic
//                          per-trial allocation — the prior-work baseline of
//                          section 6.3.1);
//   * GreedyPlanner      — RubberBand's iterative-greedy optimizer
//                          (Algorithm 2) with multi-warm-starting.
//
// Every candidate plan keeps the fair-division invariant: each stage's
// allocation is either a factor or a multiple of that stage's trial count,
// so resources always divide fairly among running trials.

#ifndef SRC_PLANNER_PLANNER_H_
#define SRC_PLANNER_PLANNER_H_

#include <string>
#include <vector>

#include "src/cloud/cloud_profile.h"
#include "src/common/time.h"
#include "src/dag/simulate.h"
#include "src/model/profile.h"
#include "src/planner/plan.h"
#include "src/spec/experiment_spec.h"

namespace rubberband {

struct PlannerInputs {
  ExperimentSpec spec;
  ModelProfile model;
  CloudProfile cloud;
  Seconds deadline = 0.0;
};

// How PlanEvaluator computes estimates. Both modes produce bit-identical
// results (they share SampleStageDraw/SampleComposer); kFresh rebuilds the
// DAG per candidate and exists as the performance baseline and as the
// reference the equivalence tests compare against.
enum class PlanEvaluation { kIncremental, kFresh };

struct PlannerOptions {
  // Monte-Carlo samples per plan evaluation. All candidates are evaluated
  // with the same seed (common random numbers), so comparisons between
  // candidates are low-variance even at small sample counts.
  int sim_samples = 20;
  uint64_t seed = 42;

  // Search bounds: the largest GPUs-per-trial considered and the hard cap
  // on any stage's total allocation.
  int max_gpus_per_trial = 32;
  int max_total_gpus = 4096;

  // Algorithm 2's delta: stop when the best candidate improves cost by less
  // than this relative amount.
  double min_relative_improvement = 1e-6;

  // Warm-start multipliers applied to the optimal static allocation
  // (section 4.3, "Warm start": e.g. 1x, 2x, 3x).
  std::vector<double> warm_start_multipliers = {1.0, 2.0, 3.0};

  // Candidate evaluation strategy (see PlanEvaluation).
  PlanEvaluation evaluation = PlanEvaluation::kIncremental;
  // Threads evaluating a candidate batch (1 = serial). Results are
  // bit-identical at any thread count: evaluations are pure and selection
  // breaks ties by generation order, not completion order.
  int eval_threads = 1;
};

struct PlannedJob {
  AllocationPlan plan;
  PlanEstimate estimate;
  std::string planner;
  // False when no plan meets the deadline; `plan` is then the fastest plan
  // found (best effort).
  bool feasible = false;
};

// Builds the DAG for `plan` and simulates it (the planner's inner loop; also
// the "simulated" columns of Table 2).
PlanEstimate EstimatePlan(const PlannerInputs& inputs, const AllocationPlan& plan,
                          const PlannerOptions& options = {});

// Largest fair allocation strictly below `current` for a stage of `trials`
// (factor or multiple of `trials`); 0 when current is already 1. This
// defines Algorithm 2's variable step size.
int NextLowerFairAllocation(int current, int trials);

// Smallest fair allocation >= `value` for `trials` (for warm-start rounding).
int RoundUpToFairAllocation(int value, int trials);

// Largest fair allocation <= `value` for `trials`; 0 when value < 1.
int FairFloorAllocation(int value, int trials);

// Smallest fair allocation strictly above `current` for `trials`.
int NextHigherFairAllocation(int current, int trials);

PlannedJob PlanStatic(const PlannerInputs& inputs, const PlannerOptions& options = {});
PlannedJob PlanNaiveElastic(const PlannerInputs& inputs, const PlannerOptions& options = {});
PlannedJob PlanGreedy(const PlannerInputs& inputs, const PlannerOptions& options = {});

// Evaluator-sharing overloads: all estimates flow through (and populate)
// the caller's PlanEvaluator, so repeated planning over the same job —
// warm starts within one PlanGreedy call, admission followed by dequeue
// re-planning in the tuning service, replans at stage boundaries — reuses
// prior stage simulations and whole-plan memo entries. The convenience
// overloads above construct a private evaluator per call.
class PlanEvaluator;
PlannedJob PlanStatic(PlanEvaluator& evaluator);
PlannedJob PlanNaiveElastic(PlanEvaluator& evaluator);
PlannedJob PlanGreedy(PlanEvaluator& evaluator);
PlannedJob PlanGreedyMinTime(PlanEvaluator& evaluator, Money budget);

// Instance-type selection (the paper takes the type as user input and
// defers selection to Ernest/CherryPick-style systems; this wrapper does
// the obvious thing those systems enable): compile a plan for each
// candidate instance type and return the cheapest feasible one. The
// returned job's `cloud` field says which type won.
struct TypedPlannedJob {
  PlannedJob job;
  CloudProfile cloud;
};
TypedPlannedJob PlanWithInstanceSelection(const PlannerInputs& inputs,
                                          const std::vector<InstanceType>& candidates,
                                          const PlannerOptions& options = {});

// The dual problem (paper section 1, footnote 1): minimize job completion
// time subject to a cost budget. Greedy ascent from the cheapest static
// allocation: each step raises one stage's allocation to the next fair
// value, picking the candidate with the largest JCT reduction per dollar,
// while predicted cost stays within `budget`. `inputs.deadline` is ignored.
PlannedJob PlanGreedyMinTime(const PlannerInputs& inputs, Money budget,
                             const PlannerOptions& options = {});

}  // namespace rubberband

#endif  // SRC_PLANNER_PLANNER_H_
