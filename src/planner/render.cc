#include "src/planner/render.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "src/common/time.h"
#include "src/dag/builder.h"
#include "src/dag/simulate.h"

namespace rubberband {
namespace {

struct StageSpan {
  Seconds start = 0.0;
  Seconds end = 0.0;
  int gpus = 0;
};

std::vector<StageSpan> ComputeSpans(const ExperimentSpec& spec, const AllocationPlan& plan,
                                    const ModelProfile& model, const CloudProfile& cloud) {
  const ExecutionDag dag = BuildDag(spec, plan, model, cloud);
  const std::vector<Seconds> finish = MeanFinishTimes(dag);
  std::vector<StageSpan> spans;
  Seconds previous_end = 0.0;
  for (size_t i = 0; i < dag.stages().size(); ++i) {
    StageSpan span;
    span.start = previous_end;
    span.end = finish[static_cast<size_t>(dag.stages()[i].sync_node)];
    span.gpus = plan.gpus(static_cast<int>(i));
    previous_end = span.end;
    spans.push_back(span);
  }
  return spans;
}

// Renders spans onto a fixed time axis [0, horizon].
std::string RenderSpans(const std::vector<StageSpan>& spans, Seconds horizon, int width) {
  // GPU levels: one row per distinct allocation value, descending.
  std::set<int, std::greater<int>> levels;
  for (const StageSpan& span : spans) {
    levels.insert(span.gpus);
  }

  const auto stage_at = [&](Seconds t) -> const StageSpan* {
    for (const StageSpan& span : spans) {
      if (t >= span.start && t < span.end) {
        return &span;
      }
    }
    return nullptr;
  };

  std::ostringstream os;
  os << "GPUs\n";
  for (int level : levels) {
    char label[16];
    std::snprintf(label, sizeof(label), "%4d |", level);
    os << label;
    for (int c = 0; c < width; ++c) {
      const Seconds t = horizon * (static_cast<double>(c) + 0.5) / width;
      const StageSpan* span = stage_at(t);
      os << (span != nullptr && span->gpus >= level ? '#' : ' ');
    }
    os << "\n";
  }
  os << "     +" << std::string(static_cast<size_t>(width), '-') << " time\n";

  // Stage ruler.
  os << "      ";
  for (int c = 0; c < width; ++c) {
    const Seconds t = horizon * (static_cast<double>(c) + 0.5) / width;
    int index = -1;
    for (size_t i = 0; i < spans.size(); ++i) {
      if (t >= spans[i].start && t < spans[i].end) {
        index = static_cast<int>(i);
        break;
      }
    }
    os << (index >= 0 ? static_cast<char>('0' + index % 10) : ' ');
  }
  os << "  (stage)\n";
  return os.str();
}

}  // namespace

std::string RenderPlan(const ExperimentSpec& spec, const AllocationPlan& plan,
                       const ModelProfile& model, const CloudProfile& cloud, int width) {
  width = std::max(width, 16);
  const std::vector<StageSpan> spans = ComputeSpans(spec, plan, model, cloud);
  const Seconds horizon = spans.empty() ? 1.0 : spans.back().end;
  std::ostringstream os;
  os << "plan " << plan.ToString() << ", JCT (mean) " << FormatDuration(horizon) << "\n";
  os << RenderSpans(spans, horizon, width);
  return os.str();
}

std::string RenderComparison(const ExperimentSpec& spec, const AllocationPlan& static_plan,
                             const AllocationPlan& elastic_plan, const ModelProfile& model,
                             const CloudProfile& cloud, int width) {
  width = std::max(width, 16);
  const std::vector<StageSpan> static_spans = ComputeSpans(spec, static_plan, model, cloud);
  const std::vector<StageSpan> elastic_spans = ComputeSpans(spec, elastic_plan, model, cloud);
  const Seconds horizon =
      std::max(static_spans.empty() ? 0.0 : static_spans.back().end,
               elastic_spans.empty() ? 0.0 : elastic_spans.back().end);

  std::ostringstream os;
  os << "-- static " << static_plan.ToString() << " --\n"
     << RenderSpans(static_spans, horizon, width) << "\n-- elastic " << elastic_plan.ToString()
     << " --\n"
     << RenderSpans(elastic_spans, horizon, width);
  return os.str();
}

}  // namespace rubberband
