#include "src/planner/compiled.h"

#include <algorithm>

namespace rubberband {

Seconds CompiledPlannedExperiment::EstimatedJct() const {
  Seconds jct = 0.0;
  for (const PlannedJob& unit : units) {
    jct = std::max(jct, unit.estimate.jct_mean);
  }
  return jct;
}

Money CompiledPlannedExperiment::EstimatedCost() const {
  Money cost;
  for (const PlannedJob& unit : units) {
    cost += unit.estimate.cost_mean;
  }
  return cost;
}

CompiledPlannedExperiment PlanCompiledExperiment(const CompiledPlan& compiled,
                                                 const ModelProfile& model,
                                                 const CloudProfile& cloud, Seconds deadline,
                                                 const PlannerOptions& options) {
  CompiledPlannedExperiment planned;
  planned.feasible = true;
  for (const CompiledUnit& unit : compiled.units) {
    const PlannerInputs inputs{unit.spec, model, cloud, deadline};
    PlannedJob job = compiled.asha ? PlanStatic(inputs, options) : PlanGreedy(inputs, options);
    planned.feasible = planned.feasible && job.feasible;
    planned.units.push_back(std::move(job));
  }
  if (compiled.asha) {
    const int peak = planned.units.front().plan.MaxGpus();
    planned.asha_workers = std::max(1, peak / compiled.asha->gpus_per_trial);
  }
  return planned;
}

}  // namespace rubberband
