#include "src/planner/plan.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rubberband {

AllocationPlan AllocationPlan::Uniform(int num_stages, int gpus) {
  return AllocationPlan(std::vector<int>(static_cast<size_t>(num_stages), gpus));
}

int AllocationPlan::MaxGpus() const {
  if (stage_gpus_.empty()) {
    return 0;
  }
  return *std::max_element(stage_gpus_.begin(), stage_gpus_.end());
}

bool AllocationPlan::IsStatic() const {
  return std::all_of(stage_gpus_.begin(), stage_gpus_.end(),
                     [this](int g) { return g == stage_gpus_.front(); });
}

void AllocationPlan::Validate(int num_spec_stages) const {
  if (num_stages() != num_spec_stages) {
    throw std::invalid_argument("plan stage count does not match experiment spec");
  }
  for (int g : stage_gpus_) {
    if (g < 1) {
      throw std::invalid_argument("plan allocates fewer than 1 GPU to a stage");
    }
  }
}

std::string AllocationPlan::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < stage_gpus_.size(); ++i) {
    os << (i > 0 ? ", " : "") << stage_gpus_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace rubberband
