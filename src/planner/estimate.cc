#include <algorithm>

#include "src/dag/builder.h"
#include "src/planner/planner.h"

namespace rubberband {

PlanEstimate EstimatePlan(const PlannerInputs& inputs, const AllocationPlan& plan,
                          const PlannerOptions& options) {
  const ExecutionDag dag = BuildDag(inputs.spec, plan, inputs.model, inputs.cloud);
  SimulateOptions sim;
  sim.num_samples = options.sim_samples;
  sim.seed = options.seed;
  return SimulatePlan(dag, inputs.model, inputs.cloud, sim);
}

int NextLowerFairAllocation(int current, int trials) {
  if (current <= 1) {
    return 0;
  }
  if (current > trials) {
    // Multiples of `trials`: step down to the next lower multiple (or to
    // `trials` itself if current was not aligned).
    const int lower = ((current - 1) / trials) * trials;
    return std::max(lower, trials);
  }
  // current <= trials: largest divisor of `trials` strictly below current.
  for (int v = current - 1; v >= 1; --v) {
    if (trials % v == 0) {
      return v;
    }
  }
  return 0;
}

int FairFloorAllocation(int value, int trials) {
  if (value < 1) {
    return 0;
  }
  if (value >= trials) {
    return (value / trials) * trials;
  }
  for (int v = value; v >= 1; --v) {
    if (trials % v == 0) {
      return v;
    }
  }
  return 0;
}

int RoundUpToFairAllocation(int value, int trials) {
  value = std::max(value, 1);
  if (value >= trials) {
    return ((value + trials - 1) / trials) * trials;
  }
  for (int v = value; v <= trials; ++v) {
    if (trials % v == 0) {
      return v;
    }
  }
  return trials;
}

}  // namespace rubberband
