// Instance-type selection: plan against each candidate type and keep the
// cheapest feasible result. The trade-off being navigated: bigger nodes
// colocate larger gangs (no cross-node penalty up to 8 GPUs on a
// p3.16xlarge) but provision in coarser, more expensive units, so
// fine-grained elastic plans can prefer smaller nodes.

#include <stdexcept>

#include "src/planner/planner.h"

namespace rubberband {

TypedPlannedJob PlanWithInstanceSelection(const PlannerInputs& inputs,
                                          const std::vector<InstanceType>& candidates,
                                          const PlannerOptions& options) {
  if (candidates.empty()) {
    throw std::invalid_argument("no candidate instance types");
  }

  TypedPlannedJob best;
  bool have_feasible = false;
  bool have_any = false;

  for (const InstanceType& type : candidates) {
    if (type.gpus < 1) {
      continue;  // CPU-only hosts cannot run trials
    }
    PlannerInputs typed = inputs;
    typed.cloud.instance = type;
    PlannedJob job = PlanGreedy(typed, options);

    const bool better_feasible =
        job.feasible && (!have_feasible || job.estimate.cost_mean < best.job.estimate.cost_mean);
    const bool better_fallback =
        !have_feasible && !job.feasible &&
        (!have_any || job.estimate.jct_mean < best.job.estimate.jct_mean);
    if (better_feasible || better_fallback) {
      best.job = std::move(job);
      best.cloud = typed.cloud;
      have_feasible = have_feasible || best.job.feasible;
    }
    have_any = true;
  }

  if (!have_any) {
    throw std::invalid_argument("no candidate instance type has GPUs");
  }
  return best;
}

}  // namespace rubberband
