#include "src/planner/multi_job.h"

#include <numeric>
#include <stdexcept>

namespace rubberband {

MultiJobPlan PlanMultiJob(const std::vector<ExperimentSpec>& brackets, const ModelProfile& model,
                          const CloudProfile& cloud, Seconds deadline,
                          const PlannerOptions& options) {
  if (brackets.empty()) {
    throw std::invalid_argument("multi-job needs at least one bracket");
  }

  // Initial deadline shares, proportional to total trial-iterations.
  std::vector<double> work;
  work.reserve(brackets.size());
  for (const ExperimentSpec& bracket : brackets) {
    bracket.Validate();
    work.push_back(static_cast<double>(bracket.TotalWork()));
  }
  const double total_work = std::accumulate(work.begin(), work.end(), 0.0);

  MultiJobPlan result;
  result.feasible = true;
  Seconds remaining_deadline = deadline;
  double remaining_work = total_work;

  for (size_t i = 0; i < brackets.size(); ++i) {
    const Seconds share =
        remaining_work > 0.0 ? remaining_deadline * (work[i] / remaining_work) : 0.0;
    PlannedJob job = PlanGreedy({brackets[i], model, cloud, share}, options);
    result.feasible = result.feasible && job.feasible;
    result.total_jct_mean += job.estimate.jct_mean;
    result.total_cost_mean += job.estimate.cost_mean;
    // Slack (or overrun) rolls into the remaining brackets.
    remaining_deadline -= job.estimate.jct_mean;
    remaining_work -= work[i];
    result.jobs.push_back(std::move(job));
  }

  result.feasible = result.feasible && result.total_jct_mean <= deadline;
  return result;
}

}  // namespace rubberband
