// Time-minimizing planner under a cost budget — the dual of Algorithm 2.
//
// The cost-minimizing planner descends from a fast warm start, shedding
// allocation where it buys the most cost per second given up. This planner
// ascends from the *cheapest* plan, adding allocation where it buys the
// most time per dollar spent, until the budget is exhausted or extra GPUs
// stop helping (the scaling plateau).
//
// Like the descent planner, every estimate flows through a PlanEvaluator:
// each ascent iteration batch-evaluates its candidates and selects in
// generation order, so results are identical serial or parallel.

#include <algorithm>
#include <limits>
#include <utility>

#include "src/planner/evaluator.h"
#include "src/planner/planner.h"

namespace rubberband {

int NextHigherFairAllocation(int current, int trials) {
  if (current < 1) {
    return 1;
  }
  if (current >= trials) {
    return ((current / trials) + 1) * trials;
  }
  for (int v = current + 1; v <= trials; ++v) {
    if (trials % v == 0) {
      return v;
    }
  }
  return 2 * trials;
}

namespace {

struct Evaluated {
  AllocationPlan plan;
  PlanEstimate estimate;
};

// Cheapest static allocation ignoring any deadline (the ascent's floor).
Evaluated CheapestStatic(PlanEvaluator& evaluator) {
  const PlannerInputs& inputs = evaluator.inputs();
  const PlannerOptions& options = evaluator.options();
  std::vector<AllocationPlan> plans;
  for (int gpus = 1; gpus <= std::min(64, options.max_total_gpus); ++gpus) {
    plans.push_back(AllocationPlan::Uniform(inputs.spec.num_stages(), gpus));
  }
  const std::vector<PlanEstimate> estimates = evaluator.EvaluateBatch(plans);

  Evaluated best;
  bool have = false;
  for (size_t i = 0; i < plans.size(); ++i) {
    const PlanEstimate& estimate = estimates[i];
    if (!have || estimate.cost_mean < best.estimate.cost_mean ||
        (estimate.cost_mean == best.estimate.cost_mean &&
         estimate.jct_mean < best.estimate.jct_mean)) {
      best = Evaluated{plans[i], estimate};
      have = true;
    }
  }
  return best;
}

}  // namespace

PlannedJob PlanGreedyMinTime(PlanEvaluator& evaluator, Money budget) {
  const PlannerInputs& inputs = evaluator.inputs();
  const PlannerOptions& options = evaluator.options();
  inputs.spec.Validate();

  PlannedJob result;
  result.planner = "rubberband-min-time";

  Evaluated current = CheapestStatic(evaluator);
  if (current.estimate.cost_mean > budget) {
    // Even the cheapest plan busts the budget: best effort, flagged.
    result.plan = current.plan;
    result.estimate = current.estimate;
    result.feasible = false;
    return result;
  }

  constexpr int kMaxIterations = 10'000;
  const int gpg = inputs.cloud.gpus_per_instance();
  for (int iteration = 0; iteration < kMaxIterations; ++iteration) {
    std::vector<AllocationPlan> candidates;
    for (int i = 0; i < inputs.spec.num_stages(); ++i) {
      const int trials = inputs.spec.stage(i).num_trials;
      const int cur = current.plan.gpus(i);
      std::vector<int> steps;
      const int fair_step = NextHigherFairAllocation(cur, trials);
      const int cap = std::min(trials * options.max_gpus_per_trial, options.max_total_gpus);
      if (fair_step <= cap) {
        steps.push_back(fair_step);
      }
      // Instance-aligned step: jump to the smallest fair allocation that
      // engages one more instance (crosses flat per-instance cost regions).
      const int cur_instances = (cur + gpg - 1) / gpg;
      const int aligned = RoundUpToFairAllocation(cur_instances * gpg + 1, trials);
      if (aligned > cur && aligned <= cap && aligned != fair_step) {
        steps.push_back(aligned);
      }

      for (int higher : steps) {
        AllocationPlan candidate = current.plan;
        candidate.gpus(i) = higher;
        candidates.push_back(std::move(candidate));
      }
    }
    const std::vector<PlanEstimate> estimates = evaluator.EvaluateBatch(candidates);

    size_t best_index = 0;
    double best_marginal = -std::numeric_limits<double>::infinity();
    bool found = false;
    for (size_t c = 0; c < candidates.size(); ++c) {
      const PlanEstimate& estimate = estimates[c];
      if (estimate.cost_mean > budget) {
        continue;
      }
      const double time_saved = current.estimate.jct_mean - estimate.jct_mean;
      if (time_saved <= 0.0) {
        continue;
      }
      const double cost_added =
          estimate.cost_mean.dollars() - current.estimate.cost_mean.dollars();
      // A candidate that is faster *and* no more expensive dominates.
      const double marginal = cost_added <= 0.0 ? std::numeric_limits<double>::infinity()
                                                : time_saved / cost_added;
      if (!found || marginal > best_marginal) {
        best_index = c;
        best_marginal = marginal;
        found = true;
      }
    }

    if (!found) {
      break;
    }
    current = Evaluated{std::move(candidates[best_index]), estimates[best_index]};
  }

  result.plan = std::move(current.plan);
  result.estimate = current.estimate;
  result.feasible = true;
  return result;
}

PlannedJob PlanGreedyMinTime(const PlannerInputs& inputs, Money budget,
                             const PlannerOptions& options) {
  PlanEvaluator evaluator(inputs, options);
  return PlanGreedyMinTime(evaluator, budget);
}

}  // namespace rubberband
