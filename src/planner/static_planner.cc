// Cost-optimal static allocation (paper section 3.2).
//
// The naive fixed-cluster policy: provision the smallest (cheapest) static
// cluster whose expected JCT fits the constraint. The search space is one-
// dimensional, so candidate sizes are enumerated and evaluated with the
// simulator. This is both the paper's main baseline and the warm start for
// Algorithm 2.

#include <algorithm>
#include <set>

#include "src/planner/evaluator.h"
#include "src/planner/planner.h"

namespace rubberband {
namespace {

// Candidate static cluster sizes: every size up to a small bound (dense
// coverage of the cheap region), the divisors of the initial trial count
// (fair-share sweet spots), and its multiples (parallel headroom).
std::set<int> StaticCandidates(const ExperimentSpec& spec, const PlannerOptions& options) {
  const int initial_trials = spec.stage(0).num_trials;
  const int cap =
      std::min(options.max_total_gpus,
               std::max(initial_trials * options.max_gpus_per_trial, options.max_gpus_per_trial));
  std::set<int> candidates;
  for (int g = 1; g <= std::min(cap, 64); ++g) {
    candidates.insert(g);
  }
  for (int g = 1; g * g <= initial_trials; ++g) {
    if (initial_trials % g == 0) {
      candidates.insert(g);
      candidates.insert(initial_trials / g);
    }
  }
  for (int k = 1; k * initial_trials <= cap; ++k) {
    candidates.insert(k * initial_trials);
  }
  return candidates;
}

}  // namespace

PlannedJob PlanStatic(PlanEvaluator& evaluator) {
  const PlannerInputs& inputs = evaluator.inputs();
  inputs.spec.Validate();

  std::vector<AllocationPlan> plans;
  for (int gpus : StaticCandidates(inputs.spec, evaluator.options())) {
    plans.push_back(AllocationPlan::Uniform(inputs.spec.num_stages(), gpus));
  }
  const std::vector<PlanEstimate> estimates = evaluator.EvaluateBatch(plans);

  PlannedJob best;
  best.planner = "static";
  PlannedJob fastest;  // fallback when nothing meets the deadline
  fastest.planner = "static";
  bool have_best = false;
  bool have_fastest = false;

  // Selection sweeps in candidate (ascending size) order, independent of
  // which thread evaluated what — parallel batches select identically.
  for (size_t i = 0; i < plans.size(); ++i) {
    const PlanEstimate& estimate = estimates[i];
    if (!have_fastest || estimate.jct_mean < fastest.estimate.jct_mean) {
      fastest.plan = plans[i];
      fastest.estimate = estimate;
      have_fastest = true;
    }
    if (!estimate.MeetsDeadline(inputs.deadline)) {
      continue;
    }
    if (!have_best || estimate.cost_mean < best.estimate.cost_mean ||
        (estimate.cost_mean == best.estimate.cost_mean &&
         estimate.jct_mean < best.estimate.jct_mean)) {
      best.plan = plans[i];
      best.estimate = estimate;
      have_best = true;
    }
  }

  if (have_best) {
    best.feasible = true;
    return best;
  }
  fastest.feasible = false;
  return fastest;
}

PlannedJob PlanStatic(const PlannerInputs& inputs, const PlannerOptions& options) {
  PlanEvaluator evaluator(inputs, options);
  return PlanStatic(evaluator);
}

}  // namespace rubberband
