// ASCII rendering of allocation plans: GPUs over time, the view of the
// paper's Figure 1. RenderComparison prints the static and elastic plans
// side by side so the front-loaded shape (and the static cluster's idle
// tail) is visible at a glance.

#ifndef SRC_PLANNER_RENDER_H_
#define SRC_PLANNER_RENDER_H_

#include <string>

#include "src/cloud/cloud_profile.h"
#include "src/model/profile.h"
#include "src/planner/plan.h"
#include "src/spec/experiment_spec.h"

namespace rubberband {

// One plan as a Gantt-style chart: rows are GPU levels, columns are time
// buckets, '#' marks allocated capacity; a stage-index ruler runs along the
// bottom. `width` is the chart width in columns.
std::string RenderPlan(const ExperimentSpec& spec, const AllocationPlan& plan,
                       const ModelProfile& model, const CloudProfile& cloud, int width = 64);

// Two plans, same time axis, labelled (cf. paper Figure 1's static vs
// elastic panels).
std::string RenderComparison(const ExperimentSpec& spec, const AllocationPlan& static_plan,
                             const AllocationPlan& elastic_plan, const ModelProfile& model,
                             const CloudProfile& cloud, int width = 64);

}  // namespace rubberband

#endif  // SRC_PLANNER_RENDER_H_
