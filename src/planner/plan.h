// Resource allocation plan: the planner's output and the execution model's
// input — one GPU count per stage (the vector a in paper section 4), shared
// fairly among the stage's running trials.

#ifndef SRC_PLANNER_PLAN_H_
#define SRC_PLANNER_PLAN_H_

#include <string>
#include <vector>

namespace rubberband {

class AllocationPlan {
 public:
  AllocationPlan() = default;
  explicit AllocationPlan(std::vector<int> stage_gpus) : stage_gpus_(std::move(stage_gpus)) {}

  // A static plan: the same GPU count in every stage.
  static AllocationPlan Uniform(int num_stages, int gpus);

  int num_stages() const { return static_cast<int>(stage_gpus_.size()); }
  int gpus(int stage) const { return stage_gpus_.at(static_cast<size_t>(stage)); }
  int& gpus(int stage) { return stage_gpus_.at(static_cast<size_t>(stage)); }
  const std::vector<int>& stage_gpus() const { return stage_gpus_; }

  int MaxGpus() const;
  bool IsStatic() const;

  // Validates positivity and stage-count agreement with `num_spec_stages`.
  void Validate(int num_spec_stages) const;

  std::string ToString() const;

  bool operator==(const AllocationPlan&) const = default;

 private:
  std::vector<int> stage_gpus_;
};

}  // namespace rubberband

#endif  // SRC_PLANNER_PLAN_H_
