#include "src/planner/evaluator.h"

#include <algorithm>
#include <utility>

#include "src/common/stats.h"
#include "src/dag/builder.h"

namespace rubberband {
namespace {

// Packed stage-cache key. Stage indices fit 16 bits and allocations fit 24
// bits with room to spare: specs are validated to far fewer than 65k
// stages, and instance counts are bounded by the GPU allocation, which the
// planners cap at max_total_gpus (default 4096).
uint64_t StageKey(int stage_index, int gpus, int prev_instances) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(stage_index)) << 48) |
         ((static_cast<uint64_t>(static_cast<uint32_t>(gpus)) & 0xFFFFFFULL) << 24) |
         (static_cast<uint64_t>(static_cast<uint32_t>(prev_instances)) & 0xFFFFFFULL);
}

}  // namespace

size_t PlanEvaluator::VectorHash::operator()(const std::vector<int>& v) const {
  // FNV-1a over the allocation vector.
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (int value : v) {
    hash ^= static_cast<uint64_t>(static_cast<uint32_t>(value));
    hash *= 0x100000001B3ULL;
  }
  return static_cast<size_t>(hash);
}

PlanEvaluator::PlanEvaluator(const PlannerInputs& inputs, const PlannerOptions& options)
    : inputs_(inputs), options_(options) {
  if (options_.eval_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.eval_threads);
  }
}

PlanEvaluator::~PlanEvaluator() = default;

PlannerCacheStats PlanEvaluator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

const PlanEvaluator::StageEntry* PlanEvaluator::GetStage(int stage_index, int gpus,
                                                         int prev_instances) {
  const uint64_t key = StageKey(stage_index, gpus, prev_instances);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = stage_cache_.find(key);
    if (it != stage_cache_.end()) {
      ++stats_.stage_cache_hits;
      return it->second.get();
    }
  }

  // Miss: sample the stage outside the lock (the expensive part), then
  // publish. A racing thread may have published first; its entry wins and
  // is identical anyway (sampling is pure).
  auto entry = std::make_unique<StageEntry>();
  entry->block = MakeStageBlock(inputs_.spec.stage(stage_index), stage_index, gpus,
                                prev_instances, inputs_.model, inputs_.cloud);
  entry->draws.reserve(static_cast<size_t>(options_.sim_samples));
  for (int i = 0; i < options_.sim_samples; ++i) {
    entry->draws.push_back(SampleStageDraw(entry->block, options_.seed, i));
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = stage_cache_.try_emplace(key, std::move(entry));
  ++stats_.stage_evaluations;
  return it->second.get();
}

PlanEstimate PlanEvaluator::EvaluateFresh(const AllocationPlan& plan) {
  const ExecutionDag dag = BuildDag(inputs_.spec, plan, inputs_.model, inputs_.cloud);
  SimulateOptions sim;
  sim.num_samples = options_.sim_samples;
  sim.seed = options_.seed;
  sim.collect_percentiles = false;
  return SimulatePlan(dag, inputs_.model, inputs_.cloud, sim);
}

PlanEstimate PlanEvaluator::EvaluateIncremental(const AllocationPlan& plan) {
  plan.Validate(inputs_.spec.num_stages());

  const int num_stages = inputs_.spec.num_stages();
  std::vector<const StageEntry*> entries(static_cast<size_t>(num_stages));
  int prev_instances = 0;
  for (int i = 0; i < num_stages; ++i) {
    const StageEntry* entry = GetStage(i, plan.gpus(i), prev_instances);
    entries[static_cast<size_t>(i)] = entry;
    prev_instances = entry->block.instances;
  }

  // Identical composition to SimulatePlan's fresh sweep: same draws, same
  // arithmetic, same order — so fresh and incremental results match bit
  // for bit.
  RunningStats jct_stats;
  RunningStats cost_stats;
  RunningStats compute_stats;
  RunningStats data_stats;
  for (int s = 0; s < options_.sim_samples; ++s) {
    SampleComposer composer(inputs_.model, inputs_.cloud);
    for (const StageEntry* entry : entries) {
      composer.AddStage(entry->block, entry->draws[static_cast<size_t>(s)]);
    }
    const PlanSample sample = composer.Finish();
    jct_stats.Add(sample.duration);
    cost_stats.Add(sample.cost.dollars());
    compute_stats.Add(sample.compute_cost.dollars());
    data_stats.Add(sample.data_cost.dollars());
  }

  PlanEstimate estimate;
  estimate.jct_mean = jct_stats.mean();
  estimate.jct_stddev = jct_stats.stddev();
  estimate.jct_p95 = 0.0;
  estimate.cost_mean = Money::FromDollars(cost_stats.mean());
  estimate.compute_cost_mean = Money::FromDollars(compute_stats.mean());
  estimate.data_cost_mean = Money::FromDollars(data_stats.mean());
  estimate.cost_stddev_dollars = cost_stats.stddev();
  return estimate;
}

void PlanEvaluator::ApplyRiskAdjustment(const AllocationPlan& plan,
                                        PlanEstimate* estimate) const {
  const SpotMarket& spot = inputs_.cloud.spot;
  if (!spot.enabled || !spot.HazardEnabled() || estimate->jct_mean <= 0.0) {
    return;
  }
  // Closed-form expected-rework model. Per-stage spans are approximated as
  // shares of the estimated JCT weighted by serial iteration volume; each
  // stage then expects (instances x span / MTTP) preemptions, and each
  // preemption costs a replacement wait plus the lost work — bounded by the
  // reclamation warning window when the provider gives one (the executor
  // checkpoints eagerly inside it), half the stage span otherwise.
  const int num_stages = inputs_.spec.num_stages();
  const int gpg = inputs_.cloud.gpus_per_instance();
  double total_iters = 0.0;
  for (int i = 0; i < num_stages; ++i) {
    total_iters += static_cast<double>(inputs_.spec.stage(i).iters_per_trial);
  }
  if (total_iters <= 0.0) {
    return;
  }
  double expected_delay = 0.0;
  for (int i = 0; i < num_stages; ++i) {
    const double span = estimate->jct_mean *
                        static_cast<double>(inputs_.spec.stage(i).iters_per_trial) / total_iters;
    const int instances = (plan.gpus(i) + gpg - 1) / gpg;
    const double expected_preemptions = instances * span / spot.mean_time_to_preemption;
    const double rework = spot.reclamation_warning_s > 0.0
                              ? std::min(span, spot.reclamation_warning_s)
                              : 0.5 * span;
    expected_delay +=
        expected_preemptions * (rework + inputs_.cloud.provisioning.MeanReadyLatency());
  }
  // The rework runs on billing instances, so it burns money at the plan's
  // average rate as well as time.
  const double burn_rate = estimate->cost_mean.dollars() / estimate->jct_mean;
  const Money extra = Money::FromDollars(expected_delay * burn_rate);
  estimate->jct_mean += expected_delay;
  estimate->cost_mean += extra;
  estimate->compute_cost_mean += extra;  // rework is pure compute
}

PlanEstimate PlanEvaluator::Evaluate(const AllocationPlan& plan) {
  if (options_.evaluation == PlanEvaluation::kFresh) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.plan_evaluations;
    }
    PlanEstimate estimate = EvaluateFresh(plan);
    ApplyRiskAdjustment(plan, &estimate);
    return estimate;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memo_.find(plan.stage_gpus());
    if (it != memo_.end()) {
      ++stats_.plan_memo_hits;
      return it->second;
    }
    ++stats_.plan_evaluations;
  }

  PlanEstimate estimate = EvaluateIncremental(plan);
  ApplyRiskAdjustment(plan, &estimate);

  std::lock_guard<std::mutex> lock(mu_);
  memo_.try_emplace(plan.stage_gpus(), estimate);
  return estimate;
}

std::vector<PlanEstimate> PlanEvaluator::EvaluateBatch(const std::vector<AllocationPlan>& plans) {
  std::vector<PlanEstimate> estimates(plans.size());
  const auto evaluate_one = [&](int i) {
    estimates[static_cast<size_t>(i)] = Evaluate(plans[static_cast<size_t>(i)]);
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(static_cast<int>(plans.size()), evaluate_one);
  } else {
    for (int i = 0; i < static_cast<int>(plans.size()); ++i) {
      evaluate_one(i);
    }
  }
  return estimates;
}

void PublishCacheStats(const PlannerCacheStats& stats, const MetricsScope& scope) {
  if (!scope.live()) {
    return;
  }
  Counter* plan_evaluations = scope.GetCounter("plan_evaluations");
  Counter* plan_memo_hits = scope.GetCounter("plan_memo_hits");
  Counter* stage_evaluations = scope.GetCounter("stage_evaluations");
  Counter* stage_cache_hits = scope.GetCounter("stage_cache_hits");
  plan_evaluations->Add(stats.plan_evaluations);
  plan_memo_hits->Add(stats.plan_memo_hits);
  stage_evaluations->Add(stats.stage_evaluations);
  stage_cache_hits->Add(stats.stage_cache_hits);
  // Rates derived from the cumulative counters, so repeated publishes keep
  // the gauges consistent with the running totals.
  PlannerCacheStats total;
  total.plan_evaluations = plan_evaluations->value();
  total.plan_memo_hits = plan_memo_hits->value();
  total.stage_evaluations = stage_evaluations->value();
  total.stage_cache_hits = stage_cache_hits->value();
  scope.GetGauge("plan_hit_rate")->Set(total.PlanHitRate());
  scope.GetGauge("stage_hit_rate")->Set(total.StageHitRate());
}

}  // namespace rubberband
