// Cluster manager (paper section 5, "Cluster management").
//
// Extends the instance source with ad-hoc scale requests: the scheduler asks
// for a target cluster size; the manager provisions the difference and
// reports once the target is reached. Deprovisioning takes specific
// instances (the executor only retires nodes the placement controller has
// emptied) and releases them back to the source — which terminates them in
// the single-job case, or parks them for the next tenant when the source is
// the service's warm pool. Total provisioned-compute cost is tracked by the
// underlying provider's billing meter for the lifetime of the experiment.
//
// The manager is self-healing: provisioning failures are retried with
// capped exponential backoff plus deterministic jitter (and reported to the
// fault observer), capacity lost to preemptions or crashes while a scale
// request is outstanding is re-requested so the waiter cannot hang, and a
// slot whose retries are exhausted surfaces as a shortfall the executor can
// degrade around.

#ifndef SRC_EXECUTOR_CLUSTER_MANAGER_H_
#define SRC_EXECUTOR_CLUSTER_MANAGER_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "src/cloud/instance_source.h"
#include "src/common/rng.h"
#include "src/sim/simulation.h"

namespace rubberband {

// Backoff schedule for failed provisioning requests. Attempt k (0-based)
// that fails is retried after base * 2^k (capped at max), stretched by a
// uniform +/- jitter fraction drawn from a deterministic stream.
struct RetryPolicy {
  int max_attempts = 6;  // total tries per instance slot before giving up
  Seconds base_backoff_s = 2.0;
  Seconds max_backoff_s = 60.0;
  double jitter = 0.2;
  uint64_t seed = 0;  // jitter stream; mixed with the job seed by the executor
};

class ClusterManager {
 public:
  // `dataset_gb` is ingressed by every newly provisioned instance.
  ClusterManager(Simulation& sim, InstanceSource& source, double dataset_gb,
                 const RetryPolicy& retry = {})
      : sim_(sim),
        source_(source),
        dataset_gb_(dataset_gb),
        retry_(retry),
        backoff_rng_(retry.seed ^ 0x8ACC0FFull) {}

  ClusterManager(const ClusterManager&) = delete;
  ClusterManager& operator=(const ClusterManager&) = delete;

  // Grows the cluster to at least `target` ready instances, then calls
  // `on_ready` (immediately if already large enough). One outstanding
  // request at a time.
  void EnsureInstances(int target, std::function<void()> on_ready);

  // Lowers an outstanding scale request's target (graceful degradation
  // after a capacity shortfall); fires the waiter if the cluster already
  // satisfies the new target. No-op without an outstanding request.
  void ReduceWaitTarget(int target);

  void Deprovision(const std::vector<InstanceId>& ids);

  // Removes a gray-failed instance from the fleet for good: discarded at
  // the source (terminated, never parked for reuse) and blacklisted so a
  // recycling source cannot hand the same hardware back.
  void Quarantine(InstanceId id);

  // Drops an instance the provider took back — spot reclamation or
  // hardware crash (billing was closed by the provider; nothing to
  // terminate). If a scale request is outstanding, the lost capacity is
  // re-requested so the waiter still completes.
  void OnInstanceLost(InstanceId id);

  // Requests `count` replacement instances outside the EnsureInstances
  // waiter; `on_ready` fires per instance as it becomes usable.
  void RequestExtra(int count, std::function<void(InstanceId)> on_ready);

  // Observer for provisioning failures: fired once per failed slot with
  // whether the manager will retry it (false = retries exhausted, the slot
  // is abandoned — a capacity shortfall the caller must degrade around).
  // Fired before the retry is scheduled, so an observer that switches the
  // market (spot capacity exhausted → on-demand fallback) redirects the
  // retry itself.
  void SetFaultObserver(std::function<void(bool will_retry)> observer) {
    fault_observer_ = std::move(observer);
  }

  // The market new provisioning requests (including retries and loss
  // replacements) are placed on. Defaults to kSpot, which the source
  // serves on-demand when no spot market is configured; the executor flips
  // it for market fallback and back at stage boundaries.
  void set_market(Market market) { market_ = market; }
  Market market() const { return market_; }

  const std::vector<InstanceId>& ready_instances() const { return ready_; }
  int num_ready() const { return static_cast<int>(ready_.size()); }
  // Instances requested from the source that have not become ready yet
  // (including slots waiting out a retry backoff). Tracked here, not read
  // off the provider: on a shared cloud the provider's pending count mixes
  // every tenant's requests.
  int num_inflight() const { return inflight_ + backoff_pending_; }
  // True while an EnsureInstances request has not completed yet.
  bool awaiting_scale() const { return waiter_ != nullptr; }

  int num_provision_failures() const { return provision_failures_; }
  int num_retries() const { return retries_; }
  int num_abandoned() const { return abandoned_; }
  int num_quarantined() const { return static_cast<int>(quarantined_.size()); }
  bool IsQuarantined(InstanceId id) const { return quarantined_.count(id) > 0; }

 private:
  void OnInstanceReady(InstanceId id);
  void Request(int count, std::function<void(InstanceId)> on_each_ready);
  void RequestSlots(int count, int attempt, std::function<void(InstanceId)> on_each_ready);
  Seconds Backoff(int attempt);

  Simulation& sim_;
  InstanceSource& source_;
  double dataset_gb_;
  RetryPolicy retry_;
  Rng backoff_rng_;
  Market market_ = Market::kSpot;
  std::vector<InstanceId> ready_;
  std::set<InstanceId> quarantined_;
  std::function<void()> waiter_;
  std::function<void(bool)> fault_observer_;
  int waiting_for_ = 0;
  int inflight_ = 0;
  int backoff_pending_ = 0;  // failed slots waiting out their backoff delay
  int provision_failures_ = 0;
  int retries_ = 0;
  int abandoned_ = 0;
};

}  // namespace rubberband

#endif  // SRC_EXECUTOR_CLUSTER_MANAGER_H_
