// Cluster manager (paper section 5, "Cluster management").
//
// Extends the instance source with ad-hoc scale requests: the scheduler asks
// for a target cluster size; the manager provisions the difference and
// reports once the target is reached. Deprovisioning takes specific
// instances (the executor only retires nodes the placement controller has
// emptied) and releases them back to the source — which terminates them in
// the single-job case, or parks them for the next tenant when the source is
// the service's warm pool. Total provisioned-compute cost is tracked by the
// underlying provider's billing meter for the lifetime of the experiment.

#ifndef SRC_EXECUTOR_CLUSTER_MANAGER_H_
#define SRC_EXECUTOR_CLUSTER_MANAGER_H_

#include <functional>
#include <vector>

#include "src/cloud/instance_source.h"

namespace rubberband {

class ClusterManager {
 public:
  // `dataset_gb` is ingressed by every newly provisioned instance.
  ClusterManager(InstanceSource& source, double dataset_gb)
      : source_(source), dataset_gb_(dataset_gb) {}

  ClusterManager(const ClusterManager&) = delete;
  ClusterManager& operator=(const ClusterManager&) = delete;

  // Grows the cluster to at least `target` ready instances, then calls
  // `on_ready` (immediately if already large enough). One outstanding
  // request at a time.
  void EnsureInstances(int target, std::function<void()> on_ready);

  void Deprovision(const std::vector<InstanceId>& ids);

  // Drops a spot instance the provider reclaimed (billing was closed by the
  // provider; nothing to terminate).
  void OnInstancePreempted(InstanceId id);

  // Requests `count` replacement instances outside the EnsureInstances
  // waiter; `on_ready` fires per instance as it becomes usable.
  void RequestExtra(int count, std::function<void(InstanceId)> on_ready);

  const std::vector<InstanceId>& ready_instances() const { return ready_; }
  int num_ready() const { return static_cast<int>(ready_.size()); }
  // Instances requested from the source that have not become ready yet.
  int num_inflight() const { return inflight_; }

 private:
  void OnInstanceReady(InstanceId id);
  void Request(int count, std::function<void(InstanceId)> on_each_ready);

  InstanceSource& source_;
  double dataset_gb_;
  std::vector<InstanceId> ready_;
  std::function<void()> waiter_;
  int waiting_for_ = 0;
  // Tracked here, not read off the provider: on a shared cloud the
  // provider's pending count mixes every tenant's requests.
  int inflight_ = 0;
};

}  // namespace rubberband

#endif  // SRC_EXECUTOR_CLUSTER_MANAGER_H_
