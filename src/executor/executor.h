// Executor: end-to-end elastic execution of a planned experiment (paper
// section 5).
//
// Drives the discrete-event runtime: samples trial configurations from the
// search space, walks the specification stage by stage following the
// allocation plan — scaling the cluster through the cluster manager,
// placing worker gangs through the placement controller, running trial
// iterations (with straggler noise from the synthetic trainer), queueing
// trials when the allocation is smaller than the stage, ranking trials at
// each SYNC barrier and terminating the losers, and checkpoint/restoring
// survivors across stage migrations. Produces the "real" columns of
// Table 2: realized JCT, realized cost (from the provider's billing
// ledger), and the accuracy of the winning configuration.

#ifndef SRC_EXECUTOR_EXECUTOR_H_
#define SRC_EXECUTOR_EXECUTOR_H_

#include <deque>
#include <map>
#include <vector>

#include "src/cloud/simulated_cloud.h"
#include "src/executor/checkpoint_store.h"
#include "src/executor/cluster_manager.h"
#include "src/executor/scheduler.h"
#include "src/executor/trace.h"
#include "src/executor/trial.h"
#include "src/placement/controller.h"
#include "src/planner/plan.h"
#include "src/spec/experiment_spec.h"
#include "src/trainer/model_zoo.h"
#include "src/trainer/search_space.h"

namespace rubberband {

struct ExecutorOptions {
  uint64_t seed = 0;
  // Table 1 ablation: kScatter disables locality-aware placement.
  PlacementStrategy placement = PlacementStrategy::kPacked;
  // Collect per-trial training throughput samples (Table 1's metric).
  bool record_throughput = false;
  // HyperSched-style policy (paper sections 2.1/3.2): when a trial finishes
  // its stage work early, immediately reallocate the freed GPUs to the
  // trials still running — each survivor is checkpointed, its gang
  // destroyed, and a larger gang created (paying startup again). The paper
  // argues this is worse than deprovisioning: sub-linear scaling means the
  // extra GPUs add little throughput while the instances keep billing.
  bool reallocate_freed_resources = false;
};

struct StageLogEntry {
  int stage = 0;
  int num_trials = 0;
  int gpus = 0;
  int gpus_per_trial = 0;
  int instances = 0;
  int64_t start_cum_iters = 0;  // "epoch range" bounds, as in Table 3
  int64_t end_cum_iters = 0;
  Seconds start = 0.0;
  Seconds end = 0.0;
};

struct ExecutionReport {
  Seconds jct = 0.0;
  CostBreakdown cost;
  double best_accuracy = 0.0;
  HyperparameterConfig best_config;
  std::vector<StageLogEntry> stage_log;
  std::vector<double> trial_throughputs;  // samples/second, per trial-stage
  // Spot-market statistics (zero on on-demand runs).
  int preemptions = 0;
  int trial_restarts = 0;
  // Busy GPU-seconds over provisioned GPU-seconds: the utilization the
  // paper's whole argument is about (elastic plans waste less).
  double realized_utilization = 0.0;
  // Checkpoint-store traffic (saves at stage boundaries, fetches on every
  // gang (re)start).
  int64_t checkpoint_saves = 0;
  int64_t checkpoint_fetches = 0;
  double checkpoint_gb_moved = 0.0;
  ExecutionTrace trace;
};

class Executor {
 public:
  Executor(const ExperimentSpec& spec, const AllocationPlan& plan, const WorkloadSpec& workload,
           const CloudProfile& cloud_profile, const ExecutorOptions& options = {});

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Runs the experiment to completion and reports. Call once.
  ExecutionReport Run();

 private:
  void StartStage(int stage);
  void BeginTraining(int stage);
  void StartTrialOnStage(TrialId id, int gpus);
  void ScheduleNextIteration(TrialId id);
  void OnTrialStageDone(TrialId id);
  void Sync(int stage);
  void Finish(int final_stage);
  // Spot-market fault handling: restart interrupted trials from their
  // stage-start checkpoints on replacement capacity.
  void HandlePreemption(InstanceId instance);
  void TryRestartPending();
  void ReallocateFreedResources();
  int DesiredInstances(int stage) const;

  ExperimentSpec spec_;
  AllocationPlan plan_;
  WorkloadSpec workload_;
  ExecutorOptions options_;

  Simulation sim_;
  SimulatedCloud cloud_;
  ClusterManager manager_;
  PlacementController placement_;
  CheckpointStore checkpoint_store_;

  std::deque<Trial> trials_;  // indexed by TrialId
  std::vector<TrialId> survivors_;
  std::deque<TrialId> queued_;
  std::map<TrialId, int> allocations_;
  std::map<TrialId, Seconds> busy_start_;
  // Bumped every time a trial's worker gang is (re)created; in-flight
  // iteration events from a destroyed gang check it and become no-ops.
  std::map<TrialId, int> generation_;
  std::deque<TrialId> pending_restart_;
  std::vector<InstanceId> nodes_in_controller_;

  int current_stage_ = -1;
  int gpus_per_trial_ = 1;
  int completed_in_stage_ = 0;
  bool finished_ = false;
  ExecutionReport report_;
};

// Convenience wrapper: plan is executed on a fresh simulated cloud built
// from `cloud_profile`.
ExecutionReport ExecutePlan(const ExperimentSpec& spec, const AllocationPlan& plan,
                            const WorkloadSpec& workload, const CloudProfile& cloud_profile,
                            const ExecutorOptions& options = {});

}  // namespace rubberband

#endif  // SRC_EXECUTOR_EXECUTOR_H_
