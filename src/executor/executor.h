// Executor: end-to-end elastic execution of a planned experiment (paper
// section 5).
//
// Drives the discrete-event runtime: samples trial configurations from the
// search space, walks the specification stage by stage following the
// allocation plan — scaling the cluster through the cluster manager,
// placing worker gangs through the placement controller, running trial
// iterations (with straggler noise from the synthetic trainer), queueing
// trials when the allocation is smaller than the stage, ranking trials at
// each SYNC barrier and terminating the losers, and checkpoint/restoring
// survivors across stage migrations. Produces the "real" columns of
// Table 2: realized JCT, realized cost (from the provider's billing
// ledger), and the accuracy of the winning configuration.

#ifndef SRC_EXECUTOR_EXECUTOR_H_
#define SRC_EXECUTOR_EXECUTOR_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/cloud/simulated_cloud.h"
#include "src/executor/checkpoint_store.h"
#include "src/executor/cluster_manager.h"
#include "src/executor/scheduler.h"
#include "src/executor/straggler_detector.h"
#include "src/executor/trace.h"
#include "src/executor/trial.h"
#include "src/obs/metrics.h"
#include "src/obs/timeline.h"
#include "src/placement/controller.h"
#include "src/planner/evaluator.h"
#include "src/planner/plan.h"
#include "src/planner/planner.h"
#include "src/spec/compile.h"
#include "src/spec/experiment_spec.h"
#include "src/trainer/model_zoo.h"
#include "src/trainer/search_space.h"

namespace rubberband {

// Deadline-aware self-healing: when enabled, the executor checks at every
// stage boundary — once any fault has cost it time — whether the remaining
// stages still fit the deadline under the current plan, and if the
// accumulated fault delay burned the slack, re-plans the remaining stages
// against the time actually left (Algorithm 2 over the remaining
// sub-experiment). An infeasible remainder degrades to the fastest plan
// found (best effort, never silently idle).
struct ReplanPolicy {
  bool enabled = false;
  Seconds deadline = 0.0;  // absolute deadline on the executor's timeline
  ModelProfile model;      // scaling profile the re-planner plans against
  PlannerOptions planner;
};

// Gray-failure handling. Detection watches per-instance iteration latencies
// at gang-sync boundaries (never the injector's ground truth); mitigation
// checkpoints trials off a flagged instance at their *current* progress,
// discards the instance (barred from warm-pool reuse), and restarts the
// trials on a replacement — bounded by an explicit quarantine budget so a
// misbehaving detector cannot thrash the cluster.
struct StragglerPolicy {
  bool detect = false;
  bool mitigate = false;  // implies detection
  StragglerDetectorConfig detector;
  // Max instances quarantined per job (mitigation budget).
  int max_quarantines = 4;
};

// Spot-market hedging (consulted only when the cloud profile's spot market
// is enabled). The executor requests spot capacity by default and falls
// back to on-demand when the market turns hostile: a capacity rejection, a
// reclamation storm, or a price spike observed at a stage boundary. Each
// switch is a MARKET_FALLBACK trace event; switches are bounded so a
// flapping market cannot thrash the job.
struct SpotPolicy {
  // Master switch for the fallback logic (eager pre-preemption checkpoints
  // stay on regardless — they only ever reduce lost work).
  bool market_fallback = true;
  // Stage-boundary price hysteresis: above `fallback`, new capacity goes
  // on-demand; once back below `give_back`, the job returns to spot.
  double fallback_price_multiplier = 1.6;
  double give_back_price_multiplier = 1.2;
  // Observed-hazard fallback: switch when realized preemptions exceed this
  // multiple of what the profile's mean-time-to-preemption predicts.
  double hazard_tolerance = 3.0;
  // Budget on market switches (spot -> on-demand); after this many the job
  // stays wherever it is.
  int max_fallbacks = 8;
};

struct ExecutorOptions {
  uint64_t seed = 0;
  // Table 1 ablation: kScatter disables locality-aware placement.
  PlacementStrategy placement = PlacementStrategy::kPacked;
  // Collect per-trial training throughput samples (Table 1's metric).
  bool record_throughput = false;
  // HyperSched-style policy (paper sections 2.1/3.2): when a trial finishes
  // its stage work early, immediately reallocate the freed GPUs to the
  // trials still running — each survivor is checkpointed, its gang
  // destroyed, and a larger gang created (paying startup again). The paper
  // argues this is worse than deprovisioning: sub-linear scaling means the
  // extra GPUs add little throughput while the instances keep billing.
  bool reallocate_freed_resources = false;
  // Backoff schedule for failed provisioning requests.
  RetryPolicy retry;
  // Mid-experiment re-planning of the remaining stages under faults.
  ReplanPolicy replan;
  // Persistent-straggler detection and checkpoint-based mitigation.
  StragglerPolicy straggler;
  // Spot-market hedging: eager pre-preemption checkpoints and on-demand
  // fallback under capacity crunch.
  SpotPolicy spot;
  // Where the initial trial configurations come from. The default replays
  // the executor's historical random sampling bit-identically; compiled
  // plans substitute their own source (grid points, custom bounds).
  ConfigSource configs;
  // Timeline spans + latency histograms (the Chrome-trace profile). Report
  // counters always flow through the registry; this knob only adds the
  // optional depth. Off by default so existing runs stay bit-identical.
  bool observe = false;
};

struct StageLogEntry {
  int stage = 0;
  int num_trials = 0;
  int gpus = 0;
  int gpus_per_trial = 0;
  int instances = 0;
  int64_t start_cum_iters = 0;  // "epoch range" bounds, as in Table 3
  int64_t end_cum_iters = 0;
  Seconds start = 0.0;
  Seconds end = 0.0;
};

struct ExecutionReport {
  Seconds jct = 0.0;
  CostBreakdown cost;
  double best_accuracy = 0.0;
  HyperparameterConfig best_config;
  std::vector<StageLogEntry> stage_log;
  std::vector<double> trial_throughputs;  // samples/second, per trial-stage
  // Spot-market statistics (zero on on-demand runs).
  int preemptions = 0;
  int trial_restarts = 0;
  int preemption_warnings = 0;   // reclamation warnings delivered to this job
  int eager_checkpoints = 0;     // mid-stage saves taken inside warning windows
  int market_fallbacks = 0;      // spot -> on-demand switches (capacity/storm/price)
  // Training seconds redone because preemptions rolled trials back to a
  // checkpoint (warning-window saves shrink this).
  Seconds spot_rework_seconds = 0.0;
  // Billed cost versus the on-demand counterfactual of the same usage
  // (positive = the spot market paid off despite the rework above).
  Money spot_savings;
  // Fault/recovery statistics (zero on fault-free runs).
  int crashes = 0;                // hardware crashes on ready instances
  int provision_failures = 0;     // failed provisioning slots observed
  int provision_retries = 0;      // backoff retries issued for them
  int capacity_shortfalls = 0;    // slots abandoned after exhausting retries
  int degraded_stages = 0;        // stages run below their planned GPUs
  int replans = 0;                // mid-experiment re-plans of the remainder
  // Cache effectiveness of the fault-replan evaluators (one per replan
  // check); the tuning service folds this into its service-wide metric.
  PlannerCacheStats planner_cache;
  int checkpoint_retries = 0;     // checkpoint fetches that needed recovery
  Seconds recovery_seconds = 0.0; // total trial time spent awaiting restart
  // Gray-failure statistics (zero unless stragglers are injected/detected).
  int stragglers_injected = 0;       // instances launched with a slowdown tag
                                     // (cloud-wide: in shared mode this counts
                                     // every tenant's stragglers)
  int stragglers_detected = 0;       // instances the detector flagged
  int stragglers_quarantined = 0;    // flagged instances checkpointed out
  int straggler_false_positives = 0; // flags on instances that were healthy
  int64_t straggler_detection_syncs = 0;  // summed syncs-to-flag (latency)
  // Estimated gang time the quarantines saved: each evicted instance's
  // (factor-1) tax over the iterations it would still have hosted — its
  // trials' remaining stage work plus every later stage's per-trial work.
  Seconds straggler_slowdown_avoided = 0.0;
  // What mitigation cost: checkpoint saves plus restart waits it caused.
  Seconds straggler_mitigation_seconds = 0.0;
  // Busy GPU-seconds over provisioned GPU-seconds: the utilization the
  // paper's whole argument is about (elastic plans waste less).
  double realized_utilization = 0.0;
  // Checkpoint-store traffic (saves at stage boundaries, fetches on every
  // gang (re)start).
  int64_t checkpoint_saves = 0;
  int64_t checkpoint_fetches = 0;
  double checkpoint_gb_moved = 0.0;
  ExecutionTrace trace;
  // Registry snapshot the scalar fields above are views of (executor.* plus,
  // in standalone mode, the owned cloud's cloud.* metrics).
  MetricsSnapshot metrics;
  // Phase spans (plan/provision/stage-run/sync/checkpoint/restore/
  // quarantine); empty unless ExecutorOptions::observe.
  Timeline timeline;
};

// Shared-cluster execution context: lets many executors (one per tuning
// job) run concurrently on one discrete-event timeline, drawing instances
// from one provider — the multi-tenant service substrate. The caller (the
// tuning service) owns the simulation, the billing account, and the
// instance source (typically a WarmPool recycling instances across jobs),
// and is responsible for driving the event loop and routing spot
// preemptions to the executor that owns the instance.
struct SharedClusterContext {
  Simulation* sim = nullptr;
  SimulatedCloud* cloud = nullptr;
  InstanceSource* source = nullptr;
  // Fair-share arbiter hook: the job's current GPU cap, re-read at every
  // stage boundary. Null means uncapped.
  std::function<int()> gpu_cap;
};

class Executor {
 public:
  // Standalone: the executor owns a fresh simulation and cloud, runs the
  // plan to completion via Run().
  Executor(const ExperimentSpec& spec, const AllocationPlan& plan, const WorkloadSpec& workload,
           const CloudProfile& cloud_profile, const ExecutorOptions& options = {});

  // Shared: the executor joins an existing timeline and instance source.
  // Use Start(); the context owner drives the simulation.
  Executor(const ExperimentSpec& spec, const AllocationPlan& plan, const WorkloadSpec& workload,
           const SharedClusterContext& context, const ExecutorOptions& options = {});

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Runs the experiment to completion and reports. Call once (standalone
  // executors only).
  ExecutionReport Run();

  // Kicks the experiment off asynchronously; `on_done` fires (on the
  // simulation timeline) when the final stage's barrier completes. In
  // shared mode the per-job report prices only this job's attributed usage.
  void Start(std::function<void(const ExecutionReport&)> on_done);

  // Instance-loss entry points — spot preemption and hardware crash follow
  // the same unified recovery path (checkpoint restore + replacement
  // request), differing only in attribution. Standalone executors wire
  // these to the provider themselves; a shared-cluster owner routes each
  // loss to the executor holding the instance.
  void OnPreemption(InstanceId instance);
  void OnCrash(InstanceId instance);

  // Reclamation warning: the provider announced it will take `instance`
  // back shortly. Every running trial with workers on it is checkpointed at
  // its *current* progress, so the reclamation (when it lands) rolls back
  // only the warning window instead of the whole stage. Standalone
  // executors wire this to the provider; a shared-cluster owner routes each
  // warning to the executor holding the instance.
  void OnPreemptionWarning(InstanceId instance);

  // True while this job's cluster holds the instance (shared-mode
  // preemption routing).
  bool OwnsInstance(InstanceId instance) const;

  bool finished() const { return finished_; }

  // True once the job is finished AND no in-flight provisioning callback
  // can still fire (nothing pending captures this executor): the owner may
  // destroy it. The tuning service frees quiescent executors as their jobs
  // complete so a 100k-job trace does not hold 100k dead executors.
  bool Quiescent() const {
    return finished_ && !manager_.awaiting_scale() && manager_.num_inflight() == 0;
  }

 private:
  void StartStage(int stage);
  void BeginTraining(int stage);
  void StartTrialOnStage(TrialId id, int gpus);
  void ScheduleNextIteration(TrialId id);
  void OnTrialStageDone(TrialId id);
  void Sync(int stage);
  void Finish(int final_stage);
  void TryRestartPending();
  void ReallocateFreedResources();
  // Unified instance-loss recovery (crash or preemption): roll affected
  // trials back to their checkpoints and request a replacement.
  void OnInstanceLost(InstanceId instance, bool crashed);
  // A provisioning slot was abandoned (retries exhausted): lower the
  // outstanding scale target, or degrade pending restarts to what fits.
  void HandleShortfall();
  // Start a replacement-instance request cycle for a lost node; the
  // arriving instance joins the placement controller and restarts pending
  // trials.
  void RequestReplacement();
  // Restart pending trials at progressively smaller gang sizes once no
  // replacement is coming.
  void DegradePendingRestarts();
  // Fetches a trial's checkpoint, recovering from transfer failures and
  // missing objects; returns the total startup latency paid.
  Seconds FetchCheckpoint(TrialId id);
  // Re-plan the stages from `next_stage` on if fault delay burned the
  // deadline slack (no-op while fault-free or when re-planning is off).
  void MaybeReplan(int next_stage);
  // Stage-boundary market re-choice: fall back to on-demand when the spot
  // price or the realized preemption rate turned hostile; return to spot
  // once the price calms down. No-op unless the profile has a spot market.
  void MaybeSwitchMarket();
  // Point future provisioning at the on-demand market (capacity rejection,
  // storm, or price spike); bounded by SpotPolicy::max_fallbacks.
  void MarketFallback();
  // Billing multiplier of this job's hold of `id` over [acquired, now]:
  // spot discount x the trace's average price for spot instances, 1.0
  // otherwise.
  double HeldMultiplier(InstanceId id, Seconds acquired) const;
  // A trial left `pending_restart_`; attribute its wait to recovery time
  // (or to mitigation time, if quarantine put it there).
  void NoteRestarted(TrialId id);
  // Cancels the trial's in-flight startup/iteration event, if any (gang
  // teardown).
  void CancelTrialEvent(TrialId id);
  // Records the gang's instance list and (when stragglers are injected)
  // hands the trainer its per-worker slowdown factors. Called on every gang
  // (re)creation.
  void SetupGang(TrialId id);
  // Feeds the completed iteration's per-worker latencies to the detector
  // and handles any instance it flags.
  void RecordIterationObservations(TrialId id);
  // The detector condemned an instance: trace/attribute it, then quarantine
  // if mitigation is on and the budget allows.
  void OnStragglerFlagged(InstanceId instance);
  // Checkpoint every trial on the instance at its current progress, discard
  // the instance (blacklisted at the manager, terminated at the source) and
  // restart the trials on replacement capacity.
  void QuarantineInstance(InstanceId instance);
  // The stage's planned allocation clamped to the fair-share cap (snapshot
  // taken at the stage boundary, the paper's natural reallocation point).
  int EffectiveStageGpus(int stage) const;
  int DesiredInstances() const;
  // Billing attribution: busy GPU-seconds to both the account-level meter
  // and this job's own meter.
  void RecordUsage(int gpus, Seconds duration);
  void NoteAcquired(InstanceId id);
  void NoteReleased(InstanceId id);
  // Resolves the executor.* registry handles (both constructors).
  void InitMetrics();
  // Records a phase span on the timeline; no-op unless options_.observe.
  void Span(const char* name, Seconds start, Seconds end, int stage, int trial = -1,
            int64_t instance = -1);

  ExperimentSpec spec_;
  AllocationPlan plan_;
  WorkloadSpec workload_;
  ExecutorOptions options_;

  // Standalone mode owns its runtime; shared mode borrows the context's.
  std::unique_ptr<Simulation> owned_sim_;
  std::unique_ptr<SimulatedCloud> owned_cloud_;
  Simulation& sim_;
  SimulatedCloud& cloud_;
  const bool shared_;
  std::function<int()> gpu_cap_;
  std::function<void(const ExecutionReport&)> on_done_;
  // This job's slice of the (possibly shared) billing account: instance
  // time from acquisition to release and busy GPU-seconds. Per-instance
  // init time and acquisition minimums stay on the account-level ledger.
  BillingMeter job_meter_;
  std::map<InstanceId, Seconds> acquired_at_;
  // Market each held instance was acquired on, captured at acquisition:
  // by release-after-loss time the provider has already forgotten the
  // instance, so asking then would misattribute preempted spot capacity.
  std::map<InstanceId, Market> acquired_market_;

  ClusterManager manager_;
  PlacementController placement_;
  CheckpointStore checkpoint_store_;

  std::deque<Trial> trials_;  // indexed by TrialId
  std::vector<TrialId> survivors_;
  std::deque<TrialId> queued_;
  std::map<TrialId, int> allocations_;
  std::map<TrialId, Seconds> busy_start_;
  // Bumped every time a trial's worker gang is (re)created; in-flight
  // iteration events from a destroyed gang check it and become no-ops.
  std::map<TrialId, int> generation_;
  std::deque<TrialId> pending_restart_;
  std::map<TrialId, Seconds> pending_since_;
  // Each running trial's in-flight startup/iteration event. Cancelled when
  // the gang is destroyed (quarantine, instance loss, reallocation), so a
  // torn-down trial's events leave the queue instead of firing as
  // generation-guarded tombstones. The generation check remains the
  // correctness backstop; cancellation is queue hygiene.
  std::map<TrialId, EventHandle> pending_trial_event_;
  std::vector<InstanceId> nodes_in_controller_;

  // Gray-failure detection state. The detector exists only when the policy
  // asks for it; trial_instances_ snapshots each gang's hosting instances
  // at creation (the list observations are attributed to). Trials parked in
  // pending_restart_ by a quarantine are tracked so their wait is billed to
  // mitigation rather than fault recovery.
  std::unique_ptr<StragglerDetector> detector_;
  std::map<TrialId, std::vector<InstanceId>> trial_instances_;
  std::set<TrialId> quarantine_pending_;

  // Spot-survival state. eager_checkpoint_remaining_ records, per trial,
  // the remaining stage iterations at the moment a warning-window save was
  // taken: the loss path restores that much work instead of the whole
  // stage. Cleared at stage boundaries (boundary checkpoints supersede).
  // The *_seen_ counters are snapshots of provider-wide event counts so
  // fallback triggers fire once per new event, not once per observation.
  std::map<TrialId, int64_t> eager_checkpoint_remaining_;
  int storms_seen_ = 0;
  int capacity_rejections_seen_ = 0;
  int market_fallbacks_done_ = 0;

  // Checkpoint-transfer fault stream: seeded from the job seed, so it is
  // independent of the cloud's streams and deterministic per run.
  FaultInjector checkpoint_faults_;
  // Faults observed so far (losses, provisioning failures, checkpoint
  // retries); gates the re-plan check so fault-free runs never re-plan.
  int fault_events_ = 0;
  // Set when a replacement request was abandoned this stage: completions
  // then restart pending trials at degraded sizes instead of waiting for
  // capacity that is not coming.
  bool replacements_exhausted_ = false;
  // A stage is reported degraded at most once, whether it started short
  // (BeginTraining) or lost capacity for good mid-stage (HandleShortfall).
  bool stage_degradation_reported_ = false;
  // Fresh replacement cycles issued after total capacity loss (nothing
  // ready, nothing in flight, work pending). Bounded so a permanent
  // provider blackout still terminates instead of retrying forever.
  int revival_cycles_ = 0;

  int current_stage_ = -1;
  int stage_gpus_ = 0;  // effective (cap-clamped) allocation of the stage
  int gpus_per_trial_ = 1;
  int completed_in_stage_ = 0;
  bool finished_ = false;
  ExecutionReport report_;

  // One source of truth for the fault/recovery statistics: components bump
  // these handles, and Finish() snapshots them into the report's scalar
  // view. Each executor owns its registry so per-job reports never mix; the
  // service merges the per-job snapshots itself.
  MetricsRegistry metrics_;
  struct MetricHandles {
    Counter* preemptions = nullptr;
    Counter* crashes = nullptr;
    Counter* trial_restarts = nullptr;
    Counter* provision_failures = nullptr;
    Counter* provision_retries = nullptr;
    Counter* capacity_shortfalls = nullptr;
    Counter* degraded_stages = nullptr;
    Counter* replans = nullptr;
    Counter* checkpoint_retries = nullptr;
    Counter* stragglers_detected = nullptr;
    Counter* stragglers_quarantined = nullptr;
    Counter* straggler_false_positives = nullptr;
    Counter* detection_syncs = nullptr;
    Gauge* recovery_seconds = nullptr;
    Gauge* mitigation_seconds = nullptr;
    Gauge* slowdown_avoided = nullptr;
    // spot.* scope; null unless the cloud profile's spot market is enabled,
    // so non-spot runs export byte-identical snapshots.
    Counter* preemption_warnings = nullptr;
    Counter* eager_checkpoints = nullptr;
    Counter* market_fallbacks = nullptr;
    Counter* spot_preemptions = nullptr;
    Gauge* spot_rework_seconds = nullptr;
    Gauge* spot_savings = nullptr;
    // Null unless options_.observe (histograms are profile depth, not
    // report fields).
    Histogram* sync_wait = nullptr;
    Histogram* stage_seconds = nullptr;
  };
  MetricHandles m_;

  // Phase-span bookkeeping (observe mode): when the stage opened, when its
  // gangs actually started training, and when its last trial finished (the
  // sync barrier's left edge). stage_completed_at_ remembers each
  // survivor's completion time for the sync-wait histogram.
  Timeline timeline_;
  Seconds stage_open_at_ = 0.0;
  Seconds training_begin_at_ = 0.0;
  Seconds stage_run_end_ = 0.0;
  // Just the completion times: entries only feed the (order-independent)
  // sync-wait histogram, which doesn't care which trial finished when.
  std::vector<Seconds> stage_completed_at_;
};

// Convenience wrapper: plan is executed on a fresh simulated cloud built
// from `cloud_profile`.
ExecutionReport ExecutePlan(const ExperimentSpec& spec, const AllocationPlan& plan,
                            const WorkloadSpec& workload, const CloudProfile& cloud_profile,
                            const ExecutorOptions& options = {});

}  // namespace rubberband

#endif  // SRC_EXECUTOR_EXECUTOR_H_
